//! U-Net segmentation with Adam vs. KAISA-preconditioned Adam.
//!
//! The miniature analogue of the paper's brain-MRI experiment (Figure 5c):
//! an encoder–decoder CNN segmenting synthetic elliptical blobs, with the
//! Dice similarity coefficient as the validation metric.
//!
//! ```sh
//! cargo run --release --example unet_segmentation
//! ```

use kaisa::core::KfacConfig;
use kaisa::data::BlobSegmentation;
use kaisa::nn::models::UNetMini;
use kaisa::optim::{Adam, LrSchedule};
use kaisa::tensor::Rng;
use kaisa::trainer::{train_distributed, TrainConfig};

fn main() {
    let train = BlobSegmentation::generate(192, 16, 0.7, 21);
    let val = BlobSegmentation::generate(48, 16, 0.7, 22);
    let target_dsc = 0.80;

    for (label, kfac) in [
        ("Adam", None),
        (
            "KAISA + Adam",
            Some(
                KfacConfig::builder()
                    .damping(0.003)
                    .factor_update_freq(4)
                    .inv_update_freq(16)
                    .build(),
            ),
        ),
    ] {
        let cfg = TrainConfig {
            epochs: 16,
            local_batch: 8,
            schedule: LrSchedule::Constant { lr: 8e-4 },
            kfac,
            target_metric: Some(target_dsc),
            seed: 4,
            eval_batch: 16,
            ..Default::default()
        };
        let result = train_distributed(
            2,
            || UNetMini::new(1, 4, &mut Rng::seed_from_u64(9)),
            Adam::new,
            &train,
            &val,
            &cfg,
        );
        println!("== {label} ==");
        for e in &result.epochs {
            println!("  epoch {:>2}: loss={:.4}  val DSC={:.3}", e.epoch, e.val_loss, e.val_metric);
        }
        match result.converged {
            Some((epoch, secs)) => {
                println!("  reached {target_dsc} DSC at epoch {epoch} ({secs:.1}s wall)\n")
            }
            None => {
                println!("  did not reach {target_dsc} DSC in {} epochs\n", result.epochs.len())
            }
        }
    }
}
