//! Distributed residual-CNN training across thread ranks, comparing the
//! three distribution strategies (MEM-OPT / HYBRID-OPT / COMM-OPT).
//!
//! This is the miniature analogue of the paper's ResNet-50 experiments: a
//! residual CNN on synthetic pattern images, trained data-parallel on 4
//! ranks with K-FAC preconditioning at three `grad_worker_frac` settings.
//!
//! ```sh
//! cargo run --release --example distributed_resnet
//! ```

use kaisa::core::KfacConfig;
use kaisa::data::PatternImages;
use kaisa::nn::models::{ResNetMini, ResNetMiniConfig};
use kaisa::optim::{LrSchedule, Sgd};
use kaisa::tensor::Rng;
use kaisa::trainer::{train_distributed, TrainConfig};

fn main() {
    let world = 4;
    let train = PatternImages::generate(512, 3, 12, 4, 0.35, 11);
    let val = PatternImages::generate(128, 3, 12, 4, 0.35, 99);

    let model_cfg = ResNetMiniConfig {
        in_channels: 3,
        width: 6,
        blocks_stage1: 1,
        blocks_stage2: 1,
        classes: 4,
    };

    println!(
        "{:<22} {:>10} {:>12} {:>14} {:>12}",
        "strategy", "epochs", "val acc", "K-FAC mem", "comm bytes"
    );
    for (label, frac) in [
        ("baseline SGD", None),
        ("MEM-OPT (1/4)", Some(0.25)),
        ("HYBRID-OPT (1/2)", Some(0.5)),
        ("COMM-OPT (1)", Some(1.0)),
    ] {
        let kfac = frac.map(|f| {
            KfacConfig::builder()
                .grad_worker_frac(f)
                .damping(0.003)
                .factor_update_freq(5)
                .inv_update_freq(20)
                .build()
        });
        let cfg = TrainConfig {
            epochs: 8,
            local_batch: 16,
            schedule: LrSchedule::Warmup { lr: 0.08, warmup: 10 },
            kfac,
            seed: 3,
            ..Default::default()
        };
        let result = train_distributed(
            world,
            || ResNetMini::new(model_cfg, &mut Rng::seed_from_u64(5)),
            || Sgd::with_momentum(0.9),
            &train,
            &val,
            &cfg,
        );
        println!(
            "{:<22} {:>10} {:>11.3} {:>11} KiB {:>12}",
            label,
            result.epochs.len(),
            result.best_metric(),
            result.kfac_memory_bytes / 1024,
            result.kfac_comm_bytes,
        );
    }
    println!("\nNote how MEM-OPT holds the least per-rank K-FAC state while");
    println!("COMM-OPT moves the fewest bytes per step — the paper's tradeoff.");
}
