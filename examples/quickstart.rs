//! Quickstart: K-FAC-preconditioned SGD vs. plain SGD on a small MLP.
//!
//! Mirrors the paper's Listing 1: construct a model, wrap a `Kfac`
//! preconditioner around it, and call `kfac.step()` before the optimizer
//! step. Run with:
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use kaisa::comm::LocalComm;
use kaisa::core::{Kfac, KfacConfig};
use kaisa::data::{Dataset, GaussianBlobs};
use kaisa::nn::{models::Mlp, Model};
use kaisa::optim::{Optimizer, Sgd};
use kaisa::tensor::Rng;

fn main() {
    let (train, val) = GaussianBlobs::generate(640, 16, 4, 0.5, 7).split(128);
    let train_idx: Vec<usize> = (0..train.len()).collect();
    let val_idx: Vec<usize> = (0..val.len()).collect();
    let (vx, vy) = val.batch(&val_idx);

    let epochs = 12;
    let lr = 0.1;
    let batch = 64;

    println!("== Plain momentum SGD ==");
    let mut model = Mlp::new(&[16, 32, 4], &mut Rng::seed_from_u64(1));
    let mut opt = Sgd::with_momentum(0.9);
    for epoch in 0..epochs {
        let mut loss_sum = 0.0;
        for chunk in train_idx.chunks(batch) {
            let (x, y) = train.batch(chunk);
            model.zero_grad();
            loss_sum += model.forward_backward(&x, &y).loss;
            opt.step_model(&mut model, lr);
        }
        let v = model.evaluate(&vx, &vy);
        println!(
            "epoch {epoch:>2}: train_loss={:.4}  val_acc={:.3}",
            loss_sum / (train.len() / batch) as f32,
            v.metric
        );
    }
    let sgd_acc = model.evaluate(&vx, &vy).metric;

    println!("\n== K-FAC preconditioned SGD (KAISA) ==");
    let comm = LocalComm::new();
    let mut model = Mlp::new(&[16, 32, 4], &mut Rng::seed_from_u64(1));
    let mut opt = Sgd::with_momentum(0.9);
    let mut kfac = Kfac::new(
        KfacConfig::builder().damping(0.003).factor_update_freq(5).inv_update_freq(25).build(),
        &mut model,
        &comm,
    );
    for epoch in 0..epochs {
        let mut loss_sum = 0.0;
        for chunk in train_idx.chunks(batch) {
            let (x, y) = train.batch(chunk);
            kfac.prepare(&mut model);
            model.zero_grad();
            loss_sum += model.forward_backward(&x, &y).loss;
            kfac.step(&mut model, &comm, lr);
            opt.step_model(&mut model, lr);
        }
        let v = model.evaluate(&vx, &vy);
        println!(
            "epoch {epoch:>2}: train_loss={:.4}  val_acc={:.3}",
            loss_sum / (train.len() / batch) as f32,
            v.metric
        );
    }
    let kfac_acc = model.evaluate(&vx, &vy).metric;

    println!("\nfinal validation accuracy: SGD {sgd_acc:.3} vs KAISA {kfac_acc:.3}");
    println!("K-FAC memory overhead: {} KiB", kfac.memory_bytes() / 1024);
    println!("\nK-FAC stage timing:\n{}", kfac.stage_times().report());
}
