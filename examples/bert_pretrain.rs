//! BERT-style masked-token pretraining: LAMB vs. KAISA-preconditioned LAMB
//! with gradient accumulation.
//!
//! The miniature analogue of the paper's BERT-Large phase-2 experiment
//! (Table 3): large effective batches are held by gradient accumulation
//! (Section 4.2 — K-FAC statistics accumulate during the micro-batches at
//! O(dim²) extra memory), and KAISA reaches the target masked accuracy in
//! fewer optimizer iterations than LAMB.
//!
//! ```sh
//! cargo run --release --example bert_pretrain
//! ```

use kaisa::core::KfacConfig;
use kaisa::data::{MaskedTokenTask, SequenceRules};
use kaisa::nn::models::{BertMini, BertMiniConfig};
use kaisa::optim::{Lamb, LrSchedule};
use kaisa::tensor::Rng;
use kaisa::trainer::{train_distributed, TrainConfig};

fn main() {
    let rules = SequenceRules { vocab: 24, mult: 1, offset: 5, rule_probability: 0.95 };
    let train = MaskedTokenTask::generate(512, 12, rules, 0.25, 31);
    let val = MaskedTokenTask::generate(96, 12, rules, 0.25, 32);

    let model_cfg =
        BertMiniConfig { vocab: 24, d_model: 24, heads: 4, layers: 2, ffn_dim: 48, max_seq: 12 };
    let target = 0.72; // masked-token accuracy target (the "F1" analogue)

    // Per-optimizer tuned schedules (as the paper's Table 4 does): LAMB needs
    // a long low-LR ramp on this task; the K-FAC preconditioner tolerates a
    // 6x larger learning rate (Section 2: natural-gradient methods enable
    // larger learning rates).
    for (label, kfac, schedule, epochs) in [
        (
            "LAMB",
            None,
            LrSchedule::WarmupPoly { lr: 5e-3, warmup: 30, total: 1200, power: 1.0 },
            50usize,
        ),
        (
            "KAISA + LAMB",
            Some(
                KfacConfig::builder()
                    .damping(0.003)
                    .factor_update_freq(2)
                    .inv_update_freq(10)
                    .build(),
            ),
            LrSchedule::WarmupPoly { lr: 3e-2, warmup: 8, total: 600, power: 1.0 },
            30usize,
        ),
    ] {
        let cfg = TrainConfig {
            epochs,
            local_batch: 8,
            grad_accum: 4, // effective batch 2 ranks x 8 x 4 = 64
            schedule,
            kfac,
            target_metric: Some(target),
            seed: 6,
            eval_batch: 32,
            ..Default::default()
        };
        let result = train_distributed(
            2,
            || BertMini::new(model_cfg, &mut Rng::seed_from_u64(13)),
            Lamb::new,
            &train,
            &val,
            &cfg,
        );
        println!("== {label} ==");
        for e in result.epochs.iter().step_by(2) {
            println!(
                "  epoch {:>2} (iter {:>3}): masked loss={:.4}  masked acc={:.3}",
                e.epoch, e.iterations, e.val_loss, e.val_metric
            );
        }
        match result.iterations_to_metric(target) {
            Some(iters) => {
                println!("  reached {target:.2} masked accuracy after {iters} iterations\n")
            }
            None => {
                println!("  did not reach {target:.2} within {} iterations\n", result.iterations)
            }
        }
    }
}
