//! Memory/communication planner: sweep `grad_worker_frac` for a model on a
//! cluster and report the simulated iteration time and K-FAC memory
//! overhead — the profiling loop the paper says makes tuning the fraction
//! "simple" (Section 5.5).
//!
//! ```sh
//! cargo run --release --example memory_planner -- resnet50 64
//! cargo run --release --example memory_planner -- bert 8
//! ```

use kaisa::sim::{ClusterSpec, ModelInventory, SimParams, Simulator};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let model_name = args.get(1).map(String::as_str).unwrap_or("resnet50");
    let world: usize = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(64);

    let model = match model_name {
        "resnet18" => ModelInventory::resnet18(),
        "resnet50" => ModelInventory::resnet50(),
        "resnet101" => ModelInventory::resnet101(),
        "resnet152" => ModelInventory::resnet152(),
        "maskrcnn" => ModelInventory::mask_rcnn_roi_heads(),
        "bert" => ModelInventory::bert_large(512),
        "unet" => ModelInventory::unet(),
        "vgg16" => ModelInventory::vgg16(),
        other => {
            eprintln!(
                "unknown model '{other}' (try resnet18/50/101/152, vgg16, maskrcnn, bert, unet)"
            );
            std::process::exit(1);
        }
    };
    let cluster = ClusterSpec::frontera(world);
    println!(
        "model {} ({} K-FAC layers, {:.1}M params) on {} x {}",
        model.name,
        model.layers.len(),
        model.total_params() as f64 / 1e6,
        world,
        cluster.gpu.name
    );
    println!(
        "\n{:>12} {:>14} {:>16} {:>16} {:>12}",
        "frac", "iter time", "K-FAC overhead", "absolute mem", "fits 16GB?"
    );

    let mut best: Option<(f64, f64)> = None;
    let mut frac = 1.0 / world as f64;
    while frac <= 1.0 + 1e-9 {
        let params = SimParams::baseline(model.clone(), cluster, 32).with_kfac(frac, 50, 500);
        let sim = Simulator::new(params);
        let iter = sim.iteration_breakdown().total();
        let mem = sim.memory_breakdown();
        let abs_gb = mem.absolute() as f64 / (1 << 30) as f64;
        let fits = mem.absolute() as u64 <= cluster.gpu.mem_bytes;
        println!(
            "{:>12.4} {:>11.1} ms {:>13.0} MB {:>13.2} GB {:>12}",
            frac,
            iter * 1e3,
            mem.kfac_overhead() as f64 / (1 << 20) as f64,
            abs_gb,
            if fits { "yes" } else { "NO" },
        );
        if fits && best.map_or(true, |(_, t)| iter < t) {
            best = Some((frac, iter));
        }
        frac *= 2.0;
    }

    match best {
        Some((frac, iter)) => println!(
            "\nrecommended grad_worker_frac = {frac:.4} ({:.1} ms/iteration within budget)",
            iter * 1e3
        ),
        None => println!("\nno configuration fits the device memory at this batch size"),
    }
}
