//! Offline stand-in for the [criterion](https://crates.io/crates/criterion)
//! benchmark harness.
//!
//! The real criterion cannot be fetched in this build environment (no
//! crates.io access), so this vendored crate implements the API surface the
//! workspace's `[[bench]]` targets use: [`Criterion`], benchmark groups,
//! [`BenchmarkId`], [`Throughput`], `b.iter(..)`, [`black_box`], and the
//! `criterion_group!`/`criterion_main!` macros.
//!
//! Differences from the real crate, by design: no statistical analysis,
//! no HTML reports, no baseline comparison. Each benchmark runs a short
//! warmup, then timed batches until a ~200 ms budget is spent, and prints
//! the mean iteration time (plus throughput when configured).

use std::time::{Duration, Instant};

pub use std::hint::black_box;

const WARMUP_ITERS: u64 = 2;
const TIME_BUDGET: Duration = Duration::from_millis(200);

/// Iteration driver handed to benchmark closures as `b`.
pub struct Bencher {
    mean_nanos: f64,
}

impl Bencher {
    /// Time `routine`, called repeatedly until the time budget is spent.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        for _ in 0..WARMUP_ITERS {
            black_box(routine());
        }
        let mut iters: u64 = 0;
        let start = Instant::now();
        loop {
            black_box(routine());
            iters += 1;
            if start.elapsed() >= TIME_BUDGET {
                break;
            }
        }
        self.mean_nanos = start.elapsed().as_nanos() as f64 / iters as f64;
    }
}

/// Identifier for one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `function_name/parameter` form.
    pub fn new<P: std::fmt::Display>(function_name: &str, parameter: P) -> Self {
        BenchmarkId { id: format!("{function_name}/{parameter}") }
    }

    /// Parameter-only form.
    pub fn from_parameter<P: std::fmt::Display>(parameter: P) -> Self {
        BenchmarkId { id: parameter.to_string() }
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// Units processed per iteration, for derived throughput reporting.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

fn human_nanos(nanos: f64) -> String {
    if nanos < 1_000.0 {
        format!("{nanos:.1} ns")
    } else if nanos < 1_000_000.0 {
        format!("{:.2} us", nanos / 1_000.0)
    } else if nanos < 1_000_000_000.0 {
        format!("{:.2} ms", nanos / 1_000_000.0)
    } else {
        format!("{:.3} s", nanos / 1_000_000_000.0)
    }
}

fn report(name: &str, mean_nanos: f64, throughput: Option<Throughput>) {
    let rate = throughput.map(|t| match t {
        Throughput::Elements(n) => {
            format!("  {:.2} Melem/s", n as f64 / mean_nanos * 1_000.0)
        }
        Throughput::Bytes(n) => {
            format!("  {:.2} MiB/s", n as f64 / mean_nanos * 1e9 / (1024.0 * 1024.0))
        }
    });
    println!("{name:<48} {:>12}{}", human_nanos(mean_nanos), rate.unwrap_or_default());
}

/// A named collection of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    throughput: Option<Throughput>,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; sampling is time-budget based here.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Set the per-iteration throughput used in reports.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Run one benchmark in this group.
    pub fn bench_function<F, I>(&mut self, id: I, mut f: F) -> &mut Self
    where
        I: std::fmt::Display,
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher { mean_nanos: 0.0 };
        f(&mut b);
        report(&format!("{}/{}", self.name, id), b.mean_nanos, self.throughput);
        self
    }

    /// Run one benchmark with an explicit input value.
    pub fn bench_with_input<F, I, T>(&mut self, id: I, input: &T, mut f: F) -> &mut Self
    where
        I: std::fmt::Display,
        T: ?Sized,
        F: FnMut(&mut Bencher, &T),
    {
        let mut b = Bencher { mean_nanos: 0.0 };
        f(&mut b, input);
        report(&format!("{}/{}", self.name, id), b.mean_nanos, self.throughput);
        self
    }

    /// End the group (marker only; reports print as benchmarks run).
    pub fn finish(self) {}
}

/// Benchmark harness entry point.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Start a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup { name: name.to_string(), throughput: None, _criterion: self }
    }

    /// Run a standalone benchmark.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher { mean_nanos: 0.0 };
        f(&mut b);
        report(name, b.mean_nanos, None);
        self
    }
}

/// Bundle benchmark functions under a group name.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Emit `main` running the listed groups (ignores harness CLI flags).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // Cargo passes flags like `--bench`; accept and ignore them.
            let _ = ::std::env::args();
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        let mut group = c.benchmark_group("sample");
        group.sample_size(10).throughput(Throughput::Elements(64));
        group.bench_function(BenchmarkId::new("sum", 64), |b| {
            b.iter(|| (0..64u64).map(black_box).sum::<u64>())
        });
        group.bench_with_input(BenchmarkId::from_parameter(8), &8u64, |b, &n| b.iter(|| n * n));
        group.finish();
    }

    criterion_group!(benches, sample_bench);

    #[test]
    fn harness_runs_and_reports() {
        benches();
    }

    #[test]
    fn ids_format_like_criterion() {
        assert_eq!(BenchmarkId::new("gemm", 128).to_string(), "gemm/128");
        assert_eq!(BenchmarkId::from_parameter("fp16").to_string(), "fp16");
    }
}
