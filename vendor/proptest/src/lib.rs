//! Offline stand-in for the [proptest](https://crates.io/crates/proptest)
//! crate.
//!
//! The real proptest cannot be fetched in this build environment (no
//! crates.io access), so this vendored crate implements exactly the API
//! surface the workspace's property tests use: the [`Strategy`] trait with
//! `prop_map`/`prop_filter`, range/tuple/`any`/collection strategies, the
//! `proptest!` test-generating macro with optional `proptest_config`, and the
//! `prop_assert!`/`prop_assert_eq!` assertion macros.
//!
//! Differences from the real crate, by design:
//! - **No shrinking.** A failing case reports its generated inputs; since
//!   generation is fully deterministic (the per-case RNG seed depends only on
//!   the test name and case index), failures reproduce exactly on re-run.
//! - **No persistence files** (`proptest-regressions/`).

pub mod strategy {
    //! The strategy trait and combinators.

    use crate::test_runner::TestRng;
    use std::marker::PhantomData;
    use std::ops::{Range, RangeInclusive};

    /// A generator of values of type `Self::Value`.
    pub trait Strategy {
        /// The type of value this strategy generates.
        type Value;

        /// Draw one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Map generated values through `f`.
        fn prop_map<U, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> U,
        {
            Map { inner: self, f }
        }

        /// Reject values failing `pred`, regenerating (bounded retries).
        fn prop_filter<F>(self, reason: &'static str, pred: F) -> Filter<Self, F>
        where
            Self: Sized,
            F: Fn(&Self::Value) -> bool,
        {
            Filter { inner: self, pred, reason }
        }
    }

    /// [`Strategy::prop_map`] adapter.
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
        type Value = U;
        fn generate(&self, rng: &mut TestRng) -> U {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// [`Strategy::prop_filter`] adapter.
    #[derive(Debug, Clone)]
    pub struct Filter<S, F> {
        inner: S,
        pred: F,
        reason: &'static str,
    }

    impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
        type Value = S::Value;
        fn generate(&self, rng: &mut TestRng) -> S::Value {
            for _ in 0..10_000 {
                let v = self.inner.generate(rng);
                if (self.pred)(&v) {
                    return v;
                }
            }
            panic!("prop_filter '{}' rejected 10000 consecutive values", self.reason);
        }
    }

    macro_rules! float_range_strategy {
        ($t:ty) => {
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let lo = self.start as f64;
                    let hi = self.end as f64;
                    (lo + rng.next_f64() * (hi - lo)) as $t
                }
            }
        };
    }
    float_range_strategy!(f32);
    float_range_strategy!(f64);

    macro_rules! int_range_strategy {
        ($t:ty) => {
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty integer range strategy");
                    let span = (self.end - self.start) as u64;
                    self.start + (rng.next_u64() % span) as $t
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty inclusive range strategy");
                    let span = (hi - lo) as u64 + 1;
                    lo + (rng.next_u64() % span) as $t
                }
            }
        };
    }
    int_range_strategy!(usize);
    int_range_strategy!(u64);
    int_range_strategy!(u32);
    int_range_strategy!(i64);

    /// Types with a canonical full-domain strategy (see [`any`]).
    pub trait Arbitrary {
        /// Draw an arbitrary value of this type.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    impl Arbitrary for u64 {
        fn arbitrary(rng: &mut TestRng) -> u64 {
            rng.next_u64()
        }
    }
    impl Arbitrary for u32 {
        fn arbitrary(rng: &mut TestRng) -> u32 {
            rng.next_u64() as u32
        }
    }
    impl Arbitrary for usize {
        fn arbitrary(rng: &mut TestRng) -> usize {
            rng.next_u64() as usize
        }
    }
    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }
    impl Arbitrary for i64 {
        fn arbitrary(rng: &mut TestRng) -> i64 {
            rng.next_u64() as i64
        }
    }

    /// Strategy over a type's full domain.
    #[derive(Debug, Clone, Copy)]
    pub struct Any<T>(PhantomData<T>);

    /// The full-domain strategy for `T` (`any::<u64>()` etc.).
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    macro_rules! tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        };
    }
    tuple_strategy!(A);
    tuple_strategy!(A, B);
    tuple_strategy!(A, B, C);
    tuple_strategy!(A, B, C, D);
    tuple_strategy!(A, B, C, D, E);

    /// Strategy for `Vec`s of values from an element strategy.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        pub(crate) element: S,
        pub(crate) size: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = self.size.clone().generate(rng);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod collection {
    //! Collection strategies (`prop::collection::vec`).

    use crate::strategy::{Strategy, VecStrategy};
    use std::ops::Range;

    /// A strategy for `Vec`s whose length is drawn from `size` and whose
    /// elements come from `element`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }
}

pub mod test_runner {
    //! Deterministic case runner and configuration.

    /// Runner configuration; only `cases` is honored.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of cases to run per property.
        pub cases: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 256 }
        }
    }

    impl ProptestConfig {
        /// Config running `cases` cases per property.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    /// Deterministic splitmix64 generator used for value generation.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seeded generator.
        pub fn from_seed(seed: u64) -> Self {
            TestRng { state: seed ^ 0x5851_F42D_4C95_7F2D }
        }

        /// Next 64 uniform bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform double in `[0, 1)`.
        pub fn next_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
        }
    }

    /// One case's outcome as produced by the `proptest!` expansion: the
    /// assertion result, possibly wrapped in a caught panic.
    pub type CaseOutcome = Result<Result<(), String>, Box<dyn std::any::Any + Send + 'static>>;

    /// Runs each property for the configured number of cases with
    /// deterministic per-case seeds.
    #[derive(Debug)]
    pub struct TestRunner {
        config: ProptestConfig,
    }

    impl TestRunner {
        /// Runner with the given configuration.
        pub fn new(config: ProptestConfig) -> Self {
            TestRunner { config }
        }

        fn name_hash(name: &str) -> u64 {
            // FNV-1a so per-test streams differ.
            let mut h = 0xCBF2_9CE4_8422_2325u64;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
            h
        }

        /// Run `f` for every case; panics (with the generated inputs) on the
        /// first failure.
        pub fn run<F>(&mut self, name: &str, f: F)
        where
            F: Fn(&mut TestRng) -> (String, CaseOutcome),
        {
            let base = Self::name_hash(name);
            for case in 0..self.config.cases {
                let mut rng = TestRng::from_seed(base ^ (case as u64).wrapping_mul(0x9E37_79B9));
                let (inputs, outcome) = f(&mut rng);
                match outcome {
                    Ok(Ok(())) => {}
                    Ok(Err(msg)) => panic!(
                        "property '{name}' failed at case {case}/{total}\n  inputs: {inputs}\n  {msg}",
                        total = self.config.cases
                    ),
                    Err(payload) => {
                        let msg = payload
                            .downcast_ref::<String>()
                            .map(String::as_str)
                            .or_else(|| payload.downcast_ref::<&str>().copied())
                            .unwrap_or("<non-string panic>");
                        panic!(
                            "property '{name}' panicked at case {case}/{total}\n  inputs: {inputs}\n  panic: {msg}",
                            total = self.config.cases
                        )
                    }
                }
            }
        }
    }
}

pub mod prelude {
    //! Glob-import surface mirroring `proptest::prelude`.

    pub use crate::strategy::{any, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
    // `prop::collection::vec(..)` paths resolve through this alias.
    pub use crate as prop;
}

/// Generate `#[test]` functions that run a property over many generated
/// cases. Supports an optional leading
/// `#![proptest_config(ProptestConfig::with_cases(N))]`.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@with_config ($cfg) $($rest)*);
    };
    (@with_config ($cfg:expr) $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block
    )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let mut runner = $crate::test_runner::TestRunner::new($cfg);
                runner.run(stringify!($name), |rng| {
                    $(let $arg = $crate::strategy::Strategy::generate(&($strat), rng);)*
                    let inputs = format!(
                        concat!($(stringify!($arg), " = {:?}; ",)*) $(, &$arg)*
                    );
                    let outcome = ::std::panic::catch_unwind(
                        ::std::panic::AssertUnwindSafe(
                            || -> ::std::result::Result<(), ::std::string::String> {
                                $body
                                Ok(())
                            },
                        ),
                    );
                    (inputs, outcome)
                });
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(
            @with_config ($crate::test_runner::ProptestConfig::default()) $($rest)*
        );
    };
}

/// Assert a condition inside a `proptest!` body, failing the case (with the
/// generated inputs reported) instead of unwinding immediately.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return Err(format!(
                "assertion failed: {} at {}:{}",
                stringify!($cond), file!(), line!()
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return Err(format!(
                "assertion failed: {} ({}) at {}:{}",
                stringify!($cond), format!($($fmt)+), file!(), line!()
            ));
        }
    };
}

/// Equality assertion counterpart of [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return Err(format!(
                "assertion failed: {} == {}\n  left: {:?}\n right: {:?}\n at {}:{}",
                stringify!($left), stringify!($right), l, r, file!(), line!()
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return Err(format!(
                "assertion failed: {} == {} ({})\n  left: {:?}\n right: {:?}\n at {}:{}",
                stringify!($left), stringify!($right), format!($($fmt)+), l, r,
                file!(), line!()
            ));
        }
    }};
}

/// Inequality assertion counterpart of [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if *l == *r {
            return Err(format!(
                "assertion failed: {} != {}\n  both: {:?}\n at {}:{}",
                stringify!($left), stringify!($right), l, file!(), line!()
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if *l == *r {
            return Err(format!(
                "assertion failed: {} != {} ({})\n  both: {:?}\n at {}:{}",
                stringify!($left), stringify!($right), format!($($fmt)+), l,
                file!(), line!()
            ));
        }
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = crate::test_runner::TestRng::from_seed(7);
        for _ in 0..1000 {
            let f = Strategy::generate(&(0.5f32..2.0), &mut rng);
            assert!((0.5..2.0).contains(&f));
            let u = Strategy::generate(&(3usize..9), &mut rng);
            assert!((3..9).contains(&u));
            let i = Strategy::generate(&(1usize..=4), &mut rng);
            assert!((1..=4).contains(&i));
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let mut a = crate::test_runner::TestRng::from_seed(42);
        let mut b = crate::test_runner::TestRng::from_seed(42);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn macro_end_to_end(x in 1usize..100, seed in any::<u64>()) {
            let _ = seed;
            prop_assert!((1..100).contains(&x));
            prop_assert_eq!(x, x);
            prop_assert_ne!(x, x + 1);
        }

        #[test]
        fn combinators_compose(v in prop::collection::vec((1usize..5, 1usize..5), 1..10)) {
            prop_assert!(!v.is_empty() && v.len() < 10);
            for (a, b) in v {
                prop_assert!(a < 5 && b < 5, "element out of range: ({}, {})", a, b);
            }
        }

        #[test]
        fn map_and_filter(x in (1f32..100.0).prop_map(|v| v * 2.0).prop_filter("finite", |v| v.is_finite())) {
            prop_assert!((2.0..200.0).contains(&x));
        }
    }

    #[test]
    #[should_panic(expected = "inputs")]
    #[allow(unnameable_test_items)]
    fn failures_report_inputs() {
        proptest! {
            #![proptest_config(ProptestConfig::with_cases(8))]
            #[test]
            fn always_fails(x in 0usize..4) {
                prop_assert!(x > 100, "x was {}", x);
            }
        }
        always_fails();
    }
}
