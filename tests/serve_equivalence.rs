//! Serve-layer equivalence gates.
//!
//! The headline invariant of the serve subsystem: **train D steps at world
//! W, checkpoint through the byte format, restore at world W′, finish
//! training — bitwise identical weights to a fresh run that resized
//! in-process at the same step**, per rank, across distribution strategies
//! and factor precisions with `sharded_factors` on.
//!
//! The reference leg below re-implements the two-segment run directly on
//! `ThreadComm` + `run_step` + in-memory `KfacCheckpoint` hand-off — no
//! byte serialization, no job manager, no rank pool. The serve leg routes
//! the same job through `JobManager`: admission, pool scheduling, byte
//! checkpointing, and restore. Any divergence in the encode/decode path,
//! the re-sharding placement, or the scheduler's segment arithmetic breaks
//! the bitwise comparison.

use kaisa::comm::{Communicator, ThreadComm};
use kaisa::core::{DistStrategy, Kfac, KfacCheckpoint, KfacConfig};
use kaisa::data::{Dataset, GaussianBlobs, ShardSampler};
use kaisa::nn::{models::Mlp, Model};
use kaisa::optim::{LrSchedule, Optimizer, Sgd};
use kaisa::serve::{
    modeled_kfac_bytes, JobCheckpoint, JobManager, JobSpec, JobState, ResizePoint, ServeConfig,
    ServeEvent,
};
use kaisa::tensor::{Precision, Rng};
use kaisa::trainer::run_step;

const LAYERS: [usize; 3] = [8, 16, 4];
const SAMPLES: usize = 256;
const LOCAL_BATCH: usize = 8;
const LR: f32 = 0.2;
const MOMENTUM: f32 = 0.9;
const TOTAL_STEPS: u64 = 10;
const PAUSE_AT: u64 = 5;

fn kfac_config(strategy: DistStrategy, precision: Precision) -> KfacConfig {
    KfacConfig::builder()
        .strategy(strategy)
        .grad_worker_frac(0.5)
        .factor_update_freq(2)
        .inv_update_freq(4)
        .sharded_factors(true)
        .precision(precision)
        .build()
}

fn job_spec(kc: KfacConfig, w: usize, w_prime: usize) -> JobSpec {
    JobSpec {
        name: format!("resize-{w}-to-{w_prime}"),
        layer_sizes: LAYERS.to_vec(),
        dataset_samples: SAMPLES,
        dataset_noise: 0.3,
        data_seed: 1,
        model_seed: 3,
        sampler_seed: 0,
        local_batch: LOCAL_BATCH,
        grad_accum: 1,
        schedule: LrSchedule::Constant { lr: LR },
        momentum: MOMENTUM,
        kfac: Some(kc),
        world: w,
        total_steps: TOTAL_STEPS,
        resizes: vec![ResizePoint { at_step: PAUSE_AT, world: w_prime }],
    }
}

/// In-memory carry-over between reference segments: exactly what a
/// checkpoint captures, minus the byte encoding.
#[derive(Clone)]
struct SegmentState {
    params: Vec<f32>,
    velocity: Vec<f32>,
    kfac: Option<KfacCheckpoint>,
}

/// One reference segment: fresh world, optional in-memory restore, train
/// `[start, end)`, flush, hand the state back. Asserts every rank derived
/// bitwise-identical state.
fn reference_segment(
    kc: &KfacConfig,
    world: usize,
    start: u64,
    end: u64,
    incoming: Option<&SegmentState>,
) -> SegmentState {
    let mut outs = ThreadComm::run(world, |comm| {
        let mut model = Mlp::new(&LAYERS, &mut Rng::seed_from_u64(3));
        let mut optimizer = Sgd::with_momentum(MOMENTUM);
        let data = GaussianBlobs::generate(SAMPLES, LAYERS[0], LAYERS[2], 0.3, 1);
        let mut kfac = match incoming {
            Some(state) => {
                model.set_params_flat(&state.params);
                optimizer.set_velocity(state.velocity.clone());
                state.kfac.as_ref().map(|k| Kfac::restore(kc.clone(), &mut model, comm, k))
            }
            None => Some(Kfac::new(kc.clone(), &mut model, comm)),
        };
        let sampler = ShardSampler::new(data.len(), world, comm.rank(), LOCAL_BATCH, 0);
        let per_epoch = sampler.batches_per_epoch();
        let mut cached_epoch = usize::MAX;
        let mut batches: Vec<Vec<usize>> = Vec::new();
        for step in start..end {
            let s = step as usize;
            if s / per_epoch != cached_epoch {
                cached_epoch = s / per_epoch;
                batches = sampler.epoch_batches(cached_epoch);
            }
            run_step(
                comm,
                &mut model,
                &mut optimizer as &mut dyn Optimizer,
                kfac.as_mut(),
                kc.async_runtime,
                &data,
                &batches[s % per_epoch],
                LOCAL_BATCH,
                1,
                LR,
            );
        }
        if let Some(k) = kfac.as_mut() {
            k.flush(comm);
        }
        SegmentState {
            params: model.params_flat(),
            velocity: optimizer.velocity().to_vec(),
            kfac: kfac.as_mut().map(|k| k.checkpoint_state(comm)),
        }
    });
    for (r, o) in outs.iter().enumerate().skip(1) {
        assert_eq!(o.params.len(), outs[0].params.len());
        for (i, (a, b)) in outs[0].params.iter().zip(&o.params).enumerate() {
            assert_eq!(a.to_bits(), b.to_bits(), "rank {r} param {i} diverged in reference");
        }
        assert_eq!(o.kfac, outs[0].kfac, "rank {r} K-FAC checkpoint diverged in reference");
    }
    outs.swap_remove(0)
}

/// The headline gate for one (strategy, precision, W, W′) cell.
fn assert_resize_equivalence(strategy: DistStrategy, precision: Precision, w: usize, w2: usize) {
    let kc = kfac_config(strategy, precision);

    // Reference: two in-process segments with an in-memory state hand-off.
    let mid = reference_segment(&kc, w, 0, PAUSE_AT, None);
    let reference = reference_segment(&kc, w2, PAUSE_AT, TOTAL_STEPS, Some(&mid));

    // Serve: the same job through admission, the rank pool, and bytes.
    let mgr = JobManager::new(ServeConfig::default());
    let id = mgr.run_to_completion(job_spec(kc, w, w2)).expect("job admitted");
    let status = mgr.status(id).expect("job exists");
    assert_eq!(status.state, JobState::Completed);
    assert_eq!(status.step, TOTAL_STEPS);
    let served = mgr.final_params(id).expect("final checkpoint present");

    assert_eq!(served.len(), reference.params.len());
    for (i, (s, r)) in served.iter().zip(&reference.params).enumerate() {
        assert_eq!(
            s.to_bits(),
            r.to_bits(),
            "{strategy}/{precision:?} {w}→{w2}: param {i} diverged (serve {s} vs reference {r})"
        );
    }
}

/// Grow and shrink pairs over W, W′ ∈ {1, 4, 8}.
const WORLD_PAIRS: [(usize, usize); 4] = [(1, 4), (4, 8), (8, 4), (4, 1)];

#[test]
fn comm_opt_resize_is_bitwise_transparent() {
    for precision in [Precision::Fp32, Precision::Fp16] {
        for (w, w2) in WORLD_PAIRS {
            assert_resize_equivalence(DistStrategy::CommOpt, precision, w, w2);
        }
    }
}

#[test]
fn mem_opt_resize_is_bitwise_transparent() {
    for precision in [Precision::Fp32, Precision::Fp16] {
        for (w, w2) in WORLD_PAIRS {
            assert_resize_equivalence(DistStrategy::MemOpt, precision, w, w2);
        }
    }
}

#[test]
fn hybrid_opt_resize_is_bitwise_transparent() {
    for precision in [Precision::Fp32, Precision::Fp16] {
        for (w, w2) in WORLD_PAIRS {
            assert_resize_equivalence(DistStrategy::HybridOpt, precision, w, w2);
        }
    }
}

#[test]
fn direct_inverse_triangular_resize_is_bitwise_transparent() {
    // The no-eigendecomposition fallback with triangular packing exercises
    // the regather placement (both packed sections fold on the A owner).
    let kc = KfacConfig::builder()
        .strategy(DistStrategy::HybridOpt)
        .grad_worker_frac(0.5)
        .factor_update_freq(2)
        .inv_update_freq(4)
        .sharded_factors(true)
        .use_eigen(false)
        .triangular_comm(true)
        .build();
    let mid = reference_segment(&kc, 4, 0, PAUSE_AT, None);
    let reference = reference_segment(&kc, 8, PAUSE_AT, TOTAL_STEPS, Some(&mid));
    let mgr = JobManager::new(ServeConfig::default());
    let id = mgr.run_to_completion(job_spec(kc, 4, 8)).expect("admitted");
    let served = mgr.final_params(id).expect("final checkpoint");
    for (i, (s, r)) in served.iter().zip(&reference.params).enumerate() {
        assert_eq!(s.to_bits(), r.to_bits(), "direct-inverse param {i} diverged");
    }
}

#[test]
fn checkpoint_bytes_are_stable_across_save_load_save() {
    // Satellite gate: serialize → deserialize → serialize is the identity
    // on bytes for a checkpoint holding real sharded PackedFactor state.
    let mgr = JobManager::new(ServeConfig::default());
    let mut spec = job_spec(kfac_config(DistStrategy::HybridOpt, Precision::Fp16), 4, 2);
    spec.name = "byte-stability".to_string();
    let id = mgr.run_to_completion(spec).expect("admitted");
    let bytes = mgr.checkpoint_bytes(id).expect("checkpoint present");
    let decoded = JobCheckpoint::from_bytes(&bytes).expect("valid checkpoint");
    let kfac = decoded.kfac.as_ref().expect("kfac state captured");
    assert!(
        kfac.layers.iter().any(|l| l.factor_a.is_some() && l.factor_g.is_some()),
        "checkpoint must carry factor running averages"
    );
    let re_encoded = decoded.to_bytes();
    assert_eq!(re_encoded, bytes, "save → load → save must be bytewise stable");
    // And a second decode round agrees too.
    assert_eq!(JobCheckpoint::from_bytes(&re_encoded).expect("valid"), decoded);
}

#[test]
fn admission_queues_over_budget_job_until_memory_frees() {
    // Satellite gate: a job whose modeled footprint does not fit alongside
    // the running job is provably queued, not run concurrently.
    let probe = job_spec(kfac_config(DistStrategy::CommOpt, Precision::Fp32), 4, 4);
    let one = modeled_kfac_bytes(&probe, 4);
    assert!(one > 0);
    let mgr = JobManager::new(ServeConfig {
        pool_ranks: 8,
        pool_budget_bytes: one + one / 2, // room for one job, not two
        ..ServeConfig::default()
    });
    let mut first = probe.clone();
    first.resizes.clear();
    first.name = "first".to_string();
    let mut second = first.clone();
    second.name = "second".to_string();
    let a = mgr.submit(first).expect("fits alone");
    let b = mgr.submit(second).expect("queues");
    mgr.drain();
    let events = mgr.events();
    let a_completed = events
        .iter()
        .position(|e| matches!(e, ServeEvent::Completed { job, .. } if *job == a))
        .expect("first job completed");
    let b_admitted = events
        .iter()
        .position(|e| matches!(e, ServeEvent::Admitted { job, .. } if *job == b))
        .expect("second job admitted");
    assert!(
        b_admitted > a_completed,
        "job B admitted (event {b_admitted}) before job A completed (event {a_completed})"
    );
    assert_eq!(mgr.status(b).expect("exists").state, JobState::Completed);
}
