//! Convergence smoke tests for all four application analogues: K-FAC
//! preconditioning must preserve convergence (the paper's first research
//! question) on classification, detection-head, segmentation, and
//! masked-language tasks.

use kaisa::core::KfacConfig;
use kaisa::data::{BlobSegmentation, GaussianBlobs, MaskedTokenTask, PatternImages, SequenceRules};
use kaisa::nn::models::{
    BertMini, BertMiniConfig, Mlp, ResNetMini, ResNetMiniConfig, RoiHeadMini, RoiTargets,
};
use kaisa::nn::Model;
use kaisa::optim::{Adam, Lamb, LrSchedule, Sgd};
use kaisa::tensor::{Matrix, Rng};
use kaisa::trainer::{train_distributed, TrainConfig};

fn kfac_cfg() -> KfacConfig {
    KfacConfig::builder().factor_update_freq(2).inv_update_freq(8).build()
}

#[test]
fn mlp_classification_converges_with_kfac() {
    let (train, val) = GaussianBlobs::generate(320, 8, 4, 0.35, 61).split(64);
    let cfg = TrainConfig {
        epochs: 8,
        local_batch: 16,
        schedule: LrSchedule::Constant { lr: 0.15 },
        kfac: Some(kfac_cfg()),
        seed: 1,
        ..Default::default()
    };
    let r = train_distributed(
        2,
        || Mlp::new(&[8, 16, 4], &mut Rng::seed_from_u64(3)),
        || Sgd::with_momentum(0.9),
        &train,
        &val,
        &cfg,
    );
    assert!(r.best_metric() > 0.93, "val acc {}", r.best_metric());
}

#[test]
fn resnet_classification_converges_with_kfac() {
    let train = PatternImages::generate(256, 3, 12, 4, 0.3, 62);
    let val = PatternImages::generate(64, 3, 12, 4, 0.3, 63);
    let cfg = TrainConfig {
        epochs: 8,
        local_batch: 16,
        schedule: LrSchedule::Warmup { lr: 0.06, warmup: 8 },
        kfac: Some(kfac_cfg()),
        seed: 2,
        ..Default::default()
    };
    let model_cfg = ResNetMiniConfig {
        in_channels: 3,
        width: 6,
        blocks_stage1: 1,
        blocks_stage2: 1,
        classes: 4,
    };
    let r = train_distributed(
        2,
        || ResNetMini::new(model_cfg, &mut Rng::seed_from_u64(5)),
        || Sgd::with_momentum(0.9),
        &train,
        &val,
        &cfg,
    );
    assert!(r.best_metric() > 0.7, "ResNet val acc {}", r.best_metric());
}

#[test]
fn unet_segmentation_converges_with_kfac() {
    let train = BlobSegmentation::generate(96, 16, 0.2, 64);
    let val = BlobSegmentation::generate(32, 16, 0.2, 65);
    let cfg = TrainConfig {
        epochs: 10,
        local_batch: 8,
        schedule: LrSchedule::Constant { lr: 2e-3 },
        kfac: Some(kfac_cfg()),
        seed: 3,
        eval_batch: 16,
        ..Default::default()
    };
    let r = train_distributed(
        2,
        || kaisa::nn::models::UNetMini::new(1, 6, &mut Rng::seed_from_u64(7)),
        Adam::new,
        &train,
        &val,
        &cfg,
    );
    assert!(r.best_metric() > 0.6, "U-Net val DSC {}", r.best_metric());
}

#[test]
fn bert_masked_lm_converges_with_kfac() {
    let rules = SequenceRules { vocab: 20, mult: 1, offset: 3, rule_probability: 0.97 };
    let train = MaskedTokenTask::generate(256, 10, rules, 0.25, 66);
    let val = MaskedTokenTask::generate(64, 10, rules, 0.25, 67);
    let model_cfg =
        BertMiniConfig { vocab: 20, d_model: 24, heads: 2, layers: 1, ffn_dim: 48, max_seq: 10 };
    let cfg = TrainConfig {
        epochs: 25,
        local_batch: 16,
        schedule: LrSchedule::WarmupPoly { lr: 3e-2, warmup: 10, total: 400, power: 1.0 },
        kfac: Some(kfac_cfg()),
        seed: 4,
        eval_batch: 32,
        ..Default::default()
    };
    let r = train_distributed(
        2,
        || BertMini::new(model_cfg, &mut Rng::seed_from_u64(9)),
        Lamb::new,
        &train,
        &val,
        &cfg,
    );
    // The rule-following corpus has ~97% predictable masked tokens.
    assert!(r.best_metric() > 0.5, "BERT masked acc {}", r.best_metric());
}

#[test]
fn roi_head_converges_with_kfac() {
    // The detection-head task uses a plain (x -> class + box) structure;
    // train single-process with the Kfac API directly to also cover the
    // RoiHeadMini model outside the harness.
    let mut rng = Rng::seed_from_u64(71);
    let feat = 12usize;
    let n = 128usize;
    // Features correlated with class and box targets.
    let centers = Matrix::randn(3, feat, 1.0, &mut rng);
    let mut x = Matrix::zeros(n, feat);
    let mut classes = Vec::new();
    let mut boxes = Matrix::zeros(n, 4);
    for i in 0..n {
        let c = i % 3;
        classes.push(c);
        for j in 0..feat {
            x.set(i, j, centers.get(c, j) + 0.3 * rng.normal());
        }
        for j in 0..4 {
            boxes.set(i, j, 0.5 * centers.get(c, j));
        }
    }
    let targets = RoiTargets { classes, boxes };

    let comm = kaisa::comm::LocalComm::new();
    let mut model = RoiHeadMini::new(feat, 16, 3, &mut rng);
    let mut kfac = kaisa::core::Kfac::new(kfac_cfg(), &mut model, &comm);
    let mut opt = Sgd::with_momentum(0.9);
    let before = model.evaluate(&x, &targets);
    for _ in 0..40 {
        kfac.prepare(&mut model);
        model.zero_grad();
        let _ = model.forward_backward(&x, &targets);
        kfac.step(&mut model, &comm, 0.05);
        kaisa::optim::Optimizer::step_model(&mut opt, &mut model, 0.05);
    }
    let after = model.evaluate(&x, &targets);
    assert!(after.loss < before.loss * 0.5, "loss {} -> {}", before.loss, after.loss);
    assert!(after.metric > 0.9, "cls accuracy {}", after.metric);
}

#[test]
fn kfac_needs_fewer_epochs_than_sgd_on_spirals() {
    // The Figure 1 claim at miniature scale: on a non-linearly-separable
    // task at equal batch size and schedule, K-FAC reaches the target in at
    // most as many epochs as SGD — usually strictly fewer.
    let (train, val) = kaisa::data::SpiralDataset::generate(600, 6, 2, 0.05, 73).split_fifth();
    let target = 0.93f32;
    let epochs_to_target = |kfac: Option<KfacConfig>| -> usize {
        let cfg = TrainConfig {
            epochs: 40,
            local_batch: 24,
            schedule: LrSchedule::Constant { lr: 0.25 },
            kfac,
            target_metric: Some(target),
            seed: 5,
            ..Default::default()
        };
        let r = train_distributed(
            1,
            || Mlp::new(&[6, 24, 24, 2], &mut Rng::seed_from_u64(15)),
            || Sgd::with_momentum(0.9),
            &train,
            &val,
            &cfg,
        );
        r.epochs_to_metric(target).unwrap_or(usize::MAX)
    };
    let sgd_epochs = epochs_to_target(None);
    let kfac_epochs = epochs_to_target(Some(
        KfacConfig::builder().factor_update_freq(5).inv_update_freq(10).build(),
    ));
    assert!(
        kfac_epochs <= sgd_epochs,
        "K-FAC should converge in fewer epochs: {kfac_epochs} vs SGD {sgd_epochs}"
    );
    assert!(kfac_epochs < usize::MAX, "K-FAC must reach the target");
}
