//! Data-parallel correctness: training on W ranks with local batch B/W must
//! behave like a single process with batch B (Figure 3's contract), with and
//! without K-FAC preconditioning.

use kaisa::comm::{Communicator, ThreadComm};
use kaisa::core::KfacConfig;
use kaisa::data::GaussianBlobs;
use kaisa::nn::models::Mlp;
use kaisa::nn::Model;
use kaisa::optim::{LrSchedule, Sgd};
use kaisa::tensor::{Matrix, Rng};
use kaisa::trainer::{train_distributed, TrainConfig};

fn blobs() -> (GaussianBlobs, GaussianBlobs) {
    GaussianBlobs::generate(320, 8, 4, 0.35, 41).split(64)
}

#[test]
fn world_sizes_converge_equally_with_kfac() {
    let (train, val) = blobs();
    let run = |world: usize, local_batch: usize| {
        let cfg = TrainConfig {
            epochs: 6,
            local_batch,
            schedule: LrSchedule::Constant { lr: 0.15 },
            kfac: Some(KfacConfig::builder().factor_update_freq(2).inv_update_freq(4).build()),
            seed: 7,
            ..Default::default()
        };
        train_distributed(
            world,
            || Mlp::new(&[8, 16, 4], &mut Rng::seed_from_u64(11)),
            || Sgd::with_momentum(0.9),
            &train,
            &val,
            &cfg,
        )
    };
    let single = run(1, 32);
    let multi = run(4, 8);
    assert_eq!(single.iterations, multi.iterations, "same optimizer step count");
    // Shards shuffle differently per world size, so require comparable (not
    // identical) convergence.
    assert!(single.best_metric() > 0.9, "single-rank acc {}", single.best_metric());
    assert!(multi.best_metric() > 0.9, "multi-rank acc {}", multi.best_metric());
    let loss_gap = (single.final_loss() - multi.final_loss()).abs();
    assert!(loss_gap < 0.3, "loss gap {loss_gap}");
}

#[test]
fn identical_batches_give_identical_models_across_world_sizes() {
    // Strip the sampler out of the picture: feed every rank the same global
    // batch (scaled shards of it) and verify the K-FAC training trajectory
    // is world-size-invariant to floating-point tolerance.
    let mut rng = Rng::seed_from_u64(51);
    let global_x = Matrix::randn(16, 6, 1.0, &mut rng);
    let global_y: Vec<usize> = (0..16).map(|i| i % 3).collect();

    let train = |world: usize| -> Vec<f32> {
        let x = &global_x;
        let y = &global_y;
        let mut results = ThreadComm::run(world, move |comm| {
            let mut model = Mlp::new(&[6, 8, 3], &mut Rng::seed_from_u64(12));
            let mut opt = Sgd::new();
            let cfg = KfacConfig::builder().factor_update_freq(1).inv_update_freq(2).build();
            let mut kfac = kaisa::core::Kfac::new(cfg, &mut model, comm);
            // Rank r takes rows [r*16/world, (r+1)*16/world).
            let shard = 16 / world;
            let lo = comm.rank() * shard;
            let x_local = x.rows_slice(lo, lo + shard);
            let y_local: Vec<usize> = global_y_slice(y, lo, shard);
            for _ in 0..5 {
                kfac.prepare(&mut model);
                model.zero_grad();
                let _ = model.forward_backward(&x_local, &y_local);
                kaisa::trainer::allreduce_gradients(&mut model, comm, 1);
                kfac.step(&mut model, comm, 0.1);
                kaisa::optim::Optimizer::step_model(&mut opt, &mut model, 0.1);
            }
            model.params_flat()
        });
        results.swap_remove(0)
    };

    let w1 = train(1);
    let w2 = train(2);
    let w4 = train(4);
    let d12 = max_diff(&w1, &w2);
    let d14 = max_diff(&w1, &w4);
    // Mean-of-shard-means == global mean for equal shards, so only the
    // reduction order differs.
    assert!(d12 < 1e-4, "world 1 vs 2 diverged by {d12}");
    assert!(d14 < 1e-4, "world 1 vs 4 diverged by {d14}");
}

#[test]
fn lamb_trains_distributed_with_kfac() {
    // Cross-check a second optimizer under the harness (LAMB is the BERT
    // baseline; here it drives the MLP just to exercise the segment plumbing
    // in a multi-rank setting).
    let (train, val) = blobs();
    let cfg = TrainConfig {
        epochs: 6,
        local_batch: 16,
        schedule: LrSchedule::Warmup { lr: 0.02, warmup: 5 },
        kfac: Some(KfacConfig::builder().factor_update_freq(2).inv_update_freq(4).build()),
        seed: 13,
        ..Default::default()
    };
    let result = train_distributed(
        2,
        || Mlp::new(&[8, 16, 4], &mut Rng::seed_from_u64(14)),
        kaisa::optim::Lamb::new,
        &train,
        &val,
        &cfg,
    );
    assert!(result.best_metric() > 0.8, "LAMB+KAISA acc {}", result.best_metric());
}

fn global_y_slice(y: &[usize], lo: usize, len: usize) -> Vec<usize> {
    y[lo..lo + len].to_vec()
}

fn max_diff(a: &[f32], b: &[f32]) -> f32 {
    a.iter().zip(b).map(|(x, y)| (x - y).abs()).fold(0.0, f32::max)
}
