//! The pipelined executor's contract: splitting `Kfac::step` into per-layer
//! stage tasks with non-blocking collectives changes *when* work happens,
//! never *what* is computed. Serial and pipelined execution must be bitwise
//! identical — same preconditioned gradients, same trained weights, same
//! logical communication volume — across every distribution strategy, world
//! size, precision, and communication layout.

use kaisa::comm::{
    ClusterNetwork, CollectiveCostModel, CommTag, Communicator, MeterSnapshot, ThreadComm,
};
use kaisa::core::{
    plan_assignments, AssignmentStrategy, ComputeRates, Kfac, KfacConfig, KfacConfigBuilder,
    StepModel,
};
use kaisa::data::{Dataset, GaussianBlobs, ShardSampler};
use kaisa::nn::models::{Mlp, ResNetMini, ResNetMiniConfig};
use kaisa::nn::Model;
use kaisa::optim::{Optimizer, Sgd};
use kaisa::tensor::{Precision, Rng};
use proptest::prelude::*;

/// Train an MLP for `steps` on `world` ranks and return, per rank, the final
/// parameters, the last preconditioned gradients, the logical K-FAC comm
/// bytes, and the rank's meter snapshot.
fn train(
    world: usize,
    steps: usize,
    seed: u64,
    build: impl Fn(KfacConfigBuilder) -> KfacConfigBuilder + Sync,
) -> Vec<(Vec<f32>, Vec<f32>, u64, MeterSnapshot)> {
    let dataset = GaussianBlobs::generate(128, 8, 4, 0.4, seed);
    ThreadComm::run(world, |comm| {
        let mut model = Mlp::new(&[8, 12, 4], &mut Rng::seed_from_u64(seed + 1));
        let mut opt = Sgd::with_momentum(0.9);
        let cfg = build(KfacConfig::builder().factor_update_freq(2).inv_update_freq(4)).build();
        let mut kfac = Kfac::new(cfg, &mut model, comm);
        let sampler = ShardSampler::new(dataset.len(), world, comm.rank(), 8, seed);
        let mut last_grads = Vec::new();
        for step in 0..steps {
            let epoch = step / sampler.batches_per_epoch();
            let batches = sampler.epoch_batches(epoch);
            let indices = &batches[step % sampler.batches_per_epoch()];
            let (x, y) = dataset.batch(indices);
            kfac.prepare(&mut model);
            model.zero_grad();
            let _ = model.forward_backward(&x, &y);
            kaisa::trainer::allreduce_gradients(&mut model, comm, 1);
            kfac.step(&mut model, comm, 0.1);
            last_grads = model.grads_flat();
            opt.step_model(&mut model, 0.1);
        }
        // Drain any depth-D window residue, then quiesce all ranks so every
        // collective of the final step has been recorded in the meter.
        kfac.flush(comm);
        comm.barrier();
        (model.params_flat(), last_grads, kfac.comm_bytes(), comm.meter_snapshot())
    })
}

fn bits(v: &[f32]) -> Vec<u32> {
    v.iter().map(|x| x.to_bits()).collect()
}

/// Assert the two executors produced bit-identical training on every rank.
fn assert_bitwise_equal(
    serial: &[(Vec<f32>, Vec<f32>, u64, MeterSnapshot)],
    pipelined: &[(Vec<f32>, Vec<f32>, u64, MeterSnapshot)],
    ctx: &str,
) {
    assert_eq!(serial.len(), pipelined.len());
    for (rank, (s, p)) in serial.iter().zip(pipelined).enumerate() {
        assert_eq!(bits(&s.0), bits(&p.0), "{ctx}: rank {rank} params differ");
        assert_eq!(bits(&s.1), bits(&p.1), "{ctx}: rank {rank} grads differ");
        assert_eq!(s.2, p.2, "{ctx}: rank {rank} logical comm bytes differ");
    }
}

#[test]
fn pipelined_is_bitwise_identical_across_strategies_and_worlds() {
    for world in [1usize, 2, 4, 8] {
        for frac in [1.0 / world as f64, 0.5, 1.0] {
            let serial = train(world, 10, 31, |b| b.grad_worker_frac(frac).pipelined(false));
            let pipelined = train(world, 10, 31, |b| b.grad_worker_frac(frac).pipelined(true));
            assert_bitwise_equal(&serial, &pipelined, &format!("world={world} frac={frac}"));
        }
    }
}

#[test]
fn pipelined_is_bitwise_identical_with_fp16_and_triangular_comm() {
    for (precision, triangular) in
        [(Precision::Fp16, false), (Precision::Fp32, true), (Precision::Fp16, true)]
    {
        let mk = |pipelined: bool| {
            train(4, 8, 47, move |b| {
                b.grad_worker_frac(0.5)
                    .precision(precision)
                    .triangular_comm(triangular)
                    .pipelined(pipelined)
            })
        };
        let ctx = format!("precision={precision:?} triangular={triangular}");
        assert_bitwise_equal(&mk(false), &mk(true), &ctx);
    }
}

#[test]
fn pipelined_is_bitwise_identical_on_variant_algorithms() {
    // The direct-inverse fallback (Eq. 12–14), the outer-product ablation,
    // and EK-FAC exercise different collectives; all must stay bit-exact.
    type Variant = (&'static str, fn(KfacConfigBuilder) -> KfacConfigBuilder);
    let variants: [Variant; 3] = [
        ("inverse", |b| b.use_eigen(false)),
        ("no-precompute", |b| b.precompute_outer(false)),
        ("ekfac", |b| b.ekfac(true)),
    ];
    for (name, variant) in variants {
        let mk = |pipelined: bool| {
            train(4, 8, 59, |b| variant(b.grad_worker_frac(0.5)).pipelined(pipelined))
        };
        assert_bitwise_equal(&mk(false), &mk(true), name);
    }
}

#[test]
fn meter_attributes_every_byte_to_an_issuing_stage() {
    // HYBRID-OPT at world 4 (two gradient workers per layer): factor
    // allreduces, eigendecomposition broadcasts, per-step gradient
    // broadcasts, and the DDP allreduce are all live.
    let results = train(4, 8, 71, |b| b.grad_worker_frac(0.5).pipelined(true));
    for (rank, (_, _, _, meter)) in results.iter().enumerate() {
        assert!(meter.tag_bytes(CommTag::Ddp) > 0, "rank {rank}: DDP untagged");
        assert!(meter.tag_bytes(CommTag::FactorComm) > 0, "rank {rank}: factor allreduce untagged");
        assert!(meter.tag_bytes(CommTag::EigComm) > 0, "rank {rank}: eig broadcast untagged");
        assert!(meter.tag_bytes(CommTag::GradComm) > 0, "rank {rank}: grad broadcast untagged");
        assert_eq!(
            meter.tag_bytes(CommTag::Untagged),
            0,
            "rank {rank}: stage attribution must be exhaustive"
        );
        assert_eq!(
            meter.tag_bytes(CommTag::FactorReduce) + meter.tag_bytes(CommTag::FactorGather),
            0,
            "rank {rank}: dense path must not emit sharded-path tags"
        );
        let tagged: u64 = [
            CommTag::Ddp,
            CommTag::FactorComm,
            CommTag::FactorReduce,
            CommTag::FactorGather,
            CommTag::EigComm,
            CommTag::GradComm,
            CommTag::Untagged,
        ]
        .iter()
        .map(|&t| meter.tag_bytes(t))
        .sum();
        assert_eq!(tagged, meter.total_bytes(), "rank {rank}: bytes leaked a tag");
    }
    // Serial execution routes through the same tagged begin/complete pairs,
    // so its attribution must be identical collective-for-collective.
    let serial = train(4, 8, 71, |b| b.grad_worker_frac(0.5).pipelined(false));
    for (rank, (s, p)) in serial.iter().zip(&results).enumerate() {
        for tag in [CommTag::Ddp, CommTag::FactorComm, CommTag::EigComm, CommTag::GradComm] {
            assert_eq!(
                s.3.tag_bytes(tag),
                p.3.tag_bytes(tag),
                "rank {rank}: {tag:?} bytes differ between executors"
            );
        }
    }
}

/// Assert two runs trained identically (params + preconditioned grads) on
/// every rank, *without* comparing logical comm bytes or meters — the
/// sharded path moves different bytes than the dense reference by design.
fn assert_numerics_equal(
    reference: &[(Vec<f32>, Vec<f32>, u64, MeterSnapshot)],
    candidate: &[(Vec<f32>, Vec<f32>, u64, MeterSnapshot)],
    ctx: &str,
) {
    assert_eq!(reference.len(), candidate.len());
    for (rank, (r, c)) in reference.iter().zip(candidate).enumerate() {
        assert_eq!(bits(&r.0), bits(&c.0), "{ctx}: rank {rank} params differ");
        assert_eq!(bits(&r.1), bits(&c.1), "{ctx}: rank {rank} grads differ");
    }
}

#[test]
fn sharded_factors_match_dense_bitwise_across_strategies_and_worlds() {
    // The tentpole contract: reduce-scatter + worker-group regather folds the
    // exact same averaged factors as the dense allreduce, so training is
    // bitwise identical across MEM-OPT / HYBRID-OPT / COMM-OPT.
    for world in [1usize, 2, 4, 8] {
        for frac in [1.0 / world as f64, 0.5, 1.0] {
            for pipelined in [false, true] {
                let dense = train(world, 10, 83, |b| {
                    b.grad_worker_frac(frac).pipelined(pipelined).sharded_factors(false)
                });
                let sharded = train(world, 10, 83, |b| {
                    b.grad_worker_frac(frac).pipelined(pipelined).sharded_factors(true)
                });
                let ctx = format!("world={world} frac={frac} pipelined={pipelined}");
                assert_numerics_equal(&dense, &sharded, &ctx);
            }
        }
    }
}

#[test]
fn sharded_factors_match_dense_with_fp16_and_triangular_comm() {
    // Elementwise quantization + section packing keep the sharded unpack
    // bitwise equal to the dense whole-payload unpack in every layout.
    for (precision, triangular) in
        [(Precision::Fp16, false), (Precision::Fp32, true), (Precision::Fp16, true)]
    {
        let mk = |sharded: bool| {
            train(4, 8, 89, move |b| {
                b.grad_worker_frac(0.5)
                    .precision(precision)
                    .triangular_comm(triangular)
                    .pipelined(true)
                    .sharded_factors(sharded)
            })
        };
        let ctx = format!("precision={precision:?} triangular={triangular}");
        assert_numerics_equal(&mk(false), &mk(true), &ctx);
    }
}

#[test]
fn sharded_serial_and_pipelined_are_bitwise_identical() {
    // Within the sharded path the two executors issue identical collectives,
    // so everything — including logical comm bytes — must match.
    for world in [2usize, 4] {
        let serial = train(world, 10, 97, |b| {
            b.grad_worker_frac(0.5).pipelined(false).sharded_factors(true)
        });
        let pipelined =
            train(world, 10, 97, |b| b.grad_worker_frac(0.5).pipelined(true).sharded_factors(true));
        assert_bitwise_equal(&serial, &pipelined, &format!("sharded world={world}"));
    }
}

#[test]
fn sharded_inverse_fallback_regathers_split_factors() {
    // With use_eigen(false) the direct-inverse solver consumes both factors
    // on one rank, so layers whose A/G shards landed on different workers
    // must regather — and the result still matches the dense fallback.
    let dense = train(4, 8, 101, |b| {
        b.grad_worker_frac(0.5).use_eigen(false).pipelined(true).sharded_factors(false)
    });
    let sharded = train(4, 8, 101, |b| {
        b.grad_worker_frac(0.5).use_eigen(false).pipelined(true).sharded_factors(true)
    });
    assert_numerics_equal(&dense, &sharded, "inverse fallback");
    let gather_bytes: u64 =
        sharded.iter().map(|(_, _, _, m)| m.tag_bytes(CommTag::FactorGather)).sum();
    assert!(gather_bytes > 0, "split-worker layers must regather under the inverse fallback");
    let eigen_path =
        train(4, 8, 101, |b| b.grad_worker_frac(0.5).pipelined(true).sharded_factors(true));
    let eigen_gather: u64 =
        eigen_path.iter().map(|(_, _, _, m)| m.tag_bytes(CommTag::FactorGather)).sum();
    assert_eq!(eigen_gather, 0, "the eigen path folds shards in place and never regathers");
}

#[test]
fn sharded_factors_cut_metered_factor_bytes_at_world_8() {
    // The acceptance bound: at world 8, per-rank metered factor traffic on
    // the sharded path must drop >= 40% vs the dense allreduce.
    let dense = train(8, 10, 103, |b| b.grad_worker_frac(0.5).pipelined(true));
    let sharded =
        train(8, 10, 103, |b| b.grad_worker_frac(0.5).pipelined(true).sharded_factors(true));
    for (rank, (d, s)) in dense.iter().zip(&sharded).enumerate() {
        let dense_factor = d.3.tag_bytes(CommTag::FactorComm);
        let sharded_factor =
            s.3.tag_bytes(CommTag::FactorReduce) + s.3.tag_bytes(CommTag::FactorGather);
        assert!(dense_factor > 0, "rank {rank}: dense factor traffic missing");
        assert!(
            (sharded_factor as f64) <= 0.6 * dense_factor as f64,
            "rank {rank}: sharded factor bytes {sharded_factor} not >=40% below dense {dense_factor}"
        );
        assert_eq!(
            s.3.tag_bytes(CommTag::FactorComm),
            0,
            "rank {rank}: sharded path must not fall back to the dense allreduce"
        );
    }
}

#[test]
fn priority_schedule_never_changes_numerics() {
    // Reordering sweep issue order keeps every collective's group and
    // payload, so training — including logical comm bytes — is bitwise
    // unchanged in both the dense and sharded paths.
    for world in [4usize, 8] {
        for sharded in [false, true] {
            let fixed = train(world, 10, 107, |b| {
                b.grad_worker_frac(0.5).pipelined(true).sharded_factors(sharded)
            });
            let prioritized = train(world, 10, 107, |b| {
                b.grad_worker_frac(0.5)
                    .pipelined(true)
                    .sharded_factors(sharded)
                    .priority_schedule(true)
            });
            let ctx = format!("world={world} sharded={sharded}");
            assert_bitwise_equal(&fixed, &prioritized, &ctx);
            for (rank, (f, p)) in fixed.iter().zip(&prioritized).enumerate() {
                for tag in CommTag::ALL {
                    assert_eq!(
                        f.3.tag_bytes(tag),
                        p.3.tag_bytes(tag),
                        "{ctx}: rank {rank} {tag:?} bytes changed under priority schedule"
                    );
                }
            }
        }
    }
}

/// Like [`train`], but drives the task runtime through the trainer's
/// two-step lookahead split: `step_begin` launches factor collectives
/// *before* the DDP gradient allreduce, `step_finish` drains them after.
fn train_lookahead(
    world: usize,
    steps: usize,
    seed: u64,
    build: impl Fn(KfacConfigBuilder) -> KfacConfigBuilder + Sync,
) -> Vec<(Vec<f32>, Vec<f32>, u64, MeterSnapshot)> {
    let dataset = GaussianBlobs::generate(128, 8, 4, 0.4, seed);
    ThreadComm::run(world, |comm| {
        let mut model = Mlp::new(&[8, 12, 4], &mut Rng::seed_from_u64(seed + 1));
        let mut opt = Sgd::with_momentum(0.9);
        let cfg = build(
            KfacConfig::builder().factor_update_freq(2).inv_update_freq(4).async_runtime(true),
        )
        .build();
        let mut kfac = Kfac::new(cfg, &mut model, comm);
        let sampler = ShardSampler::new(dataset.len(), world, comm.rank(), 8, seed);
        let mut last_grads = Vec::new();
        for step in 0..steps {
            let epoch = step / sampler.batches_per_epoch();
            let batches = sampler.epoch_batches(epoch);
            let indices = &batches[step % sampler.batches_per_epoch()];
            let (x, y) = dataset.batch(indices);
            kfac.prepare(&mut model);
            model.zero_grad();
            let _ = model.forward_backward(&x, &y);
            kfac.step_begin(&mut model, comm);
            kaisa::trainer::allreduce_gradients(&mut model, comm, 1);
            kfac.step_finish(&mut model, comm, 0.1);
            last_grads = model.grads_flat();
            opt.step_model(&mut model, 0.1);
        }
        kfac.flush(comm);
        comm.barrier();
        (model.params_flat(), last_grads, kfac.comm_bytes(), comm.meter_snapshot())
    })
}

#[test]
fn async_runtime_is_bitwise_identical_across_strategies_and_worlds() {
    // The tentpole contract: the task runtime replays the sweep executor's
    // collective order through plan-time gates, so training is bitwise
    // identical to the serial reference on the full strategy matrix.
    for world in [1usize, 2, 4, 8] {
        for frac in [1.0 / world as f64, 0.5, 1.0] {
            let serial = train(world, 10, 31, |b| b.grad_worker_frac(frac).pipelined(false));
            let runtime = train(world, 10, 31, |b| b.grad_worker_frac(frac).async_runtime(true));
            assert_bitwise_equal(&serial, &runtime, &format!("runtime world={world} frac={frac}"));
        }
    }
}

#[test]
fn async_runtime_is_bitwise_identical_with_fp16_triangular_and_sharded() {
    for (precision, triangular, sharded) in [
        (Precision::Fp16, false, false),
        (Precision::Fp32, true, false),
        (Precision::Fp16, true, true),
        (Precision::Fp32, false, true),
    ] {
        let mk = |runtime: bool| {
            train(4, 8, 47, move |b| {
                b.grad_worker_frac(0.5)
                    .precision(precision)
                    .triangular_comm(triangular)
                    .sharded_factors(sharded)
                    .pipelined(!runtime)
                    .async_runtime(runtime)
            })
        };
        let ctx = format!("runtime precision={precision:?} tri={triangular} sharded={sharded}");
        assert_bitwise_equal(&mk(false), &mk(true), &ctx);
    }
}

#[test]
fn async_runtime_is_bitwise_identical_on_variant_algorithms() {
    type Variant = (&'static str, fn(KfacConfigBuilder) -> KfacConfigBuilder);
    let variants: [Variant; 3] = [
        ("inverse", |b| b.use_eigen(false)),
        ("no-precompute", |b| b.precompute_outer(false)),
        ("ekfac", |b| b.ekfac(true)),
    ];
    for (name, variant) in variants {
        let serial = train(4, 8, 59, |b| variant(b.grad_worker_frac(0.5)).pipelined(false));
        let runtime = train(4, 8, 59, |b| variant(b.grad_worker_frac(0.5)).async_runtime(true));
        assert_bitwise_equal(&serial, &runtime, &format!("runtime {name}"));
    }
}

#[test]
fn lookahead_split_is_bitwise_identical_to_monolithic_step() {
    // step_begin before the DDP allreduce + step_finish after must equal the
    // serial reference exactly: factor collectives and the DDP allreduce are
    // independent, and rank-ordered reductions pin every bit.
    for (frac, sharded) in [(0.5, false), (0.25, false), (0.5, true)] {
        let serial = train(4, 10, 113, |b| {
            b.grad_worker_frac(frac).sharded_factors(sharded).pipelined(false)
        });
        let split =
            train_lookahead(4, 10, 113, |b| b.grad_worker_frac(frac).sharded_factors(sharded));
        let ctx = format!("lookahead frac={frac} sharded={sharded}");
        assert_bitwise_equal(&serial, &split, &ctx);
    }
}

/// Like [`train_lookahead`], but with gradient accumulation: each step's
/// indices split into `grad_accum` micro-batches whose gradients (and K-FAC
/// statistics) accumulate before the split-step K-FAC update.
fn train_lookahead_accum(
    world: usize,
    steps: usize,
    seed: u64,
    grad_accum: usize,
    build: impl Fn(KfacConfigBuilder) -> KfacConfigBuilder + Sync,
) -> Vec<(Vec<f32>, Vec<f32>, u64, MeterSnapshot)> {
    let dataset = GaussianBlobs::generate(128, 8, 4, 0.4, seed);
    ThreadComm::run(world, |comm| {
        let mut model = Mlp::new(&[8, 12, 4], &mut Rng::seed_from_u64(seed + 1));
        let mut opt = Sgd::with_momentum(0.9);
        let cfg = build(
            KfacConfig::builder().factor_update_freq(2).inv_update_freq(4).async_runtime(true),
        )
        .build();
        let mut kfac = Kfac::new(cfg, &mut model, comm);
        let sampler = ShardSampler::new(dataset.len(), world, comm.rank(), 8, seed);
        let mut last_grads = Vec::new();
        for step in 0..steps {
            let epoch = step / sampler.batches_per_epoch();
            let batches = sampler.epoch_batches(epoch);
            let indices = &batches[step % sampler.batches_per_epoch()];
            kfac.prepare(&mut model);
            model.zero_grad();
            let micro = indices.len().div_ceil(grad_accum).max(1);
            for chunk in indices.chunks(micro) {
                let (x, y) = dataset.batch(chunk);
                let _ = model.forward_backward(&x, &y);
            }
            kfac.step_begin(&mut model, comm);
            kaisa::trainer::allreduce_gradients(&mut model, comm, grad_accum);
            kfac.step_finish(&mut model, comm, 0.1);
            last_grads = model.grads_flat();
            opt.step_model(&mut model, 0.1);
        }
        kfac.flush(comm);
        comm.barrier();
        (model.params_flat(), last_grads, kfac.comm_bytes(), comm.meter_snapshot())
    })
}

#[test]
fn depth_window_is_bitwise_identical_across_depths_and_layouts() {
    // The tentpole contract: a depth-D cross-iteration window defers factor
    // completes across iteration boundaries but must not change a single
    // bit of training vs the serial executor, dense or sharded.
    for depth in [1usize, 2, 3] {
        for sharded in [false, true] {
            let serial = train(4, 10, 31, |b| {
                b.grad_worker_frac(0.5).pipelined(false).sharded_factors(sharded)
            });
            let windowed = train(4, 10, 31, |b| {
                b.grad_worker_frac(0.5)
                    .async_runtime(true)
                    .cross_iter_depth(depth)
                    .sharded_factors(sharded)
            });
            let ctx = format!("depth={depth} sharded={sharded}");
            assert_bitwise_equal(&serial, &windowed, &ctx);
        }
    }
}

#[test]
fn depth_window_is_bitwise_identical_with_fp16_triangular_and_grad_accum() {
    // Depth 3 through the lookahead split, with half-precision triangular
    // factor payloads and 2-way gradient accumulation — the layouts that
    // most reshape what the deferred completes unpack and fold.
    for (precision, triangular, sharded) in [
        (Precision::Fp16, true, false),
        (Precision::Fp16, false, true),
        (Precision::Fp32, true, true),
    ] {
        let serial = train(4, 8, 47, move |b| {
            b.grad_worker_frac(0.5)
                .precision(precision)
                .triangular_comm(triangular)
                .sharded_factors(sharded)
                .pipelined(false)
        });
        let deep = train_lookahead_accum(4, 8, 47, 1, move |b| {
            b.grad_worker_frac(0.5)
                .precision(precision)
                .triangular_comm(triangular)
                .sharded_factors(sharded)
                .cross_iter_depth(3)
        });
        let ctx = format!("depth=3 precision={precision:?} tri={triangular} sharded={sharded}");
        assert_bitwise_equal(&serial, &deep, &ctx);
    }
    // Gradient accumulation: micro-batch statistics accumulate identically
    // whether the window runs at depth 1 or depth 3.
    let shallow = train_lookahead_accum(4, 8, 53, 2, |b| {
        b.grad_worker_frac(0.5).sharded_factors(true).cross_iter_depth(1)
    });
    let deep = train_lookahead_accum(4, 8, 53, 2, |b| {
        b.grad_worker_frac(0.5).sharded_factors(true).cross_iter_depth(3)
    });
    assert_bitwise_equal(&shallow, &deep, "depth=3 grad_accum=2");
}

#[test]
fn depth_auto_resolves_identically_on_every_rank() {
    // depth(auto) is a pure function of layer dims, world size, network,
    // and the factor update frequency — so every rank must resolve the
    // same depth without communicating.
    let depths = ThreadComm::run(4, |comm| {
        let mut model = Mlp::new(&[8, 12, 4], &mut Rng::seed_from_u64(9));
        let cfg = KfacConfig::builder()
            .factor_update_freq(5)
            .inv_update_freq(10)
            .async_runtime(true)
            .cross_iter_depth_auto()
            .network(ClusterNetwork::ethernet_10g())
            .build();
        let kfac = Kfac::new(cfg, &mut model, comm);
        comm.barrier();
        kfac.cross_iter_depth()
    });
    assert!(depths.iter().all(|&d| d == depths[0]), "ranks disagree on auto depth: {depths:?}");
    assert!(depths[0] >= 1);
}

#[test]
fn cost_model_shows_overlap_win_on_comm_bound_resnet() {
    // The acceptance configuration: ResNetMini layer dims, world 8,
    // HYBRID-OPT, on a comm-bound 10GbE network. The list-scheduled pipeline
    // must beat the serial lock-step walk.
    let cfg = ResNetMiniConfig {
        in_channels: 3,
        width: 32,
        blocks_stage1: 2,
        blocks_stage2: 2,
        classes: 10,
    };
    let mut model = ResNetMini::new(cfg, &mut Rng::seed_from_u64(5));
    let dims: Vec<(usize, usize)> =
        model.kfac_layers().iter().map(|l| (l.a_dim(), l.g_dim())).collect();
    assert!(dims.len() >= 5, "ResNetMini should expose several K-FAC layers");
    let world = 8;
    let plan = plan_assignments(&dims, world, 0.5, AssignmentStrategy::ComputeLpt);
    let cost = CollectiveCostModel::new(ClusterNetwork::ethernet_10g());
    let m = StepModel::new(&dims, &plan, &cost, &ComputeRates::default(), 4, false);
    assert!(
        m.pipelined_seconds() < m.serial_seconds(),
        "comm-bound world=8 must overlap: pipelined {} vs serial {}",
        m.pipelined_seconds(),
        m.serial_seconds()
    );
    assert!(
        m.overlap_speedup() > 1.2,
        "speedup {} should be material on a comm-bound network",
        m.overlap_speedup()
    );
    // Sanity: the dependency-only critical path lower-bounds the schedule.
    assert!(m.graph().critical_path() <= m.pipelined_seconds() + 1e-15);
    // The task runtime relaxes the sweep's lock-step issue order, so its
    // modeled makespan can never exceed the pipelined schedule.
    assert!(
        m.runtime_seconds() <= m.pipelined_seconds() + 1e-15,
        "runtime {} must not exceed pipelined {}",
        m.runtime_seconds(),
        m.pipelined_seconds()
    );
    // And across the iteration boundary the two-iteration window model must
    // overlap iteration-0 factor traffic with iteration-1 forward/backward.
    let (pipelined_w, runtime_w) =
        kaisa::core::modeled_cross_iter_makespans(&dims, world, ClusterNetwork::ethernet_10g(), 32);
    assert!(
        runtime_w <= pipelined_w + 1e-15,
        "cross-iteration window: runtime {runtime_w} must not exceed pipelined {pipelined_w}"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    #[test]
    fn random_configs_stay_bitwise_identical(
        world in 1usize..5,
        frac in 0.2f64..1.0,
        steps in 3usize..8,
        seed in 100u64..200,
        sharded in any::<bool>(),
        runtime in any::<bool>(),
        depth in 1usize..4,
    ) {
        let serial = train(world, steps, seed, |b| {
            b.grad_worker_frac(frac).pipelined(false).sharded_factors(sharded)
        });
        let pipelined = train(world, steps, seed, |b| {
            b.grad_worker_frac(frac)
                .pipelined(!runtime)
                .async_runtime(runtime)
                .cross_iter_depth(if runtime { depth } else { 1 })
                .sharded_factors(sharded)
        });
        for (rank, (s, p)) in serial.iter().zip(&pipelined).enumerate() {
            prop_assert_eq!(bits(&s.0), bits(&p.0), "rank {} params", rank);
            prop_assert_eq!(bits(&s.1), bits(&p.1), "rank {} grads", rank);
            prop_assert_eq!(s.2, p.2, "rank {} comm bytes", rank);
        }
    }
}
