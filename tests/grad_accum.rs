//! Gradient accumulation under K-FAC (paper Section 4.2): accumulating k
//! micro-batches must match one big batch, both for the gradients and for
//! the captured Kronecker-factor statistics, and KAISA's
//! accumulate-during-pass capture must hold memory constant while the
//! store-raw baseline grows linearly.

use kaisa::comm::LocalComm;
use kaisa::core::{Kfac, KfacConfig};
use kaisa::nn::models::Mlp;
use kaisa::nn::{CaptureMode, Model};
use kaisa::tensor::{Matrix, Rng};

fn toy() -> (Mlp, Matrix, Vec<usize>) {
    let mut rng = Rng::seed_from_u64(81);
    let model = Mlp::new(&[6, 10, 3], &mut rng);
    let x = Matrix::randn(32, 6, 1.0, &mut rng);
    let y: Vec<usize> = (0..32).map(|i| i % 3).collect();
    (model, x, y)
}

/// One K-FAC step over the batch split into `chunks` micro-batches; returns
/// the preconditioned gradients.
fn kfac_step_with_accum(model: &Mlp, x: &Matrix, y: &[usize], chunks: usize) -> Vec<f32> {
    kfac_step_with_accum_cfg(model, x, y, chunks, false, false)
}

/// Like [`kfac_step_with_accum`], with shard-resident factor accumulation
/// and triangular wire layout toggles.
fn kfac_step_with_accum_cfg(
    model: &Mlp,
    x: &Matrix,
    y: &[usize],
    chunks: usize,
    sharded: bool,
    triangular: bool,
) -> Vec<f32> {
    let comm = LocalComm::new();
    let mut model = model.clone();
    let cfg = KfacConfig::builder()
        .factor_update_freq(1)
        .inv_update_freq(1)
        .sharded_factors(sharded)
        .triangular_comm(triangular)
        .build();
    let mut kfac = Kfac::new(cfg, &mut model, &comm);
    kfac.prepare(&mut model);
    model.zero_grad();
    let rows = x.rows() / chunks;
    for c in 0..chunks {
        let xc = x.rows_slice(c * rows, (c + 1) * rows);
        let yc = y[c * rows..(c + 1) * rows].to_vec();
        let _ = model.forward_backward(&xc, &yc);
    }
    // Mean over micro-batches.
    let mut grads = model.grads_flat();
    for g in grads.iter_mut() {
        *g /= chunks as f32;
    }
    model.set_grads_flat(&grads);
    kfac.step(&mut model, &comm, 0.1);
    model.grads_flat()
}

#[test]
fn accumulated_step_matches_full_batch_step() {
    let (model, x, y) = toy();
    let full = kfac_step_with_accum(&model, &x, &y, 1);
    let accum2 = kfac_step_with_accum(&model, &x, &y, 2);
    let accum4 = kfac_step_with_accum(&model, &x, &y, 4);

    // Gradients of the mean loss agree exactly; the factors differ slightly
    // because E[aᵀa] over micro-batches is averaged per micro-batch (exactly
    // as kfac_pytorch does), so allow a small tolerance.
    let d2 = max_rel_diff(&full, &accum2);
    let d4 = max_rel_diff(&full, &accum4);
    assert!(d2 < 0.05, "accum=2 deviates by {d2}");
    assert!(d4 < 0.05, "accum=4 deviates by {d4}");
}

#[test]
fn sharded_accumulated_step_bitwise_matches_dense() {
    // Shard-resident packed accumulation must be *bitwise* identical to the
    // dense reference under gradient accumulation — the fused
    // scale-during-pack and packed-space decay fold reassociate nothing.
    let (model, x, y) = toy();
    for &chunks in &[2usize, 4] {
        let dense = kfac_step_with_accum_cfg(&model, &x, &y, chunks, false, false);
        let sharded = kfac_step_with_accum_cfg(&model, &x, &y, chunks, true, false);
        assert_eq!(dense, sharded, "sharded deviates from dense at accum={chunks}");
        let sharded_tri = kfac_step_with_accum_cfg(&model, &x, &y, chunks, true, true);
        assert_eq!(dense, sharded_tri, "triangular sharded deviates from dense at accum={chunks}");
    }
}

#[test]
fn accumulate_mode_memory_constant_store_raw_linear() {
    let (mut model, x, y) = toy();
    // Accumulate (KAISA) mode.
    model.set_kfac_capture(true);
    for layer in model.kfac_layers() {
        layer.capture_mut().mode = CaptureMode::Accumulate;
    }
    let mut acc_sizes = Vec::new();
    for step in 0..4 {
        let lo = step * 8;
        let xc = x.rows_slice(lo, lo + 8);
        let yc = y[lo..lo + 8].to_vec();
        let _ = model.forward_backward(&xc, &yc);
        let total: usize =
            model.kfac_layers().iter_mut().map(|l| l.capture_mut().memory_bytes()).sum();
        acc_sizes.push(total);
    }
    assert_eq!(acc_sizes[0], acc_sizes[3], "KAISA capture memory must not grow: {acc_sizes:?}");

    // StoreRaw baseline.
    let (mut model, x, y) = toy();
    model.set_kfac_capture(true);
    for layer in model.kfac_layers() {
        layer.capture_mut().mode = CaptureMode::StoreRaw;
    }
    let mut raw_sizes = Vec::new();
    for step in 0..4 {
        let lo = step * 8;
        let xc = x.rows_slice(lo, lo + 8);
        let yc = y[lo..lo + 8].to_vec();
        let _ = model.forward_backward(&xc, &yc);
        let total: usize =
            model.kfac_layers().iter_mut().map(|l| l.capture_mut().memory_bytes()).sum();
        raw_sizes.push(total);
    }
    assert_eq!(raw_sizes[3], 4 * raw_sizes[0], "store-raw must grow linearly: {raw_sizes:?}");
}

#[test]
fn harness_grad_accum_with_kfac_converges() {
    use kaisa::data::GaussianBlobs;
    use kaisa::optim::{LrSchedule, Sgd};
    use kaisa::trainer::{train_distributed, TrainConfig};
    let (train, val) = GaussianBlobs::generate(320, 8, 4, 0.35, 83).split(64);
    let cfg = TrainConfig {
        epochs: 6,
        local_batch: 8,
        grad_accum: 4,
        schedule: LrSchedule::Constant { lr: 0.15 },
        kfac: Some(KfacConfig::builder().factor_update_freq(2).inv_update_freq(4).build()),
        seed: 9,
        ..Default::default()
    };
    let r = train_distributed(
        2,
        || Mlp::new(&[8, 16, 4], &mut Rng::seed_from_u64(17)),
        || Sgd::with_momentum(0.9),
        &train,
        &val,
        &cfg,
    );
    assert!(r.best_metric() > 0.9, "val acc {}", r.best_metric());
    // 256 train / (2 ranks x 8 x 4) = 4 steps/epoch.
    assert_eq!(r.iterations, 6 * 4);
}

fn max_rel_diff(a: &[f32], b: &[f32]) -> f32 {
    let scale = a.iter().fold(0.0f32, |m, v| m.max(v.abs())).max(1e-9);
    a.iter().zip(b).map(|(x, y)| (x - y).abs()).fold(0.0f32, f32::max) / scale
}
