//! The lock-free ring engine is a drop-in replacement for the mutex
//! mailboxes: for every distribution strategy, every executor, and every
//! window depth, training on `ThreadCommBackend::Ring` must be *bitwise*
//! identical to training on `ThreadCommBackend::Mutex`, and the comm meters
//! must record exactly the same traffic. Collectives reduce in ascending
//! rank order in both engines, so there is no tolerance anywhere — any
//! drift is a reordering bug in the ring protocol.

use kaisa::comm::{
    CommOptions, CommTag, Communicator, MeterSnapshot, ThreadComm, ThreadCommBackend,
};
use kaisa::core::{DistStrategy, Kfac, KfacConfig, KfacConfigBuilder};
use kaisa::data::{Dataset, GaussianBlobs, ShardSampler};
use kaisa::nn::{models::Mlp, Model};
use kaisa::optim::{Optimizer, Sgd};
use kaisa::tensor::{Precision, Rng};

/// Train on `world` ranks with the given backend; return per rank the final
/// params, last preconditioned grads, and the rank's comm-meter snapshot.
fn train_on_backend(
    world: usize,
    steps: usize,
    seed: u64,
    backend: ThreadCommBackend,
    build: impl Fn(KfacConfigBuilder) -> KfacConfigBuilder + Sync,
) -> Vec<(Vec<f32>, Vec<f32>, MeterSnapshot)> {
    let dataset = GaussianBlobs::generate(128, 8, 4, 0.4, seed);
    let opts = CommOptions { backend, ..CommOptions::default() };
    ThreadComm::run_with(world, opts, |comm| {
        let mut model = Mlp::new(&[8, 12, 4], &mut Rng::seed_from_u64(seed + 1));
        let mut opt = Sgd::with_momentum(0.9);
        let cfg = build(KfacConfig::builder().factor_update_freq(2).inv_update_freq(4)).build();
        let mut kfac = Kfac::new(cfg, &mut model, comm);
        let sampler = ShardSampler::new(dataset.len(), world, comm.rank(), 8, seed);
        let mut last_grads = Vec::new();
        for step in 0..steps {
            let epoch = step / sampler.batches_per_epoch();
            let batches = sampler.epoch_batches(epoch);
            let indices = &batches[step % sampler.batches_per_epoch()];
            let (x, y) = dataset.batch(indices);
            kfac.prepare(&mut model);
            model.zero_grad();
            let _ = model.forward_backward(&x, &y);
            kaisa::trainer::allreduce_gradients(&mut model, comm, 1);
            kfac.step(&mut model, comm, 0.1);
            last_grads = model.grads_flat();
            opt.step_model(&mut model, 0.1);
        }
        kfac.flush(comm);
        comm.barrier();
        (model.params_flat(), last_grads, comm.meter_snapshot())
    })
}

fn bits(v: &[f32]) -> Vec<u32> {
    v.iter().map(|x| x.to_bits()).collect()
}

/// Run the same config on both backends and demand bitwise + meter parity
/// on every rank.
fn assert_backends_equivalent(
    world: usize,
    steps: usize,
    seed: u64,
    ctx: &str,
    build: impl Fn(KfacConfigBuilder) -> KfacConfigBuilder + Sync + Copy,
) {
    let ring = train_on_backend(world, steps, seed, ThreadCommBackend::Ring, build);
    let mutex = train_on_backend(world, steps, seed, ThreadCommBackend::Mutex, build);
    for (rank, (r, m)) in ring.iter().zip(&mutex).enumerate() {
        assert_eq!(bits(&r.0), bits(&m.0), "{ctx}: rank {rank} params differ across backends");
        assert_eq!(bits(&r.1), bits(&m.1), "{ctx}: rank {rank} grads differ across backends");
        assert_eq!(r.2, m.2, "{ctx}: rank {rank} meter snapshots differ across backends");
    }
    // Sanity: the runs actually communicated (a silently dead meter would
    // make the equality above vacuous). World 1 self-loops meter nothing.
    if world > 1 {
        assert!(ring[0].2.tag_bytes(CommTag::Ddp) > 0, "{ctx}: no DDP traffic metered");
    }
}

#[test]
fn ring_matches_mutex_across_strategies() {
    // The strategy axis: MEM-OPT, HYBRID-OPT, COMM-OPT (different
    // broadcast/allreduce mixes) and LOCAL-OPT (no factor collectives at
    // all) — each must see identical bytes and bits on both engines.
    let world = 4;
    for (name, frac, strategy) in [
        ("mem-opt", 0.25, None),
        ("hybrid-opt", 0.5, None),
        ("comm-opt", 1.0, None),
        ("local-opt", 1.0, Some(DistStrategy::LocalOpt)),
    ] {
        assert_backends_equivalent(world, 10, 211, name, move |b| {
            let b = b.grad_worker_frac(frac);
            match strategy {
                Some(s) => b.strategy(s).sharded_factors(false),
                None => b,
            }
        });
    }
}

#[test]
fn ring_matches_mutex_across_executors_and_depths() {
    // The executor axis: serial, pipelined, and the task runtime at window
    // depths 1–3. The runtime leans hardest on non-blocking begin/poll/
    // complete overlap, which is exactly where a mis-sequenced ring would
    // first diverge.
    let world = 4;
    assert_backends_equivalent(world, 10, 223, "serial", |b| b.pipelined(false));
    assert_backends_equivalent(world, 10, 223, "pipelined", |b| b.pipelined(true));
    for depth in [1usize, 2, 3] {
        assert_backends_equivalent(world, 10, 223, &format!("runtime depth={depth}"), move |b| {
            b.async_runtime(true).cross_iter_depth(depth)
        });
    }
}

#[test]
fn ring_matches_mutex_on_payload_layouts() {
    // The payload axis: fp16 packing, triangular factor payloads, and
    // sharded factors reshape the byte streams the collectives carry;
    // reduce-scatter sharding in particular exercises the ring's
    // ship-full-result / slice-locally protocol.
    for (name, precision, triangular, sharded) in [
        ("fp16", Precision::Fp16, false, false),
        ("fp16-triangular", Precision::Fp16, true, false),
        ("sharded-factors", Precision::Fp32, false, true),
        ("fp16-sharded", Precision::Fp16, true, true),
    ] {
        assert_backends_equivalent(4, 8, 227, name, move |b| {
            b.grad_worker_frac(0.5)
                .precision(precision)
                .triangular_comm(triangular)
                .sharded_factors(sharded)
        });
    }
}

#[test]
fn ring_matches_mutex_at_odd_worlds() {
    // Worlds that don't divide payloads evenly force ragged reduce-scatter
    // ranges and uneven leader fan-outs; world 1 degenerates every
    // collective to a self-loop.
    for world in [1usize, 3, 5, 8] {
        assert_backends_equivalent(world, 6, 229, &format!("world={world}"), |b| {
            b.grad_worker_frac(0.5)
        });
    }
}
