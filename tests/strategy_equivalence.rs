//! The central correctness property of KAISA's design: MEM-OPT, HYBRID-OPT,
//! and COMM-OPT are *distribution* strategies, not different algorithms —
//! for the same model, data, and hyperparameters they must produce the same
//! preconditioned gradients and the same trained weights (paper Section 3.1:
//! "COMM-OPT and MEM-OPT are special cases of HYBRID-OPT").

use kaisa::comm::{Communicator, ThreadComm};
use kaisa::core::{DistStrategy, Kfac, KfacConfig};
use kaisa::data::{Dataset, GaussianBlobs, ShardSampler};
use kaisa::nn::{models::Mlp, Model};
use kaisa::optim::{Optimizer, Sgd};
use kaisa::tensor::Rng;

const WORLD: usize = 4;

/// Train for `steps` under the given fraction; return (final params, final
/// preconditioned grads, kfac memory, strategy name).
fn run_strategy(frac: f64) -> (Vec<f32>, Vec<f32>, usize, DistStrategy) {
    let dataset = GaussianBlobs::generate(256, 8, 4, 0.4, 17);
    let mut results = ThreadComm::run(WORLD, |comm| {
        let mut model = Mlp::new(&[8, 12, 4], &mut Rng::seed_from_u64(2));
        let mut opt = Sgd::with_momentum(0.9);
        let cfg = KfacConfig::builder()
            .grad_worker_frac(frac)
            .factor_update_freq(2)
            .inv_update_freq(4)
            .build();
        let mut kfac = Kfac::new(cfg, &mut model, comm);
        let sampler = ShardSampler::new(dataset.len(), WORLD, comm.rank(), 8, 5);

        let mut last_grads = Vec::new();
        for step in 0..12 {
            let epoch = step / sampler.batches_per_epoch();
            let batches = sampler.epoch_batches(epoch);
            let indices = &batches[step % sampler.batches_per_epoch()];
            let (x, y) = dataset.batch(indices);
            kfac.prepare(&mut model);
            model.zero_grad();
            let _ = model.forward_backward(&x, &y);
            kaisa::trainer::allreduce_gradients(&mut model, comm, 1);
            kfac.step(&mut model, comm, 0.1);
            last_grads = model.grads_flat();
            opt.step_model(&mut model, 0.1);
        }
        (model.params_flat(), last_grads, kfac.memory_bytes(), kfac.strategy())
    });
    let (params, grads, mem, strat) = results.swap_remove(0);
    (params, grads, mem, strat)
}

#[test]
fn all_strategies_produce_identical_training() {
    let (mem_params, mem_grads, mem_mem, s1) = run_strategy(1.0 / WORLD as f64);
    let (hyb_params, hyb_grads, hyb_mem, s2) = run_strategy(0.5);
    let (comm_params, comm_grads, comm_mem, s3) = run_strategy(1.0);

    assert_eq!(s1, DistStrategy::MemOpt);
    assert_eq!(s2, DistStrategy::HybridOpt);
    assert_eq!(s3, DistStrategy::CommOpt);

    // Identical preconditioned gradients at the last step.
    let max_g_mh = max_diff(&mem_grads, &hyb_grads);
    let max_g_hc = max_diff(&hyb_grads, &comm_grads);
    assert!(max_g_mh < 1e-5, "MEM vs HYBRID grads differ by {max_g_mh}");
    assert!(max_g_hc < 1e-5, "HYBRID vs COMM grads differ by {max_g_hc}");

    // Identical final weights.
    let max_p_mh = max_diff(&mem_params, &hyb_params);
    let max_p_hc = max_diff(&hyb_params, &comm_params);
    assert!(max_p_mh < 1e-4, "MEM vs HYBRID params differ by {max_p_mh}");
    assert!(max_p_hc < 1e-4, "HYBRID vs COMM params differ by {max_p_hc}");

    // The memory ordering the strategies exist for: more gradient workers on
    // a rank → more cached eigendecompositions.
    assert!(
        mem_mem <= hyb_mem && hyb_mem <= comm_mem,
        "memory must be monotone in frac: {mem_mem} / {hyb_mem} / {comm_mem}"
    );
    assert!(comm_mem > mem_mem, "COMM-OPT must cache strictly more than MEM-OPT");
}

#[test]
fn ranks_agree_within_every_strategy() {
    // All ranks must hold identical weights after training (the data-parallel
    // contract must survive the worker/receiver asymmetry).
    for frac in [0.25, 0.5, 1.0] {
        let dataset = GaussianBlobs::generate(128, 6, 3, 0.4, 23);
        let all_params = ThreadComm::run(WORLD, |comm| {
            let mut model = Mlp::new(&[6, 10, 3], &mut Rng::seed_from_u64(4));
            let mut opt = Sgd::new();
            let cfg = KfacConfig::builder()
                .grad_worker_frac(frac)
                .factor_update_freq(1)
                .inv_update_freq(2)
                .build();
            let mut kfac = Kfac::new(cfg, &mut model, comm);
            let sampler = ShardSampler::new(dataset.len(), WORLD, comm.rank(), 8, 9);
            for (step, indices) in sampler.epoch_batches(0).iter().enumerate() {
                let _ = step;
                let (x, y) = dataset.batch(indices);
                kfac.prepare(&mut model);
                model.zero_grad();
                let _ = model.forward_backward(&x, &y);
                kaisa::trainer::allreduce_gradients(&mut model, comm, 1);
                kfac.step(&mut model, comm, 0.05);
                opt.step_model(&mut model, 0.05);
            }
            model.params_flat()
        });
        for (rank, params) in all_params.iter().enumerate().skip(1) {
            let d = max_diff(&all_params[0], params);
            assert!(d < 1e-6, "frac {frac}: rank {rank} diverged from rank 0 by {d}");
        }
    }
}

#[test]
fn hybrid_comm_volume_between_extremes() {
    // Logical K-FAC bytes: MEM-OPT broadcasts every preconditioned gradient;
    // COMM-OPT broadcasts none (but ships eigendecompositions to everyone).
    // Gradient-broadcast volume must therefore fall as frac rises.
    let volume = |frac: f64| -> u64 {
        let dataset = GaussianBlobs::generate(128, 6, 3, 0.4, 29);
        let mut results = ThreadComm::run(WORLD, |comm| {
            let mut model = Mlp::new(&[6, 10, 3], &mut Rng::seed_from_u64(4));
            let cfg = KfacConfig::builder()
                .grad_worker_frac(frac)
                // Long intervals: after step 0, only per-step gradient
                // broadcasts contribute.
                .factor_update_freq(100)
                .inv_update_freq(100)
                .build();
            let mut kfac = Kfac::new(cfg, &mut model, comm);
            let sampler = ShardSampler::new(dataset.len(), WORLD, comm.rank(), 8, 9);
            // Step 0 performs the factor allreduce and eigendecomposition
            // broadcasts (whose volume legitimately differs by strategy);
            // measure only the steady-state per-step volume after it.
            let mut after_step0 = 0;
            for (step, indices) in sampler.epoch_batches(0).iter().enumerate() {
                let (x, y) = dataset.batch(indices);
                kfac.prepare(&mut model);
                model.zero_grad();
                let _ = model.forward_backward(&x, &y);
                kaisa::trainer::allreduce_gradients(&mut model, comm, 1);
                kfac.step(&mut model, comm, 0.05);
                if step == 0 {
                    after_step0 = kfac.comm_bytes();
                }
            }
            kfac.comm_bytes() - after_step0
        });
        results.swap_remove(0)
    };
    let v_mem = volume(1.0 / WORLD as f64);
    let v_hyb = volume(0.5);
    let v_comm = volume(1.0);
    assert!(
        v_mem > v_hyb && v_hyb > v_comm,
        "per-step gradient broadcast volume must fall with frac: {v_mem} / {v_hyb} / {v_comm}"
    );
}

fn max_diff(a: &[f32], b: &[f32]) -> f32 {
    assert_eq!(a.len(), b.len());
    a.iter().zip(b).map(|(x, y)| (x - y).abs()).fold(0.0, f32::max)
}
