//! The central correctness property of KAISA's design: MEM-OPT, HYBRID-OPT,
//! and COMM-OPT are *distribution* strategies, not different algorithms —
//! for the same model, data, and hyperparameters they must produce the same
//! preconditioned gradients and the same trained weights (paper Section 3.1:
//! "COMM-OPT and MEM-OPT are special cases of HYBRID-OPT").
//!
//! LOCAL-OPT (DP-KFAC) deliberately breaks that equivalence at world > 1 —
//! each owner folds only its own rank's statistics — so its contract is
//! different: zero factor-collective traffic, bitwise determinism across
//! ranks and executors, and exact agreement with the dense reference in the
//! degenerate single-rank world where "local" and "global" coincide.

use kaisa::comm::{ClusterNetwork, CommTag, Communicator, MeterSnapshot, ThreadComm};
use kaisa::core::{auto_strategy, DistStrategy, Kfac, KfacConfig, KfacConfigBuilder};
use kaisa::data::{Dataset, GaussianBlobs, ShardSampler};
use kaisa::nn::{models::Mlp, Model};
use kaisa::optim::{Optimizer, Sgd};
use kaisa::tensor::{Precision, Rng};

const WORLD: usize = 4;

/// Train for `steps` under the given fraction; return (final params, final
/// preconditioned grads, kfac memory, strategy name).
fn run_strategy(frac: f64) -> (Vec<f32>, Vec<f32>, usize, DistStrategy) {
    let dataset = GaussianBlobs::generate(256, 8, 4, 0.4, 17);
    let mut results = ThreadComm::run(WORLD, |comm| {
        let mut model = Mlp::new(&[8, 12, 4], &mut Rng::seed_from_u64(2));
        let mut opt = Sgd::with_momentum(0.9);
        let cfg = KfacConfig::builder()
            .grad_worker_frac(frac)
            .factor_update_freq(2)
            .inv_update_freq(4)
            .build();
        let mut kfac = Kfac::new(cfg, &mut model, comm);
        let sampler = ShardSampler::new(dataset.len(), WORLD, comm.rank(), 8, 5);

        let mut last_grads = Vec::new();
        for step in 0..12 {
            let epoch = step / sampler.batches_per_epoch();
            let batches = sampler.epoch_batches(epoch);
            let indices = &batches[step % sampler.batches_per_epoch()];
            let (x, y) = dataset.batch(indices);
            kfac.prepare(&mut model);
            model.zero_grad();
            let _ = model.forward_backward(&x, &y);
            kaisa::trainer::allreduce_gradients(&mut model, comm, 1);
            kfac.step(&mut model, comm, 0.1);
            last_grads = model.grads_flat();
            opt.step_model(&mut model, 0.1);
        }
        (model.params_flat(), last_grads, kfac.memory_bytes(), kfac.strategy())
    });
    let (params, grads, mem, strat) = results.swap_remove(0);
    (params, grads, mem, strat)
}

#[test]
fn all_strategies_produce_identical_training() {
    let (mem_params, mem_grads, mem_mem, s1) = run_strategy(1.0 / WORLD as f64);
    let (hyb_params, hyb_grads, hyb_mem, s2) = run_strategy(0.5);
    let (comm_params, comm_grads, comm_mem, s3) = run_strategy(1.0);

    assert_eq!(s1, DistStrategy::MemOpt);
    assert_eq!(s2, DistStrategy::HybridOpt);
    assert_eq!(s3, DistStrategy::CommOpt);

    // Identical preconditioned gradients at the last step.
    let max_g_mh = max_diff(&mem_grads, &hyb_grads);
    let max_g_hc = max_diff(&hyb_grads, &comm_grads);
    assert!(max_g_mh < 1e-5, "MEM vs HYBRID grads differ by {max_g_mh}");
    assert!(max_g_hc < 1e-5, "HYBRID vs COMM grads differ by {max_g_hc}");

    // Identical final weights.
    let max_p_mh = max_diff(&mem_params, &hyb_params);
    let max_p_hc = max_diff(&hyb_params, &comm_params);
    assert!(max_p_mh < 1e-4, "MEM vs HYBRID params differ by {max_p_mh}");
    assert!(max_p_hc < 1e-4, "HYBRID vs COMM params differ by {max_p_hc}");

    // The memory ordering the strategies exist for: more gradient workers on
    // a rank → more cached eigendecompositions.
    assert!(
        mem_mem <= hyb_mem && hyb_mem <= comm_mem,
        "memory must be monotone in frac: {mem_mem} / {hyb_mem} / {comm_mem}"
    );
    assert!(comm_mem > mem_mem, "COMM-OPT must cache strictly more than MEM-OPT");
}

#[test]
fn ranks_agree_within_every_strategy() {
    // All ranks must hold identical weights after training (the data-parallel
    // contract must survive the worker/receiver asymmetry).
    for frac in [0.25, 0.5, 1.0] {
        let dataset = GaussianBlobs::generate(128, 6, 3, 0.4, 23);
        let all_params = ThreadComm::run(WORLD, |comm| {
            let mut model = Mlp::new(&[6, 10, 3], &mut Rng::seed_from_u64(4));
            let mut opt = Sgd::new();
            let cfg = KfacConfig::builder()
                .grad_worker_frac(frac)
                .factor_update_freq(1)
                .inv_update_freq(2)
                .build();
            let mut kfac = Kfac::new(cfg, &mut model, comm);
            let sampler = ShardSampler::new(dataset.len(), WORLD, comm.rank(), 8, 9);
            for (step, indices) in sampler.epoch_batches(0).iter().enumerate() {
                let _ = step;
                let (x, y) = dataset.batch(indices);
                kfac.prepare(&mut model);
                model.zero_grad();
                let _ = model.forward_backward(&x, &y);
                kaisa::trainer::allreduce_gradients(&mut model, comm, 1);
                kfac.step(&mut model, comm, 0.05);
                opt.step_model(&mut model, 0.05);
            }
            model.params_flat()
        });
        for (rank, params) in all_params.iter().enumerate().skip(1) {
            let d = max_diff(&all_params[0], params);
            assert!(d < 1e-6, "frac {frac}: rank {rank} diverged from rank 0 by {d}");
        }
    }
}

#[test]
fn hybrid_comm_volume_between_extremes() {
    // Logical K-FAC bytes: MEM-OPT broadcasts every preconditioned gradient;
    // COMM-OPT broadcasts none (but ships eigendecompositions to everyone).
    // Gradient-broadcast volume must therefore fall as frac rises.
    let volume = |frac: f64| -> u64 {
        let dataset = GaussianBlobs::generate(128, 6, 3, 0.4, 29);
        let mut results = ThreadComm::run(WORLD, |comm| {
            let mut model = Mlp::new(&[6, 10, 3], &mut Rng::seed_from_u64(4));
            let cfg = KfacConfig::builder()
                .grad_worker_frac(frac)
                // Long intervals: after step 0, only per-step gradient
                // broadcasts contribute.
                .factor_update_freq(100)
                .inv_update_freq(100)
                .build();
            let mut kfac = Kfac::new(cfg, &mut model, comm);
            let sampler = ShardSampler::new(dataset.len(), WORLD, comm.rank(), 8, 9);
            // Step 0 performs the factor allreduce and eigendecomposition
            // broadcasts (whose volume legitimately differs by strategy);
            // measure only the steady-state per-step volume after it.
            let mut after_step0 = 0;
            for (step, indices) in sampler.epoch_batches(0).iter().enumerate() {
                let (x, y) = dataset.batch(indices);
                kfac.prepare(&mut model);
                model.zero_grad();
                let _ = model.forward_backward(&x, &y);
                kaisa::trainer::allreduce_gradients(&mut model, comm, 1);
                kfac.step(&mut model, comm, 0.05);
                if step == 0 {
                    after_step0 = kfac.comm_bytes();
                }
            }
            kfac.comm_bytes() - after_step0
        });
        results.swap_remove(0)
    };
    let v_mem = volume(1.0 / WORLD as f64);
    let v_hyb = volume(0.5);
    let v_comm = volume(1.0);
    assert!(
        v_mem > v_hyb && v_hyb > v_comm,
        "per-step gradient broadcast volume must fall with frac: {v_mem} / {v_hyb} / {v_comm}"
    );
}

fn max_diff(a: &[f32], b: &[f32]) -> f32 {
    assert_eq!(a.len(), b.len());
    a.iter().zip(b).map(|(x, y)| (x - y).abs()).fold(0.0, f32::max)
}

fn bits(v: &[f32]) -> Vec<u32> {
    v.iter().map(|x| x.to_bits()).collect()
}

/// Train with an arbitrary config (and optional gradient accumulation) on
/// `world` ranks; return per rank the final params, last preconditioned
/// grads, and the rank's comm-meter snapshot.
fn train_cfg(
    world: usize,
    steps: usize,
    seed: u64,
    grad_accum: usize,
    build: impl Fn(KfacConfigBuilder) -> KfacConfigBuilder + Sync,
) -> Vec<(Vec<f32>, Vec<f32>, MeterSnapshot)> {
    let dataset = GaussianBlobs::generate(128, 8, 4, 0.4, seed);
    ThreadComm::run(world, |comm| {
        let mut model = Mlp::new(&[8, 12, 4], &mut Rng::seed_from_u64(seed + 1));
        let mut opt = Sgd::with_momentum(0.9);
        let cfg = build(KfacConfig::builder().factor_update_freq(2).inv_update_freq(4)).build();
        let mut kfac = Kfac::new(cfg, &mut model, comm);
        let sampler = ShardSampler::new(dataset.len(), world, comm.rank(), 8, seed);
        let mut last_grads = Vec::new();
        for step in 0..steps {
            let epoch = step / sampler.batches_per_epoch();
            let batches = sampler.epoch_batches(epoch);
            let indices = &batches[step % sampler.batches_per_epoch()];
            kfac.prepare(&mut model);
            model.zero_grad();
            let micro = indices.len().div_ceil(grad_accum).max(1);
            for chunk in indices.chunks(micro) {
                let (x, y) = dataset.batch(chunk);
                let _ = model.forward_backward(&x, &y);
            }
            kaisa::trainer::allreduce_gradients(&mut model, comm, grad_accum);
            kfac.step(&mut model, comm, 0.1);
            last_grads = model.grads_flat();
            opt.step_model(&mut model, 0.1);
        }
        kfac.flush(comm);
        comm.barrier();
        (model.params_flat(), last_grads, comm.meter_snapshot())
    })
}

#[test]
fn local_opt_world1_is_bitwise_identical_to_dense_serial() {
    // At world 1 a rank's "local" statistics ARE the global statistics, so
    // DP-KFAC must coincide bit-for-bit with the dense serial reference —
    // the owner-side fold replays the same pack/unpack quantization the
    // dense allreduce applies, in every precision and payload layout.
    for (precision, triangular) in
        [(Precision::Fp32, false), (Precision::Fp16, false), (Precision::Fp16, true)]
    {
        let dense = train_cfg(1, 10, 131, 1, |b| {
            b.grad_worker_frac(1.0).precision(precision).triangular_comm(triangular)
        });
        let local = train_cfg(1, 10, 131, 1, |b| {
            b.strategy(DistStrategy::LocalOpt).precision(precision).triangular_comm(triangular)
        });
        let ctx = format!("world=1 precision={precision:?} triangular={triangular}");
        assert_eq!(bits(&dense[0].0), bits(&local[0].0), "{ctx}: params differ");
        assert_eq!(bits(&dense[0].1), bits(&local[0].1), "{ctx}: grads differ");
    }
}

#[test]
fn local_opt_is_deterministic_across_executors_ranks_and_worlds() {
    // The fourth strategy through the full executor matrix: serial,
    // pipelined, and task-runtime (at depths 1–3) must train bit-identically
    // at every world, and all ranks must hold the same weights — DP-KFAC
    // changes *whose* statistics feed the preconditioner, not the
    // data-parallel contract.
    for world in [1usize, 2, 4] {
        let serial =
            train_cfg(world, 10, 137, 1, |b| b.strategy(DistStrategy::LocalOpt).pipelined(false));
        let pipelined =
            train_cfg(world, 10, 137, 1, |b| b.strategy(DistStrategy::LocalOpt).pipelined(true));
        let mut variants = vec![("pipelined".to_string(), pipelined)];
        for depth in [1usize, 2, 3] {
            let runtime = train_cfg(world, 10, 137, 1, |b| {
                b.strategy(DistStrategy::LocalOpt).async_runtime(true).cross_iter_depth(depth)
            });
            variants.push((format!("runtime depth={depth}"), runtime));
        }
        for (name, candidate) in &variants {
            for (rank, (s, c)) in serial.iter().zip(candidate).enumerate() {
                assert_eq!(
                    bits(&s.0),
                    bits(&c.0),
                    "world={world} {name}: rank {rank} params differ from serial"
                );
                assert_eq!(
                    bits(&s.1),
                    bits(&c.1),
                    "world={world} {name}: rank {rank} grads differ from serial"
                );
            }
        }
        // Ranks agree bit-for-bit within the strategy.
        for (rank, r) in serial.iter().enumerate().skip(1) {
            assert_eq!(
                bits(&serial[0].0),
                bits(&r.0),
                "world={world}: rank {rank} diverged from rank 0"
            );
        }
    }
}

#[test]
fn local_opt_survives_fp16_grad_accum_and_deep_windows() {
    // The layouts that most reshape the owner-side fold: half-precision
    // triangular payloads and accumulated micro-batch statistics, run
    // through the depth-3 window. The runtime must still match serial.
    for (precision, triangular, grad_accum) in
        [(Precision::Fp16, true, 1), (Precision::Fp16, false, 2), (Precision::Fp32, true, 2)]
    {
        let serial = train_cfg(4, 8, 139, grad_accum, move |b| {
            b.strategy(DistStrategy::LocalOpt)
                .precision(precision)
                .triangular_comm(triangular)
                .pipelined(false)
        });
        let deep = train_cfg(4, 8, 139, grad_accum, move |b| {
            b.strategy(DistStrategy::LocalOpt)
                .precision(precision)
                .triangular_comm(triangular)
                .async_runtime(true)
                .cross_iter_depth(3)
        });
        let ctx =
            format!("precision={precision:?} triangular={triangular} grad_accum={grad_accum}");
        for (rank, (s, d)) in serial.iter().zip(&deep).enumerate() {
            assert_eq!(bits(&s.0), bits(&d.0), "{ctx}: rank {rank} params differ");
            assert_eq!(bits(&s.1), bits(&d.1), "{ctx}: rank {rank} grads differ");
        }
    }
}

#[test]
fn local_opt_moves_zero_factor_collective_bytes_at_world_8() {
    // The acceptance gate: DP-KFAC's whole point is deleting the factor
    // collectives. At world 8, every rank's meter must show exactly zero
    // bytes under all three factor tags — dense allreduce, reduce-scatter,
    // and regather — in every executor, while the rest of the step
    // (eigendecomposition broadcast, gradient broadcast, DDP) still flows.
    type Exec = (&'static str, fn(KfacConfigBuilder) -> KfacConfigBuilder);
    let execs: [Exec; 3] = [
        ("serial", |b| b.pipelined(false)),
        ("pipelined", |b| b.pipelined(true)),
        ("runtime", |b| b.async_runtime(true).cross_iter_depth(2)),
    ];
    for (name, exec) in execs {
        let results = train_cfg(8, 10, 149, 1, |b| exec(b.strategy(DistStrategy::LocalOpt)));
        for (rank, (_, _, meter)) in results.iter().enumerate() {
            assert_eq!(
                meter.tag_bytes(CommTag::FactorComm),
                0,
                "{name} rank {rank}: LOCAL-OPT must not run the dense factor allreduce"
            );
            assert_eq!(
                meter.tag_bytes(CommTag::FactorReduce),
                0,
                "{name} rank {rank}: LOCAL-OPT must not reduce-scatter factors"
            );
            assert_eq!(
                meter.tag_bytes(CommTag::FactorGather),
                0,
                "{name} rank {rank}: LOCAL-OPT must not regather factors"
            );
            // One owner per layer means no eigendecomposition sharing —
            // like MEM-OPT, the owner preconditions in place and only the
            // result is broadcast.
            assert_eq!(
                meter.tag_bytes(CommTag::EigComm),
                0,
                "{name} rank {rank}: single-owner layers have no eig broadcast"
            );
            assert!(
                meter.tag_bytes(CommTag::GradComm) > 0,
                "{name} rank {rank}: preconditioned-gradient broadcast should still flow"
            );
            assert!(meter.tag_bytes(CommTag::Ddp) > 0, "{name} rank {rank}: DDP missing");
        }
    }
}

#[test]
fn auto_strategy_agrees_on_every_rank() {
    // The dispatcher is a pure function of (dims, world, network) — the
    // same all-ranks-agree contract as depth(auto): every rank must pick
    // the same strategy without communicating, or ranks would plan
    // different collectives and deadlock.
    let dims: Vec<(usize, usize)> = vec![(576, 64), (1152, 128), (2304, 256), (512, 10)];
    for network in [ClusterNetwork::ethernet_10g(), ClusterNetwork::infiniband_edr()] {
        let picks = ThreadComm::run(WORLD, |comm| {
            let pick = auto_strategy(&dims, comm.world_size(), network);
            comm.barrier();
            // Purity: a second evaluation must return the same answer.
            assert_eq!(pick, auto_strategy(&dims, comm.world_size(), network));
            pick
        });
        assert!(picks.iter().all(|&p| p == picks[0]), "ranks disagree on auto strategy: {picks:?}");
        // The dispatcher only ever returns a distribution-equivalent
        // strategy; DP-KFAC changes the algorithm and needs explicit opt-in.
        assert_ne!(picks[0], DistStrategy::LocalOpt);
    }
}
