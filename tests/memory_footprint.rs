//! Memory-gate test for shard-resident factor accumulation: the live
//! `MemoryMeter` (not the analytic model) must show the sharded path's peak
//! resident factor bytes at world 8 well below the dense path's on a mixed
//! conv/linear model. Run in CI as a dedicated step:
//!
//! ```sh
//! cargo test -q --locked --test memory_footprint
//! ```

use kaisa::comm::{Communicator, ThreadComm};
use kaisa::core::{Kfac, KfacConfig, MemoryCategory, MemoryMeter};
use kaisa::data::{Dataset, PatternImages, ShardSampler};
use kaisa::nn::models::{ResNetMini, ResNetMiniConfig};
use kaisa::nn::Model;
use kaisa::tensor::Rng;

const WORLD: usize = 8;

/// Mixed conv/linear model: two residual stages of 3x3 convolutions plus a
/// linear classifier head, so factor dims span both shapes.
fn model_cfg() -> ResNetMiniConfig {
    ResNetMiniConfig { in_channels: 3, width: 6, blocks_stage1: 2, blocks_stage2: 2, classes: 4 }
}

/// Shallower variant with fewer K-FAC layers than ranks, so single-worker
/// placement leaves some ranks owning nothing.
fn small_model_cfg() -> ResNetMiniConfig {
    ResNetMiniConfig { in_channels: 3, width: 6, blocks_stage1: 1, blocks_stage2: 1, classes: 4 }
}

/// Train a few steps on `WORLD` thread ranks; returns each rank's memory
/// meter plus the per-layer `(a_worker, g_worker)` plan and factor dims.
#[allow(clippy::type_complexity)]
fn run(frac: f64, sharded: bool) -> Vec<(MemoryMeter, Vec<(usize, usize)>, Vec<(usize, usize)>)> {
    run_model(model_cfg(), frac, sharded)
}

#[allow(clippy::type_complexity)]
fn run_model(
    mcfg: ResNetMiniConfig,
    frac: f64,
    sharded: bool,
) -> Vec<(MemoryMeter, Vec<(usize, usize)>, Vec<(usize, usize)>)> {
    let dataset = PatternImages::generate(128, 3, 12, 4, 0.3, 121);
    ThreadComm::run(WORLD, |comm| {
        let mut model = ResNetMini::new(mcfg, &mut Rng::seed_from_u64(30));
        let cfg = KfacConfig::builder()
            .grad_worker_frac(frac)
            .factor_update_freq(2)
            .inv_update_freq(4)
            .sharded_factors(sharded)
            .build();
        let mut kfac = Kfac::new(cfg, &mut model, comm);
        let sampler = ShardSampler::new(dataset.len(), WORLD, comm.rank(), 4, 2);
        for indices in sampler.epoch_batches(0) {
            let (x, y) = dataset.batch(&indices);
            kfac.prepare(&mut model);
            model.zero_grad();
            let _ = model.forward_backward(&x, &y);
            kaisa::trainer::allreduce_gradients(&mut model, comm, 1);
            kfac.step(&mut model, comm, 0.05);
        }
        let plan = kfac.plan().layers.iter().map(|l| (l.a_worker, l.g_worker)).collect();
        let dims = model.kfac_layers().iter().map(|l| (l.a_dim(), l.g_dim())).collect();
        (kfac.memory_meter().clone(), plan, dims)
    })
}

#[test]
fn sharded_peak_factor_bytes_under_60pct_of_dense() {
    let dense = run(0.25, false);
    let sharded = run(0.25, true);
    let dense_peak = dense.iter().map(|r| r.0.peak(MemoryCategory::Factors)).max().unwrap();
    let sharded_peak = sharded.iter().map(|r| r.0.peak(MemoryCategory::Factors)).max().unwrap();
    assert!(dense_peak > 0);
    // The memory gate: even the heaviest rank (owned shard sections plus the
    // transient square materialized at decomposition time) stays at or below
    // 60% of the fully-replicated dense residency.
    assert!(
        sharded_peak * 100 <= dense_peak * 60,
        "sharded peak {sharded_peak} B exceeds 60% of dense peak {dense_peak} B \
         ({:.0}%)",
        100.0 * sharded_peak as f64 / dense_peak as f64
    );
}

#[test]
fn dense_peak_matches_analytic_replicated_bytes() {
    let dense = run(0.25, false);
    let (meter, _, dims) = &dense[0];
    // Every rank replicates every layer's square A and G at fp32.
    let expect: usize = dims.iter().map(|&(a, g)| (a * a + g * g) * 4).sum();
    for (rank, r) in dense.iter().enumerate() {
        assert_eq!(r.0.peak(MemoryCategory::Factors), expect, "rank {rank} dense factor residency");
    }
    assert_eq!(meter.current(MemoryCategory::Factors), expect);
}

#[test]
fn non_worker_ranks_hold_zero_factor_bytes() {
    // frac = 1/8 gives one eigendecomposition worker pair per layer; with
    // fewer K-FAC layers than ranks, some ranks own no shard at all.
    let sharded = run_model(small_model_cfg(), 1.0 / 8.0, true);
    let plan = &sharded[0].1;
    let mut owner = [false; WORLD];
    for &(a, g) in plan {
        owner[a] = true;
        owner[g] = true;
    }
    let non_workers: Vec<usize> = (0..WORLD).filter(|&r| !owner[r]).collect();
    assert!(
        !non_workers.is_empty(),
        "expected at least one rank owning no factor shard; plan {plan:?}"
    );
    for &r in &non_workers {
        assert_eq!(
            sharded[r].0.peak(MemoryCategory::Factors),
            0,
            "non-worker rank {r} should never allocate factor state"
        );
        assert_eq!(sharded[r].0.peak(MemoryCategory::Eigens), 0);
    }
    // Owner ranks do hold their sections.
    for r in 0..WORLD {
        if owner[r] {
            assert!(sharded[r].0.peak(MemoryCategory::Factors) > 0, "owner rank {r}");
        }
    }
}

#[test]
fn capture_scratch_is_metered_and_bounded() {
    // The streamed-im2col SYRK capture path holds one persistent
    // `chunk x a_dim` buffer per conv layer; the meter must see it, and it
    // must stay within the configured chunk bound (the whole point of
    // streaming is that it does NOT scale with the batch's patch rows).
    if kaisa::tensor::syrk_mode() == kaisa::tensor::SyrkMode::Off {
        // The KAISA_SYRK=off oracle lane never allocates capture scratch.
        return;
    }
    let dense = run(0.25, false);
    let chunk = kaisa::tensor::syrk_chunk_rows();
    let (_, _, dims) = &dense[0];
    // Upper bound: every K-FAC layer were a conv with a full chunk buffer
    // (linear layers contribute zero, so this over-counts — that's fine).
    let bound: usize = dims.iter().map(|&(a, _)| chunk * a * 4).sum();
    for (rank, r) in dense.iter().enumerate() {
        let cur = r.0.current(MemoryCategory::CaptureScratch);
        assert!(cur > 0, "rank {rank}: conv capture scratch not metered");
        assert!(cur <= bound, "rank {rank}: scratch {cur} B exceeds chunk bound {bound} B");
        // The scratch is allocated once and reused, never grows with steps.
        assert_eq!(r.0.peak(MemoryCategory::CaptureScratch), cur, "rank {rank}");
    }
}

#[test]
fn staging_and_precond_grads_are_metered() {
    let sharded = run(0.25, true);
    for (rank, r) in sharded.iter().enumerate() {
        // Every rank stages the full packed payload for the reduce-scatter.
        assert!(r.0.peak(MemoryCategory::PackedStaging) > 0, "rank {rank} staged nothing");
        // Preconditioned-gradient buffers appear transiently during scale.
        assert!(r.0.peak(MemoryCategory::PrecondGrads) > 0, "rank {rank}");
        assert_eq!(r.0.current(MemoryCategory::PrecondGrads), 0, "rank {rank}");
    }
}
