//! End-to-end exercises of the full KAISA feature matrix: precision modes,
//! triangular communication, assignment strategies, the inverse fallback,
//! and failure-injection cases.

use kaisa::comm::{LocalComm, ThreadComm};
use kaisa::core::{plan_assignments, AssignmentStrategy, Kfac, KfacConfig};
use kaisa::nn::models::Mlp;
use kaisa::nn::Model;
use kaisa::tensor::{Matrix, Precision, Rng};

fn toy() -> (Mlp, Matrix, Vec<usize>) {
    let mut rng = Rng::seed_from_u64(91);
    let model = Mlp::new(&[6, 10, 4], &mut rng);
    let x = Matrix::randn(24, 6, 1.0, &mut rng);
    let y: Vec<usize> = (0..24).map(|i| i % 4).collect();
    (model, x, y)
}

/// Run `steps` K-FAC steps with the config on a 4-rank world; returns rank
/// 0's final gradients.
fn run_world(cfg: KfacConfig, steps: usize) -> Vec<f32> {
    let (model, x, y) = toy();
    let mut results = ThreadComm::run(4, move |comm| {
        let mut m = model.clone();
        let mut kfac = Kfac::new(cfg.clone(), &mut m, comm);
        for _ in 0..steps {
            kfac.prepare(&mut m);
            m.zero_grad();
            let _ = m.forward_backward(&x, &y);
            kaisa::trainer::allreduce_gradients(&mut m, comm, 1);
            kfac.step(&mut m, comm, 0.1);
        }
        m.grads_flat()
    });
    results.swap_remove(0)
}

#[test]
fn feature_matrix_all_combinations_run() {
    // Every combination of the paper's optional features must produce
    // finite preconditioned gradients on a multi-rank world.
    for precision in [Precision::Fp32, Precision::Fp16] {
        for triangular in [false, true] {
            for precompute in [false, true] {
                for frac in [0.25, 0.5, 1.0] {
                    let cfg = KfacConfig::builder()
                        .grad_worker_frac(frac)
                        .factor_update_freq(1)
                        .inv_update_freq(2)
                        .precision(precision)
                        .triangular_comm(triangular)
                        .precompute_outer(precompute)
                        .build();
                    let grads = run_world(cfg, 3);
                    assert!(
                        grads.iter().all(|g| g.is_finite()),
                        "non-finite grads at {precision}/tri={triangular}/pre={precompute}/frac={frac}"
                    );
                    assert!(
                        grads.iter().any(|g| *g != 0.0),
                        "zero grads at {precision}/tri={triangular}/pre={precompute}/frac={frac}"
                    );
                }
            }
        }
    }
}

#[test]
fn fp16_stays_close_to_fp32() {
    // Half-precision factor storage must not derail preconditioning (the
    // paper found FP16 factor communication matches FP32 validation
    // accuracy for ResNet-50).
    let base = KfacConfig::builder().factor_update_freq(1).inv_update_freq(2);
    let g32 = run_world(base.clone().precision(Precision::Fp32).build(), 3);
    let g16 = run_world(base.precision(Precision::Fp16).build(), 3);
    let scale = g32.iter().fold(0.0f32, |m, v| m.max(v.abs()));
    let diff = g32.iter().zip(&g16).map(|(a, b)| (a - b).abs()).fold(0.0f32, f32::max);
    assert!(diff / scale < 0.05, "fp16 deviates {diff} (scale {scale})");
}

#[test]
fn assignment_strategies_all_precondition_identically() {
    for strategy in [
        AssignmentStrategy::ComputeLpt,
        AssignmentStrategy::MemoryLpt,
        AssignmentStrategy::RoundRobin,
    ] {
        let cfg = KfacConfig::builder()
            .factor_update_freq(1)
            .inv_update_freq(1)
            .assignment(strategy)
            .build();
        let grads = run_world(cfg, 2);
        assert!(grads.iter().all(|g| g.is_finite()));
    }
    // Placement differs but results agree (the assignment only moves *where*
    // the eigendecompositions happen).
    let lpt = run_world(
        KfacConfig::builder()
            .factor_update_freq(1)
            .inv_update_freq(1)
            .assignment(AssignmentStrategy::ComputeLpt)
            .build(),
        3,
    );
    let rr = run_world(
        KfacConfig::builder()
            .factor_update_freq(1)
            .inv_update_freq(1)
            .assignment(AssignmentStrategy::RoundRobin)
            .build(),
        3,
    );
    let diff = lpt.iter().zip(&rr).map(|(a, b)| (a - b).abs()).fold(0.0f32, f32::max);
    assert!(diff < 1e-5, "assignment must not change numerics: {diff}");
}

#[test]
fn inverse_fallback_runs_distributed() {
    let cfg =
        KfacConfig::builder().factor_update_freq(1).inv_update_freq(2).use_eigen(false).build();
    let grads = run_world(cfg, 3);
    assert!(grads.iter().all(|g| g.is_finite()));
}

#[test]
fn stage_times_and_comm_bytes_populated() {
    let (mut model, x, y) = toy();
    let comm = LocalComm::new();
    let cfg = KfacConfig::builder().factor_update_freq(1).inv_update_freq(1).build();
    let mut kfac = Kfac::new(cfg, &mut model, &comm);
    for _ in 0..3 {
        kfac.prepare(&mut model);
        model.zero_grad();
        let _ = model.forward_backward(&x, &y);
        kfac.step(&mut model, &comm, 0.1);
    }
    let times = kfac.stage_times();
    assert_eq!(times.steps, 3);
    assert!(times.total_seconds() > 0.0);
    let report = times.report();
    assert!(report.contains("precondition gradient"));
    // Single-rank world: factor allreduce is a no-op collective, but the
    // logical accounting still counts the factor payload.
    assert!(kfac.comm_bytes() > 0);
}

#[test]
fn degenerate_worlds_and_shapes() {
    // World of one with every strategy value collapses to COMM-OPT and runs.
    for frac in [0.001, 0.5, 1.0] {
        let (mut model, x, y) = toy();
        let comm = LocalComm::new();
        let cfg = KfacConfig::builder()
            .grad_worker_frac(frac)
            .factor_update_freq(1)
            .inv_update_freq(1)
            .build();
        let mut kfac = Kfac::new(cfg, &mut model, &comm);
        kfac.prepare(&mut model);
        model.zero_grad();
        let _ = model.forward_backward(&x, &y);
        kfac.step(&mut model, &comm, 0.1);
        assert_eq!(kfac.strategy(), kaisa::core::DistStrategy::CommOpt);
    }

    // A model with a single tiny layer (1 output unit).
    let mut rng = Rng::seed_from_u64(97);
    let mut tiny = Mlp::new(&[3, 1], &mut rng);
    let comm = LocalComm::new();
    let cfg = KfacConfig::builder().factor_update_freq(1).inv_update_freq(1).build();
    let mut kfac = Kfac::new(cfg, &mut tiny, &comm);
    let x = Matrix::randn(4, 3, 1.0, &mut rng);
    let y = vec![0usize; 4];
    kfac.prepare(&mut tiny);
    tiny.zero_grad();
    let _ = tiny.forward_backward(&x, &y);
    kfac.step(&mut tiny, &comm, 0.1);
    assert!(tiny.grads_flat().iter().all(|g| g.is_finite()));
}

#[test]
fn more_layers_than_ranks_and_vice_versa() {
    // 6 layers on 4 ranks, and 2 layers on 8 ranks.
    let plans = [
        plan_assignments(&[(5, 4); 6], 4, 0.5, AssignmentStrategy::ComputeLpt),
        plan_assignments(&[(5, 4); 2], 8, 0.5, AssignmentStrategy::ComputeLpt),
    ];
    for plan in &plans {
        for layer in &plan.layers {
            assert!(layer.is_gradient_worker(layer.a_worker));
            assert!(layer.is_gradient_worker(layer.g_worker));
            // Groups partition receivers.
            let receivers: usize = layer.bcast_groups.iter().map(|g| g.len() - 1).sum();
            assert_eq!(receivers, plan.world - plan.workers_per_layer);
        }
    }
}

#[test]
fn repeated_training_is_deterministic() {
    // Two identical multi-rank runs must agree bitwise (deterministic
    // reduction order + seeded everything).
    let cfg = KfacConfig::builder().factor_update_freq(1).inv_update_freq(2).build();
    let a = run_world(cfg.clone(), 4);
    let b = run_world(cfg, 4);
    assert_eq!(a, b, "training must be bit-deterministic");
}

#[test]
fn ekfac_runs_distributed_and_converges() {
    // The Related-Work extension: EK-FAC under KAISA's distribution
    // framework must run on every strategy and still accelerate training.
    use kaisa::data::{Dataset, GaussianBlobs};
    let dataset = GaussianBlobs::generate(192, 6, 3, 0.35, 99);
    for frac in [0.25, 0.5, 1.0] {
        let d = &dataset;
        let mut results = ThreadComm::run(4, move |comm| {
            let mut m = Mlp::new(&[6, 12, 3], &mut Rng::seed_from_u64(7));
            let cfg = KfacConfig::builder()
                .grad_worker_frac(frac)
                .factor_update_freq(2)
                .inv_update_freq(4)
                .ekfac(true)
                .build();
            let mut kfac = Kfac::new(cfg, &mut m, comm);
            let idx: Vec<usize> = (0..32).collect();
            let (x, y) = d.batch(&idx);
            let before = kaisa::nn::Model::evaluate(&mut m, &x, &y).loss;
            for _ in 0..15 {
                kfac.prepare(&mut m);
                m.zero_grad();
                let _ = m.forward_backward(&x, &y);
                kaisa::trainer::allreduce_gradients(&mut m, comm, 1);
                kfac.step(&mut m, comm, 0.1);
                let g = m.grads_flat();
                let mut p = m.params_flat();
                for (pi, gi) in p.iter_mut().zip(&g) {
                    *pi -= 0.1 * gi;
                }
                m.set_params_flat(&p);
            }
            let after = kaisa::nn::Model::evaluate(&mut m, &x, &y).loss;
            (before, after, m.params_flat())
        });
        let (before, after, params0) = results.swap_remove(0);
        assert!(after < before, "frac {frac}: EK-FAC loss {before} -> {after}");
        assert!(after.is_finite());
        // Ranks stay synchronized under EK-FAC too.
        for (b2, a2, params) in results {
            assert_eq!(before, b2);
            assert_eq!(after, a2);
            let d = params0.iter().zip(&params).map(|(x, y)| (x - y).abs()).fold(0.0f32, f32::max);
            assert!(d < 1e-6, "frac {frac}: ranks diverged by {d}");
        }
    }
}

#[test]
fn ekfac_differs_from_kfac_after_warmup() {
    let cfg_kfac = KfacConfig::builder().factor_update_freq(1).inv_update_freq(4).build();
    let cfg_ekfac =
        KfacConfig::builder().factor_update_freq(1).inv_update_freq(4).ekfac(true).build();
    let g_kfac = run_world(cfg_kfac, 6);
    let g_ekfac = run_world(cfg_ekfac, 6);
    let diff = g_kfac.iter().zip(&g_ekfac).map(|(a, b)| (a - b).abs()).fold(0.0f32, f32::max);
    assert!(diff > 1e-6, "EK-FAC must depart from K-FAC after correction steps");
    assert!(g_ekfac.iter().all(|g| g.is_finite()));
}

#[test]
fn zero_gradient_step_is_safe() {
    // Perfectly-confident correct predictions give (near-)zero gradients;
    // the KL-clip denominator vanishes and the preconditioner must pass
    // zeros through rather than producing NaNs.
    let mut rng = Rng::seed_from_u64(101);
    let mut model = Mlp::new(&[4, 6, 2], &mut rng);
    let comm = LocalComm::new();
    let cfg = KfacConfig::builder().factor_update_freq(1).inv_update_freq(1).build();
    let mut kfac = Kfac::new(cfg, &mut model, &comm);
    let x = Matrix::randn(8, 4, 1.0, &mut rng);
    let y: Vec<usize> = (0..8).map(|i| i % 2).collect();

    kfac.prepare(&mut model);
    model.zero_grad();
    let _ = model.forward_backward(&x, &y);
    // Overwrite the gradients with exact zeros before preconditioning.
    let zeros = vec![0.0f32; model.grads_flat().len()];
    model.set_grads_flat(&zeros);
    kfac.step(&mut model, &comm, 0.1);
    let grads = model.grads_flat();
    assert!(grads.iter().all(|g| g.is_finite()), "zero grads must stay finite");
    assert!(grads.iter().all(|g| *g == 0.0), "preconditioned zero stays zero");
}

#[test]
fn single_sample_batches_work() {
    // Batch size 1 is the degenerate statistics case (rank-1 factors); the
    // damping must keep the eigendecomposition path healthy.
    let mut rng = Rng::seed_from_u64(102);
    let mut model = Mlp::new(&[4, 6, 2], &mut rng);
    let comm = LocalComm::new();
    let cfg = KfacConfig::builder().factor_update_freq(1).inv_update_freq(1).build();
    let mut kfac = Kfac::new(cfg, &mut model, &comm);
    for step in 0..4 {
        let x = Matrix::randn(1, 4, 1.0, &mut rng);
        let y = vec![step % 2];
        kfac.prepare(&mut model);
        model.zero_grad();
        let _ = model.forward_backward(&x, &y);
        kfac.step(&mut model, &comm, 0.1);
        assert!(model.grads_flat().iter().all(|g| g.is_finite()), "step {step}");
    }
}

#[test]
fn identical_inputs_rank_deficient_factors_are_damped() {
    // Every row identical -> A factor is exactly rank one; only the damping
    // keeps Eq. 16's denominators positive.
    let mut rng = Rng::seed_from_u64(103);
    let mut model = Mlp::new(&[3, 5, 2], &mut rng);
    let comm = LocalComm::new();
    let cfg = KfacConfig::builder().factor_update_freq(1).inv_update_freq(1).build();
    let mut kfac = Kfac::new(cfg, &mut model, &comm);
    let row = [1.0f32, -2.0, 0.5];
    let x = Matrix::from_fn(8, 3, |_, c| row[c]);
    let y: Vec<usize> = (0..8).map(|i| i % 2).collect();
    kfac.prepare(&mut model);
    model.zero_grad();
    let _ = model.forward_backward(&x, &y);
    kfac.step(&mut model, &comm, 0.1);
    let grads = model.grads_flat();
    assert!(grads.iter().all(|g| g.is_finite()));
    assert!(grads.iter().any(|g| *g != 0.0));
}
