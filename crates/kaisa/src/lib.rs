//! # KAISA
//!
//! A Rust reproduction of **"KAISA: An Adaptive Second-order Optimizer
//! Framework for Deep Neural Networks"** (SC 2021) — a distributed K-FAC
//! gradient preconditioner with a tunable memory/communication tradeoff.
//!
//! This facade crate re-exports the full public API:
//!
//! | Module | Contents |
//! |---|---|
//! | [`core`](mod@core) | The KAISA preconditioner: [`core::Kfac`], MEM-OPT / COMM-OPT / HYBRID-OPT placement, LPT distribution |
//! | [`nn`] | Layers with K-FAC capture and the four application models |
//! | [`optim`] | SGD / Adam / LAMB and learning-rate schedules |
//! | [`comm`] | Thread-rank collectives with traffic metering and α–β cost models |
//! | [`trainer`] | Distributed training harness with convergence tracking |
//! | [`data`] | Deterministic synthetic datasets and shard samplers |
//! | [`sim`] | Large-scale performance/memory simulator (Figures 6–8, Tables 4–5) |
//! | [`tensor`], [`linalg`] | Dense kernels, fp16 emulation, symmetric eigensolver |
//!
//! ## Quickstart (the paper's Listing 1, in Rust)
//!
//! ```
//! use kaisa::comm::{Communicator, LocalComm};
//! use kaisa::core::{Kfac, KfacConfig};
//! use kaisa::nn::{models::Mlp, Model};
//! use kaisa::optim::{Optimizer, Sgd};
//! use kaisa::tensor::{Matrix, Rng};
//!
//! let mut rng = Rng::seed_from_u64(0);
//! let mut model = Mlp::new(&[8, 16, 4], &mut rng);
//! let comm = LocalComm::new();
//! let mut optimizer = Sgd::with_momentum(0.9);
//! let mut kfac = Kfac::new(
//!     KfacConfig::builder()
//!         .grad_worker_frac(0.5)
//!         .damping(0.003)
//!         .factor_update_freq(10)
//!         .inv_update_freq(100)
//!         .build(),
//!     &mut model,
//!     &comm,
//! );
//!
//! let x = Matrix::randn(32, 8, 1.0, &mut rng);
//! let y: Vec<usize> = (0..32).map(|i| i % 4).collect();
//! for _ in 0..3 {
//!     kfac.prepare(&mut model);          // arm statistics capture
//!     model.zero_grad();
//!     let _ = model.forward_backward(&x, &y);
//!     kfac.step(&mut model, &comm, 0.1); // precondition gradients in place
//!     optimizer.step_model(&mut model, 0.1);
//! }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Dense matrices, NCHW tensors, fp16 emulation, deterministic RNG.
pub use kaisa_tensor as tensor;

/// Symmetric eigensolver, Cholesky, triangular packing.
pub use kaisa_linalg as linalg;

/// Neural-network layers, models, and losses with K-FAC capture.
pub use kaisa_nn as nn;

/// Thread-rank collective communication and cost models.
pub use kaisa_comm as comm;

/// The KAISA K-FAC preconditioner (the paper's contribution).
pub use kaisa_core as core;

/// First-order optimizers and schedules.
pub use kaisa_optim as optim;

/// Synthetic datasets and distributed samplers.
pub use kaisa_data as data;

/// Large-scale performance and memory simulation.
pub use kaisa_sim as sim;

/// The distributed training harness.
pub use kaisa_trainer as trainer;

/// Multi-job K-FAC service: shared rank pool, admission control,
/// checkpoint/restore, elastic world resizing.
pub use kaisa_serve as serve;
