//! Learning-rate schedules.
//!
//! The paper's experiments all use linear warmup (Table 2's `WU` column)
//! followed by an application-specific decay: step decay for ResNet, none
//! for Mask R-CNN's short schedule, polynomial decay for BERT.

/// A learning-rate schedule mapping iteration → learning rate.
#[derive(Debug, Clone)]
pub enum LrSchedule {
    /// Constant learning rate.
    Constant {
        /// The learning rate.
        lr: f32,
    },
    /// Linear warmup from `lr/`warmup to `lr`, then constant.
    Warmup {
        /// Peak learning rate.
        lr: f32,
        /// Warmup iterations.
        warmup: usize,
    },
    /// Linear warmup, then multiply by `gamma` at each milestone iteration.
    WarmupStep {
        /// Peak learning rate.
        lr: f32,
        /// Warmup iterations.
        warmup: usize,
        /// Iterations at which the rate decays.
        milestones: Vec<usize>,
        /// Decay factor per milestone.
        gamma: f32,
    },
    /// Linear warmup then cosine decay to zero at `total` iterations.
    WarmupCosine {
        /// Peak learning rate.
        lr: f32,
        /// Warmup iterations.
        warmup: usize,
        /// Total training iterations.
        total: usize,
    },
    /// Linear warmup then polynomial decay (power 1 = linear), the BERT
    /// pretraining schedule.
    WarmupPoly {
        /// Peak learning rate.
        lr: f32,
        /// Warmup iterations.
        warmup: usize,
        /// Total training iterations.
        total: usize,
        /// Decay power.
        power: f32,
    },
}

impl LrSchedule {
    /// The learning rate at iteration `step` (0-based).
    pub fn lr_at(&self, step: usize) -> f32 {
        match self {
            LrSchedule::Constant { lr } => *lr,
            LrSchedule::Warmup { lr, warmup } => warmup_factor(step, *warmup) * lr,
            LrSchedule::WarmupStep { lr, warmup, milestones, gamma } => {
                let passed = milestones.iter().filter(|&&m| step >= m).count();
                warmup_factor(step, *warmup) * lr * gamma.powi(passed as i32)
            }
            LrSchedule::WarmupCosine { lr, warmup, total } => {
                if step < *warmup {
                    warmup_factor(step, *warmup) * lr
                } else {
                    let progress =
                        (step - warmup) as f32 / (total.saturating_sub(*warmup)).max(1) as f32;
                    let progress = progress.min(1.0);
                    0.5 * lr * (1.0 + (std::f32::consts::PI * progress).cos())
                }
            }
            LrSchedule::WarmupPoly { lr, warmup, total, power } => {
                if step < *warmup {
                    warmup_factor(step, *warmup) * lr
                } else {
                    let progress =
                        (step - warmup) as f32 / (total.saturating_sub(*warmup)).max(1) as f32;
                    let progress = progress.min(1.0);
                    lr * (1.0 - progress).powf(*power)
                }
            }
        }
    }
}

fn warmup_factor(step: usize, warmup: usize) -> f32 {
    if warmup == 0 || step >= warmup {
        1.0
    } else {
        (step + 1) as f32 / warmup as f32
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant() {
        let s = LrSchedule::Constant { lr: 0.1 };
        assert_eq!(s.lr_at(0), 0.1);
        assert_eq!(s.lr_at(10_000), 0.1);
    }

    #[test]
    fn warmup_ramps_linearly() {
        let s = LrSchedule::Warmup { lr: 1.0, warmup: 10 };
        assert!((s.lr_at(0) - 0.1).abs() < 1e-6);
        assert!((s.lr_at(4) - 0.5).abs() < 1e-6);
        assert_eq!(s.lr_at(9), 1.0);
        assert_eq!(s.lr_at(100), 1.0);
    }

    #[test]
    fn step_decay_at_milestones() {
        let s =
            LrSchedule::WarmupStep { lr: 0.8, warmup: 0, milestones: vec![100, 200], gamma: 0.1 };
        assert_eq!(s.lr_at(50), 0.8);
        assert!((s.lr_at(100) - 0.08).abs() < 1e-6);
        assert!((s.lr_at(250) - 0.008).abs() < 1e-6);
    }

    #[test]
    fn cosine_decays_to_zero() {
        let s = LrSchedule::WarmupCosine { lr: 1.0, warmup: 0, total: 100 };
        assert_eq!(s.lr_at(0), 1.0);
        assert!((s.lr_at(50) - 0.5).abs() < 0.02);
        assert!(s.lr_at(100) < 1e-6);
        assert!(s.lr_at(500) < 1e-6, "stays at zero past the end");
    }

    #[test]
    fn poly_linear_decay() {
        let s = LrSchedule::WarmupPoly { lr: 1.0, warmup: 0, total: 100, power: 1.0 };
        assert!((s.lr_at(25) - 0.75).abs() < 0.02);
        assert!(s.lr_at(100) < 1e-6);
    }

    #[test]
    fn schedules_are_monotone_after_warmup() {
        for s in [
            LrSchedule::WarmupCosine { lr: 1.0, warmup: 10, total: 100 },
            LrSchedule::WarmupPoly { lr: 1.0, warmup: 10, total: 100, power: 2.0 },
        ] {
            let mut prev = f32::INFINITY;
            for step in 10..100 {
                let lr = s.lr_at(step);
                assert!(lr <= prev + 1e-6, "schedule must not increase after warmup");
                prev = lr;
            }
        }
    }
}
