//! Adam (the U-Net baseline optimizer).

use kaisa_nn::ParamSegment;

use crate::Optimizer;

/// The Adam optimizer with bias correction.
#[derive(Debug, Clone)]
pub struct Adam {
    /// First-moment decay.
    pub beta1: f32,
    /// Second-moment decay.
    pub beta2: f32,
    /// Numerical floor inside the square root.
    pub eps: f32,
    /// L2 weight decay applied to the gradient.
    pub weight_decay: f32,
    m: Vec<f32>,
    v: Vec<f32>,
    t: u64,
}

impl Adam {
    /// Standard hyperparameters (β₁=0.9, β₂=0.999, ε=1e-8).
    pub fn new() -> Self {
        Adam {
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            weight_decay: 0.0,
            m: Vec::new(),
            v: Vec::new(),
            t: 0,
        }
    }

    /// Set weight decay (builder style).
    pub fn weight_decay(mut self, wd: f32) -> Self {
        self.weight_decay = wd;
        self
    }
}

impl Default for Adam {
    fn default() -> Self {
        Self::new()
    }
}

impl Optimizer for Adam {
    fn step(&mut self, params: &mut [f32], grads: &[f32], _segments: &[ParamSegment], lr: f32) {
        assert_eq!(params.len(), grads.len(), "param/grad length mismatch");
        if self.m.len() != params.len() {
            self.m = vec![0.0; params.len()];
            self.v = vec![0.0; params.len()];
            self.t = 0;
        }
        self.t += 1;
        let bc1 = 1.0 - self.beta1.powi(self.t as i32);
        let bc2 = 1.0 - self.beta2.powi(self.t as i32);
        for i in 0..params.len() {
            let g = grads[i] + self.weight_decay * params[i];
            self.m[i] = self.beta1 * self.m[i] + (1.0 - self.beta1) * g;
            self.v[i] = self.beta2 * self.v[i] + (1.0 - self.beta2) * g * g;
            let m_hat = self.m[i] / bc1;
            let v_hat = self.v[i] / bc2;
            params[i] -= lr * m_hat / (v_hat.sqrt() + self.eps);
        }
    }

    fn state_bytes_per_param(&self) -> usize {
        8
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_step_is_lr_sized() {
        // With bias correction, the very first Adam step is ≈ lr·sign(g).
        let mut opt = Adam::new();
        let mut p = vec![0.0];
        opt.step(&mut p, &[3.7], &[], 0.01);
        assert!((p[0] + 0.01).abs() < 1e-4, "p={}", p[0]);
    }

    #[test]
    fn scale_invariance_of_direction() {
        // Adam's per-coordinate normalization: gradient scale barely changes
        // the step size.
        let mut a = Adam::new();
        let mut b = Adam::new();
        let mut pa = vec![0.0];
        let mut pb = vec![0.0];
        for _ in 0..10 {
            a.step(&mut pa, &[1.0], &[], 0.01);
            b.step(&mut pb, &[100.0], &[], 0.01);
        }
        assert!((pa[0] - pb[0]).abs() < 1e-4, "{} vs {}", pa[0], pb[0]);
    }

    #[test]
    fn converges_on_quadratic() {
        let mut opt = Adam::new();
        let mut p = vec![10.0];
        for _ in 0..2000 {
            let g = vec![p[0] - 3.0];
            opt.step(&mut p, &g, &[], 0.05);
        }
        assert!((p[0] - 3.0).abs() < 1e-2, "p={}", p[0]);
    }

    #[test]
    fn state_resets_on_shape_change() {
        let mut opt = Adam::new();
        let mut p = vec![0.0];
        opt.step(&mut p, &[1.0], &[], 0.1);
        let mut p2 = vec![0.0, 0.0];
        opt.step(&mut p2, &[1.0, 1.0], &[], 0.1);
        // Both coordinates see a fresh first step.
        assert!((p2[0] - p2[1]).abs() < 1e-7);
    }
}
