//! LAMB — layer-wise adaptive moments (the BERT baseline optimizer).
//!
//! You et al., "Large batch optimization for deep learning: Training BERT in
//! 76 minutes". The paper's BERT experiments compare KAISA against NVIDIA's
//! Fused LAMB; this is the same algorithm (unfused). The defining feature is
//! the per-layer trust ratio `‖w‖ / ‖update‖` that rescales each layer's
//! Adam-style step, which is why the optimizer needs the parameter
//! segmentation.

use kaisa_nn::ParamSegment;
use kaisa_tensor::ops;

use crate::Optimizer;

/// The LAMB optimizer.
#[derive(Debug, Clone)]
pub struct Lamb {
    /// First-moment decay.
    pub beta1: f32,
    /// Second-moment decay.
    pub beta2: f32,
    /// Numerical floor inside the square root.
    pub eps: f32,
    /// Decoupled weight decay (added to the normalized update, per LAMB).
    pub weight_decay: f32,
    /// Clamp for the trust ratio (0 disables the upper clamp).
    pub max_trust_ratio: f32,
    m: Vec<f32>,
    v: Vec<f32>,
    t: u64,
}

impl Lamb {
    /// Standard hyperparameters (β₁=0.9, β₂=0.999, ε=1e-6, wd=0.01).
    pub fn new() -> Self {
        Lamb {
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-6,
            weight_decay: 0.01,
            max_trust_ratio: 10.0,
            m: Vec::new(),
            v: Vec::new(),
            t: 0,
        }
    }

    /// Set weight decay (builder style).
    pub fn weight_decay(mut self, wd: f32) -> Self {
        self.weight_decay = wd;
        self
    }
}

impl Default for Lamb {
    fn default() -> Self {
        Self::new()
    }
}

impl Optimizer for Lamb {
    fn step(&mut self, params: &mut [f32], grads: &[f32], segments: &[ParamSegment], lr: f32) {
        assert_eq!(params.len(), grads.len(), "param/grad length mismatch");
        let total: usize = segments.iter().map(|s| s.len).sum();
        assert_eq!(total, params.len(), "segments must cover the flat buffer");
        if self.m.len() != params.len() {
            self.m = vec![0.0; params.len()];
            self.v = vec![0.0; params.len()];
            self.t = 0;
        }
        self.t += 1;
        let bc1 = 1.0 - self.beta1.powi(self.t as i32);
        let bc2 = 1.0 - self.beta2.powi(self.t as i32);

        let mut offset = 0usize;
        let mut update = vec![0.0f32; 0];
        for seg in segments {
            let range = offset..offset + seg.len;
            update.clear();
            update.resize(seg.len, 0.0);
            for (k, i) in range.clone().enumerate() {
                let g = grads[i];
                self.m[i] = self.beta1 * self.m[i] + (1.0 - self.beta1) * g;
                self.v[i] = self.beta2 * self.v[i] + (1.0 - self.beta2) * g * g;
                let m_hat = self.m[i] / bc1;
                let v_hat = self.v[i] / bc2;
                update[k] = m_hat / (v_hat.sqrt() + self.eps) + self.weight_decay * params[i];
            }
            let w_norm = ops::norm2(&params[range.clone()]) as f32;
            let u_norm = ops::norm2(&update) as f32;
            let mut trust = if w_norm > 0.0 && u_norm > 0.0 { w_norm / u_norm } else { 1.0 };
            if self.max_trust_ratio > 0.0 {
                trust = trust.min(self.max_trust_ratio);
            }
            for (k, i) in range.enumerate() {
                params[i] -= lr * trust * update[k];
            }
            offset += seg.len;
        }
    }

    fn state_bytes_per_param(&self) -> usize {
        8
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seg(name: &str, len: usize) -> ParamSegment {
        ParamSegment { name: name.to_string(), len }
    }

    #[test]
    fn trust_ratio_scales_with_weight_norm() {
        // Two identical layers except for weight magnitude: the larger-norm
        // layer takes a proportionally larger step.
        let mut opt = Lamb::new().weight_decay(0.0);
        let mut params = vec![1.0, 1.0, 10.0, 10.0];
        let grads = vec![1.0, 1.0, 1.0, 1.0];
        let segments = vec![seg("small", 2), seg("big", 2)];
        let before = params.clone();
        opt.step(&mut params, &grads, &segments, 0.01);
        let step_small = (before[0] - params[0]).abs();
        let step_big = (before[2] - params[2]).abs();
        assert!(
            (step_big / step_small - 10.0).abs() < 0.1,
            "trust ratio should scale 10x: {step_small} vs {step_big}"
        );
    }

    #[test]
    fn zero_weight_layer_uses_unit_trust() {
        let mut opt = Lamb::new().weight_decay(0.0);
        let mut params = vec![0.0, 0.0];
        let grads = vec![1.0, 1.0];
        opt.step(&mut params, &grads, &[seg("z", 2)], 0.01);
        assert!(params[0] < 0.0, "still makes progress from zero init");
    }

    #[test]
    fn trust_ratio_clamped() {
        let mut opt = Lamb::new().weight_decay(0.0);
        opt.max_trust_ratio = 2.0;
        let mut params = vec![1000.0];
        let grads = vec![1.0];
        let before = params[0];
        opt.step(&mut params, &grads, &[seg("huge", 1)], 0.01);
        let step = before - params[0];
        // f32 ulp at 1000 is ~6e-5, so allow that much slop in the measure.
        assert!(step <= 0.01 * 2.0 + 1e-3, "step {step} exceeds clamp");
    }

    #[test]
    fn converges_on_quadratic() {
        let mut opt = Lamb::new().weight_decay(0.0);
        let mut p = vec![10.0];
        for _ in 0..500 {
            let g = vec![p[0] - 3.0];
            opt.step(&mut p, &g, &[seg("p", 1)], 0.05);
        }
        assert!((p[0] - 3.0).abs() < 0.1, "p={}", p[0]);
    }

    #[test]
    fn segment_coverage_enforced() {
        let mut opt = Lamb::new();
        let mut params = vec![1.0, 2.0, 3.0];
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            opt.step(&mut params, &[0.0, 0.0, 0.0], &[seg("short", 2)], 0.1);
        }));
        assert!(r.is_err(), "mismatched segmentation must panic");
    }
}
