//! # kaisa-optim
//!
//! First-order optimizers used under the KAISA preconditioner. In the paper
//! K-FAC is a *preconditioner*, not an optimizer: the preconditioned
//! gradients are handed to the application's standard optimizer — momentum
//! SGD for ResNet/Mask R-CNN, Adam for U-Net, (Fused) LAMB for BERT —
//! which this crate provides, along with the learning-rate schedules the
//! experiments use (linear warmup, step decay, cosine, polynomial).
//!
//! All optimizers operate on flat parameter/gradient buffers with a named
//! per-layer segmentation (see [`kaisa_nn::Model::param_segments`]), which is
//! what LAMB's layer-wise trust ratios require.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod adam;
mod lamb;
mod schedule;
mod sgd;

pub use adam::Adam;
pub use lamb::Lamb;
pub use schedule::LrSchedule;
pub use sgd::Sgd;

use kaisa_nn::{Model, ParamSegment};

/// A first-order optimizer over flat parameter buffers.
pub trait Optimizer {
    /// Apply one update. `segments` names the per-layer spans of the flat
    /// buffers (needed by LAMB; others may ignore it).
    fn step(&mut self, params: &mut [f32], grads: &[f32], segments: &[ParamSegment], lr: f32);

    /// Convenience wrapper: flatten the model, step, write back.
    fn step_model<M: Model>(&mut self, model: &mut M, lr: f32)
    where
        Self: Sized,
    {
        let segments = model.param_segments();
        let mut params = model.params_flat();
        let grads = model.grads_flat();
        self.step(&mut params, &grads, &segments, lr);
        model.set_params_flat(&params);
    }

    /// Bytes of optimizer state per parameter element (for the memory model:
    /// SGD+momentum = 4, Adam/LAMB = 8).
    fn state_bytes_per_param(&self) -> usize;
}
