//! Momentum SGD (the ResNet-50 and Mask R-CNN baseline optimizer).

use kaisa_nn::ParamSegment;

use crate::Optimizer;

/// Stochastic gradient descent with momentum, optional Nesterov momentum,
/// and decoupled L2 weight decay.
#[derive(Debug, Clone)]
pub struct Sgd {
    /// Momentum coefficient (0 disables).
    pub momentum: f32,
    /// L2 weight-decay coefficient (applied to the gradient, PyTorch-style).
    pub weight_decay: f32,
    /// Use Nesterov momentum.
    pub nesterov: bool,
    velocity: Vec<f32>,
}

impl Sgd {
    /// Plain SGD.
    pub fn new() -> Self {
        Sgd { momentum: 0.0, weight_decay: 0.0, nesterov: false, velocity: Vec::new() }
    }

    /// Momentum SGD, the paper's ResNet baseline configuration.
    pub fn with_momentum(momentum: f32) -> Self {
        Sgd { momentum, weight_decay: 0.0, nesterov: false, velocity: Vec::new() }
    }

    /// Set weight decay (builder style).
    pub fn weight_decay(mut self, wd: f32) -> Self {
        self.weight_decay = wd;
        self
    }

    /// Enable Nesterov momentum (builder style).
    pub fn nesterov(mut self) -> Self {
        self.nesterov = true;
        self
    }

    /// The momentum velocity buffer — empty until the first momentum step
    /// (plain SGD never allocates one). Exposed so checkpoint/restore can
    /// carry optimizer state across a pause.
    pub fn velocity(&self) -> &[f32] {
        &self.velocity
    }

    /// Restore a velocity buffer captured by [`Sgd::velocity`]. An empty
    /// vector resets to the pre-first-step state; otherwise the length must
    /// match the parameter count of the model this optimizer will step.
    pub fn set_velocity(&mut self, velocity: Vec<f32>) {
        self.velocity = velocity;
    }
}

impl Default for Sgd {
    fn default() -> Self {
        Self::new()
    }
}

impl Optimizer for Sgd {
    fn step(&mut self, params: &mut [f32], grads: &[f32], _segments: &[ParamSegment], lr: f32) {
        assert_eq!(params.len(), grads.len(), "param/grad length mismatch");
        if self.momentum == 0.0 {
            for (p, &g) in params.iter_mut().zip(grads) {
                let g = g + self.weight_decay * *p;
                *p -= lr * g;
            }
            return;
        }
        if self.velocity.len() != params.len() {
            self.velocity = vec![0.0; params.len()];
        }
        for ((p, &g), v) in params.iter_mut().zip(grads).zip(self.velocity.iter_mut()) {
            let g = g + self.weight_decay * *p;
            *v = self.momentum * *v + g;
            let update = if self.nesterov { g + self.momentum * *v } else { *v };
            *p -= lr * update;
        }
    }

    fn state_bytes_per_param(&self) -> usize {
        if self.momentum == 0.0 {
            0
        } else {
            4
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plain_sgd_step() {
        let mut opt = Sgd::new();
        let mut p = vec![1.0, 2.0];
        opt.step(&mut p, &[0.5, -0.5], &[], 0.1);
        assert_eq!(p, vec![0.95, 2.05]);
    }

    #[test]
    fn momentum_accumulates() {
        let mut opt = Sgd::with_momentum(0.9);
        let mut p = vec![0.0];
        opt.step(&mut p, &[1.0], &[], 1.0);
        assert!((p[0] - (-1.0)).abs() < 1e-6);
        opt.step(&mut p, &[1.0], &[], 1.0);
        // v = 0.9*1 + 1 = 1.9; p = -1 - 1.9 = -2.9
        assert!((p[0] - (-2.9)).abs() < 1e-6);
    }

    #[test]
    fn weight_decay_pulls_to_zero() {
        let mut opt = Sgd::new().weight_decay(0.1);
        let mut p = vec![10.0];
        opt.step(&mut p, &[0.0], &[], 1.0);
        assert!((p[0] - 9.0).abs() < 1e-6);
    }

    #[test]
    fn nesterov_differs_from_heavy_ball() {
        let mut heavy = Sgd::with_momentum(0.9);
        let mut nest = Sgd::with_momentum(0.9).nesterov();
        let mut p1 = vec![0.0];
        let mut p2 = vec![0.0];
        heavy.step(&mut p1, &[1.0], &[], 1.0);
        nest.step(&mut p2, &[1.0], &[], 1.0);
        assert!(p2[0] < p1[0], "nesterov takes the larger first step");
    }

    #[test]
    fn converges_on_quadratic() {
        // f(p) = (p-3)²/2, grad = p-3.
        let mut opt = Sgd::with_momentum(0.9);
        let mut p = vec![0.0];
        for _ in 0..200 {
            let g = vec![p[0] - 3.0];
            opt.step(&mut p, &g, &[], 0.05);
        }
        assert!((p[0] - 3.0).abs() < 1e-3, "p={}", p[0]);
    }
}
