//! Data generators for every simulated table and figure of the paper's
//! evaluation (Section 5). The convergence experiments (Figures 1 and 5,
//! Table 3) run live in `kaisa-bench`; everything that required the 64-GPU /
//! 128-GPU clusters is regenerated here from the cost model.

use crate::device::ClusterSpec;
use crate::inventory::ModelInventory;
use crate::strategy_sim::{IterationBreakdown, SimParams, Simulator};

/// The `grad_worker_frac` sweep of Figure 6 (64 workers).
pub const FIG6_FRACS: [f64; 7] =
    [1.0 / 64.0, 1.0 / 32.0, 1.0 / 16.0, 1.0 / 8.0, 1.0 / 4.0, 1.0 / 2.0, 1.0];

/// One point of Figure 6: iteration time and K-FAC memory overhead.
#[derive(Debug, Clone)]
pub struct Fig6Row {
    /// Model name.
    pub model: &'static str,
    /// `grad_worker_frac`.
    pub frac: f64,
    /// Average seconds per optimizer iteration.
    pub iter_seconds: f64,
    /// K-FAC memory overhead on the heaviest rank, MB.
    pub kfac_overhead_mb: f64,
}

fn fig6_params(model: ModelInventory, frac: f64) -> SimParams {
    let cluster = ClusterSpec::frontera(64);
    match model.name {
        "BERT-Large" => {
            let mut p = SimParams::baseline(model, cluster, 8).with_kfac(frac, 10, 100);
            p.grad_accum = 64; // global batch 32768 via accumulation
            p.half_training = true;
            p.half_factors = true;
            p.optimizer_state_bytes = 8;
            p
        }
        "Mask R-CNN" => {
            // Global batch 64 on 64 GPUs → local batch 1, FP32.
            SimParams::baseline(model, cluster, 1).with_kfac(frac, 50, 500)
        }
        "ResNet-152" => {
            // Paper: local batch lowered to 24 for ResNet-152.
            SimParams::baseline(model, cluster, 24).with_kfac(frac, 50, 500)
        }
        _ => SimParams::baseline(model, cluster, 32).with_kfac(frac, 50, 500),
    }
}

/// Figure 6: iteration time and memory overhead across `grad_worker_frac`
/// for ResNet-{18,50,101,152}, Mask R-CNN, and BERT-Large on 64 V100s.
pub fn fig6() -> Vec<Fig6Row> {
    let models: Vec<ModelInventory> = vec![
        ModelInventory::resnet18(),
        ModelInventory::resnet50(),
        ModelInventory::resnet101(),
        ModelInventory::resnet152(),
        ModelInventory::mask_rcnn_roi_heads(),
        ModelInventory::bert_large(512),
    ];
    let mut rows = Vec::new();
    for model in models {
        for &frac in &FIG6_FRACS {
            let sim = Simulator::new(fig6_params(model.clone(), frac));
            let iter = sim.iteration_breakdown();
            let mem = sim.memory_breakdown();
            rows.push(Fig6Row {
                model: model.name,
                frac,
                iter_seconds: iter.total(),
                kfac_overhead_mb: mem.kfac_overhead() as f64 / (1 << 20) as f64,
            });
        }
    }
    rows
}

/// One stage measurement of Figure 7.
#[derive(Debug, Clone)]
pub struct Fig7Row {
    /// `grad_worker_frac`.
    pub frac: f64,
    /// Stage name (Figure 7 legend).
    pub stage: &'static str,
    /// Average seconds per `KFAC.step()` call spent in this stage.
    pub seconds: f64,
}

/// Figure 7: per-stage time inside `KFAC.step()` for ResNet-50 on 64 V100s
/// across `grad_worker_frac`.
pub fn fig7() -> Vec<Fig7Row> {
    let mut rows = Vec::new();
    for &frac in &FIG6_FRACS {
        let sim = Simulator::new(fig6_params(ModelInventory::resnet50(), frac));
        let b: IterationBreakdown = sim.iteration_breakdown();
        for (stage, seconds) in [
            ("compute factors", b.factor_compute),
            ("communicate factors", b.factor_comm),
            ("compute eigendecomp", b.eig_compute),
            ("communicate eigendecomp", b.eig_comm),
            ("precondition gradient", b.precondition),
            ("communicate gradient", b.grad_bcast),
            ("scale and update grads", b.scale),
        ] {
            rows.push(Fig7Row { frac, stage, seconds });
        }
    }
    rows
}

/// One point of Figure 8: projected end-to-end speedup over the baseline.
#[derive(Debug, Clone)]
pub struct Fig8Row {
    /// Application ("ResNet-50" or "BERT-Large").
    pub app: &'static str,
    /// GPU count.
    pub scale: usize,
    /// Strategy name ("MEM-OPT", "HYBRID-OPT", "COMM-OPT", "LOCAL-OPT").
    pub strategy: &'static str,
    /// Projected end-to-end speedup over SGD (ResNet) / LAMB (BERT).
    pub speedup: f64,
}

/// Figure 8 scales (A100 GPUs).
pub const FIG8_SCALES: [usize; 5] = [8, 16, 32, 64, 128];

/// Figure 8: projected end-to-end speedup for the KAISA strategies on A100s,
/// plus the DP-KFAC LOCAL-OPT point (MEM-OPT's placement with the factor
/// allreduce removed entirely).
///
/// ResNet-50: 90 SGD epochs vs. 55 KAISA epochs, weak scaling at fixed
/// per-GPU batch 128. BERT-Large phase 2: 1563 LAMB steps vs. 800 KAISA
/// steps at global batch 32768 held by gradient accumulation, factors in
/// FP16.
pub fn fig8() -> Vec<Fig8Row> {
    let mut rows = Vec::new();
    let strategies: [(&'static str, f64); 4] = [
        ("MEM-OPT", 0.0), // resolved per scale to 1/world
        ("HYBRID-OPT", 0.5),
        ("COMM-OPT", 1.0),
        ("LOCAL-OPT", 0.0), // 1/world placement, local factors
    ];

    for &scale in &FIG8_SCALES {
        let cluster = ClusterSpec::theta_gpu(scale);

        // --- ResNet-50: weak scaling at fixed per-GPU batch 128 (the
        // paper's A100 runs keep per-GPU work constant; the MEM-OPT
        // broadcast grows as O(log world) so its relative cost rises with
        // scale, which is what separates the strategies in Figure 8a).
        let local_batch = 128usize;
        let mut base = SimParams::baseline(ModelInventory::resnet50(), cluster, local_batch);
        base.half_training = true;
        let t_sgd = Simulator::new(base.clone()).iteration_breakdown().total();
        for (name, frac) in strategies {
            let frac = if frac == 0.0 { 1.0 / scale as f64 } else { frac };
            let mut p = base.clone().with_kfac(frac, 50, 500);
            p.half_factors = true;
            if name == "LOCAL-OPT" {
                p = p.with_local_factors();
            }
            let t_kfac = Simulator::new(p).iteration_breakdown().total();
            rows.push(Fig8Row {
                app: "ResNet-50",
                scale,
                strategy: name,
                speedup: (90.0 * t_sgd) / (55.0 * t_kfac),
            });
        }

        // --- BERT-Large phase 2: fixed global batch 32768 held by gradient
        // accumulation; accumulation depth shrinks with scale.
        let local = 8usize;
        let accum = (32_768 / (local * scale)).max(1);
        let mut base = SimParams::baseline(ModelInventory::bert_large(512), cluster, local);
        base.grad_accum = accum;
        base.half_training = true;
        base.optimizer_state_bytes = 8;
        let t_lamb = Simulator::new(base.clone()).iteration_breakdown().total();
        for (name, frac) in strategies {
            let frac = if frac == 0.0 { 1.0 / scale as f64 } else { frac };
            let mut p = base.clone().with_kfac(frac, 10, 100);
            p.half_factors = true;
            if name == "LOCAL-OPT" {
                p = p.with_local_factors();
            }
            let t_kfac = Simulator::new(p).iteration_breakdown().total();
            rows.push(Fig8Row {
                app: "BERT-Large",
                scale,
                strategy: name,
                speedup: (1563.0 * t_lamb) / (800.0 * t_kfac),
            });
        }
    }
    rows
}

/// One row of Table 5: per-GPU memory for SGD vs K-FAC min/max.
#[derive(Debug, Clone)]
pub struct Table5Row {
    /// Model name.
    pub model: &'static str,
    /// Training precision label ("FP32"/"FP16").
    pub precision: &'static str,
    /// SGD absolute memory, MB.
    pub sgd_mb: f64,
    /// K-FAC absolute memory at `frac = 1/64`, MB.
    pub kfac_min_mb: f64,
    /// Percent increase of the minimum over SGD.
    pub min_delta_pct: f64,
    /// K-FAC absolute memory at `frac = 1`, MB.
    pub kfac_max_mb: f64,
    /// Percent increase of the maximum over SGD.
    pub max_delta_pct: f64,
}

/// Table 5: per-GPU training memory on 64 V100s.
pub fn table5() -> Vec<Table5Row> {
    let mut rows = Vec::new();
    let models: Vec<ModelInventory> = vec![
        ModelInventory::resnet18(),
        ModelInventory::resnet50(),
        ModelInventory::resnet101(),
        ModelInventory::resnet152(),
        ModelInventory::mask_rcnn_roi_heads(),
        ModelInventory::bert_large(512),
    ];
    for model in models {
        let precision = if model.name == "BERT-Large" { "FP16" } else { "FP32" };
        let mut base = fig6_params(model.clone(), 1.0);
        base.kfac_enabled = false;
        let sgd = Simulator::new(base).memory_breakdown().absolute() as f64 / (1 << 20) as f64;
        let min = Simulator::new(fig6_params(model.clone(), 1.0 / 64.0))
            .memory_breakdown()
            .absolute() as f64
            / (1 << 20) as f64;
        let max = Simulator::new(fig6_params(model.clone(), 1.0)).memory_breakdown().absolute()
            as f64
            / (1 << 20) as f64;
        rows.push(Table5Row {
            model: model.name,
            precision,
            sgd_mb: sgd,
            kfac_min_mb: min,
            min_delta_pct: (min / sgd - 1.0) * 100.0,
            kfac_max_mb: max,
            max_delta_pct: (max / sgd - 1.0) * 100.0,
        });
    }
    rows
}

/// One row of Table 4: fixed-memory-budget configurations.
#[derive(Debug, Clone)]
pub struct Table4Row {
    /// Application.
    pub app: &'static str,
    /// Optimizer / strategy label.
    pub optimizer: String,
    /// Largest local batch size that fits the device memory.
    pub max_local_batch: usize,
    /// Global batch size at that local batch.
    pub global_batch: usize,
    /// Simulated seconds per iteration at the max batch.
    pub iter_seconds: f64,
    /// Projected minutes to convergence (paper's epochs/steps ratios).
    pub time_to_convergence_min: f64,
}

/// Find the largest local batch whose simulated memory fits the device.
fn max_batch(mut params: SimParams) -> usize {
    let budget = params.cluster.gpu.mem_bytes as usize;
    let mut best = 0usize;
    for batch in 1..=512 {
        params.local_batch = batch;
        let mem = Simulator::new(params.clone()).memory_breakdown().absolute();
        if mem <= budget {
            best = batch;
        } else {
            break;
        }
    }
    best
}

/// Table 4: convergence under a fixed memory budget. ResNet-50 on 64 V100s
/// (SGD 90 epochs to target vs KAISA 48), BERT-Large phase 2 on 8 A100s
/// (LAMB 2084 steps for 3 epochs vs KAISA 800 steps).
pub fn table4() -> Vec<Table4Row> {
    let mut rows = Vec::new();

    // ResNet-50 on 64 V100s, FP32 (as in §5.4).
    let cluster = ClusterSpec::frontera(64);
    let imagenet = 1_281_167usize;
    let configs: [(&str, Option<f64>, f64); 3] = [
        ("momentum SGD", None, 90.0),
        ("KAISA frac=1/64 (MEM-OPT)", Some(1.0 / 64.0), 47.0),
        ("KAISA frac=1/2 (HYBRID-OPT)", Some(0.5), 48.0),
    ];
    for (label, frac, epochs) in configs {
        let mut params = SimParams::baseline(ModelInventory::resnet50(), cluster, 1);
        if let Some(frac) = frac {
            params = params.with_kfac(frac, 20, 200);
        }
        let batch = max_batch(params.clone());
        params.local_batch = batch;
        let iter = Simulator::new(params).iteration_breakdown().total();
        let iters_per_epoch = (imagenet as f64 / (batch * 64) as f64).ceil();
        rows.push(Table4Row {
            app: "ResNet-50",
            optimizer: label.to_string(),
            max_local_batch: batch,
            global_batch: batch * 64,
            iter_seconds: iter,
            time_to_convergence_min: epochs * iters_per_epoch * iter / 60.0,
        });
    }

    // BERT-Large phase 2 on 8 A100s, FP16; global batch fixed by
    // accumulation, so "max batch" trades accumulation depth.
    let cluster = ClusterSpec::theta_gpu(8);
    let configs: [(&str, Option<f64>, f64, usize); 3] = [
        ("Fused LAMB", None, 2084.0, 24_576),
        ("KAISA frac=1/2", Some(0.5), 800.0, 32_768),
        ("KAISA frac=1", Some(1.0), 800.0, 32_768),
    ];
    for (label, frac, steps, global) in configs {
        let mut params = SimParams::baseline(ModelInventory::bert_large(512), cluster, 1);
        params.half_training = true;
        params.optimizer_state_bytes = 8;
        if let Some(frac) = frac {
            params = params.with_kfac(frac, 10, 100);
            params.half_factors = true;
        }
        let batch = max_batch(params.clone()).min(16);
        params.local_batch = batch;
        params.grad_accum = (global / (batch * 8)).max(1);
        let iter = Simulator::new(params).iteration_breakdown().total();
        rows.push(Table4Row {
            app: "BERT-Large",
            optimizer: label.to_string(),
            max_local_batch: batch,
            global_batch: global,
            iter_seconds: iter,
            time_to_convergence_min: steps * iter / 60.0,
        });
    }
    rows
}

/// Static Table 1 (baselines and hardware) as printable rows.
pub fn table1() -> Vec<[String; 5]> {
    let rows = [
        ["ResNet-50", "MLPerf", "75.9% val acc", "V100/A100", "64 / 8"],
        ["Mask R-CNN", "MLPerf", "0.377 bbox mAP, 0.342 segm mAP", "V100", "32-64"],
        ["U-Net", "brain-seg ref", "91.0% val DSC", "A100", "4"],
        ["BERT-Large", "NVIDIA ref", "90.8 SQuAD v1.1 F1", "A100", "8"],
    ];
    rows.iter().map(|r| r.map(String::from)).collect()
}

/// Static Table 2 (hyperparameters) as printable rows.
pub fn table2() -> Vec<[String; 6]> {
    let rows = [
        ["ResNet-50", "2048", "0.8", "3130", "500", "50"],
        ["Mask R-CNN", "64", "8e-2", "800", "500", "50"],
        ["U-Net", "64", "4e-4", "500", "200", "20"],
        ["BERT-Large", "65536", "5e-5", "103", "100", "10"],
    ];
    rows.iter().map(|r| r.map(String::from)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig6_shapes() {
        let rows = fig6();
        assert_eq!(rows.len(), 6 * 7);
        // ResNet-50: time falls, memory rises across the frac sweep.
        let rn50: Vec<&Fig6Row> = rows.iter().filter(|r| r.model == "ResNet-50").collect();
        assert!(rn50.first().unwrap().iter_seconds > rn50.last().unwrap().iter_seconds);
        assert!(rn50.first().unwrap().kfac_overhead_mb < rn50.last().unwrap().kfac_overhead_mb);
        // Memory overhead is monotone in frac for every model.
        for model in ["ResNet-18", "ResNet-101", "ResNet-152", "Mask R-CNN", "BERT-Large"] {
            let series: Vec<f64> =
                rows.iter().filter(|r| r.model == model).map(|r| r.kfac_overhead_mb).collect();
            for w in series.windows(2) {
                assert!(w[0] <= w[1] + 1e-9, "{model} memory not monotone");
            }
        }
    }

    #[test]
    fn fig7_gradient_comm_tradeoff() {
        let rows = fig7();
        let at = |frac: f64, stage: &str| {
            rows.iter().find(|r| (r.frac - frac).abs() < 1e-9 && r.stage == stage).unwrap().seconds
        };
        // Broadcast time decreases to zero as frac -> 1 (Figure 7's key
        // trend), while preconditioning time rises.
        assert!(at(1.0 / 64.0, "communicate gradient") > 0.0);
        assert_eq!(at(1.0, "communicate gradient"), 0.0);
        assert!(at(1.0, "precondition gradient") > at(1.0 / 64.0, "precondition gradient"));
        // Factor stages are frac-invariant.
        let f_lo = at(1.0 / 64.0, "communicate factors");
        let f_hi = at(1.0, "communicate factors");
        assert!((f_lo - f_hi).abs() < 1e-12);
    }

    #[test]
    fn fig8_scaling_trends() {
        let rows = fig8();
        // COMM-OPT speedup grows with scale for ResNet-50; MEM-OPT is flat
        // or declining relative to it (the Figure 8 contrast).
        let series = |app: &str, strat: &str| -> Vec<f64> {
            FIG8_SCALES
                .iter()
                .map(|&s| {
                    rows.iter()
                        .find(|r| r.app == app && r.strategy == strat && r.scale == s)
                        .unwrap()
                        .speedup
                })
                .collect()
        };
        let comm = series("ResNet-50", "COMM-OPT");
        let mem = series("ResNet-50", "MEM-OPT");
        assert!(
            comm.last().unwrap() - comm.first().unwrap()
                > mem.last().unwrap() - mem.first().unwrap(),
            "COMM-OPT must gain more with scale than MEM-OPT: {comm:?} vs {mem:?}"
        );
        // At the largest scale, COMM-OPT beats MEM-OPT for the
        // high-communication model, with HYBRID-OPT between them.
        let hybrid = series("ResNet-50", "HYBRID-OPT");
        assert!(comm.last().unwrap() > mem.last().unwrap());
        assert!(hybrid.last().unwrap() > mem.last().unwrap());
        assert!(*hybrid.last().unwrap() <= comm.last().unwrap() + 1e-9);
        // COMM-OPT and HYBRID-OPT stay profitable at every scale; MEM-OPT's
        // every-step broadcast erodes its margin at scale (the paper's
        // motivation for the tunable fraction) but stays near break-even.
        // LOCAL-OPT shares MEM-OPT's placement minus the factor allreduce,
        // so it is at least as fast but inherits the same broadcast erosion.
        for r in &rows {
            match r.strategy {
                "MEM-OPT" | "LOCAL-OPT" => {
                    assert!(
                        r.speedup > 0.85,
                        "{} {} @{} = {}",
                        r.app,
                        r.strategy,
                        r.scale,
                        r.speedup
                    );
                }
                _ => {
                    assert!(
                        r.speedup > 1.0,
                        "{} {} @{} = {}",
                        r.app,
                        r.strategy,
                        r.scale,
                        r.speedup
                    );
                }
            }
        }
        // LOCAL-OPT never trails MEM-OPT: dropping the amortized factor
        // allreduce can only help iteration time.
        for &s in &FIG8_SCALES {
            for app in ["ResNet-50", "BERT-Large"] {
                let get = |strat: &str| {
                    rows.iter()
                        .find(|r| r.app == app && r.strategy == strat && r.scale == s)
                        .unwrap()
                        .speedup
                };
                assert!(
                    get("LOCAL-OPT") >= get("MEM-OPT") - 1e-12,
                    "{app} LOCAL-OPT slower than MEM-OPT at {s}"
                );
            }
        }
        // BERT: the low-communication model keeps near-identical speedups
        // across strategies (Figure 8b's flat panel).
        for &s in &FIG8_SCALES {
            let get = |strat: &str| {
                rows.iter()
                    .find(|r| r.app == "BERT-Large" && r.strategy == strat && r.scale == s)
                    .unwrap()
                    .speedup
            };
            let (m, c) = (get("MEM-OPT"), get("COMM-OPT"));
            assert!((m - c).abs() / c < 0.15, "BERT strategies should be close at {s}");
        }
    }

    #[test]
    fn table5_deltas_in_paper_band() {
        let rows = table5();
        for r in &rows {
            assert!(r.min_delta_pct > 0.0, "{}: K-FAC must cost memory", r.model);
            assert!(r.max_delta_pct > r.min_delta_pct, "{}", r.model);
            assert!(
                r.max_delta_pct < 120.0,
                "{}: delta {}% implausibly large",
                r.model,
                r.max_delta_pct
            );
        }
        // Mask R-CNN has by far the smallest overhead (paper: 1.5–2.9%).
        let mask = rows.iter().find(|r| r.model == "Mask R-CNN").unwrap();
        let rn50 = rows.iter().find(|r| r.model == "ResNet-50").unwrap();
        assert!(mask.max_delta_pct < rn50.min_delta_pct);
    }

    #[test]
    fn table4_kaisa_wins_under_memory_budget() {
        let rows = table4();
        let sgd = rows.iter().find(|r| r.optimizer.contains("SGD")).unwrap();
        let hybrid = rows.iter().find(|r| r.optimizer.contains("1/2 (HYBRID")).unwrap();
        assert!(
            hybrid.time_to_convergence_min < sgd.time_to_convergence_min,
            "KAISA ({:.0} min) must beat SGD ({:.0} min)",
            hybrid.time_to_convergence_min,
            sgd.time_to_convergence_min
        );
        let lamb = rows.iter().find(|r| r.optimizer.contains("LAMB")).unwrap();
        let bert_kaisa = rows.iter().find(|r| r.optimizer == "KAISA frac=1/2").unwrap();
        assert!(bert_kaisa.time_to_convergence_min < lamb.time_to_convergence_min);
        // SGD fits a larger batch than any K-FAC config (memory headroom).
        assert!(sgd.max_local_batch >= hybrid.max_local_batch);
    }

    #[test]
    fn static_tables_have_all_apps() {
        assert_eq!(table1().len(), 4);
        assert_eq!(table2().len(), 4);
    }
}
