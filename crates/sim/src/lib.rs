//! # kaisa-sim
//!
//! Performance and memory simulator for KAISA's large-scale evaluation.
//!
//! The paper's Figures 6–8 and Tables 4–5 were measured on 64 V100s and up
//! to 128 A100s. This crate reproduces their *shape* analytically from first
//! principles, using:
//!
//! * **true layer inventories** of the evaluated models (ResNet-18/50/101/152
//!   at ImageNet geometry, BERT-Large, Mask R-CNN ROI heads, U-Net) — every
//!   K-FAC factor dimension is derived from the real architecture;
//! * **device models** of the V100-16GB and A100-40GB (peak FLOP/s,
//!   achievable efficiency for GEMM vs. eigendecomposition, memory);
//! * **α–β collective cost models** (tree broadcast, ring allreduce) shared
//!   with `kaisa-comm`;
//! * the **actual placement plan** from `kaisa-core` (gradient-worker sets,
//!   LPT eigendecomposition assignment), so the simulated eigendecomposition
//!   makespan and per-rank preconditioning load are the ones KAISA would
//!   realize, not an idealized average.
//!
//! The simulator is validated at small scale against live `ThreadComm` runs
//! (see `tests/` at the workspace root).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod device;
pub mod experiments;
mod inventory;
mod strategy_sim;

pub use device::{ClusterSpec, GpuSpec};
pub use inventory::{LayerShape, ModelInventory};
pub use strategy_sim::{IterationBreakdown, MemoryBreakdown, SimParams, Simulator};
