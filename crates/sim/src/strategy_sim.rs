//! The per-iteration time and per-rank memory model.

use kaisa_comm::CollectiveCostModel;
use kaisa_core::{plan_assignments, AssignmentStrategy, WorkPlan};

use crate::device::ClusterSpec;
use crate::inventory::ModelInventory;

/// Fixed framework overhead per rank (CUDA context, cuDNN workspaces,
/// allocator slack) included in absolute memory totals.
const FRAMEWORK_OVERHEAD_BYTES: usize = 600 << 20;

/// Multiplier on the inventory's stored-activation estimate accounting for
/// framework intermediates (im2col buffers, BN saved statistics, ReLU masks).
/// Calibrated so the simulated ResNet-50 FP32 absolute memory at local batch
/// 32 lands near Table 5's measured 4.7 GB.
const ACTIVATION_OVERHEAD_FACTOR: f64 = 3.0;

/// Inputs to the simulator.
#[derive(Debug, Clone)]
pub struct SimParams {
    /// The model inventory.
    pub model: ModelInventory,
    /// The cluster (GPU type, world size, network).
    pub cluster: ClusterSpec,
    /// Per-rank micro-batch size.
    pub local_batch: usize,
    /// Gradient-accumulation micro-steps per optimizer iteration.
    pub grad_accum: usize,
    /// KAISA's memory/communication knob.
    pub grad_worker_frac: f64,
    /// Iterations between factor updates (`F_freq`).
    pub factor_update_freq: usize,
    /// Iterations between eigendecomposition updates (`K_freq`).
    pub inv_update_freq: usize,
    /// Store/communicate factors in half precision (Section 3.3).
    pub half_factors: bool,
    /// Mixed-precision training (fp16 forward/backward and gradient comm).
    pub half_training: bool,
    /// Optimizer state bytes per parameter (4 = momentum SGD, 8 = Adam/LAMB).
    pub optimizer_state_bytes: usize,
    /// Whether K-FAC runs at all (false = the SGD/LAMB baselines).
    pub kfac_enabled: bool,
    /// DP-KFAC / LOCAL-OPT: factors fold from rank-local statistics, so the
    /// factor allreduce disappears entirely. Pair with
    /// `grad_worker_frac = 1/world` (the one-owner grid).
    pub local_factors: bool,
}

impl SimParams {
    /// Baseline (no K-FAC) parameters for a model on a cluster.
    pub fn baseline(model: ModelInventory, cluster: ClusterSpec, local_batch: usize) -> Self {
        SimParams {
            model,
            cluster,
            local_batch,
            grad_accum: 1,
            grad_worker_frac: 1.0,
            factor_update_freq: 50,
            inv_update_freq: 500,
            half_factors: false,
            half_training: false,
            optimizer_state_bytes: 4,
            kfac_enabled: false,
            local_factors: false,
        }
    }

    /// Enable K-FAC with the given fraction (builder style).
    pub fn with_kfac(mut self, frac: f64, f_freq: usize, k_freq: usize) -> Self {
        self.kfac_enabled = true;
        self.grad_worker_frac = frac;
        self.factor_update_freq = f_freq;
        self.inv_update_freq = k_freq;
        self
    }

    /// Switch the K-FAC run to DP-KFAC local preconditioning (builder
    /// style): one owner per layer, no factor allreduce.
    pub fn with_local_factors(mut self) -> Self {
        self.local_factors = true;
        self.grad_worker_frac = 1.0 / self.cluster.world as f64;
        self
    }

    fn factor_elem_bytes(&self) -> usize {
        if self.half_factors {
            2
        } else {
            4
        }
    }

    fn grad_elem_bytes(&self) -> usize {
        if self.half_training {
            2
        } else {
            4
        }
    }
}

/// Average seconds per optimizer iteration, by stage (Figure 7's series plus
/// the baseline stages). Update-interval stages are amortized.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct IterationBreakdown {
    /// Forward + backward compute.
    pub forward_backward: f64,
    /// Data-parallel gradient allreduce.
    pub grad_allreduce: f64,
    /// Factor statistic computation (amortized over `F_freq`).
    pub factor_compute: f64,
    /// Factor allreduce (amortized over `F_freq`).
    pub factor_comm: f64,
    /// Eigendecomposition makespan (amortized over `K_freq`).
    pub eig_compute: f64,
    /// Eigendecomposition broadcasts (amortized over `K_freq`).
    pub eig_comm: f64,
    /// Per-step gradient preconditioning (max per-rank load).
    pub precondition: f64,
    /// Per-step preconditioned-gradient broadcast.
    pub grad_bcast: f64,
    /// Gradient scaling and write-back.
    pub scale: f64,
}

impl IterationBreakdown {
    /// Total seconds per iteration.
    pub fn total(&self) -> f64 {
        self.forward_backward
            + self.grad_allreduce
            + self.factor_compute
            + self.factor_comm
            + self.eig_compute
            + self.eig_comm
            + self.precondition
            + self.grad_bcast
            + self.scale
    }

    /// Seconds of K-FAC overhead (everything beyond the baseline stages).
    pub fn kfac_overhead(&self) -> f64 {
        self.total() - self.forward_backward - self.grad_allreduce
    }

    /// Total seconds per iteration under the pipelined executor's stage
    /// model: within each K-FAC phase, communication of one layer hides
    /// behind compute of the others, so a phase costs `max(compute, comm)`
    /// instead of their sum. The baseline stages and the (inherently serial)
    /// KL-clip scale are unchanged.
    pub fn overlapped_total(&self) -> f64 {
        self.forward_backward
            + self.grad_allreduce
            + self.factor_compute.max(self.factor_comm)
            + self.eig_compute.max(self.eig_comm)
            + self.precondition.max(self.grad_bcast)
            + self.scale
    }

    /// Total seconds per iteration under the task-runtime executor's
    /// cross-iteration model: the step_begin/step_finish split lets the
    /// factor phase drift past the scale barrier and hide under the *next*
    /// iteration's forward pass (the first third of `forward_backward`; the
    /// backward two-thirds are already claimed by DDP bucket overlap).
    /// Never below the irreducible baseline chain, never above
    /// [`IterationBreakdown::overlapped_total`].
    pub fn runtime_total(&self) -> f64 {
        self.runtime_total_with_depth(2)
    }

    /// [`IterationBreakdown::runtime_total`] generalized to a depth-`depth`
    /// cross-iteration window: each additional in-flight iteration donates
    /// one more forward-pass third to hide deferred factor work under, so
    /// the hideable window is `(depth - 1) * forward_backward / 3`. Depth 1
    /// is the sweep pipeline (nothing crosses the iteration boundary);
    /// depth 2 reproduces [`IterationBreakdown::runtime_total`] exactly.
    /// The amortized factor phase saturates: once it is fully hidden,
    /// deeper windows stop helping.
    pub fn runtime_total_with_depth(&self, depth: usize) -> f64 {
        assert!(depth >= 1, "window depth must be at least 1");
        let factor_phase = self.factor_compute.max(self.factor_comm);
        let forward_window = (depth - 1) as f64 * self.forward_backward / 3.0;
        let hidden = factor_phase.min(forward_window);
        (self.overlapped_total() - hidden)
            .max(self.forward_backward + self.grad_allreduce + self.scale)
    }
}

/// Per-rank memory, bytes.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct MemoryBreakdown {
    /// Model weights (including fp16 working copy under AMP).
    pub weights: usize,
    /// Gradients.
    pub grads: usize,
    /// Optimizer state.
    pub optimizer_state: usize,
    /// Stored activations at the local batch size.
    pub activations: usize,
    /// K-FAC factors (replicated on every rank).
    pub factors: usize,
    /// K-FAC factor bytes on the heaviest-loaded rank under shard-resident
    /// accumulation (`sharded_factors`): each rank keeps only the packed
    /// sections it eigendecomposes, so this replaces `factors` when the
    /// sharded path is on (flat square wire layout; triangular packing
    /// halves it further).
    pub factors_sharded: usize,
    /// Eigendecomposition caches on the heaviest-loaded rank.
    pub eig_cache: usize,
}

impl MemoryBreakdown {
    /// The paper's "K-FAC memory overhead": factors + eigendecompositions.
    pub fn kfac_overhead(&self) -> usize {
        self.factors + self.eig_cache
    }

    /// The K-FAC memory overhead under shard-resident factor accumulation:
    /// the heaviest rank's owned packed sections + eigendecomposition cache.
    pub fn kfac_overhead_sharded(&self) -> usize {
        self.factors_sharded + self.eig_cache
    }

    /// Absolute per-rank training memory (Table 5's "Abs." columns).
    pub fn absolute(&self) -> usize {
        self.weights
            + self.grads
            + self.optimizer_state
            + self.activations
            + self.factors
            + self.eig_cache
            + FRAMEWORK_OVERHEAD_BYTES
    }
}

/// The iteration-time and memory simulator.
#[derive(Debug, Clone)]
pub struct Simulator {
    params: SimParams,
    plan: WorkPlan,
    cost: CollectiveCostModel,
}

impl Simulator {
    /// Build a simulator (computes the real KAISA placement plan).
    pub fn new(params: SimParams) -> Self {
        let plan = plan_assignments(
            &params.model.layer_dims(),
            params.cluster.world,
            params.grad_worker_frac,
            AssignmentStrategy::ComputeLpt,
        );
        let cost = CollectiveCostModel::new(params.cluster.network);
        Simulator { params, plan, cost }
    }

    /// The simulation parameters.
    pub fn params(&self) -> &SimParams {
        &self.params
    }

    /// The placement plan in use.
    pub fn plan(&self) -> &WorkPlan {
        &self.plan
    }

    /// Average seconds per optimizer iteration, by stage.
    pub fn iteration_breakdown(&self) -> IterationBreakdown {
        let p = &self.params;
        let gpu = p.cluster.gpu;
        let world = p.cluster.world;
        let mut out = IterationBreakdown::default();

        // Forward + backward: 3x forward GEMM work, over all micro-batches.
        let fwd_flops = p.model.fwd_flops_per_sample() * (p.local_batch * p.grad_accum) as f64;
        out.forward_backward = 3.0 * fwd_flops / gpu.gemm_flops(p.half_training);

        // Gradient allreduce. PyTorch DDP overlaps bucketed communication
        // with backprop, so only the part exceeding the backward-pass window
        // (2/3 of forward+backward) shows up on the critical path.
        let grad_bytes = p.model.total_params() * p.grad_elem_bytes();
        let allreduce_raw = self.cost.allreduce(grad_bytes, world);
        out.grad_allreduce =
            (allreduce_raw - 2.0 / 3.0 * out.forward_backward).max(0.0) + 0.05 * allreduce_raw; // non-overlappable tail (last bucket)

        if !p.kfac_enabled {
            return out;
        }
        let fb = p.factor_elem_bytes();
        let f_freq = p.factor_update_freq as f64;
        let k_freq = p.inv_update_freq as f64;

        // Factor statistics: aᵀa and gᵀg over each micro-batch of a factor
        // update step.
        let stat_flops: f64 = p
            .model
            .layers
            .iter()
            .map(|l| l.factor_stat_flops() * (p.local_batch * p.grad_accum) as f64)
            .sum();
        out.factor_compute = stat_flops / gpu.gemm_flops(p.half_training) / f_freq;

        // Factor allreduce — absent entirely under DP-KFAC local folds.
        out.factor_comm = if p.local_factors {
            0.0
        } else {
            let factor_bytes = p.model.all_factor_bytes(fb);
            self.cost.allreduce(factor_bytes, world) / f_freq
        };

        // Eigendecomposition: the realized LPT makespan.
        let mut eig_loads = vec![0.0f64; world];
        for (layer, asn) in p.model.layers.iter().zip(&self.plan.layers) {
            eig_loads[asn.a_worker] += 9.0 * (layer.a_dim as f64).powi(3);
            eig_loads[asn.g_worker] += 9.0 * (layer.g_dim as f64).powi(3);
        }
        let makespan_flops = eig_loads.iter().cloned().fold(0.0, f64::max);
        out.eig_compute = makespan_flops / gpu.eig_flops() / k_freq;

        // Eigendecomposition broadcasts to the gradient workers: Q_A, Q_G,
        // and the precomputed outer product per layer.
        let gw = self.plan.workers_per_layer;
        if gw > 1 {
            let mut t = 0.0;
            for layer in &p.model.layers {
                t += self.cost.broadcast(layer.a_dim * layer.a_dim * fb, gw);
                t += self.cost.broadcast(layer.g_dim * layer.g_dim * fb, gw);
                t += self.cost.broadcast(layer.a_dim * layer.g_dim * fb, gw);
            }
            out.eig_comm = t / k_freq;
        }

        // Preconditioning: heaviest per-rank load (each gradient worker
        // preconditions every layer it serves).
        let mut precond_loads = vec![0.0f64; world];
        for (layer, asn) in p.model.layers.iter().zip(&self.plan.layers) {
            for &r in &asn.gradient_workers {
                precond_loads[r] += layer.precondition_flops();
            }
        }
        // "K-FAC computations are performed in half precision where
        // possible" (Section 3.3) — preconditioning GEMMs run at training
        // precision; only the eigendecomposition is pinned to FP32.
        let precond_flops = precond_loads.iter().cloned().fold(0.0, f64::max);
        out.precondition = precond_flops / gpu.gemm_flops(p.half_training);

        // Preconditioned-gradient broadcasts: disjoint groups run
        // concurrently, so each layer costs one tree broadcast over its
        // (largest) group — the O(log(p/g)) claim of Section 3.1.
        let mut t = 0.0;
        for (layer, asn) in p.model.layers.iter().zip(&self.plan.layers) {
            if let Some(largest) = asn.bcast_groups.iter().map(|g| g.len()).max() {
                t += self.cost.broadcast(layer.a_dim * layer.g_dim * p.grad_elem_bytes(), largest);
            }
        }
        out.grad_bcast = t;

        // Scaling: two elementwise passes over all combined gradients.
        let grad_elems: f64 = p.model.layers.iter().map(|l| (l.a_dim * l.g_dim) as f64).sum();
        out.scale = 3.0 * grad_elems / gpu.gemm_flops(p.half_training);

        out
    }

    /// Per-rank memory at the configured precision.
    pub fn memory_breakdown(&self) -> MemoryBreakdown {
        let p = &self.params;
        let params = p.model.total_params();
        let mut out = MemoryBreakdown {
            // AMP keeps an fp32 master copy plus an fp16 working copy.
            weights: params * if p.half_training { 6 } else { 4 },
            grads: params * p.grad_elem_bytes(),
            optimizer_state: params * p.optimizer_state_bytes,
            activations: (p.model.activation_bytes_per_sample as f64
                * p.local_batch as f64
                * ACTIVATION_OVERHEAD_FACTOR
                * if p.half_training { 0.5 } else { 1.0 }) as usize,
            factors: 0,
            factors_sharded: 0,
            eig_cache: 0,
        };
        if p.kfac_enabled {
            let fb = p.factor_elem_bytes();
            out.factors = p.model.all_factor_bytes(fb);
            let world = p.cluster.world;
            // Shard-resident accumulation: each rank holds only the factor
            // sections it eigendecomposes (A on the A worker, G on the G
            // worker); report the heaviest rank.
            let mut owned = vec![0usize; world];
            // Eigendecomposition cache on the heaviest rank.
            let mut cache = vec![0usize; world];
            for (layer, asn) in p.model.layers.iter().zip(&self.plan.layers) {
                owned[asn.a_worker] += layer.a_dim * layer.a_dim * fb;
                owned[asn.g_worker] += layer.g_dim * layer.g_dim * fb;
                for &r in &asn.gradient_workers {
                    cache[r] += layer.eig_bytes(fb);
                }
            }
            out.factors_sharded = owned.into_iter().max().unwrap_or(0);
            out.eig_cache = cache.into_iter().max().unwrap_or(0);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::ClusterSpec;

    fn rn50_sim(frac: f64) -> Simulator {
        let params = SimParams::baseline(ModelInventory::resnet50(), ClusterSpec::frontera(64), 32)
            .with_kfac(frac, 50, 500);
        Simulator::new(params)
    }

    #[test]
    fn grad_bcast_vanishes_at_comm_opt() {
        let comm_opt = rn50_sim(1.0).iteration_breakdown();
        assert_eq!(comm_opt.grad_bcast, 0.0, "COMM-OPT has no gradient broadcast");
        let mem_opt = rn50_sim(1.0 / 64.0).iteration_breakdown();
        assert!(mem_opt.grad_bcast > 0.0);
    }

    #[test]
    fn precondition_load_grows_with_frac() {
        let lo = rn50_sim(1.0 / 64.0).iteration_breakdown();
        let hi = rn50_sim(1.0).iteration_breakdown();
        assert!(
            hi.precondition > lo.precondition,
            "more layers per worker at higher frac: {} vs {}",
            lo.precondition,
            hi.precondition
        );
    }

    #[test]
    fn resnet50_iter_time_decreases_with_frac() {
        // The Figure 6 headline: ResNet-50 on 64 V100s speeds up as the
        // gradient-worker count rises (paper: 24.4% from 1 to 64 workers).
        let t_mem = rn50_sim(1.0 / 64.0).iteration_breakdown().total();
        let t_comm = rn50_sim(1.0).iteration_breakdown().total();
        assert!(
            t_comm < t_mem,
            "COMM-OPT ({t_comm:.4}s) should beat MEM-OPT ({t_mem:.4}s) for ResNet-50"
        );
        let speedup = (t_mem - t_comm) / t_mem;
        assert!((0.02..0.6).contains(&speedup), "speedup {speedup} out of the plausible band");
    }

    #[test]
    fn overlapped_total_bounded_by_serial_and_baseline() {
        for frac in [1.0 / 64.0, 0.5, 1.0] {
            let b = rn50_sim(frac).iteration_breakdown();
            let overlapped = b.overlapped_total();
            assert!(
                overlapped <= b.total() + 1e-15,
                "overlap can only help: {} > {}",
                overlapped,
                b.total()
            );
            // The hidden stages can't shrink below the baseline + compute.
            assert!(overlapped >= b.forward_backward + b.grad_allreduce + b.scale);
        }
        // MEM-OPT has real grad broadcasts overlapping precondition, so the
        // pipelined model must be strictly cheaper there.
        let mem_opt = rn50_sim(1.0 / 64.0).iteration_breakdown();
        assert!(mem_opt.overlapped_total() < mem_opt.total());
    }

    #[test]
    fn runtime_total_bounded_by_overlapped_and_baseline() {
        for frac in [1.0 / 64.0, 0.5, 1.0] {
            let b = rn50_sim(frac).iteration_breakdown();
            let runtime = b.runtime_total();
            assert!(
                runtime <= b.overlapped_total() + 1e-15,
                "cross-iteration overlap can only help: {} > {}",
                runtime,
                b.overlapped_total()
            );
            assert!(runtime >= b.forward_backward + b.grad_allreduce + b.scale);
        }
        // ResNet-50's amortized factor phase is nonzero, so hoisting it into
        // the next forward pass must be a strict win over the sweep pipeline.
        let b = rn50_sim(0.5).iteration_breakdown();
        assert!(
            b.runtime_total() < b.overlapped_total(),
            "factor phase {} should hide under the forward window",
            b.factor_compute.max(b.factor_comm)
        );
    }

    #[test]
    fn runtime_total_with_depth_is_monotone_and_saturating() {
        let b = rn50_sim(0.5).iteration_breakdown();
        // Depth 1 = no cross-iteration hiding; depth 2 = the legacy model.
        assert_eq!(b.runtime_total_with_depth(1), b.overlapped_total());
        assert_eq!(b.runtime_total_with_depth(2), b.runtime_total());
        let mut prev = b.runtime_total_with_depth(1);
        for depth in 2..=6 {
            let t = b.runtime_total_with_depth(depth);
            assert!(t <= prev + 1e-15, "depth {depth}: {t} regressed from {prev}");
            prev = t;
        }
        // Once the amortized factor phase is fully hidden, deeper windows
        // stop helping: times saturate at the baseline-bounded floor.
        let deep = b.runtime_total_with_depth(32);
        assert!(deep <= b.runtime_total_with_depth(6) + 1e-15);
        assert!(deep >= b.forward_backward + b.grad_allreduce + b.scale);
    }

    #[test]
    fn local_factors_drop_the_factor_allreduce_and_nothing_else() {
        let world = 64;
        let mem_opt = rn50_sim(1.0 / world as f64).iteration_breakdown();
        let local = Simulator::new(
            SimParams::baseline(ModelInventory::resnet50(), ClusterSpec::frontera(world), 32)
                .with_kfac(1.0 / world as f64, 50, 500)
                .with_local_factors(),
        )
        .iteration_breakdown();
        assert_eq!(local.factor_comm, 0.0, "DP-KFAC never allreduces factors");
        assert!(mem_opt.factor_comm > 0.0);
        // Same one-owner placement: every other stage is untouched.
        assert_eq!(local.eig_compute, mem_opt.eig_compute);
        assert_eq!(local.precondition, mem_opt.precondition);
        assert_eq!(local.grad_bcast, mem_opt.grad_bcast);
        assert!(local.total() < mem_opt.total());
    }

    #[test]
    fn memory_overhead_increases_with_frac_in_paper_band() {
        // Table 5 / Figure 6: max/min K-FAC overhead ratio is 1.5–2.9x.
        let lo = rn50_sim(1.0 / 64.0).memory_breakdown().kfac_overhead();
        let mid = rn50_sim(0.5).memory_breakdown().kfac_overhead();
        let hi = rn50_sim(1.0).memory_breakdown().kfac_overhead();
        assert!(lo < mid && mid < hi);
        let ratio = hi as f64 / lo as f64;
        assert!((1.3..3.2).contains(&ratio), "max/min overhead ratio {ratio}");
    }

    #[test]
    fn sharded_factor_residency_beats_replicated() {
        // Shard-resident accumulation keeps only owned sections per rank:
        // strictly below full replication at world > 1, equal at world 1.
        let multi = rn50_sim(1.0).memory_breakdown();
        assert!(multi.factors_sharded > 0);
        assert!(
            multi.factors_sharded < multi.factors,
            "sharded {} should undercut replicated {}",
            multi.factors_sharded,
            multi.factors
        );
        assert!(multi.kfac_overhead_sharded() < multi.kfac_overhead());

        let params = SimParams::baseline(ModelInventory::resnet50(), ClusterSpec::frontera(1), 32)
            .with_kfac(1.0, 50, 500);
        let solo = Simulator::new(params).memory_breakdown();
        assert_eq!(solo.factors_sharded, solo.factors, "one rank owns everything");
    }

    #[test]
    fn kfac_beats_sgd_when_iterations_drop_enough() {
        // Per-iteration K-FAC is slower; convergence in 55 vs 90 epochs must
        // win end-to-end (the Figure 8 computation).
        let base = SimParams::baseline(ModelInventory::resnet50(), ClusterSpec::frontera(64), 32);
        let sgd = Simulator::new(base.clone()).iteration_breakdown().total();
        let kfac = Simulator::new(base.with_kfac(1.0, 50, 500)).iteration_breakdown().total();
        assert!(kfac > sgd, "K-FAC iterations cost more");
        let speedup = (90.0 * sgd) / (55.0 * kfac);
        assert!(speedup > 1.0, "end-to-end speedup {speedup} should exceed 1");
    }

    #[test]
    fn bert_iteration_time_insensitive_to_frac() {
        // Figure 6 (BERT panel): with huge gradient accumulation, KFAC.step
        // runs rarely relative to compute, so frac barely matters.
        let mk = |frac: f64| {
            let mut p =
                SimParams::baseline(ModelInventory::bert_large(512), ClusterSpec::frontera(64), 8)
                    .with_kfac(frac, 10, 100);
            p.grad_accum = 64; // global batch 32768
            p.half_training = true;
            p.half_factors = true;
            p.optimizer_state_bytes = 8;
            Simulator::new(p).iteration_breakdown().total()
        };
        let t_mem = mk(1.0 / 64.0);
        let t_comm = mk(1.0);
        let rel = (t_mem - t_comm).abs() / t_mem;
        assert!(rel < 0.05, "BERT iter time should be frac-insensitive, got {rel}");
    }

    #[test]
    fn resnet50_fp32_absolute_memory_near_table5() {
        // Table 5: ResNet-50 FP32 SGD absolute = 4762 MB at the Figure 6
        // configuration (64 V100s, local batch 32). Require the right
        // ballpark (±40%), which is what a first-principles model can claim.
        let sim = Simulator::new(SimParams::baseline(
            ModelInventory::resnet50(),
            ClusterSpec::frontera(64),
            32,
        ));
        let mb = sim.memory_breakdown().absolute() as f64 / (1 << 20) as f64;
        assert!((2800.0..6700.0).contains(&mb), "ResNet-50 SGD abs {mb} MB");
    }

    #[test]
    fn eig_makespan_benefits_from_more_workers() {
        // With more gradient workers, LPT spreads eig jobs wider.
        let t1 = rn50_sim(1.0 / 64.0).iteration_breakdown().eig_compute;
        let t64 = rn50_sim(1.0).iteration_breakdown().eig_compute;
        assert!(t64 < t1, "eig makespan {t64} should shrink vs {t1}");
    }
}
