//! Layer inventories of the paper's evaluated models.
//!
//! Every K-FAC factor dimension below is derived from the true architecture
//! at the paper's input geometry (ImageNet 224², COCO ROI heads, 256² MRI
//! slices for U-Net, BERT-Large at sequence length 512). The inventories
//! drive the Figure 6–8 / Table 5 simulations, so getting the factor shapes
//! right is what makes the memory and bandwidth numbers meaningful.

/// One K-FAC-preconditionable layer of a model.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LayerShape {
    /// Layer name.
    pub name: String,
    /// `A` factor dimension: `c_in·kh·kw (+1 with bias)` for Conv2d,
    /// `in_features (+1)` for Linear.
    pub a_dim: usize,
    /// `G` factor dimension: output channels/features.
    pub g_dim: usize,
    /// Spatial positions (or tokens/ROIs) per sample at this layer — the
    /// `T` of the KFC construction; 1 for a plain Linear over sample rows.
    pub spatial: usize,
    /// Trainable parameters in this layer.
    pub params: usize,
}

impl LayerShape {
    fn conv(name: impl Into<String>, c_in: usize, c_out: usize, k: usize, out_hw: usize) -> Self {
        LayerShape {
            name: name.into(),
            a_dim: c_in * k * k,
            g_dim: c_out,
            spatial: out_hw * out_hw,
            params: c_in * k * k * c_out,
        }
    }

    fn linear(name: impl Into<String>, inp: usize, out: usize, rows_per_sample: usize) -> Self {
        LayerShape {
            name: name.into(),
            a_dim: inp + 1,
            g_dim: out,
            spatial: rows_per_sample,
            params: (inp + 1) * out,
        }
    }

    /// Bytes of the two factors at `bytes_per_elem` element size.
    pub fn factor_bytes(&self, bytes_per_elem: usize) -> usize {
        (self.a_dim * self.a_dim + self.g_dim * self.g_dim) * bytes_per_elem
    }

    /// Bytes of the eigendecomposition cache (`Q_A`, `Q_G`, and the
    /// `g_dim x a_dim` outer product) at `bytes_per_elem`.
    pub fn eig_bytes(&self, bytes_per_elem: usize) -> usize {
        (self.a_dim * self.a_dim + self.g_dim * self.g_dim + self.a_dim * self.g_dim)
            * bytes_per_elem
    }

    /// FLOPs to eigendecompose both factors (`c·n³` with the standard
    /// `c ≈ 9` for `syevd`-style solvers).
    pub fn eig_flops(&self) -> f64 {
        9.0 * ((self.a_dim as f64).powi(3) + (self.g_dim as f64).powi(3))
    }

    /// FLOPs to precondition one gradient through Eq. 15–17: four
    /// rectangular GEMMs (`Q_Gᵀ·∇`, `·Q_A`, `Q_G·V₂`, `·Q_Aᵀ`).
    pub fn precondition_flops(&self) -> f64 {
        let (a, g) = (self.a_dim as f64, self.g_dim as f64);
        4.0 * a * g * (a + g) / 2.0 + a * g
    }

    /// FLOPs per sample to compute the factor statistics `aᵀa` and `gᵀg`.
    pub fn factor_stat_flops(&self) -> f64 {
        let t = self.spatial as f64;
        2.0 * t * ((self.a_dim as f64).powi(2) + (self.g_dim as f64).powi(2))
    }
}

/// A full model: K-FAC layers plus non-preconditioned parameter mass.
#[derive(Debug, Clone)]
pub struct ModelInventory {
    /// Model name as used in the paper's tables.
    pub name: &'static str,
    /// K-FAC-preconditionable layers.
    pub layers: Vec<LayerShape>,
    /// Parameters outside K-FAC's scope (BatchNorm, embeddings, excluded
    /// heads).
    pub extra_params: usize,
    /// Stored-activation bytes per sample during training (inputs cached for
    /// backward), an architecture-level estimate.
    pub activation_bytes_per_sample: usize,
    /// Forward FLOPs per sample spent outside the K-FAC layers (the Mask
    /// R-CNN backbone/RPN; attention score math for BERT). Zero when the
    /// layer list covers the whole network.
    pub extra_fwd_flops_per_sample: f64,
}

impl ModelInventory {
    /// Total trainable parameters.
    pub fn total_params(&self) -> usize {
        self.layers.iter().map(|l| l.params).sum::<usize>() + self.extra_params
    }

    /// Factor dimension pairs for `kaisa_core::plan_assignments`.
    pub fn layer_dims(&self) -> Vec<(usize, usize)> {
        self.layers.iter().map(|l| (l.a_dim, l.g_dim)).collect()
    }

    /// Forward FLOPs per sample (GEMM work only; backward ≈ 2x this).
    pub fn fwd_flops_per_sample(&self) -> f64 {
        self.extra_fwd_flops_per_sample
            + self
                .layers
                .iter()
                .map(|l| 2.0 * l.a_dim as f64 * l.g_dim as f64 * l.spatial as f64)
                .sum::<f64>()
    }

    /// Bytes of all factors at the given element size (replicated on every
    /// rank after the allreduce).
    pub fn all_factor_bytes(&self, bytes_per_elem: usize) -> usize {
        self.layers.iter().map(|l| l.factor_bytes(bytes_per_elem)).sum()
    }

    // ----- the paper's models -----

    /// ResNet-18 at ImageNet geometry.
    pub fn resnet18() -> Self {
        Self::resnet(18)
    }

    /// ResNet-50 at ImageNet geometry.
    pub fn resnet50() -> Self {
        Self::resnet(50)
    }

    /// ResNet-101 at ImageNet geometry.
    pub fn resnet101() -> Self {
        Self::resnet(101)
    }

    /// ResNet-152 at ImageNet geometry.
    pub fn resnet152() -> Self {
        Self::resnet(152)
    }

    /// Build a ResNet inventory. Supports depths 18 (basic blocks) and
    /// 50/101/152 (bottleneck blocks).
    pub fn resnet(depth: usize) -> Self {
        let (bottleneck, blocks): (bool, [usize; 4]) = match depth {
            18 => (false, [2, 2, 2, 2]),
            34 => (false, [3, 4, 6, 3]),
            50 => (true, [3, 4, 6, 3]),
            101 => (true, [3, 4, 23, 3]),
            152 => (true, [3, 8, 36, 3]),
            other => panic!("unsupported ResNet depth {other}"),
        };
        let mids = [64usize, 128, 256, 512];
        let hw = [56usize, 28, 14, 7];
        let expansion = if bottleneck { 4 } else { 1 };

        let mut layers = Vec::new();
        let mut extra_params = 0usize;
        let mut bn = |c: usize| extra_params += 2 * c;
        let mut act_bytes = 0usize;

        layers.push(LayerShape::conv("conv1", 3, 64, 7, 112));
        bn(64);
        act_bytes += 64 * 112 * 112 * 4;

        let mut c_in = 64usize;
        for (stage, (&mid, &out_hw)) in mids.iter().zip(&hw).enumerate() {
            let c_out = mid * expansion;
            for b in 0..blocks[stage] {
                let prefix = format!("layer{}.{}", stage + 1, b);
                let stride_stage = b == 0 && stage > 0;
                let _ = stride_stage;
                if bottleneck {
                    layers.push(LayerShape::conv(format!("{prefix}.conv1"), c_in, mid, 1, out_hw));
                    bn(mid);
                    layers.push(LayerShape::conv(format!("{prefix}.conv2"), mid, mid, 3, out_hw));
                    bn(mid);
                    layers.push(LayerShape::conv(format!("{prefix}.conv3"), mid, c_out, 1, out_hw));
                    bn(c_out);
                    act_bytes += (2 * mid + c_out) * out_hw * out_hw * 4;
                } else {
                    layers.push(LayerShape::conv(
                        format!("{prefix}.conv1"),
                        c_in,
                        c_out,
                        3,
                        out_hw,
                    ));
                    bn(c_out);
                    layers.push(LayerShape::conv(
                        format!("{prefix}.conv2"),
                        c_out,
                        c_out,
                        3,
                        out_hw,
                    ));
                    bn(c_out);
                    act_bytes += 2 * c_out * out_hw * out_hw * 4;
                }
                if b == 0 && (c_in != c_out) {
                    layers.push(LayerShape::conv(
                        format!("{prefix}.downsample"),
                        c_in,
                        c_out,
                        1,
                        out_hw,
                    ));
                    bn(c_out);
                }
                c_in = c_out;
            }
        }
        layers.push(LayerShape::linear("fc", 512 * expansion, 1000, 1));

        ModelInventory {
            name: match depth {
                18 => "ResNet-18",
                34 => "ResNet-34",
                50 => "ResNet-50",
                101 => "ResNet-101",
                152 => "ResNet-152",
                _ => "ResNet",
            },
            layers,
            extra_params,
            activation_bytes_per_sample: act_bytes,
            extra_fwd_flops_per_sample: 0.0,
        }
    }

    /// BERT-Large Uncased: 24 transformer layers, hidden 1024, FFN 4096,
    /// at phase-2 sequence length 512. The embedding table and prediction
    /// head are excluded from K-FAC (their Kronecker factor would be
    /// `vocab x vocab` ≈ 30K², paper Section 5.2) but count toward the
    /// parameter mass.
    pub fn bert_large(seq_len: usize) -> Self {
        let d = 1024usize;
        let ffn = 4096usize;
        let vocab = 30522usize;
        let mut layers = Vec::new();
        for l in 0..24 {
            for proj in ["wq", "wk", "wv", "wo"] {
                layers.push(LayerShape::linear(format!("layer{l}.attn.{proj}"), d, d, seq_len));
            }
            layers.push(LayerShape::linear(format!("layer{l}.ffn1"), d, ffn, seq_len));
            layers.push(LayerShape::linear(format!("layer{l}.ffn2"), ffn, d, seq_len));
        }
        // Embeddings (token + position + segment), LayerNorms, pooler, and
        // the MLM head.
        let extra_params = vocab * d + 512 * d + 2 * d   // embeddings
            + 24 * 4 * d                                   // LayerNorm γ/β (2 per sublayer)
            + (d + 1) * d                                  // pooler
            + (d + 1) * vocab; // prediction head
        ModelInventory {
            name: "BERT-Large",
            layers,
            extra_params,
            activation_bytes_per_sample: seq_len * (24 * (4 * d + ffn) + d) * 2, // fp16 activations
            // Attention score/context matmuls: 2 · 2 · T² · d per layer.
            extra_fwd_flops_per_sample: 24.0 * 4.0 * (seq_len * seq_len) as f64 * d as f64,
        }
    }

    /// Mask R-CNN ROI heads (the only part of the detector the paper
    /// preconditions, Section 5.2): the box head's shared FC stack and
    /// predictors, plus the mask head's convolution stack. The box head's
    /// first FC (input 256·7·7 = 12544) is excluded from K-FAC — its `A`
    /// factor alone would be ~630 MB, far above the 100–200 MB K-FAC
    /// overhead the paper reports for Mask R-CNN, so the reference
    /// configuration cannot have included it; it still counts as parameters.
    pub fn mask_rcnn_roi_heads() -> Self {
        let rois = 512usize; // ROIs per image in the box head
        let mask_rois = 128usize;
        let mut layers = vec![
            LayerShape::linear("box_head.fc2", 1024, 1024, rois),
            LayerShape::linear("box_head.cls", 1024, 81, rois),
            LayerShape::linear("box_head.bbox", 1024, 324, rois),
        ];
        for i in 0..4 {
            layers.push(LayerShape {
                name: format!("mask_head.conv{i}"),
                a_dim: 256 * 9,
                g_dim: 256,
                spatial: mask_rois * 14 * 14,
                params: 256 * 9 * 256,
            });
        }
        // Deconv (2x2) + 1x1 mask predictor.
        layers.push(LayerShape {
            name: "mask_head.deconv".to_string(),
            a_dim: 256 * 4,
            g_dim: 256,
            spatial: mask_rois * 28 * 28,
            params: 256 * 4 * 256,
        });
        layers.push(LayerShape {
            name: "mask_head.predictor".to_string(),
            a_dim: 256,
            g_dim: 81,
            spatial: mask_rois * 28 * 28,
            params: 256 * 81,
        });
        // Backbone (ResNet-50-FPN) + RPN + the excluded fc1: first-order
        // parameter mass only.
        let extra_params = 25_600_000 + (12544 + 1) * 1024;
        ModelInventory {
            name: "Mask R-CNN",
            layers,
            extra_params,
            activation_bytes_per_sample: 1500 * (1 << 20), // FPN pyramid at ~800x1333px
            // ResNet-50-FPN backbone + RPN at ~800px inputs.
            extra_fwd_flops_per_sample: 300e9,
        }
    }

    /// VGG-16 at ImageNet geometry — the paper names it as a model whose
    /// "performance characteristics" ResNet-50 represents (Section 5.5);
    /// included so the memory planner can cover the classic heavy-FC case
    /// (its fc1 factor is the largest single K-FAC factor of any model here).
    pub fn vgg16() -> Self {
        let cfg: [(usize, &[usize]); 5] = [
            (224, &[64, 64]),
            (112, &[128, 128]),
            (56, &[256, 256, 256]),
            (28, &[512, 512, 512]),
            (14, &[512, 512, 512]),
        ];
        let mut layers = Vec::new();
        let mut act_bytes = 0usize;
        let mut c_in = 3usize;
        let mut idx = 0usize;
        for (hw, widths) in cfg {
            for &c_out in widths {
                let mut l = LayerShape::conv(format!("conv{idx}"), c_in, c_out, 3, hw);
                // VGG convs carry biases.
                l.a_dim += 1;
                l.params += c_out;
                layers.push(l);
                act_bytes += c_out * hw * hw * 4;
                c_in = c_out;
                idx += 1;
            }
        }
        layers.push(LayerShape::linear("fc1", 512 * 7 * 7, 4096, 1));
        layers.push(LayerShape::linear("fc2", 4096, 4096, 1));
        layers.push(LayerShape::linear("fc3", 4096, 1000, 1));
        ModelInventory {
            name: "VGG-16",
            layers,
            extra_params: 0,
            activation_bytes_per_sample: act_bytes,
            extra_fwd_flops_per_sample: 0.0,
        }
    }

    /// U-Net (init_features = 32) at 256² single-channel MRI slices — the
    /// brain-segmentation reference implementation of the paper.
    pub fn unet() -> Self {
        let w = 32usize;
        let mut layers = Vec::new();
        let mut act_bytes = 0usize;
        let mut enc =
            |name: &str, c_in: usize, c_out: usize, hw: usize, layers: &mut Vec<LayerShape>| {
                layers.push(LayerShape::conv(format!("{name}a"), c_in, c_out, 3, hw));
                layers.push(LayerShape::conv(format!("{name}b"), c_out, c_out, 3, hw));
                act_bytes += 2 * c_out * hw * hw * 4;
            };
        enc("enc1", 3, w, 256, &mut layers);
        enc("enc2", w, 2 * w, 128, &mut layers);
        enc("enc3", 2 * w, 4 * w, 64, &mut layers);
        enc("enc4", 4 * w, 8 * w, 32, &mut layers);
        enc("bottleneck", 8 * w, 16 * w, 16, &mut layers);
        // Decoder: upconv (2x2) then two convs on the concatenated features.
        let mut dec =
            |name: &str, c_high: usize, c_skip: usize, hw: usize, layers: &mut Vec<LayerShape>| {
                layers.push(LayerShape {
                    name: format!("{name}.upconv"),
                    a_dim: c_high * 4,
                    g_dim: c_skip,
                    spatial: hw * hw,
                    params: c_high * 4 * c_skip,
                });
                layers.push(LayerShape::conv(format!("{name}a"), c_skip * 2, c_skip, 3, hw));
                layers.push(LayerShape::conv(format!("{name}b"), c_skip, c_skip, 3, hw));
                act_bytes += 3 * c_skip * hw * hw * 4;
            };
        dec("dec4", 16 * w, 8 * w, 32, &mut layers);
        dec("dec3", 8 * w, 4 * w, 64, &mut layers);
        dec("dec2", 4 * w, 2 * w, 128, &mut layers);
        dec("dec1", 2 * w, w, 256, &mut layers);
        layers.push(LayerShape::conv("out", w, 1, 1, 256));

        ModelInventory {
            name: "U-Net",
            layers,
            extra_params: 0,
            activation_bytes_per_sample: act_bytes,
            extra_fwd_flops_per_sample: 0.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn resnet50_has_canonical_parameter_count() {
        // Torchvision ResNet-50: 25.56M parameters.
        let inv = ModelInventory::resnet50();
        let total = inv.total_params();
        assert!((24_000_000..27_000_000).contains(&total), "ResNet-50 params {total} out of range");
        // 53 preconditionable conv layers + 1 fc.
        assert_eq!(inv.layers.len(), 54);
    }

    #[test]
    fn resnet18_parameter_count() {
        // Torchvision ResNet-18: 11.69M parameters.
        let total = ModelInventory::resnet18().total_params();
        assert!((11_000_000..12_500_000).contains(&total), "{total}");
    }

    #[test]
    fn resnet_depth_orders_layer_count_and_params() {
        let p18 = ModelInventory::resnet18().total_params();
        let p50 = ModelInventory::resnet50().total_params();
        let p101 = ModelInventory::resnet101().total_params();
        let p152 = ModelInventory::resnet152().total_params();
        assert!(p18 < p50 && p50 < p101 && p101 < p152);
    }

    #[test]
    fn bert_large_parameter_count() {
        // BERT-Large: ~335M parameters (with the tied MLM head counted once).
        let total = ModelInventory::bert_large(512).total_params();
        assert!((320_000_000..380_000_000).contains(&total), "{total}");
        // 24 layers x 6 preconditionable Linear layers.
        assert_eq!(ModelInventory::bert_large(512).layers.len(), 144);
    }

    #[test]
    fn bert_factor_memory_matches_paper_scale() {
        // Paper Table 5: BERT-Large K-FAC overhead 1.3 GB (min, fp16) to
        // 3.8 GB (max, fp16). Min ≈ factors only; max adds eig caches.
        let inv = ModelInventory::bert_large(512);
        let factors_fp16 = inv.all_factor_bytes(2) as f64 / (1 << 20) as f64;
        assert!((700.0..2500.0).contains(&factors_fp16), "BERT fp16 factor MB = {factors_fp16}");
    }

    #[test]
    fn resnet50_flops_per_sample() {
        // ResNet-50 forward ≈ 4.1 GFLOPs (2 MACs = 2 FLOPs convention:
        // ~8.2 GFLOP). Accept the 3.5–9 G band to cover conventions.
        let f = ModelInventory::resnet50().fwd_flops_per_sample();
        assert!((3.5e9..9.5e9).contains(&f), "ResNet-50 fwd flops {f}");
    }

    #[test]
    fn mask_rcnn_overhead_in_papers_band() {
        // Paper Table 5: Mask R-CNN K-FAC overhead ≈ 97–190 MB (fp32).
        let inv = ModelInventory::mask_rcnn_roi_heads();
        let factors = inv.all_factor_bytes(4) as f64 / (1 << 20) as f64;
        let max: f64 = inv.layers.iter().map(|l| l.eig_bytes(4)).sum::<usize>() as f64
            / (1 << 20) as f64
            + factors;
        assert!((50.0..250.0).contains(&factors), "min overhead {factors} MB");
        assert!((100.0..500.0).contains(&max), "max overhead {max} MB");
    }

    #[test]
    fn vgg16_parameter_count_and_fc1_dominance() {
        // Torchvision VGG-16: 138.36M parameters.
        let inv = ModelInventory::vgg16();
        let total = inv.total_params();
        assert!((135_000_000..142_000_000).contains(&total), "{total}");
        assert_eq!(inv.layers.len(), 16);
        // fc1's A factor (25089²) dwarfs every other factor — the worst-case
        // single eigendecomposition job the LPT scheduler can face.
        let fc1 = inv.layers.iter().find(|l| l.name == "fc1").unwrap();
        let biggest_other =
            inv.layers.iter().filter(|l| l.name != "fc1").map(|l| l.factor_bytes(4)).max().unwrap();
        assert!(fc1.factor_bytes(4) > 10 * biggest_other);
    }

    #[test]
    fn unet_is_conv_only() {
        let inv = ModelInventory::unet();
        assert!(inv.layers.iter().all(|l| !l.name.contains("fc")));
        assert_eq!(inv.extra_params, 0);
        // mateuszbuda U-Net (features=32): ~7.8M params.
        let total = inv.total_params();
        assert!((6_000_000..9_000_000).contains(&total), "{total}");
    }

    #[test]
    fn eig_flops_dominated_by_largest_factor() {
        let inv = ModelInventory::bert_large(512);
        let ffn2 = inv.layers.iter().find(|l| l.name.ends_with("ffn2")).unwrap();
        // a_dim 4097 dominates: 9·4097³ ≈ 6.2e11.
        assert!(ffn2.eig_flops() > 5e11);
    }
}
