//! GPU and cluster device models.

use kaisa_comm::ClusterNetwork;

/// Performance model of one accelerator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GpuSpec {
    /// Marketing name.
    pub name: &'static str,
    /// Device memory in bytes.
    pub mem_bytes: u64,
    /// Peak FP32 FLOP/s.
    pub flops_fp32: f64,
    /// Peak FP16 (tensor-core) FLOP/s.
    pub flops_fp16: f64,
    /// Fraction of FP32 peak achieved by large GEMMs.
    pub gemm_efficiency_fp32: f64,
    /// Fraction of FP16 tensor-core peak achieved by mixed-precision
    /// training GEMMs (markedly lower — tensor cores are memory-bound on
    /// real layer shapes).
    pub gemm_efficiency_fp16: f64,
    /// Fraction of peak achieved by dense symmetric eigensolvers — far lower
    /// than GEMM because `syevd` is bandwidth- and dependency-bound.
    pub eig_efficiency: f64,
}

impl GpuSpec {
    /// NVIDIA Tesla V100-SXM2 16 GB (Frontera's GPU subsystem).
    pub fn v100_16gb() -> Self {
        GpuSpec {
            name: "V100-16GB",
            mem_bytes: 16 * (1 << 30),
            flops_fp32: 15.7e12,
            flops_fp16: 125e12,
            gemm_efficiency_fp32: 0.5,
            gemm_efficiency_fp16: 0.22,
            eig_efficiency: 0.06,
        }
    }

    /// NVIDIA A100-SXM4 40 GB (ThetaGPU DGX-A100 nodes).
    pub fn a100_40gb() -> Self {
        GpuSpec {
            name: "A100-40GB",
            mem_bytes: 40 * (1 << 30),
            flops_fp32: 19.5e12,
            flops_fp16: 312e12,
            gemm_efficiency_fp32: 0.5,
            gemm_efficiency_fp16: 0.25,
            eig_efficiency: 0.06,
        }
    }

    /// Effective GEMM FLOP/s at a given training precision.
    pub fn gemm_flops(&self, half: bool) -> f64 {
        if half {
            self.flops_fp16 * self.gemm_efficiency_fp16
        } else {
            self.flops_fp32 * self.gemm_efficiency_fp32
        }
    }

    /// Effective eigendecomposition FLOP/s (always single precision — the
    /// paper casts factors to FP32 before decomposition, Section 3.3).
    pub fn eig_flops(&self) -> f64 {
        self.flops_fp32 * self.eig_efficiency
    }
}

/// A homogeneous GPU cluster.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ClusterSpec {
    /// The accelerator model.
    pub gpu: GpuSpec,
    /// Total GPUs (= world size; one rank per GPU as in the paper).
    pub world: usize,
    /// Interconnect model.
    pub network: ClusterNetwork,
}

impl ClusterSpec {
    /// Frontera-like V100 cluster over InfiniBand EDR.
    pub fn frontera(world: usize) -> Self {
        ClusterSpec { gpu: GpuSpec::v100_16gb(), world, network: ClusterNetwork::infiniband_edr() }
    }

    /// ThetaGPU-like DGX-A100 cluster.
    pub fn theta_gpu(world: usize) -> Self {
        ClusterSpec { gpu: GpuSpec::a100_40gb(), world, network: ClusterNetwork::dgx_a100() }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_sane() {
        let v = GpuSpec::v100_16gb();
        let a = GpuSpec::a100_40gb();
        assert!(a.flops_fp32 > v.flops_fp32);
        assert!(a.mem_bytes > v.mem_bytes);
        assert!(v.gemm_flops(true) > v.gemm_flops(false), "fp16 is faster");
        assert!(v.eig_flops() < v.gemm_flops(false) / 5.0, "eig far below GEMM");
    }

    #[test]
    fn clusters() {
        let f = ClusterSpec::frontera(64);
        assert_eq!(f.world, 64);
        assert_eq!(f.gpu.name, "V100-16GB");
        let t = ClusterSpec::theta_gpu(128);
        assert_eq!(t.gpu.name, "A100-40GB");
    }
}
