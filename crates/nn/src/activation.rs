//! Activation layers with cached backward state.

use kaisa_tensor::{ops, Matrix, Tensor4};

/// ReLU over matrices (MLP/transformer paths).
#[derive(Debug, Clone, Default)]
pub struct Relu {
    mask: Option<Vec<bool>>,
}

impl Relu {
    /// New ReLU layer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Forward; caches the activation mask when `train` is set.
    pub fn forward(&mut self, x: &Matrix, train: bool) -> Matrix {
        let mut out = x.clone();
        if train {
            self.mask = Some(x.as_slice().iter().map(|&v| v > 0.0).collect());
        }
        out.map_inplace(|v| if v > 0.0 { v } else { 0.0 });
        out
    }

    /// Backward through the cached mask.
    pub fn backward(&mut self, grad_out: &Matrix) -> Matrix {
        let mask = self.mask.take().expect("Relu backward without forward");
        assert_eq!(mask.len(), grad_out.numel());
        let mut g = grad_out.clone();
        for (v, &m) in g.as_mut_slice().iter_mut().zip(&mask) {
            if !m {
                *v = 0.0;
            }
        }
        g
    }
}

/// ReLU over NCHW tensors (convolutional paths).
#[derive(Debug, Clone, Default)]
pub struct Relu2d {
    mask: Option<Vec<bool>>,
}

impl Relu2d {
    /// New ReLU layer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Forward; caches the activation mask when `train` is set.
    pub fn forward(&mut self, x: &Tensor4, train: bool) -> Tensor4 {
        let mut out = x.clone();
        if train {
            self.mask = Some(x.as_slice().iter().map(|&v| v > 0.0).collect());
        }
        out.map_inplace(|v| if v > 0.0 { v } else { 0.0 });
        out
    }

    /// Backward through the cached mask.
    pub fn backward(&mut self, grad_out: &Tensor4) -> Tensor4 {
        let mask = self.mask.take().expect("Relu2d backward without forward");
        let mut g = grad_out.clone();
        for (v, &m) in g.as_mut_slice().iter_mut().zip(&mask) {
            if !m {
                *v = 0.0;
            }
        }
        g
    }
}

/// GELU (tanh approximation) over matrices — the transformer FFN activation.
#[derive(Debug, Clone, Default)]
pub struct Gelu {
    input: Option<Matrix>,
}

impl Gelu {
    /// New GELU layer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Forward; caches the input when `train` is set.
    pub fn forward(&mut self, x: &Matrix, train: bool) -> Matrix {
        if train {
            self.input = Some(x.clone());
        }
        x.map(ops::gelu_scalar)
    }

    /// Backward using the cached input.
    pub fn backward(&mut self, grad_out: &Matrix) -> Matrix {
        let x = self.input.take().expect("Gelu backward without forward");
        let mut g = grad_out.clone();
        for (gv, xv) in g.as_mut_slice().iter_mut().zip(x.as_slice()) {
            *gv *= ops::gelu_grad_scalar(*xv);
        }
        g
    }
}

/// Sigmoid over NCHW tensors (segmentation output).
#[derive(Debug, Clone, Default)]
pub struct Sigmoid2d {
    output: Option<Tensor4>,
}

impl Sigmoid2d {
    /// New sigmoid layer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Forward; caches the output (sigmoid' = y(1-y)) when `train` is set.
    pub fn forward(&mut self, x: &Tensor4, train: bool) -> Tensor4 {
        let mut out = x.clone();
        out.map_inplace(|v| 1.0 / (1.0 + (-v).exp()));
        if train {
            self.output = Some(out.clone());
        }
        out
    }

    /// Backward using the cached output.
    pub fn backward(&mut self, grad_out: &Tensor4) -> Tensor4 {
        let y = self.output.take().expect("Sigmoid2d backward without forward");
        let mut g = grad_out.clone();
        for (gv, yv) in g.as_mut_slice().iter_mut().zip(y.as_slice()) {
            *gv *= yv * (1.0 - yv);
        }
        g
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kaisa_tensor::Rng;

    #[test]
    fn relu_forward_backward() {
        let mut relu = Relu::new();
        let x = Matrix::from_vec(1, 4, vec![-1.0, 0.0, 2.0, -3.0]);
        let y = relu.forward(&x, true);
        assert_eq!(y.as_slice(), &[0.0, 0.0, 2.0, 0.0]);
        let g = Matrix::full(1, 4, 1.0);
        let dx = relu.backward(&g);
        assert_eq!(dx.as_slice(), &[0.0, 0.0, 1.0, 0.0]);
    }

    #[test]
    fn gelu_backward_matches_finite_difference() {
        let mut rng = Rng::seed_from_u64(91);
        let x = Matrix::randn(3, 5, 1.0, &mut rng);
        let mut gelu = Gelu::new();
        let _ = gelu.forward(&x, true);
        let ones = Matrix::full(3, 5, 1.0);
        let dx = gelu.backward(&ones);
        let h = 1e-3;
        for &(r, c) in &[(0usize, 0usize), (2, 4)] {
            let mut xp = x.clone();
            xp.set(r, c, x.get(r, c) + h);
            let mut xm = x.clone();
            xm.set(r, c, x.get(r, c) - h);
            let mut g2 = Gelu::new();
            let fp = g2.forward(&xp, false).sum();
            let fm = g2.forward(&xm, false).sum();
            let fd = (fp - fm) / (2.0 * h);
            assert!((fd - dx.get(r, c)).abs() < 1e-2);
        }
    }

    #[test]
    fn sigmoid_range_and_grad() {
        let mut rng = Rng::seed_from_u64(92);
        let x = Tensor4::randn(1, 1, 2, 2, 3.0, &mut rng);
        let mut sig = Sigmoid2d::new();
        let y = sig.forward(&x, true);
        for &v in y.as_slice() {
            assert!(v > 0.0 && v < 1.0);
        }
        let g = Tensor4::from_vec(1, 1, 2, 2, vec![1.0; 4]);
        let dx = sig.backward(&g);
        // sigmoid' peaks at 0.25.
        for &v in dx.as_slice() {
            assert!(v > 0.0 && v <= 0.25 + 1e-6);
        }
    }
}
