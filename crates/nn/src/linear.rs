//! Fully-connected layer with explicit backward and K-FAC capture.

use kaisa_tensor::{init, Matrix, Rng};

use crate::capture::{KfacAble, KfacCapture};

/// A dense layer `y = x Wᵀ + b` with weight shape `(out, in)`.
#[derive(Debug, Clone)]
pub struct Linear {
    name: String,
    /// Weight matrix, `(out_features, in_features)`.
    pub weight: Matrix,
    /// Optional bias, length `out_features`.
    pub bias: Option<Vec<f32>>,
    /// Gradient of the weight (accumulated across backward calls).
    pub grad_weight: Matrix,
    /// Gradient of the bias.
    pub grad_bias: Option<Vec<f32>>,
    /// K-FAC capture state.
    pub kfac: KfacCapture,
    input_cache: Option<Matrix>,
}

impl Linear {
    /// Xavier-initialized layer.
    pub fn new(
        name: impl Into<String>,
        in_features: usize,
        out_features: usize,
        bias: bool,
        rng: &mut Rng,
    ) -> Self {
        Linear {
            name: name.into(),
            weight: init::xavier_uniform(out_features, in_features, rng),
            bias: bias.then(|| vec![0.0; out_features]),
            grad_weight: Matrix::zeros(out_features, in_features),
            grad_bias: bias.then(|| vec![0.0; out_features]),
            kfac: KfacCapture::new(),
            input_cache: None,
        }
    }

    /// Kaiming-initialized layer (for ReLU stacks).
    pub fn new_kaiming(
        name: impl Into<String>,
        in_features: usize,
        out_features: usize,
        bias: bool,
        rng: &mut Rng,
    ) -> Self {
        let mut l = Self::new(name, in_features, out_features, bias, rng);
        l.weight = init::kaiming_normal(out_features, in_features, rng);
        l
    }

    /// Input feature count.
    pub fn in_features(&self) -> usize {
        self.weight.cols()
    }

    /// Output feature count.
    pub fn out_features(&self) -> usize {
        self.weight.rows()
    }

    /// Forward pass. `x` is `(batch, in)`; returns `(batch, out)`.
    ///
    /// When `train` is set, the input is cached for the backward pass and,
    /// if capture is enabled, the K-FAC `A` statistic is recorded (with the
    /// ones column appended when the layer has a bias, folding the bias into
    /// the factor as in `kfac_pytorch`).
    pub fn forward(&mut self, x: &Matrix, train: bool) -> Matrix {
        assert_eq!(x.cols(), self.in_features(), "{}: input width mismatch", self.name);
        let mut out = x.matmul_nt(&self.weight);
        if let Some(b) = &self.bias {
            for r in 0..out.rows() {
                let row = out.row_mut(r);
                for (v, bi) in row.iter_mut().zip(b) {
                    *v += *bi;
                }
            }
        }
        if train {
            if self.kfac.enabled {
                let n = x.rows();
                if self.bias.is_some() {
                    let aug = x.append_ones_column();
                    self.kfac.record_forward(&aug, n);
                } else {
                    self.kfac.record_forward(x, n);
                }
            }
            self.input_cache = Some(x.clone());
        }
        out
    }

    /// Backward pass. `grad_out` is `(batch, out)` (gradients of the mean
    /// loss). Accumulates parameter gradients and returns the input gradient
    /// `(batch, in)`.
    pub fn backward(&mut self, grad_out: &Matrix) -> Matrix {
        let x = self
            .input_cache
            .take()
            .unwrap_or_else(|| panic!("{}: backward without forward", self.name));
        assert_eq!(grad_out.rows(), x.rows(), "{}: batch mismatch", self.name);
        assert_eq!(grad_out.cols(), self.out_features(), "{}: grad width mismatch", self.name);

        if self.kfac.enabled {
            self.kfac.record_backward(grad_out, grad_out.rows());
        }

        // dW += gᵀ x
        let dw = grad_out.matmul_tn(&x);
        self.grad_weight.add_assign(&dw);
        if let Some(db) = &mut self.grad_bias {
            for r in 0..grad_out.rows() {
                for (dbi, gi) in db.iter_mut().zip(grad_out.row(r)) {
                    *dbi += *gi;
                }
            }
        }
        // dx = g W
        grad_out.matmul(&self.weight)
    }

    /// Zero the parameter gradients.
    pub fn zero_grad(&mut self) {
        self.grad_weight.fill_zero();
        if let Some(db) = &mut self.grad_bias {
            db.iter_mut().for_each(|v| *v = 0.0);
        }
    }

    /// Number of trainable parameters.
    pub fn param_count(&self) -> usize {
        self.weight.numel() + self.bias.as_ref().map_or(0, |b| b.len())
    }
}

impl KfacAble for Linear {
    fn layer_name(&self) -> &str {
        &self.name
    }

    fn a_dim(&self) -> usize {
        self.in_features() + usize::from(self.bias.is_some())
    }

    fn g_dim(&self) -> usize {
        self.out_features()
    }

    fn capture_mut(&mut self) -> &mut KfacCapture {
        &mut self.kfac
    }

    #[allow(clippy::needless_range_loop)]
    fn combined_grad(&self) -> Matrix {
        match &self.grad_bias {
            None => self.grad_weight.clone(),
            Some(db) => {
                let (out, inp) = self.grad_weight.shape();
                let mut m = Matrix::zeros(out, inp + 1);
                for r in 0..out {
                    m.row_mut(r)[..inp].copy_from_slice(self.grad_weight.row(r));
                    m.row_mut(r)[inp] = db[r];
                }
                m
            }
        }
    }

    #[allow(clippy::needless_range_loop)]
    fn set_combined_grad(&mut self, grad: &Matrix) {
        let (out, inp) = self.grad_weight.shape();
        assert_eq!(grad.rows(), out, "{}: combined grad rows", self.name);
        match &mut self.grad_bias {
            None => {
                assert_eq!(grad.cols(), inp);
                self.grad_weight = grad.clone();
            }
            Some(db) => {
                assert_eq!(grad.cols(), inp + 1);
                for r in 0..out {
                    self.grad_weight.row_mut(r).copy_from_slice(&grad.row(r)[..inp]);
                    db[r] = grad.row(r)[inp];
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn finite_diff_check(bias: bool) {
        // Scalar loss L = sum(forward(x)); check dW and dx by central
        // differences.
        let mut rng = Rng::seed_from_u64(71);
        let mut layer = Linear::new("fd", 4, 3, bias, &mut rng);
        let x = Matrix::randn(5, 4, 1.0, &mut rng);

        let loss = |l: &mut Linear, x: &Matrix| -> f32 { l.forward(x, false).sum() };

        // Analytic: dL/dout is all-ones.
        layer.zero_grad();
        let _ = layer.forward(&x, true);
        let ones = Matrix::full(5, 3, 1.0);
        let dx = layer.backward(&ones);

        let h = 1e-3;
        // Weight gradient.
        for &(r, c) in &[(0usize, 0usize), (1, 2), (2, 3)] {
            let orig = layer.weight.get(r, c);
            layer.weight.set(r, c, orig + h);
            let lp = loss(&mut layer, &x);
            layer.weight.set(r, c, orig - h);
            let lm = loss(&mut layer, &x);
            layer.weight.set(r, c, orig);
            let fd = (lp - lm) / (2.0 * h);
            let an = layer.grad_weight.get(r, c);
            assert!((fd - an).abs() < 1e-2, "dW[{r},{c}] fd={fd} an={an}");
        }
        // Input gradient.
        let mut x2 = x.clone();
        for &(r, c) in &[(0usize, 0usize), (4, 3)] {
            let orig = x2.get(r, c);
            x2.set(r, c, orig + h);
            let lp = loss(&mut layer, &x2);
            x2.set(r, c, orig - h);
            let lm = loss(&mut layer, &x2);
            x2.set(r, c, orig);
            let fd = (lp - lm) / (2.0 * h);
            let an = dx.get(r, c);
            assert!((fd - an).abs() < 1e-2, "dx[{r},{c}] fd={fd} an={an}");
        }
        // Bias gradient: dL/db_j = batch size.
        if bias {
            for g in layer.grad_bias.as_ref().unwrap() {
                assert!((g - 5.0).abs() < 1e-4);
            }
        }
    }

    #[test]
    fn gradients_match_finite_differences_with_bias() {
        finite_diff_check(true);
    }

    #[test]
    fn gradients_match_finite_differences_without_bias() {
        finite_diff_check(false);
    }

    #[test]
    fn forward_known_values() {
        let mut rng = Rng::seed_from_u64(72);
        let mut layer = Linear::new("k", 2, 2, true, &mut rng);
        layer.weight = Matrix::from_vec(2, 2, vec![1., 2., 3., 4.]);
        layer.bias = Some(vec![10., 20.]);
        let x = Matrix::from_vec(1, 2, vec![1., 1.]);
        let y = layer.forward(&x, false);
        assert_eq!(y.as_slice(), &[13.0, 27.0]);
    }

    #[test]
    fn combined_grad_roundtrip() {
        let mut rng = Rng::seed_from_u64(73);
        let mut layer = Linear::new("cg", 3, 2, true, &mut rng);
        layer.grad_weight = Matrix::from_vec(2, 3, vec![1., 2., 3., 4., 5., 6.]);
        layer.grad_bias = Some(vec![7., 8.]);
        let combined = layer.combined_grad();
        assert_eq!(combined.shape(), (2, 4));
        assert_eq!(combined.row(0), &[1., 2., 3., 7.]);
        let mut scaled = combined.clone();
        scaled.scale(2.0);
        layer.set_combined_grad(&scaled);
        assert_eq!(layer.grad_weight.row(1), &[8., 10., 12.]);
        assert_eq!(layer.grad_bias.as_ref().unwrap(), &vec![14., 16.]);
    }

    #[test]
    fn kfac_dims_account_for_bias() {
        let mut rng = Rng::seed_from_u64(74);
        let with_bias = Linear::new("b", 5, 3, true, &mut rng);
        let without = Linear::new("nb", 5, 3, false, &mut rng);
        assert_eq!(with_bias.a_dim(), 6);
        assert_eq!(without.a_dim(), 5);
        assert_eq!(with_bias.g_dim(), 3);
    }

    #[test]
    fn capture_shapes_match_dims() {
        let mut rng = Rng::seed_from_u64(75);
        let mut layer = Linear::new("cap", 4, 2, true, &mut rng);
        layer.kfac.enabled = true;
        let x = Matrix::randn(6, 4, 1.0, &mut rng);
        let y = layer.forward(&x, true);
        let g = Matrix::full(y.rows(), y.cols(), 0.1);
        let _ = layer.backward(&g);
        let stats = layer.kfac.take_stats().unwrap();
        assert_eq!(stats.a_stat.shape(), (5, 5));
        assert_eq!(stats.g_stat.shape(), (2, 2));
        // Bias augmentation: bottom-right of A is E[1·1] = 1.
        assert!((stats.a_stat.get(4, 4) - 1.0).abs() < 1e-5);
    }

    #[test]
    fn backward_accumulates_across_microbatches() {
        let mut rng = Rng::seed_from_u64(76);
        let mut layer = Linear::new("acc", 3, 2, false, &mut rng);
        let x = Matrix::randn(4, 3, 1.0, &mut rng);
        let g = Matrix::full(4, 2, 1.0);
        layer.zero_grad();
        let _ = layer.forward(&x, true);
        let _ = layer.backward(&g);
        let one_pass = layer.grad_weight.clone();
        let _ = layer.forward(&x, true);
        let _ = layer.backward(&g);
        assert!(layer.grad_weight.max_abs_diff(&one_pass.scaled(2.0)) < 1e-5);
    }
}
