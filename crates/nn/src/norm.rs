//! Normalization layers: BatchNorm2d (ResNet/U-Net) and LayerNorm (BERT).
//!
//! Following the paper, normalization parameters are *not* K-FAC
//! preconditioned — only Conv2d and Linear layers are (Section 3.4) — so
//! these layers expose plain parameter/gradient vectors for the first-order
//! optimizer.

use kaisa_tensor::{Matrix, Tensor4};

/// Per-channel batch normalization over NCHW tensors.
#[derive(Debug, Clone)]
pub struct BatchNorm2d {
    /// Scale γ, one per channel.
    pub gamma: Vec<f32>,
    /// Shift β, one per channel.
    pub beta: Vec<f32>,
    /// Gradient of γ.
    pub grad_gamma: Vec<f32>,
    /// Gradient of β.
    pub grad_beta: Vec<f32>,
    /// Running mean for evaluation mode.
    pub running_mean: Vec<f32>,
    /// Running variance for evaluation mode.
    pub running_var: Vec<f32>,
    momentum: f32,
    eps: f32,
    cache: Option<BnCache>,
}

#[derive(Debug, Clone)]
struct BnCache {
    x_hat: Tensor4,
    inv_std: Vec<f32>,
    centered: Tensor4,
}

impl BatchNorm2d {
    /// New batch-norm layer over `channels` channels.
    pub fn new(channels: usize) -> Self {
        BatchNorm2d {
            gamma: vec![1.0; channels],
            beta: vec![0.0; channels],
            grad_gamma: vec![0.0; channels],
            grad_beta: vec![0.0; channels],
            running_mean: vec![0.0; channels],
            running_var: vec![1.0; channels],
            momentum: 0.1,
            eps: 1e-5,
            cache: None,
        }
    }

    /// Channel count.
    pub fn channels(&self) -> usize {
        self.gamma.len()
    }

    /// Forward pass. In training mode uses batch statistics and updates the
    /// running averages; in eval mode uses the running statistics.
    #[allow(clippy::needless_range_loop)]
    pub fn forward(&mut self, x: &Tensor4, train: bool) -> Tensor4 {
        let (n, c, h, w) = x.shape();
        assert_eq!(c, self.channels(), "BatchNorm2d channel mismatch");
        let m = (n * h * w) as f32;

        let (mean, var) = if train {
            let mut mean = vec![0.0f64; c];
            let mut var = vec![0.0f64; c];
            for img in 0..n {
                for ch in 0..c {
                    for y in 0..h {
                        for xx in 0..w {
                            mean[ch] += x.get(img, ch, y, xx) as f64;
                        }
                    }
                }
            }
            for v in mean.iter_mut() {
                *v /= m as f64;
            }
            for img in 0..n {
                for ch in 0..c {
                    for y in 0..h {
                        for xx in 0..w {
                            let d = x.get(img, ch, y, xx) as f64 - mean[ch];
                            var[ch] += d * d;
                        }
                    }
                }
            }
            for v in var.iter_mut() {
                *v /= m as f64;
            }
            for ch in 0..c {
                self.running_mean[ch] =
                    (1.0 - self.momentum) * self.running_mean[ch] + self.momentum * mean[ch] as f32;
                self.running_var[ch] =
                    (1.0 - self.momentum) * self.running_var[ch] + self.momentum * var[ch] as f32;
            }
            (
                mean.iter().map(|&v| v as f32).collect::<Vec<_>>(),
                var.iter().map(|&v| v as f32).collect::<Vec<_>>(),
            )
        } else {
            (self.running_mean.clone(), self.running_var.clone())
        };

        let inv_std: Vec<f32> = var.iter().map(|&v| 1.0 / (v + self.eps).sqrt()).collect();
        let mut out = Tensor4::zeros(n, c, h, w);
        let mut x_hat = Tensor4::zeros(n, c, h, w);
        let mut centered = Tensor4::zeros(n, c, h, w);
        for img in 0..n {
            for ch in 0..c {
                for y in 0..h {
                    for xx in 0..w {
                        let cen = x.get(img, ch, y, xx) - mean[ch];
                        let xh = cen * inv_std[ch];
                        centered.set(img, ch, y, xx, cen);
                        x_hat.set(img, ch, y, xx, xh);
                        out.set(img, ch, y, xx, self.gamma[ch] * xh + self.beta[ch]);
                    }
                }
            }
        }
        if train {
            self.cache = Some(BnCache { x_hat, inv_std, centered });
        }
        out
    }

    /// Backward pass using the cached batch statistics.
    pub fn backward(&mut self, grad_out: &Tensor4) -> Tensor4 {
        let cache = self.cache.take().expect("BatchNorm2d backward without forward");
        let (n, c, h, w) = grad_out.shape();
        let m = (n * h * w) as f32;

        // dγ, dβ and the per-channel reductions the dx formula needs.
        let mut sum_dy = vec![0.0f64; c];
        let mut sum_dy_xhat = vec![0.0f64; c];
        for img in 0..n {
            for ch in 0..c {
                for y in 0..h {
                    for xx in 0..w {
                        let dy = grad_out.get(img, ch, y, xx) as f64;
                        sum_dy[ch] += dy;
                        sum_dy_xhat[ch] += dy * cache.x_hat.get(img, ch, y, xx) as f64;
                    }
                }
            }
        }
        for ch in 0..c {
            self.grad_gamma[ch] += sum_dy_xhat[ch] as f32;
            self.grad_beta[ch] += sum_dy[ch] as f32;
        }

        // dx = (γ/σ) [dy - mean(dy) - x̂ mean(dy·x̂)]
        let mut dx = Tensor4::zeros(n, c, h, w);
        for img in 0..n {
            for ch in 0..c {
                let k = self.gamma[ch] * cache.inv_std[ch];
                let mean_dy = sum_dy[ch] as f32 / m;
                let mean_dy_xhat = sum_dy_xhat[ch] as f32 / m;
                for y in 0..h {
                    for xx in 0..w {
                        let dy = grad_out.get(img, ch, y, xx);
                        let xh = cache.x_hat.get(img, ch, y, xx);
                        dx.set(img, ch, y, xx, k * (dy - mean_dy - xh * mean_dy_xhat));
                    }
                }
            }
        }
        let _ = cache.centered; // retained for clarity of the derivation
        dx
    }

    /// Zero the parameter gradients.
    pub fn zero_grad(&mut self) {
        self.grad_gamma.iter_mut().for_each(|v| *v = 0.0);
        self.grad_beta.iter_mut().for_each(|v| *v = 0.0);
    }
}

/// Layer normalization over the last dimension of a `(rows, features)`
/// matrix (the transformer residual-stream normalization).
#[derive(Debug, Clone)]
pub struct LayerNorm {
    /// Scale γ, one per feature.
    pub gamma: Vec<f32>,
    /// Shift β, one per feature.
    pub beta: Vec<f32>,
    /// Gradient of γ.
    pub grad_gamma: Vec<f32>,
    /// Gradient of β.
    pub grad_beta: Vec<f32>,
    eps: f32,
    cache: Option<(Matrix, Vec<f32>)>, // (x_hat, inv_std per row)
}

impl LayerNorm {
    /// New layer-norm over `features` features.
    pub fn new(features: usize) -> Self {
        LayerNorm {
            gamma: vec![1.0; features],
            beta: vec![0.0; features],
            grad_gamma: vec![0.0; features],
            grad_beta: vec![0.0; features],
            eps: 1e-5,
            cache: None,
        }
    }

    /// Feature count.
    pub fn features(&self) -> usize {
        self.gamma.len()
    }

    /// Forward pass.
    #[allow(clippy::needless_range_loop)]
    pub fn forward(&mut self, x: &Matrix, train: bool) -> Matrix {
        let (rows, d) = x.shape();
        assert_eq!(d, self.features(), "LayerNorm feature mismatch");
        let mut out = Matrix::zeros(rows, d);
        let mut x_hat = Matrix::zeros(rows, d);
        let mut inv_stds = vec![0.0f32; rows];
        for r in 0..rows {
            let row = x.row(r);
            let mean = row.iter().sum::<f32>() / d as f32;
            let var = row.iter().map(|v| (v - mean).powi(2)).sum::<f32>() / d as f32;
            let inv_std = 1.0 / (var + self.eps).sqrt();
            inv_stds[r] = inv_std;
            for (col, &v) in row.iter().enumerate() {
                let xh = (v - mean) * inv_std;
                x_hat.set(r, col, xh);
                out.set(r, col, self.gamma[col] * xh + self.beta[col]);
            }
        }
        if train {
            self.cache = Some((x_hat, inv_stds));
        }
        out
    }

    /// Backward pass.
    #[allow(clippy::needless_range_loop)]
    pub fn backward(&mut self, grad_out: &Matrix) -> Matrix {
        let (x_hat, inv_stds) = self.cache.take().expect("LayerNorm backward without forward");
        let (rows, d) = grad_out.shape();
        let mut dx = Matrix::zeros(rows, d);
        for r in 0..rows {
            let dy = grad_out.row(r);
            let xh = x_hat.row(r);
            let mut sum_dyg = 0.0f32;
            let mut sum_dyg_xh = 0.0f32;
            for col in 0..d {
                let dyg = dy[col] * self.gamma[col];
                sum_dyg += dyg;
                sum_dyg_xh += dyg * xh[col];
                self.grad_gamma[col] += dy[col] * xh[col];
                self.grad_beta[col] += dy[col];
            }
            let mean_dyg = sum_dyg / d as f32;
            let mean_dyg_xh = sum_dyg_xh / d as f32;
            for col in 0..d {
                let dyg = dy[col] * self.gamma[col];
                dx.set(r, col, inv_stds[r] * (dyg - mean_dyg - xh[col] * mean_dyg_xh));
            }
        }
        dx
    }

    /// Zero the parameter gradients.
    pub fn zero_grad(&mut self) {
        self.grad_gamma.iter_mut().for_each(|v| *v = 0.0);
        self.grad_beta.iter_mut().for_each(|v| *v = 0.0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kaisa_tensor::Rng;

    #[test]
    fn batchnorm_normalizes_batch() {
        let mut rng = Rng::seed_from_u64(111);
        let x = Tensor4::randn(4, 3, 5, 5, 2.5, &mut rng);
        let mut bn = BatchNorm2d::new(3);
        let y = bn.forward(&x, true);
        let means = y.channel_means();
        for &m in &means {
            assert!(m.abs() < 1e-4, "normalized mean {m}");
        }
    }

    #[test]
    fn batchnorm_backward_finite_difference() {
        let mut rng = Rng::seed_from_u64(112);
        let x = Tensor4::randn(2, 2, 3, 3, 1.0, &mut rng);
        let mut bn = BatchNorm2d::new(2);
        bn.gamma = vec![1.5, 0.5];
        bn.beta = vec![0.1, -0.2];

        // L = sum(y²)/2 so dL/dy = y.
        let y = bn.forward(&x, true);
        let dx = bn.backward(&y);

        let h = 1e-3;
        for &(n, c, yy, xx) in &[(0usize, 0usize, 0usize, 0usize), (1, 1, 2, 1)] {
            let mut bn2 = BatchNorm2d::new(2);
            bn2.gamma = bn.gamma.clone();
            bn2.beta = bn.beta.clone();
            let mut xp = x.clone();
            xp.set(n, c, yy, xx, x.get(n, c, yy, xx) + h);
            let yp = bn2.forward(&xp, true);
            let lp: f32 = yp.as_slice().iter().map(|v| v * v / 2.0).sum();
            let mut xm = x.clone();
            xm.set(n, c, yy, xx, x.get(n, c, yy, xx) - h);
            let ym = bn2.forward(&xm, true);
            let lm: f32 = ym.as_slice().iter().map(|v| v * v / 2.0).sum();
            let fd = (lp - lm) / (2.0 * h);
            let an = dx.get(n, c, yy, xx);
            assert!((fd - an).abs() < 5e-2, "fd={fd} an={an}");
        }
    }

    #[test]
    fn batchnorm_eval_uses_running_stats() {
        let mut rng = Rng::seed_from_u64(113);
        let mut bn = BatchNorm2d::new(2);
        // Train a few batches to move the running stats.
        for _ in 0..20 {
            let x = Tensor4::randn(8, 2, 4, 4, 3.0, &mut rng);
            let _ = bn.forward(&x, true);
        }
        assert!(bn.running_var[0] > 2.0, "running var should approach 9");
        // Eval on a fresh batch must not change running stats.
        let rv = bn.running_var.clone();
        let x = Tensor4::randn(2, 2, 4, 4, 1.0, &mut rng);
        let _ = bn.forward(&x, false);
        assert_eq!(bn.running_var, rv);
    }

    #[test]
    fn layernorm_rows_normalized() {
        let mut rng = Rng::seed_from_u64(114);
        let x = Matrix::randn(5, 16, 3.0, &mut rng);
        let mut ln = LayerNorm::new(16);
        let y = ln.forward(&x, false);
        for r in 0..5 {
            let row = y.row(r);
            let mean = row.iter().sum::<f32>() / 16.0;
            let var = row.iter().map(|v| (v - mean).powi(2)).sum::<f32>() / 16.0;
            assert!(mean.abs() < 1e-4);
            assert!((var - 1.0).abs() < 1e-3);
        }
    }

    #[test]
    fn layernorm_backward_finite_difference() {
        let mut rng = Rng::seed_from_u64(115);
        let x = Matrix::randn(3, 8, 1.0, &mut rng);
        let mut ln = LayerNorm::new(8);
        ln.gamma = (0..8).map(|i| 1.0 + 0.1 * i as f32).collect();

        let y = ln.forward(&x, true);
        let dx = ln.backward(&y); // L = sum(y²)/2

        let h = 1e-3;
        for &(r, c) in &[(0usize, 0usize), (2, 7), (1, 3)] {
            let mut ln2 = LayerNorm::new(8);
            ln2.gamma = ln.gamma.clone();
            let mut xp = x.clone();
            xp.set(r, c, x.get(r, c) + h);
            let lp: f32 = ln2.forward(&xp, false).as_slice().iter().map(|v| v * v / 2.0).sum();
            let mut xm = x.clone();
            xm.set(r, c, x.get(r, c) - h);
            let lm: f32 = ln2.forward(&xm, false).as_slice().iter().map(|v| v * v / 2.0).sum();
            let fd = (lp - lm) / (2.0 * h);
            let an = dx.get(r, c);
            assert!((fd - an).abs() < 5e-2, "fd={fd} an={an}");
        }
    }
}
