//! # kaisa-nn
//!
//! Neural-network substrate for the KAISA reproduction: layers with explicit
//! forward/backward passes that *capture the per-layer activations `a` and
//! pre-activation gradients `g`* the K-FAC preconditioner consumes, plus the
//! scaled-down analogues of the paper's four applications:
//!
//! | Paper model | Here | K-FAC'd layer kinds |
//! |---|---|---|
//! | ResNet-50 (ImageNet) | [`models::ResNetMini`] | Conv2d + Linear |
//! | Mask R-CNN ROI heads (COCO) | [`models::RoiHeadMini`] | Linear |
//! | U-Net (LGG MRI) | [`models::UNetMini`] | Conv2d |
//! | BERT-Large (Wikipedia) | [`models::BertMini`] | Linear (inside MHA/FFN) |
//!
//! The crate deliberately avoids a tape-based autograd: each layer implements
//! its own adjoint, which keeps the `(a, g)` capture points explicit — the
//! same structure `kfac_pytorch` achieves with module hooks.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod activation;
pub mod attention;
pub mod capture;
pub mod conv;
pub mod linear;
pub mod loss;
pub mod model;
pub mod models;
pub mod norm;
pub mod pool;

pub use capture::{CaptureMode, KfacAble, KfacCapture, KfacStats};
pub use conv::Conv2d;
pub use linear::Linear;
pub use model::{EvalResult, Model, ParamSegment};
