//! Mask R-CNN ROI-head analogue.
//!
//! The paper applies K-FAC only to the convolutional and linear layers in
//! the region-of-interest (ROI) heads of Mask R-CNN (Section 5.2). The ROI
//! box head is two shared fully-connected layers feeding a classification
//! head and a bounding-box regression head — exactly the structure here,
//! operating on pooled ROI feature vectors. The loss is the standard
//! detection head loss: cross-entropy + smooth-L1 box regression.

use kaisa_tensor::{Matrix, Rng};

use crate::activation::Relu;
use crate::capture::KfacAble;
use crate::linear::Linear;
use crate::loss::{smooth_l1_loss, softmax_cross_entropy};
use crate::model::{visit_linear, EvalResult, Model, ParamRef};

/// Targets for one batch of ROIs.
#[derive(Debug, Clone)]
pub struct RoiTargets {
    /// Object class per ROI.
    pub classes: Vec<usize>,
    /// Box regression target per ROI: `(n_rois, 4)`.
    pub boxes: Matrix,
}

/// Two shared FC layers + classification and box-regression heads.
#[derive(Debug, Clone)]
pub struct RoiHeadMini {
    name: String,
    fc1: Linear,
    fc2: Linear,
    relu1: Relu,
    relu2: Relu,
    cls_head: Linear,
    box_head: Linear,
    /// Weight of the box-regression term in the total loss.
    pub box_loss_weight: f32,
}

impl RoiHeadMini {
    /// Build the head. `feat_dim` is the pooled ROI feature width,
    /// `hidden` the shared FC width, `classes` the number of categories.
    pub fn new(feat_dim: usize, hidden: usize, classes: usize, rng: &mut Rng) -> Self {
        RoiHeadMini {
            name: "roi_head_mini".to_string(),
            fc1: Linear::new_kaiming("roi.fc1", feat_dim, hidden, true, rng),
            fc2: Linear::new_kaiming("roi.fc2", hidden, hidden, true, rng),
            relu1: Relu::new(),
            relu2: Relu::new(),
            cls_head: Linear::new("roi.cls", hidden, classes, true, rng),
            box_head: Linear::new("roi.box", hidden, 4, true, rng),
            box_loss_weight: 1.0,
        }
    }

    fn forward(&mut self, x: &Matrix, train: bool) -> (Matrix, Matrix) {
        let h = self.fc1.forward(x, train);
        let h = self.relu1.forward(&h, train);
        let h = self.fc2.forward(&h, train);
        let h = self.relu2.forward(&h, train);
        let cls = self.cls_head.forward(&h, train);
        let boxes = self.box_head.forward(&h, train);
        (cls, boxes)
    }
}

impl Model for RoiHeadMini {
    type Input = Matrix;
    type Target = RoiTargets;

    fn name(&self) -> &str {
        &self.name
    }

    fn forward_backward(&mut self, x: &Matrix, y: &RoiTargets) -> EvalResult {
        let (cls_logits, box_pred) = self.forward(x, true);
        let cls = softmax_cross_entropy(&cls_logits, &y.classes);
        let (box_loss, mut box_grad) = smooth_l1_loss(&box_pred, &y.boxes);
        box_grad.scale(self.box_loss_weight);

        // Backward through both heads into the shared trunk.
        let mut g = self.cls_head.backward(&cls.grad);
        g.add_assign(&self.box_head.backward(&box_grad));
        let g = self.relu2.backward(&g);
        let g = self.fc2.backward(&g);
        let g = self.relu1.backward(&g);
        let _ = self.fc1.backward(&g);

        EvalResult { loss: cls.loss + self.box_loss_weight * box_loss, metric: cls.accuracy }
    }

    fn evaluate(&mut self, x: &Matrix, y: &RoiTargets) -> EvalResult {
        let (cls_logits, box_pred) = self.forward(x, false);
        let cls = softmax_cross_entropy(&cls_logits, &y.classes);
        let (box_loss, _) = smooth_l1_loss(&box_pred, &y.boxes);
        EvalResult { loss: cls.loss + self.box_loss_weight * box_loss, metric: cls.accuracy }
    }

    fn for_each_param(&mut self, f: &mut dyn FnMut(&str, ParamRef<'_>)) {
        visit_linear(&mut self.fc1, "roi.fc1", f);
        visit_linear(&mut self.fc2, "roi.fc2", f);
        visit_linear(&mut self.cls_head, "roi.cls", f);
        visit_linear(&mut self.box_head, "roi.box", f);
    }

    fn kfac_layers(&mut self) -> Vec<&mut dyn KfacAble> {
        vec![
            &mut self.fc1 as &mut dyn KfacAble,
            &mut self.fc2,
            &mut self.cls_head,
            &mut self.box_head,
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy_batch(rng: &mut Rng, n: usize) -> (Matrix, RoiTargets) {
        let x = Matrix::randn(n, 12, 1.0, rng);
        let classes: Vec<usize> = (0..n).map(|i| i % 3).collect();
        let boxes = Matrix::randn(n, 4, 0.5, rng);
        (x, RoiTargets { classes, boxes })
    }

    #[test]
    fn both_heads_contribute_to_loss() {
        let mut rng = Rng::seed_from_u64(151);
        let mut model = RoiHeadMini::new(12, 16, 3, &mut rng);
        let (x, y) = toy_batch(&mut rng, 8);
        let full = model.evaluate(&x, &y).loss;
        model.box_loss_weight = 0.0;
        let cls_only = model.evaluate(&x, &y).loss;
        assert!(full > cls_only, "box loss must add to the total");
    }

    #[test]
    fn four_kfac_layers() {
        let mut rng = Rng::seed_from_u64(152);
        let mut model = RoiHeadMini::new(12, 16, 3, &mut rng);
        assert_eq!(model.kfac_layers().len(), 4);
    }

    #[test]
    fn training_reduces_loss() {
        let mut rng = Rng::seed_from_u64(153);
        let mut model = RoiHeadMini::new(12, 16, 3, &mut rng);
        let (x, y) = toy_batch(&mut rng, 32);
        let before = model.evaluate(&x, &y).loss;
        for _ in 0..20 {
            model.zero_grad();
            let _ = model.forward_backward(&x, &y);
            let grads = model.grads_flat();
            let mut params = model.params_flat();
            for (p, g) in params.iter_mut().zip(&grads) {
                *p -= 0.2 * g;
            }
            model.set_params_flat(&params);
        }
        let after = model.evaluate(&x, &y).loss;
        assert!(after < before * 0.9, "loss {before} -> {after}");
    }

    #[test]
    fn shared_trunk_gradient_finite_difference() {
        let mut rng = Rng::seed_from_u64(154);
        let mut model = RoiHeadMini::new(6, 8, 2, &mut rng);
        let x = Matrix::randn(4, 6, 1.0, &mut rng);
        let y = RoiTargets { classes: vec![0, 1, 0, 1], boxes: Matrix::randn(4, 4, 0.5, &mut rng) };
        model.zero_grad();
        let _ = model.forward_backward(&x, &y);
        let grads = model.grads_flat();
        let mut params = model.params_flat();
        let h = 1e-3;
        for &idx in &[0usize, 10, 30] {
            let orig = params[idx];
            params[idx] = orig + h;
            model.set_params_flat(&params);
            let lp = model.evaluate(&x, &y).loss;
            params[idx] = orig - h;
            model.set_params_flat(&params);
            let lm = model.evaluate(&x, &y).loss;
            params[idx] = orig;
            model.set_params_flat(&params);
            let fd = (lp - lm) / (2.0 * h);
            assert!((fd - grads[idx]).abs() < 1e-2, "idx={idx} fd={fd} an={}", grads[idx]);
        }
    }
}
