//! U-Net analogue for binary segmentation.
//!
//! Mirrors the paper's brain-MRI U-Net task (Section 5.2): an encoder,
//! a strided bottleneck, a decoder with a skip connection, and a 1x1 output
//! convolution producing mask logits. K-FAC is applied to *all convolutional
//! layers*, exactly as the paper does for U-Net; the loss is BCE-with-logits
//! and the validation metric is the Dice similarity coefficient (DSC).

use kaisa_tensor::{Rng, Tensor4};

use crate::activation::Relu2d;
use crate::capture::KfacAble;
use crate::conv::Conv2d;
use crate::loss::{bce_with_logits, dice_coefficient};
use crate::model::{visit_conv, EvalResult, Model, ParamRef};
use crate::pool::{MaxPool2d, Upsample2x};

/// Concatenate two NCHW tensors along the channel axis.
fn concat_channels(a: &Tensor4, b: &Tensor4) -> Tensor4 {
    assert_eq!(a.n(), b.n());
    assert_eq!(a.h(), b.h());
    assert_eq!(a.w(), b.w());
    let (n, ca, h, w) = a.shape();
    let cb = b.c();
    let mut out = Tensor4::zeros(n, ca + cb, h, w);
    for img in 0..n {
        for ch in 0..ca {
            for y in 0..h {
                for x in 0..w {
                    out.set(img, ch, y, x, a.get(img, ch, y, x));
                }
            }
        }
        for ch in 0..cb {
            for y in 0..h {
                for x in 0..w {
                    out.set(img, ca + ch, y, x, b.get(img, ch, y, x));
                }
            }
        }
    }
    out
}

/// Split a channel-concatenated gradient back into the two branches.
fn split_channels(g: &Tensor4, ca: usize) -> (Tensor4, Tensor4) {
    let (n, c, h, w) = g.shape();
    let cb = c - ca;
    let mut ga = Tensor4::zeros(n, ca, h, w);
    let mut gb = Tensor4::zeros(n, cb, h, w);
    for img in 0..n {
        for ch in 0..ca {
            for y in 0..h {
                for x in 0..w {
                    ga.set(img, ch, y, x, g.get(img, ch, y, x));
                }
            }
        }
        for ch in 0..cb {
            for y in 0..h {
                for x in 0..w {
                    gb.set(img, ch, y, x, g.get(img, ca + ch, y, x));
                }
            }
        }
    }
    (ga, gb)
}

/// Small encoder–decoder segmentation network with one skip connection.
#[derive(Debug, Clone)]
pub struct UNetMini {
    name: String,
    enc1a: Conv2d,
    enc1a_relu: Relu2d,
    enc1b: Conv2d,
    enc1b_relu: Relu2d,
    pool: MaxPool2d,
    mid_a: Conv2d,
    mid_a_relu: Relu2d,
    mid_b: Conv2d,
    mid_b_relu: Relu2d,
    up: Upsample2x,
    dec_a: Conv2d,
    dec_a_relu: Relu2d,
    dec_b: Conv2d,
    dec_b_relu: Relu2d,
    out_conv: Conv2d,
    skip_channels: usize,
}

impl UNetMini {
    /// Build a U-Net over `in_channels` input channels with base width `w`.
    pub fn new(in_channels: usize, w: usize, rng: &mut Rng) -> Self {
        UNetMini {
            name: "unet_mini".to_string(),
            enc1a: Conv2d::new("enc1a", in_channels, w, 3, 1, 1, true, rng),
            enc1a_relu: Relu2d::new(),
            enc1b: Conv2d::new("enc1b", w, w, 3, 1, 1, true, rng),
            enc1b_relu: Relu2d::new(),
            pool: MaxPool2d::new(),
            mid_a: Conv2d::new("mid_a", w, 2 * w, 3, 1, 1, true, rng),
            mid_a_relu: Relu2d::new(),
            mid_b: Conv2d::new("mid_b", 2 * w, 2 * w, 3, 1, 1, true, rng),
            mid_b_relu: Relu2d::new(),
            up: Upsample2x::new(),
            dec_a: Conv2d::new("dec_a", 3 * w, w, 3, 1, 1, true, rng),
            dec_a_relu: Relu2d::new(),
            dec_b: Conv2d::new("dec_b", w, w, 3, 1, 1, true, rng),
            dec_b_relu: Relu2d::new(),
            out_conv: Conv2d::new("out", w, 1, 1, 1, 0, true, rng),
            skip_channels: w,
        }
    }

    /// Forward pass to mask logits (same spatial shape as the input).
    pub fn forward(&mut self, x: &Tensor4, train: bool) -> Tensor4 {
        let e = self.enc1a.forward(x, train);
        let e = self.enc1a_relu.forward(&e, train);
        let e = self.enc1b.forward(&e, train);
        let skip = self.enc1b_relu.forward(&e, train);

        let h = self.pool.forward(&skip, train);
        let h = self.mid_a.forward(&h, train);
        let h = self.mid_a_relu.forward(&h, train);
        let h = self.mid_b.forward(&h, train);
        let h = self.mid_b_relu.forward(&h, train);

        let h = self.up.forward(&h);
        let h = concat_channels(&skip, &h);

        let h = self.dec_a.forward(&h, train);
        let h = self.dec_a_relu.forward(&h, train);
        let h = self.dec_b.forward(&h, train);
        let h = self.dec_b_relu.forward(&h, train);
        self.out_conv.forward(&h, train)
    }

    fn backward(&mut self, grad_logits: &Tensor4) {
        let g = self.out_conv.backward(grad_logits);
        let g = self.dec_b_relu.backward(&g);
        let g = self.dec_b.backward(&g);
        let g = self.dec_a_relu.backward(&g);
        let g = self.dec_a.backward(&g);

        let (g_skip, g_up) = split_channels(&g, self.skip_channels);
        let g = self.up.backward(&g_up);
        let g = self.mid_b_relu.backward(&g);
        let g = self.mid_b.backward(&g);
        let g = self.mid_a_relu.backward(&g);
        let g = self.mid_a.backward(&g);
        let mut g = self.pool.backward(&g);

        // Skip-connection gradient joins at enc1b_relu's output.
        g.add_assign(&g_skip);
        let g = self.enc1b_relu.backward(&g);
        let g = self.enc1b.backward(&g);
        let g = self.enc1a_relu.backward(&g);
        let _ = self.enc1a.backward(&g);
    }
}

impl Model for UNetMini {
    type Input = Tensor4;
    type Target = Tensor4;

    fn name(&self) -> &str {
        &self.name
    }

    fn forward_backward(&mut self, x: &Tensor4, y: &Tensor4) -> EvalResult {
        let logits = self.forward(x, true);
        let (loss, grad) = bce_with_logits(&logits, y);
        let dice = dice_coefficient(&logits, y, 0.5);
        self.backward(&grad);
        EvalResult { loss, metric: dice }
    }

    fn evaluate(&mut self, x: &Tensor4, y: &Tensor4) -> EvalResult {
        let logits = self.forward(x, false);
        let (loss, _) = bce_with_logits(&logits, y);
        let dice = dice_coefficient(&logits, y, 0.5);
        EvalResult { loss, metric: dice }
    }

    fn for_each_param(&mut self, f: &mut dyn FnMut(&str, ParamRef<'_>)) {
        visit_conv(&mut self.enc1a, "enc1a", f);
        visit_conv(&mut self.enc1b, "enc1b", f);
        visit_conv(&mut self.mid_a, "mid_a", f);
        visit_conv(&mut self.mid_b, "mid_b", f);
        visit_conv(&mut self.dec_a, "dec_a", f);
        visit_conv(&mut self.dec_b, "dec_b", f);
        visit_conv(&mut self.out_conv, "out", f);
    }

    fn kfac_layers(&mut self) -> Vec<&mut dyn KfacAble> {
        vec![
            &mut self.enc1a as &mut dyn KfacAble,
            &mut self.enc1b,
            &mut self.mid_a,
            &mut self.mid_b,
            &mut self.dec_a,
            &mut self.dec_b,
            &mut self.out_conv,
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn concat_split_roundtrip() {
        let mut rng = Rng::seed_from_u64(171);
        let a = Tensor4::randn(2, 3, 4, 4, 1.0, &mut rng);
        let b = Tensor4::randn(2, 5, 4, 4, 1.0, &mut rng);
        let cat = concat_channels(&a, &b);
        assert_eq!(cat.shape(), (2, 8, 4, 4));
        let (a2, b2) = split_channels(&cat, 3);
        assert_eq!(a2, a);
        assert_eq!(b2, b);
    }

    #[test]
    fn forward_preserves_spatial_shape() {
        let mut rng = Rng::seed_from_u64(172);
        let mut unet = UNetMini::new(1, 4, &mut rng);
        let x = Tensor4::randn(2, 1, 8, 8, 1.0, &mut rng);
        let y = unet.forward(&x, false);
        assert_eq!(y.shape(), (2, 1, 8, 8));
    }

    #[test]
    fn seven_kfac_conv_layers() {
        let mut rng = Rng::seed_from_u64(173);
        let mut unet = UNetMini::new(1, 4, &mut rng);
        assert_eq!(unet.kfac_layers().len(), 7);
    }

    #[test]
    fn gradcheck_spot_positions() {
        let mut rng = Rng::seed_from_u64(174);
        let mut unet = UNetMini::new(1, 2, &mut rng);
        let x = Tensor4::randn(1, 1, 4, 4, 1.0, &mut rng);
        let mut y = Tensor4::zeros(1, 1, 4, 4);
        y.set(0, 0, 1, 1, 1.0);
        y.set(0, 0, 2, 2, 1.0);
        unet.zero_grad();
        let _ = unet.forward_backward(&x, &y);
        let grads = unet.grads_flat();
        let mut params = unet.params_flat();
        let h = 1e-3;
        for &idx in &[0usize, 15, params.len() / 2, params.len() - 1] {
            let orig = params[idx];
            params[idx] = orig + h;
            unet.set_params_flat(&params);
            let lp = unet.evaluate(&x, &y).loss;
            params[idx] = orig - h;
            unet.set_params_flat(&params);
            let lm = unet.evaluate(&x, &y).loss;
            params[idx] = orig;
            unet.set_params_flat(&params);
            let fd = (lp - lm) / (2.0 * h);
            assert!((fd - grads[idx]).abs() < 2e-2, "idx={idx} fd={fd} an={}", grads[idx]);
        }
    }

    #[test]
    fn training_improves_dice() {
        let mut rng = Rng::seed_from_u64(175);
        let mut unet = UNetMini::new(1, 4, &mut rng);
        // A blob mask correlated with the input intensity.
        let mut x = Tensor4::zeros(4, 1, 8, 8);
        let mut y = Tensor4::zeros(4, 1, 8, 8);
        for img in 0..4 {
            for yy in 2..6 {
                for xx in 2..6 {
                    x.set(img, 0, yy, xx, 2.0);
                    y.set(img, 0, yy, xx, 1.0);
                }
            }
        }
        let before = unet.evaluate(&x, &y).loss;
        for _ in 0..200 {
            unet.zero_grad();
            let _ = unet.forward_backward(&x, &y);
            let grads = unet.grads_flat();
            let mut params = unet.params_flat();
            for (p, g) in params.iter_mut().zip(&grads) {
                *p -= 0.3 * g;
            }
            unet.set_params_flat(&params);
        }
        let after = unet.evaluate(&x, &y);
        assert!(after.loss < before, "loss {before} -> {}", after.loss);
        assert!(after.metric > 0.5, "dice should improve, got {}", after.metric);
    }
}
