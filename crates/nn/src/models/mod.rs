//! Scaled-down analogues of the paper's four evaluation applications plus a
//! plain MLP for quickstarts.
//!
//! Each model keeps the *layer kinds* K-FAC preconditions in the paper
//! (Section 5.2) so the preconditioner exercises the same code paths:
//! Conv2d factors via im2col patches, Linear factors via activations, and
//! non-preconditioned normalization/embedding parameters handled by the
//! first-order optimizer alone.

mod bert_mini;
mod mlp;
mod resnet_mini;
mod roi_head;
mod unet_mini;

pub use bert_mini::{BertMini, BertMiniConfig, TokenBatch};
pub use mlp::Mlp;
pub use resnet_mini::{ResNetMini, ResNetMiniConfig};
pub use roi_head::{RoiHeadMini, RoiTargets};
pub use unet_mini::UNetMini;
