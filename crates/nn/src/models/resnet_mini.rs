//! Residual CNN classifier — the ResNet-50 / ResNet-32 analogue.
//!
//! A CIFAR-style residual network: conv stem, two stages of residual blocks
//! (the second strided with a projection shortcut), global average pooling,
//! and a linear classifier. All Conv2d and Linear layers are K-FAC
//! preconditionable, matching the paper's treatment of ResNet-50 ("we use
//! K-FAC to precondition all convolutional and linear layers", Section 5.2);
//! BatchNorm parameters go to the first-order optimizer only.

use kaisa_tensor::{Rng, Tensor4};

use crate::activation::Relu2d;
use crate::capture::KfacAble;
use crate::conv::Conv2d;
use crate::linear::Linear;
use crate::loss::softmax_cross_entropy;
use crate::model::{visit_bn, visit_conv, visit_linear, EvalResult, Model, ParamRef};
use crate::norm::BatchNorm2d;
use crate::pool::GlobalAvgPool;

/// One residual block: `conv-bn-relu-conv-bn (+ shortcut) → relu`.
#[derive(Debug, Clone)]
struct ResBlock {
    conv1: Conv2d,
    bn1: BatchNorm2d,
    relu1: Relu2d,
    conv2: Conv2d,
    bn2: BatchNorm2d,
    shortcut: Option<(Conv2d, BatchNorm2d)>,
    relu_out: Relu2d,
    input_cache: Option<Tensor4>,
}

impl ResBlock {
    fn new(prefix: &str, c_in: usize, c_out: usize, stride: usize, rng: &mut Rng) -> Self {
        let shortcut = if stride != 1 || c_in != c_out {
            Some((
                Conv2d::new(format!("{prefix}.sc"), c_in, c_out, 1, stride, 0, false, rng),
                BatchNorm2d::new(c_out),
            ))
        } else {
            None
        };
        ResBlock {
            conv1: Conv2d::new(format!("{prefix}.conv1"), c_in, c_out, 3, stride, 1, false, rng),
            bn1: BatchNorm2d::new(c_out),
            relu1: Relu2d::new(),
            conv2: Conv2d::new(format!("{prefix}.conv2"), c_out, c_out, 3, 1, 1, false, rng),
            bn2: BatchNorm2d::new(c_out),
            shortcut,
            relu_out: Relu2d::new(),
            input_cache: None,
        }
    }

    fn forward(&mut self, x: &Tensor4, train: bool) -> Tensor4 {
        if train {
            self.input_cache = Some(x.clone());
        }
        let h = self.conv1.forward(x, train);
        let h = self.bn1.forward(&h, train);
        let h = self.relu1.forward(&h, train);
        let h = self.conv2.forward(&h, train);
        let mut h = self.bn2.forward(&h, train);
        let sc = match &mut self.shortcut {
            Some((conv, bn)) => {
                let s = conv.forward(x, train);
                bn.forward(&s, train)
            }
            None => x.clone(),
        };
        h.add_assign(&sc);
        self.relu_out.forward(&h, train)
    }

    fn backward(&mut self, grad_out: &Tensor4) -> Tensor4 {
        let g = self.relu_out.backward(grad_out);
        // Main branch.
        let gm = self.bn2.backward(&g);
        let gm = self.conv2.backward(&gm);
        let gm = self.relu1.backward(&gm);
        let gm = self.bn1.backward(&gm);
        let mut gx = self.conv1.backward(&gm);
        // Shortcut branch (gradient g flows unchanged into the addition).
        match &mut self.shortcut {
            Some((conv, bn)) => {
                let gs = bn.backward(&g);
                gx.add_assign(&conv.backward(&gs));
            }
            None => gx.add_assign(&g),
        }
        self.input_cache = None;
        gx
    }

    fn zero_grad(&mut self) {
        self.conv1.zero_grad();
        self.bn1.zero_grad();
        self.conv2.zero_grad();
        self.bn2.zero_grad();
        if let Some((conv, bn)) = &mut self.shortcut {
            conv.zero_grad();
            bn.zero_grad();
        }
    }
}

/// Configuration for [`ResNetMini`].
#[derive(Debug, Clone, Copy)]
pub struct ResNetMiniConfig {
    /// Input channels (3 for RGB-like synthetic images).
    pub in_channels: usize,
    /// Stem/stage-1 width.
    pub width: usize,
    /// Residual blocks in stage 1 (stride 1).
    pub blocks_stage1: usize,
    /// Residual blocks in stage 2 (first block strided, width doubled).
    pub blocks_stage2: usize,
    /// Output classes.
    pub classes: usize,
}

impl Default for ResNetMiniConfig {
    fn default() -> Self {
        ResNetMiniConfig {
            in_channels: 3,
            width: 8,
            blocks_stage1: 1,
            blocks_stage2: 1,
            classes: 10,
        }
    }
}

/// Residual CNN classifier.
#[derive(Debug, Clone)]
pub struct ResNetMini {
    name: String,
    stem: Conv2d,
    stem_bn: BatchNorm2d,
    stem_relu: Relu2d,
    blocks: Vec<ResBlock>,
    pool: GlobalAvgPool,
    head: Linear,
}

impl ResNetMini {
    /// Build the network from a configuration.
    pub fn new(cfg: ResNetMiniConfig, rng: &mut Rng) -> Self {
        let w = cfg.width;
        let mut blocks = Vec::new();
        for b in 0..cfg.blocks_stage1 {
            blocks.push(ResBlock::new(&format!("s1b{b}"), w, w, 1, rng));
        }
        for b in 0..cfg.blocks_stage2 {
            let (c_in, stride) = if b == 0 { (w, 2) } else { (2 * w, 1) };
            blocks.push(ResBlock::new(&format!("s2b{b}"), c_in, 2 * w, stride, rng));
        }
        ResNetMini {
            name: "resnet_mini".to_string(),
            stem: Conv2d::new("stem", cfg.in_channels, w, 3, 1, 1, false, rng),
            stem_bn: BatchNorm2d::new(w),
            stem_relu: Relu2d::new(),
            blocks,
            pool: GlobalAvgPool::new(),
            head: Linear::new("head", 2 * w, cfg.classes, true, rng),
        }
    }

    /// Forward pass to logits.
    pub fn forward(&mut self, x: &Tensor4, train: bool) -> kaisa_tensor::Matrix {
        let h = self.stem.forward(x, train);
        let h = self.stem_bn.forward(&h, train);
        let mut h = self.stem_relu.forward(&h, train);
        for block in self.blocks.iter_mut() {
            h = block.forward(&h, train);
        }
        let pooled = self.pool.forward(&h, train);
        self.head.forward(&pooled, train)
    }

    fn backward(&mut self, grad_logits: &kaisa_tensor::Matrix) {
        let g = self.head.backward(grad_logits);
        let mut g = self.pool.backward(&g);
        for block in self.blocks.iter_mut().rev() {
            g = block.backward(&g);
        }
        let g = self.stem_relu.backward(&g);
        let g = self.stem_bn.backward(&g);
        let _ = self.stem.backward(&g);
    }
}

impl Model for ResNetMini {
    type Input = Tensor4;
    type Target = Vec<usize>;

    fn name(&self) -> &str {
        &self.name
    }

    fn forward_backward(&mut self, x: &Tensor4, y: &Vec<usize>) -> EvalResult {
        let logits = self.forward(x, true);
        let out = softmax_cross_entropy(&logits, y);
        self.backward(&out.grad);
        EvalResult { loss: out.loss, metric: out.accuracy }
    }

    fn evaluate(&mut self, x: &Tensor4, y: &Vec<usize>) -> EvalResult {
        let logits = self.forward(x, false);
        let out = softmax_cross_entropy(&logits, y);
        EvalResult { loss: out.loss, metric: out.accuracy }
    }

    fn for_each_param(&mut self, f: &mut dyn FnMut(&str, ParamRef<'_>)) {
        visit_conv(&mut self.stem, "stem", f);
        visit_bn(&mut self.stem_bn, "stem_bn", f);
        for (i, block) in self.blocks.iter_mut().enumerate() {
            visit_conv(&mut block.conv1, &format!("b{i}.conv1"), f);
            visit_bn(&mut block.bn1, &format!("b{i}.bn1"), f);
            visit_conv(&mut block.conv2, &format!("b{i}.conv2"), f);
            visit_bn(&mut block.bn2, &format!("b{i}.bn2"), f);
            if let Some((conv, bn)) = &mut block.shortcut {
                visit_conv(conv, &format!("b{i}.sc"), f);
                visit_bn(bn, &format!("b{i}.sc_bn"), f);
            }
        }
        visit_linear(&mut self.head, "head", f);
    }

    fn kfac_layers(&mut self) -> Vec<&mut dyn KfacAble> {
        let mut layers: Vec<&mut dyn KfacAble> = vec![&mut self.stem];
        for block in self.blocks.iter_mut() {
            layers.push(&mut block.conv1);
            layers.push(&mut block.conv2);
            if let Some((conv, _)) = &mut block.shortcut {
                layers.push(conv);
            }
        }
        layers.push(&mut self.head);
        layers
    }

    fn zero_grad(&mut self) {
        self.stem.zero_grad();
        self.stem_bn.zero_grad();
        for block in self.blocks.iter_mut() {
            block.zero_grad();
        }
        self.head.zero_grad();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kaisa_tensor::Matrix;

    fn tiny() -> (ResNetMini, Rng) {
        let mut rng = Rng::seed_from_u64(161);
        let model = ResNetMini::new(
            ResNetMiniConfig {
                in_channels: 3,
                width: 4,
                blocks_stage1: 1,
                blocks_stage2: 1,
                classes: 4,
            },
            &mut rng,
        );
        (model, rng)
    }

    #[test]
    fn forward_shape() {
        let (mut model, mut rng) = tiny();
        let x = Tensor4::randn(2, 3, 8, 8, 1.0, &mut rng);
        let logits = model.forward(&x, false);
        assert_eq!(logits.shape(), (2, 4));
    }

    #[test]
    fn kfac_layer_inventory() {
        let (mut model, _) = tiny();
        // stem + (conv1, conv2) + (conv1, conv2, shortcut) + head = 7.
        assert_eq!(model.kfac_layers().len(), 7);
    }

    #[test]
    fn backward_runs_and_fills_grads() {
        let (mut model, mut rng) = tiny();
        let x = Tensor4::randn(2, 3, 8, 8, 1.0, &mut rng);
        let y = vec![0usize, 3];
        model.zero_grad();
        let res = model.forward_backward(&x, &y);
        assert!(res.loss > 0.0);
        let grads = model.grads_flat();
        let nonzero = grads.iter().filter(|v| **v != 0.0).count();
        assert!(nonzero > grads.len() / 2, "most gradients should be nonzero");
    }

    #[test]
    fn gradcheck_spot_positions() {
        let (mut model, mut rng) = tiny();
        let x = Tensor4::randn(2, 3, 8, 8, 0.5, &mut rng);
        let y = vec![1usize, 2];
        model.zero_grad();
        let _ = model.forward_backward(&x, &y);
        let grads = model.grads_flat();
        let mut params = model.params_flat();
        let h = 1e-2;
        // The analytic gradient is for *batch-statistics* BatchNorm, so the
        // finite-difference loss must also run a train-mode forward (running
        // statistics drift across calls but do not affect train-mode output).
        let train_loss = |m: &mut ResNetMini, x: &Tensor4, y: &Vec<usize>| -> f32 {
            let logits = m.forward(x, true);
            softmax_cross_entropy(&logits, y).loss
        };
        for &idx in &[0usize, 50, params.len() / 2, params.len() - 2] {
            let orig = params[idx];
            params[idx] = orig + h;
            model.set_params_flat(&params);
            let lp = train_loss(&mut model, &x, &y);
            params[idx] = orig - h;
            model.set_params_flat(&params);
            let lm = train_loss(&mut model, &x, &y);
            params[idx] = orig;
            model.set_params_flat(&params);
            let fd = (lp - lm) / (2.0 * h);
            assert!(
                (fd - grads[idx]).abs() < 0.02 + 0.05 * grads[idx].abs(),
                "idx={idx} fd={fd} an={}",
                grads[idx]
            );
        }
    }

    #[test]
    fn training_reduces_loss() {
        let (mut model, mut rng) = tiny();
        let x = Tensor4::randn(16, 3, 8, 8, 1.0, &mut rng);
        let y: Vec<usize> = (0..16).map(|i| i % 4).collect();
        // Evaluate in train-mode forward to use batch statistics.
        let logits0 = model.forward(&x, false);
        let before = softmax_cross_entropy(&logits0, &y).loss;
        let _ = Matrix::zeros(1, 1);
        for _ in 0..8 {
            model.zero_grad();
            let _ = model.forward_backward(&x, &y);
            let grads = model.grads_flat();
            let mut params = model.params_flat();
            for (p, g) in params.iter_mut().zip(&grads) {
                *p -= 0.1 * g;
            }
            model.set_params_flat(&params);
        }
        let logits1 = model.forward(&x, false);
        let after = softmax_cross_entropy(&logits1, &y).loss;
        assert!(after < before, "loss {before} -> {after}");
    }
}
