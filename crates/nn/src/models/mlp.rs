//! Plain multi-layer perceptron classifier (quickstart model).

use kaisa_tensor::{Matrix, Rng};

use crate::activation::Relu;
use crate::capture::KfacAble;
use crate::linear::Linear;
use crate::loss::softmax_cross_entropy;
use crate::model::{visit_linear, EvalResult, Model, ParamRef};

/// An MLP classifier: `Linear → ReLU → ... → Linear` with softmax
/// cross-entropy loss. Every Linear layer is K-FAC preconditionable.
#[derive(Debug, Clone)]
pub struct Mlp {
    name: String,
    layers: Vec<Linear>,
    relus: Vec<Relu>,
}

impl Mlp {
    /// Build an MLP with the given layer widths, e.g. `&[784, 128, 64, 10]`.
    pub fn new(dims: &[usize], rng: &mut Rng) -> Self {
        assert!(dims.len() >= 2, "MLP needs at least input and output dims");
        let mut layers = Vec::new();
        let mut relus = Vec::new();
        for (i, pair) in dims.windows(2).enumerate() {
            layers.push(Linear::new_kaiming(format!("fc{i}"), pair[0], pair[1], true, rng));
            if i + 2 < dims.len() {
                relus.push(Relu::new());
            }
        }
        Mlp { name: "mlp".to_string(), layers, relus }
    }

    /// Forward pass to logits.
    pub fn forward(&mut self, x: &Matrix, train: bool) -> Matrix {
        let mut h = x.clone();
        let n_layers = self.layers.len();
        for i in 0..n_layers {
            h = self.layers[i].forward(&h, train);
            if i < self.relus.len() {
                h = self.relus[i].forward(&h, train);
            }
        }
        h
    }

    fn backward(&mut self, grad_logits: &Matrix) {
        let n = self.layers.len();
        let mut g = self.layers[n - 1].backward(grad_logits);
        for i in (0..n - 1).rev() {
            g = self.relus[i].backward(&g);
            g = self.layers[i].backward(&g);
        }
    }
}

impl Model for Mlp {
    type Input = Matrix;
    type Target = Vec<usize>;

    fn name(&self) -> &str {
        &self.name
    }

    fn forward_backward(&mut self, x: &Matrix, y: &Vec<usize>) -> EvalResult {
        let logits = self.forward(x, true);
        let out = softmax_cross_entropy(&logits, y);
        self.backward(&out.grad);
        EvalResult { loss: out.loss, metric: out.accuracy }
    }

    fn evaluate(&mut self, x: &Matrix, y: &Vec<usize>) -> EvalResult {
        let logits = self.forward(x, false);
        let out = softmax_cross_entropy(&logits, y);
        EvalResult { loss: out.loss, metric: out.accuracy }
    }

    fn for_each_param(&mut self, f: &mut dyn FnMut(&str, ParamRef<'_>)) {
        for (i, layer) in self.layers.iter_mut().enumerate() {
            visit_linear(layer, &format!("fc{i}"), f);
        }
    }

    fn kfac_layers(&mut self) -> Vec<&mut dyn KfacAble> {
        self.layers.iter_mut().map(|l| l as &mut dyn KfacAble).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shapes_and_param_count() {
        let mut rng = Rng::seed_from_u64(141);
        let mut mlp = Mlp::new(&[8, 16, 4], &mut rng);
        assert_eq!(mlp.param_count(), 8 * 16 + 16 + 16 * 4 + 4);
        let x = Matrix::randn(5, 8, 1.0, &mut rng);
        let logits = mlp.forward(&x, false);
        assert_eq!(logits.shape(), (5, 4));
        assert_eq!(mlp.kfac_layers().len(), 2);
    }

    #[test]
    fn flat_roundtrip() {
        let mut rng = Rng::seed_from_u64(142);
        let mut mlp = Mlp::new(&[4, 6, 3], &mut rng);
        let flat = mlp.params_flat();
        let mut perturbed = flat.clone();
        for v in perturbed.iter_mut() {
            *v += 1.0;
        }
        mlp.set_params_flat(&perturbed);
        let back = mlp.params_flat();
        assert_eq!(back, perturbed);
    }

    #[test]
    fn single_step_reduces_loss() {
        let mut rng = Rng::seed_from_u64(143);
        let mut mlp = Mlp::new(&[6, 12, 3], &mut rng);
        let x = Matrix::randn(32, 6, 1.0, &mut rng);
        let y: Vec<usize> = (0..32).map(|i| i % 3).collect();

        let before = mlp.evaluate(&x, &y).loss;
        // Ten plain SGD steps.
        for _ in 0..10 {
            mlp.zero_grad();
            let _ = mlp.forward_backward(&x, &y);
            let grads = mlp.grads_flat();
            let mut params = mlp.params_flat();
            for (p, g) in params.iter_mut().zip(&grads) {
                *p -= 0.5 * g;
            }
            mlp.set_params_flat(&params);
        }
        let after = mlp.evaluate(&x, &y).loss;
        assert!(after < before, "loss should decrease: {before} -> {after}");
    }

    #[test]
    fn gradient_matches_finite_difference_end_to_end() {
        let mut rng = Rng::seed_from_u64(144);
        let mut mlp = Mlp::new(&[3, 5, 2], &mut rng);
        let x = Matrix::randn(4, 3, 1.0, &mut rng);
        let y = vec![0usize, 1, 0, 1];
        mlp.zero_grad();
        let _ = mlp.forward_backward(&x, &y);
        let grads = mlp.grads_flat();
        let mut params = mlp.params_flat();
        let h = 1e-3;
        for &idx in &[0usize, 7, 20, params.len() - 1] {
            let orig = params[idx];
            params[idx] = orig + h;
            mlp.set_params_flat(&params);
            let lp = mlp.evaluate(&x, &y).loss;
            params[idx] = orig - h;
            mlp.set_params_flat(&params);
            let lm = mlp.evaluate(&x, &y).loss;
            params[idx] = orig;
            mlp.set_params_flat(&params);
            let fd = (lp - lm) / (2.0 * h);
            assert!((fd - grads[idx]).abs() < 1e-2, "idx={idx} fd={fd} an={}", grads[idx]);
        }
    }
}
