//! Transformer-encoder analogue of BERT-Large for masked-token pretraining.
//!
//! Matches the paper's treatment of BERT (Section 5.2): every transformer
//! block is a stack of Linear layers (Q/K/V/O projections and the two FFN
//! layers), *all of which are K-FAC preconditioned*, while the embedding
//! table and the vocabulary prediction head are **excluded** from
//! preconditioning ("we do not use K-FAC to precondition the embedding layer
//! and prediction head because both of these layers have a Kronecker factor
//! with shape vocab_size × vocab_size").

use kaisa_tensor::{Matrix, Rng};

use crate::activation::Gelu;
use crate::attention::MultiHeadAttention;
use crate::capture::KfacAble;
use crate::linear::Linear;
use crate::loss::masked_cross_entropy;
use crate::model::{visit_linear, visit_ln, EvalResult, Model, ParamRef};
use crate::norm::LayerNorm;

/// One batch of (possibly masked) token sequences.
#[derive(Debug, Clone)]
pub struct TokenBatch {
    /// Token ids after masking, length `batch * seq`, sequence-major.
    pub tokens: Vec<usize>,
    /// Sequences in the batch.
    pub batch: usize,
    /// Sequence length.
    pub seq: usize,
    /// Per-position prediction targets; `Some(original_id)` at masked
    /// positions, `None` elsewhere.
    pub labels: Vec<Option<usize>>,
}

/// Configuration for [`BertMini`].
#[derive(Debug, Clone, Copy)]
pub struct BertMiniConfig {
    /// Vocabulary size.
    pub vocab: usize,
    /// Model (residual stream) width.
    pub d_model: usize,
    /// Attention heads per block.
    pub heads: usize,
    /// Transformer blocks.
    pub layers: usize,
    /// FFN hidden width.
    pub ffn_dim: usize,
    /// Maximum sequence length (positional table size).
    pub max_seq: usize,
}

impl Default for BertMiniConfig {
    fn default() -> Self {
        BertMiniConfig { vocab: 32, d_model: 32, heads: 4, layers: 2, ffn_dim: 64, max_seq: 16 }
    }
}

/// One post-LN transformer encoder block.
#[derive(Debug, Clone)]
struct Block {
    attn: MultiHeadAttention,
    ln1: LayerNorm,
    ffn1: Linear,
    gelu: Gelu,
    ffn2: Linear,
    ln2: LayerNorm,
}

impl Block {
    fn new(prefix: &str, cfg: &BertMiniConfig, rng: &mut Rng) -> Self {
        Block {
            attn: MultiHeadAttention::new(&format!("{prefix}.attn"), cfg.d_model, cfg.heads, rng),
            ln1: LayerNorm::new(cfg.d_model),
            ffn1: Linear::new(format!("{prefix}.ffn1"), cfg.d_model, cfg.ffn_dim, true, rng),
            gelu: Gelu::new(),
            ffn2: Linear::new(format!("{prefix}.ffn2"), cfg.ffn_dim, cfg.d_model, true, rng),
            ln2: LayerNorm::new(cfg.d_model),
        }
    }

    fn forward(&mut self, x: &Matrix, batch: usize, seq: usize, train: bool) -> Matrix {
        // Post-LN: h = LN1(x + attn(x)); out = LN2(h + ffn(h)).
        let a = self.attn.forward(x, batch, seq, train);
        let mut r1 = x.clone();
        r1.add_assign(&a);
        let h = self.ln1.forward(&r1, train);

        let f = self.ffn1.forward(&h, train);
        let f = self.gelu.forward(&f, train);
        let f = self.ffn2.forward(&f, train);
        let mut r2 = h.clone();
        r2.add_assign(&f);
        self.ln2.forward(&r2, train)
    }

    fn backward(&mut self, grad_out: &Matrix) -> Matrix {
        let dr2 = self.ln2.backward(grad_out);
        // r2 = h + ffn(h): gradient flows to h directly and through the FFN.
        let df = self.ffn2.backward(&dr2);
        let df = self.gelu.backward(&df);
        let mut dh = self.ffn1.backward(&df);
        dh.add_assign(&dr2);

        let dr1 = self.ln1.backward(&dh);
        // r1 = x + attn(x).
        let mut dx = self.attn.backward(&dr1);
        dx.add_assign(&dr1);
        dx
    }

    fn zero_grad(&mut self) {
        self.attn.zero_grad();
        self.ln1.zero_grad();
        self.ffn1.zero_grad();
        self.ffn2.zero_grad();
        self.ln2.zero_grad();
    }
}

/// Small BERT-style masked language model.
#[derive(Debug, Clone)]
pub struct BertMini {
    name: String,
    cfg: BertMiniConfig,
    /// Token embedding table `(vocab, d_model)` — not K-FAC preconditioned.
    pub embedding: Matrix,
    grad_embedding: Matrix,
    /// Positional embedding table `(max_seq, d_model)`.
    pub pos_embedding: Matrix,
    grad_pos_embedding: Matrix,
    blocks: Vec<Block>,
    /// Vocabulary prediction head — not K-FAC preconditioned.
    head: Linear,
    token_cache: Option<TokenBatch>,
}

impl BertMini {
    /// Build the model.
    pub fn new(cfg: BertMiniConfig, rng: &mut Rng) -> Self {
        let blocks = (0..cfg.layers).map(|i| Block::new(&format!("blk{i}"), &cfg, rng)).collect();
        BertMini {
            name: "bert_mini".to_string(),
            embedding: Matrix::randn(cfg.vocab, cfg.d_model, 0.1, rng),
            grad_embedding: Matrix::zeros(cfg.vocab, cfg.d_model),
            pos_embedding: Matrix::randn(cfg.max_seq, cfg.d_model, 0.1, rng),
            grad_pos_embedding: Matrix::zeros(cfg.max_seq, cfg.d_model),
            blocks,
            head: Linear::new("mlm_head", cfg.d_model, cfg.vocab, true, rng),
            token_cache: None,
            cfg,
        }
    }

    /// Model configuration.
    pub fn config(&self) -> &BertMiniConfig {
        &self.cfg
    }

    fn embed(&self, batch: &TokenBatch) -> Matrix {
        let rows = batch.batch * batch.seq;
        assert_eq!(batch.tokens.len(), rows, "token count mismatch");
        assert!(batch.seq <= self.cfg.max_seq, "sequence longer than max_seq");
        let mut x = Matrix::zeros(rows, self.cfg.d_model);
        for (i, &tok) in batch.tokens.iter().enumerate() {
            assert!(tok < self.cfg.vocab, "token id {tok} out of range");
            let pos = i % batch.seq;
            let row = x.row_mut(i);
            for (d, v) in row.iter_mut().enumerate() {
                *v = self.embedding.get(tok, d) + self.pos_embedding.get(pos, d);
            }
        }
        x
    }

    /// Forward pass to vocabulary logits `(batch·seq, vocab)`.
    pub fn forward(&mut self, batch: &TokenBatch, train: bool) -> Matrix {
        let mut x = self.embed(batch);
        for block in self.blocks.iter_mut() {
            x = block.forward(&x, batch.batch, batch.seq, train);
        }
        if train {
            self.token_cache = Some(batch.clone());
        }
        self.head.forward(&x, train)
    }

    fn backward(&mut self, grad_logits: &Matrix) {
        let batch = self.token_cache.take().expect("backward without forward");
        let mut g = self.head.backward(grad_logits);
        for block in self.blocks.iter_mut().rev() {
            g = block.backward(&g);
        }
        // Embedding gradients: scatter-add by token id / position.
        for (i, &tok) in batch.tokens.iter().enumerate() {
            let pos = i % batch.seq;
            let grow = g.row(i);
            for (d, &v) in grow.iter().enumerate() {
                let e = self.grad_embedding.get(tok, d) + v;
                self.grad_embedding.set(tok, d, e);
                let p = self.grad_pos_embedding.get(pos, d) + v;
                self.grad_pos_embedding.set(pos, d, p);
            }
        }
    }
}

impl Model for BertMini {
    type Input = TokenBatch;
    type Target = ();

    fn name(&self) -> &str {
        &self.name
    }

    fn forward_backward(&mut self, x: &TokenBatch, _y: &()) -> EvalResult {
        let logits = self.forward(x, true);
        let out = masked_cross_entropy(&logits, &x.labels);
        self.backward(&out.grad);
        EvalResult { loss: out.loss, metric: out.accuracy }
    }

    fn evaluate(&mut self, x: &TokenBatch, _y: &()) -> EvalResult {
        let logits = self.forward(x, false);
        let out = masked_cross_entropy(&logits, &x.labels);
        EvalResult { loss: out.loss, metric: out.accuracy }
    }

    fn for_each_param(&mut self, f: &mut dyn FnMut(&str, ParamRef<'_>)) {
        f("embedding", ParamRef::Mat { w: &mut self.embedding, g: &mut self.grad_embedding });
        f(
            "pos_embedding",
            ParamRef::Mat { w: &mut self.pos_embedding, g: &mut self.grad_pos_embedding },
        );
        for (i, block) in self.blocks.iter_mut().enumerate() {
            visit_linear(&mut block.attn.wq, &format!("blk{i}.wq"), f);
            visit_linear(&mut block.attn.wk, &format!("blk{i}.wk"), f);
            visit_linear(&mut block.attn.wv, &format!("blk{i}.wv"), f);
            visit_linear(&mut block.attn.wo, &format!("blk{i}.wo"), f);
            visit_ln(&mut block.ln1, &format!("blk{i}.ln1"), f);
            visit_linear(&mut block.ffn1, &format!("blk{i}.ffn1"), f);
            visit_linear(&mut block.ffn2, &format!("blk{i}.ffn2"), f);
            visit_ln(&mut block.ln2, &format!("blk{i}.ln2"), f);
        }
        visit_linear(&mut self.head, "mlm_head", f);
    }

    fn kfac_layers(&mut self) -> Vec<&mut dyn KfacAble> {
        // Embedding and prediction head deliberately excluded (paper §5.2).
        let mut layers: Vec<&mut dyn KfacAble> = Vec::new();
        for block in self.blocks.iter_mut() {
            layers.push(&mut block.attn.wq);
            layers.push(&mut block.attn.wk);
            layers.push(&mut block.attn.wv);
            layers.push(&mut block.attn.wo);
            layers.push(&mut block.ffn1);
            layers.push(&mut block.ffn2);
        }
        layers
    }

    fn zero_grad(&mut self) {
        self.grad_embedding.fill_zero();
        self.grad_pos_embedding.fill_zero();
        for block in self.blocks.iter_mut() {
            block.zero_grad();
        }
        self.head.zero_grad();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy_batch(rng: &mut Rng, cfg: &BertMiniConfig, batch: usize, seq: usize) -> TokenBatch {
        let rows = batch * seq;
        let tokens: Vec<usize> = (0..rows).map(|_| rng.index(cfg.vocab)).collect();
        // Mask ~25% of positions; token 0 plays the role of [MASK].
        let mut masked_tokens = tokens.clone();
        let mut labels = vec![None; rows];
        for i in 0..rows {
            if rng.bernoulli(0.25) {
                labels[i] = Some(tokens[i]);
                masked_tokens[i] = 0;
            }
        }
        TokenBatch { tokens: masked_tokens, batch, seq, labels }
    }

    #[test]
    fn forward_shape() {
        let mut rng = Rng::seed_from_u64(181);
        let cfg = BertMiniConfig::default();
        let mut model = BertMini::new(cfg, &mut rng);
        let b = toy_batch(&mut rng, &cfg, 2, 8);
        let logits = model.forward(&b, false);
        assert_eq!(logits.shape(), (16, cfg.vocab));
    }

    #[test]
    fn kfac_excludes_embedding_and_head() {
        let mut rng = Rng::seed_from_u64(182);
        let cfg = BertMiniConfig::default();
        let mut model = BertMini::new(cfg, &mut rng);
        let layers = model.kfac_layers();
        assert_eq!(layers.len(), cfg.layers * 6);
        for layer in &layers {
            assert!(!layer.layer_name().contains("mlm_head"));
        }
    }

    #[test]
    fn gradcheck_spot_positions() {
        let mut rng = Rng::seed_from_u64(183);
        let cfg =
            BertMiniConfig { vocab: 12, d_model: 8, heads: 2, layers: 1, ffn_dim: 16, max_seq: 8 };
        let mut model = BertMini::new(cfg, &mut rng);
        let b = toy_batch(&mut rng, &cfg, 2, 4);
        model.zero_grad();
        let _ = model.forward_backward(&b, &());
        let grads = model.grads_flat();
        let mut params = model.params_flat();
        let h = 1e-3;
        for &idx in &[5usize, 120, params.len() / 2, params.len() - 3] {
            let orig = params[idx];
            params[idx] = orig + h;
            model.set_params_flat(&params);
            let lp = model.evaluate(&b, &()).loss;
            params[idx] = orig - h;
            model.set_params_flat(&params);
            let lm = model.evaluate(&b, &()).loss;
            params[idx] = orig;
            model.set_params_flat(&params);
            let fd = (lp - lm) / (2.0 * h);
            assert!((fd - grads[idx]).abs() < 2e-2, "idx={idx} fd={fd} an={}", grads[idx]);
        }
    }

    #[test]
    fn training_reduces_masked_loss() {
        let mut rng = Rng::seed_from_u64(184);
        let cfg =
            BertMiniConfig { vocab: 12, d_model: 16, heads: 2, layers: 1, ffn_dim: 32, max_seq: 8 };
        let mut model = BertMini::new(cfg, &mut rng);
        let b = toy_batch(&mut rng, &cfg, 4, 8);
        let before = model.evaluate(&b, &()).loss;
        for _ in 0..15 {
            model.zero_grad();
            let _ = model.forward_backward(&b, &());
            let grads = model.grads_flat();
            let mut params = model.params_flat();
            for (p, g) in params.iter_mut().zip(&grads) {
                *p -= 0.5 * g;
            }
            model.set_params_flat(&params);
        }
        let after = model.evaluate(&b, &()).loss;
        assert!(after < before, "masked loss {before} -> {after}");
    }
}
