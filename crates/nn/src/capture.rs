//! K-FAC activation/gradient capture.
//!
//! K-FAC needs, for every preconditioned layer, the second-moment statistics
//! of the layer inputs (`A = E[a aᵀ]`) and of the pre-activation gradients
//! (`G = E[g gᵀ]`), Eq. 9 of the paper. Layers record these during the
//! forward/backward pass when capture is enabled.
//!
//! Two capture modes reproduce the paper's Section 4.2 design point:
//!
//! * [`CaptureMode::Accumulate`] (KAISA's approach) — the `aᵀa` / `gᵀg`
//!   contributions are computed immediately during the pass and summed, so
//!   gradient accumulation over `k` micro-batches costs O(dim²) extra memory
//!   instead of O(k · batch · dim).
//! * [`CaptureMode::StoreRaw`] (the baseline KAISA improves on) — the raw
//!   `a` and `g` matrices are retained and the statistics are computed at
//!   `KFAC.step()` time. Memory grows linearly with accumulation steps.
//!
//! Scaling conventions (`n` = samples in the micro-batch, `T` = spatial
//! positions per sample, rows = `n·T`):
//!
//! * `A += aᵀa / n` — the KFC convention that sums spatial support.
//! * `G += gᵀg · n² / rows` — converts mean-loss gradients back to per-sample
//!   gradients (`g_sample = n · g_row`) and averages over `n·T`.

use kaisa_tensor::Matrix;

/// When the statistics are materialized.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CaptureMode {
    /// Compute `aᵀa`/`gᵀg` during the pass (KAISA, paper Section 4.2).
    #[default]
    Accumulate,
    /// Store raw `a`/`g` and compute at `step()` (memory-hungry baseline).
    StoreRaw,
}

/// Accumulated factor statistics for one layer and one optimizer step.
#[derive(Debug, Clone)]
pub struct KfacStats {
    /// Summed `A` contributions (dim `a_dim x a_dim`).
    pub a_stat: Matrix,
    /// Summed `G` contributions (dim `g_dim x g_dim`).
    pub g_stat: Matrix,
    /// Number of micro-batches accumulated (divide by this to average).
    pub batches: usize,
}

/// Per-layer capture state owned by preconditionable layers.
#[derive(Debug, Clone, Default)]
pub struct KfacCapture {
    /// Whether the layer records statistics during passes.
    pub enabled: bool,
    /// Capture strategy.
    pub mode: CaptureMode,
    a_stat: Option<Matrix>,
    g_stat: Option<Matrix>,
    raw_a: Vec<(Matrix, usize)>,
    raw_g: Vec<(Matrix, usize)>,
    batches: usize,
}

impl KfacCapture {
    /// Create a disabled capture (layers start inert until a preconditioner
    /// registers them).
    pub fn new() -> Self {
        Self::default()
    }

    /// Record the layer-input matrix `a` (rows × a_dim, already augmented
    /// with a ones column if the layer has a bias) for `n_samples` samples.
    pub fn record_forward(&mut self, a: &Matrix, n_samples: usize) {
        if !self.enabled {
            return;
        }
        match self.mode {
            CaptureMode::Accumulate => {
                let mut contrib = a.gram_tn();
                contrib.scale(1.0 / n_samples as f32);
                match self.a_stat.as_mut() {
                    Some(s) => s.add_assign(&contrib),
                    None => self.a_stat = Some(contrib),
                }
            }
            CaptureMode::StoreRaw => {
                self.raw_a.push((a.clone(), n_samples));
            }
        }
        // Convention: one forward + one backward == one micro-batch; count on
        // the forward side.
        self.batches += 1;
    }

    /// Record a pre-computed `aᵀa` contribution (unscaled) for `n_samples`
    /// samples — the streamed conv capture path, which accumulates SYRK
    /// contributions chunk-by-chunk without materializing the full patch
    /// matrix. Only meaningful in [`CaptureMode::Accumulate`]; the chunked
    /// sum is bitwise identical to [`record_forward`](Self::record_forward)
    /// on the full matrix because the chunks partition the row dimension in
    /// ascending input order.
    pub fn record_forward_stat(&mut self, mut contrib: Matrix, n_samples: usize) {
        if !self.enabled {
            return;
        }
        debug_assert_eq!(
            self.mode,
            CaptureMode::Accumulate,
            "record_forward_stat is an Accumulate-mode entry point"
        );
        contrib.scale(1.0 / n_samples as f32);
        match self.a_stat.as_mut() {
            Some(s) => s.add_assign(&contrib),
            None => self.a_stat = Some(contrib),
        }
        self.batches += 1;
    }

    /// Record the pre-activation gradient matrix `g` (rows × g_dim, gradients
    /// of the *mean* loss) for `n_samples` samples.
    pub fn record_backward(&mut self, g: &Matrix, n_samples: usize) {
        if !self.enabled {
            return;
        }
        let rows = g.rows().max(1);
        match self.mode {
            CaptureMode::Accumulate => {
                let mut contrib = g.gram_tn();
                contrib.scale((n_samples * n_samples) as f32 / rows as f32);
                match self.g_stat.as_mut() {
                    Some(s) => s.add_assign(&contrib),
                    None => self.g_stat = Some(contrib),
                }
            }
            CaptureMode::StoreRaw => {
                self.raw_g.push((g.clone(), n_samples));
            }
        }
    }

    /// Drain the accumulated statistics (resets the capture for the next
    /// step). Returns `None` if nothing was captured.
    pub fn take_stats(&mut self) -> Option<KfacStats> {
        let batches = std::mem::take(&mut self.batches);
        match self.mode {
            CaptureMode::Accumulate => {
                let a_stat = self.a_stat.take()?;
                let g_stat = self.g_stat.take()?;
                Some(KfacStats { a_stat, g_stat, batches })
            }
            CaptureMode::StoreRaw => {
                if self.raw_a.is_empty() || self.raw_g.is_empty() {
                    self.raw_a.clear();
                    self.raw_g.clear();
                    return None;
                }
                let mut a_stat: Option<Matrix> = None;
                for (a, n) in self.raw_a.drain(..) {
                    let mut contrib = a.gram_tn();
                    contrib.scale(1.0 / n as f32);
                    match a_stat.as_mut() {
                        Some(s) => s.add_assign(&contrib),
                        None => a_stat = Some(contrib),
                    }
                }
                let mut g_stat: Option<Matrix> = None;
                for (g, n) in self.raw_g.drain(..) {
                    let rows = g.rows().max(1);
                    let mut contrib = g.gram_tn();
                    contrib.scale((n * n) as f32 / rows as f32);
                    match g_stat.as_mut() {
                        Some(s) => s.add_assign(&contrib),
                        None => g_stat = Some(contrib),
                    }
                }
                Some(KfacStats { a_stat: a_stat?, g_stat: g_stat?, batches })
            }
        }
    }

    /// Bytes currently held by the capture state — the quantity KAISA's
    /// factor-accumulation optimization (Section 4.2) keeps O(dim²).
    pub fn memory_bytes(&self) -> usize {
        let stat = self.a_stat.as_ref().map_or(0, |m| m.numel())
            + self.g_stat.as_ref().map_or(0, |m| m.numel());
        let raw: usize = self
            .raw_a
            .iter()
            .map(|(m, _)| m.numel())
            .chain(self.raw_g.iter().map(|(m, _)| m.numel()))
            .sum();
        (stat + raw) * std::mem::size_of::<f32>()
    }

    /// Discard any captured state without producing statistics.
    pub fn clear(&mut self) {
        self.a_stat = None;
        self.g_stat = None;
        self.raw_a.clear();
        self.raw_g.clear();
        self.batches = 0;
    }
}

/// Interface the K-FAC preconditioner uses to talk to a preconditionable
/// layer (Linear or Conv2d), independent of tensor rank.
pub trait KfacAble {
    /// Stable display name (used in timing breakdowns and assignments).
    fn layer_name(&self) -> &str;

    /// Dimension of the `A` Kronecker factor (`in_features`, +1 with bias).
    fn a_dim(&self) -> usize;

    /// Dimension of the `G` Kronecker factor (`out_features`).
    fn g_dim(&self) -> usize;

    /// Mutable access to the capture state.
    fn capture_mut(&mut self) -> &mut KfacCapture;

    /// The combined weight(+bias) gradient as a `g_dim x a_dim` matrix; the
    /// bias gradient, when present, is the trailing column.
    fn combined_grad(&self) -> Matrix;

    /// Overwrite the layer gradient from a combined `g_dim x a_dim` matrix
    /// (the preconditioned gradient coming back from K-FAC).
    fn set_combined_grad(&mut self, grad: &Matrix);

    /// Bytes of persistent per-layer capture scratch — the streamed-im2col
    /// chunk buffer conv layers reuse between factor updates. Metered by
    /// the preconditioner under its capture-scratch memory category.
    fn capture_scratch_bytes(&self) -> usize {
        0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kaisa_tensor::Rng;

    #[test]
    fn disabled_capture_records_nothing() {
        let mut cap = KfacCapture::new();
        let a = Matrix::full(4, 3, 1.0);
        cap.record_forward(&a, 4);
        cap.record_backward(&a, 4);
        assert!(cap.take_stats().is_none());
        assert_eq!(cap.memory_bytes(), 0);
    }

    #[test]
    fn accumulate_matches_store_raw() {
        let mut rng = Rng::seed_from_u64(61);
        let mut acc =
            KfacCapture { enabled: true, mode: CaptureMode::Accumulate, ..Default::default() };
        let mut raw =
            KfacCapture { enabled: true, mode: CaptureMode::StoreRaw, ..Default::default() };
        for _ in 0..3 {
            let a = Matrix::randn(8, 5, 1.0, &mut rng);
            let g = Matrix::randn(8, 4, 1.0, &mut rng);
            acc.record_forward(&a, 8);
            acc.record_backward(&g, 8);
            raw.record_forward(&a, 8);
            raw.record_backward(&g, 8);
        }
        let s_acc = acc.take_stats().unwrap();
        let s_raw = raw.take_stats().unwrap();
        assert_eq!(s_acc.batches, 3);
        assert_eq!(s_raw.batches, 3);
        assert!(s_acc.a_stat.max_abs_diff(&s_raw.a_stat) < 1e-4);
        assert!(s_acc.g_stat.max_abs_diff(&s_raw.g_stat) < 1e-4);
    }

    #[test]
    fn accumulate_memory_is_constant_in_microbatches() {
        let mut rng = Rng::seed_from_u64(62);
        let mut acc = KfacCapture { enabled: true, ..Default::default() };
        let mut raw =
            KfacCapture { enabled: true, mode: CaptureMode::StoreRaw, ..Default::default() };
        let mut acc_sizes = Vec::new();
        let mut raw_sizes = Vec::new();
        for _ in 0..4 {
            let a = Matrix::randn(16, 6, 1.0, &mut rng);
            let g = Matrix::randn(16, 6, 1.0, &mut rng);
            acc.record_forward(&a, 16);
            acc.record_backward(&g, 16);
            raw.record_forward(&a, 16);
            raw.record_backward(&g, 16);
            acc_sizes.push(acc.memory_bytes());
            raw_sizes.push(raw.memory_bytes());
        }
        // KAISA: flat. Baseline: grows linearly.
        assert_eq!(acc_sizes[0], acc_sizes[3]);
        assert_eq!(raw_sizes[3], 4 * raw_sizes[0]);
    }

    #[test]
    fn stats_are_symmetric_psd_shaped() {
        let mut rng = Rng::seed_from_u64(63);
        let mut cap = KfacCapture { enabled: true, ..Default::default() };
        let a = Matrix::randn(10, 7, 1.0, &mut rng);
        let g = Matrix::randn(10, 3, 1.0, &mut rng);
        cap.record_forward(&a, 10);
        cap.record_backward(&g, 10);
        let s = cap.take_stats().unwrap();
        assert_eq!(s.a_stat.shape(), (7, 7));
        assert_eq!(s.g_stat.shape(), (3, 3));
        assert!(s.a_stat.max_abs_diff(&s.a_stat.transpose()) < 1e-5);
        assert!(s.g_stat.max_abs_diff(&s.g_stat.transpose()) < 1e-5);
        // Diagonals of second moments are nonnegative.
        for i in 0..7 {
            assert!(s.a_stat.get(i, i) >= 0.0);
        }
    }

    #[test]
    fn record_forward_stat_matches_record_forward_bitwise() {
        // Streaming a pre-computed Gram contribution (the chunked conv
        // path, here a single chunk) must be indistinguishable from
        // recording the matrix itself.
        let mut rng = Rng::seed_from_u64(64);
        let mut whole = KfacCapture { enabled: true, ..Default::default() };
        let mut streamed = KfacCapture { enabled: true, ..Default::default() };
        for _ in 0..3 {
            let a = Matrix::randn(12, 5, 1.0, &mut rng);
            let g = Matrix::randn(12, 4, 1.0, &mut rng);
            whole.record_forward(&a, 12);
            whole.record_backward(&g, 12);
            streamed.record_forward_stat(a.gram_tn(), 12);
            streamed.record_backward(&g, 12);
        }
        let sw = whole.take_stats().unwrap();
        let ss = streamed.take_stats().unwrap();
        assert_eq!(sw.batches, ss.batches);
        for (x, y) in sw.a_stat.as_slice().iter().zip(ss.a_stat.as_slice()) {
            assert_eq!(x.to_bits(), y.to_bits());
        }
    }

    #[test]
    fn take_stats_resets() {
        let mut cap = KfacCapture { enabled: true, ..Default::default() };
        let a = Matrix::full(2, 2, 1.0);
        cap.record_forward(&a, 2);
        cap.record_backward(&a, 2);
        assert!(cap.take_stats().is_some());
        assert!(cap.take_stats().is_none());
    }

    #[test]
    fn g_scaling_recovers_per_sample_second_moment() {
        // If every row of g is (1/n) * v (mean-loss gradients of identical
        // per-sample gradients v), then G must equal v vᵀ.
        let n = 5usize;
        let v = [2.0f32, -1.0];
        let rows: Vec<f32> = (0..n).flat_map(|_| v.iter().map(|x| x / n as f32)).collect();
        let g = Matrix::from_vec(n, 2, rows);
        let mut cap = KfacCapture { enabled: true, ..Default::default() };
        cap.record_forward(&Matrix::full(n, 1, 1.0), n);
        cap.record_backward(&g, n);
        let s = cap.take_stats().unwrap();
        let expect = Matrix::outer(&v, &v);
        assert!(s.g_stat.max_abs_diff(&expect) < 1e-4);
    }
}
