//! Spatial pooling and upsampling layers.

use kaisa_tensor::{Matrix, Tensor4};

/// 2x2 max pooling with stride 2.
#[derive(Debug, Clone, Default)]
pub struct MaxPool2d {
    /// Cached argmax indices into the input, one per output element.
    argmax: Option<Vec<usize>>,
    in_shape: Option<(usize, usize, usize, usize)>,
}

impl MaxPool2d {
    /// New 2x2/stride-2 max pool.
    pub fn new() -> Self {
        Self::default()
    }

    /// Forward. Input spatial dims must be even.
    pub fn forward(&mut self, x: &Tensor4, train: bool) -> Tensor4 {
        let (n, c, h, w) = x.shape();
        assert!(h % 2 == 0 && w % 2 == 0, "MaxPool2d requires even spatial dims, got {h}x{w}");
        let (oh, ow) = (h / 2, w / 2);
        let mut out = Tensor4::zeros(n, c, oh, ow);
        let mut argmax = vec![0usize; n * c * oh * ow];
        let mut out_idx = 0usize;
        for img in 0..n {
            for ch in 0..c {
                for oy in 0..oh {
                    for ox in 0..ow {
                        let mut best = f32::NEG_INFINITY;
                        let mut best_idx = 0usize;
                        for dy in 0..2 {
                            for dx in 0..2 {
                                let iy = oy * 2 + dy;
                                let ix = ox * 2 + dx;
                                let v = x.get(img, ch, iy, ix);
                                if v > best {
                                    best = v;
                                    best_idx = x.idx(img, ch, iy, ix);
                                }
                            }
                        }
                        out.set(img, ch, oy, ox, best);
                        argmax[out_idx] = best_idx;
                        out_idx += 1;
                    }
                }
            }
        }
        if train {
            self.argmax = Some(argmax);
            self.in_shape = Some((n, c, h, w));
        }
        out
    }

    /// Backward: route gradients to the argmax positions.
    pub fn backward(&mut self, grad_out: &Tensor4) -> Tensor4 {
        let argmax = self.argmax.take().expect("MaxPool2d backward without forward");
        let (n, c, h, w) = self.in_shape.take().expect("input shape cached");
        let mut dx = Tensor4::zeros(n, c, h, w);
        for (out_idx, &in_idx) in argmax.iter().enumerate() {
            dx.as_mut_slice()[in_idx] += grad_out.as_slice()[out_idx];
        }
        dx
    }
}

/// Nearest-neighbour 2x upsampling (U-Net decoder).
#[derive(Debug, Clone, Default)]
pub struct Upsample2x;

impl Upsample2x {
    /// New upsample layer (stateless).
    pub fn new() -> Self {
        Self
    }

    /// Forward: each input pixel becomes a 2x2 block.
    pub fn forward(&self, x: &Tensor4) -> Tensor4 {
        let (n, c, h, w) = x.shape();
        let mut out = Tensor4::zeros(n, c, h * 2, w * 2);
        for img in 0..n {
            for ch in 0..c {
                for y in 0..h {
                    for xx in 0..w {
                        let v = x.get(img, ch, y, xx);
                        out.set(img, ch, 2 * y, 2 * xx, v);
                        out.set(img, ch, 2 * y, 2 * xx + 1, v);
                        out.set(img, ch, 2 * y + 1, 2 * xx, v);
                        out.set(img, ch, 2 * y + 1, 2 * xx + 1, v);
                    }
                }
            }
        }
        out
    }

    /// Backward: sum gradients of each 2x2 block.
    pub fn backward(&self, grad_out: &Tensor4) -> Tensor4 {
        let (n, c, oh, ow) = grad_out.shape();
        let (h, w) = (oh / 2, ow / 2);
        let mut dx = Tensor4::zeros(n, c, h, w);
        for img in 0..n {
            for ch in 0..c {
                for y in 0..h {
                    for xx in 0..w {
                        let s = grad_out.get(img, ch, 2 * y, 2 * xx)
                            + grad_out.get(img, ch, 2 * y, 2 * xx + 1)
                            + grad_out.get(img, ch, 2 * y + 1, 2 * xx)
                            + grad_out.get(img, ch, 2 * y + 1, 2 * xx + 1);
                        dx.set(img, ch, y, xx, s);
                    }
                }
            }
        }
        dx
    }
}

/// Global average pooling: NCHW → `(n, c)` matrix.
#[derive(Debug, Clone, Default)]
pub struct GlobalAvgPool {
    in_shape: Option<(usize, usize, usize, usize)>,
}

impl GlobalAvgPool {
    /// New global average pool.
    pub fn new() -> Self {
        Self::default()
    }

    /// Forward: average over the spatial dims.
    pub fn forward(&mut self, x: &Tensor4, train: bool) -> Matrix {
        let (n, c, h, w) = x.shape();
        if train {
            self.in_shape = Some((n, c, h, w));
        }
        let inv = 1.0 / (h * w) as f32;
        let mut out = Matrix::zeros(n, c);
        for img in 0..n {
            for ch in 0..c {
                let mut s = 0.0f32;
                for y in 0..h {
                    for xx in 0..w {
                        s += x.get(img, ch, y, xx);
                    }
                }
                out.set(img, ch, s * inv);
            }
        }
        out
    }

    /// Backward: spread the gradient uniformly over the spatial dims.
    pub fn backward(&mut self, grad_out: &Matrix) -> Tensor4 {
        let (n, c, h, w) = self.in_shape.take().expect("GlobalAvgPool backward without forward");
        let inv = 1.0 / (h * w) as f32;
        let mut dx = Tensor4::zeros(n, c, h, w);
        for img in 0..n {
            for ch in 0..c {
                let g = grad_out.get(img, ch) * inv;
                for y in 0..h {
                    for xx in 0..w {
                        dx.set(img, ch, y, xx, g);
                    }
                }
            }
        }
        dx
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kaisa_tensor::Rng;

    #[test]
    fn maxpool_forward_known() {
        let x = Tensor4::from_vec(1, 1, 2, 2, vec![1., 5., 3., 2.]);
        let mut pool = MaxPool2d::new();
        let y = pool.forward(&x, true);
        assert_eq!(y.shape(), (1, 1, 1, 1));
        assert_eq!(y.get(0, 0, 0, 0), 5.0);
        let g = Tensor4::from_vec(1, 1, 1, 1, vec![2.0]);
        let dx = pool.backward(&g);
        assert_eq!(dx.as_slice(), &[0.0, 2.0, 0.0, 0.0]);
    }

    #[test]
    fn upsample_roundtrip_adjoint() {
        let mut rng = Rng::seed_from_u64(101);
        let x = Tensor4::randn(2, 3, 4, 4, 1.0, &mut rng);
        let up = Upsample2x::new();
        let y = up.forward(&x);
        assert_eq!(y.shape(), (2, 3, 8, 8));
        // Adjoint check: <up(x), g> == <x, up_backward(g)>.
        let g = Tensor4::randn(2, 3, 8, 8, 1.0, &mut rng);
        let lhs: f32 = y.as_slice().iter().zip(g.as_slice()).map(|(a, b)| a * b).sum();
        let back = up.backward(&g);
        let rhs: f32 = x.as_slice().iter().zip(back.as_slice()).map(|(a, b)| a * b).sum();
        assert!((lhs - rhs).abs() < 1e-3);
    }

    #[test]
    fn global_avg_pool() {
        let x = Tensor4::from_vec(1, 2, 2, 2, vec![1., 2., 3., 4., 10., 20., 30., 40.]);
        let mut gap = GlobalAvgPool::new();
        let y = gap.forward(&x, true);
        assert_eq!(y.shape(), (1, 2));
        assert_eq!(y.get(0, 0), 2.5);
        assert_eq!(y.get(0, 1), 25.0);
        let g = Matrix::from_vec(1, 2, vec![4.0, 8.0]);
        let dx = gap.backward(&g);
        assert_eq!(dx.get(0, 0, 0, 0), 1.0);
        assert_eq!(dx.get(0, 1, 1, 1), 2.0);
    }
}
