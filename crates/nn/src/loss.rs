//! Loss functions with analytic gradients.
//!
//! One loss per application family in the paper: softmax cross-entropy
//! (classification, ResNet), BCE-with-logits + Dice metric (segmentation,
//! U-Net), cross-entropy + smooth-L1 (detection heads, Mask R-CNN), and
//! masked cross-entropy (language modeling, BERT). All gradients are with
//! respect to the *mean* loss over the batch, matching the capture scaling
//! in [`crate::capture`].

use kaisa_tensor::{ops, Matrix, Tensor4};

/// Result of a classification loss: mean loss, logit gradients, accuracy.
#[derive(Debug, Clone)]
pub struct ClassLoss {
    /// Mean cross-entropy over the batch.
    pub loss: f32,
    /// Gradient with respect to the logits (already divided by batch size).
    pub grad: Matrix,
    /// Top-1 accuracy in `[0, 1]`.
    pub accuracy: f32,
}

/// Softmax cross-entropy with integer class labels.
pub fn softmax_cross_entropy(logits: &Matrix, labels: &[usize]) -> ClassLoss {
    let (n, classes) = logits.shape();
    assert_eq!(labels.len(), n, "label count mismatch");
    let mut probs = logits.clone();
    ops::softmax_rows(probs.as_mut_slice(), n, classes);

    let mut loss = 0.0f64;
    let mut correct = 0usize;
    for (r, &label) in labels.iter().enumerate() {
        assert!(label < classes, "label {label} out of range");
        let row = probs.row(r);
        loss -= (row[label].max(1e-12) as f64).ln();
        let argmax = row
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .map(|(i, _)| i)
            .unwrap();
        if argmax == label {
            correct += 1;
        }
    }

    // grad = (softmax - onehot) / n
    let mut grad = probs;
    let inv_n = 1.0 / n as f32;
    for (r, &label) in labels.iter().enumerate() {
        let row = grad.row_mut(r);
        row[label] -= 1.0;
        for v in row.iter_mut() {
            *v *= inv_n;
        }
    }
    ClassLoss { loss: (loss / n as f64) as f32, grad, accuracy: correct as f32 / n as f32 }
}

/// Mean-squared-error loss; returns `(loss, grad)`.
pub fn mse_loss(pred: &Matrix, target: &Matrix) -> (f32, Matrix) {
    assert_eq!(pred.shape(), target.shape(), "mse shape mismatch");
    let n = pred.numel().max(1);
    let mut grad = pred.clone();
    grad.sub_assign(target);
    let loss = grad.as_slice().iter().map(|v| (*v as f64).powi(2)).sum::<f64>() / n as f64;
    grad.scale(2.0 / n as f32);
    (loss as f32, grad)
}

/// Smooth-L1 (Huber) loss used for bounding-box regression in detection
/// heads; returns `(loss, grad)`.
pub fn smooth_l1_loss(pred: &Matrix, target: &Matrix) -> (f32, Matrix) {
    assert_eq!(pred.shape(), target.shape(), "smooth_l1 shape mismatch");
    let n = pred.numel().max(1);
    let mut grad = Matrix::zeros(pred.rows(), pred.cols());
    let mut loss = 0.0f64;
    for i in 0..pred.numel() {
        let d = pred.as_slice()[i] - target.as_slice()[i];
        if d.abs() < 1.0 {
            loss += 0.5 * (d as f64) * (d as f64);
            grad.as_mut_slice()[i] = d / n as f32;
        } else {
            loss += d.abs() as f64 - 0.5;
            grad.as_mut_slice()[i] = d.signum() / n as f32;
        }
    }
    ((loss / n as f64) as f32, grad)
}

/// Binary cross-entropy with logits over a segmentation mask; returns
/// `(mean loss, grad wrt logits)`.
pub fn bce_with_logits(logits: &Tensor4, target: &Tensor4) -> (f32, Tensor4) {
    assert_eq!(logits.shape(), target.shape(), "bce shape mismatch");
    let n = logits.numel().max(1);
    let mut grad = Tensor4::zeros(logits.n(), logits.c(), logits.h(), logits.w());
    let mut loss = 0.0f64;
    for i in 0..logits.numel() {
        let z = logits.as_slice()[i];
        let y = target.as_slice()[i];
        // Stable log-sum-exp form: max(z,0) - z*y + ln(1 + e^{-|z|}).
        loss += (z.max(0.0) - z * y + (1.0 + (-z.abs()).exp()).ln()) as f64;
        let p = 1.0 / (1.0 + (-z).exp());
        grad.as_mut_slice()[i] = (p - y) / n as f32;
    }
    ((loss / n as f64) as f32, grad)
}

/// Dice similarity coefficient of thresholded predictions vs. a binary mask
/// — the U-Net validation metric of the paper (Table 1).
pub fn dice_coefficient(logits: &Tensor4, target: &Tensor4, threshold: f32) -> f32 {
    assert_eq!(logits.shape(), target.shape(), "dice shape mismatch");
    let mut intersection = 0.0f64;
    let mut pred_sum = 0.0f64;
    let mut target_sum = 0.0f64;
    for i in 0..logits.numel() {
        let p = if 1.0 / (1.0 + (-logits.as_slice()[i]).exp()) > threshold { 1.0 } else { 0.0 };
        let t = target.as_slice()[i];
        intersection += (p * t) as f64;
        pred_sum += p as f64;
        target_sum += t as f64;
    }
    let denom = pred_sum + target_sum;
    if denom == 0.0 {
        1.0 // both empty: perfect agreement
    } else {
        (2.0 * intersection / denom) as f32
    }
}

/// Masked-token cross-entropy for BERT-style pretraining: only positions
/// with `Some(label)` contribute; returns loss, logit grads, and masked
/// accuracy.
pub fn masked_cross_entropy(logits: &Matrix, labels: &[Option<usize>]) -> ClassLoss {
    let (rows, vocab) = logits.shape();
    assert_eq!(labels.len(), rows, "label count mismatch");
    let masked: usize = labels.iter().filter(|l| l.is_some()).count();
    if masked == 0 {
        return ClassLoss { loss: 0.0, grad: Matrix::zeros(rows, vocab), accuracy: 0.0 };
    }

    let mut probs = logits.clone();
    ops::softmax_rows(probs.as_mut_slice(), rows, vocab);

    let mut loss = 0.0f64;
    let mut correct = 0usize;
    let mut grad = Matrix::zeros(rows, vocab);
    let inv = 1.0 / masked as f32;
    for (r, label) in labels.iter().enumerate() {
        let Some(label) = label else { continue };
        let row = probs.row(r);
        loss -= (row[*label].max(1e-12) as f64).ln();
        let argmax = row
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .map(|(i, _)| i)
            .unwrap();
        if argmax == *label {
            correct += 1;
        }
        let grow = grad.row_mut(r);
        grow.copy_from_slice(row);
        grow[*label] -= 1.0;
        for v in grow.iter_mut() {
            *v *= inv;
        }
    }
    ClassLoss {
        loss: (loss / masked as f64) as f32,
        grad,
        accuracy: correct as f32 / masked as f32,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kaisa_tensor::Rng;

    #[test]
    fn cross_entropy_uniform_logits() {
        let logits = Matrix::zeros(4, 10);
        let labels = vec![0, 3, 5, 9];
        let out = softmax_cross_entropy(&logits, &labels);
        assert!((out.loss - (10.0f32).ln()).abs() < 1e-5);
    }

    #[test]
    fn cross_entropy_gradient_finite_difference() {
        let mut rng = Rng::seed_from_u64(131);
        let logits = Matrix::randn(3, 5, 1.0, &mut rng);
        let labels = vec![1usize, 4, 0];
        let out = softmax_cross_entropy(&logits, &labels);
        let h = 1e-3;
        for &(r, c) in &[(0usize, 1usize), (1, 2), (2, 0)] {
            let mut lp = logits.clone();
            lp.set(r, c, logits.get(r, c) + h);
            let mut lm = logits.clone();
            lm.set(r, c, logits.get(r, c) - h);
            let fp = softmax_cross_entropy(&lp, &labels).loss;
            let fm = softmax_cross_entropy(&lm, &labels).loss;
            let fd = (fp - fm) / (2.0 * h);
            assert!((fd - out.grad.get(r, c)).abs() < 1e-3);
        }
    }

    #[test]
    fn perfect_prediction_accuracy() {
        let mut logits = Matrix::full(2, 3, -10.0);
        logits.set(0, 2, 10.0);
        logits.set(1, 0, 10.0);
        let out = softmax_cross_entropy(&logits, &[2, 0]);
        assert_eq!(out.accuracy, 1.0);
        assert!(out.loss < 1e-4);
    }

    #[test]
    fn mse_known() {
        let p = Matrix::from_vec(1, 2, vec![1.0, 3.0]);
        let t = Matrix::from_vec(1, 2, vec![0.0, 0.0]);
        let (loss, grad) = mse_loss(&p, &t);
        assert!((loss - 5.0).abs() < 1e-6); // (1 + 9) / 2
        assert_eq!(grad.as_slice(), &[1.0, 3.0]); // 2d/n
    }

    #[test]
    fn smooth_l1_transitions() {
        let p = Matrix::from_vec(1, 2, vec![0.5, 3.0]);
        let t = Matrix::zeros(1, 2);
        let (loss, grad) = smooth_l1_loss(&p, &t);
        // (0.5*0.25 + (3-0.5)) / 2 = (0.125 + 2.5)/2
        assert!((loss - 1.3125).abs() < 1e-5);
        assert!((grad.get(0, 0) - 0.25).abs() < 1e-6);
        assert!((grad.get(0, 1) - 0.5).abs() < 1e-6); // clipped
    }

    #[test]
    fn bce_gradient_finite_difference() {
        let mut rng = Rng::seed_from_u64(132);
        let logits = Tensor4::randn(1, 1, 2, 2, 1.0, &mut rng);
        let target = Tensor4::from_vec(1, 1, 2, 2, vec![1.0, 0.0, 1.0, 0.0]);
        let (_, grad) = bce_with_logits(&logits, &target);
        let h = 1e-3;
        for idx in 0..4 {
            let mut lp = logits.clone();
            lp.as_mut_slice()[idx] += h;
            let mut lm = logits.clone();
            lm.as_mut_slice()[idx] -= h;
            let fp = bce_with_logits(&lp, &target).0;
            let fm = bce_with_logits(&lm, &target).0;
            let fd = (fp - fm) / (2.0 * h);
            assert!((fd - grad.as_slice()[idx]).abs() < 1e-3);
        }
    }

    #[test]
    fn dice_extremes() {
        let big = Tensor4::from_vec(1, 1, 1, 2, vec![10.0, 10.0]);
        let ones = Tensor4::from_vec(1, 1, 1, 2, vec![1.0, 1.0]);
        let zeros = Tensor4::from_vec(1, 1, 1, 2, vec![0.0, 0.0]);
        assert_eq!(dice_coefficient(&big, &ones, 0.5), 1.0);
        assert_eq!(dice_coefficient(&big, &zeros, 0.5), 0.0);
        let small = Tensor4::from_vec(1, 1, 1, 2, vec![-10.0, -10.0]);
        assert_eq!(dice_coefficient(&small, &zeros, 0.5), 1.0, "both empty is perfect");
    }

    #[test]
    fn masked_ce_ignores_unmasked() {
        let mut rng = Rng::seed_from_u64(133);
        let logits = Matrix::randn(4, 6, 1.0, &mut rng);
        let labels = vec![None, Some(2), None, Some(5)];
        let out = masked_cross_entropy(&logits, &labels);
        // Unmasked rows get zero gradient.
        for c in 0..6 {
            assert_eq!(out.grad.get(0, c), 0.0);
            assert_eq!(out.grad.get(2, c), 0.0);
        }
        // Masked rows have softmax-minus-onehot structure: row sums to 0.
        let s: f32 = out.grad.row(1).iter().sum();
        assert!(s.abs() < 1e-5);
    }

    #[test]
    fn masked_ce_all_unmasked_is_zero() {
        let logits = Matrix::zeros(2, 3);
        let out = masked_cross_entropy(&logits, &[None, None]);
        assert_eq!(out.loss, 0.0);
        assert_eq!(out.grad.max_abs(), 0.0);
    }
}
