//! 2-D convolution lowered to GEMM via im2col, with K-FAC capture.
//!
//! The K-FAC `A` factor of a Conv2d layer is the second moment of the im2col
//! patch rows (dimension `c_in·kh·kw (+1)`), and `G` is the second moment of
//! the per-location pre-activation gradients (dimension `c_out`) — the KFC
//! construction of Grosse & Martens that the paper's implementation uses for
//! all convolutional layers of ResNet and U-Net.

use kaisa_tensor::{
    col2im, im2col, im2col_rows, init, syrk_chunk_rows, syrk_mode, syrk_tn, Conv2dGeom, Matrix,
    Rng, SyrkMode, Tensor4,
};

use crate::capture::{CaptureMode, KfacAble, KfacCapture};

/// A 2-D convolution layer with weight shape `(c_out, c_in·kh·kw)`.
#[derive(Debug, Clone)]
pub struct Conv2d {
    name: String,
    /// Flattened kernel weights: row `o` is output channel `o`'s kernel in
    /// channel-major, row-major order (matching im2col's patch layout).
    pub weight: Matrix,
    /// Optional per-output-channel bias.
    pub bias: Option<Vec<f32>>,
    /// Weight gradient (same shape as `weight`).
    pub grad_weight: Matrix,
    /// Bias gradient.
    pub grad_bias: Option<Vec<f32>>,
    /// K-FAC capture state.
    pub kfac: KfacCapture,
    /// Convolution geometry.
    pub geom: Conv2dGeom,
    c_in: usize,
    c_out: usize,
    patch_cache: Option<Matrix>,
    in_shape: Option<(usize, usize, usize, usize)>,
    /// Reused streamed-capture chunk buffer (`chunk x a_dim`): allocated on
    /// the first factor update and kept across updates, so capture never
    /// re-materializes (or copies, for the bias ones-column) the full patch
    /// matrix.
    capture_scratch: Option<Matrix>,
}

impl Conv2d {
    /// Kaiming-initialized square convolution.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        name: impl Into<String>,
        c_in: usize,
        c_out: usize,
        kernel: usize,
        stride: usize,
        pad: usize,
        bias: bool,
        rng: &mut Rng,
    ) -> Self {
        let patch = c_in * kernel * kernel;
        Conv2d {
            name: name.into(),
            weight: init::kaiming_normal(c_out, patch, rng),
            bias: bias.then(|| vec![0.0; c_out]),
            grad_weight: Matrix::zeros(c_out, patch),
            grad_bias: bias.then(|| vec![0.0; c_out]),
            kfac: KfacCapture::new(),
            geom: Conv2dGeom::square(kernel, stride, pad),
            c_in,
            c_out,
            patch_cache: None,
            in_shape: None,
            capture_scratch: None,
        }
    }

    /// Input channel count.
    pub fn c_in(&self) -> usize {
        self.c_in
    }

    /// Output channel count.
    pub fn c_out(&self) -> usize {
        self.c_out
    }

    /// Number of trainable parameters.
    pub fn param_count(&self) -> usize {
        self.weight.numel() + self.bias.as_ref().map_or(0, |b| b.len())
    }

    /// Forward pass over an NCHW batch.
    pub fn forward(&mut self, x: &Tensor4, train: bool) -> Tensor4 {
        assert_eq!(x.c(), self.c_in, "{}: channel mismatch", self.name);
        let (n, _, h, w) = x.shape();
        let (oh, ow) = self.geom.out_shape(h, w);
        let patches = im2col(x, &self.geom);
        // (rows, c_out)
        let mut out_mat = patches.matmul_nt(&self.weight);
        if let Some(b) = &self.bias {
            for r in 0..out_mat.rows() {
                for (v, bi) in out_mat.row_mut(r).iter_mut().zip(b) {
                    *v += *bi;
                }
            }
        }
        if train {
            if self.kfac.enabled {
                if self.kfac.mode == CaptureMode::Accumulate && syrk_mode() == SyrkMode::On {
                    // Streamed chunked im2col: accumulate aᵀa over bounded
                    // row chunks through the reused scratch — never
                    // materializing the (rows x a_dim) augmented matrix.
                    // Chunks partition the rows in ascending input order,
                    // so the sum is bitwise identical to the one-shot path.
                    let contrib = self.streamed_a_contrib(x);
                    self.kfac.record_forward_stat(contrib, n);
                } else if self.bias.is_some() {
                    let aug = patches.append_ones_column();
                    self.kfac.record_forward(&aug, n);
                } else {
                    self.kfac.record_forward(&patches, n);
                }
            }
            self.patch_cache = Some(patches);
            self.in_shape = Some(x.shape());
        }
        // Scatter (rows, c_out) -> NCHW.
        let mut out = Tensor4::zeros(n, self.c_out, oh, ow);
        for img in 0..n {
            for oy in 0..oh {
                for ox in 0..ow {
                    let row = out_mat.row((img * oh + oy) * ow + ox);
                    for (co, &v) in row.iter().enumerate() {
                        out.set(img, co, oy, ox, v);
                    }
                }
            }
        }
        out
    }

    /// Backward pass: consumes the cached patches, accumulates parameter
    /// gradients, records the K-FAC `G` statistic, and returns the input
    /// gradient.
    pub fn backward(&mut self, grad_out: &Tensor4) -> Tensor4 {
        let patches = self
            .patch_cache
            .take()
            .unwrap_or_else(|| panic!("{}: backward without forward", self.name));
        let (n, c_in, h, w) = self.in_shape.take().expect("input shape cached");
        let (gn, gc, oh, ow) = grad_out.shape();
        assert_eq!(gn, n, "{}: batch mismatch", self.name);
        assert_eq!(gc, self.c_out, "{}: grad channel mismatch", self.name);

        // Gather NCHW grads into (rows, c_out) with im2col row order.
        let mut g_mat = Matrix::zeros(n * oh * ow, self.c_out);
        for img in 0..n {
            for oy in 0..oh {
                for ox in 0..ow {
                    let row = g_mat.row_mut((img * oh + oy) * ow + ox);
                    for (co, v) in row.iter_mut().enumerate() {
                        *v = grad_out.get(img, co, oy, ox);
                    }
                }
            }
        }

        if self.kfac.enabled {
            self.kfac.record_backward(&g_mat, n);
        }

        // dW += gᵀ patches
        let dw = g_mat.matmul_tn(&patches);
        self.grad_weight.add_assign(&dw);
        if let Some(db) = &mut self.grad_bias {
            for r in 0..g_mat.rows() {
                for (dbi, gi) in db.iter_mut().zip(g_mat.row(r)) {
                    *dbi += *gi;
                }
            }
        }
        // dpatches = g W; dx = col2im(dpatches)
        let dpatches = g_mat.matmul(&self.weight);
        col2im(&dpatches, n, c_in, h, w, &self.geom)
    }

    /// Unscaled `aᵀa` over the (augmented) patch matrix of `x`, computed by
    /// streaming im2col row chunks through `capture_scratch` and
    /// accumulating SYRK contributions. The scratch holds `chunk x a_dim`
    /// floats (`KAISA_SYRK_CHUNK` rows) with the bias ones-column written
    /// once per allocation — `im2col_rows` only touches the patch columns.
    fn streamed_a_contrib(&mut self, x: &Tensor4) -> Matrix {
        let (n, _, h, w) = x.shape();
        let (oh, ow) = self.geom.out_shape(h, w);
        let rows = n * oh * ow;
        let patch_len = self.weight.cols();
        let a_dim = patch_len + usize::from(self.bias.is_some());
        let chunk = syrk_chunk_rows().min(rows.max(1));
        let fits = matches!(&self.capture_scratch, Some(s) if s.shape() == (chunk, a_dim));
        if !fits {
            let mut s = Matrix::zeros(chunk, a_dim);
            if a_dim > patch_len {
                for r in 0..chunk {
                    s.row_mut(r)[patch_len] = 1.0;
                }
            }
            self.capture_scratch = Some(s);
        }
        let scratch = self.capture_scratch.as_mut().expect("allocated above");
        let mut c = Matrix::zeros(a_dim, a_dim);
        let mut r0 = 0;
        while r0 < rows {
            let len = chunk.min(rows - r0);
            im2col_rows(x, &self.geom, r0, len, scratch);
            syrk_tn(a_dim, len, &scratch.as_slice()[..len * a_dim], c.as_mut_slice());
            r0 += len;
        }
        c
    }

    /// Zero the parameter gradients.
    pub fn zero_grad(&mut self) {
        self.grad_weight.fill_zero();
        if let Some(db) = &mut self.grad_bias {
            db.iter_mut().for_each(|v| *v = 0.0);
        }
    }
}

impl KfacAble for Conv2d {
    fn layer_name(&self) -> &str {
        &self.name
    }

    fn a_dim(&self) -> usize {
        self.weight.cols() + usize::from(self.bias.is_some())
    }

    fn g_dim(&self) -> usize {
        self.c_out
    }

    fn capture_mut(&mut self) -> &mut KfacCapture {
        &mut self.kfac
    }

    fn capture_scratch_bytes(&self) -> usize {
        self.capture_scratch.as_ref().map_or(0, |m| m.numel() * std::mem::size_of::<f32>())
    }

    #[allow(clippy::needless_range_loop)]
    fn combined_grad(&self) -> Matrix {
        match &self.grad_bias {
            None => self.grad_weight.clone(),
            Some(db) => {
                let (out, inp) = self.grad_weight.shape();
                let mut m = Matrix::zeros(out, inp + 1);
                for r in 0..out {
                    m.row_mut(r)[..inp].copy_from_slice(self.grad_weight.row(r));
                    m.row_mut(r)[inp] = db[r];
                }
                m
            }
        }
    }

    #[allow(clippy::needless_range_loop)]
    fn set_combined_grad(&mut self, grad: &Matrix) {
        let (out, inp) = self.grad_weight.shape();
        assert_eq!(grad.rows(), out, "{}: combined grad rows", self.name);
        match &mut self.grad_bias {
            None => {
                assert_eq!(grad.cols(), inp);
                self.grad_weight = grad.clone();
            }
            Some(db) => {
                assert_eq!(grad.cols(), inp + 1);
                for r in 0..out {
                    self.grad_weight.row_mut(r).copy_from_slice(&grad.row(r)[..inp]);
                    db[r] = grad.row(r)[inp];
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forward_shape() {
        let mut rng = Rng::seed_from_u64(81);
        let mut conv = Conv2d::new("c", 3, 8, 3, 1, 1, true, &mut rng);
        let x = Tensor4::randn(2, 3, 6, 6, 1.0, &mut rng);
        let y = conv.forward(&x, false);
        assert_eq!(y.shape(), (2, 8, 6, 6));
        let mut strided = Conv2d::new("s", 3, 4, 3, 2, 1, false, &mut rng);
        let y2 = strided.forward(&x, false);
        assert_eq!(y2.shape(), (2, 4, 3, 3));
    }

    #[test]
    fn gradients_match_finite_differences() {
        let mut rng = Rng::seed_from_u64(82);
        let mut conv = Conv2d::new("fd", 2, 3, 3, 1, 1, true, &mut rng);
        let x = Tensor4::randn(2, 2, 4, 4, 1.0, &mut rng);

        let loss =
            |c: &mut Conv2d, x: &Tensor4| -> f32 { c.forward(x, false).as_slice().iter().sum() };

        conv.zero_grad();
        let y = conv.forward(&x, true);
        let g = Tensor4::from_vec(y.n(), y.c(), y.h(), y.w(), vec![1.0; y.numel()]);
        let dx = conv.backward(&g);

        let h = 1e-3;
        for &(r, c) in &[(0usize, 0usize), (1, 7), (2, 17)] {
            let orig = conv.weight.get(r, c);
            conv.weight.set(r, c, orig + h);
            let lp = loss(&mut conv, &x);
            conv.weight.set(r, c, orig - h);
            let lm = loss(&mut conv, &x);
            conv.weight.set(r, c, orig);
            let fd = (lp - lm) / (2.0 * h);
            let an = conv.grad_weight.get(r, c);
            assert!((fd - an).abs() < 0.05, "dW[{r},{c}] fd={fd} an={an}");
        }
        // Input gradient at a few positions.
        let mut x2 = x.clone();
        for &(n, ch, yy, xx) in &[(0usize, 0usize, 0usize, 0usize), (1, 1, 3, 2)] {
            let orig = x2.get(n, ch, yy, xx);
            x2.set(n, ch, yy, xx, orig + h);
            let lp = loss(&mut conv, &x2);
            x2.set(n, ch, yy, xx, orig - h);
            let lm = loss(&mut conv, &x2);
            x2.set(n, ch, yy, xx, orig);
            let fd = (lp - lm) / (2.0 * h);
            let an = dx.get(n, ch, yy, xx);
            assert!((fd - an).abs() < 0.05, "dx fd={fd} an={an}");
        }
        // Bias grad = number of output positions.
        for g in conv.grad_bias.as_ref().unwrap() {
            assert!((g - (2 * 4 * 4) as f32).abs() < 1e-2);
        }
    }

    #[test]
    fn kfac_factor_dims() {
        let mut rng = Rng::seed_from_u64(83);
        let conv = Conv2d::new("k", 16, 32, 3, 1, 1, false, &mut rng);
        assert_eq!(conv.a_dim(), 16 * 9);
        assert_eq!(conv.g_dim(), 32);
        let with_bias = Conv2d::new("kb", 16, 32, 3, 1, 1, true, &mut rng);
        assert_eq!(with_bias.a_dim(), 16 * 9 + 1);
    }

    #[test]
    fn streamed_capture_matches_full_path_bitwise() {
        // The streamed chunked-im2col SYRK capture must reproduce the
        // one-shot augmented-patch-matrix path bit for bit, for every
        // chunk size and with/without bias.
        use kaisa_tensor::set_syrk_chunk_rows;
        let mut rng = Rng::seed_from_u64(85);
        let x = Tensor4::randn(2, 2, 5, 4, 1.0, &mut rng);
        for has_bias in [true, false] {
            let mut reference = Conv2d::new("ref", 2, 3, 3, 1, 1, has_bias, &mut rng);
            reference.kfac.enabled = true;
            // Reference: the pre-SYRK full path, computed explicitly.
            let patches = im2col(&x, &reference.geom);
            let aug = if has_bias { patches.append_ones_column() } else { patches };
            let mut expect = aug.matmul_tn(&aug);
            expect.scale(1.0 / 2.0);
            for chunk in [1usize, 3, 16, 1 << 20] {
                set_syrk_chunk_rows(chunk);
                let mut conv = reference.clone();
                let y = conv.forward(&x, true);
                let g = Tensor4::randn(y.n(), y.c(), y.h(), y.w(), 0.1, &mut rng);
                let _ = conv.backward(&g);
                let stats = conv.kfac.take_stats().unwrap();
                for (a, b) in stats.a_stat.as_slice().iter().zip(expect.as_slice()) {
                    assert_eq!(a.to_bits(), b.to_bits(), "bias={has_bias} chunk={chunk}");
                }
            }
            set_syrk_chunk_rows(0);
        }
    }

    #[test]
    fn capture_scratch_is_reused_between_updates() {
        // The streamed path must allocate its chunk buffer once and keep it
        // across factor updates instead of re-materializing per call.
        let mut rng = Rng::seed_from_u64(86);
        let mut conv = Conv2d::new("scratch", 2, 3, 3, 1, 1, true, &mut rng);
        conv.kfac.enabled = true;
        let x = Tensor4::randn(2, 2, 4, 4, 1.0, &mut rng);
        assert_eq!(conv.capture_scratch_bytes(), 0);
        let _ = conv.forward(&x, true);
        let after_first = conv.capture_scratch_bytes();
        if kaisa_tensor::syrk_mode() == SyrkMode::On {
            let rows = 2 * 4 * 4;
            let chunk = syrk_chunk_rows().min(rows);
            assert_eq!(after_first, chunk * conv.a_dim() * std::mem::size_of::<f32>());
            let ptr_first = conv.capture_scratch.as_ref().unwrap().as_slice().as_ptr();
            conv.patch_cache = None;
            let _ = conv.forward(&x, true);
            assert_eq!(conv.capture_scratch_bytes(), after_first);
            let ptr_second = conv.capture_scratch.as_ref().unwrap().as_slice().as_ptr();
            assert_eq!(ptr_first, ptr_second, "scratch must be reused, not reallocated");
        }
    }

    #[test]
    fn capture_produces_stats() {
        let mut rng = Rng::seed_from_u64(84);
        let mut conv = Conv2d::new("cap", 2, 3, 3, 1, 1, true, &mut rng);
        conv.kfac.enabled = true;
        let x = Tensor4::randn(2, 2, 4, 4, 1.0, &mut rng);
        let y = conv.forward(&x, true);
        let g = Tensor4::randn(y.n(), y.c(), y.h(), y.w(), 0.1, &mut rng);
        let _ = conv.backward(&g);
        let stats = conv.kfac.take_stats().unwrap();
        assert_eq!(stats.a_stat.shape(), (19, 19));
        assert_eq!(stats.g_stat.shape(), (3, 3));
        assert!(stats.a_stat.is_finite() && stats.g_stat.is_finite());
    }
}
