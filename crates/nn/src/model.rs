//! The `Model` trait tying layers into trainable networks.
//!
//! Models expose three surfaces:
//!
//! 1. **Task surface** — `forward_backward` / `evaluate` with task-specific
//!    input/target types.
//! 2. **First-order surface** — flat parameter/gradient vectors with a named
//!    per-layer segmentation (what SGD/Adam/LAMB and the data-parallel
//!    gradient allreduce consume).
//! 3. **Second-order surface** — the list of K-FAC-preconditionable layers
//!    ([`crate::KfacAble`]), mirroring how KAISA registers `Conv2d` and
//!    `Linear` modules of a PyTorch model (paper Listing 1).

use kaisa_tensor::Matrix;

use crate::capture::KfacAble;

/// Loss/metric pair returned by training and evaluation steps.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EvalResult {
    /// Mean loss over the batch.
    pub loss: f32,
    /// Task metric (accuracy, Dice, masked accuracy, ...), in `[0, 1]`.
    pub metric: f32,
}

/// One named segment of the flat parameter vector.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParamSegment {
    /// Layer-qualified parameter name.
    pub name: String,
    /// Number of elements.
    pub len: usize,
}

/// Mutable view of one parameter tensor and its gradient.
pub enum ParamRef<'a> {
    /// A matrix-shaped parameter (weights).
    Mat {
        /// The parameter values.
        w: &'a mut Matrix,
        /// The accumulated gradient.
        g: &'a mut Matrix,
    },
    /// A vector-shaped parameter (biases, norm scales/shifts).
    Vec {
        /// The parameter values.
        w: &'a mut Vec<f32>,
        /// The accumulated gradient.
        g: &'a mut Vec<f32>,
    },
}

/// A trainable network.
pub trait Model: Send {
    /// Input batch type (dense matrix, NCHW tensor, token batch, ...).
    type Input;
    /// Target type (class labels, masks, ...).
    type Target;

    /// Human-readable model name.
    fn name(&self) -> &str;

    /// Run forward and backward on one batch, accumulating parameter
    /// gradients (of the mean loss) and K-FAC statistics when capture is on.
    fn forward_backward(&mut self, x: &Self::Input, y: &Self::Target) -> EvalResult;

    /// Evaluate without touching gradients or capture state.
    fn evaluate(&mut self, x: &Self::Input, y: &Self::Target) -> EvalResult;

    /// Visit every parameter/gradient pair in a stable order.
    fn for_each_param(&mut self, f: &mut dyn FnMut(&str, ParamRef<'_>));

    /// The K-FAC-preconditionable layers, in a stable order.
    fn kfac_layers(&mut self) -> Vec<&mut dyn KfacAble>;

    /// Zero all parameter gradients.
    fn zero_grad(&mut self) {
        self.for_each_param(&mut |_, p| match p {
            ParamRef::Mat { g, .. } => g.fill_zero(),
            ParamRef::Vec { g, .. } => g.iter_mut().for_each(|v| *v = 0.0),
        });
    }

    /// Flatten all parameters into one vector (stable order).
    fn params_flat(&mut self) -> Vec<f32> {
        let mut out = Vec::new();
        self.for_each_param(&mut |_, p| match p {
            ParamRef::Mat { w, .. } => out.extend_from_slice(w.as_slice()),
            ParamRef::Vec { w, .. } => out.extend_from_slice(w),
        });
        out
    }

    /// Overwrite all parameters from a flat vector.
    fn set_params_flat(&mut self, flat: &[f32]) {
        let mut pos = 0usize;
        self.for_each_param(&mut |_, p| match p {
            ParamRef::Mat { w, .. } => {
                let len = w.numel();
                w.as_mut_slice().copy_from_slice(&flat[pos..pos + len]);
                pos += len;
            }
            ParamRef::Vec { w, .. } => {
                let len = w.len();
                w.copy_from_slice(&flat[pos..pos + len]);
                pos += len;
            }
        });
        assert_eq!(pos, flat.len(), "flat parameter length mismatch");
    }

    /// Flatten all gradients into one vector (same order as parameters).
    fn grads_flat(&mut self) -> Vec<f32> {
        let mut out = Vec::new();
        self.for_each_param(&mut |_, p| match p {
            ParamRef::Mat { g, .. } => out.extend_from_slice(g.as_slice()),
            ParamRef::Vec { g, .. } => out.extend_from_slice(g),
        });
        out
    }

    /// Overwrite all gradients from a flat vector (after an allreduce).
    fn set_grads_flat(&mut self, flat: &[f32]) {
        let mut pos = 0usize;
        self.for_each_param(&mut |_, p| match p {
            ParamRef::Mat { g, .. } => {
                let len = g.numel();
                g.as_mut_slice().copy_from_slice(&flat[pos..pos + len]);
                pos += len;
            }
            ParamRef::Vec { g, .. } => {
                let len = g.len();
                g.copy_from_slice(&flat[pos..pos + len]);
                pos += len;
            }
        });
        assert_eq!(pos, flat.len(), "flat gradient length mismatch");
    }

    /// Named segmentation of the flat vectors (LAMB needs per-layer norms).
    fn param_segments(&mut self) -> Vec<ParamSegment> {
        let mut out = Vec::new();
        self.for_each_param(&mut |name, p| {
            let len = match p {
                ParamRef::Mat { w, .. } => w.numel(),
                ParamRef::Vec { w, .. } => w.len(),
            };
            out.push(ParamSegment { name: name.to_string(), len });
        });
        out
    }

    /// Total trainable parameter count.
    fn param_count(&mut self) -> usize {
        let mut n = 0usize;
        self.for_each_param(&mut |_, p| {
            n += match p {
                ParamRef::Mat { w, .. } => w.numel(),
                ParamRef::Vec { w, .. } => w.len(),
            };
        });
        n
    }

    /// Enable or disable K-FAC statistic capture on every preconditionable
    /// layer (the preconditioner toggles this around factor-update steps).
    fn set_kfac_capture(&mut self, enabled: bool) {
        for layer in self.kfac_layers() {
            layer.capture_mut().enabled = enabled;
        }
    }
}

/// Visit a [`crate::Linear`] layer's parameters (helper for model impls).
pub(crate) fn visit_linear(
    layer: &mut crate::Linear,
    prefix: &str,
    f: &mut dyn FnMut(&str, ParamRef<'_>),
) {
    f(
        &format!("{prefix}.weight"),
        ParamRef::Mat { w: &mut layer.weight, g: &mut layer.grad_weight },
    );
    if let (Some(b), Some(gb)) = (&mut layer.bias, &mut layer.grad_bias) {
        f(&format!("{prefix}.bias"), ParamRef::Vec { w: b, g: gb });
    }
}

/// Visit a [`crate::Conv2d`] layer's parameters (helper for model impls).
pub(crate) fn visit_conv(
    layer: &mut crate::Conv2d,
    prefix: &str,
    f: &mut dyn FnMut(&str, ParamRef<'_>),
) {
    f(
        &format!("{prefix}.weight"),
        ParamRef::Mat { w: &mut layer.weight, g: &mut layer.grad_weight },
    );
    if let (Some(b), Some(gb)) = (&mut layer.bias, &mut layer.grad_bias) {
        f(&format!("{prefix}.bias"), ParamRef::Vec { w: b, g: gb });
    }
}

/// Visit a [`crate::norm::BatchNorm2d`] layer's parameters.
pub(crate) fn visit_bn(
    layer: &mut crate::norm::BatchNorm2d,
    prefix: &str,
    f: &mut dyn FnMut(&str, ParamRef<'_>),
) {
    f(&format!("{prefix}.gamma"), ParamRef::Vec { w: &mut layer.gamma, g: &mut layer.grad_gamma });
    f(&format!("{prefix}.beta"), ParamRef::Vec { w: &mut layer.beta, g: &mut layer.grad_beta });
}

/// Visit a [`crate::norm::LayerNorm`] layer's parameters.
pub(crate) fn visit_ln(
    layer: &mut crate::norm::LayerNorm,
    prefix: &str,
    f: &mut dyn FnMut(&str, ParamRef<'_>),
) {
    f(&format!("{prefix}.gamma"), ParamRef::Vec { w: &mut layer.gamma, g: &mut layer.grad_gamma });
    f(&format!("{prefix}.beta"), ParamRef::Vec { w: &mut layer.beta, g: &mut layer.grad_beta });
}
