//! Multi-head self-attention with an explicit backward pass.
//!
//! BERT applies K-FAC to every Linear layer inside the transformer (paper
//! Section 5.2); in this block those are the Q/K/V projections and the output
//! projection. The softmax-attention core itself has no parameters and is
//! differentiated manually.

use kaisa_tensor::{ops, Matrix, Rng};

use crate::linear::Linear;

/// Multi-head self-attention over a `(batch·seq, d_model)` activation
/// matrix.
#[derive(Debug, Clone)]
pub struct MultiHeadAttention {
    /// Query projection (K-FAC preconditionable).
    pub wq: Linear,
    /// Key projection (K-FAC preconditionable).
    pub wk: Linear,
    /// Value projection (K-FAC preconditionable).
    pub wv: Linear,
    /// Output projection (K-FAC preconditionable).
    pub wo: Linear,
    heads: usize,
    d_model: usize,
    cache: Option<AttnCache>,
}

#[derive(Debug, Clone)]
struct AttnCache {
    q: Matrix,
    k: Matrix,
    v: Matrix,
    /// Softmax attention matrices, one `(seq, seq)` per (batch, head).
    attn: Vec<Matrix>,
    batch: usize,
    seq: usize,
}

/// Copy block `rows x cols` at `(r0, c0)` out of `src`.
fn block(src: &Matrix, r0: usize, c0: usize, rows: usize, cols: usize) -> Matrix {
    let mut out = Matrix::zeros(rows, cols);
    for r in 0..rows {
        out.row_mut(r).copy_from_slice(&src.row(r0 + r)[c0..c0 + cols]);
    }
    out
}

/// Add `blk` into `dst` at `(r0, c0)`.
fn add_block(dst: &mut Matrix, blk: &Matrix, r0: usize, c0: usize) {
    for r in 0..blk.rows() {
        let drow = dst.row_mut(r0 + r);
        for (c, &v) in blk.row(r).iter().enumerate() {
            drow[c0 + c] += v;
        }
    }
}

impl MultiHeadAttention {
    /// New attention block. `d_model` must be divisible by `heads`.
    pub fn new(name: &str, d_model: usize, heads: usize, rng: &mut Rng) -> Self {
        assert_eq!(d_model % heads, 0, "d_model must divide evenly into heads");
        MultiHeadAttention {
            wq: Linear::new(format!("{name}.wq"), d_model, d_model, true, rng),
            wk: Linear::new(format!("{name}.wk"), d_model, d_model, true, rng),
            wv: Linear::new(format!("{name}.wv"), d_model, d_model, true, rng),
            wo: Linear::new(format!("{name}.wo"), d_model, d_model, true, rng),
            heads,
            d_model,
            cache: None,
        }
    }

    /// Head count.
    pub fn heads(&self) -> usize {
        self.heads
    }

    /// Forward pass. `x` is `(batch·seq, d_model)` with sequence-major rows
    /// per batch element.
    pub fn forward(&mut self, x: &Matrix, batch: usize, seq: usize, train: bool) -> Matrix {
        assert_eq!(x.rows(), batch * seq, "attention input row mismatch");
        assert_eq!(x.cols(), self.d_model, "attention input width mismatch");
        let dh = self.d_model / self.heads;
        let scale = 1.0 / (dh as f32).sqrt();

        let q = self.wq.forward(x, train);
        let k = self.wk.forward(x, train);
        let v = self.wv.forward(x, train);

        let mut ctx = Matrix::zeros(batch * seq, self.d_model);
        let mut attn_cache = Vec::with_capacity(batch * self.heads);
        for b in 0..batch {
            for h in 0..self.heads {
                let qb = block(&q, b * seq, h * dh, seq, dh);
                let kb = block(&k, b * seq, h * dh, seq, dh);
                let vb = block(&v, b * seq, h * dh, seq, dh);
                let mut scores = qb.matmul_nt(&kb);
                scores.scale(scale);
                let mut attn = scores;
                ops::softmax_rows(attn.as_mut_slice(), seq, seq);
                let ctx_b = attn.matmul(&vb);
                add_block(&mut ctx, &ctx_b, b * seq, h * dh);
                if train {
                    attn_cache.push(attn);
                }
            }
        }
        let out = self.wo.forward(&ctx, train);
        if train {
            self.cache = Some(AttnCache { q, k, v, attn: attn_cache, batch, seq });
        }
        out
    }

    /// Backward pass; returns the gradient with respect to `x`.
    pub fn backward(&mut self, grad_out: &Matrix) -> Matrix {
        let cache = self.cache.take().expect("attention backward without forward");
        let AttnCache { q, k, v, attn, batch, seq } = cache;
        let dh = self.d_model / self.heads;
        let scale = 1.0 / (dh as f32).sqrt();

        let dctx = self.wo.backward(grad_out);
        let mut dq = Matrix::zeros(batch * seq, self.d_model);
        let mut dk = Matrix::zeros(batch * seq, self.d_model);
        let mut dv = Matrix::zeros(batch * seq, self.d_model);

        for b in 0..batch {
            for h in 0..self.heads {
                let a = &attn[b * self.heads + h];
                let qb = block(&q, b * seq, h * dh, seq, dh);
                let kb = block(&k, b * seq, h * dh, seq, dh);
                let vb = block(&v, b * seq, h * dh, seq, dh);
                let dctx_b = block(&dctx, b * seq, h * dh, seq, dh);

                // ctx = A · V
                let dv_b = a.matmul_tn(&dctx_b);
                let da = dctx_b.matmul_nt(&vb);

                // Softmax Jacobian: dS_ij = A_ij (dA_ij - Σ_k dA_ik A_ik).
                let mut ds = Matrix::zeros(seq, seq);
                for r in 0..seq {
                    let arow = a.row(r);
                    let darow = da.row(r);
                    let dot: f32 = arow.iter().zip(darow).map(|(x, y)| x * y).sum();
                    for c in 0..seq {
                        ds.set(r, c, arow[c] * (darow[c] - dot));
                    }
                }
                ds.scale(scale);

                // S = scale · Q Kᵀ
                let dq_b = ds.matmul(&kb);
                let dk_b = ds.matmul_tn(&qb);
                add_block(&mut dq, &dq_b, b * seq, h * dh);
                add_block(&mut dk, &dk_b, b * seq, h * dh);
                add_block(&mut dv, &dv_b, b * seq, h * dh);
            }
        }

        let mut dx = self.wq.backward(&dq);
        dx.add_assign(&self.wk.backward(&dk));
        dx.add_assign(&self.wv.backward(&dv));
        dx
    }

    /// Zero all projection gradients.
    pub fn zero_grad(&mut self) {
        self.wq.zero_grad();
        self.wk.zero_grad();
        self.wv.zero_grad();
        self.wo.zero_grad();
    }

    /// Total trainable parameters.
    pub fn param_count(&self) -> usize {
        self.wq.param_count()
            + self.wk.param_count()
            + self.wv.param_count()
            + self.wo.param_count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kaisa_tensor::Rng;

    #[test]
    fn forward_shape_preserved() {
        let mut rng = Rng::seed_from_u64(121);
        let mut mha = MultiHeadAttention::new("t", 16, 4, &mut rng);
        let x = Matrix::randn(2 * 5, 16, 1.0, &mut rng);
        let y = mha.forward(&x, 2, 5, false);
        assert_eq!(y.shape(), (10, 16));
    }

    #[test]
    fn attention_rows_sum_to_one_internally() {
        // Equal keys -> uniform attention -> context equals the mean value.
        let mut rng = Rng::seed_from_u64(122);
        let mut mha = MultiHeadAttention::new("u", 8, 2, &mut rng);
        // Make wk produce identical keys by zeroing its weight and bias.
        mha.wk.weight.fill_zero();
        mha.wk.bias = Some(vec![0.0; 8]);
        // Identity-ish value/output paths for inspectability.
        mha.wv.weight = Matrix::identity(8);
        mha.wv.bias = Some(vec![0.0; 8]);
        mha.wo.weight = Matrix::identity(8);
        mha.wo.bias = Some(vec![0.0; 8]);
        let x = Matrix::randn(4, 8, 1.0, &mut rng); // batch=1, seq=4
        let y = mha.forward(&x, 1, 4, false);
        // Uniform attention: every output row equals the column means of x.
        for c in 0..8 {
            let mean: f32 = (0..4).map(|r| x.get(r, c)).sum::<f32>() / 4.0;
            for r in 0..4 {
                assert!((y.get(r, c) - mean).abs() < 1e-4, "row {r} col {c}");
            }
        }
    }

    #[test]
    fn backward_matches_finite_differences() {
        let mut rng = Rng::seed_from_u64(123);
        let mut mha = MultiHeadAttention::new("fd", 8, 2, &mut rng);
        let x = Matrix::randn(6, 8, 0.7, &mut rng); // batch=2, seq=3

        let loss = |m: &mut MultiHeadAttention, x: &Matrix| -> f32 {
            m.forward(x, 2, 3, false).as_slice().iter().map(|v| v * v / 2.0).sum()
        };

        mha.zero_grad();
        let y = mha.forward(&x, 2, 3, true);
        let dx = mha.backward(&y); // dL/dy = y

        let h = 1e-3;
        for &(r, c) in &[(0usize, 0usize), (3, 5), (5, 7)] {
            let mut xp = x.clone();
            xp.set(r, c, x.get(r, c) + h);
            let lp = loss(&mut mha, &xp);
            let mut xm = x.clone();
            xm.set(r, c, x.get(r, c) - h);
            let lm = loss(&mut mha, &xm);
            let fd = (lp - lm) / (2.0 * h);
            let an = dx.get(r, c);
            assert!((fd - an).abs() < 2e-2, "dx[{r},{c}] fd={fd} an={an}");
        }

        // Also spot-check a projection weight gradient.
        let (wr, wc) = (1usize, 2usize);
        let orig = mha.wq.weight.get(wr, wc);
        mha.wq.weight.set(wr, wc, orig + h);
        let lp = loss(&mut mha, &x);
        mha.wq.weight.set(wr, wc, orig - h);
        let lm = loss(&mut mha, &x);
        mha.wq.weight.set(wr, wc, orig);
        let fd = (lp - lm) / (2.0 * h);
        let an = mha.wq.grad_weight.get(wr, wc);
        assert!((fd - an).abs() < 2e-2, "dWq fd={fd} an={an}");
    }
}
