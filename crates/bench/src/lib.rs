//! # kaisa-bench
//!
//! Shared helpers for the table/figure regeneration binaries and Criterion
//! micro-benchmarks. One binary exists per table and figure of the paper's
//! evaluation section; see `DESIGN.md` for the experiment index and
//! `EXPERIMENTS.md` for paper-vs-measured results.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Render a simple aligned text table (header + rows) for figure binaries.
pub fn render_table(header: &[&str], rows: &[Vec<String>]) -> String {
    let cols = header.len();
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        assert_eq!(row.len(), cols, "row width mismatch");
        for (w, cell) in widths.iter_mut().zip(row) {
            *w = (*w).max(cell.len());
        }
    }
    let mut out = String::new();
    let fmt_row = |cells: Vec<&str>, widths: &[usize]| -> String {
        cells
            .iter()
            .zip(widths)
            .map(|(c, w)| format!("{c:>w$}", w = w))
            .collect::<Vec<_>>()
            .join("  ")
    };
    out.push_str(&fmt_row(header.to_vec(), &widths));
    out.push('\n');
    out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (cols - 1)));
    out.push('\n');
    for row in rows {
        out.push_str(&fmt_row(row.iter().map(String::as_str).collect(), &widths));
        out.push('\n');
    }
    out
}

/// An ASCII sparkline for series printed by the figure binaries.
pub fn sparkline(values: &[f64]) -> String {
    const BARS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
    let max = values.iter().cloned().fold(f64::MIN, f64::max);
    let min = values.iter().cloned().fold(f64::MAX, f64::min);
    let span = (max - min).max(1e-12);
    values.iter().map(|v| BARS[(((v - min) / span) * 7.0).round() as usize]).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_alignment() {
        let t = render_table(
            &["name", "value"],
            &[vec!["a".into(), "1".into()], vec!["longer".into(), "22".into()]],
        );
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("name"));
        assert!(lines[3].ends_with("22"));
    }

    #[test]
    fn sparkline_range() {
        let s = sparkline(&[0.0, 0.5, 1.0]);
        assert_eq!(s.chars().count(), 3);
        assert!(s.starts_with('▁'));
        assert!(s.ends_with('█'));
    }
}
