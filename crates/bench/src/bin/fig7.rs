//! Figure 7: per-stage time inside `KFAC.step()` across `grad_worker_frac`
//! — simulated for ResNet-50 on 64 V100s, and measured live from the
//! preconditioner's stage timers on 8 thread ranks.
//!
//! ```sh
//! cargo run --release -p kaisa-bench --bin fig7
//! ```

use kaisa_bench::render_table;
use kaisa_comm::{Communicator, ThreadComm};
use kaisa_core::{Kfac, KfacConfig, KFAC_STAGES};
use kaisa_data::{Dataset, GaussianBlobs, ShardSampler};
use kaisa_nn::models::Mlp;
use kaisa_nn::Model;
use kaisa_sim::experiments::{fig7, FIG6_FRACS};
use kaisa_tensor::Rng;

fn simulated() {
    println!("== Simulated (ResNet-50, 64 x V100), ms per average iteration ==\n");
    let rows = fig7();
    let mut table = Vec::new();
    for stage in [
        "compute factors",
        "communicate factors",
        "compute eigendecomp",
        "communicate eigendecomp",
        "precondition gradient",
        "communicate gradient",
        "scale and update grads",
    ] {
        let mut row = vec![stage.to_string()];
        for &frac in &FIG6_FRACS {
            let v = rows
                .iter()
                .find(|r| r.stage == stage && (r.frac - frac).abs() < 1e-12)
                .map(|r| r.seconds)
                .unwrap_or(0.0);
            row.push(format!("{:.2}", v * 1e3));
        }
        table.push(row);
    }
    let mut header: Vec<String> = vec!["stage".into()];
    header.extend(FIG6_FRACS.iter().map(|f| format!("{f:.3}")));
    let header_refs: Vec<&str> = header.iter().map(String::as_str).collect();
    println!("{}", render_table(&header_refs, &table));
    println!("(gradient broadcast falls to 0 at frac=1 while preconditioning rises — Figure 7's tradeoff)\n");
}

fn live() {
    println!("== Live stage timers (MLP on 8 thread ranks), ms per step ==\n");
    let world = 8;
    let dataset = GaussianBlobs::generate(512, 32, 4, 0.4, 130);
    let mut table: Vec<Vec<String>> = KFAC_STAGES.iter().map(|s| vec![s.to_string()]).collect();
    let fracs = [1.0 / 8.0, 0.5, 1.0];
    for &frac in &fracs {
        let mut results = ThreadComm::run(world, |comm| {
            let mut model = Mlp::new(&[32, 64, 48, 4], &mut Rng::seed_from_u64(31));
            let cfg = KfacConfig::builder()
                .grad_worker_frac(frac)
                .factor_update_freq(5)
                .inv_update_freq(10)
                .build();
            let mut kfac = Kfac::new(cfg, &mut model, comm);
            let sampler = ShardSampler::new(dataset.len(), world, comm.rank(), 8, 3);
            for epoch in 0..3 {
                for indices in sampler.epoch_batches(epoch) {
                    let (x, y) = dataset.batch(&indices);
                    kfac.prepare(&mut model);
                    model.zero_grad();
                    let _ = model.forward_backward(&x, &y);
                    kaisa_trainer::allreduce_gradients(&mut model, comm, 1);
                    kfac.step(&mut model, comm, 0.05);
                }
            }
            kfac.stage_times().averages()
        });
        let avgs = results.swap_remove(0);
        for (row, avg) in table.iter_mut().zip(avgs) {
            row.push(format!("{:.3}", avg * 1e3));
        }
    }
    let mut header: Vec<String> = vec!["stage".into()];
    header.extend(fracs.iter().map(|f| format!("frac {f:.3}")));
    let header_refs: Vec<&str> = header.iter().map(String::as_str).collect();
    println!("{}", render_table(&header_refs, &table));
}

fn main() {
    println!("Figure 7 — time per KFAC.step() section vs grad_worker_frac\n");
    simulated();
    live();
}
