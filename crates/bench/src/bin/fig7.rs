//! Figure 7: per-stage time inside `KFAC.step()` across `grad_worker_frac`
//! — simulated for ResNet-50 on 64 V100s, and measured live from the
//! preconditioner's stage timers on 8 thread ranks, comparing the serial
//! executor against the pipelined (compute/comm-overlap) executor.
//!
//! ```sh
//! cargo run --release -p kaisa-bench --bin fig7
//! ```

use kaisa_bench::render_table;
use kaisa_comm::{
    ClusterNetwork, CollectiveCostModel, CommTag, Communicator, MeterSnapshot, ThreadComm,
};
use kaisa_core::{
    auto_strategy, modeled_cross_iter_makespans, modeled_depth_makespans,
    modeled_strategy_makespans, plan_assignments, priority_sweep_order, AssignmentStrategy,
    ComputeRates, FactorReduction, Kfac, KfacConfig, StepModel, StepModelOptions, KFAC_STAGES,
};
use kaisa_data::{Dataset, GaussianBlobs, ShardSampler};
use kaisa_nn::models::Mlp;
use kaisa_nn::Model;
use kaisa_sim::experiments::{fig7, FIG6_FRACS};
use kaisa_tensor::Rng;

fn simulated() {
    println!("== Simulated (ResNet-50, 64 x V100), ms per average iteration ==\n");
    let rows = fig7();
    let mut table = Vec::new();
    for stage in [
        "compute factors",
        "communicate factors",
        "compute eigendecomp",
        "communicate eigendecomp",
        "precondition gradient",
        "communicate gradient",
        "scale and update grads",
    ] {
        let mut row = vec![stage.to_string()];
        for &frac in &FIG6_FRACS {
            let v = rows
                .iter()
                .find(|r| r.stage == stage && (r.frac - frac).abs() < 1e-12)
                .map(|r| r.seconds)
                .unwrap_or(0.0);
            row.push(format!("{:.2}", v * 1e3));
        }
        table.push(row);
    }
    let mut header: Vec<String> = vec!["stage".into()];
    header.extend(FIG6_FRACS.iter().map(|f| format!("{f:.3}")));
    let header_refs: Vec<&str> = header.iter().map(String::as_str).collect();
    println!("{}", render_table(&header_refs, &table));
    println!("(gradient broadcast falls to 0 at frac=1 while preconditioning rises — Figure 7's tradeoff)\n");
}

struct LiveRun {
    averages: [f64; 7],
    kfac_seconds: f64,
    steps: u64,
    layer_report: String,
    meter: MeterSnapshot,
}

fn run_live(world: usize, frac: f64, pipelined: bool, sharded: bool, runtime: bool) -> LiveRun {
    run_live_depth(world, frac, pipelined, sharded, runtime, 1)
}

fn run_live_depth(
    world: usize,
    frac: f64,
    pipelined: bool,
    sharded: bool,
    runtime: bool,
    depth: usize,
) -> LiveRun {
    let dataset = GaussianBlobs::generate(512, 32, 4, 0.4, 130);
    let mut results = ThreadComm::run(world, |comm| {
        let mut model = Mlp::new(&[32, 64, 48, 4], &mut Rng::seed_from_u64(31));
        let cfg = KfacConfig::builder()
            .grad_worker_frac(frac)
            .factor_update_freq(5)
            .inv_update_freq(10)
            .pipelined(pipelined)
            .sharded_factors(sharded)
            .async_runtime(runtime)
            .cross_iter_depth(depth)
            .build();
        let mut kfac = Kfac::new(cfg, &mut model, comm);
        let sampler = ShardSampler::new(dataset.len(), world, comm.rank(), 8, 3);
        for epoch in 0..3 {
            for indices in sampler.epoch_batches(epoch) {
                let (x, y) = dataset.batch(&indices);
                kfac.prepare(&mut model);
                model.zero_grad();
                let _ = model.forward_backward(&x, &y);
                kaisa_trainer::allreduce_gradients(&mut model, comm, 1);
                kfac.step(&mut model, comm, 0.05);
            }
        }
        kfac.flush(comm);
        comm.barrier();
        let times = kfac.stage_times();
        LiveRun {
            averages: times.averages(),
            kfac_seconds: times.total_seconds(),
            steps: times.steps,
            layer_report: times.layer_report(),
            meter: comm.meter_snapshot(),
        }
    });
    results.swap_remove(0)
}

fn live() {
    println!("== Live stage timers (MLP on 8 thread ranks), ms per step ==\n");
    let world = 8;
    let fracs = [1.0 / 8.0, 0.5, 1.0];
    let mut stage_table: Vec<Vec<String>> =
        KFAC_STAGES.iter().map(|s| vec![s.to_string()]).collect();
    let mut totals: Vec<Vec<String>> = vec![
        vec!["serial".to_string()],
        vec!["pipelined".to_string()],
        vec!["runtime".to_string()],
    ];
    let mut sample: Option<LiveRun> = None;
    for &frac in &fracs {
        let serial = run_live(world, frac, false, false, false);
        let pipelined = run_live(world, frac, true, false, false);
        let runtime = run_live(world, frac, false, false, true);
        for (row, avg) in stage_table.iter_mut().zip(pipelined.averages) {
            row.push(format!("{:.3}", avg * 1e3));
        }
        totals[0].push(format!("{:.3}", serial.kfac_seconds / serial.steps.max(1) as f64 * 1e3));
        totals[1]
            .push(format!("{:.3}", pipelined.kfac_seconds / pipelined.steps.max(1) as f64 * 1e3));
        totals[2].push(format!("{:.3}", runtime.kfac_seconds / runtime.steps.max(1) as f64 * 1e3));
        if (frac - 0.5).abs() < 1e-12 {
            sample = Some(pipelined);
        }
    }
    let mut header: Vec<String> = vec!["stage (pipelined)".into()];
    header.extend(fracs.iter().map(|f| format!("frac {f:.3}")));
    let header_refs: Vec<&str> = header.iter().map(String::as_str).collect();
    println!("{}", render_table(&header_refs, &stage_table));

    let mut header: Vec<String> = vec!["KFAC.step total".into()];
    header.extend(fracs.iter().map(|f| format!("frac {f:.3}")));
    let header_refs: Vec<&str> = header.iter().map(String::as_str).collect();
    println!("{}", render_table(&header_refs, &totals));
    println!("(thread-rank timers share host cores, so wall-clock overlap is bounded; the cost model below isolates the schedule effect)\n");

    if let Some(run) = sample {
        println!("== Per-layer stage breakdown (frac 0.5, pipelined), ms per step ==\n");
        println!("{}", run.layer_report);
        println!("== Metered K-FAC traffic by issuing stage (frac 0.5, world total) ==\n");
        let rows: Vec<Vec<String>> = CommTag::ALL
            .iter()
            .map(|&tag| {
                vec![
                    format!("{tag:?}"),
                    format!("{}", run.meter.tag_calls(tag)),
                    format!("{}", run.meter.tag_bytes(tag)),
                ]
            })
            .collect();
        println!("{}", render_table(&["stage tag", "collectives", "bytes"], &rows));
    }
}

/// ResNetMini-shaped factor dims (width 32, 2+2 blocks): the acceptance
/// configuration for the overlap win on a comm-bound network.
fn resnet_mini_dims() -> Vec<(usize, usize)> {
    vec![
        (27, 32),
        (288, 32),
        (288, 32),
        (288, 32),
        (288, 32),
        (288, 64),
        (576, 64),
        (32, 64),
        (576, 64),
        (576, 64),
        (65, 10),
    ]
}

fn cost_model() {
    println!("== α–β cost model: serial vs pipelined vs runtime step makespan (world 8) ==\n");
    let dims = resnet_mini_dims();
    let world = 8;
    let mut rows = Vec::new();
    for frac in [1.0 / world as f64, 0.5, 1.0] {
        let plan = plan_assignments(&dims, world, frac, AssignmentStrategy::ComputeLpt);
        for (name, net) in [
            ("10GbE", ClusterNetwork::ethernet_10g()),
            ("IB-EDR", ClusterNetwork::infiniband_edr()),
        ] {
            let cost = CollectiveCostModel::new(net);
            let m = StepModel::new(&dims, &plan, &cost, &ComputeRates::default(), 4, false);
            rows.push(vec![
                format!("{frac:.3}"),
                name.to_string(),
                format!("{:.3}", m.serial_seconds() * 1e3),
                format!("{:.3}", m.pipelined_seconds() * 1e3),
                format!("{:.3}", m.runtime_seconds() * 1e3),
                format!("{:.2}x", m.overlap_speedup()),
            ]);
        }
    }
    println!(
        "{}",
        render_table(
            &["frac", "network", "serial ms", "pipelined ms", "runtime ms", "speedup"],
            &rows
        )
    );

    println!("== Strategy dispatch: modeled amortized ms/iter (batch 32, F=10, K=100) ==\n");
    let mut rows = Vec::new();
    for world in [8usize, 64] {
        for (name, net) in [
            ("10GbE", ClusterNetwork::ethernet_10g()),
            ("IB-EDR", ClusterNetwork::infiniband_edr()),
        ] {
            let table = modeled_strategy_makespans(&dims, world, net, 32, 10, 100);
            let pick = auto_strategy(&dims, world, net);
            let mut row = vec![format!("{world}"), name.to_string()];
            for &(_, secs) in &table {
                row.push(format!("{:.3}", secs * 1e3));
            }
            row.push(pick.to_string());
            rows.push(row);
        }
    }
    println!(
        "{}",
        render_table(
            &["world", "network", "MEM-OPT", "HYBRID-OPT", "COMM-OPT", "LOCAL-OPT", "auto pick"],
            &rows
        )
    );
    println!("(LOCAL-OPT is DP-KFAC's zero-factor-traffic point — shown for the tradeoff, never auto-picked because it changes the update)\n");

    println!("== Cross-iteration window: two-iteration makespan, pipelined vs runtime ==\n");
    let mut rows = Vec::new();
    for world in [4usize, 8] {
        for (name, net) in [
            ("10GbE", ClusterNetwork::ethernet_10g()),
            ("IB-EDR", ClusterNetwork::infiniband_edr()),
        ] {
            let (pipelined, runtime) = modeled_cross_iter_makespans(&dims, world, net, 32);
            rows.push(vec![
                format!("{world}"),
                name.to_string(),
                format!("{:.3}", pipelined * 1e3),
                format!("{:.3}", runtime * 1e3),
                format!("{:.1}%", 100.0 * (1.0 - runtime / pipelined)),
            ]);
        }
    }
    println!(
        "{}",
        render_table(&["world", "network", "pipelined ms", "runtime ms", "saved"], &rows)
    );
    println!("(the runtime window hoists iteration-0 factor comm past the scale barrier into iteration-1's forward/backward)\n");
}

/// Depth sweep: modeled amortized per-iteration seconds of the depth-D
/// window next to the live runtime executor's measured per-step K-FAC
/// seconds at the same depth.
fn depth_sweep() {
    println!("== Depth-D cross-iteration window: modeled vs live runtime (world 8, F=5) ==\n");
    let dims = resnet_mini_dims();
    let world = 8;
    let depths = [1usize, 2, 4];
    let modeled = modeled_depth_makespans(
        &dims,
        world,
        ClusterNetwork::ethernet_10g(),
        32,
        5,
        *depths.iter().max().unwrap(),
    );
    let mut rows = Vec::new();
    for &depth in &depths {
        let amortized =
            modeled.iter().find(|(d, _)| *d == depth).map(|(_, s)| *s).unwrap_or(f64::NAN);
        let live = run_live_depth(world, 0.5, false, true, true, depth);
        rows.push(vec![
            format!("{depth}"),
            format!("{:.3}", amortized * 1e3),
            format!("{:.3}", live.kfac_seconds / live.steps.max(1) as f64 * 1e3),
        ]);
    }
    println!(
        "{}",
        render_table(&["depth", "modeled amortized ms/iter", "live KFAC ms/step"], &rows)
    );
    println!("(modeled on 10GbE at per-rank batch 32; live timers share host cores, so the modeled column isolates the schedule effect)\n");
}

fn sharded() {
    println!("== Sharded factor reduction: reduce-scatter vs dense allreduce (frac 0.5) ==\n");
    // Live metered factor traffic over the whole run (world totals; the
    // meter is shared across thread ranks).
    let mut rows = Vec::new();
    for world in [4usize, 8] {
        let dense = run_live(world, 0.5, true, false, false);
        let shard = run_live(world, 0.5, true, true, false);
        let dense_bytes = dense.meter.tag_bytes(CommTag::FactorComm);
        let shard_bytes = shard.meter.tag_bytes(CommTag::FactorReduce)
            + shard.meter.tag_bytes(CommTag::FactorGather);
        let steps = dense.steps.max(1);
        rows.push(vec![
            format!("{world}"),
            format!("{:.0}", dense_bytes as f64 / steps as f64),
            format!("{:.0}", shard_bytes as f64 / steps as f64),
            format!("{:.1}%", 100.0 * (1.0 - shard_bytes as f64 / dense_bytes.max(1) as f64)),
        ]);
    }
    println!(
        "{}",
        render_table(&["world", "dense factor B/step", "sharded factor B/step", "saved"], &rows)
    );

    // Modeled pipelined makespans on the ResNetMini dims, with and without
    // the priority-searched sweep order.
    let dims = resnet_mini_dims();
    let rates = ComputeRates::default();
    let mut rows = Vec::new();
    for world in [4usize, 8] {
        let plan = plan_assignments(&dims, world, 0.5, AssignmentStrategy::ComputeLpt);
        for (name, net) in [
            ("10GbE", ClusterNetwork::ethernet_10g()),
            ("IB-EDR", ClusterNetwork::infiniband_edr()),
        ] {
            let cost = CollectiveCostModel::new(net);
            let dense_opts = StepModelOptions::dense(4, false);
            let shard_opts =
                StepModelOptions { reduction: FactorReduction::ShardedReduceScatter, ..dense_opts };
            let ms = |opts: StepModelOptions<'_>| {
                StepModel::with_options(&dims, &plan, &cost, &rates, opts).pipelined_seconds() * 1e3
            };
            let dense_order = priority_sweep_order(&dims, &plan, &cost, &rates, dense_opts);
            let shard_order = priority_sweep_order(&dims, &plan, &cost, &rates, shard_opts);
            rows.push(vec![
                format!("{world}"),
                name.to_string(),
                format!("{:.3}", ms(dense_opts)),
                format!("{:.3}", ms(StepModelOptions { order: Some(&dense_order), ..dense_opts })),
                format!("{:.3}", ms(shard_opts)),
                format!("{:.3}", ms(StepModelOptions { order: Some(&shard_order), ..shard_opts })),
            ]);
        }
    }
    println!(
        "{}",
        render_table(
            &["world", "network", "dense ms", "dense+prio ms", "sharded ms", "sharded+prio ms"],
            &rows
        )
    );
    println!("(the priority columns use the makespan-searched sweep order; the search starts from the fixed order, so they never regress)\n");
}

fn main() {
    println!("Figure 7 — time per KFAC.step() section vs grad_worker_frac\n");
    simulated();
    live();
    cost_model();
    depth_sweep();
    sharded();
}
