//! Table 5: per-GPU training memory — SGD vs. K-FAC at minimum
//! (`frac = 1/64`) and maximum (`frac = 1`) gradient-worker counts.
//!
//! ```sh
//! cargo run --release -p kaisa-bench --bin table5
//! ```

use kaisa_bench::render_table;
use kaisa_sim::experiments::table5;

fn main() {
    println!("Table 5 — simulated per-GPU memory on 64 V100s (MB)\n");
    let rows = table5();
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.model.to_string(),
                r.precision.to_string(),
                format!("{:.0}", r.sgd_mb),
                format!("{:.0}", r.kfac_min_mb),
                format!("{:.1}%", r.min_delta_pct),
                format!("{:.0}", r.kfac_max_mb),
                format!("{:.1}%", r.max_delta_pct),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(
            &["Model", "Precision", "SGD Abs.", "K-FAC Min", "Δ", "K-FAC Max", "Δ"],
            &table
        )
    );
    println!("\nPaper's measured values for comparison (Table 5):");
    let paper = [
        ["ResNet-18", "FP32", "2454", "2838", "16.7%", "3260", "32.8%"],
        ["ResNet-50", "FP32", "4762", "5396", "13.3%", "6608", "38.8%"],
        ["ResNet-101", "FP32", "6313", "7463", "18.2%", "8755", "38.7%"],
        ["ResNet-152", "FP32", "6620", "8204", "23.9%", "9092", "37.3%"],
        ["Mask R-CNN", "FP32", "6553", "6650", "1.5%", "6743", "2.9%"],
        ["BERT-Large", "FP16", "8254", "9555", "15.8%", "12038", "45.8%"],
    ];
    let paper_rows: Vec<Vec<String>> =
        paper.iter().map(|r| r.iter().map(|s| s.to_string()).collect()).collect();
    println!(
        "{}",
        render_table(
            &["Model", "Precision", "SGD Abs.", "K-FAC Min", "Δ", "K-FAC Max", "Δ"],
            &paper_rows
        )
    );
    println!("\nShape checks: K-FAC overhead grows with frac for every model; the");
    println!("max/min overhead ratio is 1.5-2.9x; Mask R-CNN's overhead is by far");
    println!("the smallest (only the ROI heads are preconditioned).");
}
