//! Table 5: per-GPU training memory — SGD vs. K-FAC at minimum
//! (`frac = 1/64`) and maximum (`frac = 1`) gradient-worker counts.
//!
//! ```sh
//! cargo run --release -p kaisa-bench --bin table5
//! ```

use kaisa_bench::render_table;
use kaisa_comm::{Communicator, ThreadComm};
use kaisa_core::{Kfac, KfacConfig, MemoryCategory, MemoryMeter};
use kaisa_data::{Dataset, PatternImages, ShardSampler};
use kaisa_nn::models::{ResNetMini, ResNetMiniConfig};
use kaisa_nn::Model;
use kaisa_sim::experiments::table5;
use kaisa_tensor::Rng;

/// Live counterpart of the analytic table: run ResNetMini on 8 thread ranks
/// and report the per-rank `MemoryMeter` peaks, dense vs shard-resident.
fn live_meter() {
    println!("\n== Live per-rank MemoryMeter (8 thread ranks, ResNetMini) ==\n");
    let world = 8;
    let dataset = PatternImages::generate(128, 3, 12, 4, 0.3, 121);
    let model_cfg = ResNetMiniConfig {
        in_channels: 3,
        width: 6,
        blocks_stage1: 2,
        blocks_stage2: 2,
        classes: 4,
    };
    let run = |sharded: bool| -> Vec<MemoryMeter> {
        ThreadComm::run(world, |comm| {
            let mut model = ResNetMini::new(model_cfg, &mut Rng::seed_from_u64(30));
            let cfg = KfacConfig::builder()
                .grad_worker_frac(0.25)
                .factor_update_freq(2)
                .inv_update_freq(4)
                .sharded_factors(sharded)
                .build();
            let mut kfac = Kfac::new(cfg, &mut model, comm);
            let sampler = ShardSampler::new(dataset.len(), world, comm.rank(), 4, 2);
            for indices in sampler.epoch_batches(0) {
                let (x, y) = dataset.batch(&indices);
                kfac.prepare(&mut model);
                model.zero_grad();
                let _ = model.forward_backward(&x, &y);
                kaisa_trainer::allreduce_gradients(&mut model, comm, 1);
                kfac.step(&mut model, comm, 0.05);
            }
            kfac.memory_meter().clone()
        })
    };
    let dense = run(false);
    let shard = run(true);
    let table: Vec<Vec<String>> = MemoryCategory::ALL
        .iter()
        .map(|&cat| {
            let d = dense.iter().map(|m| m.peak(cat)).max().unwrap_or(0);
            let s = shard.iter().map(|m| m.peak(cat)).max().unwrap_or(0);
            let ratio =
                if d > 0 { format!("{:.0}%", 100.0 * s as f64 / d as f64) } else { "-".into() };
            vec![cat.name().to_string(), format!("{d}"), format!("{s}"), ratio]
        })
        .collect();
    println!(
        "{}",
        render_table(&["category", "dense peak B", "sharded peak B", "shard/dense"], &table)
    );
    println!("(peaks are the max over ranks; shard-resident accumulation keeps only owned");
    println!(" factor sections per rank, so the factor row drops well below 100%)");
}

fn main() {
    println!("Table 5 — simulated per-GPU memory on 64 V100s (MB)\n");
    let rows = table5();
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.model.to_string(),
                r.precision.to_string(),
                format!("{:.0}", r.sgd_mb),
                format!("{:.0}", r.kfac_min_mb),
                format!("{:.1}%", r.min_delta_pct),
                format!("{:.0}", r.kfac_max_mb),
                format!("{:.1}%", r.max_delta_pct),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(
            &["Model", "Precision", "SGD Abs.", "K-FAC Min", "Δ", "K-FAC Max", "Δ"],
            &table
        )
    );
    println!("\nPaper's measured values for comparison (Table 5):");
    let paper = [
        ["ResNet-18", "FP32", "2454", "2838", "16.7%", "3260", "32.8%"],
        ["ResNet-50", "FP32", "4762", "5396", "13.3%", "6608", "38.8%"],
        ["ResNet-101", "FP32", "6313", "7463", "18.2%", "8755", "38.7%"],
        ["ResNet-152", "FP32", "6620", "8204", "23.9%", "9092", "37.3%"],
        ["Mask R-CNN", "FP32", "6553", "6650", "1.5%", "6743", "2.9%"],
        ["BERT-Large", "FP16", "8254", "9555", "15.8%", "12038", "45.8%"],
    ];
    let paper_rows: Vec<Vec<String>> =
        paper.iter().map(|r| r.iter().map(|s| s.to_string()).collect()).collect();
    println!(
        "{}",
        render_table(
            &["Model", "Precision", "SGD Abs.", "K-FAC Min", "Δ", "K-FAC Max", "Δ"],
            &paper_rows
        )
    );
    println!("\nShape checks: K-FAC overhead grows with frac for every model; the");
    println!("max/min overhead ratio is 1.5-2.9x; Mask R-CNN's overhead is by far");
    println!("the smallest (only the ROI heads are preconditioned).");
    live_meter();
}
