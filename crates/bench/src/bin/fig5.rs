//! Figure 5: validation-metric curves, baseline optimizer vs. KAISA, for the
//! ResNet (a), Mask R-CNN (b), and U-Net (c) analogues.
//!
//! ```sh
//! cargo run --release -p kaisa-bench --bin fig5            # all panels
//! cargo run --release -p kaisa-bench --bin fig5 -- resnet  # one panel
//! ```

use kaisa_bench::render_table;
use kaisa_core::KfacConfig;
use kaisa_data::{BlobSegmentation, Dataset, PatternImages};
use kaisa_nn::models::{ResNetMini, ResNetMiniConfig, RoiHeadMini, RoiTargets, UNetMini};
use kaisa_nn::Model;
use kaisa_optim::{Adam, LrSchedule, Optimizer, Sgd};
use kaisa_tensor::{Matrix, Rng};
use kaisa_trainer::{train_distributed, TrainConfig, TrainResult};

fn print_panel(name: &str, metric_name: &str, target: f32, base: &TrainResult, kfac: &TrainResult) {
    println!("--- Figure 5{name}: baseline vs KAISA ({metric_name}, target {target}) ---");
    let rows: Vec<Vec<String>> = base
        .epochs
        .iter()
        .zip(&kfac.epochs)
        .map(|(b, k)| {
            vec![
                b.epoch.to_string(),
                format!("{:.3}", b.val_metric),
                format!("{:.3}", k.val_metric),
                format!("{:.1}", b.cumulative_seconds),
                format!("{:.1}", k.cumulative_seconds),
            ]
        })
        .collect();
    println!("{}", render_table(&["epoch", "baseline", "KAISA", "base s", "KAISA s"], &rows));
    let b = base.converged;
    let k = kfac.converged;
    println!("time to target: baseline {b:?}, KAISA {k:?}");
    if let (Some((be, bs)), Some((ke, ks))) = (b, k) {
        println!(
            "KAISA: {:.0}% fewer epochs, {:.0}% less wall time\n",
            100.0 * (be as f64 - ke as f64) / (be.max(1)) as f64,
            100.0 * (bs - ks) / bs.max(1e-9)
        );
    } else {
        println!();
    }
}

fn panel_resnet() {
    let train = PatternImages::generate(384, 3, 12, 8, 0.8, 110);
    let val = PatternImages::generate(128, 3, 12, 8, 0.8, 111);
    let model_cfg = ResNetMiniConfig {
        in_channels: 3,
        width: 4,
        blocks_stage1: 1,
        blocks_stage2: 1,
        classes: 8,
    };
    let target = 0.9f32;
    let run = |kfac: Option<KfacConfig>| {
        let cfg = TrainConfig {
            epochs: 14,
            local_batch: 16,
            schedule: LrSchedule::Warmup { lr: 0.03, warmup: 10 },
            kfac,
            target_metric: Some(target),
            seed: 20,
            ..Default::default()
        };
        train_distributed(
            2,
            || ResNetMini::new(model_cfg, &mut Rng::seed_from_u64(21)),
            || Sgd::with_momentum(0.9),
            &train,
            &val,
            &cfg,
        )
    };
    let base = run(None);
    let kfac = run(Some(KfacConfig::builder().factor_update_freq(4).inv_update_freq(8).build()));
    print_panel("(a) ResNet", "val accuracy", target, &base, &kfac);
}

fn panel_maskrcnn() {
    // The ROI-head analogue: a shared-FC detection head on synthetic pooled
    // features; the metric is classification accuracy (the bbox-mAP proxy).
    let mut rng = Rng::seed_from_u64(112);
    let feat = 16usize;
    let classes = 4usize;
    let centers = Matrix::randn(classes, feat, 1.0, &mut rng);
    let make_set = |n: usize, rng: &mut Rng| {
        let mut x = Matrix::zeros(n, feat);
        let mut cls = Vec::new();
        let mut boxes = Matrix::zeros(n, 4);
        for i in 0..n {
            let c = i % classes;
            cls.push(c);
            for j in 0..feat {
                x.set(i, j, centers.get(c, j) + 1.3 * rng.normal());
            }
            for j in 0..4 {
                boxes.set(i, j, 0.5 * centers.get(c, j) + 0.05 * rng.normal());
            }
        }
        (x, RoiTargets { classes: cls, boxes })
    };
    let (train_x, train_y) = make_set(512, &mut rng);
    let (val_x, val_y) = make_set(128, &mut rng);
    let target = 0.9f32;

    let run = |kfac_cfg: Option<KfacConfig>| -> Vec<(usize, f32, f64)> {
        let comm = kaisa_comm::LocalComm::new();
        let mut model = RoiHeadMini::new(feat, 24, classes, &mut Rng::seed_from_u64(23));
        let mut opt = Sgd::with_momentum(0.9);
        let mut kfac = kfac_cfg.map(|c| kaisa_core::Kfac::new(c, &mut model, &comm));
        let start = std::time::Instant::now();
        let mut curve = Vec::new();
        for epoch in 0..16 {
            for chunk in (0..512).collect::<Vec<usize>>().chunks(32) {
                let lo = chunk[0];
                let hi = lo + chunk.len();
                let x = train_x.rows_slice(lo, hi);
                let y = RoiTargets {
                    classes: train_y.classes[lo..hi].to_vec(),
                    boxes: train_y.boxes.rows_slice(lo, hi),
                };
                if let Some(kfac) = &kfac {
                    kfac.prepare(&mut model);
                }
                model.zero_grad();
                let _ = model.forward_backward(&x, &y);
                if let Some(kfac) = &mut kfac {
                    kfac.step(&mut model, &comm, 0.004);
                }
                opt.step_model(&mut model, 0.004);
            }
            let v = model.evaluate(&val_x, &val_y);
            curve.push((epoch, v.metric, start.elapsed().as_secs_f64()));
        }
        curve
    };
    let base = run(None);
    let kfac = run(Some(KfacConfig::builder().factor_update_freq(4).inv_update_freq(8).build()));
    println!("--- Figure 5(b) Mask R-CNN ROI head: SGD vs KAISA (cls acc, target {target}) ---");
    let rows: Vec<Vec<String>> = base
        .iter()
        .zip(&kfac)
        .map(|((e, bm, _), (_, km, _))| vec![e.to_string(), format!("{bm:.3}"), format!("{km:.3}")])
        .collect();
    println!("{}", render_table(&["epoch", "SGD", "KAISA"], &rows));
    let b_conv = base.iter().find(|(_, m, _)| *m >= target).map(|(e, _, _)| *e);
    let k_conv = kfac.iter().find(|(_, m, _)| *m >= target).map(|(e, _, _)| *e);
    println!("epochs to target: SGD {b_conv:?}, KAISA {k_conv:?}\n");
}

fn panel_unet() {
    let train = BlobSegmentation::generate(192, 16, 0.7, 113);
    let val = BlobSegmentation::generate(48, 16, 0.7, 114);
    let _ = val.len();
    let target = 0.8f32;
    let run = |kfac: Option<KfacConfig>| {
        let cfg = TrainConfig {
            epochs: 14,
            local_batch: 8,
            schedule: LrSchedule::Constant { lr: 8e-4 },
            kfac,
            target_metric: Some(target),
            seed: 24,
            eval_batch: 16,
            ..Default::default()
        };
        train_distributed(
            2,
            || UNetMini::new(1, 4, &mut Rng::seed_from_u64(25)),
            Adam::new,
            &train,
            &val,
            &cfg,
        )
    };
    let base = run(None);
    let kfac = run(Some(KfacConfig::builder().factor_update_freq(4).inv_update_freq(8).build()));
    print_panel("(c) U-Net", "val DSC", target, &base, &kfac);
}

fn main() {
    let which = std::env::args().nth(1).unwrap_or_else(|| "all".to_string());
    println!("Figure 5 — convergence curves, baseline optimizer vs KAISA\n");
    match which.as_str() {
        "resnet" => panel_resnet(),
        "maskrcnn" => panel_maskrcnn(),
        "unet" => panel_unet(),
        _ => {
            panel_resnet();
            panel_maskrcnn();
            panel_unet();
        }
    }
}
