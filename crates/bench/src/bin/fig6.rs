//! Figure 6: average iteration time and K-FAC memory overhead across
//! `grad_worker_frac` values, for ResNet-{18,50,101,152}, Mask R-CNN, and
//! BERT-Large on a simulated 64-V100 cluster — plus a live validation sweep
//! on thread ranks.
//!
//! ```sh
//! cargo run --release -p kaisa-bench --bin fig6
//! ```

use kaisa_bench::{render_table, sparkline};
use kaisa_comm::{Communicator, ThreadComm};
use kaisa_core::{Kfac, KfacConfig, MemoryCategory};
use kaisa_data::{Dataset, PatternImages, ShardSampler};
use kaisa_nn::models::{ResNetMini, ResNetMiniConfig};
use kaisa_nn::Model;
use kaisa_sim::experiments::{fig6, FIG6_FRACS};
use kaisa_tensor::Rng;

fn simulated() {
    println!("== Simulated (64 x V100, true layer inventories) ==\n");
    let rows = fig6();
    for model in ["ResNet-18", "ResNet-50", "ResNet-101", "ResNet-152", "Mask R-CNN", "BERT-Large"]
    {
        let series: Vec<&kaisa_sim::experiments::Fig6Row> =
            rows.iter().filter(|r| r.model == model).collect();
        let table: Vec<Vec<String>> = series
            .iter()
            .map(|r| {
                vec![
                    format!("{:.4}", r.frac),
                    format!("{:.1}", r.iter_seconds * 1e3),
                    format!("{:.0}", r.kfac_overhead_mb),
                ]
            })
            .collect();
        println!("--- {model} ---");
        println!("{}", render_table(&["frac", "iter ms", "K-FAC MB"], &table));
        let times: Vec<f64> = series.iter().map(|r| r.iter_seconds).collect();
        let mems: Vec<f64> = series.iter().map(|r| r.kfac_overhead_mb).collect();
        println!("time {}   memory {}\n", sparkline(&times), sparkline(&mems));
    }
}

fn live() {
    println!("== Live validation (8 thread ranks, ResNetMini) ==\n");
    let world = 8;
    let dataset = PatternImages::generate(256, 3, 12, 4, 0.3, 120);
    let model_cfg = ResNetMiniConfig {
        in_channels: 3,
        width: 6,
        blocks_stage1: 2,
        blocks_stage2: 2,
        classes: 4,
    };
    let mut table = Vec::new();
    for &frac in &[1.0 / 8.0, 0.25, 0.5, 1.0] {
        let run = |sharded: bool| {
            ThreadComm::run(world, |comm| {
                let mut model = ResNetMini::new(model_cfg, &mut Rng::seed_from_u64(30));
                let cfg = KfacConfig::builder()
                    .grad_worker_frac(frac)
                    .factor_update_freq(2)
                    .inv_update_freq(4)
                    .sharded_factors(sharded)
                    .build();
                let mut kfac = Kfac::new(cfg, &mut model, comm);
                let sampler = ShardSampler::new(dataset.len(), world, comm.rank(), 4, 3);
                let start = std::time::Instant::now();
                let mut steps = 0usize;
                for indices in sampler.epoch_batches(0) {
                    let (x, y) = dataset.batch(&indices);
                    kfac.prepare(&mut model);
                    model.zero_grad();
                    let _ = model.forward_backward(&x, &y);
                    kaisa_trainer::allreduce_gradients(&mut model, comm, 1);
                    kfac.step(&mut model, comm, 0.05);
                    steps += 1;
                }
                (
                    start.elapsed().as_secs_f64() / steps as f64,
                    kfac.memory_bytes(),
                    kfac.comm_bytes(),
                    kfac.memory_meter().peak(MemoryCategory::Factors),
                )
            })
        };
        let dense = run(false);
        let shard = run(true);
        let (iter_s, mem, sent, _) = dense[0];
        let max_mem = dense.iter().map(|r| r.1).max().unwrap();
        let dense_factors = dense.iter().map(|r| r.3).max().unwrap();
        let shard_factors = shard.iter().map(|r| r.3).max().unwrap();
        table.push(vec![
            format!("{frac:.3}"),
            format!("{:.1}", iter_s * 1e3),
            format!("{}", mem / 1024),
            format!("{}", max_mem / 1024),
            format!("{sent}"),
            format!("{}", dense_factors / 1024),
            format!("{}", shard_factors / 1024),
        ]);
    }
    println!(
        "{}",
        render_table(
            &[
                "frac",
                "iter ms",
                "rank0 K-FAC KiB",
                "max K-FAC KiB",
                "rank0 sent B",
                "peak factor KiB (dense)",
                "peak factor KiB (sharded)",
            ],
            &table
        )
    );
    println!("(live memory grows with frac and rank-0 send volume falls — the Figure 6 tradeoff;");
    println!(" the sharded column is the MemoryMeter-measured peak with shard-resident factors)");
}

fn main() {
    println!("Figure 6 — iteration time and K-FAC memory overhead vs grad_worker_frac");
    println!("fracs: {FIG6_FRACS:?}\n");
    simulated();
    live();
}
