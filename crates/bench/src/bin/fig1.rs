//! Figure 1: SGD vs. K-FAC epochs-to-convergence on a residual CNN.
//!
//! The paper's Figure 1 trains ResNet-32 on CIFAR-10 and shows K-FAC
//! reaching the target validation accuracy in ~40% fewer epochs. This
//! binary reproduces the *shape* on the miniature analogue: `ResNetMini` on
//! synthetic pattern images at the same global batch size and schedule.
//!
//! ```sh
//! cargo run --release -p kaisa-bench --bin fig1
//! ```

use kaisa_bench::{render_table, sparkline};
use kaisa_core::KfacConfig;
use kaisa_data::PatternImages;
use kaisa_nn::models::{ResNetMini, ResNetMiniConfig};
use kaisa_optim::{LrSchedule, Sgd};
use kaisa_tensor::Rng;
use kaisa_trainer::{train_distributed, TrainConfig, TrainResult};

fn run(kfac: Option<KfacConfig>, train: &PatternImages, val: &PatternImages) -> TrainResult {
    let cfg = TrainConfig {
        epochs: 14,
        local_batch: 16,
        schedule: LrSchedule::Warmup { lr: 0.03, warmup: 10 },
        kfac,
        seed: 10,
        ..Default::default()
    };
    let model_cfg = ResNetMiniConfig {
        in_channels: 3,
        width: 4,
        blocks_stage1: 1,
        blocks_stage2: 1,
        classes: 8,
    };
    train_distributed(
        2,
        || ResNetMini::new(model_cfg, &mut Rng::seed_from_u64(20)),
        || Sgd::with_momentum(0.9),
        train,
        val,
        &cfg,
    )
}

fn main() {
    println!("Figure 1 — SGD vs K-FAC validation accuracy per epoch");
    println!("(paper: ResNet-32/CIFAR-10 on GPUs; here: ResNetMini/synthetic patterns)\n");

    let train = PatternImages::generate(384, 3, 12, 8, 0.8, 100);
    let val = PatternImages::generate(128, 3, 12, 8, 0.8, 101);

    let sgd = run(None, &train, &val);
    let kfac = run(
        Some(KfacConfig::builder().factor_update_freq(4).inv_update_freq(8).build()),
        &train,
        &val,
    );

    let rows: Vec<Vec<String>> = sgd
        .epochs
        .iter()
        .zip(&kfac.epochs)
        .map(|(s, k)| {
            vec![
                s.epoch.to_string(),
                format!("{:.3}", s.val_metric),
                format!("{:.3}", k.val_metric),
            ]
        })
        .collect();
    println!("{}", render_table(&["epoch", "SGD val acc", "K-FAC val acc"], &rows));

    let sgd_series: Vec<f64> = sgd.epochs.iter().map(|e| e.val_metric as f64).collect();
    let kfac_series: Vec<f64> = kfac.epochs.iter().map(|e| e.val_metric as f64).collect();
    println!("SGD   {}", sparkline(&sgd_series));
    println!("K-FAC {}", sparkline(&kfac_series));

    let target = 0.9f32;
    let se = sgd.epochs_to_metric(target);
    let ke = kfac.epochs_to_metric(target);
    println!("\nepochs to {target:.2} val acc: SGD {se:?}, K-FAC {ke:?}");
    if let (Some(s), Some(k)) = (se, ke) {
        println!(
            "K-FAC reached the target in {:.0}% fewer epochs (paper: ~40% for ResNet-32)",
            100.0 * (s as f64 - k as f64) / s as f64
        );
    }
}
