//! Kernel-floor throughput harness: blocked-vs-naive GEMM GFLOP/s per
//! layout and shape, plus batched-vs-serial eigensolve latency, written as
//! `BENCH_kernels.json` next to `BENCH_comm.json`.
//!
//! Both kernels are measured in the same process on the same machine with
//! interleaved best-of trials (the comm_bench protocol), so the comparison
//! is self-calibrating on noisy runners. The naive kernels are the
//! permanent bitwise oracle — this harness is what keeps the blocked path
//! *worth having*.
//!
//! ```sh
//! cargo run --release -p kaisa-bench --bin kernel_bench            # full
//! cargo run --release -p kaisa-bench --bin kernel_bench -- --quick # CI
//! cargo run --release -p kaisa-bench --bin kernel_bench -- --no-gate --out k.json
//! ```
//!
//! Unless `--no-gate` is passed, the run *fails* (exit 1) if:
//!
//! * the blocked kernel drops below the naive kernel past the noise margin
//!   ([`GATE_TOLERANCE`]) on any measured (layout, shape) cell — the
//!   blocked path must never be a regression anywhere; or
//! * blocked `nn` fails to clear [`SPEEDUP_FLOOR`]× naive at the flagship
//!   512³ f32 shape — the whole point of the SIMD microkernel; or
//! * the SYRK factor-statistic kernel drops below `gemm_tn` past the same
//!   noise margin on any measured `(m, k)` Gram cell, or fails to clear
//!   [`SYRK_SPEEDUP_FLOOR`]× at the flagship 1024², k=4096 shape — the
//!   triangular half-flops saving must actually show up; or
//! * the batched eigensolve path regresses past [`EIG_TOLERANCE`] above
//!   the serial per-call loop on the same factor set (scratch reuse means
//!   it should win or tie even on one core).

use std::time::Instant;

use kaisa_linalg::{sym_eig, sym_eig_batch_timed};
use kaisa_tensor::{
    gemm_nn_with, gemm_nt_with, gemm_tn_with, set_gemm_kernel, syrk_tn_with, GemmKernel, Matrix,
    Rng,
};

/// Measured trials per cell; best is kept (each trial is a complete
/// measurement, so the best is the least scheduler-perturbed).
const TRIALS: usize = 3;
/// Minimum FLOPs per timed window so small shapes aren't timer-noise.
const WINDOW_FLOPS: f64 = 1.0e8;
/// Relative noise margin for the never-a-regression gate: blocked must
/// stay within this fraction below naive on every measured cell.
const GATE_TOLERANCE: f64 = 0.10;
/// Required blocked/naive speedup for layout `nn` at the flagship shape.
const SPEEDUP_FLOOR: f64 = 1.5;
/// The flagship gate shape (m, k, n).
const FLOOR_SHAPE: (usize, usize, usize) = (512, 512, 512);
/// Noise margin for the batched-eigensolve gate (batched must not exceed
/// serial by more than this fraction).
const EIG_TOLERANCE: f64 = 0.25;
/// Required syrk/gemm_tn speedup at the flagship Gram shape — conservative
/// versus the theoretical ~2× flop halving (packing and the mirror are not
/// halved), but far above noise.
const SYRK_SPEEDUP_FLOOR: f64 = 1.3;
/// The flagship syrk gate shape `(m, k)`: a 1024² factor from 4096 patch
/// rows, the K-FAC conv-statistic regime the fast path exists for.
const SYRK_FLOOR_SHAPE: (usize, usize) = (1024, 4096);

#[derive(Clone, Copy, PartialEq)]
enum Layout {
    Nn,
    Tn,
    Nt,
}

const LAYOUTS: [Layout; 3] = [Layout::Nn, Layout::Tn, Layout::Nt];

impl Layout {
    fn name(self) -> &'static str {
        match self {
            Layout::Nn => "nn",
            Layout::Tn => "tn",
            Layout::Nt => "nt",
        }
    }

    /// Operand lengths for C(m×n): nn = A(m×k)·B(k×n), tn = Aᵀ with A
    /// stored k×m, nt = Bᵀ with B stored n×k.
    fn operand_lens(self, m: usize, k: usize, n: usize) -> (usize, usize) {
        match self {
            Layout::Nn => (m * k, k * n),
            Layout::Tn => (k * m, k * n),
            Layout::Nt => (m * k, n * k),
        }
    }

    fn run(
        self,
        kernel: GemmKernel,
        (m, k, n): (usize, usize, usize),
        a: &[f32],
        b: &[f32],
        c: &mut [f32],
    ) {
        match self {
            Layout::Nn => gemm_nn_with(kernel, m, k, n, a, b, c),
            Layout::Tn => gemm_tn_with(kernel, m, k, n, a, b, c),
            Layout::Nt => gemm_nt_with(kernel, m, k, n, a, b, c),
        }
    }
}

/// One timed trial: `iters` back-to-back GEMMs (C zeroed per iteration —
/// both kernels pay the identical memset), returning GFLOP/s.
fn gemm_trial(
    layout: Layout,
    kernel: GemmKernel,
    shape: (usize, usize, usize),
    a: &[f32],
    b: &[f32],
    c: &mut [f32],
    iters: usize,
) -> f64 {
    let (m, k, n) = shape;
    let flops = 2.0 * m as f64 * k as f64 * n as f64;
    let start = Instant::now();
    for _ in 0..iters {
        c.fill(0.0);
        layout.run(kernel, shape, a, b, c);
    }
    flops * iters as f64 / start.elapsed().as_secs_f64() / 1.0e9
}

/// Measure one (layout, shape) cell: interleaved best-of-[`TRIALS`] for
/// both kernels, alternating which goes first so machine-speed drift
/// (frequency scaling, cache warm-up) biases neither.
fn measure_gemm(layout: Layout, m: usize, k: usize, n: usize) -> (f64, f64) {
    let mut rng = Rng::seed_from_u64(42);
    let (a_len, b_len) = layout.operand_lens(m, k, n);
    let a: Vec<f32> = (0..a_len).map(|_| rng.next_f32() - 0.5).collect();
    let b: Vec<f32> = (0..b_len).map(|_| rng.next_f32() - 0.5).collect();
    let mut c = vec![0.0f32; m * n];
    let flops = 2.0 * m as f64 * k as f64 * n as f64;
    let iters = (WINDOW_FLOPS / flops).ceil().max(1.0) as usize;

    // Warm both paths once (page-faults the buffers, settles detection).
    layout.run(GemmKernel::Blocked, (m, k, n), &a, &b, &mut c);
    c.fill(0.0);
    layout.run(GemmKernel::Naive, (m, k, n), &a, &b, &mut c);

    let (mut blocked, mut naive) = (0.0f64, 0.0f64);
    for t in 0..TRIALS {
        let order = if t % 2 == 0 {
            [GemmKernel::Blocked, GemmKernel::Naive]
        } else {
            [GemmKernel::Naive, GemmKernel::Blocked]
        };
        for kernel in order {
            let gflops = gemm_trial(layout, kernel, (m, k, n), &a, &b, &mut c, iters);
            match kernel {
                GemmKernel::Blocked => blocked = blocked.max(gflops),
                _ => naive = naive.max(gflops),
            }
        }
    }
    (blocked, naive)
}

/// Measure one `(m, k)` Gram cell — `C = AᵀA` via the SYRK fast path vs
/// the full `gemm_tn` — interleaved best-of-[`TRIALS`], both on the
/// blocked kernel (the production dispatch at these shapes). GFLOP/s are
/// *full-GEMM-equivalent* (`2·m²·k`) for both, so the reported speedup is
/// exactly the wall-time ratio and >1 means the triangular saving is real.
fn measure_syrk(m: usize, k: usize) -> (f64, f64) {
    let mut rng = Rng::seed_from_u64(44);
    let a: Vec<f32> = (0..k * m).map(|_| rng.next_f32() - 0.5).collect();
    let mut c = vec![0.0f32; m * m];
    let flops = 2.0 * m as f64 * m as f64 * k as f64;
    let iters = (WINDOW_FLOPS / flops).ceil().max(1.0) as usize;

    let syrk_trial = |c: &mut Vec<f32>| {
        let start = Instant::now();
        for _ in 0..iters {
            c.fill(0.0);
            syrk_tn_with(GemmKernel::Blocked, m, k, &a, c);
        }
        flops * iters as f64 / start.elapsed().as_secs_f64() / 1.0e9
    };
    let gemm_trial = |c: &mut Vec<f32>| {
        let start = Instant::now();
        for _ in 0..iters {
            c.fill(0.0);
            gemm_tn_with(GemmKernel::Blocked, m, k, m, &a, &a, c);
        }
        flops * iters as f64 / start.elapsed().as_secs_f64() / 1.0e9
    };

    // Warm both paths (page-faults the buffers, settles detection).
    syrk_tn_with(GemmKernel::Blocked, m, k, &a, &mut c);
    c.fill(0.0);
    gemm_tn_with(GemmKernel::Blocked, m, k, m, &a, &a, &mut c);

    let (mut syrk, mut gemm) = (0.0f64, 0.0f64);
    for t in 0..TRIALS {
        if t % 2 == 0 {
            syrk = syrk.max(syrk_trial(&mut c));
            gemm = gemm.max(gemm_trial(&mut c));
        } else {
            gemm = gemm.max(gemm_trial(&mut c));
            syrk = syrk.max(syrk_trial(&mut c));
        }
    }
    (syrk, gemm)
}

fn random_spd(n: usize, rng: &mut Rng) -> Matrix {
    let a = Matrix::randn(n, n, 1.0, rng);
    let mut s = a.matmul_tn(&a);
    s.scale(1.0 / n as f32);
    s
}

/// Measure the factor-inventory eigensolve set: serial per-call loop vs
/// the batched queue (auto workers), interleaved best-of-[`TRIALS`],
/// returning `(serial_ms, batched_ms)`.
fn measure_eig(sizes: &[usize]) -> (f64, f64) {
    let mut rng = Rng::seed_from_u64(43);
    let mats: Vec<Matrix> = sizes.iter().map(|&n| random_spd(n, &mut rng)).collect();
    let refs: Vec<&Matrix> = mats.iter().collect();

    // Warm both paths.
    for m in &mats {
        let _ = sym_eig(m).unwrap();
    }
    let _ = sym_eig_batch_timed(&refs, 0);

    let serial_trial = |mats: &[Matrix]| {
        let start = Instant::now();
        for m in mats {
            let _ = sym_eig(m).unwrap();
        }
        start.elapsed().as_secs_f64() * 1e3
    };
    let batched_trial = |refs: &[&Matrix]| {
        let start = Instant::now();
        let _ = sym_eig_batch_timed(refs, 0);
        start.elapsed().as_secs_f64() * 1e3
    };

    let (mut serial, mut batched) = (f64::INFINITY, f64::INFINITY);
    for t in 0..TRIALS {
        if t % 2 == 0 {
            serial = serial.min(serial_trial(&mats));
            batched = batched.min(batched_trial(&refs));
        } else {
            batched = batched.min(batched_trial(&refs));
            serial = serial.min(serial_trial(&mats));
        }
    }
    (serial, batched)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let no_gate = args.iter().any(|a| a == "--no-gate");
    let out = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "BENCH_kernels.json".to_string());

    // Pin Auto out of the way: every measurement names its kernel
    // explicitly, but model GEMMs inside warmup shouldn't flap.
    set_gemm_kernel(GemmKernel::Auto);

    // The flagship 512³ gate shape always runs — even in --quick — plus a
    // small shape near the Auto dispatch threshold and K-FAC-typical
    // rectangles (tall-k factor statistics, square factors) in full mode.
    let shapes: Vec<(usize, usize, usize)> = if quick {
        vec![(128, 128, 128), FLOOR_SHAPE]
    } else {
        vec![
            (64, 64, 64),
            (128, 128, 128),
            (256, 256, 256),
            FLOOR_SHAPE,
            (256, 1024, 256),
            (96, 600, 84),
        ]
    };
    // A layer-inventory-like eigensolve set: equal-n runs with stragglers.
    let eig_sizes: Vec<usize> = if quick {
        vec![48, 48, 32, 48, 16, 48, 8, 64]
    } else {
        vec![96, 64, 64, 64, 48, 64, 32, 64, 16, 96, 64, 8]
    };

    eprintln!(
        "kernel_bench: shapes={shapes:?} trials={TRIALS} ({})",
        if quick { "quick" } else { "full" }
    );

    let mut gate_failures: Vec<String> = Vec::new();
    let mut rows = Vec::new();
    for &(m, k, n) in &shapes {
        for layout in LAYOUTS {
            let (blocked, naive) = measure_gemm(layout, m, k, n);
            let speedup = blocked / naive;
            eprintln!(
                "gemm {:<2} {m:>4}x{k:>4}x{n:>4}  blocked {blocked:>7.2} GF/s | naive {naive:>6.2} GF/s | {speedup:>5.2}x",
                layout.name()
            );
            if blocked < naive * (1.0 - GATE_TOLERANCE) {
                gate_failures.push(format!(
                    "{} {m}x{k}x{n}: blocked {blocked:.2} GF/s < naive {naive:.2} GF/s - {:.0}% margin",
                    layout.name(),
                    GATE_TOLERANCE * 100.0
                ));
            }
            if layout == Layout::Nn && (m, k, n) == FLOOR_SHAPE && speedup < SPEEDUP_FLOOR {
                gate_failures.push(format!(
                    "nn {m}x{k}x{n}: blocked/naive {speedup:.2}x < {SPEEDUP_FLOOR}x floor"
                ));
            }
            rows.push(format!(
                "    {{\"layout\": \"{}\", \"m\": {m}, \"k\": {k}, \"n\": {n}, \"blocked_gflops\": {blocked:.3}, \"naive_gflops\": {naive:.3}, \"speedup\": {speedup:.3}}}",
                layout.name()
            ));
        }
    }

    // SYRK cells: `(m, k)` Gram shapes from the factor-statistic capture
    // path. The flagship 1024²/4096 cell always runs; full mode adds a
    // linear-layer-sized cell, a small conv cell, and a mid conv cell.
    let syrk_shapes: Vec<(usize, usize)> = if quick {
        vec![(256, 1024), SYRK_FLOOR_SHAPE]
    } else {
        vec![(96, 600), (256, 1024), (512, 2048), SYRK_FLOOR_SHAPE]
    };
    let mut syrk_rows = Vec::new();
    for &(m, k) in &syrk_shapes {
        let (syrk, gemm) = measure_syrk(m, k);
        let speedup = syrk / gemm;
        eprintln!(
            "syrk    {m:>4}x{m:>4} k={k:<5} syrk {syrk:>8.2} GF/s | gemm_tn {gemm:>7.2} GF/s | {speedup:>5.2}x"
        );
        if syrk < gemm * (1.0 - GATE_TOLERANCE) {
            gate_failures.push(format!(
                "syrk {m}x{m} k={k}: syrk {syrk:.2} GF/s < gemm_tn {gemm:.2} GF/s - {:.0}% margin",
                GATE_TOLERANCE * 100.0
            ));
        }
        if (m, k) == SYRK_FLOOR_SHAPE && speedup < SYRK_SPEEDUP_FLOOR {
            gate_failures.push(format!(
                "syrk {m}x{m} k={k}: syrk/gemm_tn {speedup:.2}x < {SYRK_SPEEDUP_FLOOR}x floor"
            ));
        }
        syrk_rows.push(format!(
            "    {{\"m\": {m}, \"k\": {k}, \"syrk_gflops\": {syrk:.3}, \"gemm_tn_gflops\": {gemm:.3}, \"speedup\": {speedup:.3}}}"
        ));
    }

    let (serial_ms, batched_ms) = measure_eig(&eig_sizes);
    let eig_speedup = serial_ms / batched_ms;
    eprintln!(
        "eigensolve x{}  serial {serial_ms:>7.2} ms | batched {batched_ms:>7.2} ms | {eig_speedup:>5.2}x",
        eig_sizes.len()
    );
    if batched_ms > serial_ms * (1.0 + EIG_TOLERANCE) {
        gate_failures.push(format!(
            "eigensolve: batched {batched_ms:.2} ms > serial {serial_ms:.2} ms + {:.0}% margin",
            EIG_TOLERANCE * 100.0
        ));
    }

    let gate_passed = gate_failures.is_empty();
    let json = format!(
        concat!(
            "{{\n",
            "  \"benchmark\": \"kaisa-kernels\",\n",
            "  \"quick\": {},\n",
            "  \"trials\": {},\n",
            "  \"gemm\": [\n{}\n  ],\n",
            "  \"syrk\": [\n{}\n  ],\n",
            "  \"eigensolve\": {{\"sizes\": {:?}, \"serial_ms\": {:.3}, \"batched_ms\": {:.3}, \"speedup\": {:.3}}},\n",
            "  \"gate\": {{\"tolerance\": {}, \"speedup_floor\": {}, \"floor_shape\": [{}, {}, {}], ",
            "\"syrk_speedup_floor\": {}, \"syrk_floor_shape\": [{}, {}], ",
            "\"eig_tolerance\": {}, \"enforced\": {}, \"passed\": {}, \"failures\": [{}]}}\n",
            "}}\n"
        ),
        quick,
        TRIALS,
        rows.join(",\n"),
        syrk_rows.join(",\n"),
        eig_sizes,
        serial_ms,
        batched_ms,
        eig_speedup,
        GATE_TOLERANCE,
        SPEEDUP_FLOOR,
        FLOOR_SHAPE.0,
        FLOOR_SHAPE.1,
        FLOOR_SHAPE.2,
        SYRK_SPEEDUP_FLOOR,
        SYRK_FLOOR_SHAPE.0,
        SYRK_FLOOR_SHAPE.1,
        EIG_TOLERANCE,
        !no_gate,
        gate_passed,
        gate_failures
            .iter()
            .map(|f| format!("\"{}\"", f.replace('"', "'")))
            .collect::<Vec<_>>()
            .join(", "),
    );
    std::fs::write(&out, &json).unwrap_or_else(|e| panic!("writing {out}: {e}"));
    eprintln!("wrote {out}");

    if !gate_passed {
        eprintln!("kernel_bench gate FAILED:");
        for f in &gate_failures {
            eprintln!("  - {f}");
        }
        if no_gate {
            eprintln!("(--no-gate: reporting only, not failing)");
        } else {
            std::process::exit(1);
        }
    } else {
        eprintln!("kernel_bench gate passed");
    }
}
