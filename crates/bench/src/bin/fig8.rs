//! Figure 8: projected end-to-end speedup over the baseline optimizer for
//! MEM-OPT / HYBRID-OPT / COMM-OPT / LOCAL-OPT at 8–128 simulated A100
//! GPUs. LOCAL-OPT (DP-KFAC) is MEM-OPT's placement with the factor
//! allreduce removed.
//!
//! ```sh
//! cargo run --release -p kaisa-bench --bin fig8
//! ```

use kaisa_bench::{render_table, sparkline};
use kaisa_sim::experiments::{fig8, FIG8_SCALES};

fn main() {
    println!("Figure 8 — projected end-to-end speedup on DGX-A100 nodes\n");
    let rows = fig8();
    for app in ["ResNet-50", "BERT-Large"] {
        println!(
            "--- {app} (baseline: {}) ---",
            if app == "ResNet-50" {
                "momentum SGD, 90 vs 55 epochs"
            } else {
                "Fused LAMB, 1563 vs 800 steps"
            }
        );
        let mut table = Vec::new();
        for strategy in ["MEM-OPT", "HYBRID-OPT", "COMM-OPT", "LOCAL-OPT"] {
            let series: Vec<f64> = FIG8_SCALES
                .iter()
                .map(|&s| {
                    rows.iter()
                        .find(|r| r.app == app && r.strategy == strategy && r.scale == s)
                        .map(|r| r.speedup)
                        .unwrap_or(f64::NAN)
                })
                .collect();
            let mut row = vec![strategy.to_string()];
            row.extend(series.iter().map(|v| format!("{v:.2}x")));
            row.push(sparkline(&series));
            table.push(row);
        }
        let mut header: Vec<String> = vec!["strategy".into()];
        header.extend(FIG8_SCALES.iter().map(|s| format!("{s} GPUs")));
        header.push("trend".into());
        let header_refs: Vec<&str> = header.iter().map(String::as_str).collect();
        println!("{}\n", render_table(&header_refs, &table));
    }
    println!("Shape checks (paper Section 5.6):");
    println!(" * COMM-OPT's speedup margin over MEM-OPT grows with scale;");
    println!(" * HYBRID-OPT tracks COMM-OPT while caching half the eigendecompositions;");
    println!(" * BERT-Large speedups exceed ResNet-50's and are strategy-insensitive;");
    println!(" * LOCAL-OPT edges out MEM-OPT (no factor allreduce) at stale curvature.");
}
