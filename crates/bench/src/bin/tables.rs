//! Tables 1 and 2: the paper's baseline/hardware summary and hyperparameter
//! configuration, as encoded in this reproduction.
//!
//! ```sh
//! cargo run --release -p kaisa-bench --bin tables            # both
//! cargo run --release -p kaisa-bench --bin tables -- table1
//! ```

use kaisa_bench::render_table;
use kaisa_sim::experiments::{table1, table2};

fn main() {
    let which = std::env::args().nth(1).unwrap_or_else(|| "all".to_string());
    if which == "all" || which == "table1" {
        println!("Table 1 — baseline performance and hardware summary\n");
        let rows: Vec<Vec<String>> = table1().iter().map(|r| r.to_vec()).collect();
        println!("{}", render_table(&["App", "Ref", "Baseline", "GPU", "# GPUs"], &rows));
        println!();
    }
    if which == "all" || which == "table2" {
        println!("Table 2 — hyperparameters per application\n");
        let rows: Vec<Vec<String>> = table2().iter().map(|r| r.to_vec()).collect();
        println!("{}", render_table(&["App", "BS", "LR", "WU", "K_freq", "F_freq"], &rows));
        println!("grad_worker_frac = 1 and damping = 0.003 for all cases (paper Table 2).");
    }
}
