//! Serve-layer benchmark: multi-job throughput through a shared rank pool
//! and checkpoint/restore resize latency, written as `BENCH_serve.json`.
//!
//! Two measurements:
//!
//! 1. **Job throughput** — a batch of independent K-FAC jobs is submitted
//!    to one [`JobManager`] and drained; jobs/sec and optimizer steps/sec
//!    measure how well the scheduler keeps the pool busy. Jobs request
//!    fewer ranks than the pool holds, so concurrency (not just raw step
//!    speed) is part of the number.
//! 2. **Resize latency** — one job pauses twice, checkpointing through the
//!    byte format and resuming at a different world size. Each pause's
//!    latency is read off the manager's own event log: the gap between the
//!    `Paused` event (segment checkpointed, ranks released) and the next
//!    `Admitted` event for that job (state restored, re-sharded, running
//!    again). That window covers serialization, admission, LPT re-placement
//!    and factor re-sharding — the paper's "reconfigure the world" cost.
//!
//! ```sh
//! cargo run --release -p kaisa-bench --bin serve_bench            # full
//! cargo run --release -p kaisa-bench --bin serve_bench -- --quick # CI
//! cargo run --release -p kaisa-bench --bin serve_bench -- --out p.json
//! ```

use std::time::Instant;

use kaisa_core::{DistStrategy, KfacConfig};
use kaisa_serve::{JobManager, JobSpec, JobState, ResizePoint, ServeConfig, ServeEvent};

fn kfac_config(strategy: DistStrategy) -> KfacConfig {
    KfacConfig::builder()
        .strategy(strategy)
        .grad_worker_frac(0.5)
        .factor_update_freq(2)
        .inv_update_freq(4)
        .sharded_factors(true)
        .build()
}

/// A K-FAC job sized for the benchmark; `seed` decorrelates the fleet so
/// jobs are independent work, not one cached computation.
fn fleet_job(idx: usize, steps: u64, world: usize) -> JobSpec {
    let mut spec = JobSpec::small(&format!("fleet-{idx}"));
    spec.layer_sizes = vec![16, 32, 4];
    spec.model_seed = 100 + idx as u64;
    spec.data_seed = 200 + idx as u64;
    spec.momentum = 0.9;
    spec.kfac = Some(kfac_config(DistStrategy::HybridOpt));
    spec.world = world;
    spec.total_steps = steps;
    spec
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let out = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "BENCH_serve.json".to_string());

    let (jobs, steps, job_world, pool_ranks) = if quick { (4, 8, 2, 4) } else { (12, 24, 4, 8) };

    eprintln!(
        "serve_bench: {jobs} jobs x {steps} steps at world {job_world} over {pool_ranks} pool \
         ranks ({})",
        if quick { "quick" } else { "full" }
    );

    // --- Throughput: a fleet of independent jobs through one pool. ---
    let mgr = JobManager::new(ServeConfig { pool_ranks, ..ServeConfig::default() });
    let start = Instant::now();
    let mut ids = Vec::new();
    for i in 0..jobs {
        ids.push(mgr.submit(fleet_job(i, steps, job_world)).expect("fleet job admitted"));
    }
    mgr.drain();
    let span = start.elapsed().as_secs_f64();
    for &id in &ids {
        assert_eq!(mgr.status(id).expect("exists").state, JobState::Completed);
    }
    let jobs_per_sec = jobs as f64 / span;
    let steps_per_sec = (jobs as u64 * steps) as f64 / span;
    eprintln!(
        "throughput: {jobs} jobs in {:.3} s -> {jobs_per_sec:.2} jobs/s, {steps_per_sec:.1} \
         steps/s",
        span
    );

    // --- Resize latency: pause -> checkpoint -> restore at a new world. ---
    let mut resize_spec = fleet_job(jobs, 3 * steps.max(3), job_world);
    resize_spec.name = "resizer".to_string();
    let third = resize_spec.total_steps / 3;
    resize_spec.resizes = vec![
        ResizePoint { at_step: third, world: pool_ranks },
        ResizePoint { at_step: 2 * third, world: 1 },
    ];
    let rmgr = JobManager::new(ServeConfig { pool_ranks, ..ServeConfig::default() });
    let rid = rmgr.run_to_completion(resize_spec).expect("resize job admitted");
    assert_eq!(rmgr.status(rid).expect("exists").state, JobState::Completed);
    let ckpt_bytes = rmgr.status(rid).expect("exists").checkpoint_bytes.unwrap_or(0);
    let events = rmgr.events();
    let mut resize_ms = Vec::new();
    for (i, e) in events.iter().enumerate() {
        if let ServeEvent::Paused { job, step, at } = e {
            if *job != rid {
                continue;
            }
            let resumed = events[i..]
                .iter()
                .find_map(|e2| match e2 {
                    ServeEvent::Admitted { job: j, step: s, at: a, .. }
                        if j == job && s == step =>
                    {
                        Some(*a)
                    }
                    _ => None,
                })
                .expect("paused job was re-admitted");
            resize_ms.push((resumed - at) * 1e3);
        }
    }
    assert_eq!(resize_ms.len(), 2, "both pause points must round-trip");
    let mean_ms = resize_ms.iter().sum::<f64>() / resize_ms.len() as f64;
    let max_ms = resize_ms.iter().fold(0.0f64, |m, &v| m.max(v));
    eprintln!(
        "resize latency: mean {mean_ms:.2} ms, max {max_ms:.2} ms over {} pauses (checkpoint {} \
         B)",
        resize_ms.len(),
        ckpt_bytes
    );

    let json = format!(
        concat!(
            "{{\n",
            "  \"benchmark\": \"kaisa-serve\",\n",
            "  \"quick\": {},\n",
            "  \"pool_ranks\": {},\n",
            "  \"throughput\": {{\n",
            "    \"jobs\": {},\n",
            "    \"steps_per_job\": {},\n",
            "    \"job_world\": {},\n",
            "    \"wall_seconds\": {:.4},\n",
            "    \"jobs_per_sec\": {:.3},\n",
            "    \"steps_per_sec\": {:.1}\n",
            "  }},\n",
            "  \"resize\": {{\n",
            "    \"pauses\": {},\n",
            "    \"checkpoint_bytes\": {},\n",
            "    \"latency_ms\": [{}],\n",
            "    \"mean_latency_ms\": {:.3},\n",
            "    \"max_latency_ms\": {:.3}\n",
            "  }}\n",
            "}}\n"
        ),
        quick,
        pool_ranks,
        jobs,
        steps,
        job_world,
        span,
        jobs_per_sec,
        steps_per_sec,
        resize_ms.len(),
        ckpt_bytes,
        resize_ms.iter().map(|v| format!("{v:.3}")).collect::<Vec<_>>().join(", "),
        mean_ms,
        max_ms,
    );
    std::fs::write(&out, &json).unwrap_or_else(|e| panic!("writing {out}: {e}"));
    eprintln!("wrote {out}");
}
