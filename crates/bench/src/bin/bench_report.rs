//! Machine-readable runtime benchmark: serial vs pipelined vs task-runtime
//! executors, plus a depth sweep of the cross-iteration window, written as
//! `BENCH_runtime.json` for CI artifact archival and trend tracking.
//!
//! ```sh
//! cargo run --release -p kaisa-bench --bin bench_report            # full
//! cargo run --release -p kaisa-bench --bin bench_report -- --quick # CI
//! cargo run --release -p kaisa-bench --bin bench_report -- --out path.json
//! cargo run --release -p kaisa-bench --bin bench_report -- --strategy local-opt
//! cargo run --release -p kaisa-bench --bin bench_report -- --comm-backend mutex
//! cargo run --release -p kaisa-bench --bin bench_report -- --gemm-kernel naive
//! cargo run --release -p kaisa-bench --bin bench_report -- --syrk off
//! ```

use std::time::Instant;

use kaisa_comm::{ClusterNetwork, CommOptions, Communicator, ThreadCommBackend};
use kaisa_core::{modeled_depth_makespans, DistStrategy, Kfac, KfacConfig, MemoryCategory};
use kaisa_data::{Dataset, GaussianBlobs, ShardSampler};
use kaisa_nn::models::Mlp;
use kaisa_nn::Model;
use kaisa_optim::{Optimizer, Sgd};
use kaisa_tensor::{GemmKernel, Rng, SyrkMode};

/// Benchmark scale knobs (`--quick` shrinks everything for CI).
struct Scale {
    world: usize,
    epochs: usize,
    samples: usize,
    quick: bool,
    /// Explicit `--strategy` override; `None` keeps the default
    /// HYBRID-OPT configuration (`grad_worker_frac = 0.5`).
    strategy: Option<DistStrategy>,
    /// Communicator backend the world runs on (`--comm-backend`, or the
    /// `KAISA_COMM_BACKEND` default). Recorded per row so archived runs
    /// stay comparable across the ring/mutex engines.
    comm_backend: ThreadCommBackend,
}

struct RunStats {
    /// Wall-clock seconds of the whole training loop (rank-0 thread).
    wall_seconds: f64,
    /// Seconds spent inside K-FAC stage timers, summed over stages.
    kfac_seconds: f64,
    /// Optimizer steps taken.
    steps: u64,
    /// Peak metered resident bytes across all categories.
    peak_memory_bytes: usize,
    /// Peak bytes pinned by retired cross-iteration window steps.
    peak_held_window_bytes: usize,
    /// Distribution strategy the run actually resolved to.
    strategy: &'static str,
}

/// One measured training run on thread ranks. `depth` only matters with
/// `runtime`; `pipelined`/`runtime` select the executor as in `KfacConfig`.
fn run(scale: &Scale, pipelined: bool, runtime: bool, depth: usize) -> RunStats {
    let dataset = GaussianBlobs::generate(scale.samples, 32, 4, 0.4, 130);
    let epochs = scale.epochs;
    let world = scale.world;
    let start = Instant::now();
    let strategy = scale.strategy;
    let opts = CommOptions { backend: scale.comm_backend, ..CommOptions::default() };
    let mut results = kaisa_comm::ThreadComm::run_with(world, opts, |comm| {
        let mut model = Mlp::new(&[32, 64, 48, 4], &mut Rng::seed_from_u64(31));
        let mut builder = KfacConfig::builder()
            .grad_worker_frac(0.5)
            .factor_update_freq(5)
            .inv_update_freq(10)
            .pipelined(pipelined)
            // LOCAL-OPT keeps no global factors, so there is nothing to
            // shard; `validate()` rejects the combination.
            .sharded_factors(strategy != Some(DistStrategy::LocalOpt))
            .async_runtime(runtime)
            .cross_iter_depth(if runtime { depth } else { 1 });
        if let Some(s) = strategy {
            builder = builder.strategy(s);
        }
        let mut kfac = Kfac::new(builder.build(), &mut model, comm);
        let sampler = ShardSampler::new(dataset.len(), world, comm.rank(), 8, 3);
        for epoch in 0..epochs {
            for indices in sampler.epoch_batches(epoch) {
                let (x, y) = dataset.batch(&indices);
                kfac.prepare(&mut model);
                model.zero_grad();
                let _ = model.forward_backward(&x, &y);
                if runtime {
                    kfac.step_begin(&mut model, comm);
                }
                kaisa_trainer::allreduce_gradients(&mut model, comm, 1);
                if runtime {
                    kfac.step_finish(&mut model, comm, 0.05);
                } else {
                    kfac.step(&mut model, comm, 0.05);
                }
            }
        }
        kfac.flush(comm);
        comm.barrier();
        let meter = kfac.memory_meter().clone();
        RunStats {
            wall_seconds: 0.0,
            kfac_seconds: kfac.stage_times().total_seconds(),
            steps: kfac.steps(),
            peak_memory_bytes: meter.peak_total(),
            peak_held_window_bytes: meter.peak(MemoryCategory::HeldWindows),
            strategy: kfac.strategy().name(),
        }
    });
    let wall = start.elapsed().as_secs_f64();
    let mut stats = results.swap_remove(0);
    stats.wall_seconds = wall;
    stats
}

/// Curvature-freshness comparison: train the same model/data/seed with
/// DP-KFAC's rank-local factors (LOCAL-OPT) vs globally-reduced factors
/// (COMM-OPT) for the same number of epochs, with real SGD updates, and
/// report the final-epoch mean training loss. LOCAL-OPT trades its zero
/// factor-collective traffic for staler curvature (each owner sees only
/// its own rank's statistics); this row quantifies that loss gap at
/// matched epochs.
fn final_epoch_loss(scale: &Scale, strategy: DistStrategy) -> (f64, u64) {
    let dataset = GaussianBlobs::generate(scale.samples, 32, 4, 0.4, 130);
    let world = scale.world;
    let epochs = scale.epochs;
    let opts = CommOptions { backend: scale.comm_backend, ..CommOptions::default() };
    let mut results = kaisa_comm::ThreadComm::run_with(world, opts, |comm| {
        let mut model = Mlp::new(&[32, 64, 48, 4], &mut Rng::seed_from_u64(31));
        let cfg = KfacConfig::builder()
            .strategy(strategy)
            .factor_update_freq(5)
            .inv_update_freq(10)
            .sharded_factors(strategy != DistStrategy::LocalOpt)
            .build();
        let mut kfac = Kfac::new(cfg, &mut model, comm);
        let mut optimizer = Sgd::with_momentum(0.9);
        let sampler = ShardSampler::new(dataset.len(), world, comm.rank(), 8, 3);
        let mut last_epoch_loss = 0.0f64;
        let mut last_epoch_batches = 0usize;
        for epoch in 0..epochs {
            last_epoch_loss = 0.0;
            last_epoch_batches = 0;
            for indices in sampler.epoch_batches(epoch) {
                let (x, y) = dataset.batch(&indices);
                kfac.prepare(&mut model);
                model.zero_grad();
                let r = model.forward_backward(&x, &y);
                last_epoch_loss += r.loss as f64;
                last_epoch_batches += 1;
                kaisa_trainer::allreduce_gradients(&mut model, comm, 1);
                kfac.step(&mut model, comm, 0.05);
                optimizer.step_model(&mut model, 0.05);
            }
        }
        kfac.flush(comm);
        // Mean final-epoch loss across ranks (each rank sees its own shard).
        let mut loss = [(last_epoch_loss / last_epoch_batches.max(1) as f64) as f32];
        comm.allreduce(&mut loss, kaisa_comm::ReduceOp::Avg);
        (loss[0] as f64, kfac.steps())
    });
    results.swap_remove(0)
}

fn ms_per_step(stats: &RunStats) -> (f64, f64) {
    let steps = stats.steps.max(1) as f64;
    (stats.wall_seconds / steps * 1e3, stats.kfac_seconds / steps * 1e3)
}

/// Minimal JSON string escape (keys/values here are all ASCII, but stay
/// correct on principle).
fn json_escape(s: &str) -> String {
    s.chars()
        .flat_map(|c| match c {
            '"' => "\\\"".chars().collect::<Vec<_>>(),
            '\\' => "\\\\".chars().collect(),
            c if (c as u32) < 0x20 => format!("\\u{:04x}", c as u32).chars().collect(),
            c => vec![c],
        })
        .collect()
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let out = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "BENCH_runtime.json".to_string());
    let strategy: Option<DistStrategy> = args.iter().position(|a| a == "--strategy").map(|i| {
        args.get(i + 1)
            .unwrap_or_else(|| panic!("--strategy needs a value"))
            .parse()
            .unwrap_or_else(|e| panic!("{e}"))
    });
    let comm_backend: ThreadCommBackend = args
        .iter()
        .position(|a| a == "--comm-backend")
        .map(|i| {
            args.get(i + 1)
                .unwrap_or_else(|| panic!("--comm-backend needs a value"))
                .parse()
                .unwrap_or_else(|e| panic!("{e}"))
        })
        .unwrap_or_else(ThreadCommBackend::from_env);
    // `--gemm-kernel` pins the process-wide GEMM kernel for the whole run
    // (otherwise `KAISA_GEMM_KERNEL` / Auto applies); the resolved choice
    // is recorded in every row so archived runs stay comparable across
    // the blocked and naive paths.
    if let Some(i) = args.iter().position(|a| a == "--gemm-kernel") {
        let kernel: GemmKernel = args
            .get(i + 1)
            .unwrap_or_else(|| panic!("--gemm-kernel needs a value (auto|blocked|naive)"))
            .parse()
            .unwrap_or_else(|e| panic!("{e}"));
        kaisa_tensor::set_gemm_kernel(kernel);
    }
    let gemm_kernel = kaisa_tensor::gemm_kernel();
    // `--syrk` pins the factor-statistic SYRK fast path on or off for the
    // whole run (otherwise `KAISA_SYRK` / the On default applies); like the
    // kernel, the resolved mode is recorded per row.
    if let Some(i) = args.iter().position(|a| a == "--syrk") {
        let mode: SyrkMode = args
            .get(i + 1)
            .unwrap_or_else(|| panic!("--syrk needs a value (on|off)"))
            .parse()
            .unwrap_or_else(|e| panic!("{e}"));
        kaisa_tensor::set_syrk_mode(mode);
    }
    let syrk = kaisa_tensor::syrk_mode();
    let scale = if quick {
        Scale { world: 4, epochs: 1, samples: 256, quick, strategy, comm_backend }
    } else {
        Scale { world: 8, epochs: 3, samples: 512, quick, strategy, comm_backend }
    };

    eprintln!(
        "bench_report: world={} epochs={} samples={} strategy={} comm={} gemm={} syrk={} ({})",
        scale.world,
        scale.epochs,
        scale.samples,
        scale.strategy.map(|s| s.name()).unwrap_or("default"),
        scale.comm_backend,
        gemm_kernel,
        syrk,
        if quick { "quick" } else { "full" }
    );

    let serial = run(&scale, false, false, 1);
    let pipelined = run(&scale, true, false, 1);

    // Depth sweep: the live runtime executor and the window cost model at
    // matching depths. Model dims mirror the fig7 acceptance configuration.
    let dims: Vec<(usize, usize)> = vec![
        (27, 32),
        (288, 32),
        (288, 32),
        (288, 32),
        (288, 32),
        (288, 64),
        (576, 64),
        (32, 64),
        (576, 64),
        (576, 64),
        (65, 10),
    ];
    let depths = [1usize, 2, 4];
    let modeled = modeled_depth_makespans(
        &dims,
        scale.world,
        ClusterNetwork::ethernet_10g(),
        32,
        5,
        *depths.iter().max().unwrap(),
    );

    let mut depth_entries = Vec::new();
    for &depth in &depths {
        let stats = run(&scale, false, true, depth);
        let (wall_ms, kfac_ms) = ms_per_step(&stats);
        let amortized =
            modeled.iter().find(|(d, _)| *d == depth).map(|(_, s)| *s).unwrap_or(f64::NAN);
        eprintln!(
            "depth {depth}: wall {wall_ms:.3} ms/step, kfac {kfac_ms:.3} ms/step, modeled {:.3} ms/iter",
            amortized * 1e3
        );
        depth_entries.push(format!(
            concat!(
                "    {{\"depth\": {}, \"strategy\": \"{}\", \"comm_backend\": \"{}\", ",
                "\"gemm_kernel\": \"{}\", \"syrk\": \"{}\", \"wall_ms_per_step\": {:.6}, ",
                "\"kfac_ms_per_step\": {:.6}, \"modeled_amortized_ms\": {:.6}, ",
                "\"peak_memory_bytes\": {}, \"peak_held_window_bytes\": {}}}"
            ),
            depth,
            json_escape(stats.strategy),
            scale.comm_backend,
            gemm_kernel,
            syrk,
            wall_ms,
            kfac_ms,
            amortized * 1e3,
            stats.peak_memory_bytes,
            stats.peak_held_window_bytes,
        ));
    }

    // Curvature-freshness row: LOCAL-OPT vs COMM-OPT loss at matched epochs.
    let (local_loss, local_steps) = final_epoch_loss(&scale, DistStrategy::LocalOpt);
    let (comm_loss, comm_steps) = final_epoch_loss(&scale, DistStrategy::CommOpt);
    assert_eq!(local_steps, comm_steps, "matched-epoch runs must take identical step counts");
    eprintln!(
        "curvature freshness @ {} epochs: LOCAL-OPT loss {local_loss:.4} vs COMM-OPT loss \
         {comm_loss:.4} (gap {:+.4})",
        scale.epochs,
        local_loss - comm_loss
    );

    let (serial_wall, serial_kfac) = ms_per_step(&serial);
    let (pipelined_wall, pipelined_kfac) = ms_per_step(&pipelined);
    let json = format!(
        concat!(
            "{{\n",
            "  \"benchmark\": \"kaisa-runtime\",\n",
            "  \"quick\": {},\n",
            "  \"world\": {},\n",
            "  \"comm_backend\": \"{}\",\n",
            "  \"factor_update_freq\": 5,\n",
            "  \"network_model\": \"10GbE\",\n",
            "  \"gemm_kernel\": \"{}\",\n",
            "  \"syrk\": \"{}\",\n",
            "  \"executors\": {{\n",
            "    \"serial\": {{\"strategy\": \"{}\", \"comm_backend\": \"{}\", \"gemm_kernel\": \"{}\", \"syrk\": \"{}\", \"wall_ms_per_step\": {:.6}, \"kfac_ms_per_step\": {:.6}, \"peak_memory_bytes\": {}}},\n",
            "    \"pipelined\": {{\"strategy\": \"{}\", \"comm_backend\": \"{}\", \"gemm_kernel\": \"{}\", \"syrk\": \"{}\", \"wall_ms_per_step\": {:.6}, \"kfac_ms_per_step\": {:.6}, \"peak_memory_bytes\": {}}}\n",
            "  }},\n",
            "  \"curvature_freshness\": {{\n",
            "    \"epochs\": {},\n",
            "    \"steps\": {},\n",
            "    \"local_opt_final_epoch_loss\": {:.6},\n",
            "    \"comm_opt_final_epoch_loss\": {:.6},\n",
            "    \"loss_gap_local_minus_comm\": {:.6}\n",
            "  }},\n",
            "  \"runtime_depths\": [\n{}\n  ]\n",
            "}}\n"
        ),
        scale.quick,
        scale.world,
        scale.comm_backend,
        gemm_kernel,
        syrk,
        json_escape(serial.strategy),
        scale.comm_backend,
        gemm_kernel,
        syrk,
        serial_wall,
        serial_kfac,
        serial.peak_memory_bytes,
        json_escape(pipelined.strategy),
        scale.comm_backend,
        gemm_kernel,
        syrk,
        pipelined_wall,
        pipelined_kfac,
        pipelined.peak_memory_bytes,
        scale.epochs,
        comm_steps,
        local_loss,
        comm_loss,
        local_loss - comm_loss,
        depth_entries.join(",\n"),
    );
    std::fs::write(&out, &json).unwrap_or_else(|e| panic!("writing {}: {e}", json_escape(&out)));
    eprintln!("wrote {out}");
}
