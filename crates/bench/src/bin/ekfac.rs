//! Extension experiment: EK-FAC (eigenvalue-corrected K-FAC, George et al.
//! 2018) under KAISA's distribution framework.
//!
//! The paper's Related Work singles out EK-FAC as a variant KAISA's "unified
//! design paradigm can be applied to". This binary runs K-FAC and EK-FAC
//! head-to-head with identical hyperparameters and distribution settings on
//! the spiral-classification task and reports epochs-to-target.
//!
//! ```sh
//! cargo run --release -p kaisa-bench --bin ekfac
//! ```

use kaisa_bench::render_table;
use kaisa_core::KfacConfig;
use kaisa_data::SpiralDataset;
use kaisa_nn::models::Mlp;
use kaisa_optim::{LrSchedule, Sgd};
use kaisa_tensor::Rng;
use kaisa_trainer::{train_distributed, TrainConfig};

fn main() {
    println!("EK-FAC extension — eigenvalue-corrected K-FAC under KAISA's framework\n");
    let (train, val) = SpiralDataset::generate(600, 6, 2, 0.05, 73).split_fifth();
    let target = 0.93f32;

    let mut rows = Vec::new();
    for (label, kfac) in [
        ("SGD", None),
        (
            "KAISA (K-FAC)",
            Some(KfacConfig::builder().factor_update_freq(5).inv_update_freq(10).build()),
        ),
        (
            "KAISA (EK-FAC)",
            Some(
                KfacConfig::builder().factor_update_freq(5).inv_update_freq(10).ekfac(true).build(),
            ),
        ),
    ] {
        let cfg = TrainConfig {
            epochs: 40,
            local_batch: 24,
            schedule: LrSchedule::Constant { lr: 0.25 },
            kfac,
            target_metric: Some(target),
            seed: 5,
            ..Default::default()
        };
        let r = train_distributed(
            2,
            || Mlp::new(&[6, 24, 24, 2], &mut Rng::seed_from_u64(15)),
            || Sgd::with_momentum(0.9),
            &train,
            &val,
            &cfg,
        );
        rows.push(vec![
            label.to_string(),
            format!("{:.3}", r.best_metric()),
            r.epochs_to_metric(target)
                .map(|e| e.to_string())
                .unwrap_or_else(|| "never".to_string()),
            format!("{:.1}", r.total_seconds),
        ]);
    }
    println!(
        "{}",
        render_table(
            &["optimizer", "best val acc", &format!("epochs to {target}"), "wall s"],
            &rows
        )
    );
    println!("\nEK-FAC refreshes the diagonal scaling every step in the cached");
    println!("eigenbasis (a cheap partial update), so it tolerates staler");
    println!("eigendecompositions than plain K-FAC — the property that motivated");
    println!("the variant. Both run under identical HYBRID-OPT distribution.");
}
