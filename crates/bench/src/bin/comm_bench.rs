//! Bustle-style communicator throughput harness: ops/sec and latency
//! percentiles per collective, ring backend vs mutex backend, written as
//! `BENCH_comm.json` next to `BENCH_runtime.json`.
//!
//! The map-bench Collection/Handle protocol, transliterated: a `ThreadComm`
//! world is the *Collection* (one shared engine), each rank thread owns a
//! *Handle* (its `ThreadComm`), and every thread drives a fixed op mix
//! against its handle while per-op latencies are recorded. Here the op mix
//! is one collective at a time — collectives are globally synchronizing, so
//! mixing them would only measure the slowest.
//!
//! ```sh
//! cargo run --release -p kaisa-bench --bin comm_bench            # full
//! cargo run --release -p kaisa-bench --bin comm_bench -- --quick # CI
//! cargo run --release -p kaisa-bench --bin comm_bench -- --no-gate --out p.json
//! cargo run --release -p kaisa-bench --bin comm_bench -- --worlds 8,16,64,128
//! ```
//!
//! `--worlds` takes a comma-separated list of world sizes and overrides the
//! built-in sweep (`8,16,32` full / `8` quick), so scaling past 32 ranks is
//! a flag rather than a recompile. The regression gate only runs when the
//! sweep includes the gate world (8).
//!
//! Unless `--no-gate` is passed, the run *fails* (exit 1) if at the gate
//! world (8) the ring backend regresses past the noise margin
//! ([`GATE_TOLERANCE`]) below the mutex backend on ops/sec or above it on
//! p99 latency for any collective — this is the CI regression gate for the
//! lock-free hot path. Both backends are measured in the same process on
//! the same machine with interleaved trials, so the comparison is
//! self-calibrating on noisy runners; the margin absorbs scheduler jitter
//! on oversubscribed single-core CI, where run-to-run swings reach ±15%.
//! On typical runs the ring backend wins p99 on every collective outright.

use std::time::Instant;

use kaisa_comm::{CommOptions, Communicator, ReduceOp, ThreadComm, ThreadCommBackend};

/// Elements per collective payload (4 KiB of f32 — the small-message regime
/// where per-op software overhead, not bandwidth, dominates).
const PAYLOAD: usize = 1024;
/// Warmup ops per rank before the timed window (interns groups, faults in
/// rings, settles the spin/park state).
const WARMUP: usize = 20;
/// Measured trials per (backend, world, collective); best trial is kept.
const TRIALS: usize = 3;
/// Relative noise margin for the CI gate: ring must stay within this
/// fraction of the mutex baseline on both metrics (and beats it outright on
/// quiet machines).
const GATE_TOLERANCE: f64 = 0.15;

#[derive(Clone, Copy, PartialEq)]
enum Collective {
    Allreduce,
    ReduceScatter,
    Allgather,
    Broadcast,
    Barrier,
}

const COLLECTIVES: [Collective; 5] = [
    Collective::Allreduce,
    Collective::ReduceScatter,
    Collective::Allgather,
    Collective::Broadcast,
    Collective::Barrier,
];

impl Collective {
    fn name(self) -> &'static str {
        match self {
            Collective::Allreduce => "allreduce",
            Collective::ReduceScatter => "reduce_scatter",
            Collective::Allgather => "allgather",
            Collective::Broadcast => "broadcast",
            Collective::Barrier => "barrier",
        }
    }

    /// One op against a rank's handle. `Avg` keeps allreduce values bounded
    /// across thousands of iterations.
    fn run(self, comm: &ThreadComm, buf: &mut [f32]) {
        match self {
            Collective::Allreduce => comm.allreduce(buf, ReduceOp::Avg),
            Collective::ReduceScatter => {
                let _ = comm.reduce_scatter(buf);
            }
            Collective::Allgather => {
                let _ = comm.allgather(&buf[..PAYLOAD / comm.world_size()]);
            }
            Collective::Broadcast => comm.broadcast(buf, 0),
            Collective::Barrier => comm.barrier(),
        }
    }
}

/// One backend's measurement for one (world, collective) cell.
#[derive(Clone, Copy)]
struct Sample {
    ops_per_sec: f64,
    p50_us: f64,
    p99_us: f64,
}

fn percentile(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return f64::NAN;
    }
    let idx = ((sorted.len() as f64 - 1.0) * q).round() as usize;
    sorted[idx]
}

/// Run one timed trial: every rank drives `iters` ops, the throughput
/// window is fenced by barriers, and per-op latencies from all ranks are
/// pooled for the percentiles.
fn trial(opts: &CommOptions, world: usize, iters: usize, op: Collective) -> Sample {
    let per_rank = ThreadComm::run_with(world, opts.clone(), |comm| {
        let mut buf = vec![comm.rank() as f32 + 1.0; PAYLOAD];
        for _ in 0..WARMUP {
            op.run(comm, &mut buf);
        }
        comm.barrier();
        let start = Instant::now();
        let mut lats = Vec::with_capacity(iters);
        for _ in 0..iters {
            let t = Instant::now();
            op.run(comm, &mut buf);
            lats.push(t.elapsed().as_secs_f64() * 1e6);
        }
        comm.barrier();
        (start.elapsed().as_secs_f64(), lats)
    });
    let span = per_rank.iter().map(|(s, _)| *s).fold(0.0f64, f64::max);
    let mut lats: Vec<f64> = per_rank.into_iter().flat_map(|(_, l)| l).collect();
    lats.sort_by(|a, b| a.partial_cmp(b).unwrap());
    Sample {
        ops_per_sec: (world * iters) as f64 / span,
        p50_us: percentile(&lats, 0.50),
        p99_us: percentile(&lats, 0.99),
    }
}

fn fold_best(best: Option<Sample>, s: Sample) -> Option<Sample> {
    Some(match best {
        None => s,
        Some(b) => Sample {
            ops_per_sec: b.ops_per_sec.max(s.ops_per_sec),
            p50_us: b.p50_us.min(s.p50_us),
            p99_us: b.p99_us.min(s.p99_us),
        },
    })
}

/// Measure both backends for one (world, collective) cell: best of
/// [`TRIALS`] trials each (max throughput, min percentiles — every trial is
/// a complete measurement, so the best one is the least-perturbed by
/// scheduler noise). Trials are *interleaved*, alternating which backend
/// goes first, so slow drift in machine speed (frequency scaling, cache
/// warm-up) biases neither backend.
fn measure_pair(world: usize, iters: usize, op: Collective) -> (Sample, Sample) {
    let ring_opts = CommOptions { backend: ThreadCommBackend::Ring, ..CommOptions::default() };
    let mutex_opts = CommOptions { backend: ThreadCommBackend::Mutex, ..CommOptions::default() };
    let (mut ring, mut mutex) = (None, None);
    for t in 0..TRIALS {
        if t % 2 == 0 {
            ring = fold_best(ring, trial(&ring_opts, world, iters, op));
            mutex = fold_best(mutex, trial(&mutex_opts, world, iters, op));
        } else {
            mutex = fold_best(mutex, trial(&mutex_opts, world, iters, op));
            ring = fold_best(ring, trial(&ring_opts, world, iters, op));
        }
    }
    (ring.expect("at least one trial"), mutex.expect("at least one trial"))
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let no_gate = args.iter().any(|a| a == "--no-gate");
    let out = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "BENCH_comm.json".to_string());

    let worlds: Vec<usize> = match args.iter().position(|a| a == "--worlds") {
        Some(i) => {
            let list = args.get(i + 1).unwrap_or_else(|| {
                panic!("--worlds needs a comma-separated list, e.g. --worlds 8,16,64")
            });
            let parsed: Vec<usize> = list
                .split(',')
                .map(|s| {
                    let w: usize = s
                        .trim()
                        .parse()
                        .unwrap_or_else(|e| panic!("--worlds: bad world size {s:?}: {e}"));
                    assert!(w >= 1, "--worlds: world size must be positive");
                    w
                })
                .collect();
            assert!(!parsed.is_empty(), "--worlds: empty list");
            parsed
        }
        None => {
            if quick {
                vec![8]
            } else {
                vec![8, 16, 32]
            }
        }
    };
    let iters = if quick { 200 } else { 1000 };
    const GATE_WORLD: usize = 8;

    eprintln!(
        "comm_bench: worlds={worlds:?} iters={iters} payload={PAYLOAD}xf32 trials={TRIALS} ({})",
        if quick { "quick" } else { "full" }
    );

    let mut world_blocks = Vec::new();
    let mut gate_failures: Vec<String> = Vec::new();
    for &world in &worlds {
        let mut rows = Vec::new();
        for op in COLLECTIVES {
            let (ring, mutex) = measure_pair(world, iters, op);
            eprintln!(
                "world {world:>2} {:<14} ring {:>10.0} ops/s p99 {:>8.1} us | mutex {:>10.0} ops/s p99 {:>8.1} us",
                op.name(),
                ring.ops_per_sec,
                ring.p99_us,
                mutex.ops_per_sec,
                mutex.p99_us
            );
            if world == GATE_WORLD {
                if ring.ops_per_sec < mutex.ops_per_sec * (1.0 - GATE_TOLERANCE) {
                    gate_failures.push(format!(
                        "{}: ring {:.0} ops/s < mutex {:.0} ops/s - {:.0}% margin",
                        op.name(),
                        ring.ops_per_sec,
                        mutex.ops_per_sec,
                        GATE_TOLERANCE * 100.0
                    ));
                }
                if ring.p99_us > mutex.p99_us * (1.0 + GATE_TOLERANCE) {
                    gate_failures.push(format!(
                        "{}: ring p99 {:.1} us > mutex p99 {:.1} us + {:.0}% margin",
                        op.name(),
                        ring.p99_us,
                        mutex.p99_us,
                        GATE_TOLERANCE * 100.0
                    ));
                }
            }
            let cell = |s: Sample| {
                format!(
                    "{{\"ops_per_sec\": {:.1}, \"p50_us\": {:.2}, \"p99_us\": {:.2}}}",
                    s.ops_per_sec, s.p50_us, s.p99_us
                )
            };
            rows.push(format!(
                "        {{\"collective\": \"{}\", \"ring\": {}, \"mutex\": {}}}",
                op.name(),
                cell(ring),
                cell(mutex)
            ));
        }
        world_blocks.push(format!(
            "    {{\"world\": {world}, \"collectives\": [\n{}\n      ]}}",
            rows.join(",\n")
        ));
    }

    let gate_passed = gate_failures.is_empty();
    let json = format!(
        concat!(
            "{{\n",
            "  \"benchmark\": \"kaisa-comm\",\n",
            "  \"quick\": {},\n",
            "  \"payload_elems\": {},\n",
            "  \"iters_per_rank\": {},\n",
            "  \"trials\": {},\n",
            "  \"worlds\": [\n{}\n  ],\n",
            "  \"gate\": {{\"world\": {}, \"tolerance\": {}, \"enforced\": {}, \"passed\": {}, \"failures\": [{}]}}\n",
            "}}\n"
        ),
        quick,
        PAYLOAD,
        iters,
        TRIALS,
        world_blocks.join(",\n"),
        GATE_WORLD,
        GATE_TOLERANCE,
        !no_gate,
        gate_passed,
        gate_failures
            .iter()
            .map(|f| format!("\"{}\"", f.replace('"', "'")))
            .collect::<Vec<_>>()
            .join(", "),
    );
    std::fs::write(&out, &json).unwrap_or_else(|e| panic!("writing {out}: {e}"));
    eprintln!("wrote {out}");

    if !gate_passed {
        eprintln!("comm_bench gate FAILED at world {GATE_WORLD}:");
        for f in &gate_failures {
            eprintln!("  - {f}");
        }
        if no_gate {
            eprintln!("(--no-gate: reporting only, not failing)");
        } else {
            std::process::exit(1);
        }
    } else if worlds.contains(&GATE_WORLD) {
        eprintln!("comm_bench gate passed at world {GATE_WORLD}");
    } else {
        eprintln!("comm_bench gate skipped: world {GATE_WORLD} not in sweep {worlds:?}");
    }
}
