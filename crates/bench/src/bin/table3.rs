//! Table 3: BERT pretraining — LAMB to convergence vs. KAISA at reduced
//! iteration budgets, reporting metric / iterations / time.
//!
//! The paper pretrains BERT-Large phase 2 with LAMB for 1,536 iterations and
//! shows KAISA matching the 90.8 F1 baseline in 800 iterations — 47.9% fewer
//! iterations, 36.3% less time. At miniature scale: a transformer on the
//! synthetic masked-token task. Each optimizer uses its own tuned schedule
//! (as the paper's Table 4 does): LAMB needs a long low-LR ramp; KAISA
//! tolerates a much larger learning rate (the "natural gradient methods
//! enable larger learning rates" property of Section 2).
//!
//! ```sh
//! cargo run --release -p kaisa-bench --bin table3
//! ```

use kaisa_bench::render_table;
use kaisa_core::KfacConfig;
use kaisa_data::{MaskedTokenTask, SequenceRules};
use kaisa_nn::models::{BertMini, BertMiniConfig};
use kaisa_optim::{Lamb, LrSchedule};
use kaisa_tensor::Rng;
use kaisa_trainer::{train_distributed, TrainConfig, TrainResult};

fn run(
    max_epochs: usize,
    schedule: LrSchedule,
    kfac: Option<KfacConfig>,
    data: &(MaskedTokenTask, MaskedTokenTask),
) -> TrainResult {
    let model_cfg =
        BertMiniConfig { vocab: 24, d_model: 24, heads: 4, layers: 2, ffn_dim: 48, max_seq: 12 };
    let cfg = TrainConfig {
        epochs: max_epochs,
        local_batch: 8,
        grad_accum: 2,
        schedule,
        kfac,
        seed: 40,
        eval_batch: 32,
        ..Default::default()
    };
    train_distributed(
        2,
        || BertMini::new(model_cfg, &mut Rng::seed_from_u64(41)),
        Lamb::new,
        &data.0,
        &data.1,
        &cfg,
    )
}

fn main() {
    println!("Table 3 — BERT performance comparison: KAISA vs LAMB");
    println!("(paper: SQuAD F1 after phase-2 pretraining; here: masked-token accuracy)\n");

    let rules = SequenceRules { vocab: 24, mult: 1, offset: 5, rule_probability: 0.95 };
    let data = (
        MaskedTokenTask::generate(512, 12, rules, 0.25, 140),
        MaskedTokenTask::generate(128, 12, rules, 0.25, 141),
    );

    // Baseline LAMB with its tuned long schedule.
    let lamb_epochs = 60usize;
    let lamb_schedule = LrSchedule::WarmupPoly { lr: 5e-3, warmup: 30, total: 1200, power: 1.0 };
    let lamb = run(lamb_epochs, lamb_schedule, None, &data);
    let lamb_metric = lamb.best_metric();
    let lamb_secs = lamb.total_seconds;

    let mut rows = vec![vec![
        "LAMB".to_string(),
        format!("{lamb_metric:.3}"),
        lamb.iterations.to_string(),
        format!("{lamb_secs:.1}"),
        "1.00".to_string(),
        "-".to_string(),
    ]];

    // KAISA at shrinking iteration budgets with its own tuned schedule.
    let kfac_cfg = || KfacConfig::builder().factor_update_freq(2).inv_update_freq(10).build();
    for epochs in [30usize, 24, 20, 15] {
        let schedule = LrSchedule::WarmupPoly { lr: 3e-2, warmup: 8, total: 600, power: 1.0 };
        let r = run(epochs, schedule, Some(kfac_cfg()), &data);
        rows.push(vec![
            format!("KAISA ({} iters)", r.iterations),
            format!("{:.3}", r.best_metric()),
            r.iterations.to_string(),
            format!("{:.1}", r.total_seconds),
            format!("{:.2}", r.total_seconds / lamb_secs),
            if r.best_metric() >= lamb_metric { "yes".into() } else { "no".into() },
        ]);
    }

    println!(
        "{}",
        render_table(
            &["optimizer", "masked acc", "iterations", "wall s", "time ratio", "≥ LAMB?"],
            &rows
        )
    );
    println!("\nShape check (paper Table 3): KAISA matches the LAMB baseline metric at");
    println!("roughly half the iterations (paper: 800 of 1536, with 36.3% less time).");
}
