//! Table 4: convergence under a fixed memory budget — the largest local
//! batch each optimizer/strategy fits, and the projected time to
//! convergence.
//!
//! ```sh
//! cargo run --release -p kaisa-bench --bin table4
//! ```

use kaisa_bench::render_table;
use kaisa_sim::experiments::table4;

fn main() {
    println!("Table 4 — time to convergence under a fixed per-GPU memory budget");
    println!("(ResNet-50 on 64 x V100-16GB FP32; BERT-Large phase 2 on 8 x A100-40GB FP16)\n");
    let rows = table4();
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.app.to_string(),
                r.optimizer.clone(),
                r.max_local_batch.to_string(),
                r.global_batch.to_string(),
                format!("{:.1}", r.iter_seconds * 1e3),
                format!("{:.0}", r.time_to_convergence_min),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(
            &["app", "optimizer", "max local BS", "global BS", "iter ms", "T_conv min"],
            &table
        )
    );
    println!("\nShape checks (paper Section 5.4):");
    println!(" * SGD fits the largest local batch (no K-FAC state);");
    println!(" * KAISA converges in fewer epochs/steps, so its projected time to");
    println!("   convergence beats the baseline despite costlier iterations;");
    println!(" * HYBRID-OPT (frac=1/2) matches or beats MEM-OPT's time while");
    println!("   COMM-OPT (frac=1) needs the most memory headroom.");
}
