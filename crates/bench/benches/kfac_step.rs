//! End-to-end `KFAC.step()` cost for the three distribution strategies,
//! plus the update-interval amortization (K-FAC steps on non-update
//! iterations must be far cheaper than eigendecomposition iterations).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use kaisa_comm::LocalComm;
use kaisa_core::{Kfac, KfacConfig};
use kaisa_nn::models::Mlp;
use kaisa_nn::Model;
use kaisa_tensor::{Matrix, Rng};

fn bench_step_costs(c: &mut Criterion) {
    let mut group = c.benchmark_group("kfac_step");
    group.sample_size(30);
    let mut rng = Rng::seed_from_u64(61);
    let x = Matrix::randn(64, 64, 1.0, &mut rng);
    let y: Vec<usize> = (0..64).map(|i| i % 8).collect();

    // Update-interval ablation: every-step updates vs amortized updates.
    for (label, f_freq, k_freq) in
        [("update_every_step", 1usize, 1usize), ("amortized_10_100", 10, 100)]
    {
        group.bench_with_input(
            BenchmarkId::from_parameter(label),
            &(f_freq, k_freq),
            |b, &(f_freq, k_freq)| {
                let comm = LocalComm::new();
                let mut model = Mlp::new(&[64, 96, 8], &mut Rng::seed_from_u64(62));
                let cfg = KfacConfig::builder()
                    .factor_update_freq(f_freq)
                    .inv_update_freq(k_freq)
                    .build();
                let mut kfac = Kfac::new(cfg, &mut model, &comm);
                b.iter(|| {
                    kfac.prepare(&mut model);
                    model.zero_grad();
                    let _ = model.forward_backward(&x, &y);
                    kfac.step(&mut model, &comm, 0.1);
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_step_costs);
criterion_main!(benches);
