//! Thread-rank collective throughput: allreduce and group broadcast across
//! world sizes (the substrate under every K-FAC communication stage).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use kaisa_comm::{Communicator, ReduceOp, ThreadComm};

fn bench_allreduce(c: &mut Criterion) {
    let mut group = c.benchmark_group("allreduce");
    group.sample_size(20);
    for world in [2usize, 4, 8] {
        group.bench_with_input(BenchmarkId::from_parameter(world), &world, |b, &world| {
            b.iter(|| {
                ThreadComm::run(world, |comm| {
                    let mut buf = vec![comm.rank() as f32; 16 * 1024];
                    comm.allreduce(&mut buf, ReduceOp::Avg);
                    buf[0]
                })
            })
        });
    }
    group.finish();
}

fn bench_disjoint_broadcasts(c: &mut Criterion) {
    // The HYBRID-OPT pattern: disjoint groups broadcasting concurrently vs
    // one world-wide broadcast (MEM-OPT).
    let mut group = c.benchmark_group("broadcast_pattern");
    group.sample_size(20);
    group.bench_function("mem_opt_world8", |b| {
        b.iter(|| {
            ThreadComm::run(8, |comm| {
                let mut buf = vec![1.0f32; 16 * 1024];
                comm.broadcast(&mut buf, 0);
                buf[0]
            })
        })
    });
    group.bench_function("hybrid_4_groups_of_2", |b| {
        b.iter(|| {
            ThreadComm::run(8, |comm| {
                let r = comm.rank();
                let root = r - (r % 2);
                let group = [root, root + 1];
                let mut buf = vec![1.0f32; 16 * 1024];
                comm.broadcast_group(&mut buf, root, &group);
                buf[0]
            })
        })
    });
    group.finish();
}

criterion_group!(benches, bench_allreduce, bench_disjoint_broadcasts);
criterion_main!(benches);
