//! Symmetric eigendecomposition cost across factor sizes — the O(N³)
//! scaling that KAISA's LPT work distribution assumes (paper Section 3.2),
//! and eigendecomposition vs. Cholesky-based direct inversion (the Section
//! 2.1.3 design choice).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use kaisa_linalg::{spd_inverse, sym_eig};
use kaisa_tensor::{Matrix, Rng};

fn random_factor(n: usize, seed: u64) -> Matrix {
    let mut rng = Rng::seed_from_u64(seed);
    let a = Matrix::randn(n, n, 1.0, &mut rng);
    let mut s = a.matmul_tn(&a);
    s.scale(1.0 / n as f32);
    s.add_diag(0.01);
    s
}

fn bench_eigen_sizes(c: &mut Criterion) {
    let mut group = c.benchmark_group("sym_eig");
    for n in [16usize, 32, 64, 128, 256] {
        let m = random_factor(n, n as u64);
        group.bench_with_input(BenchmarkId::from_parameter(n), &m, |b, m| {
            b.iter(|| sym_eig(m).unwrap())
        });
    }
    group.finish();
}

fn bench_eigen_vs_inverse(c: &mut Criterion) {
    let mut group = c.benchmark_group("eig_vs_inverse");
    let n = 96;
    let m = random_factor(n, 7);
    group.bench_function("sym_eig_96", |b| b.iter(|| sym_eig(&m).unwrap()));
    group.bench_function("spd_inverse_96", |b| b.iter(|| spd_inverse(&m).unwrap()));
    group.finish();
}

criterion_group!(benches, bench_eigen_sizes, bench_eigen_vs_inverse);
criterion_main!(benches);
