//! The Section 3.2 ablation: longest-processing-time eigendecomposition
//! placement vs. round-robin — scheduling cost and resulting makespan.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use kaisa_core::{plan_assignments, AssignmentStrategy};

fn layer_dims(layers: usize) -> Vec<(usize, usize)> {
    (0..layers).map(|i| (32 + 97 * (i % 11), 16 + 53 * (i % 7))).collect()
}

fn bench_planning(c: &mut Criterion) {
    let mut group = c.benchmark_group("plan_assignments");
    for layers in [54usize, 144, 512] {
        let dims = layer_dims(layers);
        group.bench_with_input(BenchmarkId::new("lpt", layers), &dims, |b, dims| {
            b.iter(|| plan_assignments(dims, 64, 1.0, AssignmentStrategy::ComputeLpt))
        });
        group.bench_with_input(BenchmarkId::new("round_robin", layers), &dims, |b, dims| {
            b.iter(|| plan_assignments(dims, 64, 1.0, AssignmentStrategy::RoundRobin))
        });
    }
    group.finish();
}

fn report_makespans(c: &mut Criterion) {
    // Not a timing benchmark: print the makespan quality difference once so
    // `cargo bench` output records the ablation result.
    let dims = layer_dims(144);
    let lpt = plan_assignments(&dims, 64, 1.0, AssignmentStrategy::ComputeLpt);
    let rr = plan_assignments(&dims, 64, 1.0, AssignmentStrategy::RoundRobin);
    println!(
        "\nLPT makespan {:.3e} vs round-robin {:.3e} ({}% better)\n",
        lpt.makespan(),
        rr.makespan(),
        ((1.0 - lpt.makespan() / rr.makespan()) * 100.0).round()
    );
    // Keep criterion happy with a trivial measurement.
    c.bench_function("noop", |b| b.iter(|| std::hint::black_box(1 + 1)));
}

criterion_group!(benches, bench_planning, report_makespans);
criterion_main!(benches);
