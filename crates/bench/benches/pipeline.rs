//! Serial vs pipelined `Kfac::step` at world size 4: the stage pipeline
//! overlaps factor/eig/gradient collectives with other layers' local
//! compute, so the pipelined executor should win on multi-rank worlds while
//! staying bitwise-identical (see tests/pipeline_equivalence.rs).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use kaisa_comm::ThreadComm;
use kaisa_core::{Kfac, KfacConfig};
use kaisa_nn::models::Mlp;
use kaisa_nn::Model;
use kaisa_tensor::{Matrix, Rng};

const WORLD: usize = 4;

fn run_steps(pipelined: bool) {
    ThreadComm::run(WORLD, |comm| {
        let mut rng = Rng::seed_from_u64(71);
        let x = Matrix::randn(32, 48, 1.0, &mut rng);
        let y: Vec<usize> = (0..32).map(|i| i % 6).collect();
        let mut model = Mlp::new(&[48, 64, 56, 6], &mut Rng::seed_from_u64(72));
        let cfg = KfacConfig::builder()
            .grad_worker_frac(0.5)
            .factor_update_freq(1)
            .inv_update_freq(2)
            .pipelined(pipelined)
            .build();
        let mut kfac = Kfac::new(cfg, &mut model, comm);
        for _ in 0..4 {
            kfac.prepare(&mut model);
            model.zero_grad();
            let _ = model.forward_backward(&x, &y);
            kfac.step(&mut model, comm, 0.1);
        }
    });
}

fn bench_pipeline(c: &mut Criterion) {
    let mut group = c.benchmark_group("pipeline");
    group.sample_size(20);
    for pipelined in [false, true] {
        let label = if pipelined { "pipelined" } else { "serial" };
        group.bench_with_input(BenchmarkId::from_parameter(label), &pipelined, |b, &p| {
            b.iter(|| run_steps(p))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_pipeline);
criterion_main!(benches);
