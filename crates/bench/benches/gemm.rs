//! GEMM kernel throughput: the plain, transposed-A (factor statistics), and
//! transposed-B (forward pass) variants.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use kaisa_tensor::{Matrix, Rng};

fn bench_gemm_square(c: &mut Criterion) {
    let mut group = c.benchmark_group("gemm_nn_square");
    for n in [32usize, 64, 128, 256] {
        let mut rng = Rng::seed_from_u64(n as u64);
        let a = Matrix::randn(n, n, 1.0, &mut rng);
        let b = Matrix::randn(n, n, 1.0, &mut rng);
        group.throughput(Throughput::Elements((2 * n * n * n) as u64));
        group.bench_with_input(BenchmarkId::from_parameter(n), &(a, b), |bench, (a, b)| {
            bench.iter(|| a.matmul(b))
        });
    }
    group.finish();
}

fn bench_factor_statistic(c: &mut Criterion) {
    // The K-FAC hot path: aᵀa over a batch of activations.
    let mut group = c.benchmark_group("factor_statistic_ata");
    for (rows, dim) in [(128usize, 64usize), (512, 128), (1024, 256)] {
        let mut rng = Rng::seed_from_u64(3);
        let a = Matrix::randn(rows, dim, 1.0, &mut rng);
        group.throughput(Throughput::Elements((2 * rows * dim * dim) as u64));
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{rows}x{dim}")),
            &a,
            |bench, a| bench.iter(|| a.matmul_tn(a)),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_gemm_square, bench_factor_statistic);
criterion_main!(benches);
