//! The Section 4.4 ablation: gradient preconditioning with the eigenvalue
//! outer product `1/(v_G v_Aᵀ + γ)` precomputed once vs. recomputed at every
//! step (the paper measured up to 53% faster preconditioning with the
//! precompute).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use kaisa_core::KfacLayerState;
use kaisa_tensor::{Matrix, Rng};

fn prepared_state(a_dim: usize, g_dim: usize, precompute: bool) -> (KfacLayerState, Matrix) {
    let mut rng = Rng::seed_from_u64(11);
    let a = Matrix::randn(a_dim, a_dim, 1.0, &mut rng);
    let mut fa = a.matmul_tn(&a);
    fa.scale(1.0 / a_dim as f32);
    let g = Matrix::randn(g_dim, g_dim, 1.0, &mut rng);
    let mut fg = g.matmul_tn(&g);
    fg.scale(1.0 / g_dim as f32);

    let mut state = KfacLayerState::new("bench", a_dim, g_dim);
    state.update_factors(fa, fg, 0.0);
    let (qa, va) = state.eig_a();
    let (qg, vg) = state.eig_g();
    state.qa = Some(qa);
    state.qg = Some(qg);
    if precompute {
        state.outer = Some(KfacLayerState::compute_outer(&vg, &va, 0.003));
    } else {
        state.va = Some(va);
        state.vg = Some(vg);
    }
    let grad = Matrix::randn(g_dim, a_dim, 1.0, &mut rng);
    (state, grad)
}

fn bench_precondition(c: &mut Criterion) {
    let mut group = c.benchmark_group("precondition");
    for &(a_dim, g_dim) in &[(64usize, 32usize), (256, 128), (576, 64)] {
        let label = format!("{a_dim}x{g_dim}");
        let (with, grad) = prepared_state(a_dim, g_dim, true);
        group.bench_with_input(
            BenchmarkId::new("precomputed_outer", &label),
            &(with, grad.clone()),
            |b, (state, grad)| b.iter(|| state.precondition_eigen(grad, 0.003)),
        );
        let (without, grad) = prepared_state(a_dim, g_dim, false);
        group.bench_with_input(
            BenchmarkId::new("recompute_outer", &label),
            &(without, grad),
            |b, (state, grad)| b.iter(|| state.precondition_eigen(grad, 0.003)),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_precondition);
criterion_main!(benches);
