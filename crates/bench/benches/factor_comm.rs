//! The Section 4.3 ablation: triangular vs. full factor communication —
//! packing halves the payload but adds extract/reconstruct overhead, which
//! the paper found unprofitable on latency-bound networks.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use kaisa_linalg::{pack_upper, unpack_upper};
use kaisa_tensor::{Matrix, Rng};

fn symmetric(n: usize) -> Matrix {
    let mut rng = Rng::seed_from_u64(n as u64);
    let a = Matrix::randn(n, n, 1.0, &mut rng);
    a.matmul_tn(&a)
}

fn bench_pack_unpack(c: &mut Criterion) {
    let mut group = c.benchmark_group("triangular_pack");
    for n in [64usize, 256, 1024] {
        let m = symmetric(n);
        group.bench_with_input(BenchmarkId::new("pack", n), &m, |b, m| b.iter(|| pack_upper(m)));
        let packed = pack_upper(&m);
        group.bench_with_input(BenchmarkId::new("unpack", n), &packed, |b, packed| {
            b.iter(|| unpack_upper(packed, n))
        });
        // The full-matrix alternative: a plain copy of n² floats.
        group.bench_with_input(BenchmarkId::new("full_copy", n), &m, |b, m| {
            b.iter(|| m.as_slice().to_vec())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_pack_unpack);
criterion_main!(benches);
