//! The Section 4.3 ablation: triangular vs. full factor communication —
//! packing halves the payload but adds extract/reconstruct overhead, which
//! the paper found unprofitable on latency-bound networks. Plus the sharded
//! factor reduction: dense allreduce vs reduce-scatter to shard owners over
//! the same payload.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use kaisa_comm::{CommTag, Communicator, ReduceOp, ShardSpec, ThreadComm};
use kaisa_linalg::{pack_upper, unpack_upper};
use kaisa_tensor::{Matrix, Rng};

fn symmetric(n: usize) -> Matrix {
    let mut rng = Rng::seed_from_u64(n as u64);
    let a = Matrix::randn(n, n, 1.0, &mut rng);
    a.matmul_tn(&a)
}

fn bench_pack_unpack(c: &mut Criterion) {
    let mut group = c.benchmark_group("triangular_pack");
    for n in [64usize, 256, 1024] {
        let m = symmetric(n);
        group.bench_with_input(BenchmarkId::new("pack", n), &m, |b, m| b.iter(|| pack_upper(m)));
        let packed = pack_upper(&m);
        group.bench_with_input(BenchmarkId::new("unpack", n), &packed, |b, packed| {
            b.iter(|| unpack_upper(packed, n))
        });
        // The full-matrix alternative: a plain copy of n² floats.
        group.bench_with_input(BenchmarkId::new("full_copy", n), &m, |b, m| {
            b.iter(|| m.as_slice().to_vec())
        });
    }
    group.finish();
}

fn bench_factor_reduction(c: &mut Criterion) {
    // One packed factor payload per round; the sharded variant retires the
    // same reduction but each rank materializes only its owned sections.
    const LEN: usize = 16 * 1024;
    const ROUNDS: usize = 8;
    let mut group = c.benchmark_group("factor_reduction");
    group.sample_size(10);
    for world in [4usize, 8] {
        group.bench_with_input(BenchmarkId::new("dense_allreduce", world), &world, |b, &world| {
            b.iter(|| {
                ThreadComm::run(world, |comm| {
                    let ranks: Vec<usize> = (0..world).collect();
                    let payload = vec![comm.rank() as f32 + 1.0; LEN];
                    for _ in 0..ROUNDS {
                        let pending = comm.begin_allreduce(
                            &payload,
                            ReduceOp::Avg,
                            &ranks,
                            CommTag::FactorComm,
                        );
                        let mut out = vec![0.0f32; LEN];
                        comm.complete(pending, &mut out);
                    }
                })
            })
        });
        group.bench_with_input(
            BenchmarkId::new("sharded_reduce_scatter", world),
            &world,
            |b, &world| {
                b.iter(|| {
                    ThreadComm::run(world, |comm| {
                        let ranks: Vec<usize> = (0..world).collect();
                        // A-section on rank 0, G-section on rank 1: the
                        // split-worker layout of `factor_shards`.
                        let shards = [
                            ShardSpec { owner: 0, start: 0, len: LEN / 2 },
                            ShardSpec { owner: 1 % world, start: LEN / 2, len: LEN - LEN / 2 },
                        ];
                        let owned: usize =
                            shards.iter().filter(|s| s.owner == comm.rank()).map(|s| s.len).sum();
                        let payload = vec![comm.rank() as f32 + 1.0; LEN];
                        for _ in 0..ROUNDS {
                            let pending = comm.begin_reduce_scatter(
                                &payload,
                                ReduceOp::Avg,
                                &ranks,
                                &shards,
                                CommTag::FactorReduce,
                            );
                            let mut out = vec![0.0f32; owned];
                            comm.complete(pending, &mut out);
                        }
                    })
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_pack_unpack, bench_factor_reduction);
criterion_main!(benches);
