//! The three `Kfac::step` executors head to head at world size 4 — serial,
//! sweep-pipelined, and the per-rank task runtime — plus the runtime's
//! two-step lookahead split (`step_begin` before the DDP allreduce,
//! `step_finish` after). All four are bitwise identical
//! (see tests/pipeline_equivalence.rs); this measures the schedule cost.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use kaisa_comm::ThreadComm;
use kaisa_core::{Kfac, KfacConfig};
use kaisa_nn::models::Mlp;
use kaisa_nn::Model;
use kaisa_tensor::{Matrix, Rng};

const WORLD: usize = 4;

#[derive(Clone, Copy)]
enum Executor {
    Serial,
    Pipelined,
    Runtime,
    RuntimeLookahead,
}

impl Executor {
    fn label(self) -> &'static str {
        match self {
            Executor::Serial => "serial",
            Executor::Pipelined => "pipelined",
            Executor::Runtime => "runtime",
            Executor::RuntimeLookahead => "runtime-lookahead",
        }
    }
}

fn run_steps(executor: Executor) {
    ThreadComm::run(WORLD, |comm| {
        let mut rng = Rng::seed_from_u64(71);
        let x = Matrix::randn(32, 48, 1.0, &mut rng);
        let y: Vec<usize> = (0..32).map(|i| i % 6).collect();
        let mut model = Mlp::new(&[48, 64, 56, 6], &mut Rng::seed_from_u64(72));
        let cfg = KfacConfig::builder()
            .grad_worker_frac(0.5)
            .factor_update_freq(1)
            .inv_update_freq(2)
            .pipelined(matches!(executor, Executor::Pipelined))
            .async_runtime(matches!(executor, Executor::Runtime | Executor::RuntimeLookahead))
            .build();
        let mut kfac = Kfac::new(cfg, &mut model, comm);
        for _ in 0..4 {
            kfac.prepare(&mut model);
            model.zero_grad();
            let _ = model.forward_backward(&x, &y);
            if matches!(executor, Executor::RuntimeLookahead) {
                kfac.step_begin(&mut model, comm);
                kfac.step_finish(&mut model, comm, 0.1);
            } else {
                kfac.step(&mut model, comm, 0.1);
            }
        }
    });
}

fn bench_runtime(c: &mut Criterion) {
    let mut group = c.benchmark_group("runtime");
    group.sample_size(20);
    for executor in
        [Executor::Serial, Executor::Pipelined, Executor::Runtime, Executor::RuntimeLookahead]
    {
        group.bench_with_input(
            BenchmarkId::from_parameter(executor.label()),
            &executor,
            |b, &e| b.iter(|| run_steps(e)),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_runtime);
criterion_main!(benches);
