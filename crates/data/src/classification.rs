//! Dense-feature classification datasets.

use kaisa_tensor::{Matrix, Rng};

use crate::loader::Dataset;

/// Gaussian mixture classification: `classes` isotropic clusters in
/// `features`-dimensional space. Linearly separable at large margins, so
/// convergence behaviour is clean and fast — the quickstart dataset.
#[derive(Debug, Clone)]
pub struct GaussianBlobs {
    features: usize,
    classes: usize,
    inputs: Matrix,
    labels: Vec<usize>,
}

impl GaussianBlobs {
    /// Generate `samples` points across `classes` clusters with the given
    /// intra-cluster standard deviation (cluster centers have unit scale).
    pub fn generate(
        samples: usize,
        features: usize,
        classes: usize,
        noise: f32,
        seed: u64,
    ) -> Self {
        let mut rng = Rng::seed_from_u64(seed);
        // Random unit-scale class centers.
        let centers = Matrix::randn(classes, features, 1.0, &mut rng);
        let mut inputs = Matrix::zeros(samples, features);
        let mut labels = Vec::with_capacity(samples);
        for i in 0..samples {
            let class = i % classes;
            labels.push(class);
            let row = inputs.row_mut(i);
            for (j, v) in row.iter_mut().enumerate() {
                *v = centers.get(class, j) + noise * rng.normal();
            }
        }
        GaussianBlobs { features, classes, inputs, labels }
    }

    /// Feature dimensionality.
    pub fn features(&self) -> usize {
        self.features
    }

    /// Number of classes.
    pub fn classes(&self) -> usize {
        self.classes
    }

    /// Split off the last `val_count` samples as a validation set drawn from
    /// the *same* class centers (generating a second dataset with another
    /// seed would re-draw the centers and make validation meaningless).
    pub fn split(self, val_count: usize) -> (Self, Self) {
        assert!(val_count < self.len(), "validation split larger than dataset");
        let train_count = self.len() - val_count;
        let train = GaussianBlobs {
            features: self.features,
            classes: self.classes,
            inputs: self.inputs.rows_slice(0, train_count),
            labels: self.labels[..train_count].to_vec(),
        };
        let val = GaussianBlobs {
            features: self.features,
            classes: self.classes,
            inputs: self.inputs.rows_slice(train_count, train_count + val_count),
            labels: self.labels[train_count..].to_vec(),
        };
        (train, val)
    }
}

impl Dataset for GaussianBlobs {
    type Input = Matrix;
    type Target = Vec<usize>;

    fn len(&self) -> usize {
        self.labels.len()
    }

    fn batch(&self, indices: &[usize]) -> (Matrix, Vec<usize>) {
        let mut x = Matrix::zeros(indices.len(), self.features);
        let mut y = Vec::with_capacity(indices.len());
        for (r, &idx) in indices.iter().enumerate() {
            x.row_mut(r).copy_from_slice(self.inputs.row(idx));
            y.push(self.labels[idx]);
        }
        (x, y)
    }
}

/// Two-dimensional interleaved spirals lifted into `features` dimensions —
/// non-linearly separable, so second-order vs. first-order convergence
/// differences show up clearly.
#[derive(Debug, Clone)]
pub struct SpiralDataset {
    features: usize,
    classes: usize,
    inputs: Matrix,
    labels: Vec<usize>,
}

impl SpiralDataset {
    /// Generate interleaved spirals. `features >= 2`; extra dimensions are
    /// random rotations of the base 2-D coordinates plus noise.
    pub fn generate(
        samples: usize,
        features: usize,
        classes: usize,
        noise: f32,
        seed: u64,
    ) -> Self {
        assert!(features >= 2, "spiral needs at least 2 features");
        let mut rng = Rng::seed_from_u64(seed);
        // A random projection matrix lifting 2-D spirals to `features` dims.
        let lift = Matrix::randn(2, features, 1.0, &mut rng);
        let mut inputs = Matrix::zeros(samples, features);
        let mut labels = Vec::with_capacity(samples);
        for i in 0..samples {
            let class = i % classes;
            labels.push(class);
            let t = (i / classes) as f32 / ((samples / classes).max(1)) as f32; // 0..1
            let radius = 0.2 + 0.8 * t;
            let angle = 2.5 * std::f32::consts::PI * t
                + (class as f32) * 2.0 * std::f32::consts::PI / classes as f32;
            let p = [radius * angle.cos(), radius * angle.sin()];
            let row = inputs.row_mut(i);
            for (j, v) in row.iter_mut().enumerate() {
                *v = p[0] * lift.get(0, j) + p[1] * lift.get(1, j) + noise * rng.normal();
            }
        }
        SpiralDataset { features, classes, inputs, labels }
    }

    /// Feature dimensionality.
    pub fn features(&self) -> usize {
        self.features
    }

    /// Number of classes.
    pub fn classes(&self) -> usize {
        self.classes
    }

    /// Split off every 5th sample as a validation set sharing the same
    /// random lift (a fresh generation would re-draw the projection and
    /// decorrelate train/val). Returns `(train, val)`.
    pub fn split_fifth(self) -> (Self, Self) {
        let mut train_rows = Vec::new();
        let mut train_labels = Vec::new();
        let mut val_rows = Vec::new();
        let mut val_labels = Vec::new();
        for i in 0..self.len() {
            if i % 5 == 4 {
                val_rows.extend_from_slice(self.inputs.row(i));
                val_labels.push(self.labels[i]);
            } else {
                train_rows.extend_from_slice(self.inputs.row(i));
                train_labels.push(self.labels[i]);
            }
        }
        let f = self.features;
        let c = self.classes;
        (
            SpiralDataset {
                features: f,
                classes: c,
                inputs: kaisa_tensor::Matrix::from_vec(train_labels.len(), f, train_rows),
                labels: train_labels,
            },
            SpiralDataset {
                features: f,
                classes: c,
                inputs: kaisa_tensor::Matrix::from_vec(val_labels.len(), f, val_rows),
                labels: val_labels,
            },
        )
    }
}

impl Dataset for SpiralDataset {
    type Input = Matrix;
    type Target = Vec<usize>;

    fn len(&self) -> usize {
        self.labels.len()
    }

    fn batch(&self, indices: &[usize]) -> (Matrix, Vec<usize>) {
        let mut x = Matrix::zeros(indices.len(), self.features);
        let mut y = Vec::with_capacity(indices.len());
        for (r, &idx) in indices.iter().enumerate() {
            x.row_mut(r).copy_from_slice(self.inputs.row(idx));
            y.push(self.labels[idx]);
        }
        (x, y)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn blobs_shapes_and_balance() {
        let ds = GaussianBlobs::generate(90, 8, 3, 0.1, 1);
        assert_eq!(ds.len(), 90);
        let (x, y) = ds.batch(&[0, 1, 2]);
        assert_eq!(x.shape(), (3, 8));
        assert_eq!(y, vec![0, 1, 2]);
        // Class balance.
        let counts =
            (0..3).map(|c| (0..90).filter(|&i| ds.labels[i] == c).count()).collect::<Vec<_>>();
        assert_eq!(counts, vec![30, 30, 30]);
    }

    #[test]
    #[allow(clippy::needless_range_loop)]
    fn blobs_are_separable_at_low_noise() {
        let ds = GaussianBlobs::generate(300, 4, 3, 0.05, 2);
        // Nearest-centroid classification should be nearly perfect.
        let mut centroids = vec![vec![0.0f32; 4]; 3];
        let mut counts = [0usize; 3];
        for i in 0..300 {
            let c = ds.labels[i];
            counts[c] += 1;
            for j in 0..4 {
                centroids[c][j] += ds.inputs.get(i, j);
            }
        }
        for c in 0..3 {
            for v in centroids[c].iter_mut() {
                *v /= counts[c] as f32;
            }
        }
        let mut correct = 0;
        for i in 0..300 {
            let mut best = (f32::INFINITY, 0usize);
            for (c, cen) in centroids.iter().enumerate() {
                let d: f32 = (0..4).map(|j| (ds.inputs.get(i, j) - cen[j]).powi(2)).sum();
                if d < best.0 {
                    best = (d, c);
                }
            }
            if best.1 == ds.labels[i] {
                correct += 1;
            }
        }
        assert!(correct > 295, "separable dataset: {correct}/300");
    }

    #[test]
    fn spiral_reproducible() {
        let a = SpiralDataset::generate(60, 6, 2, 0.01, 9);
        let b = SpiralDataset::generate(60, 6, 2, 0.01, 9);
        assert_eq!(a.inputs, b.inputs);
        assert_eq!(a.labels, b.labels);
    }
}
