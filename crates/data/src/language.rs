//! Synthetic masked-token language modeling (the Wikipedia/BookCorpus
//! stand-in for BERT pretraining).

use kaisa_nn::models::TokenBatch;
use kaisa_tensor::Rng;

use crate::loader::Dataset;

/// The generative rules behind the synthetic corpus.
///
/// Sequences are drawn from a first-order Markov chain with a strongly
/// peaked transition matrix: from token `t` the successor is
/// `(a·t + b) mod vocab` with high probability, uniform otherwise. A masked
/// position is therefore predictable from its neighbours — the property BERT
/// pretraining exploits — with an irreducible noise floor set by
/// `rule_probability`.
#[derive(Debug, Clone, Copy)]
pub struct SequenceRules {
    /// Vocabulary size (token 0 is reserved as `[MASK]`).
    pub vocab: usize,
    /// Multiplier of the affine successor rule.
    pub mult: usize,
    /// Offset of the affine successor rule.
    pub offset: usize,
    /// Probability a transition follows the rule (vs. uniform noise).
    pub rule_probability: f64,
}

impl Default for SequenceRules {
    fn default() -> Self {
        SequenceRules { vocab: 32, mult: 1, offset: 7, rule_probability: 0.9 }
    }
}

/// Pre-generated corpus of token sequences with BERT-style masking.
#[derive(Debug, Clone)]
pub struct MaskedTokenTask {
    rules: SequenceRules,
    seq_len: usize,
    sequences: Vec<Vec<usize>>,
    mask_prob: f64,
    mask_seed: u64,
}

impl MaskedTokenTask {
    /// Generate `samples` sequences of length `seq_len`.
    pub fn generate(
        samples: usize,
        seq_len: usize,
        rules: SequenceRules,
        mask_prob: f64,
        seed: u64,
    ) -> Self {
        assert!(rules.vocab > 2, "vocabulary too small");
        let mut rng = Rng::seed_from_u64(seed);
        let mut sequences = Vec::with_capacity(samples);
        for _ in 0..samples {
            let mut seq = Vec::with_capacity(seq_len);
            // Start anywhere except the reserved mask token.
            let mut tok = 1 + rng.index(rules.vocab - 1);
            seq.push(tok);
            for _ in 1..seq_len {
                tok = if rng.bernoulli(rules.rule_probability) {
                    let next = (rules.mult * tok + rules.offset) % rules.vocab;
                    if next == 0 {
                        1
                    } else {
                        next
                    }
                } else {
                    1 + rng.index(rules.vocab - 1)
                };
                seq.push(tok);
            }
            sequences.push(seq);
        }
        MaskedTokenTask { rules, seq_len, sequences, mask_prob, mask_seed: seed ^ 0xDEAD_BEEF }
    }

    /// The generative rules.
    pub fn rules(&self) -> SequenceRules {
        self.rules
    }

    /// Sequence length.
    pub fn seq_len(&self) -> usize {
        self.seq_len
    }
}

impl Dataset for MaskedTokenTask {
    type Input = TokenBatch;
    type Target = ();

    fn len(&self) -> usize {
        self.sequences.len()
    }

    fn batch(&self, indices: &[usize]) -> (TokenBatch, ()) {
        // Masking is deterministic per (sequence index), so a batch is
        // reproducible regardless of which rank materializes it.
        let rows = indices.len() * self.seq_len;
        let mut tokens = Vec::with_capacity(rows);
        let mut labels = vec![None; rows];
        for (b, &idx) in indices.iter().enumerate() {
            let mut mask_rng = Rng::seed_from_u64(self.mask_seed ^ (idx as u64) << 17);
            let seq = &self.sequences[idx];
            for (p, &tok) in seq.iter().enumerate() {
                if mask_rng.bernoulli(self.mask_prob) {
                    labels[b * self.seq_len + p] = Some(tok);
                    tokens.push(0); // [MASK]
                } else {
                    tokens.push(tok);
                }
            }
        }
        (TokenBatch { tokens, batch: indices.len(), seq: self.seq_len, labels }, ())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn batch_shape_and_mask_rate() {
        let task = MaskedTokenTask::generate(50, 16, SequenceRules::default(), 0.2, 1);
        let (batch, _) = task.batch(&(0..50).collect::<Vec<_>>());
        assert_eq!(batch.tokens.len(), 800);
        assert_eq!(batch.batch, 50);
        assert_eq!(batch.seq, 16);
        let masked = batch.labels.iter().filter(|l| l.is_some()).count();
        let rate = masked as f64 / 800.0;
        assert!((rate - 0.2).abs() < 0.06, "mask rate {rate}");
        // Every masked position has token 0.
        for (t, l) in batch.tokens.iter().zip(&batch.labels) {
            if l.is_some() {
                assert_eq!(*t, 0);
            }
        }
    }

    #[test]
    fn sequences_follow_rule_mostly() {
        let rules = SequenceRules { vocab: 32, mult: 1, offset: 7, rule_probability: 1.0 };
        let task = MaskedTokenTask::generate(5, 20, rules, 0.0, 2);
        let (batch, _) = task.batch(&[0]);
        for w in batch.tokens.windows(2) {
            let expect = (w[0] + 7) % 32;
            let expect = if expect == 0 { 1 } else { expect };
            assert_eq!(w[1], expect);
        }
    }

    #[test]
    fn masking_is_deterministic_per_sequence() {
        let task = MaskedTokenTask::generate(10, 8, SequenceRules::default(), 0.3, 3);
        let (a, _) = task.batch(&[4]);
        let (b, _) = task.batch(&[4]);
        assert_eq!(a.tokens, b.tokens);
        assert_eq!(a.labels, b.labels);
    }

    #[test]
    fn no_mask_token_in_unmasked_corpus() {
        let task = MaskedTokenTask::generate(20, 16, SequenceRules::default(), 0.0, 4);
        let (batch, _) = task.batch(&(0..20).collect::<Vec<_>>());
        assert!(batch.tokens.iter().all(|&t| t != 0), "token 0 is reserved for [MASK]");
    }
}
