//! Synthetic binary segmentation (the LGG-MRI stand-in).

use kaisa_tensor::{Rng, Tensor4};

use crate::loader::Dataset;

/// Elliptical-blob segmentation: each image contains a bright ellipse of
/// random position/size/eccentricity over textured background noise; the
/// target mask marks the ellipse. Structurally matches the tumor-segmentation
/// task: a compact bright region of variable shape against noise.
#[derive(Debug, Clone)]
pub struct BlobSegmentation {
    images: Tensor4,
    masks: Tensor4,
}

impl BlobSegmentation {
    /// Generate `samples` single-channel images of `size x size`.
    pub fn generate(samples: usize, size: usize, noise: f32, seed: u64) -> Self {
        let mut rng = Rng::seed_from_u64(seed);
        let mut images = Tensor4::zeros(samples, 1, size, size);
        let mut masks = Tensor4::zeros(samples, 1, size, size);
        for i in 0..samples {
            let cx = rng.uniform(0.25, 0.75) * size as f32;
            let cy = rng.uniform(0.25, 0.75) * size as f32;
            let rx = rng.uniform(0.12, 0.3) * size as f32;
            let ry = rng.uniform(0.12, 0.3) * size as f32;
            let intensity = rng.uniform(1.0, 2.0);
            for y in 0..size {
                for x in 0..size {
                    let dx = (x as f32 - cx) / rx;
                    let dy = (y as f32 - cy) / ry;
                    let inside = dx * dx + dy * dy <= 1.0;
                    let base = if inside { intensity } else { 0.0 };
                    images.set(i, 0, y, x, base + noise * rng.normal());
                    if inside {
                        masks.set(i, 0, y, x, 1.0);
                    }
                }
            }
        }
        BlobSegmentation { images, masks }
    }

    /// Image side length.
    pub fn size(&self) -> usize {
        self.images.h()
    }
}

impl Dataset for BlobSegmentation {
    type Input = Tensor4;
    type Target = Tensor4;

    fn len(&self) -> usize {
        self.images.n()
    }

    fn batch(&self, indices: &[usize]) -> (Tensor4, Tensor4) {
        let s = self.size();
        let img_len = s * s;
        let mut x = Tensor4::zeros(indices.len(), 1, s, s);
        let mut y = Tensor4::zeros(indices.len(), 1, s, s);
        for (r, &idx) in indices.iter().enumerate() {
            x.as_mut_slice()[r * img_len..(r + 1) * img_len]
                .copy_from_slice(self.images.image(idx));
            y.as_mut_slice()[r * img_len..(r + 1) * img_len].copy_from_slice(self.masks.image(idx));
        }
        (x, y)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn masks_are_binary_and_nonempty() {
        let ds = BlobSegmentation::generate(10, 16, 0.1, 3);
        let (_, masks) = ds.batch(&(0..10).collect::<Vec<_>>());
        let mut positives = 0usize;
        for &v in masks.as_slice() {
            assert!(v == 0.0 || v == 1.0);
            if v == 1.0 {
                positives += 1;
            }
        }
        let frac = positives as f32 / masks.numel() as f32;
        assert!(frac > 0.02 && frac < 0.6, "blob coverage {frac}");
    }

    #[test]
    fn image_intensity_correlates_with_mask() {
        let ds = BlobSegmentation::generate(20, 16, 0.1, 4);
        let (imgs, masks) = ds.batch(&(0..20).collect::<Vec<_>>());
        let mut inside = 0.0f64;
        let mut outside = 0.0f64;
        let mut n_in = 0usize;
        let mut n_out = 0usize;
        for (i, &m) in masks.as_slice().iter().enumerate() {
            if m > 0.5 {
                inside += imgs.as_slice()[i] as f64;
                n_in += 1;
            } else {
                outside += imgs.as_slice()[i] as f64;
                n_out += 1;
            }
        }
        assert!(inside / n_in as f64 > outside / n_out as f64 + 0.5);
    }

    #[test]
    fn deterministic() {
        let a = BlobSegmentation::generate(5, 8, 0.2, 9);
        let b = BlobSegmentation::generate(5, 8, 0.2, 9);
        assert_eq!(a.batch(&[0, 4]).0, b.batch(&[0, 4]).0);
    }
}
