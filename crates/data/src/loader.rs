//! Dataset abstraction and the per-rank shard sampler.

use kaisa_tensor::Rng;

/// An indexable dataset that can materialize mini-batches.
pub trait Dataset {
    /// Batch input type (matches the model's `Input`).
    type Input;
    /// Batch target type.
    type Target;

    /// Number of examples.
    fn len(&self) -> usize;

    /// True if the dataset is empty.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Materialize the examples at `indices` as one batch.
    fn batch(&self, indices: &[usize]) -> (Self::Input, Self::Target);
}

/// Deterministic distributed sampler: each epoch is a seeded permutation of
/// the dataset, split into contiguous per-rank shards, then into local
/// batches. All ranks derive the identical permutation from
/// `(seed, epoch)`, so shards are disjoint without communication — the same
/// contract as PyTorch's `DistributedSampler`.
#[derive(Debug, Clone)]
pub struct ShardSampler {
    dataset_len: usize,
    world: usize,
    rank: usize,
    local_batch: usize,
    seed: u64,
}

impl ShardSampler {
    /// Create a sampler for `rank` of `world` with the given local batch
    /// size. The effective global batch size is `world * local_batch`.
    pub fn new(
        dataset_len: usize,
        world: usize,
        rank: usize,
        local_batch: usize,
        seed: u64,
    ) -> Self {
        assert!(world > 0 && rank < world, "invalid rank {rank} of {world}");
        assert!(local_batch > 0, "local batch must be positive");
        ShardSampler { dataset_len, world, rank, local_batch, seed }
    }

    /// Examples each rank sees per epoch (dataset truncated to a multiple of
    /// the world size, as `DistributedSampler(drop_last)` does).
    pub fn shard_len(&self) -> usize {
        self.dataset_len / self.world
    }

    /// Full local batches per epoch.
    pub fn batches_per_epoch(&self) -> usize {
        self.shard_len() / self.local_batch
    }

    /// The local batch index lists for one epoch.
    pub fn epoch_batches(&self, epoch: usize) -> Vec<Vec<usize>> {
        let mut rng = Rng::seed_from_u64(self.seed ^ (epoch as u64).wrapping_mul(0x9E37_79B9));
        let perm = rng.permutation(self.dataset_len);
        let shard_len = self.shard_len();
        let start = self.rank * shard_len;
        let shard = &perm[start..start + shard_len];
        shard
            .chunks(self.local_batch)
            .filter(|c| c.len() == self.local_batch)
            .map(|c| c.to_vec())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn shards_are_disjoint_and_cover() {
        let world = 4;
        let samplers: Vec<_> = (0..world).map(|r| ShardSampler::new(100, world, r, 5, 7)).collect();
        let mut seen = HashSet::new();
        for s in &samplers {
            for batch in s.epoch_batches(0) {
                for idx in batch {
                    assert!(seen.insert(idx), "index {idx} appeared twice");
                }
            }
        }
        assert_eq!(seen.len(), 100);
    }

    #[test]
    fn epochs_reshuffle() {
        let s = ShardSampler::new(64, 2, 0, 8, 3);
        let e0: Vec<usize> = s.epoch_batches(0).concat();
        let e1: Vec<usize> = s.epoch_batches(1).concat();
        assert_ne!(e0, e1, "epochs should shuffle differently");
    }

    #[test]
    fn deterministic_across_instances() {
        let a = ShardSampler::new(50, 2, 1, 5, 11).epoch_batches(3);
        let b = ShardSampler::new(50, 2, 1, 5, 11).epoch_batches(3);
        assert_eq!(a, b);
    }

    #[test]
    fn uneven_dataset_truncates() {
        let s = ShardSampler::new(103, 4, 0, 5, 1);
        assert_eq!(s.shard_len(), 25);
        assert_eq!(s.batches_per_epoch(), 5);
    }
}
