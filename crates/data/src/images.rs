//! Synthetic image classification (the ImageNet/CIFAR stand-in).

use kaisa_tensor::{Rng, Tensor4};

use crate::loader::Dataset;

/// Class-conditional pattern images: each class is a distinct oriented
/// sinusoidal texture, so a small CNN must learn spatial filters (not just
/// pixel statistics) to separate classes — the property that makes
/// convolutional convergence curves meaningful.
#[derive(Debug, Clone)]
pub struct PatternImages {
    images: Tensor4,
    labels: Vec<usize>,
    classes: usize,
}

impl PatternImages {
    /// Generate `samples` images of shape `(channels, size, size)` across
    /// `classes` texture classes with additive Gaussian noise.
    pub fn generate(
        samples: usize,
        channels: usize,
        size: usize,
        classes: usize,
        noise: f32,
        seed: u64,
    ) -> Self {
        let mut rng = Rng::seed_from_u64(seed);
        let mut images = Tensor4::zeros(samples, channels, size, size);
        let mut labels = Vec::with_capacity(samples);
        for i in 0..samples {
            let class = i % classes;
            labels.push(class);
            // Class-specific orientation and frequency.
            let angle = class as f32 * std::f32::consts::PI / classes as f32;
            let freq = 2.0 + (class % 3) as f32;
            let (ca, sa) = (angle.cos(), angle.sin());
            let phase = rng.uniform(0.0, std::f32::consts::TAU);
            for c in 0..channels {
                let chan_gain = 1.0 - 0.3 * (c as f32 / channels.max(1) as f32);
                for y in 0..size {
                    for x in 0..size {
                        let u = (x as f32 * ca + y as f32 * sa) / size as f32;
                        let v = (freq * std::f32::consts::TAU * u + phase).sin() * chan_gain;
                        images.set(i, c, y, x, v + noise * rng.normal());
                    }
                }
            }
        }
        PatternImages { images, labels, classes }
    }

    /// Number of classes.
    pub fn classes(&self) -> usize {
        self.classes
    }

    /// Image shape `(channels, h, w)`.
    pub fn image_shape(&self) -> (usize, usize, usize) {
        (self.images.c(), self.images.h(), self.images.w())
    }
}

impl Dataset for PatternImages {
    type Input = Tensor4;
    type Target = Vec<usize>;

    fn len(&self) -> usize {
        self.labels.len()
    }

    fn batch(&self, indices: &[usize]) -> (Tensor4, Vec<usize>) {
        let (c, h, w) = self.image_shape();
        let mut x = Tensor4::zeros(indices.len(), c, h, w);
        let mut y = Vec::with_capacity(indices.len());
        let img_len = c * h * w;
        for (r, &idx) in indices.iter().enumerate() {
            let src = self.images.image(idx);
            x.as_mut_slice()[r * img_len..(r + 1) * img_len].copy_from_slice(src);
            y.push(self.labels[idx]);
        }
        (x, y)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shapes_and_determinism() {
        let a = PatternImages::generate(20, 3, 8, 4, 0.1, 5);
        let b = PatternImages::generate(20, 3, 8, 4, 0.1, 5);
        assert_eq!(a.len(), 20);
        assert_eq!(a.image_shape(), (3, 8, 8));
        let (xa, ya) = a.batch(&[0, 7, 13]);
        let (xb, yb) = b.batch(&[0, 7, 13]);
        assert_eq!(xa, xb);
        assert_eq!(ya, yb);
    }

    #[test]
    fn classes_have_distinct_textures() {
        let ds = PatternImages::generate(8, 1, 16, 4, 0.0, 6);
        // Noise-free images of different classes must differ substantially.
        let (x, y) = ds.batch(&[0, 1]);
        assert_ne!(y[0], y[1]);
        let diff: f32 = x.image(0).iter().zip(x.image(1)).map(|(a, b)| (a - b).abs()).sum::<f32>()
            / x.image(0).len() as f32;
        assert!(diff > 0.1, "class textures too similar: {diff}");
    }

    #[test]
    fn values_bounded_without_noise() {
        let ds = PatternImages::generate(10, 2, 8, 3, 0.0, 7);
        let (x, _) = ds.batch(&(0..10).collect::<Vec<_>>());
        for &v in x.as_slice() {
            assert!(v.abs() <= 1.0 + 1e-5);
        }
    }
}
