//! # kaisa-data
//!
//! Deterministic synthetic datasets standing in for the paper's corpora
//! (ImageNet, COCO, the LGG MRI set, Wikipedia+BookCorpus), plus the
//! distributed shard sampler that gives each rank a disjoint slice of every
//! epoch — the data-parallel setup both MEM-OPT and COMM-OPT assume
//! ("replicating the DNN across all processes and assigning a random local
//! batch of training data to each process at each iteration", Section 2.2).
//!
//! Every generator is seeded, so convergence experiments are reproducible
//! bit-for-bit across runs and across world sizes.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod classification;
mod images;
mod language;
mod loader;
mod segmentation;

pub use classification::{GaussianBlobs, SpiralDataset};
pub use images::PatternImages;
pub use language::{MaskedTokenTask, SequenceRules};
pub use loader::{Dataset, ShardSampler};
pub use segmentation::BlobSegmentation;
