//! The `Kfac` preconditioner: orchestration of the distributed K-FAC step.
//!
//! One call to [`Kfac::step`] performs the stages of the paper's Figure 7,
//! in order:
//!
//! 1. **Factor update** (every `factor_update_freq` steps): finalize the
//!    captured `aᵀa` / `gᵀg` statistics, allreduce-average them across the
//!    data-parallel world (optionally triangular-packed, optionally in
//!    fp16), and fold them into the running averages.
//! 2. **Eigendecomposition** (every `inv_update_freq` steps): the assigned
//!    workers decompose their factors; the `G` worker precomputes
//!    `1/(v_G v_Aᵀ + γ)` (Section 4.4); results broadcast to the layer's
//!    gradient workers.
//! 3. **Gradient preconditioning** (every step): gradient workers compute
//!    Eq. 15–17 locally and broadcast the preconditioned gradient to their
//!    disjoint receiver groups.
//! 4. **Scaling** (every step): KL-clip scaling `ν = min(1, √(κ/Σ⟨p,g⟩lr²))`
//!    and write-back into the model's gradients.

use kaisa_comm::{ClusterNetwork, CollectiveCostModel, CommTag, Communicator, ReduceOp, ShardSpec};
use kaisa_linalg::sym_eig_batch_timed;
use kaisa_nn::Model;
use kaisa_tensor::Matrix;

use crate::assignment::{plan_assignments_with, LayerAssignment, WorkPlan};
use crate::config::CrossIterDepth;
use crate::config::KfacConfig;
use crate::memory::{MemoryCategory, MemoryMeter};
use crate::pipeline::{priority_sweep_order, ComputeRates, StepModelOptions};
use crate::state::{
    factor_payload_len, pack_factor_payload, pack_factor_payload_scaled_into, quantize_slice,
    unpack_factor_payload, KfacLayerState, StagingRing,
};
use crate::strategy::{effective_worker_frac, FactorReduction, StrategyPlan};
use crate::timing::{Stage, StageTimes};
use crate::DistStrategy;

/// One layer's pre-batched eigensolve results: `.0` holds `(Q_A, v_A)` and
/// `.1` holds `(Q_G, v_G)` when [`Kfac::eig_prepass`] solved them; `None`
/// slots fall back to the inline per-factor path.
pub(crate) type EigPrepassSlot = (Option<(Matrix, Vec<f32>)>, Option<(Matrix, Vec<f32>)>);

/// The KAISA K-FAC gradient preconditioner.
///
/// Usage mirrors the paper's Listing 1:
///
/// ```ignore
/// let mut kfac = Kfac::new(KfacConfig::builder().grad_worker_frac(0.5).build(),
///                          &mut model, &comm);
/// loop {
///     kfac.prepare(&mut model);             // enable capture when needed
///     model.zero_grad();
///     model.forward_backward(&x, &y);
///     comm.allreduce(&mut grads, Avg);       // standard DDP allreduce
///     kfac.step(&mut model, &comm, lr);      // precondition in place
///     optimizer.step_model(&mut model, lr);  // SGD / Adam / LAMB
/// }
/// ```
pub struct Kfac {
    pub(crate) cfg: KfacConfig,
    pub(crate) plan: WorkPlan,
    /// The resolved strategy plan: which factor-reduction mode, regather
    /// policy, and per-stage comm participation this run uses. Computed
    /// once here and consumed uniformly by all three executors and the
    /// stage-graph builder — the single source of strategy truth.
    pub(crate) strat: StrategyPlan,
    pub(crate) states: Vec<KfacLayerState>,
    pub(crate) rank: usize,
    pub(crate) world: usize,
    pub(crate) steps: u64,
    pub(crate) times: StageTimes,
    /// Logical K-FAC communication bytes attributed to this rank at the
    /// configured storage precision: allreduce payloads count once per
    /// participant; broadcast traffic (`payload x receivers`) is attributed
    /// to the root; sharded factor reductions count the bytes a rank
    /// *receives* (its owned shard, plus any regathered sections). The live
    /// `kaisa-comm` meter separately counts physical `f32` buffers per
    /// collective.
    pub(crate) comm_bytes: u64,
    /// The order the pipelined executor's sweeps iterate layers: identity by
    /// default; the `StepModel`-searched priority order when
    /// `priority_schedule` is on. Identical on every rank (a pure function
    /// of dims + plan), so reordering keeps per-group collective matching.
    pub(crate) sweep_order: Vec<usize>,
    /// The in-progress task-runtime step between `step_begin` and
    /// `step_finish` (`async_runtime` only).
    pub(crate) runtime_step: Option<crate::runtime::executor::RuntimeStep>,
    /// Retired runtime steps whose deferred factor completes are still
    /// draining — the depth-D cross-iteration window ring (front = oldest).
    /// Always empty at depth 1.
    pub(crate) window: std::collections::VecDeque<crate::runtime::executor::RuntimeStep>,
    /// Resolved cross-iteration window depth (`CrossIterDepth::Auto` is
    /// resolved once in [`Kfac::new`], identically on every rank).
    pub(crate) resolved_depth: usize,
    /// Runtime step DAGs planned so far (window indices for the watchdog
    /// and the staging-ring slot rotation).
    pub(crate) windows_built: u64,
    /// Live per-category resident-byte meter for this rank (the measured
    /// counterpart of the analytic `memory_bytes` model).
    pub(crate) mem: MemoryMeter,
    /// Per-(window slot x layer) packed staging buffers the sharded path
    /// scales-and-packs captured statistics into, reused across the factor
    /// steps that map to each slot (empty on the dense path). One slot per
    /// window depth, so a held DAG never aliases live staging.
    pub(crate) staging: StagingRing,
}

impl Kfac {
    /// Register a model: record layer factor dimensions, compute the
    /// distribution plan, and enable capture for the first step.
    pub fn new<M: Model>(cfg: KfacConfig, model: &mut M, comm: &dyn Communicator) -> Self {
        cfg.validate();
        if let Some(kernel) = cfg.gemm_kernel {
            // Process-global (the kernel choice must be uniform: GEMM runs
            // inside model forward/backward too, not just inside K-FAC).
            kaisa_tensor::set_gemm_kernel(kernel);
        }
        if let Some(mode) = cfg.syrk {
            // Same scope as the GEMM kernel: capture runs inside model
            // forward/backward, so the SYRK routing must be uniform too.
            kaisa_tensor::set_syrk_mode(mode);
        }
        let mut dims = Vec::new();
        let mut names = Vec::new();
        for layer in model.kfac_layers() {
            dims.push((layer.a_dim(), layer.g_dim()));
            names.push(layer.layer_name().to_string());
        }
        assert!(!dims.is_empty(), "model exposes no K-FAC-preconditionable layers");
        // An explicit strategy override (MemOpt / CommOpt / LocalOpt) pins
        // the gradient-worker grid to its extreme; otherwise the configured
        // fraction decides. Sharded factor reduction pays extra traffic for
        // split-worker layers, so bias LPT ties toward co-location when it
        // is on.
        let frac = effective_worker_frac(cfg.strategy, cfg.grad_worker_frac, comm.world_size());
        let plan = plan_assignments_with(
            &dims,
            comm.world_size(),
            frac,
            cfg.assignment,
            cfg.sharded_factors,
        );
        let strat = StrategyPlan::resolve(&cfg, &plan);
        let states = dims
            .iter()
            .zip(&names)
            .map(|(&(a, g), name)| KfacLayerState::new(name.clone(), a, g))
            .collect();
        let sweep_order: Vec<usize> = if cfg.priority_schedule {
            // Search for the issue order with the best modeled makespan on
            // the calibrated network (the 10 GbE comm-bound reference when
            // none is configured), starting from the fixed order so the
            // result never models worse than it. Only the *ordering*
            // matters, and it is a pure function of dims + plan + config,
            // so every rank agrees.
            let network = cfg.network.unwrap_or_else(ClusterNetwork::ethernet_10g);
            let cost = CollectiveCostModel::new(network);
            priority_sweep_order(
                &dims,
                &plan,
                &cost,
                &ComputeRates::default(),
                StepModelOptions::from_plan(
                    cfg.precision.bytes_per_element(),
                    cfg.triangular_comm,
                    &strat,
                ),
            )
        } else {
            (0..dims.len()).collect()
        };
        let n_layers = dims.len();
        let resolved_depth = match cfg.cross_iter_depth {
            CrossIterDepth::Fixed(d) => d,
            CrossIterDepth::Auto => {
                // Modeled-best depth on the configured network (10 GbE
                // reference when unset) at the nominal per-rank batch of
                // 32 — a pure function of dims/world/network/F, so every
                // rank resolves the same depth.
                let network = cfg.network.unwrap_or_else(ClusterNetwork::ethernet_10g);
                crate::runtime::auto_cross_iter_depth(
                    &dims,
                    comm.world_size(),
                    network,
                    cfg.factor_update_freq,
                )
            }
        };
        let kfac = Kfac {
            cfg,
            plan,
            strat,
            states,
            rank: comm.rank(),
            world: comm.world_size(),
            steps: 0,
            times: StageTimes::new(),
            comm_bytes: 0,
            sweep_order,
            runtime_step: None,
            window: std::collections::VecDeque::new(),
            resolved_depth,
            windows_built: 0,
            mem: MemoryMeter::new(),
            staging: StagingRing::new(resolved_depth, n_layers),
        };
        // Step 0 updates factors, so the very first forward must capture.
        model.set_kfac_capture(true);
        kfac
    }

    /// The distribution strategy in effect (an explicit
    /// `KfacConfig::strategy`, or classified from the realized worker
    /// count).
    pub fn strategy(&self) -> DistStrategy {
        self.strat.strategy
    }

    /// The resolved strategy plan all executors consume (inspection /
    /// tests).
    pub fn strategy_plan(&self) -> &StrategyPlan {
        &self.strat
    }

    /// The computed work plan (placement inspection / tests).
    pub fn plan(&self) -> &WorkPlan {
        &self.plan
    }

    /// Completed `step()` calls.
    pub fn steps(&self) -> u64 {
        self.steps
    }

    /// Per-stage timing accumulated so far (Figure 7 instrumentation).
    pub fn stage_times(&self) -> &StageTimes {
        &self.times
    }

    /// Logical K-FAC communication bytes at the configured precision.
    pub fn comm_bytes(&self) -> u64 {
        self.comm_bytes
    }

    /// The layer order the pipelined executor's sweeps iterate (identity
    /// unless `priority_schedule` is on).
    pub fn sweep_order(&self) -> &[usize] {
        &self.sweep_order
    }

    /// The resolved cross-iteration window depth this instance runs at
    /// (what `CrossIterDepth::Auto` picked, or the fixed setting).
    pub fn cross_iter_depth(&self) -> usize {
        self.resolved_depth
    }

    /// This rank's K-FAC memory overhead in bytes (factors + cached
    /// decompositions at the storage precision) — the Figure 6/Table 5
    /// metric.
    pub fn memory_bytes(&self) -> usize {
        self.states.iter().map(|s| s.memory_bytes(self.cfg.precision)).sum()
    }

    /// The live per-rank memory meter: peak/current resident bytes per
    /// category at the storage precision. Where [`Kfac::memory_bytes`]
    /// models the analytic Table 5 overhead, the meter *measures* what this
    /// rank actually held — including the transient square factors
    /// shard-resident decomposition materializes.
    pub fn memory_meter(&self) -> &MemoryMeter {
        &self.mem
    }

    /// Refresh the meter's factor residency from the per-layer state;
    /// called after every factor fold on every executor.
    pub(crate) fn note_factor_residency(&mut self) {
        let p = self.cfg.precision;
        let bytes = self.states.iter().map(|s| s.factor_memory_bytes(p)).sum();
        self.mem.set(MemoryCategory::Factors, bytes);
    }

    /// Refresh the meter's eigen-cache and packed-staging residency; called
    /// once per completed step (both quantities are stable between steps).
    pub(crate) fn note_step_residency(&mut self) {
        let p = self.cfg.precision;
        let eig = self.states.iter().map(|s| s.eigen_memory_bytes(p)).sum();
        self.mem.set(MemoryCategory::Eigens, eig);
        self.mem
            .set(MemoryCategory::PackedStaging, self.staging.resident_bytes(p.bytes_per_element()));
    }

    /// Refresh the meter's capture-scratch residency from the layers'
    /// persistent streamed-im2col chunk buffers; called wherever the
    /// executor already holds the layer list.
    pub(crate) fn note_capture_residency(&mut self, layers: &[&mut dyn kaisa_nn::KfacAble]) {
        let bytes = layers.iter().map(|l| l.capture_scratch_bytes()).sum();
        self.mem.set(MemoryCategory::CaptureScratch, bytes);
    }

    /// Record the transient square-factor materializations this rank's
    /// decomposition work for layer `i` is about to perform on
    /// shard-resident state (a no-op when the squares are dense-resident).
    pub(crate) fn note_decomposition_transients(&mut self, i: usize) {
        let b = self.cfg.precision.bytes_per_element();
        let s = &self.states[i];
        let asn = &self.plan.layers[i];
        let a_sq =
            if s.factor_a.is_none() && s.packed_a.is_some() { s.a_dim * s.a_dim * b } else { 0 };
        let g_sq =
            if s.factor_g.is_none() && s.packed_g.is_some() { s.g_dim * s.g_dim * b } else { 0 };
        let transient = if self.cfg.use_eigen {
            // eig_a and eig_g each drop their square before the other
            // materializes, even on a co-located worker: peak is the max.
            let a = if self.rank == asn.a_worker { a_sq } else { 0 };
            let g = if self.rank == asn.g_worker { g_sq } else { 0 };
            a.max(g)
        } else if self.rank == asn.a_worker {
            // compute_inverses holds both damped squares simultaneously.
            a_sq + g_sq
        } else {
            0
        };
        if transient > 0 {
            self.mem.transient(MemoryCategory::Factors, transient);
        }
    }

    /// Batch-solve every *dense-resident* factor eigendecomposition this
    /// rank owns through one [`sym_eig_batch_timed`] queue, returning per
    /// layer the solved `(Q, v)` pairs (`.0` = A, `.1` = G; `None` where
    /// the rank does not own the factor, the square is shard-resident, or
    /// batching is off). Decomposition sites `take()` these instead of
    /// calling [`KfacLayerState::eig_a`]/[`eig_g`] one at a time.
    ///
    /// Only dense-resident squares batch: `sym_eig` borrows them in place,
    /// so holding many jobs open adds **zero** transient memory and the
    /// [`Self::note_decomposition_transients`] metering (which assumes
    /// shard-resident squares materialize one at a time) stays exact.
    /// Shard-resident factors keep the inline one-at-a-time path.
    ///
    /// Per-job wall-clock is attributed to the owning layer's
    /// `EigCompute` stage, so stage reports match the serial path.
    pub(crate) fn eig_prepass(&mut self) -> Vec<EigPrepassSlot> {
        let n = self.states.len();
        let mut out: Vec<EigPrepassSlot> = (0..n).map(|_| (None, None)).collect();
        if !self.cfg.use_eigen || self.cfg.eig_batch == 1 {
            return out;
        }
        let rank = self.rank;
        let states = &self.states;
        let mut jobs: Vec<(usize, bool)> = Vec::new();
        for (i, asn) in self.plan.layers.iter().enumerate() {
            if rank == asn.a_worker && states[i].factor_a.is_some() {
                jobs.push((i, false));
            }
            if rank == asn.g_worker && states[i].factor_g.is_some() {
                jobs.push((i, true));
            }
        }
        if jobs.len() < 2 {
            // A single job gains nothing from the queue; leave it to the
            // inline site (identical math either way).
            return out;
        }
        let inputs: Vec<&Matrix> = jobs
            .iter()
            .map(|&(i, is_g)| {
                if is_g {
                    states[i].factor_g.as_ref().expect("job collected from dense G")
                } else {
                    states[i].factor_a.as_ref().expect("job collected from dense A")
                }
            })
            .collect();
        let solved = sym_eig_batch_timed(&inputs, self.cfg.eig_batch);
        drop(inputs);
        for (&(i, is_g), (result, seconds)) in jobs.iter().zip(solved) {
            self.times.add_layer(i, Stage::EigCompute, seconds);
            let eig = if is_g {
                result.expect("G factor eigendecomposition failed")
            } else {
                result.expect("A factor eigendecomposition failed")
            };
            let slot = if is_g { &mut out[i].1 } else { &mut out[i].0 };
            *slot = Some((eig.vectors, eig.values));
        }
        out
    }

    /// Arm statistic capture on the model if the *upcoming* step is a
    /// factor-update step. Call before every forward pass (cheap).
    pub fn prepare<M: Model>(&self, model: &mut M) {
        let capture = self.steps % self.cfg.factor_update_freq as u64 == 0;
        model.set_kfac_capture(capture);
    }

    /// True if the upcoming step updates factors.
    pub fn is_factor_update_step(&self) -> bool {
        self.steps % self.cfg.factor_update_freq as u64 == 0
    }

    /// True if the upcoming step recomputes eigendecompositions.
    pub fn is_inv_update_step(&self) -> bool {
        self.steps % self.cfg.inv_update_freq as u64 == 0
    }

    /// Run one K-FAC preconditioning step. Must be called after the backward
    /// pass (and after the data-parallel gradient allreduce) on every rank.
    /// `lr` is the learning rate the following optimizer step will use; it
    /// enters the KL-clip scaling factor.
    pub fn step<M: Model>(&mut self, model: &mut M, comm: &dyn Communicator, lr: f32) {
        if self.cfg.async_runtime {
            // Task-runtime executor (takes precedence over `pipelined`).
            // The monolithic step is simply the lookahead split run
            // back-to-back; `step_finish` advances the step counters.
            self.step_begin(model, comm);
            self.step_finish(model, comm, lr);
            return;
        }

        let factor_step = self.is_factor_update_step();
        let inv_step = self.is_inv_update_step();
        let mut layers = model.kfac_layers();
        assert_eq!(layers.len(), self.states.len(), "layer set changed after registration");
        self.note_capture_residency(&layers);

        // The one strategy dispatch: every executor consumes the resolved
        // `StrategyPlan`'s factor-reduction mode instead of re-deriving the
        // strategy from config flags.
        if factor_step {
            match (self.strat.reduction, self.cfg.pipelined) {
                (FactorReduction::LocalNone, _) => self.update_factors_local(&mut layers),
                (FactorReduction::ShardedReduceScatter, true) => {
                    self.update_factors_sharded_pipelined(&mut layers, comm)
                }
                (FactorReduction::ShardedReduceScatter, false) => {
                    self.update_factors_sharded(&mut layers, comm)
                }
                (FactorReduction::DenseAllreduce, true) => {
                    self.update_factors_pipelined(&mut layers, comm)
                }
                (FactorReduction::DenseAllreduce, false) => self.update_factors(&mut layers, comm),
            }
        }
        if self.cfg.pipelined {
            if inv_step {
                self.update_decompositions_pipelined(comm);
            }
            self.precondition_and_scale_pipelined(&mut layers, comm, lr);
        } else {
            if inv_step {
                self.update_decompositions(comm);
            }
            self.precondition_and_scale(&mut layers, comm, lr);
        }

        self.note_step_residency();
        self.steps += 1;
        self.times.steps += 1;
    }

    /// Stage 1 (serial executor): finalize captured statistics and
    /// allreduce-average factors, one blocking collective per layer.
    fn update_factors(
        &mut self,
        layers: &mut [&mut dyn kaisa_nn::KfacAble],
        comm: &dyn Communicator,
    ) {
        let precision = self.cfg.precision;
        let decay = self.cfg.factor_decay;
        let triangular = self.cfg.triangular_comm;
        let world_group: Vec<usize> = (0..self.world).collect();
        for (i, layer) in layers.iter_mut().enumerate() {
            let stats = layer.capture_mut().take_stats().unwrap_or_else(|| {
                panic!(
                    "layer {}: no captured statistics — call Kfac::prepare() before the forward pass",
                    layer.layer_name()
                )
            });
            let (a_new, g_new) = self.times.time_layer(i, Stage::FactorCompute, || {
                let inv = 1.0 / stats.batches.max(1) as f32;
                let mut a = stats.a_stat;
                a.scale(inv);
                let mut g = stats.g_stat;
                g.scale(inv);
                (a, g)
            });

            let (a_dim, g_dim) = (a_new.rows(), g_new.rows());
            let (a_new, g_new) = self.times.time_layer(i, Stage::FactorComm, || {
                let (mut buf, split) = pack_factor_payload(&a_new, &g_new, triangular, precision);
                let pending =
                    comm.begin_allreduce(&buf, ReduceOp::Avg, &world_group, CommTag::FactorComm);
                comm.complete(pending, &mut buf);
                unpack_factor_payload(&mut buf, split, a_dim, g_dim, triangular, precision)
            });
            self.comm_bytes += (factor_payload_len(a_dim, g_dim, triangular)
                * precision.bytes_per_element()) as u64;

            self.times.time_layer(i, Stage::FactorCompute, || {
                self.states[i].update_factors(a_new, g_new, decay);
            });
        }
        self.note_factor_residency();
    }

    /// Stage 1 (LOCAL-OPT / DP-KFAC): no factor collective at all. Each
    /// layer's single owner finalizes and folds the statistics **its own
    /// rank** captured; every other rank just drops its capture buffers.
    /// The owner's payload still makes the pack/unpack quantization round
    /// trip so that at world 1 (where the dense allreduce averages over one
    /// rank, i.e. divides by 1.0 exactly) LOCAL-OPT is bitwise identical to
    /// the dense serial reference at every precision.
    ///
    /// Rank determinism is unaffected: owners decompose local curvature,
    /// but the preconditioned gradients still reach every rank through the
    /// per-layer `GradComm` broadcast, so all ranks apply identical updates.
    pub(crate) fn update_factors_local(&mut self, layers: &mut [&mut dyn kaisa_nn::KfacAble]) {
        debug_assert!(self.strat.local_factors());
        for (i, layer) in layers.iter_mut().enumerate() {
            let stats = layer.capture_mut().take_stats().unwrap_or_else(|| {
                panic!(
                    "layer {}: no captured statistics — call Kfac::prepare() before the forward pass",
                    layer.layer_name()
                )
            });
            self.fold_local_stats(i, stats);
        }
        self.note_factor_residency();
    }

    /// LOCAL-OPT's per-layer fold: the owner finalizes and folds the
    /// statistics its own rank captured; every other rank is a no-op (it
    /// already dropped its capture via `take_stats`). Shared by the serial
    /// executor and the runtime's `FactorLocalFold` task.
    pub(crate) fn fold_local_stats(&mut self, i: usize, stats: kaisa_nn::KfacStats) {
        // LOCAL-OPT runs on the one-worker grid, so owner == a_worker ==
        // g_worker.
        if self.rank != self.plan.layers[i].a_worker {
            return;
        }
        let precision = self.cfg.precision;
        let decay = self.cfg.factor_decay;
        let triangular = self.cfg.triangular_comm;
        self.times.time_layer(i, Stage::FactorCompute, || {
            let inv = 1.0 / stats.batches.max(1) as f32;
            let mut a = stats.a_stat;
            a.scale(inv);
            let mut g = stats.g_stat;
            g.scale(inv);
            let (a_dim, g_dim) = (a.rows(), g.rows());
            let (mut buf, split) = pack_factor_payload(&a, &g, triangular, precision);
            let (a_new, g_new) =
                unpack_factor_payload(&mut buf, split, a_dim, g_dim, triangular, precision);
            self.states[i].update_factors(a_new, g_new, decay);
        });
    }

    /// Stage 1 (serial executor, sharded): scale-and-pack each layer's
    /// captured statistics straight into its packed staging buffer (no
    /// scaled square matrices materialized), then reduce-scatter from there
    /// so the `A` section lands only on the layer's A-eigendecomposition
    /// worker and the `G` section on its G-worker. Owners fold their
    /// averaged sections into shard-resident packed running averages;
    /// non-workers never materialize (or store) the factors. The
    /// direct-inverse fallback additionally regathers the payload within
    /// the (≤2-rank) eigendecomposition worker group, because its solver
    /// consumes both factors on one rank.
    fn update_factors_sharded(
        &mut self,
        layers: &mut [&mut dyn kaisa_nn::KfacAble],
        comm: &dyn Communicator,
    ) {
        let precision = self.cfg.precision;
        let triangular = self.cfg.triangular_comm;
        let rank = self.rank;
        let world_group: Vec<usize> = (0..self.world).collect();
        for (i, layer) in layers.iter_mut().enumerate() {
            let stats = layer.capture_mut().take_stats().unwrap_or_else(|| {
                panic!(
                    "layer {}: no captured statistics — call Kfac::prepare() before the forward pass",
                    layer.layer_name()
                )
            });
            let mut staging = self.staging.take(0, i);
            let split = self.times.time_layer(i, Stage::FactorCompute, || {
                let inv = 1.0 / stats.batches.max(1) as f32;
                pack_factor_payload_scaled_into(
                    &mut staging,
                    &stats.a_stat,
                    &stats.g_stat,
                    inv,
                    triangular,
                    precision,
                )
            });
            let total = staging.len();

            let asn = self.plan.layers[i].clone();
            let owned = self.times.time_layer(i, Stage::FactorComm, || {
                let shards = factor_shards(&asn, split, total);
                let pending = comm.begin_reduce_scatter(
                    &staging,
                    ReduceOp::Avg,
                    &world_group,
                    &shards,
                    CommTag::FactorReduce,
                );
                let owned_len: usize =
                    shards.iter().filter(|s| s.owner == rank).map(|s| s.len).sum();
                let mut owned = vec![0.0f32; owned_len];
                comm.complete(pending, &mut owned);
                owned
            });
            // `begin_reduce_scatter` copies the payload, so the staging
            // buffer is reusable as soon as the begin returns.
            self.staging.put(0, i, staging);
            self.comm_bytes += (owned.len() * precision.bytes_per_element()) as u64;

            if self.needs_factor_gather(&asn) {
                let group = asn.eig_worker_group();
                if group.contains(&rank) {
                    let mut gathered = vec![0.0f32; total];
                    let pending = self.times.time_layer(i, Stage::FactorComm, || {
                        comm.begin_allgather(&owned, &group, CommTag::FactorGather)
                    });
                    self.times
                        .time_layer(i, Stage::FactorComm, || comm.complete(pending, &mut gathered));
                    self.comm_bytes +=
                        ((total - owned.len()) * precision.bytes_per_element()) as u64;
                    let payload = reassemble_gathered_payload(&asn, &gathered, split);
                    self.fold_gathered_payload(i, payload, split);
                }
            } else {
                self.fold_owned_sections(i, owned, split, total);
            }
        }
    }

    /// True when the sharded path must regather the averaged payload within
    /// the layer's eigendecomposition worker group (delegates to the
    /// resolved [`StrategyPlan`]'s regather policy).
    pub(crate) fn needs_factor_gather(&self, asn: &LayerAssignment) -> bool {
        self.strat.needs_regather(asn)
    }

    /// Fold a rank's owned shard sections into its shard-resident packed
    /// running factors (the gather-free sharded fold): the A worker folds
    /// the `A` section, the G worker the `G` section; a rank owning both
    /// folds both. No square matrix is materialized — the section is
    /// re-quantized (elementwise, so bitwise identical to the dense path's
    /// whole-payload quantization) and EMA-folded in the packed layout.
    pub(crate) fn fold_owned_sections(
        &mut self,
        i: usize,
        mut owned: Vec<f32>,
        split: usize,
        total: usize,
    ) {
        let asn = self.plan.layers[i].clone();
        let decay = self.cfg.factor_decay;
        let precision = self.cfg.precision;
        let triangular = self.cfg.triangular_comm;
        let rank = self.rank;
        debug_assert!(owned.is_empty() || rank == asn.a_worker || rank == asn.g_worker);
        if rank == asn.a_worker {
            self.times.time_layer(i, Stage::FactorCompute, || {
                let section = &mut owned[..split];
                quantize_slice(section, precision);
                self.states[i].update_packed_a(section, triangular, decay);
            });
        }
        if rank == asn.g_worker {
            // The G section follows the A section only when this rank owns
            // both shards; a G-only owner holds just its own section.
            let offset = if asn.a_worker == asn.g_worker { split } else { 0 };
            let g_len = total - split;
            self.times.time_layer(i, Stage::FactorCompute, || {
                let section = &mut owned[offset..offset + g_len];
                quantize_slice(section, precision);
                self.states[i].update_packed_g(section, triangular, decay);
            });
        }
        self.note_factor_residency();
    }

    /// Fold a regathered full payload on the A worker (the direct-inverse
    /// fallback's fold — it alone runs `compute_inverses`, which consumes
    /// both factors). Both sections stay packed; whole-payload quantization
    /// matches the dense path's [`unpack_factor_payload`] bit for bit.
    pub(crate) fn fold_gathered_payload(&mut self, i: usize, mut payload: Vec<f32>, split: usize) {
        let asn = self.plan.layers[i].clone();
        if self.rank != asn.a_worker {
            return;
        }
        let decay = self.cfg.factor_decay;
        let precision = self.cfg.precision;
        let triangular = self.cfg.triangular_comm;
        self.times.time_layer(i, Stage::FactorCompute, || {
            quantize_slice(&mut payload, precision);
            self.states[i].update_packed_a(&payload[..split], triangular, decay);
            self.states[i].update_packed_g(&payload[split..], triangular, decay);
        });
        self.note_factor_residency();
    }

    /// Stage 2: recompute decompositions on assigned workers and broadcast.
    fn update_decompositions(&mut self, comm: &dyn Communicator) {
        let rank = self.rank;
        let damping = self.cfg.damping;
        let precision = self.cfg.precision;
        let precompute = self.cfg.precompute_outer;
        let use_eigen = self.cfg.use_eigen;
        // Batch every dense-resident eigensolve this rank owns up front
        // (bitwise identical to the inline calls below; per-layer timing
        // attributed inside). Shard-resident factors stay inline. The loop
        // below visits layers in index order, so the prepass iterator
        // stays aligned with `i`.
        let mut prepass = self.eig_prepass().into_iter();

        for i in 0..self.states.len() {
            let mut presolved = prepass.next().expect("one prepass slot per layer");
            let asn = self.plan.layers[i].clone();
            let is_gw = asn.is_gradient_worker(rank);
            let (a_dim, g_dim) = (self.states[i].a_dim, self.states[i].g_dim);

            // EK-FAC corrected moments live in the eigenbasis; a new basis
            // invalidates them (they re-seed from the fresh outer product).
            if self.cfg.ekfac {
                self.states[i].ekfac_scale = None;
            }
            self.note_decomposition_transients(i);

            if !use_eigen {
                // Eq. 12–14 fallback: damped direct inverses computed on the
                // A worker (both factors live on every rank), broadcast to
                // gradient workers.
                if rank == asn.a_worker {
                    self.times.time_layer(i, Stage::EigCompute, || {
                        self.states[i].compute_inverses(damping);
                    });
                }
                if is_gw && asn.gradient_workers.len() > 1 {
                    let local_a = self.states[i].inv_a.take();
                    let mb = self.begin_matrix_bcast(
                        i,
                        comm,
                        local_a,
                        a_dim,
                        a_dim,
                        asn.a_worker,
                        &asn.gradient_workers,
                    );
                    let inv_a = self.complete_matrix_bcast(i, comm, mb);
                    let local_g = self.states[i].inv_g.take();
                    let mb = self.begin_matrix_bcast(
                        i,
                        comm,
                        local_g,
                        g_dim,
                        g_dim,
                        asn.a_worker,
                        &asn.gradient_workers,
                    );
                    let inv_g = self.complete_matrix_bcast(i, comm, mb);
                    self.states[i].inv_a = Some(inv_a);
                    self.states[i].inv_g = Some(inv_g);
                }
                continue;
            }

            // Eigendecomposition path (Eq. 15–17).
            let mut va: Option<Vec<f32>> = None;
            let mut vg: Option<Vec<f32>> = None;
            if rank == asn.a_worker {
                let (qa, values) = match presolved.0.take() {
                    Some(solved) => solved,
                    None => self.times.time_layer(i, Stage::EigCompute, || self.states[i].eig_a()),
                };
                self.states[i].qa = Some(qa);
                va = Some(values);
            }
            if rank == asn.g_worker {
                let (qg, values) = match presolved.1.take() {
                    Some(solved) => solved,
                    None => self.times.time_layer(i, Stage::EigCompute, || self.states[i].eig_g()),
                };
                self.states[i].qg = Some(qg);
                vg = Some(values);
            }

            if precompute {
                // Section 4.4: ship v_A to the G worker, which computes the
                // damped reciprocal outer product exactly once.
                if asn.a_worker != asn.g_worker && (rank == asn.a_worker || rank == asn.g_worker) {
                    let pair = [asn.a_worker, asn.g_worker];
                    let mut buf = va.clone().unwrap_or_else(|| vec![0.0; a_dim]);
                    self.times.time_layer(i, Stage::EigComm, || {
                        let pending =
                            comm.begin_broadcast(&buf, asn.a_worker, &pair, CommTag::EigComm);
                        comm.complete(pending, &mut buf);
                    });
                    if rank == asn.a_worker {
                        self.comm_bytes += (a_dim * precision.bytes_per_element()) as u64;
                    }
                    if rank == asn.g_worker {
                        va = Some(buf);
                    }
                }
                if rank == asn.g_worker {
                    let outer = self.times.time_layer(i, Stage::EigCompute, || {
                        KfacLayerState::compute_outer(
                            vg.as_ref().expect("G worker has v_G"),
                            va.as_ref().expect("G worker received v_A"),
                            damping,
                        )
                    });
                    self.states[i].outer = Some(outer);
                }
            }

            if is_gw && asn.gradient_workers.len() > 1 {
                let local_qa = self.states[i].qa.take();
                let mb = self.begin_matrix_bcast(
                    i,
                    comm,
                    local_qa,
                    a_dim,
                    a_dim,
                    asn.a_worker,
                    &asn.gradient_workers,
                );
                let qa = self.complete_matrix_bcast(i, comm, mb);
                self.states[i].qa = Some(qa);
                let local_qg = self.states[i].qg.take();
                let mb = self.begin_matrix_bcast(
                    i,
                    comm,
                    local_qg,
                    g_dim,
                    g_dim,
                    asn.g_worker,
                    &asn.gradient_workers,
                );
                let qg = self.complete_matrix_bcast(i, comm, mb);
                self.states[i].qg = Some(qg);
                if precompute {
                    let local_outer = self.states[i].outer.take();
                    let mb = self.begin_matrix_bcast(
                        i,
                        comm,
                        local_outer,
                        g_dim,
                        a_dim,
                        asn.g_worker,
                        &asn.gradient_workers,
                    );
                    let outer = self.complete_matrix_bcast(i, comm, mb);
                    self.states[i].outer = Some(outer);
                } else {
                    // Ablation: ship raw eigenvalues; every worker recomputes
                    // the outer product at every preconditioning step.
                    let mut va_buf = va.take().unwrap_or_else(|| vec![0.0; a_dim]);
                    let mut vg_buf = vg.take().unwrap_or_else(|| vec![0.0; g_dim]);
                    self.times.time_layer(i, Stage::EigComm, || {
                        let pending = comm.begin_broadcast(
                            &va_buf,
                            asn.a_worker,
                            &asn.gradient_workers,
                            CommTag::EigComm,
                        );
                        comm.complete(pending, &mut va_buf);
                        let pending = comm.begin_broadcast(
                            &vg_buf,
                            asn.g_worker,
                            &asn.gradient_workers,
                            CommTag::EigComm,
                        );
                        comm.complete(pending, &mut vg_buf);
                    });
                    let receivers = (asn.gradient_workers.len() - 1) as u64;
                    if rank == asn.a_worker {
                        self.comm_bytes +=
                            (a_dim * precision.bytes_per_element()) as u64 * receivers;
                    }
                    if rank == asn.g_worker {
                        self.comm_bytes +=
                            (g_dim * precision.bytes_per_element()) as u64 * receivers;
                    }
                    self.states[i].va = Some(va_buf);
                    self.states[i].vg = Some(vg_buf);
                }
            } else if is_gw {
                // Single gradient worker: keep local values (no broadcast).
                if !precompute {
                    if let Some(values) = va.take() {
                        self.states[i].va = Some(values);
                    }
                    if let Some(values) = vg.take() {
                        self.states[i].vg = Some(values);
                    }
                }
            }
        }
    }

    /// Stages 3 and 4: precondition gradients, broadcast to receivers,
    /// KL-clip scale, and write back.
    fn precondition_and_scale(
        &mut self,
        layers: &mut [&mut dyn kaisa_nn::KfacAble],
        comm: &dyn Communicator,
        lr: f32,
    ) {
        let rank = self.rank;
        let precision = self.cfg.precision;

        let grads: Vec<Matrix> = layers.iter().map(|l| l.combined_grad()).collect();
        let mut preconditioned: Vec<Matrix> = Vec::with_capacity(grads.len());

        for (i, grad) in grads.iter().enumerate() {
            let asn = self.plan.layers[i].clone();
            let is_gw = asn.is_gradient_worker(rank);
            let mut precond = self.precondition_local(i, grad, is_gw);

            if let Some(group) = asn.bcast_group_of(rank) {
                let root = group[0];
                if rank == root {
                    precond.quantize(precision);
                    self.comm_bytes += (precond.numel()
                        * precision.bytes_per_element()
                        * (group.len() - 1)) as u64;
                }
                self.times.time_layer(i, Stage::GradComm, || {
                    let pending =
                        comm.begin_broadcast(precond.as_slice(), root, group, CommTag::GradComm);
                    comm.complete(pending, precond.as_mut_slice());
                });
            }
            preconditioned.push(precond);
        }

        self.scale_and_write_back(layers, &grads, preconditioned, lr);
    }

    /// Precondition one layer's gradient locally (Eq. 15–17, EK-FAC, or the
    /// direct-inverse fallback) — or return a zero receive buffer on
    /// non-gradient-worker ranks. Shared by both executors.
    pub(crate) fn precondition_local(&mut self, i: usize, grad: &Matrix, is_gw: bool) -> Matrix {
        let (g_dim, a_dim) = (self.states[i].g_dim, self.states[i].a_dim);
        if !is_gw {
            return Matrix::zeros(g_dim, a_dim);
        }
        let damping = self.cfg.damping;
        let use_eigen = self.cfg.use_eigen;
        let ekfac = self.cfg.ekfac;
        let factor_decay = self.cfg.factor_decay;
        let state = &mut self.states[i];
        self.times.time_layer(i, Stage::Precondition, || {
            if ekfac {
                state.precondition_ekfac(grad, damping, factor_decay)
            } else if use_eigen {
                state.precondition_eigen(grad, damping)
            } else {
                state.precondition_inverse(grad)
            }
        })
    }

    /// Stage 4: KL-clip scaling and write-back (identical on every rank
    /// because both the gradients and the preconditioned gradients are
    /// replicated). Runs in serial layer order on both executors so the
    /// `Σ⟨p,g⟩` accumulation — and hence ν — is bitwise identical.
    pub(crate) fn scale_and_write_back(
        &mut self,
        layers: &mut [&mut dyn kaisa_nn::KfacAble],
        grads: &[Matrix],
        preconditioned: Vec<Matrix>,
        lr: f32,
    ) {
        let eb = self.cfg.precision.bytes_per_element();
        let precond_bytes = preconditioned.iter().map(|m| m.numel()).sum::<usize>() * eb;
        self.mem.set(MemoryCategory::PrecondGrads, precond_bytes);
        self.times.time(Stage::Scale, || {
            let nu = match self.cfg.kl_clip {
                None => 1.0,
                Some(clip) => {
                    let mut vg_sum = 0.0f64;
                    for (p, g) in preconditioned.iter().zip(grads) {
                        vg_sum += (p.dot(g) * lr * lr) as f64;
                    }
                    if vg_sum > 0.0 {
                        (clip as f64 / vg_sum).sqrt().min(1.0) as f32
                    } else {
                        1.0
                    }
                }
            };
            for (layer, mut p) in layers.iter_mut().zip(preconditioned) {
                if nu != 1.0 {
                    p.scale(nu);
                }
                layer.set_combined_grad(&p);
            }
        });
        // The preconditioned copies are written back and dropped.
        self.mem.set(MemoryCategory::PrecondGrads, 0);
    }
}

/// The two-shard ownership spec of one layer's packed factor payload: the
/// `A` section `[0, split)` belongs to the layer's A-eigendecomposition
/// worker, the `G` section `[split, total)` to its G-worker (one rank may
/// own both).
pub(crate) fn factor_shards(asn: &LayerAssignment, split: usize, total: usize) -> [ShardSpec; 2] {
    [
        ShardSpec { owner: asn.a_worker, start: 0, len: split },
        ShardSpec { owner: asn.g_worker, start: split, len: total - split },
    ]
}

/// Reorder a worker-group allgather result back into payload order. The
/// gather concatenates sections in *group rank order* (ascending rank), so
/// when the G worker's rank precedes the A worker's, the `G` section arrives
/// first and must be swapped behind the `A` section.
pub(crate) fn reassemble_gathered_payload(
    asn: &LayerAssignment,
    gathered: &[f32],
    split: usize,
) -> Vec<f32> {
    debug_assert_ne!(asn.a_worker, asn.g_worker, "co-located workers never gather");
    if asn.a_worker < asn.g_worker {
        gathered.to_vec()
    } else {
        let g_len = gathered.len() - split;
        let mut payload = Vec::with_capacity(gathered.len());
        payload.extend_from_slice(&gathered[g_len..]);
        payload.extend_from_slice(&gathered[..g_len]);
        payload
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kaisa_comm::LocalComm;
    use kaisa_nn::models::Mlp;
    use kaisa_tensor::{Precision, Rng};

    fn toy_setup() -> (Mlp, Matrix, Vec<usize>, Rng) {
        let mut rng = Rng::seed_from_u64(211);
        let mlp = Mlp::new(&[6, 10, 3], &mut rng);
        let x = Matrix::randn(16, 6, 1.0, &mut rng);
        let y: Vec<usize> = (0..16).map(|i| i % 3).collect();
        (mlp, x, y, rng)
    }

    #[test]
    fn single_process_step_preconditions() {
        let (mut model, x, y, _) = toy_setup();
        let comm = LocalComm::new();
        let cfg = KfacConfig::builder().factor_update_freq(1).inv_update_freq(1).build();
        let mut kfac = Kfac::new(cfg, &mut model, &comm);
        assert_eq!(kfac.strategy(), DistStrategy::CommOpt);

        kfac.prepare(&mut model);
        model.zero_grad();
        let _ = model.forward_backward(&x, &y);
        let before = model.grads_flat();
        kfac.step(&mut model, &comm, 0.1);
        let after = model.grads_flat();
        assert_ne!(before, after, "preconditioning must change the gradients");
        assert!(after.iter().all(|v| v.is_finite()));
        assert_eq!(kfac.steps(), 1);
    }

    #[test]
    fn non_update_steps_reuse_cached_decompositions() {
        let (mut model, x, y, _) = toy_setup();
        let comm = LocalComm::new();
        let cfg = KfacConfig::builder().factor_update_freq(2).inv_update_freq(4).build();
        let mut kfac = Kfac::new(cfg, &mut model, &comm);
        for step in 0..6 {
            kfac.prepare(&mut model);
            model.zero_grad();
            let _ = model.forward_backward(&x, &y);
            kfac.step(&mut model, &comm, 0.1);
            let _ = step;
        }
        // 6 steps with F=2: factor updates at steps 0, 2, 4 → allreduce
        // volume reflects 3 updates; eig at steps 0, 4.
        assert_eq!(kfac.steps(), 6);
        assert!(kfac.stage_times().total(Stage::EigCompute) > 0.0);
    }

    #[test]
    fn memory_grows_after_first_step() {
        let (mut model, x, y, _) = toy_setup();
        let comm = LocalComm::new();
        let cfg = KfacConfig::builder().factor_update_freq(1).inv_update_freq(1).build();
        let mut kfac = Kfac::new(cfg, &mut model, &comm);
        assert_eq!(kfac.memory_bytes(), 0);
        kfac.prepare(&mut model);
        model.zero_grad();
        let _ = model.forward_backward(&x, &y);
        kfac.step(&mut model, &comm, 0.1);
        let mem = kfac.memory_bytes();
        // Factors + Q_A + Q_G + outer for both layers.
        // Layer 0: a=7, g=10 → 49+100+49+100+70 = 368; layer 1: a=11, g=3 →
        // 121+9+121+9+33 = 293. Total 661 floats.
        assert_eq!(mem, 661 * 4);
    }

    #[test]
    fn kl_clip_bounds_update_magnitude() {
        let (mut model, x, y, _) = toy_setup();
        let comm = LocalComm::new();
        let clipped_cfg = KfacConfig::builder()
            .factor_update_freq(1)
            .inv_update_freq(1)
            .kl_clip(Some(1e-6))
            .build();
        let free_cfg =
            KfacConfig::builder().factor_update_freq(1).inv_update_freq(1).kl_clip(None).build();

        let mut m1 = model.clone();
        let mut kfac1 = Kfac::new(clipped_cfg, &mut m1, &comm);
        kfac1.prepare(&mut m1);
        m1.zero_grad();
        let _ = m1.forward_backward(&x, &y);
        kfac1.step(&mut m1, &comm, 1.0);
        let clipped_norm: f64 =
            m1.grads_flat().iter().map(|v| (*v as f64).powi(2)).sum::<f64>().sqrt();

        let mut kfac2 = Kfac::new(free_cfg, &mut model, &comm);
        kfac2.prepare(&mut model);
        model.zero_grad();
        let _ = model.forward_backward(&x, &y);
        kfac2.step(&mut model, &comm, 1.0);
        let free_norm: f64 =
            model.grads_flat().iter().map(|v| (*v as f64).powi(2)).sum::<f64>().sqrt();

        assert!(clipped_norm < free_norm, "tiny kl_clip must shrink the update");
    }

    #[test]
    fn eigen_and_inverse_paths_are_close_approximations() {
        // Eq. 15–17 and Eq. 12–14 are *different* damped approximations (the
        // denominators are v_G·v_A + γ vs (v_G+γ)(v_A+γ)); both must run and
        // produce strongly correlated preconditioned gradients.
        let (model, x, y, _) = toy_setup();
        let comm = LocalComm::new();
        let mut grads = Vec::new();
        for use_eigen in [true, false] {
            let mut m = model.clone();
            let cfg = KfacConfig::builder()
                .factor_update_freq(1)
                .inv_update_freq(1)
                .use_eigen(use_eigen)
                .kl_clip(None)
                .build();
            let mut kfac = Kfac::new(cfg, &mut m, &comm);
            kfac.prepare(&mut m);
            m.zero_grad();
            let _ = m.forward_backward(&x, &y);
            kfac.step(&mut m, &comm, 0.1);
            grads.push(m.grads_flat());
        }
        let dot: f64 = grads[0].iter().zip(&grads[1]).map(|(a, b)| (*a as f64) * (*b as f64)).sum();
        let n0: f64 = grads[0].iter().map(|v| (*v as f64).powi(2)).sum::<f64>().sqrt();
        let n1: f64 = grads[1].iter().map(|v| (*v as f64).powi(2)).sum::<f64>().sqrt();
        let cosine = dot / (n0 * n1);
        assert!(cosine > 0.9, "paths should be strongly correlated, cosine={cosine}");
        assert!(n0 > 0.0 && n1 > 0.0 && n0.is_finite() && n1.is_finite());
    }

    #[test]
    fn outer_precompute_ablation_matches() {
        let (model, x, y, _) = toy_setup();
        let comm = LocalComm::new();
        let mut grads = Vec::new();
        for precompute in [true, false] {
            let mut m = model.clone();
            let cfg = KfacConfig::builder()
                .factor_update_freq(1)
                .inv_update_freq(1)
                .precompute_outer(precompute)
                .build();
            let mut kfac = Kfac::new(cfg, &mut m, &comm);
            kfac.prepare(&mut m);
            m.zero_grad();
            let _ = m.forward_backward(&x, &y);
            kfac.step(&mut m, &comm, 0.1);
            grads.push(m.grads_flat());
        }
        for (a, b) in grads[0].iter().zip(&grads[1]) {
            assert!((a - b).abs() < 1e-6);
        }
    }

    #[test]
    fn triangular_comm_is_equivalent_single_rank() {
        let (model, x, y, _) = toy_setup();
        let comm = LocalComm::new();
        let mut grads = Vec::new();
        for triangular in [false, true] {
            let mut m = model.clone();
            let cfg = KfacConfig::builder()
                .factor_update_freq(1)
                .inv_update_freq(1)
                .triangular_comm(triangular)
                .build();
            let mut kfac = Kfac::new(cfg, &mut m, &comm);
            kfac.prepare(&mut m);
            m.zero_grad();
            let _ = m.forward_backward(&x, &y);
            kfac.step(&mut m, &comm, 0.1);
            grads.push(m.grads_flat());
        }
        for (a, b) in grads[0].iter().zip(&grads[1]) {
            assert!((a - b).abs() < 1e-5);
        }
    }

    #[test]
    fn triangular_comm_halves_logical_volume() {
        let (model, x, y, _) = toy_setup();
        let comm = LocalComm::new();
        let mut volumes = Vec::new();
        for triangular in [false, true] {
            let mut m = model.clone();
            let cfg = KfacConfig::builder()
                .factor_update_freq(1)
                .inv_update_freq(1)
                .triangular_comm(triangular)
                .build();
            let mut kfac = Kfac::new(cfg, &mut m, &comm);
            kfac.prepare(&mut m);
            m.zero_grad();
            let _ = m.forward_backward(&x, &y);
            // Count only the factor allreduce volume: stop before eig bcasts
            // by reading comm_bytes after a factor-only step... simplest:
            // full step, but single-rank worlds have no eig/grad broadcasts,
            // so comm_bytes is exactly the factor volume.
            kfac.step(&mut m, &comm, 0.1);
            volumes.push(kfac.comm_bytes());
        }
        let (full, tri) = (volumes[0] as f64, volumes[1] as f64);
        let ratio = tri / full;
        assert!(ratio > 0.49 && ratio < 0.56, "triangular ratio {ratio}");
    }

    #[test]
    fn fp16_halves_logical_volume_and_memory() {
        let (model, x, y, _) = toy_setup();
        let comm = LocalComm::new();
        let mut volumes = Vec::new();
        let mut memories = Vec::new();
        for precision in [Precision::Fp32, Precision::Fp16] {
            let mut m = model.clone();
            let cfg = KfacConfig::builder()
                .factor_update_freq(1)
                .inv_update_freq(1)
                .precision(precision)
                .build();
            let mut kfac = Kfac::new(cfg, &mut m, &comm);
            kfac.prepare(&mut m);
            m.zero_grad();
            let _ = m.forward_backward(&x, &y);
            kfac.step(&mut m, &comm, 0.1);
            volumes.push(kfac.comm_bytes());
            memories.push(kfac.memory_bytes());
        }
        assert_eq!(volumes[1] * 2, volumes[0]);
        assert_eq!(memories[1] * 2, memories[0]);
    }

    #[test]
    fn kfac_accelerates_convergence_over_sgd() {
        // The headline claim at miniature scale: with equal lr and steps,
        // K-FAC-preconditioned SGD reaches lower loss than plain SGD.
        let mut rng = Rng::seed_from_u64(212);
        let model = Mlp::new(&[8, 16, 4], &mut rng);
        let x = Matrix::randn(64, 8, 1.0, &mut rng);
        let y: Vec<usize> = (0..64).map(|i| i % 4).collect();
        let comm = LocalComm::new();
        let lr = 0.05;
        let steps = 30;

        // Plain SGD.
        let mut sgd_model = model.clone();
        for _ in 0..steps {
            sgd_model.zero_grad();
            let _ = sgd_model.forward_backward(&x, &y);
            let g = sgd_model.grads_flat();
            let mut p = sgd_model.params_flat();
            for (pi, gi) in p.iter_mut().zip(&g) {
                *pi -= lr * gi;
            }
            sgd_model.set_params_flat(&p);
        }
        let sgd_loss = sgd_model.evaluate(&x, &y).loss;

        // K-FAC preconditioned SGD.
        let mut kfac_model = model.clone();
        let cfg = KfacConfig::builder().factor_update_freq(5).inv_update_freq(5).build();
        let mut kfac = Kfac::new(cfg, &mut kfac_model, &comm);
        for _ in 0..steps {
            kfac.prepare(&mut kfac_model);
            kfac_model.zero_grad();
            let _ = kfac_model.forward_backward(&x, &y);
            kfac.step(&mut kfac_model, &comm, lr);
            let g = kfac_model.grads_flat();
            let mut p = kfac_model.params_flat();
            for (pi, gi) in p.iter_mut().zip(&g) {
                *pi -= lr * gi;
            }
            kfac_model.set_params_flat(&p);
        }
        let kfac_loss = kfac_model.evaluate(&x, &y).loss;
        assert!(
            kfac_loss < sgd_loss,
            "K-FAC ({kfac_loss}) should beat SGD ({sgd_loss}) at equal steps"
        );
    }
}
