//! Live per-rank resident-memory accounting for K-FAC state.
//!
//! The analytic model in `kaisa-sim` *predicts* per-rank memory; the
//! [`MemoryMeter`] *measures* it, so claims like "shard-resident factor
//! accumulation cuts non-worker factor memory to O(owned shards)" can be
//! asserted in tests and regression-gated in CI instead of modeled in a
//! doc. Each `Kfac` instance owns one meter; the trainer exposes it per
//! rank through `TrainResult`.
//!
//! Bytes are counted at the configured storage precision — the same
//! convention as `Kfac::memory_bytes` and the paper's Table 5 — so the
//! meter's `Factors`/`Eigens` categories are directly comparable to the
//! analytic breakdown.

/// A category of K-FAC resident memory tracked by the [`MemoryMeter`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MemoryCategory {
    /// Running factor averages: square `A`/`G` matrices on the dense path,
    /// packed shard sections on the shard-resident path, plus the transient
    /// square materializations decomposition workers perform.
    Factors,
    /// Cached decompositions: eigenvectors, the precomputed outer product,
    /// direct inverses, eigenvalue vectors, and EK-FAC corrected moments.
    Eigens,
    /// Per-layer packed staging buffers the sharded path folds local batch
    /// statistics into before the reduce-scatter.
    PackedStaging,
    /// Preconditioned gradients alive between preconditioning and the
    /// KL-clip write-back.
    PrecondGrads,
    /// Residual buffers of retired cross-iteration window steps: payload
    /// and shard buffers a depth-D runtime holds for deferred factor
    /// completes until the window drains them (`cross_iter_depth > 1`).
    HeldWindows,
    /// Persistent per-layer streamed-capture chunk buffers: the bounded
    /// `chunk x a_dim` im2col scratch conv layers reuse across factor
    /// updates on the SYRK fast path (replacing the full patch-matrix
    /// materialization the pre-SYRK capture performed).
    CaptureScratch,
}

impl MemoryCategory {
    /// Every category, in display order.
    pub const ALL: [MemoryCategory; 6] = [
        MemoryCategory::Factors,
        MemoryCategory::Eigens,
        MemoryCategory::PackedStaging,
        MemoryCategory::PrecondGrads,
        MemoryCategory::HeldWindows,
        MemoryCategory::CaptureScratch,
    ];

    /// Human-readable category name (figure/table labels).
    pub fn name(self) -> &'static str {
        match self {
            MemoryCategory::Factors => "factors",
            MemoryCategory::Eigens => "eigens",
            MemoryCategory::PackedStaging => "packed staging",
            MemoryCategory::PrecondGrads => "precond grads",
            MemoryCategory::HeldWindows => "held windows",
            MemoryCategory::CaptureScratch => "capture scratch",
        }
    }

    fn index(self) -> usize {
        match self {
            MemoryCategory::Factors => 0,
            MemoryCategory::Eigens => 1,
            MemoryCategory::PackedStaging => 2,
            MemoryCategory::PrecondGrads => 3,
            MemoryCategory::HeldWindows => 4,
            MemoryCategory::CaptureScratch => 5,
        }
    }
}

/// Peak/current resident bytes per [`MemoryCategory`] on one rank.
///
/// `current` tracks what is resident right now; `peak` is the high-water
/// mark, including transient allocations recorded via
/// [`MemoryMeter::transient`] that never become resident (e.g. the square
/// factor a shard-resident eigendecomposition materializes and drops).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MemoryMeter {
    current: [usize; 6],
    peak: [usize; 6],
}

impl MemoryMeter {
    /// A meter with all categories at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Set a category's current resident bytes, raising its peak if needed.
    pub fn set(&mut self, cat: MemoryCategory, bytes: usize) {
        let i = cat.index();
        self.current[i] = bytes;
        self.peak[i] = self.peak[i].max(bytes);
    }

    /// Record a transient allocation of `bytes` on top of the category's
    /// current residency: raises the peak to at least `current + bytes`
    /// without changing `current`.
    pub fn transient(&mut self, cat: MemoryCategory, bytes: usize) {
        let i = cat.index();
        self.peak[i] = self.peak[i].max(self.current[i] + bytes);
    }

    /// Current resident bytes in a category.
    pub fn current(&self, cat: MemoryCategory) -> usize {
        self.current[cat.index()]
    }

    /// Peak resident bytes a category ever reached.
    pub fn peak(&self, cat: MemoryCategory) -> usize {
        self.peak[cat.index()]
    }

    /// Current resident bytes summed over all categories.
    pub fn current_total(&self) -> usize {
        self.current.iter().sum()
    }

    /// Sum of per-category peaks — an upper bound on the true peak total,
    /// since categories may not peak simultaneously.
    pub fn peak_total(&self) -> usize {
        self.peak.iter().sum()
    }
}

/// A fixed pool-wide K-FAC memory budget for admission control.
///
/// The serve layer models a candidate job's per-rank K-FAC footprint (the
/// analytic `kfac_overhead_sharded()` from `kaisa-sim`) and asks the budget
/// whether that footprint fits on top of what running jobs' live
/// [`MemoryMeter`]s currently hold. The two query flavors drive the two
/// admission outcomes: a job that [`MemoryBudget::would_ever_fit`] rejects
/// can never run on this pool (modeled footprint exceeds the whole budget);
/// a job that merely fails [`MemoryBudget::admits`] right now is queued and
/// retried when a running job pauses or completes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemoryBudget {
    limit: usize,
}

impl MemoryBudget {
    /// A budget of `limit_bytes` total K-FAC state across the pool.
    pub fn new(limit_bytes: usize) -> Self {
        MemoryBudget { limit: limit_bytes }
    }

    /// The configured limit in bytes.
    pub fn limit(&self) -> usize {
        self.limit
    }

    /// Whether a job with `modeled` additional bytes fits alongside `live`
    /// bytes currently resident.
    pub fn admits(&self, live: usize, modeled: usize) -> bool {
        live.saturating_add(modeled) <= self.limit
    }

    /// Whether a job with `modeled` bytes could fit on an otherwise-empty
    /// pool at all — `false` means reject outright rather than queue.
    pub fn would_ever_fit(&self, modeled: usize) -> bool {
        modeled <= self.limit
    }

    /// Bytes still unclaimed with `live` bytes resident.
    pub fn remaining(&self, live: usize) -> usize {
        self.limit.saturating_sub(live)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_tracks_current_and_peak_independently() {
        let mut m = MemoryMeter::new();
        m.set(MemoryCategory::Factors, 100);
        m.set(MemoryCategory::Factors, 40);
        assert_eq!(m.current(MemoryCategory::Factors), 40);
        assert_eq!(m.peak(MemoryCategory::Factors), 100);
        assert_eq!(m.current(MemoryCategory::Eigens), 0);
    }

    #[test]
    fn transient_raises_peak_without_touching_current() {
        let mut m = MemoryMeter::new();
        m.set(MemoryCategory::Factors, 50);
        m.transient(MemoryCategory::Factors, 30);
        assert_eq!(m.current(MemoryCategory::Factors), 50);
        assert_eq!(m.peak(MemoryCategory::Factors), 80);
        // A smaller transient never lowers the peak.
        m.transient(MemoryCategory::Factors, 10);
        assert_eq!(m.peak(MemoryCategory::Factors), 80);
    }

    #[test]
    fn totals_sum_categories() {
        let mut m = MemoryMeter::new();
        m.set(MemoryCategory::Factors, 10);
        m.set(MemoryCategory::Eigens, 20);
        m.set(MemoryCategory::PrecondGrads, 5);
        m.set(MemoryCategory::PrecondGrads, 0);
        assert_eq!(m.current_total(), 30);
        assert_eq!(m.peak_total(), 35);
    }

    #[test]
    fn budget_admission_queries() {
        let b = MemoryBudget::new(1000);
        assert_eq!(b.limit(), 1000);
        assert!(b.admits(0, 1000));
        assert!(!b.admits(1, 1000));
        assert!(b.admits(400, 600));
        assert!(!b.admits(401, 600));
        assert!(b.would_ever_fit(1000));
        assert!(!b.would_ever_fit(1001));
        assert_eq!(b.remaining(400), 600);
        assert_eq!(b.remaining(2000), 0);
        // Saturating: absurd live totals never overflow.
        assert!(!b.admits(usize::MAX, 1));
    }

    #[test]
    fn category_names_are_distinct() {
        let names: Vec<&str> = MemoryCategory::ALL.iter().map(|c| c.name()).collect();
        let mut dedup = names.clone();
        dedup.dedup();
        assert_eq!(names.len(), dedup.len());
    }
}
