//! Per-layer K-FAC state: running factors and cached eigendecompositions,
//! plus the pure pack/unpack kernels the stage pipeline uses as task bodies.

use kaisa_linalg::{pack_upper, packed_len, spd_inverse, sym_eig, unpack_upper};
use kaisa_tensor::{Matrix, Precision};

/// Quantize a payload to the storage precision in place (no-op at fp32).
pub fn quantize_slice(buf: &mut [f32], precision: Precision) {
    if precision.is_half() {
        kaisa_tensor::f16::quantize_slice_f16(buf);
    }
}

/// Pack both batch factors into one allreduce payload at the storage
/// precision (the factor-allreduce *begin* task body). Returns the payload
/// and the element index where the `G` section starts.
pub fn pack_factor_payload(
    a: &Matrix,
    g: &Matrix,
    triangular: bool,
    precision: Precision,
) -> (Vec<f32>, usize) {
    let mut buf = if triangular {
        // Section 4.3: send only the upper triangles, rebuild after.
        let mut packed = pack_upper(a);
        packed.extend_from_slice(&pack_upper(g));
        packed
    } else {
        let mut flat = Vec::with_capacity(a.numel() + g.numel());
        flat.extend_from_slice(a.as_slice());
        flat.extend_from_slice(g.as_slice());
        flat
    };
    let split = if triangular { packed_len(a.rows()) } else { a.numel() };
    quantize_slice(&mut buf, precision);
    (buf, split)
}

/// Rebuild the two factor matrices from an averaged payload (the
/// factor-allreduce *complete* task body): re-quantize, then unpack.
pub fn unpack_factor_payload(
    buf: &mut [f32],
    split: usize,
    a_rows: usize,
    g_rows: usize,
    triangular: bool,
    precision: Precision,
) -> (Matrix, Matrix) {
    quantize_slice(buf, precision);
    if triangular {
        (unpack_upper(&buf[..split], a_rows), unpack_upper(&buf[split..], g_rows))
    } else {
        (
            Matrix::from_vec(a_rows, a_rows, buf[..split].to_vec()),
            Matrix::from_vec(g_rows, g_rows, buf[split..].to_vec()),
        )
    }
}

/// Logical element count of the factor payload on the wire.
pub fn factor_payload_len(a_rows: usize, g_rows: usize, triangular: bool) -> usize {
    if triangular {
        packed_len(a_rows) + packed_len(g_rows)
    } else {
        a_rows * a_rows + g_rows * g_rows
    }
}

/// Wire-layout element count of a single factor section.
pub fn packed_factor_len(rows: usize, triangular: bool) -> usize {
    if triangular {
        packed_len(rows)
    } else {
        rows * rows
    }
}

/// Pack both batch factors into `buf` (cleared and reused across factor
/// steps), scaling every element by `scale` during the copy, then quantize
/// to the storage precision. Returns the element index where the `G`
/// section starts.
///
/// This fuses the dense reference's `scale()` + [`pack_factor_payload`]
/// into one pass over the statistics so the sharded path can stage its
/// reduce-scatter payload without materializing scaled square matrices.
/// `x * scale` per element is the exact product `Matrix::scale` computes,
/// and quantization still runs over the identical packed values, so the
/// staged payload is bitwise identical to the dense reference's.
pub fn pack_factor_payload_scaled_into(
    buf: &mut Vec<f32>,
    a: &Matrix,
    g: &Matrix,
    scale: f32,
    triangular: bool,
    precision: Precision,
) -> usize {
    buf.clear();
    if triangular {
        for m in [a, g] {
            for r in 0..m.rows() {
                buf.extend(m.row(r)[r..].iter().map(|&x| x * scale));
            }
        }
    } else {
        buf.extend(a.as_slice().iter().map(|&x| x * scale));
        buf.extend(g.as_slice().iter().map(|&x| x * scale));
    }
    let split = packed_factor_len(a.rows(), triangular);
    quantize_slice(buf, precision);
    split
}

/// A factor running average stored in its packed wire layout — exactly the
/// shard section a reduce-scatter delivers (flat row-major square, or the
/// upper triangle under `triangular_comm`) — so shard owners never hold a
/// square matrix between decomposition steps.
#[derive(Debug, Clone)]
pub struct PackedFactor {
    /// Packed elements at the storage precision (quantized in place).
    pub data: Vec<f32>,
    /// Whether `data` is an upper-triangle packing (Section 4.3) rather
    /// than a flat row-major square.
    pub triangular: bool,
}

impl PackedFactor {
    /// Materialize the square symmetric matrix this packing represents.
    /// Unpacking mirrors bit-equal elements, so the result is bitwise
    /// identical to a square matrix maintained by the same folds.
    pub fn to_matrix(&self, rows: usize) -> Matrix {
        debug_assert_eq!(self.data.len(), packed_factor_len(rows, self.triangular));
        if self.triangular {
            unpack_upper(&self.data, rows)
        } else {
            Matrix::from_vec(rows, rows, self.data.clone())
        }
    }
}

/// Per-window-slot packed staging buffers: one reusable `Vec<f32>` per
/// `(window slot, layer)`. With a depth-D cross-iteration window, up to D
/// step DAGs are in flight at once; giving each window slot its own staging
/// buffers guarantees a held DAG's factor payload can never alias the
/// staging a *live* step is packing into — by construction, not by timing.
/// Depth 1 degenerates to the classic single per-layer buffer set.
#[derive(Debug, Clone)]
pub(crate) struct StagingRing {
    /// `slots[slot][layer]`: reused across the factor steps that map to
    /// `slot` (`window index % depth`).
    slots: Vec<Vec<Vec<f32>>>,
}

impl StagingRing {
    /// A ring of `depth` slots with one empty buffer per layer each.
    pub fn new(depth: usize, layers: usize) -> Self {
        assert!(depth >= 1, "staging ring needs at least one slot");
        StagingRing { slots: vec![vec![Vec::new(); layers]; depth] }
    }

    /// Take layer `layer`'s buffer from `slot` (replacing it with an empty
    /// vec); pair with [`StagingRing::put`] around a pack-and-begin.
    pub fn take(&mut self, slot: usize, layer: usize) -> Vec<f32> {
        let depth = self.slots.len();
        std::mem::take(&mut self.slots[slot % depth][layer])
    }

    /// Return a buffer taken by [`StagingRing::take`].
    pub fn put(&mut self, slot: usize, layer: usize, buf: Vec<f32>) {
        let depth = self.slots.len();
        self.slots[slot % depth][layer] = buf;
    }

    /// Resident bytes across every slot at `elem_bytes` per element.
    pub fn resident_bytes(&self, elem_bytes: usize) -> usize {
        self.slots.iter().flat_map(|layers| layers.iter()).map(|b| b.len() * elem_bytes).sum()
    }
}

/// The single EMA fold kernel for square factor state: first fold moves the
/// fresh matrix in, later folds compute `x ← (1-decay)·x̂ + decay·x` — the
/// exact `axpby` expression, so every square path shares one semantics.
fn ema_fold_matrix(slot: &mut Option<Matrix>, fresh: Matrix, decay: f32) {
    match slot {
        Some(m) => m.axpby(1.0 - decay, &fresh, decay),
        None => *slot = Some(fresh),
    }
}

/// The packed-space twin of [`ema_fold_matrix`]: identical first-fold and
/// decay semantics, applied elementwise to the packed layout. Because the
/// EMA is elementwise and square/packed layouts hold bit-equal elements,
/// folding here then unpacking is bitwise identical to unpacking then
/// folding in square space.
fn ema_fold_packed(slot: &mut Option<PackedFactor>, fresh: &[f32], triangular: bool, decay: f32) {
    match slot {
        Some(p) => {
            debug_assert_eq!(p.triangular, triangular, "packed layout changed mid-run");
            debug_assert_eq!(p.data.len(), fresh.len());
            for (x, f) in p.data.iter_mut().zip(fresh) {
                *x = (1.0 - decay) * *f + decay * *x;
            }
        }
        None => *slot = Some(PackedFactor { data: fresh.to_vec(), triangular }),
    }
}

/// Running Kronecker-factor state and decomposition caches for one layer.
///
/// Which fields are populated on a given rank depends on the distribution
/// plan: under the dense path, factors `A`/`G` live on every rank (they are
/// allreduced); under sharded reduction (`KfacConfig::sharded_factors`),
/// only on the rank that eigendecomposes them. The eigendecomposition
/// caches live only on that layer's gradient workers — this is exactly the
/// memory/communication knob Figure 6 of the paper measures.
#[derive(Debug, Clone)]
pub struct KfacLayerState {
    /// Layer name (diagnostics).
    pub name: String,
    /// `A` factor dimension.
    pub a_dim: usize,
    /// `G` factor dimension.
    pub g_dim: usize,
    /// Running average of `A = E[a aᵀ]` in square form (dense path; `None`
    /// everywhere on the shard-resident path).
    pub factor_a: Option<Matrix>,
    /// Running average of `G = E[g gᵀ]` in square form (dense path).
    pub factor_g: Option<Matrix>,
    /// Shard-resident running average of `A`, kept in the packed wire
    /// layout on the layer's A-eigendecomposition worker only.
    pub packed_a: Option<PackedFactor>,
    /// Shard-resident running average of `G`, on the G-worker only.
    pub packed_g: Option<PackedFactor>,
    /// Eigenvectors of `A` (columns), cached on gradient workers.
    pub qa: Option<Matrix>,
    /// Eigenvectors of `G` (columns), cached on gradient workers.
    pub qg: Option<Matrix>,
    /// Precomputed `1/(v_G v_Aᵀ + γ)` (Section 4.4), on gradient workers.
    pub outer: Option<Matrix>,
    /// Eigenvalues of `A` (only kept when the outer product is *not*
    /// precomputed, for the Section 4.4 ablation).
    pub va: Option<Vec<f32>>,
    /// Eigenvalues of `G` (ablation path).
    pub vg: Option<Vec<f32>>,
    /// Damped inverse of `A` (the Eq. 12–14 fallback when `use_eigen` is
    /// off).
    pub inv_a: Option<Matrix>,
    /// Damped inverse of `G` (fallback path).
    pub inv_g: Option<Matrix>,
    /// EK-FAC corrected second moments in the Kronecker eigenbasis
    /// (`g_dim x a_dim`), i.e. running `E[(Q_Gᵀ ∇L Q_A)²]` — the cheap
    /// per-step "partial update" of George et al. that the paper's Related
    /// Work proposes running under KAISA's distribution framework.
    pub ekfac_scale: Option<Matrix>,
}

impl KfacLayerState {
    /// Fresh state for a layer with the given factor dimensions.
    pub fn new(name: impl Into<String>, a_dim: usize, g_dim: usize) -> Self {
        KfacLayerState {
            name: name.into(),
            a_dim,
            g_dim,
            factor_a: None,
            factor_g: None,
            packed_a: None,
            packed_g: None,
            qa: None,
            qg: None,
            outer: None,
            va: None,
            vg: None,
            inv_a: None,
            inv_g: None,
            ekfac_scale: None,
        }
    }

    /// Fold freshly-averaged batch factors into the running averages:
    /// `A ← decay·A + (1-decay)·Â` (first update sets `A = Â`).
    pub fn update_factors(&mut self, a_new: Matrix, g_new: Matrix, decay: f32) {
        self.update_factor_a(a_new, decay);
        self.update_factor_g(g_new, decay);
    }

    /// Fold only the `A` running average (sharded reduction: each factor is
    /// folded on its owning eigendecomposition worker alone). Shares its
    /// first-fold/decay semantics with [`KfacLayerState::update_factors`]
    /// through the single `ema_fold_matrix` kernel.
    pub fn update_factor_a(&mut self, a_new: Matrix, decay: f32) {
        debug_assert_eq!(a_new.shape(), (self.a_dim, self.a_dim));
        ema_fold_matrix(&mut self.factor_a, a_new, decay);
    }

    /// Fold only the `G` running average.
    pub fn update_factor_g(&mut self, g_new: Matrix, decay: f32) {
        debug_assert_eq!(g_new.shape(), (self.g_dim, self.g_dim));
        ema_fold_matrix(&mut self.factor_g, g_new, decay);
    }

    /// Fold a freshly-averaged packed `A` section straight into the
    /// shard-resident running average — decay applied in packed space, no
    /// square matrix materialized.
    pub fn update_packed_a(&mut self, section: &[f32], triangular: bool, decay: f32) {
        debug_assert_eq!(section.len(), packed_factor_len(self.a_dim, triangular));
        ema_fold_packed(&mut self.packed_a, section, triangular, decay);
    }

    /// Fold a freshly-averaged packed `G` section into the shard-resident
    /// running average.
    pub fn update_packed_g(&mut self, section: &[f32], triangular: bool, decay: f32) {
        debug_assert_eq!(section.len(), packed_factor_len(self.g_dim, triangular));
        ema_fold_packed(&mut self.packed_g, section, triangular, decay);
    }

    /// Materialize the square running `A` factor: a clone of the dense
    /// matrix when held square, otherwise a transient unpacking of the
    /// shard-resident state.
    ///
    /// # Panics
    /// If no factor has been accumulated yet.
    pub fn square_factor_a(&self) -> Matrix {
        match (&self.factor_a, &self.packed_a) {
            (Some(a), _) => a.clone(),
            (None, Some(p)) => p.to_matrix(self.a_dim),
            (None, None) => panic!("A factor not yet accumulated"),
        }
    }

    /// Materialize the square running `G` factor.
    pub fn square_factor_g(&self) -> Matrix {
        match (&self.factor_g, &self.packed_g) {
            (Some(g), _) => g.clone(),
            (None, Some(p)) => p.to_matrix(self.g_dim),
            (None, None) => panic!("G factor not yet accumulated"),
        }
    }

    /// Eigendecompose the running `A` factor; returns `(Q_A, v_A)`. On the
    /// shard-resident path the square input is materialized transiently
    /// here and dropped with the call.
    ///
    /// # Panics
    /// If no factor has been accumulated yet.
    pub fn eig_a(&self) -> (Matrix, Vec<f32>) {
        let eig = match (&self.factor_a, &self.packed_a) {
            (Some(a), _) => sym_eig(a),
            (None, Some(p)) => sym_eig(&p.to_matrix(self.a_dim)),
            (None, None) => panic!("A factor not yet accumulated"),
        };
        let eig = eig.expect("A factor eigendecomposition failed");
        (eig.vectors, eig.values)
    }

    /// Eigendecompose the running `G` factor; returns `(Q_G, v_G)`.
    pub fn eig_g(&self) -> (Matrix, Vec<f32>) {
        let eig = match (&self.factor_g, &self.packed_g) {
            (Some(g), _) => sym_eig(g),
            (None, Some(p)) => sym_eig(&p.to_matrix(self.g_dim)),
            (None, None) => panic!("G factor not yet accumulated"),
        };
        let eig = eig.expect("G factor eigendecomposition failed");
        (eig.vectors, eig.values)
    }

    /// Compute the damped eigenvalue reciprocal outer product
    /// `1/(v_G v_Aᵀ + γ)` of Eq. 16.
    pub fn compute_outer(vg: &[f32], va: &[f32], damping: f32) -> Matrix {
        let mut outer = Matrix::outer(vg, va);
        outer.map_inplace(|x| 1.0 / (x.max(0.0) + damping));
        outer
    }

    /// Compute the damped direct inverses `(A+γI)⁻¹`, `(G+γI)⁻¹` of Eq. 12
    /// (the non-eigendecomposition fallback).
    pub fn compute_inverses(&mut self, damping: f32) {
        let mut a = self.square_factor_a();
        a.add_diag(damping);
        let mut g = self.square_factor_g();
        g.add_diag(damping);
        self.inv_a = Some(spd_inverse(&a).expect("damped A must be SPD"));
        self.inv_g = Some(spd_inverse(&g).expect("damped G must be SPD"));
    }

    /// Precondition a combined gradient (`g_dim x a_dim`) through the cached
    /// eigendecompositions (Eq. 15–17). Requires `qa`, `qg`, and either the
    /// precomputed `outer` or both eigenvalue vectors plus `damping`.
    pub fn precondition_eigen(&self, grad: &Matrix, damping: f32) -> Matrix {
        let qa = self.qa.as_ref().expect("Q_A not cached on this rank");
        let qg = self.qg.as_ref().expect("Q_G not cached on this rank");
        let v1 = qg.matmul_tn(grad).matmul(qa);
        let mut v2 = v1;
        match &self.outer {
            Some(outer) => v2.hadamard_assign(outer),
            None => {
                let va = self.va.as_ref().expect("v_A not cached (ablation path)");
                let vg = self.vg.as_ref().expect("v_G not cached (ablation path)");
                let outer = Self::compute_outer(vg, va, damping);
                v2.hadamard_assign(&outer);
            }
        }
        qg.matmul(&v2).matmul_nt(qa)
    }

    /// EK-FAC preconditioning (George et al., NeurIPS 2018): project into
    /// the Kronecker eigenbasis, update the running *corrected* second
    /// moments `S ← decay·S + (1-decay)·V₁²`, and rescale by `1/(S + γ)`
    /// instead of the K-FAC eigenvalue outer product. The eigenbases still
    /// come from the (infrequent) factor eigendecompositions; only the cheap
    /// diagonal scaling refreshes every step.
    ///
    /// Seeded from the K-FAC outer product when no corrected moments exist
    /// yet, so the first EK-FAC step after an eigendecomposition update
    /// coincides with plain K-FAC.
    pub fn precondition_ekfac(&mut self, grad: &Matrix, damping: f32, decay: f32) -> Matrix {
        let qa = self.qa.as_ref().expect("Q_A not cached on this rank");
        let qg = self.qg.as_ref().expect("Q_G not cached on this rank");
        let v1 = qg.matmul_tn(grad).matmul(qa);

        // Update the corrected second moments from this step's projection.
        let mut sq = v1.clone();
        sq.hadamard_assign(&v1);
        match self.ekfac_scale.as_mut() {
            Some(s) => s.axpby(1.0 - decay, &sq, decay),
            None => {
                // Seed with K-FAC's eigenvalue outer product (the prior the
                // corrected moments refine): recover it from `outer`, which
                // stores 1/(v_G v_Aᵀ + γ).
                let seed = match &self.outer {
                    Some(outer) => {
                        let mut s = outer.map(|x| 1.0 / x - damping);
                        s.map_inplace(|x| x.max(0.0));
                        s
                    }
                    None => sq,
                };
                self.ekfac_scale = Some(seed);
            }
        }
        let scale = self.ekfac_scale.as_ref().expect("just initialized");
        let mut v2 = v1;
        for (v, s) in v2.as_mut_slice().iter_mut().zip(scale.as_slice()) {
            *v /= s.max(0.0) + damping;
        }
        qg.matmul(&v2).matmul_nt(qa)
    }

    /// Precondition through the damped direct inverses (Eq. 14 fallback).
    pub fn precondition_inverse(&self, grad: &Matrix) -> Matrix {
        let inv_a = self.inv_a.as_ref().expect("A inverse not cached");
        let inv_g = self.inv_g.as_ref().expect("G inverse not cached");
        inv_g.matmul(grad).matmul(inv_a)
    }

    /// Bytes of running factor state held on this rank at the given storage
    /// precision: square matrices on the dense path, packed shard sections
    /// on the shard-resident path.
    pub fn factor_memory_bytes(&self, precision: Precision) -> usize {
        let b = precision.bytes_per_element();
        let mat = |m: &Option<Matrix>| m.as_ref().map_or(0, |m| m.numel() * b);
        let packed = |p: &Option<PackedFactor>| p.as_ref().map_or(0, |p| p.data.len() * b);
        mat(&self.factor_a) + mat(&self.factor_g) + packed(&self.packed_a) + packed(&self.packed_g)
    }

    /// Bytes of cached decomposition state (eigenvectors, outer product,
    /// direct inverses, eigenvalue vectors, EK-FAC corrected moments).
    pub fn eigen_memory_bytes(&self, precision: Precision) -> usize {
        let b = precision.bytes_per_element();
        let mat = |m: &Option<Matrix>| m.as_ref().map_or(0, |m| m.numel() * b);
        let vec = |v: &Option<Vec<f32>>| v.as_ref().map_or(0, |v| v.len() * b);
        mat(&self.qa)
            + mat(&self.qg)
            + mat(&self.outer)
            + mat(&self.inv_a)
            + mat(&self.inv_g)
            + mat(&self.ekfac_scale)
            + vec(&self.va)
            + vec(&self.vg)
    }

    /// Bytes of K-FAC state held on this rank at the given storage
    /// precision — the quantity summed into the paper's "K-FAC memory
    /// overhead" (Table 5 / Figure 6).
    pub fn memory_bytes(&self, precision: Precision) -> usize {
        self.factor_memory_bytes(precision) + self.eigen_memory_bytes(precision)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kaisa_tensor::Rng;

    fn random_psd(n: usize, rng: &mut Rng) -> Matrix {
        let a = Matrix::randn(n, n, 1.0, rng);
        let mut s = a.matmul_tn(&a);
        s.scale(1.0 / n as f32);
        s
    }

    #[test]
    fn running_average_first_then_decay() {
        let mut state = KfacLayerState::new("l", 2, 2);
        let a1 = Matrix::identity(2);
        let g1 = Matrix::identity(2).scaled(2.0);
        state.update_factors(a1.clone(), g1.clone(), 0.9);
        assert_eq!(state.factor_a.as_ref().unwrap(), &a1, "first update is a copy");
        let a2 = Matrix::identity(2).scaled(3.0);
        state.update_factors(a2, g1.clone(), 0.9);
        // 0.9*1 + 0.1*3 = 1.2 on the diagonal.
        assert!((state.factor_a.as_ref().unwrap().get(0, 0) - 1.2).abs() < 1e-6);
    }

    #[test]
    fn first_fold_semantics_unified_across_paths() {
        // update_factors, the single-factor updates, and the packed updates
        // all route through one EMA kernel: the first fold is a plain
        // move-in, later folds apply (1-decay)·fresh + decay·old. All three
        // paths must agree bitwise, fold for fold.
        let mut rng = Rng::seed_from_u64(208);
        let decay = 0.95;
        let folds: Vec<(Matrix, Matrix)> =
            (0..3).map(|_| (random_psd(4, &mut rng), random_psd(3, &mut rng))).collect();

        let mut joint = KfacLayerState::new("joint", 4, 3);
        let mut single = KfacLayerState::new("single", 4, 3);
        let mut packed = KfacLayerState::new("packed", 4, 3);
        for (a, g) in &folds {
            joint.update_factors(a.clone(), g.clone(), decay);
            single.update_factor_a(a.clone(), decay);
            single.update_factor_g(g.clone(), decay);
            packed.update_packed_a(a.as_slice(), false, decay);
            packed.update_packed_g(g.as_slice(), false, decay);
            assert_eq!(
                joint.factor_a.as_ref().unwrap().as_slice(),
                single.factor_a.as_ref().unwrap().as_slice()
            );
            assert_eq!(
                joint.factor_g.as_ref().unwrap().as_slice(),
                single.factor_g.as_ref().unwrap().as_slice()
            );
            assert_eq!(
                joint.factor_a.as_ref().unwrap().as_slice(),
                packed.square_factor_a().as_slice()
            );
            assert_eq!(
                joint.factor_g.as_ref().unwrap().as_slice(),
                packed.square_factor_g().as_slice()
            );
        }
    }

    #[test]
    fn packed_triangular_fold_matches_square_fold_bitwise() {
        // Folding in the triangular packed layout then unpacking must equal
        // unpacking then folding in square space, bit for bit: the EMA is
        // elementwise and unpack mirrors bit-equal elements.
        let mut rng = Rng::seed_from_u64(209);
        let decay = 0.9;
        let mut square = KfacLayerState::new("sq", 5, 5);
        let mut packed = KfacLayerState::new("pk", 5, 5);
        for _ in 0..4 {
            let fresh = random_psd(5, &mut rng);
            let tri = pack_upper(&fresh);
            square.update_factor_a(unpack_upper(&tri, 5), decay);
            packed.update_packed_a(&tri, true, decay);
            assert_eq!(
                square.factor_a.as_ref().unwrap().as_slice(),
                packed.square_factor_a().as_slice()
            );
        }
        // The decomposition consumes identical inputs, so identical outputs.
        let (q_sq, v_sq) = square.eig_a();
        let (q_pk, v_pk) = packed.eig_a();
        assert_eq!(q_sq.as_slice(), q_pk.as_slice());
        assert_eq!(v_sq, v_pk);
    }

    #[test]
    fn scaled_pack_matches_scale_then_pack() {
        let mut rng = Rng::seed_from_u64(210);
        let a = random_psd(5, &mut rng);
        let g = random_psd(3, &mut rng);
        let scale = 1.0 / 3.0f32;
        for triangular in [false, true] {
            for precision in [Precision::Fp32, Precision::Fp16] {
                let mut a_scaled = a.clone();
                a_scaled.scale(scale);
                let mut g_scaled = g.clone();
                g_scaled.scale(scale);
                let (reference, ref_split) =
                    pack_factor_payload(&a_scaled, &g_scaled, triangular, precision);
                let mut fused = Vec::new();
                let split = pack_factor_payload_scaled_into(
                    &mut fused, &a, &g, scale, triangular, precision,
                );
                assert_eq!(split, ref_split, "tri={triangular} prec={precision:?}");
                assert_eq!(fused, reference, "tri={triangular} prec={precision:?}");
            }
        }
    }

    #[test]
    fn memory_split_separates_factors_from_eigens() {
        let mut rng = Rng::seed_from_u64(214);
        let mut state = KfacLayerState::new("split", 6, 4);
        state.update_packed_a(&pack_upper(&random_psd(6, &mut rng)), true, 0.95);
        assert_eq!(state.factor_memory_bytes(Precision::Fp32), packed_len(6) * 4);
        assert_eq!(state.eigen_memory_bytes(Precision::Fp32), 0);
        let (qa, _) = state.eig_a();
        state.qa = Some(qa);
        assert_eq!(state.eigen_memory_bytes(Precision::Fp32), 36 * 4);
        assert_eq!(
            state.memory_bytes(Precision::Fp32),
            state.factor_memory_bytes(Precision::Fp32) + state.eigen_memory_bytes(Precision::Fp32)
        );
    }

    /// Kronecker product (row-major convention): `(B ⊗ C) vec_row(X) =
    /// vec_row(B X Cᵀ)`.
    fn kron(b: &Matrix, c: &Matrix) -> Matrix {
        let (bm, bn) = b.shape();
        let (cm, cn) = c.shape();
        Matrix::from_fn(bm * cm, bn * cn, |r, col| {
            b.get(r / cm, col / cn) * c.get(r % cm, col % cn)
        })
    }

    #[test]
    fn eigen_precondition_is_exact_damped_kronecker_inverse() {
        // Eq. 15–17 computes (Â⊗Ĝ + γI)⁻¹ ∇L *exactly*. Verify against the
        // explicit Kronecker matrix: with grad flattened row-major (g_dim
        // rows of a_dim), the operator G·grad·A corresponds to kron(G, A).
        let mut rng = Rng::seed_from_u64(201);
        let damping = 0.01;
        let (a_dim, g_dim) = (4, 3);
        let mut state = KfacLayerState::new("eq", a_dim, g_dim);
        let a = random_psd(a_dim, &mut rng);
        let g = random_psd(g_dim, &mut rng);
        state.update_factors(a.clone(), g.clone(), 0.0);

        let (qa, va) = state.eig_a();
        let (qg, vg) = state.eig_g();
        state.outer = Some(KfacLayerState::compute_outer(&vg, &va, damping));
        state.qa = Some(qa);
        state.qg = Some(qg);

        let grad = Matrix::randn(g_dim, a_dim, 1.0, &mut rng);
        let via_eigen = state.precondition_eigen(&grad, damping);

        // Explicit: (kron(G, A) + γI)⁻¹ vec_row(grad).
        let mut k = kron(&g, &a);
        k.add_diag(damping);
        let k_inv = kaisa_linalg::lu_inverse(&k).expect("damped Kronecker is invertible");
        let flat = Matrix::from_vec(g_dim * a_dim, 1, grad.as_slice().to_vec());
        let expect_flat = k_inv.matmul(&flat);
        let expect = Matrix::from_vec(g_dim, a_dim, expect_flat.into_vec());

        assert!(
            via_eigen.max_abs_diff(&expect) < 1e-3,
            "eigen method deviates from exact damped inverse by {}",
            via_eigen.max_abs_diff(&expect)
        );
    }

    #[test]
    fn inverse_fallback_approximates_eigen_at_small_damping() {
        // (A+γI)⁻¹⊗(G+γI)⁻¹ (Eq. 12) differs from (Â⊗Ĝ+γI)⁻¹ (Eq. 15–17)
        // by O(γ) cross terms; at small damping they must agree closely.
        let mut rng = Rng::seed_from_u64(204);
        let damping = 1e-4;
        let mut state = KfacLayerState::new("approx", 5, 4);
        let mut a = random_psd(5, &mut rng);
        a.add_diag(0.5); // keep well-conditioned so γ is truly small
        let mut g = random_psd(4, &mut rng);
        g.add_diag(0.5);
        state.update_factors(a, g, 0.0);
        let (qa, va) = state.eig_a();
        let (qg, vg) = state.eig_g();
        state.outer = Some(KfacLayerState::compute_outer(&vg, &va, damping));
        state.qa = Some(qa);
        state.qg = Some(qg);
        state.compute_inverses(damping);

        let grad = Matrix::randn(4, 5, 1.0, &mut rng);
        let via_eigen = state.precondition_eigen(&grad, damping);
        let via_inverse = state.precondition_inverse(&grad);
        let rel = via_eigen.max_abs_diff(&via_inverse) / via_eigen.max_abs().max(1e-9);
        assert!(rel < 0.01, "methods differ by {rel} relative at tiny damping");
    }

    #[test]
    fn ablation_path_matches_precomputed_outer() {
        let mut rng = Rng::seed_from_u64(202);
        let damping = 0.003;
        let mut state = KfacLayerState::new("ab", 5, 5);
        state.update_factors(random_psd(5, &mut rng), random_psd(5, &mut rng), 0.0);
        let (qa, va) = state.eig_a();
        let (qg, vg) = state.eig_g();
        state.qa = Some(qa);
        state.qg = Some(qg);

        let grad = Matrix::randn(5, 5, 1.0, &mut rng);
        // Path 1: precomputed outer.
        state.outer = Some(KfacLayerState::compute_outer(&vg, &va, damping));
        let fast = state.precondition_eigen(&grad, damping);
        // Path 2: recompute from eigenvalues.
        state.outer = None;
        state.va = Some(va);
        state.vg = Some(vg);
        let slow = state.precondition_eigen(&grad, damping);
        assert!(fast.max_abs_diff(&slow) < 1e-6);
    }

    #[test]
    fn preconditioning_shrinks_high_curvature_directions() {
        // With A = diag(100, 1) and G = I, the preconditioner must shrink
        // the first column of the gradient ~100x more than the second.
        let mut state = KfacLayerState::new("hc", 2, 2);
        let mut a = Matrix::zeros(2, 2);
        a.set(0, 0, 100.0);
        a.set(1, 1, 1.0);
        state.update_factors(a, Matrix::identity(2), 0.0);
        let (qa, va) = state.eig_a();
        let (qg, vg) = state.eig_g();
        state.outer = Some(KfacLayerState::compute_outer(&vg, &va, 0.001));
        state.qa = Some(qa);
        state.qg = Some(qg);
        let grad = Matrix::full(2, 2, 1.0);
        let p = state.precondition_eigen(&grad, 0.001);
        let ratio = p.get(0, 1) / p.get(0, 0);
        assert!(ratio > 50.0, "curvature scaling ratio {ratio}");
    }

    #[test]
    fn memory_accounting_tracks_population() {
        let mut rng = Rng::seed_from_u64(203);
        let mut state = KfacLayerState::new("mem", 8, 4);
        assert_eq!(state.memory_bytes(Precision::Fp32), 0);
        state.update_factors(random_psd(8, &mut rng), random_psd(4, &mut rng), 0.0);
        let factors_only = state.memory_bytes(Precision::Fp32);
        assert_eq!(factors_only, (64 + 16) * 4);
        let (qa, va) = state.eig_a();
        let (qg, vg) = state.eig_g();
        state.qa = Some(qa);
        state.qg = Some(qg);
        state.outer = Some(KfacLayerState::compute_outer(&vg, &va, 0.003));
        let with_eig = state.memory_bytes(Precision::Fp32);
        assert_eq!(with_eig, factors_only + (64 + 16 + 32) * 4);
        // Half precision halves it.
        assert_eq!(state.memory_bytes(Precision::Fp16), with_eig / 2);
    }

    #[test]
    fn ekfac_first_step_matches_kfac_then_adapts() {
        // With the scale seeded from the K-FAC outer product, the first
        // EK-FAC step equals plain K-FAC; subsequent steps incorporate the
        // corrected moments and diverge.
        let mut rng = Rng::seed_from_u64(205);
        let damping = 0.003;
        let mut state = KfacLayerState::new("ek", 5, 4);
        state.update_factors(random_psd(5, &mut rng), random_psd(4, &mut rng), 0.0);
        let (qa, va) = state.eig_a();
        let (qg, vg) = state.eig_g();
        state.outer = Some(KfacLayerState::compute_outer(&vg, &va, damping));
        state.qa = Some(qa);
        state.qg = Some(qg);

        let grad = Matrix::randn(4, 5, 1.0, &mut rng);
        let kfac = state.precondition_eigen(&grad, damping);
        let ek1 = state.precondition_ekfac(&grad, damping, 0.95);
        assert!(
            ek1.max_abs_diff(&kfac) < 1e-5,
            "seeded EK-FAC must match K-FAC: {}",
            ek1.max_abs_diff(&kfac)
        );
        // Feed several steps of a different gradient: the corrected moments
        // shift and the output departs from plain K-FAC.
        let grad2 = Matrix::randn(4, 5, 3.0, &mut rng);
        let mut last = Matrix::zeros(4, 5);
        for _ in 0..10 {
            last = state.precondition_ekfac(&grad2, damping, 0.5);
        }
        let kfac2 = state.precondition_eigen(&grad2, damping);
        assert!(
            last.max_abs_diff(&kfac2) > 1e-4,
            "corrected moments should change the preconditioner"
        );
        assert!(last.is_finite());
    }

    #[test]
    fn ekfac_scale_converges_to_squared_projection() {
        // Repeating one gradient drives S -> V1 squared, so the
        // preconditioned projection approaches V1 / (V1 squared + damping).
        let mut rng = Rng::seed_from_u64(206);
        let damping = 0.01;
        let mut state = KfacLayerState::new("fix", 3, 3);
        state.update_factors(random_psd(3, &mut rng), random_psd(3, &mut rng), 0.0);
        let (qa, va) = state.eig_a();
        let (qg, vg) = state.eig_g();
        state.outer = Some(KfacLayerState::compute_outer(&vg, &va, damping));
        state.qa = Some(qa.clone());
        state.qg = Some(qg.clone());
        let grad = Matrix::randn(3, 3, 1.0, &mut rng);
        for _ in 0..200 {
            let _ = state.precondition_ekfac(&grad, damping, 0.9);
        }
        let v1 = qg.matmul_tn(&grad).matmul(&qa);
        let scale = state.ekfac_scale.as_ref().unwrap();
        for (s, v) in scale.as_slice().iter().zip(v1.as_slice()) {
            assert!((s - v * v).abs() < 0.05 * (v * v).max(0.05), "s={s} v2={}", v * v);
        }
    }

    #[test]
    fn factor_payload_roundtrip_both_layouts() {
        let mut rng = Rng::seed_from_u64(207);
        let a = random_psd(5, &mut rng);
        let g = random_psd(3, &mut rng);
        for triangular in [false, true] {
            let (mut buf, split) = pack_factor_payload(&a, &g, triangular, Precision::Fp32);
            assert_eq!(buf.len(), factor_payload_len(5, 3, triangular));
            let (a2, g2) =
                unpack_factor_payload(&mut buf, split, 5, 3, triangular, Precision::Fp32);
            assert_eq!(a.as_slice(), a2.as_slice(), "triangular={triangular}");
            assert_eq!(g.as_slice(), g2.as_slice(), "triangular={triangular}");
        }
        // Half precision rounds the payload.
        let (buf16, _) = pack_factor_payload(&a, &g, false, Precision::Fp16);
        let mut expect = a.as_slice().to_vec();
        expect.extend_from_slice(g.as_slice());
        quantize_slice(&mut expect, Precision::Fp16);
        assert_eq!(buf16, expect);
    }

    #[test]
    fn damping_bounds_preconditioned_magnitude() {
        // Even a singular factor must produce finite output: the damped
        // denominator is ≥ γ.
        let mut state = KfacLayerState::new("sing", 3, 3);
        let v = [1.0f32, 1.0, 1.0];
        state.update_factors(Matrix::outer(&v, &v), Matrix::outer(&v, &v), 0.0);
        let (qa, va) = state.eig_a();
        let (qg, vg) = state.eig_g();
        state.qa = Some(qa);
        state.qg = Some(qg);
        state.outer = Some(KfacLayerState::compute_outer(&vg, &va, 0.003));
        let grad = Matrix::full(3, 3, 1.0);
        let p = state.precondition_eigen(&grad, 0.003);
        assert!(p.is_finite());
        assert!(p.max_abs() <= 1.0 / 0.003 * grad.max_abs() * 9.0);
    }
}
