//! Stage-level timing of `Kfac::step()` — the instrumentation behind the
//! paper's Figure 7 breakdown.

use std::time::Instant;

/// The stages of `KFAC.step()` in the order Figure 7 reports them.
pub const KFAC_STAGES: [&str; 7] = [
    "compute factors",
    "communicate factors",
    "compute eigendecomp",
    "communicate eigendecomp",
    "precondition gradient",
    "communicate gradient",
    "scale and update grads",
];

/// Accumulated wall seconds per stage, plus step counts for averaging.
///
/// Besides the aggregate per-stage totals, seconds reported through
/// [`StageTimes::add_layer`] / [`StageTimes::time_layer`] are also
/// attributed to a `(layer, stage)` cell, giving Figure 7 a per-layer
/// breakdown — which is exactly the granularity of the stage pipeline's
/// task units.
#[derive(Debug, Clone, Default)]
pub struct StageTimes {
    seconds: [f64; 7],
    /// Per-layer `(layer, stage)` seconds; grown on first use.
    per_layer: Vec<[f64; 7]>,
    /// Total `step()` calls timed.
    pub steps: u64,
}

/// Stage indices (match [`KFAC_STAGES`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Stage {
    /// Factor averaging / statistics finalization.
    FactorCompute = 0,
    /// Factor allreduce.
    FactorComm = 1,
    /// Eigendecomposition (or inverse) computation.
    EigCompute = 2,
    /// Eigendecomposition broadcasts.
    EigComm = 3,
    /// Local gradient preconditioning.
    Precondition = 4,
    /// Preconditioned-gradient broadcasts.
    GradComm = 5,
    /// KL-clip scaling and writing gradients back.
    Scale = 6,
}

impl StageTimes {
    /// Fresh zeroed timer set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add `seconds` to one stage.
    pub fn add(&mut self, stage: Stage, seconds: f64) {
        self.seconds[stage as usize] += seconds;
    }

    /// Time a closure into a stage, returning its value.
    pub fn time<T>(&mut self, stage: Stage, f: impl FnOnce() -> T) -> T {
        let start = Instant::now();
        let out = f();
        self.add(stage, start.elapsed().as_secs_f64());
        out
    }

    /// Add `seconds` to one `(layer, stage)` cell *and* the aggregate stage.
    pub fn add_layer(&mut self, layer: usize, stage: Stage, seconds: f64) {
        if self.per_layer.len() <= layer {
            self.per_layer.resize(layer + 1, [0.0; 7]);
        }
        self.per_layer[layer][stage as usize] += seconds;
        self.seconds[stage as usize] += seconds;
    }

    /// Time a closure into a `(layer, stage)` cell, returning its value.
    pub fn time_layer<T>(&mut self, layer: usize, stage: Stage, f: impl FnOnce() -> T) -> T {
        let start = Instant::now();
        let out = f();
        self.add_layer(layer, stage, start.elapsed().as_secs_f64());
        out
    }

    /// Number of layers that have received per-layer time.
    pub fn layers(&self) -> usize {
        self.per_layer.len()
    }

    /// Total seconds in one `(layer, stage)` cell (0 for untimed layers).
    pub fn layer_total(&self, layer: usize, stage: Stage) -> f64 {
        self.per_layer.get(layer).map_or(0.0, |row| row[stage as usize])
    }

    /// Average seconds per step for each stage of one layer.
    pub fn layer_averages(&self, layer: usize) -> [f64; 7] {
        let n = self.steps.max(1) as f64;
        let mut out = self.per_layer.get(layer).copied().unwrap_or([0.0; 7]);
        for v in out.iter_mut() {
            *v /= n;
        }
        out
    }

    /// Total seconds in a stage.
    pub fn total(&self, stage: Stage) -> f64 {
        self.seconds[stage as usize]
    }

    /// Average seconds per step for each stage (Figure 7 series).
    pub fn averages(&self) -> [f64; 7] {
        let n = self.steps.max(1) as f64;
        let mut out = self.seconds;
        for v in out.iter_mut() {
            *v /= n;
        }
        out
    }

    /// Total seconds across all stages.
    pub fn total_seconds(&self) -> f64 {
        self.seconds.iter().sum()
    }

    /// Render a one-line-per-stage report.
    pub fn report(&self) -> String {
        let avgs = self.averages();
        let mut out = String::new();
        for (name, avg) in KFAC_STAGES.iter().zip(avgs) {
            out.push_str(&format!("{name:<26} {:>10.3} ms/step\n", avg * 1e3));
        }
        out
    }

    /// Render a per-layer breakdown: one row per layer, one column per
    /// stage, in ms/step.
    pub fn layer_report(&self) -> String {
        let mut out = String::new();
        out.push_str("layer");
        for name in KFAC_STAGES {
            out.push_str(&format!("  {name}"));
        }
        out.push('\n');
        for layer in 0..self.per_layer.len() {
            let avgs = self.layer_averages(layer);
            out.push_str(&format!("{layer:<5}"));
            for (name, avg) in KFAC_STAGES.iter().zip(avgs) {
                out.push_str(&format!("  {:>width$.3}", avg * 1e3, width = name.len()));
            }
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accumulates_and_averages() {
        let mut t = StageTimes::new();
        t.add(Stage::Precondition, 0.5);
        t.add(Stage::Precondition, 0.5);
        t.add(Stage::GradComm, 0.25);
        t.steps = 4;
        assert_eq!(t.total(Stage::Precondition), 1.0);
        let avgs = t.averages();
        assert!((avgs[Stage::Precondition as usize] - 0.25).abs() < 1e-12);
        assert!((avgs[Stage::GradComm as usize] - 0.0625).abs() < 1e-12);
        assert!((t.total_seconds() - 1.25).abs() < 1e-12);
    }

    #[test]
    fn time_closure_returns_value() {
        let mut t = StageTimes::new();
        let v = t.time(Stage::EigCompute, || 42);
        assert_eq!(v, 42);
        assert!(t.total(Stage::EigCompute) >= 0.0);
    }

    #[test]
    fn report_mentions_every_stage() {
        let t = StageTimes::new();
        let r = t.report();
        for name in KFAC_STAGES {
            assert!(r.contains(name));
        }
    }

    #[test]
    fn per_layer_cells_feed_the_aggregate() {
        let mut t = StageTimes::new();
        t.add_layer(2, Stage::FactorComm, 0.25);
        t.add_layer(0, Stage::FactorComm, 0.5);
        t.add_layer(0, Stage::EigCompute, 1.0);
        assert_eq!(t.layers(), 3);
        assert_eq!(t.layer_total(0, Stage::FactorComm), 0.5);
        assert_eq!(t.layer_total(2, Stage::FactorComm), 0.25);
        assert_eq!(t.layer_total(1, Stage::FactorComm), 0.0);
        assert_eq!(t.layer_total(9, Stage::FactorComm), 0.0);
        // Aggregate view sees the sum over layers.
        assert_eq!(t.total(Stage::FactorComm), 0.75);
        assert_eq!(t.total(Stage::EigCompute), 1.0);
        t.steps = 2;
        let avgs = t.layer_averages(0);
        assert!((avgs[Stage::FactorComm as usize] - 0.25).abs() < 1e-12);
        assert!(t.layer_report().contains("compute factors"));
    }
}
