//! Stage-level timing of `Kfac::step()` — the instrumentation behind the
//! paper's Figure 7 breakdown.

use std::time::Instant;

/// The stages of `KFAC.step()` in the order Figure 7 reports them.
pub const KFAC_STAGES: [&str; 7] = [
    "compute factors",
    "communicate factors",
    "compute eigendecomp",
    "communicate eigendecomp",
    "precondition gradient",
    "communicate gradient",
    "scale and update grads",
];

/// Accumulated wall seconds per stage, plus step counts for averaging.
#[derive(Debug, Clone, Default)]
pub struct StageTimes {
    seconds: [f64; 7],
    /// Total `step()` calls timed.
    pub steps: u64,
}

/// Stage indices (match [`KFAC_STAGES`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Stage {
    /// Factor averaging / statistics finalization.
    FactorCompute = 0,
    /// Factor allreduce.
    FactorComm = 1,
    /// Eigendecomposition (or inverse) computation.
    EigCompute = 2,
    /// Eigendecomposition broadcasts.
    EigComm = 3,
    /// Local gradient preconditioning.
    Precondition = 4,
    /// Preconditioned-gradient broadcasts.
    GradComm = 5,
    /// KL-clip scaling and writing gradients back.
    Scale = 6,
}

impl StageTimes {
    /// Fresh zeroed timer set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add `seconds` to one stage.
    pub fn add(&mut self, stage: Stage, seconds: f64) {
        self.seconds[stage as usize] += seconds;
    }

    /// Time a closure into a stage, returning its value.
    pub fn time<T>(&mut self, stage: Stage, f: impl FnOnce() -> T) -> T {
        let start = Instant::now();
        let out = f();
        self.add(stage, start.elapsed().as_secs_f64());
        out
    }

    /// Total seconds in a stage.
    pub fn total(&self, stage: Stage) -> f64 {
        self.seconds[stage as usize]
    }

    /// Average seconds per step for each stage (Figure 7 series).
    pub fn averages(&self) -> [f64; 7] {
        let n = self.steps.max(1) as f64;
        let mut out = self.seconds;
        for v in out.iter_mut() {
            *v /= n;
        }
        out
    }

    /// Total seconds across all stages.
    pub fn total_seconds(&self) -> f64 {
        self.seconds.iter().sum()
    }

    /// Render a one-line-per-stage report.
    pub fn report(&self) -> String {
        let avgs = self.averages();
        let mut out = String::new();
        for (name, avg) in KFAC_STAGES.iter().zip(avgs) {
            out.push_str(&format!("{name:<26} {:>10.3} ms/step\n", avg * 1e3));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accumulates_and_averages() {
        let mut t = StageTimes::new();
        t.add(Stage::Precondition, 0.5);
        t.add(Stage::Precondition, 0.5);
        t.add(Stage::GradComm, 0.25);
        t.steps = 4;
        assert_eq!(t.total(Stage::Precondition), 1.0);
        let avgs = t.averages();
        assert!((avgs[Stage::Precondition as usize] - 0.25).abs() < 1e-12);
        assert!((avgs[Stage::GradComm as usize] - 0.0625).abs() < 1e-12);
        assert!((t.total_seconds() - 1.25).abs() < 1e-12);
    }

    #[test]
    fn time_closure_returns_value() {
        let mut t = StageTimes::new();
        let v = t.time(Stage::EigCompute, || 42);
        assert_eq!(v, 42);
        assert!(t.total(Stage::EigCompute) >= 0.0);
    }

    #[test]
    fn report_mentions_every_stage() {
        let t = StageTimes::new();
        let r = t.report();
        for name in KFAC_STAGES {
            assert!(r.contains(name));
        }
    }
}
