//! The live pipelined executor: layer sweeps over non-blocking collectives.
//!
//! Each phase of `Kfac::step` becomes two or three *sweeps* over the layers.
//! An early sweep runs a layer's local compute and immediately `begin`s the
//! collective that publishes its result; a later sweep `complete`s the
//! handles in the same layer order and consumes the payloads. Because every
//! `begin` of a sweep is issued before any `complete` of the next sweep, all
//! of a phase's collectives are in flight while the remaining layers'
//! compute runs — communication/computation overlap without threads or an
//! async runtime.
//!
//! Two invariants make this safe and bit-exact:
//!
//! - **Matching**: every rank iterates layers in the same order within each
//!   sweep, so each communication group observes the same collective
//!   sequence on all of its members (the MPI matching rule ThreadComm's
//!   rendezvous requires). Begins never block, and completes only wait on
//!   begins, so no deadlock is possible.
//! - **Bitwise equality**: both executors share the stage kernels in
//!   `crate::state`, quantize at identical points, and the allreduce
//!   reduction itself is rank-order deterministic — so reordering
//!   initiation/completion cannot change a single bit of the result.

use kaisa_comm::{CommTag, Communicator, PendingCollective, ReduceOp};
use kaisa_tensor::Matrix;

use crate::preconditioner::{factor_shards, reassemble_gathered_payload, Kfac};
use crate::state::{
    factor_payload_len, pack_factor_payload, pack_factor_payload_scaled_into,
    unpack_factor_payload, KfacLayerState,
};
use crate::timing::Stage;

/// A matrix broadcast in flight: the handle plus the destination buffer.
pub(crate) struct MatBcast {
    pending: PendingCollective,
    m: Matrix,
}

impl MatBcast {
    /// The in-flight handle, for readiness polling by the task runtime.
    pub(crate) fn pending(&self) -> &PendingCollective {
        &self.pending
    }
}

/// All result broadcasts a layer has in flight between sweeps 2 and 3 of
/// the eigendecomposition phase (shared with the task runtime, whose
/// eig-broadcast begin/complete tasks carry the same in-flight set).
#[derive(Default)]
pub(crate) struct LayerBcasts {
    pub(crate) qa: Option<MatBcast>,
    pub(crate) qg: Option<MatBcast>,
    pub(crate) outer: Option<MatBcast>,
    pub(crate) inv_a: Option<MatBcast>,
    pub(crate) inv_g: Option<MatBcast>,
    pub(crate) va_buf: Option<(PendingCollective, Vec<f32>)>,
    pub(crate) vg_buf: Option<(PendingCollective, Vec<f32>)>,
}

impl Kfac {
    /// Pipelined factor update: sweep A finalizes statistics and begins
    /// every layer's allreduce; sweep B completes them and folds the
    /// averages into the running factors.
    pub(crate) fn update_factors_pipelined(
        &mut self,
        layers: &mut [&mut dyn kaisa_nn::KfacAble],
        comm: &dyn Communicator,
    ) {
        let precision = self.cfg.precision;
        let decay = self.cfg.factor_decay;
        let triangular = self.cfg.triangular_comm;
        let world_group: Vec<usize> = (0..self.world).collect();
        let order = self.sweep_order.clone();

        struct InFlight {
            layer: usize,
            pending: PendingCollective,
            buf: Vec<f32>,
            split: usize,
        }
        let mut inflight: Vec<InFlight> = Vec::with_capacity(layers.len());

        for &i in &order {
            let layer = &mut layers[i];
            let stats = layer.capture_mut().take_stats().unwrap_or_else(|| {
                panic!(
                    "layer {}: no captured statistics — call Kfac::prepare() before the forward pass",
                    layer.layer_name()
                )
            });
            let (a_new, g_new) = self.times.time_layer(i, Stage::FactorCompute, || {
                let inv = 1.0 / stats.batches.max(1) as f32;
                let mut a = stats.a_stat;
                a.scale(inv);
                let mut g = stats.g_stat;
                g.scale(inv);
                (a, g)
            });
            let entry = self.times.time_layer(i, Stage::FactorComm, || {
                let (buf, split) = pack_factor_payload(&a_new, &g_new, triangular, precision);
                let pending =
                    comm.begin_allreduce(&buf, ReduceOp::Avg, &world_group, CommTag::FactorComm);
                InFlight { layer: i, pending, buf, split }
            });
            inflight.push(entry);
        }

        for mut fl in inflight {
            let i = fl.layer;
            let (a_dim, g_dim) = (self.states[i].a_dim, self.states[i].g_dim);
            let (a_new, g_new) = self.times.time_layer(i, Stage::FactorComm, || {
                comm.complete(fl.pending, &mut fl.buf);
                unpack_factor_payload(&mut fl.buf, fl.split, a_dim, g_dim, triangular, precision)
            });
            self.comm_bytes += (factor_payload_len(a_dim, g_dim, triangular)
                * precision.bytes_per_element()) as u64;
            self.times.time_layer(i, Stage::FactorCompute, || {
                self.states[i].update_factors(a_new, g_new, decay);
            });
        }
        self.note_factor_residency();
    }

    /// Pipelined *sharded* factor update: sweep A scales-and-packs each
    /// layer's statistics into its packed staging buffer and begins the
    /// reduce-scatter (the `A` section toward the layer's
    /// A-eigendecomposition worker, the `G` section toward its G-worker);
    /// sweep B completes the shards, folds the gather-free layers in packed
    /// space, and begins the direct-inverse fallback's worker-group
    /// regathers; sweep C completes those and folds on the A workers.
    pub(crate) fn update_factors_sharded_pipelined(
        &mut self,
        layers: &mut [&mut dyn kaisa_nn::KfacAble],
        comm: &dyn Communicator,
    ) {
        let precision = self.cfg.precision;
        let triangular = self.cfg.triangular_comm;
        let rank = self.rank;
        let world_group: Vec<usize> = (0..self.world).collect();
        let order = self.sweep_order.clone();

        struct InFlight {
            layer: usize,
            pending: PendingCollective,
            split: usize,
            total: usize,
        }
        let mut inflight: Vec<InFlight> = Vec::with_capacity(layers.len());

        for &i in &order {
            let layer = &mut layers[i];
            let stats = layer.capture_mut().take_stats().unwrap_or_else(|| {
                panic!(
                    "layer {}: no captured statistics — call Kfac::prepare() before the forward pass",
                    layer.layer_name()
                )
            });
            let mut staging = self.staging.take(0, i);
            let split = self.times.time_layer(i, Stage::FactorCompute, || {
                let inv = 1.0 / stats.batches.max(1) as f32;
                pack_factor_payload_scaled_into(
                    &mut staging,
                    &stats.a_stat,
                    &stats.g_stat,
                    inv,
                    triangular,
                    precision,
                )
            });
            let total = staging.len();
            let asn = self.plan.layers[i].clone();
            let entry = self.times.time_layer(i, Stage::FactorComm, || {
                let shards = factor_shards(&asn, split, total);
                let pending = comm.begin_reduce_scatter(
                    &staging,
                    ReduceOp::Avg,
                    &world_group,
                    &shards,
                    CommTag::FactorReduce,
                );
                InFlight { layer: i, pending, split, total }
            });
            // The begin copies the payload; the staging buffer is free for
            // the next factor step the moment the collective is in flight.
            self.staging.put(0, i, staging);
            inflight.push(entry);
        }

        struct GatherInFlight {
            layer: usize,
            pending: PendingCollective,
            owned_len: usize,
            split: usize,
            total: usize,
        }
        let mut gathers: Vec<GatherInFlight> = Vec::new();

        for fl in inflight {
            let i = fl.layer;
            let asn = self.plan.layers[i].clone();
            let owned_len: usize = factor_shards(&asn, fl.split, fl.total)
                .iter()
                .filter(|s| s.owner == rank)
                .map(|s| s.len)
                .sum();
            let mut owned = vec![0.0f32; owned_len];
            self.times.time_layer(i, Stage::FactorComm, || comm.complete(fl.pending, &mut owned));
            self.comm_bytes += (owned_len * precision.bytes_per_element()) as u64;
            if self.needs_factor_gather(&asn) {
                let group = asn.eig_worker_group();
                if group.contains(&rank) {
                    let pending = self.times.time_layer(i, Stage::FactorComm, || {
                        comm.begin_allgather(&owned, &group, CommTag::FactorGather)
                    });
                    gathers.push(GatherInFlight {
                        layer: i,
                        pending,
                        owned_len,
                        split: fl.split,
                        total: fl.total,
                    });
                }
            } else {
                self.fold_owned_sections(i, owned, fl.split, fl.total);
            }
        }

        for g in gathers {
            let i = g.layer;
            let asn = self.plan.layers[i].clone();
            let mut gathered = vec![0.0f32; g.total];
            self.times.time_layer(i, Stage::FactorComm, || comm.complete(g.pending, &mut gathered));
            self.comm_bytes += ((g.total - g.owned_len) * precision.bytes_per_element()) as u64;
            let payload = reassemble_gathered_payload(&asn, &gathered, g.split);
            self.fold_gathered_payload(i, payload, g.split);
        }
    }

    /// Pipelined decomposition update: sweep 1 runs the LPT-assigned
    /// eigensolves and begins the `v_A` pair shuttles; sweep 2 completes the
    /// shuttles, computes the outer products, and begins every result
    /// broadcast; sweep 3 completes them into the layer states.
    pub(crate) fn update_decompositions_pipelined(&mut self, comm: &dyn Communicator) {
        let rank = self.rank;
        let damping = self.cfg.damping;
        let precision = self.cfg.precision;
        let precompute = self.cfg.precompute_outer;
        let use_eigen = self.cfg.use_eigen;
        let n = self.states.len();
        let order = self.sweep_order.clone();

        let mut va: Vec<Option<Vec<f32>>> = vec![None; n];
        let mut vg: Vec<Option<Vec<f32>>> = vec![None; n];
        let mut va_pending: Vec<Option<(PendingCollective, Vec<f32>)>> =
            (0..n).map(|_| None).collect();
        // Batch every dense-resident eigensolve this rank owns before the
        // sweeps (bitwise identical to the inline calls; per-layer timing
        // attributed inside). Shard-resident factors stay inline.
        let mut prepass = self.eig_prepass();

        // Sweep 1: local eigensolves (or inverses); begin v_A pair shuttles.
        for &i in &order {
            let asn = self.plan.layers[i].clone();
            // EK-FAC corrected moments live in the eigenbasis; a new basis
            // invalidates them (they re-seed from the fresh outer product).
            if self.cfg.ekfac {
                self.states[i].ekfac_scale = None;
            }
            self.note_decomposition_transients(i);
            if !use_eigen {
                if rank == asn.a_worker {
                    self.times.time_layer(i, Stage::EigCompute, || {
                        self.states[i].compute_inverses(damping);
                    });
                }
                continue;
            }
            if rank == asn.a_worker {
                let (qa, values) = match prepass[i].0.take() {
                    Some(solved) => solved,
                    None => self.times.time_layer(i, Stage::EigCompute, || self.states[i].eig_a()),
                };
                self.states[i].qa = Some(qa);
                va[i] = Some(values);
            }
            if rank == asn.g_worker {
                let (qg, values) = match prepass[i].1.take() {
                    Some(solved) => solved,
                    None => self.times.time_layer(i, Stage::EigCompute, || self.states[i].eig_g()),
                };
                self.states[i].qg = Some(qg);
                vg[i] = Some(values);
            }
            if precompute
                && asn.a_worker != asn.g_worker
                && (rank == asn.a_worker || rank == asn.g_worker)
            {
                let a_dim = self.states[i].a_dim;
                let pair = [asn.a_worker, asn.g_worker];
                let buf = va[i].clone().unwrap_or_else(|| vec![0.0; a_dim]);
                let pending = self.times.time_layer(i, Stage::EigComm, || {
                    comm.begin_broadcast(&buf, asn.a_worker, &pair, CommTag::EigComm)
                });
                if rank == asn.a_worker {
                    self.comm_bytes += (a_dim * precision.bytes_per_element()) as u64;
                }
                va_pending[i] = Some((pending, buf));
            }
        }

        // Sweep 2: finish shuttles, outer products; begin result broadcasts.
        let mut bcasts: Vec<LayerBcasts> = (0..n).map(|_| LayerBcasts::default()).collect();
        for &i in &order {
            let asn = self.plan.layers[i].clone();
            let is_gw = asn.is_gradient_worker(rank);
            let (a_dim, g_dim) = (self.states[i].a_dim, self.states[i].g_dim);

            if use_eigen && precompute {
                if let Some((pending, mut buf)) = va_pending[i].take() {
                    self.times.time_layer(i, Stage::EigComm, || comm.complete(pending, &mut buf));
                    if rank == asn.g_worker {
                        va[i] = Some(buf);
                    }
                }
                if rank == asn.g_worker {
                    let outer = self.times.time_layer(i, Stage::EigCompute, || {
                        KfacLayerState::compute_outer(
                            vg[i].as_ref().expect("G worker has v_G"),
                            va[i].as_ref().expect("G worker received v_A"),
                            damping,
                        )
                    });
                    self.states[i].outer = Some(outer);
                }
            }

            if !use_eigen {
                if is_gw && asn.gradient_workers.len() > 1 {
                    let local = self.states[i].inv_a.take();
                    bcasts[i].inv_a = Some(self.begin_matrix_bcast(
                        i,
                        comm,
                        local,
                        a_dim,
                        a_dim,
                        asn.a_worker,
                        &asn.gradient_workers,
                    ));
                    let local = self.states[i].inv_g.take();
                    bcasts[i].inv_g = Some(self.begin_matrix_bcast(
                        i,
                        comm,
                        local,
                        g_dim,
                        g_dim,
                        asn.a_worker,
                        &asn.gradient_workers,
                    ));
                }
                continue;
            }

            if is_gw && asn.gradient_workers.len() > 1 {
                let local = self.states[i].qa.take();
                bcasts[i].qa = Some(self.begin_matrix_bcast(
                    i,
                    comm,
                    local,
                    a_dim,
                    a_dim,
                    asn.a_worker,
                    &asn.gradient_workers,
                ));
                let local = self.states[i].qg.take();
                bcasts[i].qg = Some(self.begin_matrix_bcast(
                    i,
                    comm,
                    local,
                    g_dim,
                    g_dim,
                    asn.g_worker,
                    &asn.gradient_workers,
                ));
                if precompute {
                    let local = self.states[i].outer.take();
                    bcasts[i].outer = Some(self.begin_matrix_bcast(
                        i,
                        comm,
                        local,
                        g_dim,
                        a_dim,
                        asn.g_worker,
                        &asn.gradient_workers,
                    ));
                } else {
                    // Ablation: ship raw eigenvalues; every worker recomputes
                    // the outer product at every preconditioning step.
                    let va_b = va[i].take().unwrap_or_else(|| vec![0.0; a_dim]);
                    let vg_b = vg[i].take().unwrap_or_else(|| vec![0.0; g_dim]);
                    let pending_a = self.times.time_layer(i, Stage::EigComm, || {
                        comm.begin_broadcast(
                            &va_b,
                            asn.a_worker,
                            &asn.gradient_workers,
                            CommTag::EigComm,
                        )
                    });
                    let pending_g = self.times.time_layer(i, Stage::EigComm, || {
                        comm.begin_broadcast(
                            &vg_b,
                            asn.g_worker,
                            &asn.gradient_workers,
                            CommTag::EigComm,
                        )
                    });
                    let receivers = (asn.gradient_workers.len() - 1) as u64;
                    if rank == asn.a_worker {
                        self.comm_bytes +=
                            (a_dim * precision.bytes_per_element()) as u64 * receivers;
                    }
                    if rank == asn.g_worker {
                        self.comm_bytes +=
                            (g_dim * precision.bytes_per_element()) as u64 * receivers;
                    }
                    bcasts[i].va_buf = Some((pending_a, va_b));
                    bcasts[i].vg_buf = Some((pending_g, vg_b));
                }
            } else if is_gw && !precompute {
                // Single gradient worker: keep local values (no broadcast).
                if let Some(values) = va[i].take() {
                    self.states[i].va = Some(values);
                }
                if let Some(values) = vg[i].take() {
                    self.states[i].vg = Some(values);
                }
            }
        }

        // Sweep 3: complete every result broadcast into the layer state.
        for &i in &order {
            let b = std::mem::take(&mut bcasts[i]);
            if let Some(mb) = b.inv_a {
                let m = self.complete_matrix_bcast(i, comm, mb);
                self.states[i].inv_a = Some(m);
            }
            if let Some(mb) = b.inv_g {
                let m = self.complete_matrix_bcast(i, comm, mb);
                self.states[i].inv_g = Some(m);
            }
            if let Some(mb) = b.qa {
                let m = self.complete_matrix_bcast(i, comm, mb);
                self.states[i].qa = Some(m);
            }
            if let Some(mb) = b.qg {
                let m = self.complete_matrix_bcast(i, comm, mb);
                self.states[i].qg = Some(m);
            }
            if let Some(mb) = b.outer {
                let m = self.complete_matrix_bcast(i, comm, mb);
                self.states[i].outer = Some(m);
            }
            if let Some((pending, mut buf)) = b.va_buf {
                self.times.time_layer(i, Stage::EigComm, || comm.complete(pending, &mut buf));
                self.states[i].va = Some(buf);
            }
            if let Some((pending, mut buf)) = b.vg_buf {
                self.times.time_layer(i, Stage::EigComm, || comm.complete(pending, &mut buf));
                self.states[i].vg = Some(buf);
            }
        }
    }

    /// Pipelined preconditioning: sweep 1 preconditions each layer and
    /// begins its gradient broadcast; sweep 2 completes them; then the
    /// (inherently serial) KL-clip scale writes everything back.
    pub(crate) fn precondition_and_scale_pipelined(
        &mut self,
        layers: &mut [&mut dyn kaisa_nn::KfacAble],
        comm: &dyn Communicator,
        lr: f32,
    ) {
        let rank = self.rank;
        let precision = self.cfg.precision;
        let grads: Vec<Matrix> = layers.iter().map(|l| l.combined_grad()).collect();
        let n = grads.len();
        let order = self.sweep_order.clone();

        let mut pending: Vec<Option<PendingCollective>> = (0..n).map(|_| None).collect();
        let mut preconditioned: Vec<Option<Matrix>> = (0..n).map(|_| None).collect();

        for &i in &order {
            let grad = &grads[i];
            let asn = self.plan.layers[i].clone();
            let is_gw = asn.is_gradient_worker(rank);
            let mut precond = self.precondition_local(i, grad, is_gw);
            if let Some(group) = asn.bcast_group_of(rank) {
                let root = group[0];
                if rank == root {
                    precond.quantize(precision);
                    self.comm_bytes += (precond.numel()
                        * precision.bytes_per_element()
                        * (group.len() - 1)) as u64;
                }
                pending[i] = Some(self.times.time_layer(i, Stage::GradComm, || {
                    comm.begin_broadcast(precond.as_slice(), root, group, CommTag::GradComm)
                }));
            }
            preconditioned[i] = Some(precond);
        }

        for &i in &order {
            if let Some(p) = pending[i].take() {
                let buf = preconditioned[i].as_mut().expect("filled in sweep 1").as_mut_slice();
                self.times.time_layer(i, Stage::GradComm, || comm.complete(p, buf));
            }
        }

        // The KL-clip scale consumes layers in fixed order on every config,
        // so ν — and therefore the update — is bitwise order-independent.
        let preconditioned: Vec<Matrix> =
            preconditioned.into_iter().map(|p| p.expect("every layer preconditioned")).collect();
        self.scale_and_write_back(layers, &grads, preconditioned, lr);
    }

    /// Begin a matrix broadcast within `group` from `root`: quantize on the
    /// root, attribute its logical bytes, and return the in-flight handle.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn begin_matrix_bcast(
        &mut self,
        layer: usize,
        comm: &dyn Communicator,
        local: Option<Matrix>,
        rows: usize,
        cols: usize,
        root: usize,
        group: &[usize],
    ) -> MatBcast {
        let precision = self.cfg.precision;
        let mut m = local.unwrap_or_else(|| Matrix::zeros(rows, cols));
        debug_assert_eq!(m.shape(), (rows, cols));
        if self.rank == root {
            m.quantize(precision);
        }
        let pending = self.times.time_layer(layer, Stage::EigComm, || {
            comm.begin_broadcast(m.as_slice(), root, group, CommTag::EigComm)
        });
        if self.rank == root {
            self.comm_bytes +=
                (rows * cols * precision.bytes_per_element() * (group.len() - 1)) as u64;
        }
        MatBcast { pending, m }
    }

    /// Complete a matrix broadcast begun by [`Kfac::begin_matrix_bcast`].
    pub(crate) fn complete_matrix_bcast(
        &mut self,
        layer: usize,
        comm: &dyn Communicator,
        mb: MatBcast,
    ) -> Matrix {
        let MatBcast { pending, mut m } = mb;
        let buf = m.as_mut_slice();
        self.times.time_layer(layer, Stage::EigComm, || comm.complete(pending, buf));
        m
    }
}
