//! The per-layer stage pipeline behind [`crate::Kfac::step`].
//!
//! The serial K-FAC step walks every layer through its stages in strict
//! order, blocking at each collective. But the stages of *different layers*
//! are largely independent: layer `i`'s factor allreduce can be in flight
//! while layer `i+1` finalizes its statistics, and the eigendecomposition
//! broadcasts of one layer can overlap another layer's eigensolve. This
//! module makes that structure explicit:
//!
//! - [`stage`] — the stage vocabulary: each `(layer x stage)` unit of work,
//!   its dependency on the previous stage, its timing bucket, and the
//!   [`kaisa_comm::CommTag`] its traffic is attributed to.
//! - [`task`] — the task-graph cost model: `(layer x stage)` nodes with
//!   declared dependencies and α–β durations, schedulable either serialized
//!   (the serial executor) or list-scheduled over per-rank compute plus a
//!   shared network (the pipelined executor). This is the analytic form of
//!   the overlap claim, testable without wall clocks.
//! - [`executor`] — the live pipelined executor: layer sweeps that *begin*
//!   every collective of a phase (non-blocking
//!   [`kaisa_comm::Communicator::begin_allreduce`] /
//!   [`kaisa_comm::Communicator::begin_broadcast`] handles), run the local
//!   compute of later layers, and *complete* the handles only when their
//!   results are consumed.
//!
//! Both executors share the same stage kernels (`crate::state`) and issue
//! bit-identical collectives in the same per-group order, so their outputs
//! are bitwise equal — `tests/pipeline_equivalence.rs` property-tests this
//! across strategies, world sizes, precisions, and comm layouts.

pub mod executor;
pub mod stage;
pub mod task;

pub use stage::PipelineStage;
pub use task::{
    priority_sweep_order, ComputeRates, Resource, StepModel, StepModelOptions, Task, TaskGraph,
};
