//! The `(layer x stage)` task graph and its α–β schedule model.
//!
//! Every unit of work in one K-FAC update step — each layer's factor
//! finalize/fold, its factor allreduce, the LPT-assigned eigensolves, the
//! eigendecomposition broadcasts, the per-gradient-worker preconditioning,
//! the gradient broadcasts, and the final scale — becomes a [`Task`] with
//! explicit dependencies, a resource (one rank's compute, or the shared
//! network), and a duration from the same α–β [`CollectiveCostModel`] the
//! simulator uses.
//!
//! Scheduling the same graph two ways quantifies the pipeline's win without
//! touching a wall clock:
//!
//! - [`StepModel::serial_seconds`] — the serial executor's lock-step walk:
//!   every layer completes a stage (compute **plus** its collective) before
//!   the next layer starts it.
//! - [`StepModel::pipelined_seconds`] — list scheduling in the pipelined
//!   executor's issue order: compute serializes per rank, collectives
//!   serialize on the network, but compute and communication of different
//!   layers overlap freely subject to dependencies.

use kaisa_comm::CollectiveCostModel;

use crate::assignment::WorkPlan;
use crate::pipeline::stage::PipelineStage;
use crate::state::factor_payload_len;

/// What a task occupies while it runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Resource {
    /// One rank's compute stream.
    Compute(usize),
    /// The shared interconnect (collectives serialize here).
    Network,
}

/// One schedulable `(layer x stage)` unit.
#[derive(Debug, Clone)]
pub struct Task {
    /// Layer index.
    pub layer: usize,
    /// Which stage of the pipeline this task belongs to.
    pub stage: PipelineStage,
    /// Resource the task runs on.
    pub resource: Resource,
    /// Modeled duration, seconds.
    pub duration: f64,
    /// Indices of tasks that must finish first.
    pub deps: Vec<usize>,
}

/// A dependency graph of [`Task`]s in executor issue order.
#[derive(Debug, Clone, Default)]
pub struct TaskGraph {
    tasks: Vec<Task>,
}

impl TaskGraph {
    /// Empty graph.
    pub fn new() -> Self {
        TaskGraph::default()
    }

    /// Append a task, returning its index for use in later `deps`.
    pub fn push(&mut self, task: Task) -> usize {
        debug_assert!(task.deps.iter().all(|&d| d < self.tasks.len()), "deps must precede");
        self.tasks.push(task);
        self.tasks.len() - 1
    }

    /// All tasks in issue order.
    pub fn tasks(&self) -> &[Task] {
        &self.tasks
    }

    /// Sum of durations per stage (diagnostics).
    pub fn stage_total(&self, stage: PipelineStage) -> f64 {
        self.tasks.iter().filter(|t| t.stage == stage).map(|t| t.duration).sum()
    }

    /// List-schedule makespan: walk tasks in issue order; each starts at
    /// `max(resource free, deps finished)`. `world` sizes the compute
    /// resource table.
    pub fn list_schedule_makespan(&self, world: usize) -> f64 {
        let mut compute_free = vec![0.0f64; world];
        let mut network_free = 0.0f64;
        let mut finish = Vec::with_capacity(self.tasks.len());
        let mut makespan = 0.0f64;
        for task in &self.tasks {
            let deps_done = task.deps.iter().map(|&d| finish[d]).fold(0.0f64, f64::max);
            let free = match task.resource {
                Resource::Compute(r) => compute_free[r],
                Resource::Network => network_free,
            };
            let end = deps_done.max(free) + task.duration;
            match task.resource {
                Resource::Compute(r) => compute_free[r] = end,
                Resource::Network => network_free = end,
            }
            makespan = makespan.max(end);
            finish.push(end);
        }
        makespan
    }

    /// Dependency-only critical path (infinite resources) — a lower bound on
    /// any schedule.
    pub fn critical_path(&self) -> f64 {
        let mut finish = Vec::with_capacity(self.tasks.len());
        let mut longest = 0.0f64;
        for task in &self.tasks {
            let deps_done = task.deps.iter().map(|&d| finish[d]).fold(0.0f64, f64::max);
            let end = deps_done + task.duration;
            longest = longest.max(end);
            finish.push(end);
        }
        longest
    }
}

/// Peak throughputs used to convert flop counts to durations.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ComputeRates {
    /// Effective GEMM/elementwise throughput, flop/s.
    pub gemm_flops: f64,
    /// Effective symmetric-eigensolve throughput, flop/s (far below GEMM
    /// peak — the solver is iterative and bandwidth-bound).
    pub eig_flops: f64,
}

impl Default for ComputeRates {
    fn default() -> Self {
        // V100-class ballpark, matching the simulator's device table.
        ComputeRates { gemm_flops: 10e12, eig_flops: 0.4e12 }
    }
}

/// The modeled cost of one full K-FAC update step (factor + eig +
/// precondition + scale) under a given placement plan and network.
#[derive(Debug, Clone)]
pub struct StepModel {
    graph: TaskGraph,
    serial: f64,
    world: usize,
}

impl StepModel {
    /// Build the model for layers of factor dims `dims = [(a, g); n]` under
    /// `plan`, an α–β network `cost`, compute `rates`, factor element width
    /// `elem_bytes` (2 for fp16 factors), and the triangular-packing flag.
    pub fn new(
        dims: &[(usize, usize)],
        plan: &WorkPlan,
        cost: &CollectiveCostModel,
        rates: &ComputeRates,
        elem_bytes: usize,
        triangular: bool,
    ) -> Self {
        assert_eq!(dims.len(), plan.layers.len(), "plan must cover every layer");
        let world = plan.world;
        let mut graph = TaskGraph::new();
        let mut serial = 0.0f64;

        let n = dims.len();
        let fa_fin: Vec<f64> =
            dims.iter().map(|&(a, g)| 2.0 * (a * a + g * g) as f64 / rates.gemm_flops).collect();
        let fa_fold = fa_fin.clone(); // axpby over both factors: same element count
        let ar: Vec<f64> = dims
            .iter()
            .map(|&(a, g)| cost.allreduce(factor_payload_len(a, g, triangular) * elem_bytes, world))
            .collect();
        let eig_a: Vec<f64> =
            dims.iter().map(|&(a, _)| 9.0 * (a as f64).powi(3) / rates.eig_flops).collect();
        let eig_g: Vec<f64> =
            dims.iter().map(|&(_, g)| 9.0 * (g as f64).powi(3) / rates.eig_flops).collect();
        let outer: Vec<f64> =
            dims.iter().map(|&(a, g)| (a * g) as f64 / rates.gemm_flops).collect();
        let prec: Vec<f64> = dims
            .iter()
            .map(|&(a, g)| (4 * a * g * (a + g) + a * g) as f64 / rates.gemm_flops)
            .collect();
        let scale: Vec<f64> =
            dims.iter().map(|&(a, g)| 3.0 * (a * g) as f64 / rates.gemm_flops).collect();

        // -------- Factor phase --------
        // Sweep A: finalize on every rank, then post the allreduce.
        let mut fin_ids = vec![Vec::new(); n];
        let mut ar_ids = Vec::with_capacity(n);
        for i in 0..n {
            for r in 0..world {
                let id = graph.push(Task {
                    layer: i,
                    stage: PipelineStage::FactorAccumulate,
                    resource: Resource::Compute(r),
                    duration: fa_fin[i],
                    deps: Vec::new(),
                });
                fin_ids[i].push(id);
            }
            ar_ids.push(graph.push(Task {
                layer: i,
                stage: PipelineStage::FactorAllreduce,
                resource: Resource::Network,
                duration: ar[i],
                deps: fin_ids[i].clone(),
            }));
        }
        // Sweep B: fold the averaged factors on every rank.
        let mut fold_ids = vec![Vec::new(); n];
        for i in 0..n {
            for r in 0..world {
                let id = graph.push(Task {
                    layer: i,
                    stage: PipelineStage::FactorAccumulate,
                    resource: Resource::Compute(r),
                    duration: fa_fold[i],
                    deps: vec![ar_ids[i]],
                });
                fold_ids[i].push(id);
            }
        }

        // -------- Eigendecomposition phase --------
        let mut eig_done = Vec::with_capacity(n); // last task whose output feeds preconditioning
        for i in 0..n {
            let asn = &plan.layers[i];
            let a_id = graph.push(Task {
                layer: i,
                stage: PipelineStage::EigCompute,
                resource: Resource::Compute(asn.a_worker),
                duration: eig_a[i],
                deps: vec![fold_ids[i][asn.a_worker]],
            });
            let g_id = graph.push(Task {
                layer: i,
                stage: PipelineStage::EigCompute,
                resource: Resource::Compute(asn.g_worker),
                duration: eig_g[i],
                deps: vec![fold_ids[i][asn.g_worker]],
            });
            // v_A pair shuttle + outer product on the G worker.
            let mut outer_deps = vec![g_id];
            let mut pair_cost = 0.0;
            if asn.a_worker != asn.g_worker {
                pair_cost = cost.broadcast(dims[i].0 * elem_bytes, 2);
                outer_deps.push(graph.push(Task {
                    layer: i,
                    stage: PipelineStage::EigBcast,
                    resource: Resource::Network,
                    duration: pair_cost,
                    deps: vec![a_id],
                }));
            }
            let outer_id = graph.push(Task {
                layer: i,
                stage: PipelineStage::EigCompute,
                resource: Resource::Compute(asn.g_worker),
                duration: outer[i],
                deps: outer_deps,
            });
            let gw = asn.gradient_workers.len();
            let bcast_cost = if gw > 1 {
                let (a, g) = dims[i];
                cost.broadcast((a * a + g * g + a * g) * elem_bytes, gw)
            } else {
                0.0
            };
            let done = if gw > 1 {
                graph.push(Task {
                    layer: i,
                    stage: PipelineStage::EigBcast,
                    resource: Resource::Network,
                    duration: bcast_cost,
                    deps: vec![a_id, g_id, outer_id],
                })
            } else {
                outer_id
            };
            eig_done.push(done);
            // Co-located workers serialize the two eigensolves; distinct
            // workers run them concurrently even in the serial executor.
            let eig_cost = if asn.a_worker == asn.g_worker {
                eig_a[i] + eig_g[i]
            } else {
                eig_a[i].max(eig_g[i])
            };
            serial += eig_cost + pair_cost + outer[i] + bcast_cost;
        }

        // -------- Precondition + gradient broadcast phase --------
        let mut gb_or_p = Vec::new();
        for i in 0..n {
            let asn = &plan.layers[i];
            let mut p_ids = Vec::new();
            for &r in &asn.gradient_workers {
                p_ids.push(graph.push(Task {
                    layer: i,
                    stage: PipelineStage::Precondition,
                    resource: Resource::Compute(r),
                    duration: prec[i],
                    deps: vec![eig_done[i]],
                }));
            }
            let largest = asn.bcast_groups.iter().map(|g| g.len()).max().unwrap_or(1);
            let gb_cost =
                if largest > 1 { cost.broadcast(dims[i].0 * dims[i].1 * 4, largest) } else { 0.0 };
            if largest > 1 {
                gb_or_p.push(graph.push(Task {
                    layer: i,
                    stage: PipelineStage::GradBcast,
                    resource: Resource::Network,
                    duration: gb_cost,
                    deps: p_ids,
                }));
            } else {
                gb_or_p.extend(p_ids);
            }
            serial += prec[i] + gb_cost;
        }

        // -------- Scale --------
        let scale_total: f64 = scale.iter().sum();
        for r in 0..world {
            graph.push(Task {
                layer: 0,
                stage: PipelineStage::ScaleUpdate,
                resource: Resource::Compute(r),
                duration: scale_total,
                deps: gb_or_p.clone(),
            });
        }

        // Serial lock-step: every layer's factor stages round-trip before the
        // next layer's begin (compute runs concurrently across ranks, but
        // stages never overlap collectives).
        for i in 0..n {
            serial += fa_fin[i] + ar[i] + fa_fold[i];
        }
        serial += scale_total;

        StepModel { graph, serial, world }
    }

    /// The underlying task graph.
    pub fn graph(&self) -> &TaskGraph {
        &self.graph
    }

    /// Modeled seconds for the serial executor's lock-step walk.
    pub fn serial_seconds(&self) -> f64 {
        self.serial
    }

    /// Modeled seconds for the pipelined executor (list-scheduled overlap).
    pub fn pipelined_seconds(&self) -> f64 {
        self.graph.list_schedule_makespan(self.world)
    }

    /// `serial / pipelined` — how much the overlap shortens the step.
    pub fn overlap_speedup(&self) -> f64 {
        self.serial_seconds() / self.pipelined_seconds().max(1e-18)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::assignment::plan_assignments;
    use crate::AssignmentStrategy;
    use kaisa_comm::{ClusterNetwork, CollectiveCostModel};

    fn dims() -> Vec<(usize, usize)> {
        vec![(144, 64), (576, 64), (576, 128), (1152, 128), (128, 10)]
    }

    fn model(world: usize, frac: f64, net: ClusterNetwork) -> StepModel {
        let d = dims();
        let plan = plan_assignments(&d, world, frac, AssignmentStrategy::ComputeLpt);
        StepModel::new(
            &d,
            &plan,
            &CollectiveCostModel::new(net),
            &ComputeRates::default(),
            4,
            false,
        )
    }

    #[test]
    fn single_rank_has_no_network_tasks_and_no_speedup() {
        let m = model(1, 1.0, ClusterNetwork::ethernet_10g());
        let net_time: f64 = m
            .graph()
            .tasks()
            .iter()
            .filter(|t| t.resource == Resource::Network)
            .map(|t| t.duration)
            .sum();
        assert_eq!(net_time, 0.0, "world=1 collectives are free");
        // With one compute resource and nothing to overlap, both schedules
        // degenerate to the same serialization.
        assert!((m.serial_seconds() - m.pipelined_seconds()).abs() < 1e-12);
    }

    #[test]
    fn pipelined_never_exceeds_serial() {
        for world in [2, 4, 8] {
            for frac in [1.0 / world as f64, 0.5, 1.0] {
                for net in [ClusterNetwork::infiniband_edr(), ClusterNetwork::ethernet_10g()] {
                    let m = model(world, frac, net);
                    assert!(
                        m.pipelined_seconds() <= m.serial_seconds() + 1e-15,
                        "world={world} frac={frac}: {} > {}",
                        m.pipelined_seconds(),
                        m.serial_seconds()
                    );
                }
            }
        }
    }

    #[test]
    fn critical_path_lower_bounds_the_schedule() {
        let m = model(8, 0.5, ClusterNetwork::ethernet_10g());
        assert!(m.graph().critical_path() <= m.pipelined_seconds() + 1e-15);
    }

    #[test]
    fn list_schedule_respects_dependencies_and_resources() {
        // Two independent 1s compute tasks on one rank serialize; on two
        // ranks they run concurrently.
        let mut g = TaskGraph::new();
        let t = |r: usize, deps: Vec<usize>| Task {
            layer: 0,
            stage: PipelineStage::EigCompute,
            resource: Resource::Compute(r),
            duration: 1.0,
            deps,
        };
        g.push(t(0, vec![]));
        g.push(t(0, vec![]));
        assert_eq!(g.list_schedule_makespan(1), 2.0);
        let mut g2 = TaskGraph::new();
        g2.push(t(0, vec![]));
        g2.push(t(1, vec![]));
        assert_eq!(g2.list_schedule_makespan(2), 1.0);
        // A dependency forces serialization even across ranks.
        let mut g3 = TaskGraph::new();
        let first = g3.push(t(0, vec![]));
        g3.push(t(1, vec![first]));
        assert_eq!(g3.list_schedule_makespan(2), 2.0);
        assert_eq!(g3.critical_path(), 2.0);
    }
}
