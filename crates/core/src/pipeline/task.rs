//! The `(layer x stage)` task graph and its α–β schedule model.
//!
//! Every unit of work in one K-FAC update step — each layer's factor
//! finalize/fold, its factor allreduce, the LPT-assigned eigensolves, the
//! eigendecomposition broadcasts, the per-gradient-worker preconditioning,
//! the gradient broadcasts, and the final scale — becomes a [`Task`] with
//! explicit dependencies, a resource (one rank's compute, or the shared
//! network), and a duration from the same α–β [`CollectiveCostModel`] the
//! simulator uses.
//!
//! Scheduling the same graph two ways quantifies the pipeline's win without
//! touching a wall clock:
//!
//! - [`StepModel::serial_seconds`] — the serial executor's lock-step walk:
//!   every layer completes a stage (compute **plus** its collective) before
//!   the next layer starts it.
//! - [`StepModel::pipelined_seconds`] — list scheduling in the pipelined
//!   executor's issue order: compute serializes per rank, collectives
//!   serialize on the network, but compute and communication of different
//!   layers overlap freely subject to dependencies.

use kaisa_comm::CollectiveCostModel;

use crate::assignment::WorkPlan;
use crate::pipeline::stage::PipelineStage;
use crate::state::factor_payload_len;
use crate::strategy::{FactorReduction, StrategyPlan};

/// What a task occupies while it runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Resource {
    /// One rank's compute stream.
    Compute(usize),
    /// The shared interconnect (collectives serialize here).
    Network,
}

/// One schedulable `(layer x stage)` unit.
#[derive(Debug, Clone)]
pub struct Task {
    /// Layer index.
    pub layer: usize,
    /// Which stage of the pipeline this task belongs to.
    pub stage: PipelineStage,
    /// Resource the task runs on.
    pub resource: Resource,
    /// Modeled duration, seconds.
    pub duration: f64,
    /// Indices of tasks that must finish first.
    pub deps: Vec<usize>,
}

/// A dependency graph of [`Task`]s in executor issue order.
#[derive(Debug, Clone, Default)]
pub struct TaskGraph {
    tasks: Vec<Task>,
}

impl TaskGraph {
    /// Empty graph.
    pub fn new() -> Self {
        TaskGraph::default()
    }

    /// Append a task, returning its index for use in later `deps`.
    pub fn push(&mut self, task: Task) -> usize {
        debug_assert!(task.deps.iter().all(|&d| d < self.tasks.len()), "deps must precede");
        self.tasks.push(task);
        self.tasks.len() - 1
    }

    /// All tasks in issue order.
    pub fn tasks(&self) -> &[Task] {
        &self.tasks
    }

    /// Sum of durations per stage (diagnostics).
    pub fn stage_total(&self, stage: PipelineStage) -> f64 {
        self.tasks.iter().filter(|t| t.stage == stage).map(|t| t.duration).sum()
    }

    /// List-schedule makespan: walk tasks in issue order; each starts at
    /// `max(resource free, deps finished)`. `world` sizes the compute
    /// resource table.
    pub fn list_schedule_makespan(&self, world: usize) -> f64 {
        let mut compute_free = vec![0.0f64; world];
        let mut network_free = 0.0f64;
        let mut finish = Vec::with_capacity(self.tasks.len());
        let mut makespan = 0.0f64;
        for task in &self.tasks {
            let deps_done = task.deps.iter().map(|&d| finish[d]).fold(0.0f64, f64::max);
            let free = match task.resource {
                Resource::Compute(r) => compute_free[r],
                Resource::Network => network_free,
            };
            let end = deps_done.max(free) + task.duration;
            match task.resource {
                Resource::Compute(r) => compute_free[r] = end,
                Resource::Network => network_free = end,
            }
            makespan = makespan.max(end);
            finish.push(end);
        }
        makespan
    }

    /// Ready-queue makespan: the task runtime's greedy dispatch. Instead of
    /// walking tasks in issue order (a parked task at the head of the line
    /// stalls everything behind it on the same resource), repeatedly run the
    /// dependency-satisfied task that can *start earliest* — ties break
    /// toward the lower issue index, mirroring the live scheduler's
    /// id-ordered ready scan. O(n²), fine at per-step task counts.
    pub fn ready_schedule_makespan(&self, world: usize) -> f64 {
        let mut compute_free = vec![0.0f64; world];
        let mut network_free = 0.0f64;
        let n = self.tasks.len();
        let mut finish = vec![0.0f64; n];
        let mut done = vec![false; n];
        let mut makespan = 0.0f64;
        for _ in 0..n {
            let mut pick: Option<(usize, f64)> = None;
            for (id, task) in self.tasks.iter().enumerate() {
                if done[id] || !task.deps.iter().all(|&d| done[d]) {
                    continue;
                }
                let deps_done = task.deps.iter().map(|&d| finish[d]).fold(0.0f64, f64::max);
                let free = match task.resource {
                    Resource::Compute(r) => compute_free[r],
                    Resource::Network => network_free,
                };
                let start = deps_done.max(free);
                if pick.map_or(true, |(_, s)| start < s) {
                    pick = Some((id, start));
                }
            }
            let (id, start) = pick.expect("graph is acyclic: some task is always ready");
            let end = start + self.tasks[id].duration;
            match self.tasks[id].resource {
                Resource::Compute(r) => compute_free[r] = end,
                Resource::Network => network_free = end,
            }
            finish[id] = end;
            done[id] = true;
            makespan = makespan.max(end);
        }
        makespan
    }

    /// Dependency-only critical path (infinite resources) — a lower bound on
    /// any schedule.
    pub fn critical_path(&self) -> f64 {
        let mut finish = Vec::with_capacity(self.tasks.len());
        let mut longest = 0.0f64;
        for task in &self.tasks {
            let deps_done = task.deps.iter().map(|&d| finish[d]).fold(0.0f64, f64::max);
            let end = deps_done + task.duration;
            longest = longest.max(end);
            finish.push(end);
        }
        longest
    }
}

/// Peak throughputs used to convert flop counts to durations.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ComputeRates {
    /// Effective GEMM/elementwise throughput, flop/s.
    pub gemm_flops: f64,
    /// Effective symmetric-eigensolve throughput, flop/s (far below GEMM
    /// peak — the solver is iterative and bandwidth-bound).
    pub eig_flops: f64,
}

impl Default for ComputeRates {
    fn default() -> Self {
        // V100-class ballpark, matching the simulator's device table.
        ComputeRates { gemm_flops: 10e12, eig_flops: 0.4e12 }
    }
}

/// Options for [`StepModel::with_options`] beyond the dense defaults.
#[derive(Debug, Clone, Copy)]
pub struct StepModelOptions<'a> {
    /// Factor element width in bytes (2 for fp16 factors).
    pub elem_bytes: usize,
    /// Triangular factor packing (Section 4.3).
    pub triangular: bool,
    /// Which factor-reduction mode to model: the dense world allreduce, the
    /// sharded reduce-scatter (folds run only on the owning
    /// eigendecomposition workers), or LOCAL-OPT's no-collective local fold
    /// (finalize and fold on the single owner, no network task at all).
    pub reduction: FactorReduction,
    /// With the sharded reduction, also model the `FactorGather` regather
    /// within each layer's eigendecomposition worker group — the
    /// direct-inverse fallback, whose solver consumes both factors on one
    /// rank.
    pub gather: bool,
    /// Issue layers within each phase in this order instead of `0..n`
    /// (the pipelined executor's priority schedule). Must be a permutation.
    pub order: Option<&'a [usize]>,
}

impl StepModelOptions<'_> {
    /// Dense-path options: world allreduce, fixed layer order.
    pub fn dense(elem_bytes: usize, triangular: bool) -> Self {
        StepModelOptions {
            elem_bytes,
            triangular,
            reduction: FactorReduction::DenseAllreduce,
            gather: false,
            order: None,
        }
    }

    /// The options a resolved [`StrategyPlan`] implies — the one mapping
    /// from the strategy layer into the α–β step model, shared by the
    /// priority scheduler and the cost sweeps.
    pub fn from_plan(elem_bytes: usize, triangular: bool, plan: &StrategyPlan) -> Self {
        StepModelOptions {
            elem_bytes,
            triangular,
            reduction: plan.reduction,
            gather: plan.regather_split_layers,
            order: None,
        }
    }
}

/// The modeled cost of one full K-FAC update step (factor + eig +
/// precondition + scale) under a given placement plan and network.
#[derive(Debug, Clone)]
pub struct StepModel {
    graph: TaskGraph,
    serial: f64,
    world: usize,
    chain: Vec<f64>,
}

impl StepModel {
    /// Build the dense-path model for layers of factor dims
    /// `dims = [(a, g); n]` under `plan`, an α–β network `cost`, compute
    /// `rates`, factor element width `elem_bytes` (2 for fp16 factors), and
    /// the triangular-packing flag.
    pub fn new(
        dims: &[(usize, usize)],
        plan: &WorkPlan,
        cost: &CollectiveCostModel,
        rates: &ComputeRates,
        elem_bytes: usize,
        triangular: bool,
    ) -> Self {
        StepModel::with_options(
            dims,
            plan,
            cost,
            rates,
            StepModelOptions::dense(elem_bytes, triangular),
        )
    }

    /// Build the model with explicit [`StepModelOptions`] — the sharded
    /// factor path, the inverse-fallback regather, and/or a priority issue
    /// order.
    pub fn with_options(
        dims: &[(usize, usize)],
        plan: &WorkPlan,
        cost: &CollectiveCostModel,
        rates: &ComputeRates,
        opts: StepModelOptions<'_>,
    ) -> Self {
        assert_eq!(dims.len(), plan.layers.len(), "plan must cover every layer");
        let StepModelOptions { elem_bytes, triangular, reduction, gather, order } = opts;
        let sharded = reduction == FactorReduction::ShardedReduceScatter;
        let local = reduction == FactorReduction::LocalNone;
        let world = plan.world;
        let mut graph = TaskGraph::new();
        let mut serial = 0.0f64;

        let n = dims.len();
        let order: Vec<usize> = match order {
            Some(o) => {
                let mut sorted = o.to_vec();
                sorted.sort_unstable();
                assert!(
                    sorted.iter().copied().eq(0..n),
                    "issue order must be a permutation of 0..{n}"
                );
                o.to_vec()
            }
            None => (0..n).collect(),
        };
        let mut chain = vec![0.0f64; n];
        let fa_fin: Vec<f64> =
            dims.iter().map(|&(a, g)| 2.0 * (a * a + g * g) as f64 / rates.gemm_flops).collect();
        let fa_fold = fa_fin.clone(); // axpby over both factors: same element count
        let fold_a: Vec<f64> =
            dims.iter().map(|&(a, _)| 2.0 * (a * a) as f64 / rates.gemm_flops).collect();
        let fold_g: Vec<f64> =
            dims.iter().map(|&(_, g)| 2.0 * (g * g) as f64 / rates.gemm_flops).collect();
        let payload_bytes: Vec<usize> =
            dims.iter().map(|&(a, g)| factor_payload_len(a, g, triangular) * elem_bytes).collect();
        let ar: Vec<f64> = payload_bytes.iter().map(|&b| cost.allreduce(b, world)).collect();
        let rs: Vec<f64> = payload_bytes.iter().map(|&b| cost.reduce_scatter(b, world)).collect();
        // The fallback regather within the (at most two-member) eig worker
        // group: each member contributes roughly half the payload.
        let ga: Vec<f64> = (0..n)
            .map(|i| {
                let asn = &plan.layers[i];
                if gather && asn.a_worker != asn.g_worker {
                    cost.allgather(payload_bytes[i].div_ceil(2), 2)
                } else {
                    0.0
                }
            })
            .collect();
        let eig_a: Vec<f64> =
            dims.iter().map(|&(a, _)| 9.0 * (a as f64).powi(3) / rates.eig_flops).collect();
        let eig_g: Vec<f64> =
            dims.iter().map(|&(_, g)| 9.0 * (g as f64).powi(3) / rates.eig_flops).collect();
        let outer: Vec<f64> =
            dims.iter().map(|&(a, g)| (a * g) as f64 / rates.gemm_flops).collect();
        let prec: Vec<f64> = dims
            .iter()
            .map(|&(a, g)| (4 * a * g * (a + g) + a * g) as f64 / rates.gemm_flops)
            .collect();
        let scale: Vec<f64> =
            dims.iter().map(|&(a, g)| 3.0 * (a * g) as f64 / rates.gemm_flops).collect();

        // -------- Factor phase --------
        // Sweep A: finalize on every rank, then post the collective (world
        // allreduce, or the sharded reduce-scatter). Sweep B folds the
        // averages — on every rank for the dense path, only on the owning
        // eigendecomposition workers for the sharded path. LOCAL-OPT
        // degenerates both sweeps: finalize and fold run on the single
        // owner and there is no network task at all.
        let mut a_factor_ready = vec![0usize; n]; // task feeding eig_a on the A worker
        let mut g_factor_ready = vec![0usize; n]; // task feeding eig_g on the G worker
        let mut fin_ids = vec![Vec::new(); n];
        let mut comm_ids = vec![0usize; n];
        for &i in &order {
            if local {
                let id = graph.push(Task {
                    layer: i,
                    stage: PipelineStage::FactorAccumulate,
                    resource: Resource::Compute(plan.layers[i].a_worker),
                    duration: fa_fin[i],
                    deps: Vec::new(),
                });
                fin_ids[i].push(id);
                comm_ids[i] = id; // the fold depends directly on the finalize
                chain[i] += fa_fin[i];
                continue;
            }
            for r in 0..world {
                let id = graph.push(Task {
                    layer: i,
                    stage: PipelineStage::FactorAccumulate,
                    resource: Resource::Compute(r),
                    duration: fa_fin[i],
                    deps: Vec::new(),
                });
                fin_ids[i].push(id);
            }
            let (stage, duration) = if sharded {
                (PipelineStage::FactorReduce, rs[i])
            } else {
                (PipelineStage::FactorAllreduce, ar[i])
            };
            comm_ids[i] = graph.push(Task {
                layer: i,
                stage,
                resource: Resource::Network,
                duration,
                deps: fin_ids[i].clone(),
            });
            chain[i] += fa_fin[i] + duration;
        }
        for &i in &order {
            let asn = &plan.layers[i];
            let mut fold_dep = comm_ids[i];
            if local {
                let id = graph.push(Task {
                    layer: i,
                    stage: PipelineStage::FactorAccumulate,
                    resource: Resource::Compute(asn.a_worker),
                    duration: fa_fold[i],
                    deps: vec![fold_dep],
                });
                a_factor_ready[i] = id;
                g_factor_ready[i] = id;
                chain[i] += fa_fold[i];
                serial += fa_fin[i] + fa_fold[i];
                continue;
            }
            if sharded && ga[i] > 0.0 {
                fold_dep = graph.push(Task {
                    layer: i,
                    stage: PipelineStage::FactorGather,
                    resource: Resource::Network,
                    duration: ga[i],
                    deps: vec![comm_ids[i]],
                });
                chain[i] += ga[i];
            }
            if sharded {
                let a_id = graph.push(Task {
                    layer: i,
                    stage: PipelineStage::FactorAccumulate,
                    resource: Resource::Compute(asn.a_worker),
                    duration: fold_a[i],
                    deps: vec![fold_dep],
                });
                let g_id = graph.push(Task {
                    layer: i,
                    stage: PipelineStage::FactorAccumulate,
                    resource: Resource::Compute(asn.g_worker),
                    duration: fold_g[i],
                    deps: vec![fold_dep],
                });
                a_factor_ready[i] = a_id;
                g_factor_ready[i] = g_id;
                chain[i] += if asn.a_worker == asn.g_worker {
                    fold_a[i] + fold_g[i]
                } else {
                    fold_a[i].max(fold_g[i])
                };
                serial += fa_fin[i] + rs[i] + ga[i];
                serial += if asn.a_worker == asn.g_worker {
                    fold_a[i] + fold_g[i]
                } else {
                    fold_a[i].max(fold_g[i])
                };
            } else {
                let mut fold_ids = Vec::with_capacity(world);
                for r in 0..world {
                    fold_ids.push(graph.push(Task {
                        layer: i,
                        stage: PipelineStage::FactorAccumulate,
                        resource: Resource::Compute(r),
                        duration: fa_fold[i],
                        deps: vec![fold_dep],
                    }));
                }
                a_factor_ready[i] = fold_ids[asn.a_worker];
                g_factor_ready[i] = fold_ids[asn.g_worker];
                chain[i] += fa_fold[i];
                serial += fa_fin[i] + ar[i] + fa_fold[i];
            }
        }

        // -------- Eigendecomposition phase --------
        let mut eig_done = vec![0usize; n]; // last task whose output feeds preconditioning
        for &i in &order {
            let asn = &plan.layers[i];
            let a_id = graph.push(Task {
                layer: i,
                stage: PipelineStage::EigCompute,
                resource: Resource::Compute(asn.a_worker),
                duration: eig_a[i],
                deps: vec![a_factor_ready[i]],
            });
            let g_id = graph.push(Task {
                layer: i,
                stage: PipelineStage::EigCompute,
                resource: Resource::Compute(asn.g_worker),
                duration: eig_g[i],
                deps: vec![g_factor_ready[i]],
            });
            // v_A pair shuttle + outer product on the G worker.
            let mut outer_deps = vec![g_id];
            let mut pair_cost = 0.0;
            if asn.a_worker != asn.g_worker {
                pair_cost = cost.broadcast(dims[i].0 * elem_bytes, 2);
                outer_deps.push(graph.push(Task {
                    layer: i,
                    stage: PipelineStage::EigBcast,
                    resource: Resource::Network,
                    duration: pair_cost,
                    deps: vec![a_id],
                }));
            }
            let outer_id = graph.push(Task {
                layer: i,
                stage: PipelineStage::EigCompute,
                resource: Resource::Compute(asn.g_worker),
                duration: outer[i],
                deps: outer_deps,
            });
            let gw = asn.gradient_workers.len();
            let bcast_cost = if gw > 1 {
                let (a, g) = dims[i];
                cost.broadcast((a * a + g * g + a * g) * elem_bytes, gw)
            } else {
                0.0
            };
            let done = if gw > 1 {
                graph.push(Task {
                    layer: i,
                    stage: PipelineStage::EigBcast,
                    resource: Resource::Network,
                    duration: bcast_cost,
                    deps: vec![a_id, g_id, outer_id],
                })
            } else {
                outer_id
            };
            eig_done[i] = done;
            // Co-located workers serialize the two eigensolves; distinct
            // workers run them concurrently even in the serial executor.
            let eig_cost = if asn.a_worker == asn.g_worker {
                eig_a[i] + eig_g[i]
            } else {
                eig_a[i].max(eig_g[i])
            };
            serial += eig_cost + pair_cost + outer[i] + bcast_cost;
            chain[i] += eig_cost + pair_cost + outer[i] + bcast_cost;
        }

        // -------- Precondition + gradient broadcast phase --------
        let mut gb_or_p = Vec::new();
        for &i in &order {
            let asn = &plan.layers[i];
            let mut p_ids = Vec::new();
            for &r in &asn.gradient_workers {
                p_ids.push(graph.push(Task {
                    layer: i,
                    stage: PipelineStage::Precondition,
                    resource: Resource::Compute(r),
                    duration: prec[i],
                    deps: vec![eig_done[i]],
                }));
            }
            let largest = asn.bcast_groups.iter().map(|g| g.len()).max().unwrap_or(1);
            let gb_cost =
                if largest > 1 { cost.broadcast(dims[i].0 * dims[i].1 * 4, largest) } else { 0.0 };
            if largest > 1 {
                gb_or_p.push(graph.push(Task {
                    layer: i,
                    stage: PipelineStage::GradBcast,
                    resource: Resource::Network,
                    duration: gb_cost,
                    deps: p_ids,
                }));
            } else {
                gb_or_p.extend(p_ids);
            }
            serial += prec[i] + gb_cost;
            chain[i] += prec[i] + gb_cost;
        }

        // -------- Scale --------
        let scale_total: f64 = scale.iter().sum();
        for r in 0..world {
            graph.push(Task {
                layer: 0,
                stage: PipelineStage::ScaleUpdate,
                resource: Resource::Compute(r),
                duration: scale_total,
                deps: gb_or_p.clone(),
            });
        }

        // Serial lock-step: every layer's factor stages already round-tripped
        // before the next layer's begin (accumulated above); only the shared
        // scale remains.
        serial += scale_total;

        StepModel { graph, serial, world, chain }
    }

    /// The underlying task graph.
    pub fn graph(&self) -> &TaskGraph {
        &self.graph
    }

    /// Modeled seconds for the serial executor's lock-step walk.
    pub fn serial_seconds(&self) -> f64 {
        self.serial
    }

    /// Modeled seconds for the pipelined executor (list-scheduled overlap).
    pub fn pipelined_seconds(&self) -> f64 {
        self.graph.list_schedule_makespan(self.world)
    }

    /// `serial / pipelined` — how much the overlap shortens the step.
    pub fn overlap_speedup(&self) -> f64 {
        self.serial_seconds() / self.pipelined_seconds().max(1e-18)
    }

    /// Modeled seconds for the task-runtime executor: greedy ready-queue
    /// dispatch, floored by the issue-order list schedule. Greedy
    /// event-driven scheduling can suffer anomalies on adversarial graphs,
    /// but the live runtime is free to fall back to pure issue order (its
    /// gates pin exactly that order per group), so its makespan never
    /// exceeds the pipelined executor's.
    pub fn runtime_seconds(&self) -> f64 {
        self.graph.ready_schedule_makespan(self.world).min(self.pipelined_seconds())
    }

    /// Per-layer critical-chain duration: the sum of one layer's stage
    /// durations from statistics finalize through its gradient broadcast.
    /// This is the list-scheduling priority key for [`Self::priority_order`].
    pub fn layer_priorities(&self) -> &[f64] {
        &self.chain
    }

    /// Layer issue order by **ascending** critical-chain priority (ties
    /// break toward the lower layer index). The executor's sweeps issue
    /// collectives in this order and also *complete* them in this order, so
    /// the schedule behaves like a permutation flow shop: a long-chain layer
    /// issued first parks its unfinished collective at the head of the line
    /// and stalls every later completion behind it. Issuing short chains
    /// first drains them while the long eigensolves are still running —
    /// Johnson's-rule flavor, and exhaustive permutation checks on the test
    /// dims confirm shortest-chain-first is makespan-optimal for the dense
    /// comm-bound configs. A pure function of the dims, plan, and cost
    /// model, so every rank computes the same order — reordering collectives
    /// identically preserves per-group matching.
    pub fn priority_order(&self) -> Vec<usize> {
        let mut idx: Vec<usize> = (0..self.chain.len()).collect();
        idx.sort_by(|&a, &b| {
            self.chain[a].partial_cmp(&self.chain[b]).expect("finite priorities").then(a.cmp(&b))
        });
        idx
    }
}

/// Pick the pipelined sweep order for `dims` under `plan`: evaluate the
/// modeled makespan of the fixed order, the [`StepModel::priority_order`]
/// chain orders (ascending and descending), then refine the winner with a
/// deterministic pairwise-swap descent that only accepts strict
/// improvements. Starting from the fixed order guarantees the result never
/// models worse than issuing layers in `0..n`. Every input is identical on
/// every rank, the scan order is fixed, and the arithmetic is
/// deterministic, so all ranks agree on the order — collective matching is
/// preserved. `opts.order` is ignored.
pub fn priority_sweep_order(
    dims: &[(usize, usize)],
    plan: &WorkPlan,
    cost: &CollectiveCostModel,
    rates: &ComputeRates,
    opts: StepModelOptions<'_>,
) -> Vec<usize> {
    let n = dims.len();
    let eval = |order: &[usize]| {
        let opts = StepModelOptions { order: Some(order), ..opts };
        StepModel::with_options(dims, plan, cost, rates, opts).pipelined_seconds()
    };
    let mut best: Vec<usize> = (0..n).collect();
    let mut best_t = eval(&best);
    let base =
        StepModel::with_options(dims, plan, cost, rates, StepModelOptions { order: None, ..opts });
    let ascending = base.priority_order();
    let descending: Vec<usize> = ascending.iter().rev().copied().collect();
    for cand in [ascending, descending] {
        let t = eval(&cand);
        if t < best_t {
            best_t = t;
            best = cand;
        }
    }
    // First-improvement descent over all pairwise swaps; layer counts are
    // small so the O(n^2) evaluations per pass are cheap, and construction
    // runs once per Kfac instance.
    loop {
        let mut improved = false;
        for a in 0..n {
            for b in a + 1..n {
                let mut cand = best.clone();
                cand.swap(a, b);
                let t = eval(&cand);
                if t < best_t {
                    best_t = t;
                    best = cand;
                    improved = true;
                }
            }
        }
        if !improved {
            break;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::assignment::plan_assignments;
    use crate::AssignmentStrategy;
    use kaisa_comm::{ClusterNetwork, CollectiveCostModel};

    fn dims() -> Vec<(usize, usize)> {
        vec![(144, 64), (576, 64), (576, 128), (1152, 128), (128, 10)]
    }

    fn model(world: usize, frac: f64, net: ClusterNetwork) -> StepModel {
        let d = dims();
        let plan = plan_assignments(&d, world, frac, AssignmentStrategy::ComputeLpt);
        StepModel::new(
            &d,
            &plan,
            &CollectiveCostModel::new(net),
            &ComputeRates::default(),
            4,
            false,
        )
    }

    #[test]
    fn single_rank_has_no_network_tasks_and_no_speedup() {
        let m = model(1, 1.0, ClusterNetwork::ethernet_10g());
        let net_time: f64 = m
            .graph()
            .tasks()
            .iter()
            .filter(|t| t.resource == Resource::Network)
            .map(|t| t.duration)
            .sum();
        assert_eq!(net_time, 0.0, "world=1 collectives are free");
        // With one compute resource and nothing to overlap, both schedules
        // degenerate to the same serialization.
        assert!((m.serial_seconds() - m.pipelined_seconds()).abs() < 1e-12);
    }

    #[test]
    fn pipelined_never_exceeds_serial() {
        for world in [2, 4, 8] {
            for frac in [1.0 / world as f64, 0.5, 1.0] {
                for net in [ClusterNetwork::infiniband_edr(), ClusterNetwork::ethernet_10g()] {
                    let m = model(world, frac, net);
                    assert!(
                        m.pipelined_seconds() <= m.serial_seconds() + 1e-15,
                        "world={world} frac={frac}: {} > {}",
                        m.pipelined_seconds(),
                        m.serial_seconds()
                    );
                }
            }
        }
    }

    #[test]
    fn critical_path_lower_bounds_the_schedule() {
        let m = model(8, 0.5, ClusterNetwork::ethernet_10g());
        assert!(m.graph().critical_path() <= m.pipelined_seconds() + 1e-15);
    }

    fn sharded_opts(order: Option<&[usize]>) -> StepModelOptions<'_> {
        StepModelOptions {
            elem_bytes: 4,
            triangular: false,
            reduction: FactorReduction::ShardedReduceScatter,
            gather: false,
            order,
        }
    }

    #[test]
    fn sharded_model_replaces_the_allreduce_and_moves_less_traffic() {
        let d = dims();
        let plan = plan_assignments(&d, 8, 0.5, AssignmentStrategy::ComputeLpt);
        let cost = CollectiveCostModel::new(ClusterNetwork::ethernet_10g());
        let rates = ComputeRates::default();
        let dense = StepModel::new(&d, &plan, &cost, &rates, 4, false);
        let sharded = StepModel::with_options(&d, &plan, &cost, &rates, sharded_opts(None));
        assert_eq!(sharded.graph().stage_total(PipelineStage::FactorAllreduce), 0.0);
        assert_eq!(dense.graph().stage_total(PipelineStage::FactorReduce), 0.0);
        let rs = sharded.graph().stage_total(PipelineStage::FactorReduce);
        let ar = dense.graph().stage_total(PipelineStage::FactorAllreduce);
        assert!(rs > 0.0 && rs < ar, "reduce-scatter ({rs}) must undercut the allreduce ({ar})");
        assert!(
            sharded.pipelined_seconds() <= dense.pipelined_seconds() + 1e-15,
            "sharded factor phase must not lengthen the modeled step"
        );
    }

    #[test]
    fn local_model_has_no_factor_network_tasks_and_undercuts_dense() {
        let d = dims();
        // LOCAL-OPT runs on the one-worker grid.
        let plan = plan_assignments(&d, 8, 1.0 / 8.0, AssignmentStrategy::ComputeLpt);
        let cost = CollectiveCostModel::new(ClusterNetwork::ethernet_10g());
        let rates = ComputeRates::default();
        let dense =
            StepModel::with_options(&d, &plan, &cost, &rates, StepModelOptions::dense(4, false));
        let local = StepModel::with_options(
            &d,
            &plan,
            &cost,
            &rates,
            StepModelOptions {
                reduction: FactorReduction::LocalNone,
                ..StepModelOptions::dense(4, false)
            },
        );
        for stage in [
            PipelineStage::FactorAllreduce,
            PipelineStage::FactorReduce,
            PipelineStage::FactorGather,
        ] {
            assert_eq!(local.graph().stage_total(stage), 0.0, "{stage:?} must be absent");
        }
        assert!(
            local.serial_seconds() < dense.serial_seconds(),
            "dropping the factor allreduce must shorten the modeled step"
        );
        assert!(local.pipelined_seconds() <= dense.pipelined_seconds() + 1e-15);
    }

    #[test]
    fn gather_tasks_appear_only_for_split_worker_layers() {
        let d = dims();
        let plan = plan_assignments(&d, 4, 0.5, AssignmentStrategy::ComputeLpt);
        let cost = CollectiveCostModel::new(ClusterNetwork::ethernet_10g());
        let rates = ComputeRates::default();
        let no_gather = StepModel::with_options(&d, &plan, &cost, &rates, sharded_opts(None));
        let mut with_gather = sharded_opts(None);
        with_gather.gather = true;
        let with_gather = StepModel::with_options(&d, &plan, &cost, &rates, with_gather);
        assert_eq!(no_gather.graph().stage_total(PipelineStage::FactorGather), 0.0);
        let split_layers = plan.layers.iter().filter(|a| a.a_worker != a.g_worker).count();
        let gather_tasks = with_gather
            .graph()
            .tasks()
            .iter()
            .filter(|t| t.stage == PipelineStage::FactorGather)
            .count();
        assert_eq!(gather_tasks, split_layers, "one regather per split-worker layer");
    }

    #[test]
    fn priority_order_is_a_permutation_sorted_by_chain() {
        let m = model(8, 0.5, ClusterNetwork::ethernet_10g());
        let order = m.priority_order();
        let mut sorted = order.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..dims().len()).collect::<Vec<_>>());
        let pri = m.layer_priorities();
        for w in order.windows(2) {
            assert!(pri[w[0]] <= pri[w[1]], "priorities must be non-decreasing");
        }
    }

    #[test]
    fn priority_issue_order_improves_comm_bound_makespan() {
        let d = dims();
        let plan = plan_assignments(&d, 8, 0.5, AssignmentStrategy::ComputeLpt);
        let cost = CollectiveCostModel::new(ClusterNetwork::ethernet_10g());
        let rates = ComputeRates::default();
        let opts = StepModelOptions::dense(4, false);
        let fixed = StepModel::with_options(&d, &plan, &cost, &rates, opts);
        let order = priority_sweep_order(&d, &plan, &cost, &rates, opts);
        let prioritized = StepModel::with_options(
            &d,
            &plan,
            &cost,
            &rates,
            StepModelOptions { order: Some(&order), ..opts },
        );
        // Same task multiset either way: identical serial walk.
        assert!((prioritized.serial_seconds() - fixed.serial_seconds()).abs() < 1e-12);
        assert!(
            prioritized.pipelined_seconds() < fixed.pipelined_seconds(),
            "priority order must strictly improve this comm-bound config: {} vs {}",
            prioritized.pipelined_seconds(),
            fixed.pipelined_seconds()
        );
    }

    #[test]
    fn priority_sweep_order_never_models_worse_than_fixed() {
        let d = dims();
        let cost = CollectiveCostModel::new(ClusterNetwork::ethernet_10g());
        let rates = ComputeRates::default();
        for world in [2, 4, 8] {
            for frac in [1.0 / world as f64, 0.5, 1.0] {
                let plan = plan_assignments(&d, world, frac, AssignmentStrategy::ComputeLpt);
                for reduction in [
                    FactorReduction::DenseAllreduce,
                    FactorReduction::ShardedReduceScatter,
                    FactorReduction::LocalNone,
                ] {
                    let opts = StepModelOptions {
                        elem_bytes: 4,
                        triangular: false,
                        reduction,
                        gather: false,
                        order: None,
                    };
                    let fixed =
                        StepModel::with_options(&d, &plan, &cost, &rates, opts).pipelined_seconds();
                    let order = priority_sweep_order(&d, &plan, &cost, &rates, opts);
                    let tuned = StepModel::with_options(
                        &d,
                        &plan,
                        &cost,
                        &rates,
                        StepModelOptions { order: Some(&order), ..opts },
                    )
                    .pipelined_seconds();
                    assert!(
                        tuned <= fixed,
                        "world={world} frac={frac} {reduction:?}: {tuned} > {fixed}"
                    );
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "permutation")]
    fn non_permutation_issue_order_is_rejected() {
        let d = dims();
        let plan = plan_assignments(&d, 2, 1.0, AssignmentStrategy::ComputeLpt);
        let cost = CollectiveCostModel::new(ClusterNetwork::ethernet_10g());
        let bad = vec![0usize, 0, 1, 2, 3];
        let _ = StepModel::with_options(
            &d,
            &plan,
            &cost,
            &ComputeRates::default(),
            StepModelOptions { order: Some(&bad), ..StepModelOptions::dense(4, false) },
        );
    }

    #[test]
    fn runtime_never_exceeds_pipelined() {
        for world in [1, 2, 4, 8] {
            for frac in [1.0 / world as f64, 0.5, 1.0] {
                for net in [ClusterNetwork::infiniband_edr(), ClusterNetwork::ethernet_10g()] {
                    let m = model(world, frac, net);
                    assert!(
                        m.runtime_seconds() <= m.pipelined_seconds() + 1e-15,
                        "world={world} frac={frac}: {} > {}",
                        m.runtime_seconds(),
                        m.pipelined_seconds()
                    );
                    assert!(m.graph().critical_path() <= m.runtime_seconds() + 1e-15);
                }
            }
        }
    }

    #[test]
    fn ready_schedule_beats_list_schedule_on_a_parked_head_of_line() {
        // Issue order: long network op first, then a short independent
        // compute task on rank 0 *behind* a compute task that depends on the
        // network op. The list schedule walks in issue order, so the
        // dependent task blocks rank 0 until the network finishes; the ready
        // queue runs the independent task first.
        let mut g = TaskGraph::new();
        let net = g.push(Task {
            layer: 0,
            stage: PipelineStage::FactorAllreduce,
            resource: Resource::Network,
            duration: 10.0,
            deps: vec![],
        });
        g.push(Task {
            layer: 0,
            stage: PipelineStage::FactorAccumulate,
            resource: Resource::Compute(0),
            duration: 1.0,
            deps: vec![net],
        });
        g.push(Task {
            layer: 1,
            stage: PipelineStage::EigCompute,
            resource: Resource::Compute(0),
            duration: 5.0,
            deps: vec![],
        });
        assert_eq!(g.list_schedule_makespan(1), 16.0);
        assert_eq!(g.ready_schedule_makespan(1), 11.0);
    }

    #[test]
    fn list_schedule_respects_dependencies_and_resources() {
        // Two independent 1s compute tasks on one rank serialize; on two
        // ranks they run concurrently.
        let mut g = TaskGraph::new();
        let t = |r: usize, deps: Vec<usize>| Task {
            layer: 0,
            stage: PipelineStage::EigCompute,
            resource: Resource::Compute(r),
            duration: 1.0,
            deps,
        };
        g.push(t(0, vec![]));
        g.push(t(0, vec![]));
        assert_eq!(g.list_schedule_makespan(1), 2.0);
        let mut g2 = TaskGraph::new();
        g2.push(t(0, vec![]));
        g2.push(t(1, vec![]));
        assert_eq!(g2.list_schedule_makespan(2), 1.0);
        // A dependency forces serialization even across ranks.
        let mut g3 = TaskGraph::new();
        let first = g3.push(t(0, vec![]));
        g3.push(t(1, vec![first]));
        assert_eq!(g3.list_schedule_makespan(2), 2.0);
        assert_eq!(g3.critical_path(), 2.0);
    }
}
