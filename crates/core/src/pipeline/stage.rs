//! The stage vocabulary of the K-FAC step pipeline.
//!
//! One `(layer x stage)` pair is the pipeline's unit of work. Stages within
//! a layer form a linear dependency chain; across layers they are
//! independent except for sharing rank compute and the network — which is
//! exactly the freedom the pipelined executor exploits.

use kaisa_comm::CommTag;

use crate::timing::Stage;

/// One stage of a layer's journey through `Kfac::step`, in dependency
/// order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PipelineStage {
    /// Finalize captured `aᵀa`/`gᵀg` statistics and fold averaged factors
    /// into the running state (compute; every rank).
    FactorAccumulate,
    /// Allreduce-average the packed factor payload across the world
    /// (communication).
    FactorAllreduce,
    /// Eigendecompose (or invert) the factors on the LPT-assigned worker,
    /// including the `1/(v_G v_Aᵀ + γ)` outer product (compute).
    EigCompute,
    /// Broadcast eigenvectors / outer product (or inverses) to the layer's
    /// gradient workers, plus the `v_A` pair shuttle (communication).
    EigBcast,
    /// Apply Eq. 15–17 to the layer's gradient on its gradient workers
    /// (compute).
    Precondition,
    /// Broadcast the preconditioned gradient to the layer's receiver group
    /// (communication).
    GradBcast,
    /// KL-clip scale and write the gradient back (compute; every rank).
    ScaleUpdate,
}

impl PipelineStage {
    /// All stages in dependency order.
    pub const ALL: [PipelineStage; 7] = [
        PipelineStage::FactorAccumulate,
        PipelineStage::FactorAllreduce,
        PipelineStage::EigCompute,
        PipelineStage::EigBcast,
        PipelineStage::Precondition,
        PipelineStage::GradBcast,
        PipelineStage::ScaleUpdate,
    ];

    /// The stage this one waits on within the same layer (`None` for the
    /// head of the chain).
    pub fn upstream(self) -> Option<PipelineStage> {
        let idx = Self::ALL.iter().position(|s| *s == self).expect("stage in ALL");
        idx.checked_sub(1).map(|i| Self::ALL[i])
    }

    /// True for the communication stages (scheduled on the network resource;
    /// initiated with a non-blocking handle by the pipelined executor).
    pub fn is_comm(self) -> bool {
        matches!(
            self,
            PipelineStage::FactorAllreduce | PipelineStage::EigBcast | PipelineStage::GradBcast
        )
    }

    /// The Figure 7 timing bucket this stage reports into.
    pub fn timing_stage(self) -> Stage {
        match self {
            PipelineStage::FactorAccumulate => Stage::FactorCompute,
            PipelineStage::FactorAllreduce => Stage::FactorComm,
            PipelineStage::EigCompute => Stage::EigCompute,
            PipelineStage::EigBcast => Stage::EigComm,
            PipelineStage::Precondition => Stage::Precondition,
            PipelineStage::GradBcast => Stage::GradComm,
            PipelineStage::ScaleUpdate => Stage::Scale,
        }
    }

    /// The meter tag this stage's collectives carry (`None` for pure
    /// compute stages).
    pub fn comm_tag(self) -> Option<CommTag> {
        match self {
            PipelineStage::FactorAllreduce => Some(CommTag::FactorComm),
            PipelineStage::EigBcast => Some(CommTag::EigComm),
            PipelineStage::GradBcast => Some(CommTag::GradComm),
            _ => None,
        }
    }

    /// Short display name.
    pub fn name(self) -> &'static str {
        match self {
            PipelineStage::FactorAccumulate => "factor-accumulate",
            PipelineStage::FactorAllreduce => "factor-allreduce",
            PipelineStage::EigCompute => "eig-compute",
            PipelineStage::EigBcast => "eig-bcast",
            PipelineStage::Precondition => "precondition",
            PipelineStage::GradBcast => "grad-bcast",
            PipelineStage::ScaleUpdate => "scale-update",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chain_is_linear_and_complete() {
        assert_eq!(PipelineStage::FactorAccumulate.upstream(), None);
        let mut seen = 1;
        let mut cur = PipelineStage::ALL[PipelineStage::ALL.len() - 1];
        while let Some(up) = cur.upstream() {
            seen += 1;
            cur = up;
        }
        assert_eq!(seen, PipelineStage::ALL.len());
        assert_eq!(cur, PipelineStage::FactorAccumulate);
    }

    #[test]
    fn comm_stages_carry_tags_compute_stages_do_not() {
        for stage in PipelineStage::ALL {
            assert_eq!(stage.is_comm(), stage.comm_tag().is_some(), "{}", stage.name());
        }
        assert_eq!(PipelineStage::FactorAllreduce.comm_tag(), Some(CommTag::FactorComm));
        assert_eq!(PipelineStage::GradBcast.comm_tag(), Some(CommTag::GradComm));
    }

    #[test]
    fn timing_buckets_cover_all_seven_figure7_stages() {
        let mut hit = [false; 7];
        for stage in PipelineStage::ALL {
            hit[stage.timing_stage() as usize] = true;
        }
        assert!(hit.iter().all(|h| *h));
    }
}
