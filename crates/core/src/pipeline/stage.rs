//! The stage vocabulary of the K-FAC step pipeline.
//!
//! One `(layer x stage)` pair is the pipeline's unit of work. Stages within
//! a layer form a linear dependency chain; across layers they are
//! independent except for sharing rank compute and the network — which is
//! exactly the freedom the pipelined executor exploits.

use kaisa_comm::CommTag;

use crate::timing::Stage;

/// One stage of a layer's journey through `Kfac::step`, in dependency
/// order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PipelineStage {
    /// Finalize captured `aᵀa`/`gᵀg` statistics and fold averaged factors
    /// into the running state (compute; every rank).
    FactorAccumulate,
    /// Allreduce-average the packed factor payload across the world
    /// (communication).
    FactorAllreduce,
    /// Sharded alternative to [`PipelineStage::FactorAllreduce`]:
    /// reduce-scatter the packed payload so the `A` section lands only on
    /// the layer's A-eigendecomposition worker and the `G` section on its
    /// G-worker (communication).
    FactorReduce,
    /// Regather the averaged payload within the layer's eigendecomposition
    /// worker group — only needed by the direct-inverse fallback, whose
    /// solver consumes both factors on one rank (communication).
    FactorGather,
    /// Eigendecompose (or invert) the factors on the LPT-assigned worker,
    /// including the `1/(v_G v_Aᵀ + γ)` outer product (compute).
    EigCompute,
    /// Broadcast eigenvectors / outer product (or inverses) to the layer's
    /// gradient workers, plus the `v_A` pair shuttle (communication).
    EigBcast,
    /// Apply Eq. 15–17 to the layer's gradient on its gradient workers
    /// (compute).
    Precondition,
    /// Broadcast the preconditioned gradient to the layer's receiver group
    /// (communication).
    GradBcast,
    /// KL-clip scale and write the gradient back (compute; every rank).
    ScaleUpdate,
}

impl PipelineStage {
    /// All stages in dependency order. `FactorReduce`/`FactorGather` are the
    /// sharded-path alternative to `FactorAllreduce`; both branches rejoin at
    /// `EigCompute`.
    pub const ALL: [PipelineStage; 9] = [
        PipelineStage::FactorAccumulate,
        PipelineStage::FactorAllreduce,
        PipelineStage::FactorReduce,
        PipelineStage::FactorGather,
        PipelineStage::EigCompute,
        PipelineStage::EigBcast,
        PipelineStage::Precondition,
        PipelineStage::GradBcast,
        PipelineStage::ScaleUpdate,
    ];

    /// The stage this one waits on within the same layer (`None` for the
    /// head of the chain). `EigCompute` names the dense reference chain's
    /// predecessor; on the sharded path it instead follows
    /// `FactorReduce`/`FactorGather`.
    pub fn upstream(self) -> Option<PipelineStage> {
        match self {
            PipelineStage::FactorAccumulate => None,
            PipelineStage::FactorAllreduce => Some(PipelineStage::FactorAccumulate),
            PipelineStage::FactorReduce => Some(PipelineStage::FactorAccumulate),
            PipelineStage::FactorGather => Some(PipelineStage::FactorReduce),
            PipelineStage::EigCompute => Some(PipelineStage::FactorAllreduce),
            PipelineStage::EigBcast => Some(PipelineStage::EigCompute),
            PipelineStage::Precondition => Some(PipelineStage::EigBcast),
            PipelineStage::GradBcast => Some(PipelineStage::Precondition),
            PipelineStage::ScaleUpdate => Some(PipelineStage::GradBcast),
        }
    }

    /// True for the communication stages (scheduled on the network resource;
    /// initiated with a non-blocking handle by the pipelined executor).
    pub fn is_comm(self) -> bool {
        matches!(
            self,
            PipelineStage::FactorAllreduce
                | PipelineStage::FactorReduce
                | PipelineStage::FactorGather
                | PipelineStage::EigBcast
                | PipelineStage::GradBcast
        )
    }

    /// The Figure 7 timing bucket this stage reports into.
    pub fn timing_stage(self) -> Stage {
        match self {
            PipelineStage::FactorAccumulate => Stage::FactorCompute,
            PipelineStage::FactorAllreduce => Stage::FactorComm,
            PipelineStage::FactorReduce => Stage::FactorComm,
            PipelineStage::FactorGather => Stage::FactorComm,
            PipelineStage::EigCompute => Stage::EigCompute,
            PipelineStage::EigBcast => Stage::EigComm,
            PipelineStage::Precondition => Stage::Precondition,
            PipelineStage::GradBcast => Stage::GradComm,
            PipelineStage::ScaleUpdate => Stage::Scale,
        }
    }

    /// The meter tag this stage's collectives carry (`None` for pure
    /// compute stages).
    pub fn comm_tag(self) -> Option<CommTag> {
        match self {
            PipelineStage::FactorAllreduce => Some(CommTag::FactorComm),
            PipelineStage::FactorReduce => Some(CommTag::FactorReduce),
            PipelineStage::FactorGather => Some(CommTag::FactorGather),
            PipelineStage::EigBcast => Some(CommTag::EigComm),
            PipelineStage::GradBcast => Some(CommTag::GradComm),
            _ => None,
        }
    }

    /// Short display name.
    pub fn name(self) -> &'static str {
        match self {
            PipelineStage::FactorAccumulate => "factor-accumulate",
            PipelineStage::FactorAllreduce => "factor-allreduce",
            PipelineStage::FactorReduce => "factor-reduce-scatter",
            PipelineStage::FactorGather => "factor-allgather",
            PipelineStage::EigCompute => "eig-compute",
            PipelineStage::EigBcast => "eig-bcast",
            PipelineStage::Precondition => "precondition",
            PipelineStage::GradBcast => "grad-bcast",
            PipelineStage::ScaleUpdate => "scale-update",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chain_is_rooted_and_complete() {
        // Every stage chains back to FactorAccumulate; the dense reference
        // chain has 7 links, the sharded branch rejoins it at EigCompute.
        assert_eq!(PipelineStage::FactorAccumulate.upstream(), None);
        for stage in PipelineStage::ALL {
            let mut cur = stage;
            let mut hops = 0;
            while let Some(up) = cur.upstream() {
                cur = up;
                hops += 1;
                assert!(hops <= PipelineStage::ALL.len(), "upstream cycle at {}", stage.name());
            }
            assert_eq!(cur, PipelineStage::FactorAccumulate);
        }
        let mut dense_len = 1;
        let mut cur = PipelineStage::ScaleUpdate;
        while let Some(up) = cur.upstream() {
            dense_len += 1;
            cur = up;
        }
        assert_eq!(dense_len, 7, "dense reference chain skips the sharded pair");
        assert_eq!(PipelineStage::FactorGather.upstream(), Some(PipelineStage::FactorReduce));
        assert_eq!(PipelineStage::FactorReduce.upstream(), Some(PipelineStage::FactorAccumulate));
    }

    #[test]
    fn comm_stages_carry_tags_compute_stages_do_not() {
        for stage in PipelineStage::ALL {
            assert_eq!(stage.is_comm(), stage.comm_tag().is_some(), "{}", stage.name());
        }
        assert_eq!(PipelineStage::FactorAllreduce.comm_tag(), Some(CommTag::FactorComm));
        assert_eq!(PipelineStage::FactorReduce.comm_tag(), Some(CommTag::FactorReduce));
        assert_eq!(PipelineStage::FactorGather.comm_tag(), Some(CommTag::FactorGather));
        assert_eq!(PipelineStage::GradBcast.comm_tag(), Some(CommTag::GradComm));
    }

    #[test]
    fn timing_buckets_cover_all_seven_figure7_stages() {
        let mut hit = [false; 7];
        for stage in PipelineStage::ALL {
            hit[stage.timing_stage() as usize] = true;
        }
        assert!(hit.iter().all(|h| *h));
    }
}
