//! K-FAC preconditioner configuration.

use kaisa_comm::ClusterNetwork;
use kaisa_tensor::{GemmKernel, Precision, SyrkMode};

use crate::{AssignmentStrategy, DistStrategy};

/// Depth of the task runtime's cross-iteration scheduling window: how many
/// step DAGs may be in flight at once (the current step plus retired
/// residues whose deferred factor completes are still draining).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CrossIterDepth {
    /// A fixed window depth; `Fixed(1)` is the classic two-half lookahead
    /// with no cross-step residue.
    Fixed(usize),
    /// Pick the modeled-best depth per (plan, network, update frequency) at
    /// `Kfac::new` time. The choice is a pure function of the layer
    /// dimensions, world size, configured network, and `factor_update_freq`
    /// (evaluated at the reference per-rank batch of 32), so every rank
    /// derives the same depth — a per-rank measurement would break
    /// collective matching.
    Auto,
}

/// Configuration of the [`crate::Kfac`] preconditioner.
///
/// Defaults mirror the paper's Table 2 settings where a single value is used
/// across applications (`damping = 0.003`, `grad_worker_frac = 1`).
#[derive(Debug, Clone)]
pub struct KfacConfig {
    /// Fraction of ranks that act as gradient workers per layer
    /// (Section 3.1). `1/world` = MEM-OPT, `1` = COMM-OPT.
    pub grad_worker_frac: f64,
    /// Explicit distribution-strategy override. `None` (the default)
    /// classifies the strategy from the `grad_worker_frac`-derived worker
    /// count. `Some(MemOpt)`/`Some(CommOpt)` pin the worker grid to the
    /// corresponding extreme regardless of the fraction;
    /// `Some(HybridOpt)` keeps the configured fraction.
    /// `Some(LocalOpt)` selects DP-KFAC local preconditioning: one owner
    /// per layer folds and decomposes its rank-local factor statistics with
    /// **no factor collective at all** — zero `FactorComm`/`FactorReduce`/
    /// `FactorGather` traffic, at the cost of curvature freshness (each
    /// owner's preconditioner reflects only its own rank's data shard).
    /// LocalOpt is never inferred; it must be requested here. Feed
    /// [`crate::auto_strategy`] into this field to dispatch from the
    /// calibrated cost model.
    pub strategy: Option<DistStrategy>,
    /// Tikhonov damping γ added to the eigenvalue outer product (Eq. 16).
    pub damping: f32,
    /// Exponential decay of the running factor averages
    /// (`A ← decay·A + (1-decay)·Â`).
    pub factor_decay: f32,
    /// KL-clip constant for gradient scaling; `None` disables scaling.
    pub kl_clip: Option<f32>,
    /// Iterations between factor updates (Table 2's `F_freq`).
    pub factor_update_freq: usize,
    /// Iterations between eigendecomposition recomputations (`K_freq`).
    pub inv_update_freq: usize,
    /// Storage/communication precision for factors and eigendecompositions
    /// (Section 3.3). Eigendecompositions always *compute* in full precision.
    pub precision: Precision,
    /// Send only the upper triangle in the factor allreduce (Section 4.3).
    pub triangular_comm: bool,
    /// Precompute `1/(v_G v_Aᵀ + γ)` once on the eigendecomposition worker
    /// and broadcast it, instead of recomputing per step (Section 4.4).
    pub precompute_outer: bool,
    /// Use the eigendecomposition method (Eq. 15–17). When `false`, fall
    /// back to damped direct inverses (Eq. 12–14) — the ablation of
    /// Section 2.1.3.
    pub use_eigen: bool,
    /// How eigendecomposition jobs are spread over ranks (Section 3.2).
    pub assignment: AssignmentStrategy,
    /// Run the EK-FAC variant (George et al.): keep KAISA's distribution of
    /// eigenbases but replace the eigenvalue outer product with running
    /// corrected second moments updated every step — the extension the
    /// paper's Related Work proposes layering on this framework.
    pub ekfac: bool,
    /// Execute `step()` through the per-layer stage pipeline: collectives
    /// are initiated with non-blocking handles and completed after other
    /// layers' local compute, overlapping communication with computation.
    /// The serial executor (`false`) runs each layer's stages strictly in
    /// order; both paths are bitwise-identical (property-tested), so this
    /// only trades wall-clock for simplicity when debugging.
    pub pipelined: bool,
    /// Replace the per-layer factor allreduce with a sharded reduction
    /// (DP-KFAC, Zhang et al.): reduce-scatter the packed factor payload so
    /// the `A` section lands only on the layer's A-eigendecomposition worker
    /// and the `G` section only on its G-worker; non-workers never
    /// rematerialize (or store) the averaged factors. Halves factor-phase
    /// communication volume and drops non-worker factor memory. Bitwise
    /// identical to the dense path (property-tested); the dense path remains
    /// the reference implementation.
    pub sharded_factors: bool,
    /// Iterate pipelined executor sweeps in the issue order found by the
    /// `StepModel` makespan search (shortest critical chains first, refined
    /// by pairwise-swap descent; never modeled worse than fixed order)
    /// instead of fixed layer order. Changes only the *issue order* of
    /// tasks and collectives — every collective keeps its group and
    /// payload, so numerics are bitwise unchanged. No effect on the serial
    /// executor.
    pub priority_schedule: bool,
    /// Execute `step()` on the per-rank cooperative task runtime
    /// (`crate::runtime`): stage work becomes polled task units on a
    /// ready-queue scheduler, and a task whose collective is still in flight
    /// *parks* — yielding the rank to any runnable task instead of blocking
    /// inside `complete`. Collective begin order is pinned per group by
    /// plan-time gates, so the runtime is bitwise identical to the serial
    /// and sweep-pipelined executors (property-tested). Takes precedence
    /// over `pipelined` when both are set.
    pub async_runtime: bool,
    /// α–β parameters of the network the job actually runs on, used to score
    /// the `priority_schedule` makespan search and the runtime scheduler's
    /// dispatch priorities. `None` falls back to the 10 GbE reference model.
    /// Part of the config (identical on every rank) so all ranks derive the
    /// same issue order — a per-rank measurement would break collective
    /// matching.
    pub network: Option<ClusterNetwork>,
    /// Depth of the task runtime's cross-iteration scheduling window
    /// (requires `async_runtime` when not `Fixed(1)`). At depth D the
    /// runtime holds up to D in-flight step DAGs: factor-fold completes of
    /// an update step may retire into the window and drain under up to D-1
    /// later iterations' compute, instead of blocking `step_finish`. The
    /// window force-drains before every factor-update step (EMA fold
    /// ordering) — so with `factor_update_freq == 1` every step drains
    /// in-step and depth is effectively 1. Depths are bitwise identical to
    /// the serial executor (property-tested).
    pub cross_iter_depth: CrossIterDepth,
    /// Milliseconds a runtime rank may sit with no runnable task and no
    /// collective progress before the stall watchdog dumps a per-rank
    /// task-state diagnostic and panics (instead of hanging the process on
    /// a mismatched collective).
    pub runtime_stall_timeout_ms: u64,
    /// Worker cap for the batched factor-eigensolve queue at decomposition
    /// sites. `0` (default) defers to `KAISA_EIG_BATCH` and then one worker
    /// per core; `1` disables batching entirely (factors solve one call at
    /// a time, the pre-PR-9 behavior); `N` caps the queue workers at `N`.
    /// Batching is bitwise identical to serial solves and only ever applies
    /// to dense-resident factors — shard-resident factors keep their
    /// one-at-a-time transient-square materialization so the metered
    /// memory peak is unchanged.
    pub eig_batch: usize,
    /// Process-wide GEMM kernel selection applied at [`crate::Kfac::new`]
    /// ([`kaisa_tensor::set_gemm_kernel`]). `None` (default) leaves the
    /// `KAISA_GEMM_KERNEL` environment selection (or `auto`) in place.
    /// Blocked and naive kernels are bitwise interchangeable, so this knob
    /// is purely observability/performance. Note it is global to the
    /// process, not scoped to one `Kfac` instance.
    pub gemm_kernel: Option<GemmKernel>,
    /// Process-wide SYRK mode applied at [`crate::Kfac::new`]
    /// ([`kaisa_tensor::set_syrk_mode`]). `None` (default) leaves the
    /// `KAISA_SYRK` environment selection (or `on`) in place. `On` routes
    /// factor-statistic Gram products (`aᵀa`, `gᵀg`) through the
    /// symmetric-rank-k fast path (lower triangle + exact mirror, half the
    /// multiply-adds) and enables streamed chunked-im2col conv capture;
    /// `Off` restores the full-GEMM path. The two are bitwise identical,
    /// so the knob never perturbs the training trajectory. Like
    /// `gemm_kernel`, it is global to the process.
    pub syrk: Option<SyrkMode>,
}

impl Default for KfacConfig {
    fn default() -> Self {
        KfacConfig {
            grad_worker_frac: 1.0,
            strategy: None,
            damping: 0.003,
            factor_decay: 0.95,
            kl_clip: Some(0.001),
            factor_update_freq: 10,
            inv_update_freq: 100,
            precision: Precision::Fp32,
            triangular_comm: false,
            precompute_outer: true,
            use_eigen: true,
            assignment: AssignmentStrategy::ComputeLpt,
            ekfac: false,
            pipelined: true,
            sharded_factors: false,
            priority_schedule: false,
            async_runtime: false,
            network: None,
            cross_iter_depth: CrossIterDepth::Fixed(1),
            runtime_stall_timeout_ms: 5000,
            eig_batch: 0,
            gemm_kernel: None,
            syrk: None,
        }
    }
}

impl KfacConfig {
    /// Start building a configuration.
    pub fn builder() -> KfacConfigBuilder {
        KfacConfigBuilder { cfg: KfacConfig::default() }
    }

    /// Validate invariants; called by [`crate::Kfac::new`].
    pub fn validate(&self) {
        assert!(self.grad_worker_frac > 0.0, "grad_worker_frac must be positive");
        assert!(self.damping > 0.0, "damping must be positive");
        assert!((0.0..1.0).contains(&self.factor_decay), "factor_decay must be in [0, 1)");
        assert!(self.factor_update_freq > 0, "factor_update_freq must be positive");
        assert!(self.inv_update_freq > 0, "inv_update_freq must be positive");
        assert!(
            self.inv_update_freq % self.factor_update_freq == 0,
            "inv_update_freq ({}) should be a multiple of factor_update_freq ({}) so \
             eigendecompositions never run on stale-by-construction factors",
            self.inv_update_freq,
            self.factor_update_freq
        );
        assert!(self.runtime_stall_timeout_ms > 0, "runtime_stall_timeout_ms must be positive");
        if let CrossIterDepth::Fixed(d) = self.cross_iter_depth {
            assert!(d >= 1, "cross_iter_depth must be at least 1");
        }
        assert!(
            self.cross_iter_depth == CrossIterDepth::Fixed(1) || self.async_runtime,
            "cross_iter_depth beyond 1 requires async_runtime(true): only the task \
             runtime can hold a retired step DAG in flight"
        );
        assert!(
            self.strategy != Some(DistStrategy::LocalOpt) || !self.sharded_factors,
            "LocalOpt never runs a factor collective, so sharded_factors(true) \
             has nothing to shard — drop one of the two settings"
        );
    }
}

/// Builder for [`KfacConfig`].
#[derive(Debug, Clone)]
pub struct KfacConfigBuilder {
    cfg: KfacConfig,
}

impl KfacConfigBuilder {
    /// Set `grad_worker_frac` (Section 3.1).
    pub fn grad_worker_frac(mut self, frac: f64) -> Self {
        self.cfg.grad_worker_frac = frac;
        self
    }

    /// Pin the distribution strategy explicitly (see
    /// [`KfacConfig::strategy`]); `LocalOpt` selects DP-KFAC local
    /// preconditioning with zero factor-collective traffic.
    pub fn strategy(mut self, strategy: DistStrategy) -> Self {
        self.cfg.strategy = Some(strategy);
        self
    }

    /// Set the Tikhonov damping γ.
    pub fn damping(mut self, damping: f32) -> Self {
        self.cfg.damping = damping;
        self
    }

    /// Set the running-average decay.
    pub fn factor_decay(mut self, decay: f32) -> Self {
        self.cfg.factor_decay = decay;
        self
    }

    /// Set (or disable, with `None`) KL-clip gradient scaling.
    pub fn kl_clip(mut self, clip: Option<f32>) -> Self {
        self.cfg.kl_clip = clip;
        self
    }

    /// Set `F_freq`, the factor update interval.
    pub fn factor_update_freq(mut self, freq: usize) -> Self {
        self.cfg.factor_update_freq = freq;
        self
    }

    /// Set `K_freq`, the eigendecomposition interval.
    pub fn inv_update_freq(mut self, freq: usize) -> Self {
        self.cfg.inv_update_freq = freq;
        self
    }

    /// Set the factor storage/communication precision.
    pub fn precision(mut self, precision: Precision) -> Self {
        self.cfg.precision = precision;
        self
    }

    /// Toggle triangular factor communication.
    pub fn triangular_comm(mut self, on: bool) -> Self {
        self.cfg.triangular_comm = on;
        self
    }

    /// Toggle the outer-product precompute optimization.
    pub fn precompute_outer(mut self, on: bool) -> Self {
        self.cfg.precompute_outer = on;
        self
    }

    /// Toggle eigendecomposition (true) vs. direct damped inverse (false).
    pub fn use_eigen(mut self, on: bool) -> Self {
        self.cfg.use_eigen = on;
        self
    }

    /// Set the eigendecomposition assignment strategy.
    pub fn assignment(mut self, strategy: AssignmentStrategy) -> Self {
        self.cfg.assignment = strategy;
        self
    }

    /// Toggle the EK-FAC eigenvalue correction.
    pub fn ekfac(mut self, on: bool) -> Self {
        self.cfg.ekfac = on;
        self
    }

    /// Toggle the stage-pipelined executor (non-blocking collectives with
    /// compute/communication overlap) vs. the serial reference executor.
    pub fn pipelined(mut self, on: bool) -> Self {
        self.cfg.pipelined = on;
        self
    }

    /// Toggle sharded factor reduction (reduce-scatter to eigendecomposition
    /// workers) vs. the dense factor allreduce.
    pub fn sharded_factors(mut self, on: bool) -> Self {
        self.cfg.sharded_factors = on;
        self
    }

    /// Toggle critical-path priority ordering of the pipelined executor's
    /// sweeps vs. fixed layer order.
    pub fn priority_schedule(mut self, on: bool) -> Self {
        self.cfg.priority_schedule = on;
        self
    }

    /// Toggle the cooperative task runtime executor (parked collectives
    /// yield the rank to runnable tasks) vs. sweep pipelining / serial.
    pub fn async_runtime(mut self, on: bool) -> Self {
        self.cfg.async_runtime = on;
        self
    }

    /// Supply the α–β network parameters of the actual backend for the
    /// priority search and runtime scheduler (must be identical on every
    /// rank; defaults to the 10 GbE reference when unset).
    pub fn network(mut self, network: ClusterNetwork) -> Self {
        self.cfg.network = Some(network);
        self
    }

    /// Set a fixed depth for the task runtime's cross-iteration scheduling
    /// window (depths beyond 1 require `async_runtime(true)`).
    pub fn cross_iter_depth(mut self, depth: usize) -> Self {
        self.cfg.cross_iter_depth = CrossIterDepth::Fixed(depth);
        self
    }

    /// Let `Kfac::new` pick the modeled-best cross-iteration window depth
    /// for the registered model, world size, configured network, and
    /// `factor_update_freq` (requires `async_runtime(true)`).
    pub fn cross_iter_depth_auto(mut self) -> Self {
        self.cfg.cross_iter_depth = CrossIterDepth::Auto;
        self
    }

    /// Set the runtime stall-watchdog timeout in milliseconds.
    pub fn runtime_stall_timeout_ms(mut self, ms: u64) -> Self {
        self.cfg.runtime_stall_timeout_ms = ms;
        self
    }

    /// Cap the batched factor-eigensolve queue workers (`0` = auto via
    /// `KAISA_EIG_BATCH` / core count, `1` = solve one factor per call).
    pub fn eig_batch(mut self, workers: usize) -> Self {
        self.cfg.eig_batch = workers;
        self
    }

    /// Pin the process-wide GEMM kernel selection at `Kfac::new` time
    /// (blocked and naive are bitwise interchangeable).
    pub fn gemm_kernel(mut self, kernel: GemmKernel) -> Self {
        self.cfg.gemm_kernel = Some(kernel);
        self
    }

    /// Pin the process-wide SYRK mode at `Kfac::new` time (`On` and `Off`
    /// are bitwise interchangeable; `Off` is the full-GEMM oracle lane).
    pub fn syrk(mut self, mode: SyrkMode) -> Self {
        self.cfg.syrk = Some(mode);
        self
    }

    /// Finish building.
    pub fn build(self) -> KfacConfig {
        self.cfg.validate();
        self.cfg
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_roundtrip() {
        let cfg = KfacConfig::builder()
            .grad_worker_frac(0.5)
            .damping(0.01)
            .factor_update_freq(5)
            .inv_update_freq(50)
            .precision(Precision::Fp16)
            .triangular_comm(true)
            .build();
        assert_eq!(cfg.grad_worker_frac, 0.5);
        assert_eq!(cfg.damping, 0.01);
        assert_eq!(cfg.inv_update_freq, 50);
        assert!(cfg.triangular_comm);
        assert_eq!(cfg.precision, Precision::Fp16);
    }

    #[test]
    #[should_panic(expected = "multiple")]
    fn misaligned_frequencies_rejected() {
        let _ = KfacConfig::builder().factor_update_freq(7).inv_update_freq(100).build();
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_frac_rejected() {
        let _ = KfacConfig::builder().grad_worker_frac(0.0).build();
    }

    #[test]
    #[should_panic(expected = "at least 1")]
    fn zero_depth_rejected() {
        let _ = KfacConfig::builder().async_runtime(true).cross_iter_depth(0).build();
    }

    #[test]
    #[should_panic(expected = "requires async_runtime")]
    fn deep_window_requires_the_task_runtime() {
        let _ = KfacConfig::builder().cross_iter_depth(3).build();
    }

    #[test]
    #[should_panic(expected = "nothing to shard")]
    fn local_opt_rejects_sharded_factors() {
        let _ =
            KfacConfig::builder().strategy(DistStrategy::LocalOpt).sharded_factors(true).build();
    }

    #[test]
    fn strategy_builder_roundtrip() {
        let cfg = KfacConfig::builder().strategy(DistStrategy::LocalOpt).build();
        assert_eq!(cfg.strategy, Some(DistStrategy::LocalOpt));
        assert_eq!(KfacConfig::default().strategy, None);
    }

    #[test]
    fn kernel_knobs_roundtrip() {
        let cfg = KfacConfig::builder()
            .eig_batch(4)
            .gemm_kernel(GemmKernel::Naive)
            .syrk(SyrkMode::Off)
            .build();
        assert_eq!(cfg.eig_batch, 4);
        assert_eq!(cfg.gemm_kernel, Some(GemmKernel::Naive));
        assert_eq!(cfg.syrk, Some(SyrkMode::Off));
        let default = KfacConfig::default();
        assert_eq!(default.eig_batch, 0);
        assert_eq!(default.gemm_kernel, None);
        assert_eq!(default.syrk, None);
    }

    #[test]
    fn depth_builder_roundtrip() {
        let cfg = KfacConfig::builder().async_runtime(true).cross_iter_depth(3).build();
        assert_eq!(cfg.cross_iter_depth, CrossIterDepth::Fixed(3));
        let auto = KfacConfig::builder().async_runtime(true).cross_iter_depth_auto().build();
        assert_eq!(auto.cross_iter_depth, CrossIterDepth::Auto);
    }
}
