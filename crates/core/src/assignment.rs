//! Worker placement: gradient-worker sets, broadcast groups, and greedy
//! (longest-processing-time) eigendecomposition distribution.
//!
//! Every rank computes the identical plan from the layer dimension list, so
//! no coordination round is needed — the same trick `kfac_pytorch` uses.

use crate::gradient_worker_count;

/// Cost model for distributing eigendecomposition jobs (Section 3.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum AssignmentStrategy {
    /// Longest-processing-time with O(N³) per-factor cost — optimizes the
    /// eigendecomposition makespan.
    #[default]
    ComputeLpt,
    /// LPT with O(N²) cost (the factor's memory footprint) — optimizes peak
    /// per-rank memory.
    MemoryLpt,
    /// Round-robin by layer index (the naive baseline for the ablation).
    RoundRobin,
}

/// Placement decisions for one layer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LayerAssignment {
    /// Layer index (order of `Model::kfac_layers`).
    pub layer: usize,
    /// Ranks that cache this layer's eigendecompositions and precondition
    /// its gradient. Sorted.
    pub gradient_workers: Vec<usize>,
    /// Rank that eigendecomposes the `A` factor (a gradient worker).
    pub a_worker: usize,
    /// Rank that eigendecomposes the `G` factor and computes the eigenvalue
    /// outer product (a gradient worker).
    pub g_worker: usize,
    /// Preconditioned-gradient broadcast groups: `groups[k][0]` is the
    /// gradient worker acting as root; the rest are its receivers. Disjoint
    /// across `k`, so all broadcasts can run concurrently (Section 3.1).
    pub bcast_groups: Vec<Vec<usize>>,
}

impl LayerAssignment {
    /// True if `rank` preconditions this layer's gradient.
    pub fn is_gradient_worker(&self, rank: usize) -> bool {
        self.gradient_workers.binary_search(&rank).is_ok()
    }

    /// The broadcast group containing `rank`, if any.
    pub fn bcast_group_of(&self, rank: usize) -> Option<&Vec<usize>> {
        self.bcast_groups.iter().find(|g| g.contains(&rank))
    }

    /// The sorted, deduplicated `{a_worker, g_worker}` set — the ranks that
    /// own shards of this layer's factor payload under sharded reduction,
    /// and the participant group of a `FactorGather` allgather.
    pub fn eig_worker_group(&self) -> Vec<usize> {
        let mut g = vec![self.a_worker, self.g_worker];
        g.sort_unstable();
        g.dedup();
        g
    }
}

/// The full placement plan for a model.
#[derive(Debug, Clone)]
pub struct WorkPlan {
    /// Per-layer assignments, in layer order.
    pub layers: Vec<LayerAssignment>,
    /// World size the plan was computed for.
    pub world: usize,
    /// Gradient workers per layer.
    pub workers_per_layer: usize,
    /// Final per-rank eigendecomposition load (model-cost units), for
    /// inspecting balance.
    pub rank_loads: Vec<f64>,
}

impl WorkPlan {
    /// Makespan of the eigendecomposition assignment (max rank load).
    pub fn makespan(&self) -> f64 {
        self.rank_loads.iter().cloned().fold(0.0, f64::max)
    }

    /// Sum of all job costs (lower bound on `world * makespan`).
    pub fn total_load(&self) -> f64 {
        self.rank_loads.iter().sum()
    }
}

/// A factor eigendecomposition job for the LPT scheduler.
#[derive(Debug, Clone, Copy)]
struct Job {
    layer: usize,
    /// true = A factor, false = G factor.
    is_a: bool,
    cost: f64,
}

/// Compute the placement plan.
///
/// `layer_dims[i] = (a_dim, g_dim)` for layer `i`. The plan is a pure
/// function of its inputs, so all ranks agree without communication.
pub fn plan_assignments(
    layer_dims: &[(usize, usize)],
    world: usize,
    grad_worker_frac: f64,
    strategy: AssignmentStrategy,
) -> WorkPlan {
    plan_assignments_with(layer_dims, world, grad_worker_frac, strategy, false)
}

/// [`plan_assignments`] with an explicit shard-aware co-location bias.
///
/// With `colocate` set, LPT load *ties* break toward the rank that already
/// holds the layer's other factor instead of the lowest rank id. Under
/// sharded factor reduction a split-worker layer pays extra traffic (the
/// `v_A` pair shuttle, and the direct-inverse fallback's worker-group
/// regather), so when two candidate ranks are equally loaded, putting both
/// of a layer's eigendecomposition jobs on one rank is strictly cheaper.
/// Only exact ties change, so the eigendecomposition makespan is untouched
/// and the plan stays a pure function of its inputs (all ranks agree).
pub fn plan_assignments_with(
    layer_dims: &[(usize, usize)],
    world: usize,
    grad_worker_frac: f64,
    strategy: AssignmentStrategy,
    colocate: bool,
) -> WorkPlan {
    assert!(world > 0, "world must be positive");
    let workers_per_layer = gradient_worker_count(grad_worker_frac, world);

    // 1. Gradient-worker sets: contiguous windows rotated by layer so layers
    //    spread over ranks (layer i starts at offset i*workers mod world).
    let mut layers: Vec<LayerAssignment> = Vec::with_capacity(layer_dims.len());
    for (i, _) in layer_dims.iter().enumerate() {
        let offset = (i * workers_per_layer) % world;
        let mut gradient_workers: Vec<usize> =
            (0..workers_per_layer).map(|j| (offset + j) % world).collect();
        gradient_workers.sort_unstable();

        // 2. Receiver partition: round-robin receivers over gradient workers;
        //    each non-empty group is [root, receivers...].
        let receivers: Vec<usize> =
            (0..world).filter(|r| gradient_workers.binary_search(r).is_err()).collect();
        let mut groups: Vec<Vec<usize>> = gradient_workers.iter().map(|&w| vec![w]).collect();
        for (j, &r) in receivers.iter().enumerate() {
            groups[j % workers_per_layer].push(r);
        }
        let bcast_groups: Vec<Vec<usize>> = groups.into_iter().filter(|g| g.len() > 1).collect();

        layers.push(LayerAssignment {
            layer: i,
            gradient_workers,
            a_worker: 0, // placed below
            g_worker: 0,
            bcast_groups,
        });
    }

    // 3. Eigendecomposition jobs → ranks, restricted to each layer's
    //    gradient workers, greedy LPT on the configured cost model.
    let mut rank_loads = vec![0.0f64; world];
    let mut jobs: Vec<Job> = layer_dims
        .iter()
        .enumerate()
        .flat_map(|(i, &(a_dim, g_dim))| {
            let cost = |n: usize| match strategy {
                AssignmentStrategy::ComputeLpt => (n as f64).powi(3),
                AssignmentStrategy::MemoryLpt => (n as f64).powi(2),
                AssignmentStrategy::RoundRobin => 0.0,
            };
            [
                Job { layer: i, is_a: true, cost: cost(a_dim) },
                Job { layer: i, is_a: false, cost: cost(g_dim) },
            ]
        })
        .collect();

    match strategy {
        AssignmentStrategy::RoundRobin => {
            for (k, job) in jobs.iter().enumerate() {
                let allowed = &layers[job.layer].gradient_workers;
                let rank = allowed[k % allowed.len()];
                let dims = layer_dims[job.layer];
                let n = if job.is_a { dims.0 } else { dims.1 };
                rank_loads[rank] += (n as f64).powi(3);
                if job.is_a {
                    layers[job.layer].a_worker = rank;
                } else {
                    layers[job.layer].g_worker = rank;
                }
            }
        }
        _ => {
            // LPT: sort jobs by decreasing cost, assign each to the
            // least-loaded allowed rank (ties broken by rank id for
            // determinism, or — with `colocate` — by the sibling factor's
            // rank when it is among the least loaded).
            jobs.sort_by(|a, b| {
                b.cost
                    .partial_cmp(&a.cost)
                    .unwrap_or(std::cmp::Ordering::Equal)
                    .then(a.layer.cmp(&b.layer))
                    .then(a.is_a.cmp(&b.is_a))
            });
            let mut placed: Vec<[Option<usize>; 2]> = vec![[None, None]; layer_dims.len()];
            for job in &jobs {
                let allowed = &layers[job.layer].gradient_workers;
                let min_load = allowed.iter().map(|&r| rank_loads[r]).fold(f64::INFINITY, f64::min);
                let sibling = placed[job.layer][usize::from(job.is_a)];
                let rank = match sibling {
                    Some(s) if colocate && rank_loads[s] == min_load => s,
                    _ => *allowed
                        .iter()
                        .find(|&&r| rank_loads[r] == min_load)
                        .expect("gradient worker set is non-empty"),
                };
                rank_loads[rank] += job.cost;
                placed[job.layer][usize::from(!job.is_a)] = Some(rank);
                if job.is_a {
                    layers[job.layer].a_worker = rank;
                } else {
                    layers[job.layer].g_worker = rank;
                }
            }
        }
    }

    WorkPlan { layers, world, workers_per_layer, rank_loads }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dims(n: usize) -> Vec<(usize, usize)> {
        (0..n).map(|i| (16 + 8 * (i % 5), 8 + 4 * (i % 3))).collect()
    }

    #[test]
    fn comm_opt_has_no_bcast_groups() {
        let plan = plan_assignments(&dims(6), 4, 1.0, AssignmentStrategy::ComputeLpt);
        for layer in &plan.layers {
            assert_eq!(layer.gradient_workers, vec![0, 1, 2, 3]);
            assert!(layer.bcast_groups.is_empty(), "COMM-OPT never broadcasts gradients");
        }
    }

    #[test]
    fn mem_opt_has_one_worker_and_world_group() {
        let plan = plan_assignments(&dims(6), 4, 0.25, AssignmentStrategy::ComputeLpt);
        for layer in &plan.layers {
            assert_eq!(layer.gradient_workers.len(), 1);
            assert_eq!(layer.bcast_groups.len(), 1);
            assert_eq!(layer.bcast_groups[0].len(), 4, "one broadcast to everyone");
            // Eigen workers coincide with the single gradient worker.
            assert_eq!(layer.a_worker, layer.gradient_workers[0]);
            assert_eq!(layer.g_worker, layer.gradient_workers[0]);
        }
    }

    #[test]
    fn hybrid_groups_are_disjoint_and_cover() {
        let plan = plan_assignments(&dims(5), 8, 0.5, AssignmentStrategy::ComputeLpt);
        for layer in &plan.layers {
            assert_eq!(layer.gradient_workers.len(), 4);
            let mut seen = std::collections::HashSet::new();
            for group in &layer.bcast_groups {
                assert!(layer.gradient_workers.contains(&group[0]), "root is a worker");
                for &r in group {
                    assert!(seen.insert(r), "rank {r} in two groups");
                }
            }
            // Receivers covered: groups hold the 4 receivers + their roots.
            let covered: usize = layer.bcast_groups.iter().map(|g| g.len() - 1).sum();
            assert_eq!(covered, 4);
        }
    }

    #[test]
    fn eig_workers_are_gradient_workers() {
        for frac in [0.125, 0.25, 0.5, 1.0] {
            let plan = plan_assignments(&dims(9), 8, frac, AssignmentStrategy::ComputeLpt);
            for layer in &plan.layers {
                assert!(layer.is_gradient_worker(layer.a_worker));
                assert!(layer.is_gradient_worker(layer.g_worker));
            }
        }
    }

    #[test]
    fn lpt_bound_holds() {
        // Graham's bound: LPT makespan ≤ (4/3 - 1/3m)·OPT ≤ 3/2·OPT, and
        // OPT ≥ max(total/m, largest job). Check against the lower bound.
        let layer_dims: Vec<(usize, usize)> =
            (0..40).map(|i| (10 + 17 * (i % 7), 5 + 11 * (i % 4))).collect();
        let world = 8;
        let plan = plan_assignments(&layer_dims, world, 1.0, AssignmentStrategy::ComputeLpt);
        let total = plan.total_load();
        let largest = layer_dims
            .iter()
            .flat_map(|&(a, g)| [a, g])
            .map(|n| (n as f64).powi(3))
            .fold(0.0, f64::max);
        let lower_bound = (total / world as f64).max(largest);
        assert!(
            plan.makespan() <= 1.5 * lower_bound + 1e-6,
            "makespan {} vs 3/2 lower bound {}",
            plan.makespan(),
            1.5 * lower_bound
        );
    }

    #[test]
    fn lpt_beats_round_robin_on_skewed_jobs() {
        // One huge layer among many small ones: round-robin can stack badly.
        let mut layer_dims = vec![(512, 256)];
        layer_dims.extend(std::iter::repeat((16, 8)).take(15));
        let lpt = plan_assignments(&layer_dims, 4, 1.0, AssignmentStrategy::ComputeLpt);
        let rr = plan_assignments(&layer_dims, 4, 1.0, AssignmentStrategy::RoundRobin);
        assert!(lpt.makespan() <= rr.makespan() + 1e-6);
    }

    #[test]
    fn plan_is_deterministic() {
        let a = plan_assignments(&dims(12), 8, 0.5, AssignmentStrategy::ComputeLpt);
        let b = plan_assignments(&dims(12), 8, 0.5, AssignmentStrategy::ComputeLpt);
        assert_eq!(a.layers, b.layers);
    }

    #[test]
    fn layers_rotate_over_ranks() {
        // With frac < 1, different layers should use different worker sets.
        let plan = plan_assignments(&dims(4), 8, 0.25, AssignmentStrategy::ComputeLpt);
        let sets: std::collections::HashSet<Vec<usize>> =
            plan.layers.iter().map(|l| l.gradient_workers.clone()).collect();
        assert!(sets.len() > 1, "worker sets should rotate across layers");
    }

    #[test]
    fn world_of_one() {
        let plan = plan_assignments(&dims(3), 1, 1.0, AssignmentStrategy::ComputeLpt);
        for layer in &plan.layers {
            assert_eq!(layer.gradient_workers, vec![0]);
            assert!(layer.bcast_groups.is_empty());
        }
    }

    #[test]
    fn colocation_bias_joins_workers_without_hurting_makespan() {
        // Two layers whose G jobs tie the LPT load exactly when their A jobs
        // are already down: the default tie-break (lowest rank id) splits
        // both layers across ranks; the colocation bias joins each layer on
        // one rank at the identical makespan.
        let layer_dims = vec![(20, 4), (20, 20)];
        let split =
            plan_assignments_with(&layer_dims, 2, 1.0, AssignmentStrategy::ComputeLpt, false);
        let joined =
            plan_assignments_with(&layer_dims, 2, 1.0, AssignmentStrategy::ComputeLpt, true);
        assert!(
            split.layers.iter().any(|l| l.a_worker != l.g_worker),
            "premise: default tie-break splits at least one layer"
        );
        for layer in &joined.layers {
            assert_eq!(layer.a_worker, layer.g_worker, "layer {} not co-located", layer.layer);
        }
        assert_eq!(split.makespan(), joined.makespan(), "ties must not change the makespan");
    }

    #[test]
    fn colocation_never_beats_min_load() {
        // The bias only fires on exact ties: when the sibling's rank is
        // strictly more loaded, the job still goes to the least-loaded rank.
        let layer_dims = vec![(30, 10), (20, 20)];
        let plan = plan_assignments_with(&layer_dims, 2, 1.0, AssignmentStrategy::ComputeLpt, true);
        let naive = plan_assignments(&layer_dims, 2, 1.0, AssignmentStrategy::ComputeLpt);
        assert!(plan.makespan() <= naive.makespan() + 1e-9);
    }

    #[test]
    fn memory_lpt_differs_from_compute_lpt_when_it_should() {
        // Compute cost n³ vs memory cost n² rank jobs differently for mixed
        // shapes; both must still produce valid plans.
        let layer_dims = vec![(100, 10), (10, 100), (50, 50), (80, 20)];
        let a = plan_assignments(&layer_dims, 4, 1.0, AssignmentStrategy::ComputeLpt);
        let b = plan_assignments(&layer_dims, 4, 1.0, AssignmentStrategy::MemoryLpt);
        for plan in [&a, &b] {
            for layer in &plan.layers {
                assert!(layer.a_worker < 4 && layer.g_worker < 4);
            }
        }
    }
}
