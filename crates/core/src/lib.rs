//! # kaisa-core
//!
//! The paper's primary contribution: **KAISA**, an adaptable distributed
//! K-FAC second-order preconditioner.
//!
//! K-FAC approximates the Fisher information matrix as a layer-block-diagonal
//! matrix of Kronecker products `F̂ᵢ = Aᵢ₋₁ ⊗ Gᵢ` (Eq. 9) and preconditions
//! each layer's gradient through the eigendecompositions of the factors
//! (Eq. 15–17):
//!
//! ```text
//! V₁ = Q_Gᵀ ∇L Q_A
//! V₂ = V₁ / (v_G v_Aᵀ + γ)
//! precond = Q_G V₂ Q_Aᵀ
//! ```
//!
//! The distributed design is parameterized by **`grad_worker_frac`**:
//! each layer gets `max(1, frac · world)` *gradient workers* that cache the
//! layer's eigendecompositions and precondition its gradient locally; the
//! remaining *gradient receivers* get the preconditioned gradient by
//! broadcast from their assigned worker, with the disjoint broadcast groups
//! running concurrently (Section 3.1):
//!
//! * `frac = 1/world` → **MEM-OPT** (Osawa et al.): one worker per layer,
//!   minimum memory, a world-wide broadcast every iteration.
//! * `frac = 1` → **COMM-OPT** (Pauloski et al.): every rank caches every
//!   layer, no per-iteration broadcast, maximum memory.
//! * anything between → **HYBRID-OPT**, the paper's new tunable middle.
//!
//! Also implemented from the paper: greedy longest-processing-time factor
//! distribution (Section 3.2), half-precision factor storage/communication
//! (Section 3.3), gradient-accumulation-friendly factor capture (Section
//! 4.2), triangular factor communication (Section 4.3), and the eigenvalue
//! outer-product precompute that cut preconditioning time by up to 53%
//! (Section 4.4).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod assignment;
mod checkpoint;
mod config;
mod memory;
pub mod pipeline;
mod preconditioner;
pub mod runtime;
mod state;
pub mod strategy;
mod timing;

pub use assignment::{
    plan_assignments, plan_assignments_with, AssignmentStrategy, LayerAssignment, WorkPlan,
};
pub use checkpoint::{KfacCheckpoint, LayerCheckpoint};
pub use config::{CrossIterDepth, KfacConfig, KfacConfigBuilder};
pub use memory::{MemoryBudget, MemoryCategory, MemoryMeter};
pub use pipeline::{
    priority_sweep_order, ComputeRates, PipelineStage, StepModel, StepModelOptions, TaskGraph,
};
pub use preconditioner::Kfac;
pub use runtime::{
    auto_cross_iter_depth, modeled_cross_iter_makespans, modeled_depth_makespans, CrossIterModel,
    CrossStage, OverlapMode, WindowSpec,
};
pub use state::{KfacLayerState, PackedFactor};
pub use strategy::{
    auto_strategy, effective_worker_frac, modeled_strategy_makespans, FactorReduction, StrategyPlan,
};
pub use timing::{Stage, StageTimes, KFAC_STAGES};

/// Distribution strategy implied by a `grad_worker_frac` (Section 3.1),
/// plus the DP-KFAC local-preconditioning point on the same tradeoff curve.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DistStrategy {
    /// One gradient worker per layer (`frac == 1/world`).
    MemOpt,
    /// Every rank is a gradient worker (`frac == 1`).
    CommOpt,
    /// A proper subset of ranks per layer.
    HybridOpt,
    /// DP-KFAC (Zhang et al.): one *owner* per layer folds and decomposes
    /// its **rank-local** factor statistics — no factor allreduce, no
    /// reduce-scatter, no regather. Zero factor-collective traffic at the
    /// cost of curvature freshness (each owner's preconditioner reflects
    /// only the data its own rank saw). Never inferred from worker counts;
    /// selected explicitly via `KfacConfig::strategy`.
    LocalOpt,
}

impl DistStrategy {
    /// Classify a gradient-worker count for a given world size.
    ///
    /// The rule, in precedence order:
    ///
    /// 1. `workers >= world` → [`DistStrategy::CommOpt`] — "every rank is a
    ///    worker" wins, so a degenerate single-process world (`workers == 1,
    ///    world == 1`) classifies as COMM-OPT, *not* MEM-OPT: there is no
    ///    broadcast and every rank caches every layer, which is COMM-OPT's
    ///    defining behavior.
    /// 2. `workers <= 1` (with `world > 1`) → [`DistStrategy::MemOpt`].
    /// 3. otherwise → [`DistStrategy::HybridOpt`].
    ///
    /// [`DistStrategy::LocalOpt`] is never returned: DP-KFAC shares
    /// MEM-OPT's one-worker grid but changes the *algorithm* (local
    /// curvature), so it must be requested explicitly through
    /// `KfacConfig::strategy`, never inferred from a worker count.
    pub fn from_worker_count(workers: usize, world: usize) -> DistStrategy {
        // A worker grid is never empty (`gradient_worker_count` clamps to
        // 1); treat a raw 0 as that clamped 1 so degenerate inputs classify
        // the same as the grids they actually produce.
        let workers = workers.max(1);
        if workers >= world {
            DistStrategy::CommOpt
        } else if workers <= 1 {
            DistStrategy::MemOpt
        } else {
            DistStrategy::HybridOpt
        }
    }

    /// Display name used in figures.
    pub fn name(self) -> &'static str {
        match self {
            DistStrategy::MemOpt => "MEM-OPT",
            DistStrategy::CommOpt => "COMM-OPT",
            DistStrategy::HybridOpt => "HYBRID-OPT",
            DistStrategy::LocalOpt => "LOCAL-OPT",
        }
    }
}

impl std::fmt::Display for DistStrategy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

impl std::str::FromStr for DistStrategy {
    type Err = String;

    /// Parse a strategy from its display name (`"MEM-OPT"`, `"COMM-OPT"`,
    /// `"HYBRID-OPT"`, `"LOCAL-OPT"`), case-insensitively and with `_` or
    /// nothing accepted in place of the hyphen — so `Display` output always
    /// round-trips and CLI flags stay forgiving.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let canon: String =
            s.chars().filter(|c| *c != '-' && *c != '_').collect::<String>().to_ascii_lowercase();
        match canon.as_str() {
            "memopt" | "mem" => Ok(DistStrategy::MemOpt),
            "commopt" | "comm" => Ok(DistStrategy::CommOpt),
            "hybridopt" | "hybrid" => Ok(DistStrategy::HybridOpt),
            "localopt" | "local" => Ok(DistStrategy::LocalOpt),
            _ => Err(format!(
                "unknown strategy {s:?} (expected MEM-OPT, COMM-OPT, HYBRID-OPT, or LOCAL-OPT)"
            )),
        }
    }
}

/// Number of gradient workers for a fraction and world size:
/// `max(1, round(frac * world))`, clamped to the world (paper Section 3.1).
pub fn gradient_worker_count(frac: f64, world: usize) -> usize {
    ((frac * world as f64).round() as usize).clamp(1, world)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn worker_count_special_cases() {
        assert_eq!(gradient_worker_count(1.0, 64), 64); // COMM-OPT
        assert_eq!(gradient_worker_count(1.0 / 64.0, 64), 1); // MEM-OPT
        assert_eq!(gradient_worker_count(0.5, 64), 32); // HYBRID
        assert_eq!(gradient_worker_count(0.0001, 64), 1); // floor at 1
        assert_eq!(gradient_worker_count(5.0, 8), 8); // clamp at world
        assert_eq!(gradient_worker_count(1.0, 1), 1);
    }

    #[test]
    fn strategy_classification() {
        assert_eq!(DistStrategy::from_worker_count(1, 8), DistStrategy::MemOpt);
        assert_eq!(DistStrategy::from_worker_count(8, 8), DistStrategy::CommOpt);
        assert_eq!(DistStrategy::from_worker_count(4, 8), DistStrategy::HybridOpt);
        // Degenerate single-process world is COMM-OPT (everyone is a worker).
        assert_eq!(DistStrategy::from_worker_count(1, 1), DistStrategy::CommOpt);
    }

    #[test]
    fn strategy_classification_degenerate_edges() {
        // The documented precedence: "every rank is a worker" (rule 1) beats
        // "one worker" (rule 2) wherever they overlap.
        // World 1: grid size 1 — always COMM-OPT, never MEM-OPT.
        assert_eq!(DistStrategy::from_worker_count(1, 1), DistStrategy::CommOpt);
        assert_eq!(DistStrategy::from_worker_count(0, 1), DistStrategy::CommOpt);
        assert_eq!(DistStrategy::from_worker_count(2, 1), DistStrategy::CommOpt);
        // World 2: one worker is a genuine proper subset → MEM-OPT; two is
        // everyone → COMM-OPT; there is no room for HYBRID at world 2.
        assert_eq!(DistStrategy::from_worker_count(1, 2), DistStrategy::MemOpt);
        assert_eq!(DistStrategy::from_worker_count(2, 2), DistStrategy::CommOpt);
        // Grid size 1 at larger worlds stays MEM-OPT (workers == 0 clamps).
        assert_eq!(DistStrategy::from_worker_count(0, 8), DistStrategy::MemOpt);
        // LocalOpt is never produced by classification at any grid size.
        for workers in 0..=4 {
            for world in 1..=4 {
                assert_ne!(DistStrategy::from_worker_count(workers, world), DistStrategy::LocalOpt);
            }
        }
    }

    #[test]
    fn strategy_names_round_trip_through_fromstr() {
        let all = [
            DistStrategy::MemOpt,
            DistStrategy::CommOpt,
            DistStrategy::HybridOpt,
            DistStrategy::LocalOpt,
        ];
        for s in all {
            // Display → FromStr is the identity.
            assert_eq!(s.name().parse::<DistStrategy>().unwrap(), s);
            assert_eq!(s.to_string().parse::<DistStrategy>().unwrap(), s);
            // Forgiving spellings parse too.
            assert_eq!(s.name().to_lowercase().parse::<DistStrategy>().unwrap(), s);
            assert_eq!(s.name().replace('-', "_").parse::<DistStrategy>().unwrap(), s);
        }
        assert_eq!("local".parse::<DistStrategy>().unwrap(), DistStrategy::LocalOpt);
        assert!("fastest".parse::<DistStrategy>().is_err());
    }
}
