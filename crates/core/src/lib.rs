//! # kaisa-core
//!
//! The paper's primary contribution: **KAISA**, an adaptable distributed
//! K-FAC second-order preconditioner.
//!
//! K-FAC approximates the Fisher information matrix as a layer-block-diagonal
//! matrix of Kronecker products `F̂ᵢ = Aᵢ₋₁ ⊗ Gᵢ` (Eq. 9) and preconditions
//! each layer's gradient through the eigendecompositions of the factors
//! (Eq. 15–17):
//!
//! ```text
//! V₁ = Q_Gᵀ ∇L Q_A
//! V₂ = V₁ / (v_G v_Aᵀ + γ)
//! precond = Q_G V₂ Q_Aᵀ
//! ```
//!
//! The distributed design is parameterized by **`grad_worker_frac`**:
//! each layer gets `max(1, frac · world)` *gradient workers* that cache the
//! layer's eigendecompositions and precondition its gradient locally; the
//! remaining *gradient receivers* get the preconditioned gradient by
//! broadcast from their assigned worker, with the disjoint broadcast groups
//! running concurrently (Section 3.1):
//!
//! * `frac = 1/world` → **MEM-OPT** (Osawa et al.): one worker per layer,
//!   minimum memory, a world-wide broadcast every iteration.
//! * `frac = 1` → **COMM-OPT** (Pauloski et al.): every rank caches every
//!   layer, no per-iteration broadcast, maximum memory.
//! * anything between → **HYBRID-OPT**, the paper's new tunable middle.
//!
//! Also implemented from the paper: greedy longest-processing-time factor
//! distribution (Section 3.2), half-precision factor storage/communication
//! (Section 3.3), gradient-accumulation-friendly factor capture (Section
//! 4.2), triangular factor communication (Section 4.3), and the eigenvalue
//! outer-product precompute that cut preconditioning time by up to 53%
//! (Section 4.4).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod assignment;
mod config;
mod memory;
pub mod pipeline;
mod preconditioner;
pub mod runtime;
mod state;
mod timing;

pub use assignment::{
    plan_assignments, plan_assignments_with, AssignmentStrategy, LayerAssignment, WorkPlan,
};
pub use config::{CrossIterDepth, KfacConfig, KfacConfigBuilder};
pub use memory::{MemoryCategory, MemoryMeter};
pub use pipeline::{
    priority_sweep_order, ComputeRates, PipelineStage, StepModel, StepModelOptions, TaskGraph,
};
pub use preconditioner::Kfac;
pub use runtime::{
    auto_cross_iter_depth, modeled_cross_iter_makespans, modeled_depth_makespans, CrossIterModel,
    CrossStage, OverlapMode, WindowSpec,
};
pub use state::{KfacLayerState, PackedFactor};
pub use timing::{Stage, StageTimes, KFAC_STAGES};

/// Distribution strategy implied by a `grad_worker_frac` (Section 3.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DistStrategy {
    /// One gradient worker per layer (`frac == 1/world`).
    MemOpt,
    /// Every rank is a gradient worker (`frac == 1`).
    CommOpt,
    /// A proper subset of ranks per layer.
    HybridOpt,
}

impl DistStrategy {
    /// Classify a gradient-worker count for a given world size.
    pub fn from_worker_count(workers: usize, world: usize) -> DistStrategy {
        if workers >= world {
            DistStrategy::CommOpt
        } else if workers <= 1 {
            DistStrategy::MemOpt
        } else {
            DistStrategy::HybridOpt
        }
    }

    /// Display name used in figures.
    pub fn name(self) -> &'static str {
        match self {
            DistStrategy::MemOpt => "MEM-OPT",
            DistStrategy::CommOpt => "COMM-OPT",
            DistStrategy::HybridOpt => "HYBRID-OPT",
        }
    }
}

impl std::fmt::Display for DistStrategy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Number of gradient workers for a fraction and world size:
/// `max(1, round(frac * world))`, clamped to the world (paper Section 3.1).
pub fn gradient_worker_count(frac: f64, world: usize) -> usize {
    ((frac * world as f64).round() as usize).clamp(1, world)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn worker_count_special_cases() {
        assert_eq!(gradient_worker_count(1.0, 64), 64); // COMM-OPT
        assert_eq!(gradient_worker_count(1.0 / 64.0, 64), 1); // MEM-OPT
        assert_eq!(gradient_worker_count(0.5, 64), 32); // HYBRID
        assert_eq!(gradient_worker_count(0.0001, 64), 1); // floor at 1
        assert_eq!(gradient_worker_count(5.0, 8), 8); // clamp at world
        assert_eq!(gradient_worker_count(1.0, 1), 1);
    }

    #[test]
    fn strategy_classification() {
        assert_eq!(DistStrategy::from_worker_count(1, 8), DistStrategy::MemOpt);
        assert_eq!(DistStrategy::from_worker_count(8, 8), DistStrategy::CommOpt);
        assert_eq!(DistStrategy::from_worker_count(4, 8), DistStrategy::HybridOpt);
        // Degenerate single-process world is COMM-OPT (everyone is a worker).
        assert_eq!(DistStrategy::from_worker_count(1, 1), DistStrategy::CommOpt);
    }
}
