//! The first-class distribution-strategy layer.
//!
//! Historically each executor re-derived "what does this strategy mean for
//! my stage?" from scattered config bits (`sharded_factors`, `use_eigen`,
//! worker counts). This module centralizes that decision into a
//! [`StrategyPlan`] computed once in `Kfac::new` and consumed uniformly by
//! the serial, sweep-pipelined, and task-runtime executors, the stage-graph
//! builder ([`crate::StepModelOptions`]), and the memory meter — so adding
//! a strategy (like DP-KFAC's `LocalOpt`) is a plan change, not an
//! every-executor change.
//!
//! It also hosts [`auto_strategy`]: a pure-function dispatcher that picks
//! the modeled-fastest strategy from the calibrated α–β cost model, under
//! the same all-ranks-agree contract as
//! [`crate::runtime::auto_cross_iter_depth`].

use kaisa_comm::{ClusterNetwork, CollectiveCostModel};

use crate::assignment::{plan_assignments_with, LayerAssignment, WorkPlan};
use crate::config::KfacConfig;
use crate::pipeline::ComputeRates;
use crate::state::factor_payload_len;
use crate::{AssignmentStrategy, DistStrategy};

/// How a layer's freshly captured factor statistics become (averaged)
/// running-factor folds — the factor-phase axis of the strategy space.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FactorReduction {
    /// Allreduce the packed payload over the world; every rank folds the
    /// world-averaged factors into dense running averages (the reference
    /// path, `FactorComm` tag).
    DenseAllreduce,
    /// Reduce-scatter the packed payload so each section lands only on its
    /// eigendecomposition worker, which folds it shard-resident
    /// (`FactorReduce` tag, plus `FactorGather` regathers for the
    /// direct-inverse fallback's split-worker layers).
    ShardedReduceScatter,
    /// No factor collective at all (DP-KFAC / `LocalOpt`): the owning rank
    /// folds its *local* batch-mean statistics; other ranks discard theirs.
    LocalNone,
}

/// The resolved per-run distribution plan: which strategy is in effect and
/// what every stage of the step must do about communication. Computed once
/// in `Kfac::new` (a pure function of config + placement, identical on
/// every rank) and consulted by all three executors, so no executor body
/// branches on raw strategy/config flags.
#[derive(Debug, Clone)]
pub struct StrategyPlan {
    /// The strategy in effect (explicit `KfacConfig::strategy`, or
    /// classified from the realized gradient-worker count).
    pub strategy: DistStrategy,
    /// Factor-phase reduction mode.
    pub reduction: FactorReduction,
    /// Whether split-worker layers must regather the averaged payload
    /// within the eigendecomposition worker group (the direct-inverse
    /// fallback consumes both factors on the A worker). Only meaningful
    /// under [`FactorReduction::ShardedReduceScatter`].
    pub regather_split_layers: bool,
    /// Whether decomposition results broadcast to gradient workers at all
    /// (false when every layer has exactly one gradient worker).
    pub eig_bcast: bool,
    /// Whether per-step preconditioned-gradient broadcasts exist (false
    /// under COMM-OPT, where every rank preconditions every layer).
    pub grad_bcast: bool,
    /// Gradient workers per layer under this plan.
    pub workers_per_layer: usize,
    /// World size the plan was computed for.
    pub world: usize,
}

impl StrategyPlan {
    /// Resolve the strategy plan for a config and its realized placement.
    pub fn resolve(cfg: &KfacConfig, plan: &WorkPlan) -> StrategyPlan {
        let workers = plan.workers_per_layer;
        let world = plan.world;
        let strategy = match cfg.strategy {
            Some(DistStrategy::LocalOpt) => DistStrategy::LocalOpt,
            // Explicit MEM/HYBRID/COMM requests resolve through the same
            // worker-count classification as frac-derived runs, so the
            // reported strategy always matches the realized placement.
            _ => DistStrategy::from_worker_count(workers, world),
        };
        let reduction = if strategy == DistStrategy::LocalOpt {
            FactorReduction::LocalNone
        } else if cfg.sharded_factors {
            FactorReduction::ShardedReduceScatter
        } else {
            FactorReduction::DenseAllreduce
        };
        StrategyPlan {
            strategy,
            reduction,
            regather_split_layers: reduction == FactorReduction::ShardedReduceScatter
                && !cfg.use_eigen,
            eig_bcast: workers > 1,
            grad_bcast: workers < world,
            workers_per_layer: workers,
            world,
        }
    }

    /// True when this layer's averaged payload must be regathered within
    /// its eigendecomposition worker group after the reduce-scatter.
    pub fn needs_regather(&self, asn: &LayerAssignment) -> bool {
        self.regather_split_layers && asn.a_worker != asn.g_worker
    }

    /// True when no factor collective runs at all (DP-KFAC local folds).
    pub fn local_factors(&self) -> bool {
        self.reduction == FactorReduction::LocalNone
    }
}

/// The effective `grad_worker_frac` once an explicit strategy override is
/// applied: `MemOpt` and `LocalOpt` pin one worker per layer, `CommOpt`
/// pins every rank, `HybridOpt` (or no override) keeps the configured
/// fraction.
pub fn effective_worker_frac(strategy: Option<DistStrategy>, frac: f64, world: usize) -> f64 {
    match strategy {
        Some(DistStrategy::MemOpt) | Some(DistStrategy::LocalOpt) => 1.0 / world as f64,
        Some(DistStrategy::CommOpt) => 1.0,
        Some(DistStrategy::HybridOpt) | None => frac,
    }
}

/// The candidate fraction [`auto_strategy`] scores for each strategy: the
/// MEM/LOCAL extreme, the paper's canonical 1/2 hybrid point, and the COMM
/// extreme.
fn candidate_frac(strategy: DistStrategy, world: usize) -> f64 {
    match strategy {
        DistStrategy::MemOpt | DistStrategy::LocalOpt => 1.0 / world as f64,
        DistStrategy::HybridOpt => 0.5,
        DistStrategy::CommOpt => 1.0,
    }
}

/// Modeled amortized seconds per optimizer iteration for each distribution
/// strategy on the α–β network model — the strategy-axis twin of
/// [`crate::runtime::modeled_depth_makespans`]. `LocalOpt` is scored at the
/// MEM-OPT placement with zero factor-collective time (DP-KFAC folds local
/// statistics). Update-interval stages amortize over `factor_update_freq` /
/// `inv_update_freq`. A pure function of its arguments: every rank computes
/// the same table.
pub fn modeled_strategy_makespans(
    dims: &[(usize, usize)],
    world: usize,
    network: ClusterNetwork,
    batch: usize,
    factor_update_freq: usize,
    inv_update_freq: usize,
) -> Vec<(DistStrategy, f64)> {
    let cost = CollectiveCostModel::new(network);
    let rates = ComputeRates::default();
    let f_freq = factor_update_freq.max(1) as f64;
    let k_freq = inv_update_freq.max(1) as f64;

    // Strategy-invariant stages.
    let fwd_bwd: f64 =
        dims.iter().map(|&(a, g)| 6.0 * (a * g * batch) as f64 / rates.gemm_flops).sum();
    let grad_elems: f64 = dims.iter().map(|&(a, g)| (a * g) as f64).sum();
    let ddp = cost.allreduce(grad_elems as usize * 4, world);
    let finalize: f64 =
        dims.iter().map(|&(a, g)| ((a * a + g * g) * batch) as f64 / rates.gemm_flops).sum::<f64>()
            / f_freq;
    let scale = 3.0 * grad_elems / rates.gemm_flops;
    let factor_bytes: usize = dims.iter().map(|&(a, g)| factor_payload_len(a, g, false) * 4).sum();

    let strategies = [
        DistStrategy::MemOpt,
        DistStrategy::HybridOpt,
        DistStrategy::CommOpt,
        DistStrategy::LocalOpt,
    ];
    strategies
        .iter()
        .map(|&strategy| {
            let frac = candidate_frac(strategy, world);
            let plan =
                plan_assignments_with(dims, world, frac, AssignmentStrategy::ComputeLpt, false);
            let workers = plan.workers_per_layer;

            // Factor collective: a world allreduce, amortized — or nothing
            // at all for DP-KFAC local folds.
            let factor_comm = if strategy == DistStrategy::LocalOpt {
                0.0
            } else {
                cost.allreduce(factor_bytes, world) / f_freq
            };

            // Eigendecompositions: realized placement makespan, amortized.
            let mut eig_loads = vec![0.0f64; world];
            for (&(a, g), asn) in dims.iter().zip(&plan.layers) {
                eig_loads[asn.a_worker] += 9.0 * (a as f64).powi(3);
                eig_loads[asn.g_worker] += 9.0 * (g as f64).powi(3);
            }
            let eig_compute = eig_loads.into_iter().fold(0.0, f64::max) / rates.eig_flops / k_freq;
            let eig_comm = if workers > 1 {
                dims.iter()
                    .map(|&(a, g)| {
                        cost.broadcast(a * a * 4, workers)
                            + cost.broadcast(g * g * 4, workers)
                            + cost.broadcast(a * g * 4, workers)
                    })
                    .sum::<f64>()
                    / k_freq
            } else {
                0.0
            };

            // Preconditioning: heaviest per-rank gradient-worker load.
            let mut precond_loads = vec![0.0f64; world];
            for (&(a, g), asn) in dims.iter().zip(&plan.layers) {
                for &r in &asn.gradient_workers {
                    precond_loads[r] += 2.0 * (a * g) as f64 * (a + g) as f64;
                }
            }
            let precond = precond_loads.into_iter().fold(0.0, f64::max) / rates.gemm_flops;

            // Per-step preconditioned-gradient broadcasts (disjoint groups
            // run concurrently; each layer costs its largest group).
            let grad_bcast: f64 = dims
                .iter()
                .zip(&plan.layers)
                .filter_map(|(&(a, g), asn)| {
                    asn.bcast_groups
                        .iter()
                        .map(|grp| grp.len())
                        .max()
                        .map(|largest| cost.broadcast(a * g * 4, largest))
                })
                .sum();

            let total = fwd_bwd
                + ddp
                + finalize
                + factor_comm
                + eig_compute
                + eig_comm
                + precond
                + grad_bcast
                + scale;
            (strategy, total)
        })
        .collect()
}

/// Pick the distribution strategy with the best modeled amortized iteration
/// time for this model/world/network at the reference per-rank batch of 32
/// and the default update intervals (`F = 10`, `K = 100`).
///
/// Same all-ranks-agree contract as
/// [`crate::runtime::auto_cross_iter_depth`]: a pure function of its
/// arguments, so every rank dispatches identically — a per-rank measurement
/// would break collective matching. Within 0.1% of the best time the
/// fewest-gradient-workers candidate wins (less cached eigendecomposition
/// memory for the same modeled speed).
///
/// Only the three *exact* strategies (MEM/HYBRID/COMM-OPT, which are
/// bitwise-identical reformulations of the same update) are candidates.
/// `LocalOpt` preconditions from rank-local curvature — a statistically
/// different update — so it is never auto-selected; opt in explicitly via
/// `KfacConfig::strategy` when the curvature-freshness tradeoff is
/// acceptable.
pub fn auto_strategy(
    dims: &[(usize, usize)],
    world: usize,
    network: ClusterNetwork,
) -> DistStrategy {
    let table = modeled_strategy_makespans(dims, world, network, 32, 10, 100);
    let exact: Vec<(DistStrategy, f64)> =
        table.into_iter().filter(|(s, _)| *s != DistStrategy::LocalOpt).collect();
    let best = exact.iter().map(|&(_, t)| t).fold(f64::INFINITY, f64::min);
    // Candidates are ordered fewest-workers-first (MEM, HYBRID, COMM), so
    // the first within tolerance is the cheapest-memory near-optimum.
    exact
        .iter()
        .find(|&&(_, t)| t <= best * 1.001)
        .map(|&(s, _)| s)
        .expect("at least one exact strategy is always scored")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn resnet_ish() -> Vec<(usize, usize)> {
        vec![(576, 64), (1152, 128), (2304, 256), (4608, 512), (512, 10)]
    }

    #[test]
    fn plan_resolves_strategy_from_worker_count() {
        let dims = vec![(8, 8), (16, 4)];
        for (frac, expect) in [
            (0.125, DistStrategy::MemOpt),
            (0.5, DistStrategy::HybridOpt),
            (1.0, DistStrategy::CommOpt),
        ] {
            let cfg = KfacConfig::builder().grad_worker_frac(frac).build();
            let plan = plan_assignments_with(&dims, 8, frac, AssignmentStrategy::ComputeLpt, false);
            let sp = StrategyPlan::resolve(&cfg, &plan);
            assert_eq!(sp.strategy, expect);
            assert_eq!(sp.reduction, FactorReduction::DenseAllreduce);
            assert_eq!(sp.eig_bcast, plan.workers_per_layer > 1);
            assert_eq!(sp.grad_bcast, plan.workers_per_layer < 8);
        }
    }

    #[test]
    fn local_opt_plan_has_no_factor_collectives() {
        let dims = vec![(8, 8), (16, 4)];
        let cfg = KfacConfig::builder().strategy(DistStrategy::LocalOpt).build();
        let frac = effective_worker_frac(cfg.strategy, cfg.grad_worker_frac, 8);
        let plan = plan_assignments_with(&dims, 8, frac, cfg.assignment, false);
        let sp = StrategyPlan::resolve(&cfg, &plan);
        assert_eq!(sp.strategy, DistStrategy::LocalOpt);
        assert!(sp.local_factors());
        assert_eq!(sp.workers_per_layer, 1, "LocalOpt pins one owner per layer");
        assert!(!sp.eig_bcast);
        assert!(sp.grad_bcast);
        assert!(!sp.regather_split_layers);
    }

    #[test]
    fn sharded_plan_regathers_only_for_the_inverse_fallback() {
        let dims = vec![(8, 8), (16, 4)];
        let plan = plan_assignments_with(&dims, 4, 1.0, AssignmentStrategy::ComputeLpt, false);
        let eigen =
            StrategyPlan::resolve(&KfacConfig::builder().sharded_factors(true).build(), &plan);
        assert_eq!(eigen.reduction, FactorReduction::ShardedReduceScatter);
        assert!(!eigen.regather_split_layers);
        let inverse = StrategyPlan::resolve(
            &KfacConfig::builder().sharded_factors(true).use_eigen(false).build(),
            &plan,
        );
        assert!(inverse.regather_split_layers);
        for asn in &plan.layers {
            assert_eq!(inverse.needs_regather(asn), asn.a_worker != asn.g_worker);
        }
    }

    #[test]
    fn effective_frac_applies_strategy_overrides() {
        assert_eq!(effective_worker_frac(Some(DistStrategy::MemOpt), 1.0, 8), 1.0 / 8.0);
        assert_eq!(effective_worker_frac(Some(DistStrategy::LocalOpt), 1.0, 8), 1.0 / 8.0);
        assert_eq!(effective_worker_frac(Some(DistStrategy::CommOpt), 0.25, 8), 1.0);
        assert_eq!(effective_worker_frac(Some(DistStrategy::HybridOpt), 0.25, 8), 0.25);
        assert_eq!(effective_worker_frac(None, 0.75, 8), 0.75);
    }

    #[test]
    fn makespan_table_covers_all_four_strategies() {
        let table = modeled_strategy_makespans(
            &resnet_ish(),
            8,
            ClusterNetwork::ethernet_10g(),
            32,
            10,
            100,
        );
        assert_eq!(table.len(), 4);
        for &(_, t) in &table {
            assert!(t.is_finite() && t > 0.0);
        }
        let get = |s: DistStrategy| table.iter().find(|&&(x, _)| x == s).unwrap().1;
        // DP-KFAC is MEM-OPT minus the factor allreduce: strictly faster on
        // a comm-bound network, identical in every other stage.
        assert!(get(DistStrategy::LocalOpt) < get(DistStrategy::MemOpt));
    }

    #[test]
    fn auto_strategy_is_deterministic_and_exact() {
        for world in [1, 2, 4, 8, 16] {
            for network in [ClusterNetwork::ethernet_10g(), ClusterNetwork::infiniband_edr()] {
                let a = auto_strategy(&resnet_ish(), world, network);
                let b = auto_strategy(&resnet_ish(), world, network);
                assert_eq!(a, b, "pure function must be reproducible");
                assert_ne!(a, DistStrategy::LocalOpt, "LocalOpt is never auto-selected");
            }
        }
    }

    #[test]
    fn auto_strategy_prefers_fewer_workers_on_slow_networks() {
        // On a severely comm-bound network the eigendecomposition broadcasts
        // of COMM-OPT dominate; the dispatcher must not pick COMM-OPT there
        // while picking it (or HYBRID) where bandwidth is cheap. At world 1
        // every strategy degenerates; the tie rule picks MEM-OPT's candidate.
        let slow = auto_strategy(&resnet_ish(), 1, ClusterNetwork::ethernet_10g());
        assert_eq!(slow, DistStrategy::MemOpt);
    }
}
