//! Per-rank cooperative task runtime with cross-iteration phase overlap.
//!
//! The third `Kfac::step` executor (after the serial reference and the
//! sweep pipeline): stage work becomes polled task units on a per-rank
//! ready-queue [`scheduler::Scheduler`]. A task blocked on an in-flight
//! collective *parks*, yielding the rank to any runnable task — and the
//! [`crate::Kfac::step_begin`]/[`crate::Kfac::step_finish`] split lets the
//! next iteration's factor-accumulation collectives launch before the
//! current DDP allreduce, overlapping phases across the iteration boundary.
//! Collective begin order is pinned per communication group by plan-time
//! gates (canonical sweep order), so all three executors stay bitwise
//! identical. A stall watchdog converts a mismatched collective into a
//! per-rank task-state diagnostic panic instead of a hang.
//!
//! [`model::CrossIterModel`] extends the cost model across a two-iteration
//! window to predict the overlap win; `kaisa-sim` and the `fig7` bench
//! consume it.

pub mod executor;
pub mod model;
pub mod scheduler;

pub use model::{modeled_cross_iter_makespans, CrossIterModel, CrossStage, Interval, OverlapMode};
pub use scheduler::{Scheduler, TaskPoll};
