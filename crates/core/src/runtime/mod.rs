//! Per-rank cooperative task runtime with cross-iteration phase overlap.
//!
//! The third `Kfac::step` executor (after the serial reference and the
//! sweep pipeline): stage work becomes polled task units on a per-rank
//! ready-queue [`scheduler::Scheduler`]. A task blocked on an in-flight
//! collective *parks*, yielding the rank to any runnable task — and the
//! [`crate::Kfac::step_begin`]/[`crate::Kfac::step_finish`] split lets the
//! next iteration's factor-accumulation collectives launch before the
//! current DDP allreduce, overlapping phases across the iteration boundary.
//! Collective begin order is pinned per communication group by plan-time
//! gates (canonical sweep order), so all three executors stay bitwise
//! identical. A stall watchdog converts a mismatched collective into a
//! per-rank task-state diagnostic panic instead of a hang.
//!
//! With `KfacConfig::cross_iter_depth` beyond 1, the lookahead generalizes
//! to a **depth-D scheduling window**: `step_finish` may retire a
//! factor-update step whose deferred fold completes are still in flight,
//! holding the residue DAG in a window ring that drains opportunistically
//! under later iterations' compute — force-drained before the next
//! factor-update step (EMA fold ordering) and after `D - 1` iterations
//! (age bound). Only ungated complete-side tasks ever defer, so the
//! per-group collective begin order — the bitwise-equivalence mechanism —
//! is untouched.
//!
//! [`model::CrossIterModel`] extends the cost model across an
//! `iterations`-long window at any depth to predict the overlap win;
//! `kaisa-sim` and the `fig7` bench consume it, and
//! [`model::auto_cross_iter_depth`] drives the `depth(auto)` config mode.

pub mod executor;
pub mod model;
pub mod scheduler;

pub use model::{
    auto_cross_iter_depth, modeled_cross_iter_makespans, modeled_depth_makespans, CrossIterModel,
    CrossStage, Interval, OverlapMode, WindowSpec,
};
pub use scheduler::{Scheduler, TaskPoll};
