//! The runtime executor: `Kfac::step` as a DAG of polled task units.
//!
//! Each phase of the K-FAC step decomposes into per-layer tasks (see
//! `TaskKind`): a *begin* task packs data and initiates the phase's
//! collective, a *complete* task polls its readiness, consumes the payload,
//! and folds it into state, and pure-compute tasks (eigensolves,
//! preconditioning) sit between them. The [`Scheduler`] runs these in data
//! dependency order, parking complete-side tasks whose collectives are
//! still in flight — so a rank blocked on one layer's allreduce keeps
//! working on other layers, later phases, or (via the
//! [`Kfac::step_begin`]/[`Kfac::step_finish`] split) the *next* iteration's
//! factor-accumulation phase.
//!
//! Bitwise equivalence with the serial and sweep executors holds because:
//!
//! - every task reuses the *same* stage kernels and quantization points in
//!   `crate::state` / `crate::preconditioner`,
//! - collective begin order is pinned per group by plan-time gates in
//!   canonical sweep order (the sweep executor's exact begin order), so the
//!   rank-ordered reductions see identical operand sequences, and
//! - the KL-clip scale runs as a single task in fixed serial layer order.

use kaisa_comm::{CommTag, Communicator, PendingCollective, ReduceOp};
use kaisa_nn::Model;
use kaisa_tensor::Matrix;

use crate::pipeline::executor::LayerBcasts;
use crate::preconditioner::{factor_shards, reassemble_gathered_payload, Kfac};
use crate::runtime::scheduler::{Scheduler, TaskPoll};
use crate::state::{
    factor_payload_len, pack_factor_payload, pack_factor_payload_scaled_into,
    unpack_factor_payload, KfacLayerState,
};
use crate::strategy::FactorReduction;
use crate::timing::Stage;

/// One schedulable unit of a K-FAC step, tagged with its layer index.
enum TaskKind {
    /// Finalize captured statistics, pack, and begin the dense factor
    /// allreduce. Gated on the world group.
    FactorDenseBegin(usize),
    /// Finalize captured statistics, scale-and-pack into staging, and begin
    /// the sharded reduce-scatter. Gated on the world group.
    FactorShardBegin(usize),
    /// LOCAL-OPT: finalize and fold this rank's **local** statistics on the
    /// layer's owner — no collective, so no complete-side task exists and
    /// the depth-D window has nothing to defer. Ungated.
    FactorLocalFold(usize),
    /// Complete the dense allreduce, unpack, and fold the averages.
    FactorDenseComplete(usize),
    /// Complete the reduce-scatter shard; fold it, or stash it for the
    /// direct-inverse fallback's regather.
    FactorShardComplete(usize),
    /// Begin the worker-group allgather that rematerializes the payload for
    /// the direct-inverse fallback. Gated on the eig worker group.
    FactorGatherBegin(usize),
    /// Complete the regather and fold on the A worker.
    FactorGatherComplete(usize),
    /// Local eigensolves / direct inverses for this rank's roles.
    EigSolve(usize),
    /// Begin the `v_A` shuttle to the G worker. Gated on the worker pair.
    EigPairBegin(usize),
    /// Complete the `v_A` shuttle.
    EigPairComplete(usize),
    /// Compute the damped reciprocal outer product on the G worker.
    EigOuter(usize),
    /// Begin every eigendecomposition result broadcast for this layer.
    /// Gated on the gradient-worker group.
    EigBcastBegin(usize),
    /// Complete the result broadcasts into the layer state.
    EigBcastComplete(usize),
    /// Precondition this layer's gradient locally.
    Precond(usize),
    /// Begin the preconditioned-gradient broadcast. Gated on the layer's
    /// broadcast group.
    GradBcastBegin(usize),
    /// Complete the preconditioned-gradient broadcast.
    GradBcastComplete(usize),
    /// KL-clip scale and write-back, in fixed serial layer order.
    Scale,
}

/// A factor collective in flight: the handle plus unpack metadata. `buf`
/// is the dense allreduce's payload buffer (empty under sharding, where the
/// complete side allocates its own shard buffer).
struct FactorInFlight {
    pending: PendingCollective,
    buf: Vec<f32>,
    split: usize,
    total: usize,
}

/// Mutable task-local state threaded between a step's tasks.
struct StepCtx {
    /// Staging-ring slot this step's factor begins pack into
    /// (`window_index % depth`), so a held predecessor DAG in a depth-D
    /// window never aliases this step's live staging buffers.
    slot: usize,
    factor: Vec<Option<FactorInFlight>>,
    /// Per-layer `(split, total)` payload geometry, recorded by the sharded
    /// complete for the regather tasks.
    splits: Vec<(usize, usize)>,
    /// Owned shard awaiting the regather begin (sharded inverse fallback).
    owned: Vec<Option<Vec<f32>>>,
    /// Regather in flight: handle plus this rank's owned length.
    gather: Vec<Option<(PendingCollective, usize)>>,
    va: Vec<Option<Vec<f32>>>,
    vg: Vec<Option<Vec<f32>>>,
    pair: Vec<Option<(PendingCollective, Vec<f32>)>>,
    bcasts: Vec<LayerBcasts>,
    grads: Vec<Matrix>,
    precond: Vec<Option<Matrix>>,
    grad_pending: Vec<Option<PendingCollective>>,
}

impl StepCtx {
    fn new(n: usize, slot: usize) -> Self {
        StepCtx {
            slot,
            factor: (0..n).map(|_| None).collect(),
            splits: vec![(0, 0); n],
            owned: (0..n).map(|_| None).collect(),
            gather: (0..n).map(|_| None).collect(),
            va: (0..n).map(|_| None).collect(),
            vg: (0..n).map(|_| None).collect(),
            pair: (0..n).map(|_| None).collect(),
            bcasts: (0..n).map(|_| LayerBcasts::default()).collect(),
            grads: Vec::new(),
            precond: (0..n).map(|_| None).collect(),
            grad_pending: (0..n).map(|_| None).collect(),
        }
    }
}

/// An in-progress runtime step, stashed on [`Kfac`] between
/// [`Kfac::step_begin`] and [`Kfac::step_finish`] — and, at window depths
/// beyond 1, possibly retired into the window ring with deferred factor
/// completes still in flight.
pub struct RuntimeStep {
    sched: Scheduler,
    kinds: Vec<TaskKind>,
    ctx: StepCtx,
    /// Monotone DAG counter (`Kfac::windows_built` at plan time).
    window_index: u64,
    /// The `Kfac::steps` value this DAG belongs to.
    iteration: u64,
}

impl RuntimeStep {
    /// Bytes of payload this retired step still pins while it sits in the
    /// window ring: in-flight dense factor buffers plus stashed owned
    /// shards. Gather handles and completed tasks pin nothing.
    fn held_bytes(&self) -> usize {
        let factor: usize = self.ctx.factor.iter().flatten().map(|fl| fl.buf.capacity()).sum();
        let owned: usize = self.ctx.owned.iter().flatten().map(|b| b.capacity()).sum();
        (factor + owned) * std::mem::size_of::<f32>()
    }
}

impl std::fmt::Debug for RuntimeStep {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RuntimeStep")
            .field("tasks", &self.kinds.len())
            .field("window_index", &self.window_index)
            .field("iteration", &self.iteration)
            .finish()
    }
}

impl Kfac {
    /// Plan the step's task DAG: tasks in canonical phase order, layers in
    /// sweep order within each phase, so per-group gate sequences reproduce
    /// the sweep executor's begin order exactly. Every task except the
    /// factor begins starts *held* (released by `step_finish`), giving
    /// `step_begin` its factor-only contract.
    fn build_runtime_step(&mut self) -> RuntimeStep {
        fn push(
            sched: &mut Scheduler,
            kinds: &mut Vec<TaskKind>,
            kind: TaskKind,
            label: String,
            gate: Option<usize>,
            deps: &[usize],
        ) -> usize {
            kinds.push(kind);
            sched.add_task(label, gate, deps)
        }

        let n = self.states.len();
        let rank = self.rank;
        let factor_step = self.is_factor_update_step();
        let inv_step = self.is_inv_update_step();
        let use_eigen = self.cfg.use_eigen;
        let precompute = self.cfg.precompute_outer;
        let order = self.sweep_order.clone();
        let window_index = self.windows_built;
        let iteration = self.steps;
        self.windows_built += 1;
        let mut sched = Scheduler::with_window(
            rank,
            self.cfg.runtime_stall_timeout_ms,
            window_index,
            iteration,
        );
        let mut kinds: Vec<TaskKind> = Vec::new();

        // Phase 1: factor update. The resolved `StrategyPlan` picks the
        // task shapes here, at plan time — `run_task` bodies carry no
        // strategy conditionals.
        let mut fold_task: Vec<Option<usize>> = vec![None; n];
        if factor_step {
            match self.strat.reduction {
                FactorReduction::LocalNone => {
                    // No collective: the ungated local fold runs entirely in
                    // `step_begin` and directly feeds the eigensolves.
                    for &i in &order {
                        fold_task[i] = Some(push(
                            &mut sched,
                            &mut kinds,
                            TaskKind::FactorLocalFold(i),
                            format!("factor-local-fold L{i}"),
                            None,
                            &[],
                        ));
                    }
                }
                FactorReduction::ShardedReduceScatter => {
                    let world_group: Vec<usize> = (0..self.world).collect();
                    let wg = sched.add_group(&world_group);
                    let mut begin_id = vec![0usize; n];
                    for &i in &order {
                        begin_id[i] = push(
                            &mut sched,
                            &mut kinds,
                            TaskKind::FactorShardBegin(i),
                            format!("factor-begin L{i}"),
                            Some(wg),
                            &[],
                        );
                    }
                    for &i in &order {
                        fold_task[i] = Some(push(
                            &mut sched,
                            &mut kinds,
                            TaskKind::FactorShardComplete(i),
                            format!("factor-shard-complete L{i}"),
                            None,
                            &[begin_id[i]],
                        ));
                    }
                    for &i in &order {
                        let asn = self.plan.layers[i].clone();
                        if self.strat.needs_regather(&asn) && asn.eig_worker_group().contains(&rank)
                        {
                            let eg = sched.add_group(&asn.eig_worker_group());
                            let gb = push(
                                &mut sched,
                                &mut kinds,
                                TaskKind::FactorGatherBegin(i),
                                format!("factor-gather-begin L{i}"),
                                Some(eg),
                                &[fold_task[i].expect("shard complete planned")],
                            );
                            fold_task[i] = Some(push(
                                &mut sched,
                                &mut kinds,
                                TaskKind::FactorGatherComplete(i),
                                format!("factor-gather-complete L{i}"),
                                None,
                                &[gb],
                            ));
                        }
                    }
                }
                FactorReduction::DenseAllreduce => {
                    let world_group: Vec<usize> = (0..self.world).collect();
                    let wg = sched.add_group(&world_group);
                    let mut begin_id = vec![0usize; n];
                    for &i in &order {
                        begin_id[i] = push(
                            &mut sched,
                            &mut kinds,
                            TaskKind::FactorDenseBegin(i),
                            format!("factor-begin L{i}"),
                            Some(wg),
                            &[],
                        );
                    }
                    for &i in &order {
                        fold_task[i] = Some(push(
                            &mut sched,
                            &mut kinds,
                            TaskKind::FactorDenseComplete(i),
                            format!("factor-complete L{i}"),
                            None,
                            &[begin_id[i]],
                        ));
                    }
                }
            }
        }

        // Phase 2: eigendecompositions.
        let mut eig_last: Vec<Option<usize>> = vec![None; n];
        if inv_step {
            for &i in &order {
                let deps: Vec<usize> = fold_task[i].into_iter().collect();
                let s = push(
                    &mut sched,
                    &mut kinds,
                    TaskKind::EigSolve(i),
                    format!("eig-solve L{i}"),
                    None,
                    &deps,
                );
                eig_last[i] = Some(s);
                let asn = self.plan.layers[i].clone();
                let mut pair_complete = None;
                if use_eigen
                    && precompute
                    && asn.a_worker != asn.g_worker
                    && (rank == asn.a_worker || rank == asn.g_worker)
                {
                    let pg = sched.add_group(&[asn.a_worker, asn.g_worker]);
                    let pb = push(
                        &mut sched,
                        &mut kinds,
                        TaskKind::EigPairBegin(i),
                        format!("eig-pair-begin L{i}"),
                        Some(pg),
                        &[s],
                    );
                    let pc = push(
                        &mut sched,
                        &mut kinds,
                        TaskKind::EigPairComplete(i),
                        format!("eig-pair-complete L{i}"),
                        None,
                        &[pb],
                    );
                    pair_complete = Some(pc);
                    eig_last[i] = Some(pc);
                }
                if use_eigen && precompute && rank == asn.g_worker {
                    let mut deps = vec![s];
                    deps.extend(pair_complete);
                    eig_last[i] = Some(push(
                        &mut sched,
                        &mut kinds,
                        TaskKind::EigOuter(i),
                        format!("eig-outer L{i}"),
                        None,
                        &deps,
                    ));
                }
            }
            for &i in &order {
                let asn = self.plan.layers[i].clone();
                if asn.is_gradient_worker(rank) && asn.gradient_workers.len() > 1 {
                    let gg = sched.add_group(&asn.gradient_workers);
                    let bb = push(
                        &mut sched,
                        &mut kinds,
                        TaskKind::EigBcastBegin(i),
                        format!("eig-bcast-begin L{i}"),
                        Some(gg),
                        &[eig_last[i].expect("eig solve planned")],
                    );
                    eig_last[i] = Some(push(
                        &mut sched,
                        &mut kinds,
                        TaskKind::EigBcastComplete(i),
                        format!("eig-bcast-complete L{i}"),
                        None,
                        &[bb],
                    ));
                }
            }
        }

        // Phase 3: precondition, gradient broadcasts, scale.
        let mut grad_last = vec![0usize; n];
        for &i in &order {
            let deps: Vec<usize> = eig_last[i].into_iter().collect();
            let p = push(
                &mut sched,
                &mut kinds,
                TaskKind::Precond(i),
                format!("precondition L{i}"),
                None,
                &deps,
            );
            grad_last[i] = p;
            let asn = self.plan.layers[i].clone();
            if let Some(group) = asn.bcast_group_of(rank) {
                let gg = sched.add_group(group);
                let gb = push(
                    &mut sched,
                    &mut kinds,
                    TaskKind::GradBcastBegin(i),
                    format!("grad-bcast-begin L{i}"),
                    Some(gg),
                    &[p],
                );
                grad_last[i] = push(
                    &mut sched,
                    &mut kinds,
                    TaskKind::GradBcastComplete(i),
                    format!("grad-bcast-complete L{i}"),
                    None,
                    &[gb],
                );
            }
        }
        push(&mut sched, &mut kinds, TaskKind::Scale, "scale".to_string(), None, &grad_last);

        for (id, kind) in kinds.iter().enumerate() {
            if !matches!(
                kind,
                TaskKind::FactorDenseBegin(_)
                    | TaskKind::FactorShardBegin(_)
                    | TaskKind::FactorLocalFold(_)
            ) {
                sched.hold(id);
            }
        }
        // Depth-D window: factor *completes* may outlive their step — their
        // collectives are already begun (begins are never deferrable, so
        // per-group begin order is untouched) and their folds commute with
        // everything until the next factor-update step, which `step_begin`
        // force-drains ahead of. The one exception: a shard complete whose
        // payload feeds this rank's regather begin must finish in-step,
        // because that begin is gated.
        if self.resolved_depth > 1 {
            for (id, kind) in kinds.iter().enumerate() {
                let deferrable = match *kind {
                    TaskKind::FactorDenseComplete(_) | TaskKind::FactorGatherComplete(_) => true,
                    TaskKind::FactorShardComplete(i) => {
                        let asn = &self.plan.layers[i];
                        !(self.strat.needs_regather(asn) && asn.eig_worker_group().contains(&rank))
                    }
                    _ => false,
                };
                if deferrable {
                    sched.mark_deferrable(id);
                }
            }
        }
        let slot = (window_index % self.resolved_depth as u64) as usize;
        RuntimeStep { sched, kinds, ctx: StepCtx::new(n, slot), window_index, iteration }
    }

    /// Start a runtime step: plan the task DAG and run the factor-phase
    /// *begin* tasks only, leaving their collectives in flight. Call after
    /// the backward pass, *before* the data-parallel gradient allreduce —
    /// that lets the factor reductions overlap the DDP allreduce and the
    /// remainder of the step (the paper's cross-iteration lookahead).
    /// Every rank must call this at the same point so the world-group
    /// collective order stays consistent. Requires `async_runtime`.
    pub fn step_begin<M: Model>(&mut self, model: &mut M, comm: &dyn Communicator) {
        assert!(self.cfg.async_runtime, "step_begin requires async_runtime(true)");
        assert!(
            self.runtime_step.is_none(),
            "step_begin called twice without an intervening step_finish"
        );
        // Opportunistically reap retired window steps whose deferred
        // completes have since become ready (non-blocking).
        self.poll_window(comm);
        // A factor-update step folds new running averages: every deferred
        // fold from the window must land first so the EMA sees updates in
        // iteration order (bitwise equivalence with the serial executor).
        if self.is_factor_update_step() {
            self.drain_window(comm);
        }
        // Capacity: at most `depth` DAGs in flight including the one about
        // to be built.
        while self.window.len() + 1 > self.resolved_depth {
            let step = self.window.pop_front().expect("window non-empty");
            self.drain_window_step(step, comm);
        }
        self.note_window_residency();
        let mut layers = model.kfac_layers();
        assert_eq!(layers.len(), self.states.len(), "layer set changed after registration");
        self.note_capture_residency(&layers);
        let RuntimeStep { mut sched, kinds, mut ctx, window_index, iteration } =
            self.build_runtime_step();
        sched.run(|id| self.run_task(&kinds[id], &mut layers, comm, &mut ctx, 0.0));
        self.runtime_step = Some(RuntimeStep { sched, kinds, ctx, window_index, iteration });
    }

    /// Finish a runtime step begun by [`Kfac::step_begin`]: release the
    /// held tasks and run the scheduler to quiescence. Call after the
    /// data-parallel gradient allreduce; `lr` enters the KL-clip scale as
    /// in [`Kfac::step`].
    pub fn step_finish<M: Model>(&mut self, model: &mut M, comm: &dyn Communicator, lr: f32) {
        let RuntimeStep { mut sched, kinds, mut ctx, window_index, iteration } =
            self.runtime_step.take().expect("step_finish requires a prior step_begin");
        let mut layers = model.kfac_layers();
        assert_eq!(layers.len(), self.states.len(), "layer set changed after registration");
        // Gradients are final only now (post-DDP), so the plan defers their
        // capture — and every task that reads them — to this half.
        ctx.grads = layers.iter().map(|l| l.combined_grad()).collect();
        sched.release_all();
        if self.resolved_depth == 1 {
            sched.run(|id| self.run_task(&kinds[id], &mut layers, comm, &mut ctx, lr));
        } else {
            // Depth-D window: run to quiescence of the *non-deferrable*
            // tasks only; still-pending factor completes retire with the
            // step into the window ring and drain under later iterations.
            sched.run_released(|id| self.run_task(&kinds[id], &mut layers, comm, &mut ctx, lr));
            if !sched.all_done() {
                self.window.push_back(RuntimeStep { sched, kinds, ctx, window_index, iteration });
            }
            // Age bound: a step's residue may ride along for at most
            // `depth - 1` subsequent iterations.
            let now = self.steps;
            while self.window.front().is_some_and(|s| {
                now.saturating_sub(s.iteration) >= (self.resolved_depth - 1) as u64
            }) {
                let step = self.window.pop_front().expect("window non-empty");
                self.drain_window_step(step, comm);
            }
        }
        self.note_window_residency();
        self.note_step_residency();
        self.steps += 1;
        self.times.steps += 1;
    }

    /// Block until every retired window step has fully drained. Call before
    /// reading cross-rank observables whose accounting happens on the
    /// complete side — [`Kfac::comm_bytes`], [`Kfac::stage_times`],
    /// [`Kfac::memory_meter`] — or before tearing down the communicator.
    /// A no-op at depth 1 (the window is always empty) and between
    /// `step_begin`/`step_finish` pairs it must not be called.
    pub fn flush(&mut self, comm: &dyn Communicator) {
        assert!(self.runtime_step.is_none(), "flush called between step_begin and step_finish");
        self.drain_window(comm);
        self.note_window_residency();
    }

    /// One non-blocking poll pass over the window, popping fully-finished
    /// steps off the front (in retirement order only, so a finished step
    /// behind an unfinished one waits — the ring drains FIFO).
    fn poll_window(&mut self, comm: &dyn Communicator) {
        let mut window = std::mem::take(&mut self.window);
        while let Some(front) = window.front_mut() {
            let RuntimeStep { ref mut sched, ref kinds, ref mut ctx, .. } = *front;
            let done = sched.poll_pass(|id| self.run_deferred_task(&kinds[id], comm, ctx));
            if done {
                window.pop_front();
            } else {
                break;
            }
        }
        self.window = window;
    }

    /// Drain the whole window, oldest step first, blocking as needed.
    fn drain_window(&mut self, comm: &dyn Communicator) {
        while let Some(step) = self.window.pop_front() {
            self.drain_window_step(step, comm);
        }
    }

    /// Run one retired step's remaining deferred tasks to completion.
    fn drain_window_step(&mut self, step: RuntimeStep, comm: &dyn Communicator) {
        let RuntimeStep { mut sched, kinds, mut ctx, .. } = step;
        sched.run(|id| self.run_deferred_task(&kinds[id], comm, &mut ctx));
    }

    /// Update the `HeldWindows` meter category from the ring's pinned
    /// payload bytes.
    fn note_window_residency(&mut self) {
        let bytes: usize = self.window.iter().map(|s| s.held_bytes()).sum();
        self.mem.set(crate::memory::MemoryCategory::HeldWindows, bytes);
    }

    /// Execute one task unit. Complete-side tasks return
    /// [`TaskPoll::Pending`] while their collective is in flight.
    fn run_task(
        &mut self,
        kind: &TaskKind,
        layers: &mut [&mut dyn kaisa_nn::KfacAble],
        comm: &dyn Communicator,
        ctx: &mut StepCtx,
        lr: f32,
    ) -> TaskPoll {
        let rank = self.rank;
        let precision = self.cfg.precision;
        let triangular = self.cfg.triangular_comm;
        match *kind {
            TaskKind::FactorShardBegin(i) => {
                let layer = &mut layers[i];
                let stats = layer.capture_mut().take_stats().unwrap_or_else(|| {
                    panic!(
                        "layer {}: no captured statistics — call Kfac::prepare() before the forward pass",
                        layer.layer_name()
                    )
                });
                let world_group: Vec<usize> = (0..self.world).collect();
                // Scale-and-pack straight into the reusable staging
                // buffer; no scaled square statistics materialize.
                let asn = self.plan.layers[i].clone();
                let mut staging = self.staging.take(ctx.slot, i);
                let split = self.times.time_layer(i, Stage::FactorCompute, || {
                    let inv = 1.0 / stats.batches.max(1) as f32;
                    pack_factor_payload_scaled_into(
                        &mut staging,
                        &stats.a_stat,
                        &stats.g_stat,
                        inv,
                        triangular,
                        precision,
                    )
                });
                let total = staging.len();
                let entry = self.times.time_layer(i, Stage::FactorComm, || {
                    let shards = factor_shards(&asn, split, total);
                    let pending = comm.begin_reduce_scatter(
                        &staging,
                        ReduceOp::Avg,
                        &world_group,
                        &shards,
                        CommTag::FactorReduce,
                    );
                    FactorInFlight { pending, buf: Vec::new(), split, total }
                });
                // The begin copies the payload, so staging is reusable.
                self.staging.put(ctx.slot, i, staging);
                ctx.factor[i] = Some(entry);
                TaskPoll::Done
            }
            TaskKind::FactorDenseBegin(i) => {
                let layer = &mut layers[i];
                let stats = layer.capture_mut().take_stats().unwrap_or_else(|| {
                    panic!(
                        "layer {}: no captured statistics — call Kfac::prepare() before the forward pass",
                        layer.layer_name()
                    )
                });
                let world_group: Vec<usize> = (0..self.world).collect();
                let (a_new, g_new) = self.times.time_layer(i, Stage::FactorCompute, || {
                    let inv = 1.0 / stats.batches.max(1) as f32;
                    let mut a = stats.a_stat;
                    a.scale(inv);
                    let mut g = stats.g_stat;
                    g.scale(inv);
                    (a, g)
                });
                let entry = self.times.time_layer(i, Stage::FactorComm, || {
                    let (buf, split) = pack_factor_payload(&a_new, &g_new, triangular, precision);
                    let total = buf.len();
                    let pending = comm.begin_allreduce(
                        &buf,
                        ReduceOp::Avg,
                        &world_group,
                        CommTag::FactorComm,
                    );
                    FactorInFlight { pending, buf, split, total }
                });
                ctx.factor[i] = Some(entry);
                TaskPoll::Done
            }
            TaskKind::FactorLocalFold(i) => {
                let layer = &mut layers[i];
                let stats = layer.capture_mut().take_stats().unwrap_or_else(|| {
                    panic!(
                        "layer {}: no captured statistics — call Kfac::prepare() before the forward pass",
                        layer.layer_name()
                    )
                });
                self.fold_local_stats(i, stats);
                self.note_factor_residency();
                TaskPoll::Done
            }
            TaskKind::FactorDenseComplete(_)
            | TaskKind::FactorShardComplete(_)
            | TaskKind::FactorGatherComplete(_) => self.run_deferred_task(kind, comm, ctx),
            TaskKind::FactorGatherBegin(i) => {
                let owned = ctx.owned[i].take().expect("shard complete stashed the shard");
                let asn = self.plan.layers[i].clone();
                let group = asn.eig_worker_group();
                let pending = self.times.time_layer(i, Stage::FactorComm, || {
                    comm.begin_allgather(&owned, &group, CommTag::FactorGather)
                });
                ctx.gather[i] = Some((pending, owned.len()));
                TaskPoll::Done
            }
            TaskKind::EigSolve(i) => {
                let asn = self.plan.layers[i].clone();
                let damping = self.cfg.damping;
                if self.cfg.ekfac {
                    self.states[i].ekfac_scale = None;
                }
                self.note_decomposition_transients(i);
                if !self.cfg.use_eigen {
                    if rank == asn.a_worker {
                        self.times.time_layer(i, Stage::EigCompute, || {
                            self.states[i].compute_inverses(damping);
                        });
                    }
                    return TaskPoll::Done;
                }
                // The runtime DAG gates each EigSolve on its own layer's
                // fold, so only the per-layer {A, G} pair can batch here:
                // when this rank owns both factors and both squares are
                // dense-resident, solve them through one two-job queue
                // (bitwise identical; per-factor timing attributed).
                let pair_batch = rank == asn.a_worker
                    && rank == asn.g_worker
                    && self.cfg.eig_batch != 1
                    && self.states[i].factor_a.is_some()
                    && self.states[i].factor_g.is_some();
                if pair_batch {
                    let fa = self.states[i].factor_a.as_ref().expect("dense A checked");
                    let fg = self.states[i].factor_g.as_ref().expect("dense G checked");
                    let mut solved =
                        kaisa_linalg::sym_eig_batch_timed(&[fa, fg], self.cfg.eig_batch)
                            .into_iter();
                    let (ra, sa) = solved.next().expect("A solve queued");
                    let (rg, sg) = solved.next().expect("G solve queued");
                    self.times.add_layer(i, Stage::EigCompute, sa);
                    self.times.add_layer(i, Stage::EigCompute, sg);
                    let ea = ra.expect("A factor eigendecomposition failed");
                    let eg = rg.expect("G factor eigendecomposition failed");
                    self.states[i].qa = Some(ea.vectors);
                    ctx.va[i] = Some(ea.values);
                    self.states[i].qg = Some(eg.vectors);
                    ctx.vg[i] = Some(eg.values);
                } else {
                    if rank == asn.a_worker {
                        let (qa, values) =
                            self.times.time_layer(i, Stage::EigCompute, || self.states[i].eig_a());
                        self.states[i].qa = Some(qa);
                        ctx.va[i] = Some(values);
                    }
                    if rank == asn.g_worker {
                        let (qg, values) =
                            self.times.time_layer(i, Stage::EigCompute, || self.states[i].eig_g());
                        self.states[i].qg = Some(qg);
                        ctx.vg[i] = Some(values);
                    }
                }
                if asn.is_gradient_worker(rank)
                    && asn.gradient_workers.len() == 1
                    && !self.cfg.precompute_outer
                {
                    // Single gradient worker: keep local values (no bcast).
                    if let Some(values) = ctx.va[i].take() {
                        self.states[i].va = Some(values);
                    }
                    if let Some(values) = ctx.vg[i].take() {
                        self.states[i].vg = Some(values);
                    }
                }
                TaskPoll::Done
            }
            TaskKind::EigPairBegin(i) => {
                let asn = self.plan.layers[i].clone();
                let a_dim = self.states[i].a_dim;
                let pair = [asn.a_worker, asn.g_worker];
                let buf = ctx.va[i].clone().unwrap_or_else(|| vec![0.0; a_dim]);
                let pending = self.times.time_layer(i, Stage::EigComm, || {
                    comm.begin_broadcast(&buf, asn.a_worker, &pair, CommTag::EigComm)
                });
                if rank == asn.a_worker {
                    self.comm_bytes += (a_dim * precision.bytes_per_element()) as u64;
                }
                ctx.pair[i] = Some((pending, buf));
                TaskPoll::Done
            }
            TaskKind::EigPairComplete(i) => {
                let ready = ctx.pair[i].as_ref().is_some_and(|(p, _)| comm.poll_ready(p));
                if !ready {
                    return TaskPoll::Pending;
                }
                let (pending, mut buf) = ctx.pair[i].take().expect("pair begin ran");
                self.times.time_layer(i, Stage::EigComm, || comm.complete(pending, &mut buf));
                if rank == self.plan.layers[i].g_worker {
                    ctx.va[i] = Some(buf);
                }
                TaskPoll::Done
            }
            TaskKind::EigOuter(i) => {
                let damping = self.cfg.damping;
                let outer = self.times.time_layer(i, Stage::EigCompute, || {
                    KfacLayerState::compute_outer(
                        ctx.vg[i].as_ref().expect("G worker has v_G"),
                        ctx.va[i].as_ref().expect("G worker received v_A"),
                        damping,
                    )
                });
                self.states[i].outer = Some(outer);
                TaskPoll::Done
            }
            TaskKind::EigBcastBegin(i) => {
                let asn = self.plan.layers[i].clone();
                let (a_dim, g_dim) = (self.states[i].a_dim, self.states[i].g_dim);
                let mut b = LayerBcasts::default();
                if !self.cfg.use_eigen {
                    let local = self.states[i].inv_a.take();
                    b.inv_a = Some(self.begin_matrix_bcast(
                        i,
                        comm,
                        local,
                        a_dim,
                        a_dim,
                        asn.a_worker,
                        &asn.gradient_workers,
                    ));
                    let local = self.states[i].inv_g.take();
                    b.inv_g = Some(self.begin_matrix_bcast(
                        i,
                        comm,
                        local,
                        g_dim,
                        g_dim,
                        asn.a_worker,
                        &asn.gradient_workers,
                    ));
                } else {
                    let local = self.states[i].qa.take();
                    b.qa = Some(self.begin_matrix_bcast(
                        i,
                        comm,
                        local,
                        a_dim,
                        a_dim,
                        asn.a_worker,
                        &asn.gradient_workers,
                    ));
                    let local = self.states[i].qg.take();
                    b.qg = Some(self.begin_matrix_bcast(
                        i,
                        comm,
                        local,
                        g_dim,
                        g_dim,
                        asn.g_worker,
                        &asn.gradient_workers,
                    ));
                    if self.cfg.precompute_outer {
                        let local = self.states[i].outer.take();
                        b.outer = Some(self.begin_matrix_bcast(
                            i,
                            comm,
                            local,
                            g_dim,
                            a_dim,
                            asn.g_worker,
                            &asn.gradient_workers,
                        ));
                    } else {
                        // Ablation: ship raw eigenvalues; every worker
                        // recomputes the outer product per step.
                        let va_b = ctx.va[i].take().unwrap_or_else(|| vec![0.0; a_dim]);
                        let vg_b = ctx.vg[i].take().unwrap_or_else(|| vec![0.0; g_dim]);
                        let pending_a = self.times.time_layer(i, Stage::EigComm, || {
                            comm.begin_broadcast(
                                &va_b,
                                asn.a_worker,
                                &asn.gradient_workers,
                                CommTag::EigComm,
                            )
                        });
                        let pending_g = self.times.time_layer(i, Stage::EigComm, || {
                            comm.begin_broadcast(
                                &vg_b,
                                asn.g_worker,
                                &asn.gradient_workers,
                                CommTag::EigComm,
                            )
                        });
                        let receivers = (asn.gradient_workers.len() - 1) as u64;
                        if rank == asn.a_worker {
                            self.comm_bytes +=
                                (a_dim * precision.bytes_per_element()) as u64 * receivers;
                        }
                        if rank == asn.g_worker {
                            self.comm_bytes +=
                                (g_dim * precision.bytes_per_element()) as u64 * receivers;
                        }
                        b.va_buf = Some((pending_a, va_b));
                        b.vg_buf = Some((pending_g, vg_b));
                    }
                }
                ctx.bcasts[i] = b;
                TaskPoll::Done
            }
            TaskKind::EigBcastComplete(i) => {
                if !eig_bcasts_ready(comm, &ctx.bcasts[i]) {
                    return TaskPoll::Pending;
                }
                let b = std::mem::take(&mut ctx.bcasts[i]);
                if let Some(mb) = b.inv_a {
                    let m = self.complete_matrix_bcast(i, comm, mb);
                    self.states[i].inv_a = Some(m);
                }
                if let Some(mb) = b.inv_g {
                    let m = self.complete_matrix_bcast(i, comm, mb);
                    self.states[i].inv_g = Some(m);
                }
                if let Some(mb) = b.qa {
                    let m = self.complete_matrix_bcast(i, comm, mb);
                    self.states[i].qa = Some(m);
                }
                if let Some(mb) = b.qg {
                    let m = self.complete_matrix_bcast(i, comm, mb);
                    self.states[i].qg = Some(m);
                }
                if let Some(mb) = b.outer {
                    let m = self.complete_matrix_bcast(i, comm, mb);
                    self.states[i].outer = Some(m);
                }
                if let Some((pending, mut buf)) = b.va_buf {
                    self.times.time_layer(i, Stage::EigComm, || comm.complete(pending, &mut buf));
                    self.states[i].va = Some(buf);
                }
                if let Some((pending, mut buf)) = b.vg_buf {
                    self.times.time_layer(i, Stage::EigComm, || comm.complete(pending, &mut buf));
                    self.states[i].vg = Some(buf);
                }
                TaskPoll::Done
            }
            TaskKind::Precond(i) => {
                let asn = self.plan.layers[i].clone();
                let is_gw = asn.is_gradient_worker(rank);
                let precond = self.precondition_local(i, &ctx.grads[i], is_gw);
                ctx.precond[i] = Some(precond);
                TaskPoll::Done
            }
            TaskKind::GradBcastBegin(i) => {
                let asn = self.plan.layers[i].clone();
                let group =
                    asn.bcast_group_of(rank).expect("task planned only for members").clone();
                let root = group[0];
                let precond = ctx.precond[i].as_mut().expect("precondition ran");
                if rank == root {
                    precond.quantize(precision);
                    self.comm_bytes += (precond.numel()
                        * precision.bytes_per_element()
                        * (group.len() - 1)) as u64;
                }
                let pending = self.times.time_layer(i, Stage::GradComm, || {
                    comm.begin_broadcast(precond.as_slice(), root, &group, CommTag::GradComm)
                });
                ctx.grad_pending[i] = Some(pending);
                TaskPoll::Done
            }
            TaskKind::GradBcastComplete(i) => {
                let ready = ctx.grad_pending[i].as_ref().is_some_and(|p| comm.poll_ready(p));
                if !ready {
                    return TaskPoll::Pending;
                }
                let pending = ctx.grad_pending[i].take().expect("grad bcast begin ran");
                let buf = ctx.precond[i].as_mut().expect("precondition ran").as_mut_slice();
                self.times.time_layer(i, Stage::GradComm, || comm.complete(pending, buf));
                TaskPoll::Done
            }
            TaskKind::Scale => {
                let preconditioned: Vec<Matrix> = ctx
                    .precond
                    .iter_mut()
                    .map(|p| p.take().expect("every layer preconditioned"))
                    .collect();
                let grads = std::mem::take(&mut ctx.grads);
                self.scale_and_write_back(layers, &grads, preconditioned, lr);
                TaskPoll::Done
            }
        }
    }

    /// Execute a factor-complete task — the only task kinds that may
    /// outlive their step into the depth-D window. None of them touch the
    /// model's layers, which is what lets a retired step drain after the
    /// `kfac_layers()` borrow is gone.
    fn run_deferred_task(
        &mut self,
        kind: &TaskKind,
        comm: &dyn Communicator,
        ctx: &mut StepCtx,
    ) -> TaskPoll {
        let rank = self.rank;
        let precision = self.cfg.precision;
        let triangular = self.cfg.triangular_comm;
        match *kind {
            TaskKind::FactorDenseComplete(i) => {
                let ready = ctx.factor[i].as_ref().is_some_and(|fl| comm.poll_ready(&fl.pending));
                if !ready {
                    return TaskPoll::Pending;
                }
                let mut fl = ctx.factor[i].take().expect("factor begin ran");
                let decay = self.cfg.factor_decay;
                let (a_dim, g_dim) = (self.states[i].a_dim, self.states[i].g_dim);
                let (a_new, g_new) = self.times.time_layer(i, Stage::FactorComm, || {
                    comm.complete(fl.pending, &mut fl.buf);
                    unpack_factor_payload(
                        &mut fl.buf,
                        fl.split,
                        a_dim,
                        g_dim,
                        triangular,
                        precision,
                    )
                });
                self.comm_bytes += (factor_payload_len(a_dim, g_dim, triangular)
                    * precision.bytes_per_element()) as u64;
                self.times.time_layer(i, Stage::FactorCompute, || {
                    self.states[i].update_factors(a_new, g_new, decay);
                });
                self.note_factor_residency();
                TaskPoll::Done
            }
            TaskKind::FactorShardComplete(i) => {
                let ready = ctx.factor[i].as_ref().is_some_and(|fl| comm.poll_ready(&fl.pending));
                if !ready {
                    return TaskPoll::Pending;
                }
                let fl = ctx.factor[i].take().expect("factor begin ran");
                let asn = self.plan.layers[i].clone();
                let owned_len: usize = factor_shards(&asn, fl.split, fl.total)
                    .iter()
                    .filter(|s| s.owner == rank)
                    .map(|s| s.len)
                    .sum();
                let mut owned = vec![0.0f32; owned_len];
                self.times
                    .time_layer(i, Stage::FactorComm, || comm.complete(fl.pending, &mut owned));
                self.comm_bytes += (owned_len * precision.bytes_per_element()) as u64;
                ctx.splits[i] = (fl.split, fl.total);
                if self.needs_factor_gather(&asn) {
                    if asn.eig_worker_group().contains(&rank) {
                        ctx.owned[i] = Some(owned);
                    }
                } else {
                    self.fold_owned_sections(i, owned, fl.split, fl.total);
                }
                TaskPoll::Done
            }
            TaskKind::FactorGatherComplete(i) => {
                let ready = ctx.gather[i].as_ref().is_some_and(|(p, _)| comm.poll_ready(p));
                if !ready {
                    return TaskPoll::Pending;
                }
                let (pending, owned_len) = ctx.gather[i].take().expect("gather begin ran");
                let (split, total) = ctx.splits[i];
                let asn = self.plan.layers[i].clone();
                let mut gathered = vec![0.0f32; total];
                self.times
                    .time_layer(i, Stage::FactorComm, || comm.complete(pending, &mut gathered));
                self.comm_bytes += ((total - owned_len) * precision.bytes_per_element()) as u64;
                let payload = reassemble_gathered_payload(&asn, &gathered, split);
                self.fold_gathered_payload(i, payload, split);
                TaskPoll::Done
            }
            _ => unreachable!("only factor completes may outlive their step"),
        }
    }
}

/// True once every result broadcast a layer has in flight is ready to
/// complete without blocking.
fn eig_bcasts_ready(comm: &dyn Communicator, b: &LayerBcasts) -> bool {
    let mats = [&b.inv_a, &b.inv_g, &b.qa, &b.qg, &b.outer];
    mats.iter().all(|mb| mb.as_ref().map_or(true, |mb| comm.poll_ready(mb.pending())))
        && b.va_buf.as_ref().map_or(true, |(p, _)| comm.poll_ready(p))
        && b.vg_buf.as_ref().map_or(true, |(p, _)| comm.poll_ready(p))
}

#[cfg(test)]
mod tests {
    use crate::config::KfacConfig;
    use crate::preconditioner::Kfac;
    use kaisa_comm::{Communicator, LocalComm, ThreadComm};
    use kaisa_nn::models::Mlp;
    use kaisa_nn::Model;
    use kaisa_tensor::{Matrix, Rng};

    fn toy() -> (Mlp, Matrix, Vec<usize>) {
        let mut rng = Rng::seed_from_u64(404);
        let mlp = Mlp::new(&[6, 10, 3], &mut rng);
        let x = Matrix::randn(16, 6, 1.0, &mut rng);
        let y: Vec<usize> = (0..16).map(|i| i % 3).collect();
        (mlp, x, y)
    }

    #[test]
    fn runtime_matches_serial_single_rank() {
        let (model, x, y) = toy();
        let comm = LocalComm::new();
        let mut grads = Vec::new();
        for async_runtime in [false, true] {
            let mut m = model.clone();
            let cfg = KfacConfig::builder()
                .factor_update_freq(2)
                .inv_update_freq(4)
                .pipelined(false)
                .async_runtime(async_runtime)
                .build();
            let mut kfac = Kfac::new(cfg, &mut m, &comm);
            for _ in 0..5 {
                kfac.prepare(&mut m);
                m.zero_grad();
                let _ = m.forward_backward(&x, &y);
                kfac.step(&mut m, &comm, 0.1);
            }
            grads.push(m.grads_flat());
        }
        assert_eq!(grads[0], grads[1], "runtime executor must be bitwise identical to serial");
    }

    #[test]
    fn step_begin_finish_split_matches_monolithic_step() {
        let (model, x, y) = toy();
        let comm = LocalComm::new();
        let cfg = || {
            KfacConfig::builder()
                .factor_update_freq(1)
                .inv_update_freq(1)
                .async_runtime(true)
                .build()
        };
        let mut m1 = model.clone();
        let mut k1 = Kfac::new(cfg(), &mut m1, &comm);
        let mut m2 = model.clone();
        let mut k2 = Kfac::new(cfg(), &mut m2, &comm);
        for _ in 0..3 {
            k1.prepare(&mut m1);
            m1.zero_grad();
            let _ = m1.forward_backward(&x, &y);
            k1.step(&mut m1, &comm, 0.1);

            k2.prepare(&mut m2);
            m2.zero_grad();
            let _ = m2.forward_backward(&x, &y);
            k2.step_begin(&mut m2, &comm);
            k2.step_finish(&mut m2, &comm, 0.1);
        }
        assert_eq!(m1.grads_flat(), m2.grads_flat());
        assert_eq!(k1.steps(), k2.steps());
        assert_eq!(k1.comm_bytes(), k2.comm_bytes());
    }

    #[test]
    fn deep_window_matches_serial_single_rank() {
        let (model, x, y) = toy();
        let comm = LocalComm::new();
        let run = |depth: Option<usize>| {
            let mut m = model.clone();
            let mut b =
                KfacConfig::builder().factor_update_freq(2).inv_update_freq(4).pipelined(false);
            if let Some(d) = depth {
                b = b.async_runtime(true).cross_iter_depth(d);
            }
            let mut kfac = Kfac::new(b.build(), &mut m, &comm);
            for _ in 0..6 {
                kfac.prepare(&mut m);
                m.zero_grad();
                let _ = m.forward_backward(&x, &y);
                kfac.step(&mut m, &comm, 0.1);
            }
            kfac.flush(&comm);
            (m.grads_flat(), kfac.comm_bytes())
        };
        let serial = run(None);
        for depth in [2, 3] {
            assert_eq!(
                run(Some(depth)),
                serial,
                "depth-{depth} window must stay bitwise identical to serial"
            );
        }
    }

    #[test]
    fn deep_window_matches_depth_one_across_ranks() {
        let run_world = |depth: usize| {
            ThreadComm::run(2, move |comm| {
                let mut m = Mlp::new(&[6, 10, 3], &mut Rng::seed_from_u64(404));
                let mut rng = Rng::seed_from_u64(7 + comm.rank() as u64);
                let x = Matrix::randn(16, 6, 1.0, &mut rng);
                let y: Vec<usize> = (0..16).map(|i| (i + comm.rank()) % 3).collect();
                let cfg = KfacConfig::builder()
                    .factor_update_freq(2)
                    .inv_update_freq(4)
                    .async_runtime(true)
                    .cross_iter_depth(depth)
                    .sharded_factors(true)
                    .build();
                let mut kfac = Kfac::new(cfg, &mut m, comm);
                for _ in 0..6 {
                    kfac.prepare(&mut m);
                    m.zero_grad();
                    let _ = m.forward_backward(&x, &y);
                    kfac.step(&mut m, comm, 0.1);
                }
                kfac.flush(comm);
                comm.barrier();
                (m.grads_flat(), kfac.comm_bytes())
            })
        };
        let base = run_world(1);
        for depth in [2, 3] {
            assert_eq!(run_world(depth), base, "depth {depth} must match depth 1 on every rank");
        }
    }

    #[test]
    fn flush_between_halves_is_rejected() {
        let (model, x, y) = toy();
        let comm = LocalComm::new();
        let mut m = model.clone();
        let cfg = KfacConfig::builder()
            .factor_update_freq(1)
            .inv_update_freq(1)
            .async_runtime(true)
            .cross_iter_depth(2)
            .build();
        let mut kfac = Kfac::new(cfg, &mut m, &comm);
        kfac.prepare(&mut m);
        m.zero_grad();
        let _ = m.forward_backward(&x, &y);
        kfac.step_begin(&mut m, &comm);
        let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            kfac.flush(&comm);
        }))
        .expect_err("flush inside a step must panic");
        let msg = err
            .downcast_ref::<String>()
            .cloned()
            .or_else(|| err.downcast_ref::<&str>().map(|s| s.to_string()))
            .unwrap_or_default();
        assert!(msg.contains("between step_begin and step_finish"), "got: {msg}");
        kfac.step_finish(&mut m, &comm, 0.1);
    }

    #[test]
    fn mismatched_collective_trips_watchdog_instead_of_deadlocking() {
        // Rank 1 never enters the step, so rank 0's factor allreduce can
        // never become ready: the runtime must park, detect the stall, and
        // dump a diagnostic panic instead of hanging inside `complete`.
        // `ThreadComm::run` re-raises rank panics with a generic wrapper
        // message, so catch the panic inside the rank thread and assert on
        // the diagnostic text directly.
        let (model, x, y) = toy();
        let messages = ThreadComm::run(2, |comm| {
            let mut m = model.clone();
            let cfg = KfacConfig::builder()
                .factor_update_freq(1)
                .inv_update_freq(1)
                .async_runtime(true)
                .runtime_stall_timeout_ms(200)
                .build();
            let mut kfac = Kfac::new(cfg, &mut m, comm);
            kfac.prepare(&mut m);
            m.zero_grad();
            let _ = m.forward_backward(&x, &y);
            if comm.rank() != 0 {
                return String::new();
            }
            let payload = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                kfac.step(&mut m, comm, 0.1);
            }))
            .expect_err("rank 0's step must panic, not hang or succeed");
            if let Some(s) = payload.downcast_ref::<String>() {
                s.clone()
            } else if let Some(s) = payload.downcast_ref::<&str>() {
                (*s).to_string()
            } else {
                String::from("<non-string panic payload>")
            }
        });
        let diag = &messages[0];
        assert!(
            diag.contains("stall watchdog"),
            "expected the stall watchdog diagnostic, got: {diag}"
        );
        assert!(diag.contains("parked"), "diagnostic must dump the parked task state, got: {diag}");
    }
}
