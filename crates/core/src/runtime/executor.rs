//! The runtime executor: `Kfac::step` as a DAG of polled task units.
//!
//! Each phase of the K-FAC step decomposes into per-layer tasks (see
//! `TaskKind`): a *begin* task packs data and initiates the phase's
//! collective, a *complete* task polls its readiness, consumes the payload,
//! and folds it into state, and pure-compute tasks (eigensolves,
//! preconditioning) sit between them. The [`Scheduler`] runs these in data
//! dependency order, parking complete-side tasks whose collectives are
//! still in flight — so a rank blocked on one layer's allreduce keeps
//! working on other layers, later phases, or (via the
//! [`Kfac::step_begin`]/[`Kfac::step_finish`] split) the *next* iteration's
//! factor-accumulation phase.
//!
//! Bitwise equivalence with the serial and sweep executors holds because:
//!
//! - every task reuses the *same* stage kernels and quantization points in
//!   `crate::state` / `crate::preconditioner`,
//! - collective begin order is pinned per group by plan-time gates in
//!   canonical sweep order (the sweep executor's exact begin order), so the
//!   rank-ordered reductions see identical operand sequences, and
//! - the KL-clip scale runs as a single task in fixed serial layer order.

use kaisa_comm::{CommTag, Communicator, PendingCollective, ReduceOp};
use kaisa_nn::Model;
use kaisa_tensor::Matrix;

use crate::pipeline::executor::LayerBcasts;
use crate::preconditioner::{factor_shards, reassemble_gathered_payload, Kfac};
use crate::runtime::scheduler::{Scheduler, TaskPoll};
use crate::state::{
    factor_payload_len, pack_factor_payload, pack_factor_payload_scaled_into,
    unpack_factor_payload, KfacLayerState,
};
use crate::timing::Stage;

/// One schedulable unit of a K-FAC step, tagged with its layer index.
enum TaskKind {
    /// Finalize captured statistics, pack, and begin the factor allreduce
    /// (dense) or reduce-scatter (sharded). Gated on the world group.
    FactorBegin(usize),
    /// Complete the dense allreduce, unpack, and fold the averages.
    FactorDenseComplete(usize),
    /// Complete the reduce-scatter shard; fold it, or stash it for the
    /// direct-inverse fallback's regather.
    FactorShardComplete(usize),
    /// Begin the worker-group allgather that rematerializes the payload for
    /// the direct-inverse fallback. Gated on the eig worker group.
    FactorGatherBegin(usize),
    /// Complete the regather and fold on the A worker.
    FactorGatherComplete(usize),
    /// Local eigensolves / direct inverses for this rank's roles.
    EigSolve(usize),
    /// Begin the `v_A` shuttle to the G worker. Gated on the worker pair.
    EigPairBegin(usize),
    /// Complete the `v_A` shuttle.
    EigPairComplete(usize),
    /// Compute the damped reciprocal outer product on the G worker.
    EigOuter(usize),
    /// Begin every eigendecomposition result broadcast for this layer.
    /// Gated on the gradient-worker group.
    EigBcastBegin(usize),
    /// Complete the result broadcasts into the layer state.
    EigBcastComplete(usize),
    /// Precondition this layer's gradient locally.
    Precond(usize),
    /// Begin the preconditioned-gradient broadcast. Gated on the layer's
    /// broadcast group.
    GradBcastBegin(usize),
    /// Complete the preconditioned-gradient broadcast.
    GradBcastComplete(usize),
    /// KL-clip scale and write-back, in fixed serial layer order.
    Scale,
}

/// A factor collective in flight: the handle plus unpack metadata. `buf`
/// is the dense allreduce's payload buffer (empty under sharding, where the
/// complete side allocates its own shard buffer).
struct FactorInFlight {
    pending: PendingCollective,
    buf: Vec<f32>,
    split: usize,
    total: usize,
}

/// Mutable task-local state threaded between a step's tasks.
struct StepCtx {
    factor: Vec<Option<FactorInFlight>>,
    /// Per-layer `(split, total)` payload geometry, recorded by the sharded
    /// complete for the regather tasks.
    splits: Vec<(usize, usize)>,
    /// Owned shard awaiting the regather begin (sharded inverse fallback).
    owned: Vec<Option<Vec<f32>>>,
    /// Regather in flight: handle plus this rank's owned length.
    gather: Vec<Option<(PendingCollective, usize)>>,
    va: Vec<Option<Vec<f32>>>,
    vg: Vec<Option<Vec<f32>>>,
    pair: Vec<Option<(PendingCollective, Vec<f32>)>>,
    bcasts: Vec<LayerBcasts>,
    grads: Vec<Matrix>,
    precond: Vec<Option<Matrix>>,
    grad_pending: Vec<Option<PendingCollective>>,
}

impl StepCtx {
    fn new(n: usize) -> Self {
        StepCtx {
            factor: (0..n).map(|_| None).collect(),
            splits: vec![(0, 0); n],
            owned: (0..n).map(|_| None).collect(),
            gather: (0..n).map(|_| None).collect(),
            va: (0..n).map(|_| None).collect(),
            vg: (0..n).map(|_| None).collect(),
            pair: (0..n).map(|_| None).collect(),
            bcasts: (0..n).map(|_| LayerBcasts::default()).collect(),
            grads: Vec::new(),
            precond: (0..n).map(|_| None).collect(),
            grad_pending: (0..n).map(|_| None).collect(),
        }
    }
}

/// An in-progress runtime step, stashed on [`Kfac`] between
/// [`Kfac::step_begin`] and [`Kfac::step_finish`].
pub struct RuntimeStep {
    sched: Scheduler,
    kinds: Vec<TaskKind>,
    ctx: StepCtx,
}

impl std::fmt::Debug for RuntimeStep {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RuntimeStep").field("tasks", &self.kinds.len()).finish()
    }
}

impl Kfac {
    /// Plan the step's task DAG: tasks in canonical phase order, layers in
    /// sweep order within each phase, so per-group gate sequences reproduce
    /// the sweep executor's begin order exactly. Every task except the
    /// factor begins starts *held* (released by `step_finish`), giving
    /// `step_begin` its factor-only contract.
    fn build_runtime_step(&mut self) -> RuntimeStep {
        fn push(
            sched: &mut Scheduler,
            kinds: &mut Vec<TaskKind>,
            kind: TaskKind,
            label: String,
            gate: Option<usize>,
            deps: &[usize],
        ) -> usize {
            kinds.push(kind);
            sched.add_task(label, gate, deps)
        }

        let n = self.states.len();
        let rank = self.rank;
        let factor_step = self.is_factor_update_step();
        let inv_step = self.is_inv_update_step();
        let use_eigen = self.cfg.use_eigen;
        let precompute = self.cfg.precompute_outer;
        let order = self.sweep_order.clone();
        let mut sched = Scheduler::new(rank, self.cfg.runtime_stall_timeout_ms);
        let mut kinds: Vec<TaskKind> = Vec::new();

        // Phase 1: factor update.
        let mut fold_task: Vec<Option<usize>> = vec![None; n];
        if factor_step {
            let world_group: Vec<usize> = (0..self.world).collect();
            let wg = sched.add_group(&world_group);
            let mut begin_id = vec![0usize; n];
            for &i in &order {
                begin_id[i] = push(
                    &mut sched,
                    &mut kinds,
                    TaskKind::FactorBegin(i),
                    format!("factor-begin L{i}"),
                    Some(wg),
                    &[],
                );
            }
            if self.cfg.sharded_factors {
                for &i in &order {
                    fold_task[i] = Some(push(
                        &mut sched,
                        &mut kinds,
                        TaskKind::FactorShardComplete(i),
                        format!("factor-shard-complete L{i}"),
                        None,
                        &[begin_id[i]],
                    ));
                }
                for &i in &order {
                    let asn = self.plan.layers[i].clone();
                    if self.needs_factor_gather(&asn) && asn.eig_worker_group().contains(&rank) {
                        let eg = sched.add_group(&asn.eig_worker_group());
                        let gb = push(
                            &mut sched,
                            &mut kinds,
                            TaskKind::FactorGatherBegin(i),
                            format!("factor-gather-begin L{i}"),
                            Some(eg),
                            &[fold_task[i].expect("shard complete planned")],
                        );
                        fold_task[i] = Some(push(
                            &mut sched,
                            &mut kinds,
                            TaskKind::FactorGatherComplete(i),
                            format!("factor-gather-complete L{i}"),
                            None,
                            &[gb],
                        ));
                    }
                }
            } else {
                for &i in &order {
                    fold_task[i] = Some(push(
                        &mut sched,
                        &mut kinds,
                        TaskKind::FactorDenseComplete(i),
                        format!("factor-complete L{i}"),
                        None,
                        &[begin_id[i]],
                    ));
                }
            }
        }

        // Phase 2: eigendecompositions.
        let mut eig_last: Vec<Option<usize>> = vec![None; n];
        if inv_step {
            for &i in &order {
                let deps: Vec<usize> = fold_task[i].into_iter().collect();
                let s = push(
                    &mut sched,
                    &mut kinds,
                    TaskKind::EigSolve(i),
                    format!("eig-solve L{i}"),
                    None,
                    &deps,
                );
                eig_last[i] = Some(s);
                let asn = self.plan.layers[i].clone();
                let mut pair_complete = None;
                if use_eigen
                    && precompute
                    && asn.a_worker != asn.g_worker
                    && (rank == asn.a_worker || rank == asn.g_worker)
                {
                    let pg = sched.add_group(&[asn.a_worker, asn.g_worker]);
                    let pb = push(
                        &mut sched,
                        &mut kinds,
                        TaskKind::EigPairBegin(i),
                        format!("eig-pair-begin L{i}"),
                        Some(pg),
                        &[s],
                    );
                    let pc = push(
                        &mut sched,
                        &mut kinds,
                        TaskKind::EigPairComplete(i),
                        format!("eig-pair-complete L{i}"),
                        None,
                        &[pb],
                    );
                    pair_complete = Some(pc);
                    eig_last[i] = Some(pc);
                }
                if use_eigen && precompute && rank == asn.g_worker {
                    let mut deps = vec![s];
                    deps.extend(pair_complete);
                    eig_last[i] = Some(push(
                        &mut sched,
                        &mut kinds,
                        TaskKind::EigOuter(i),
                        format!("eig-outer L{i}"),
                        None,
                        &deps,
                    ));
                }
            }
            for &i in &order {
                let asn = self.plan.layers[i].clone();
                if asn.is_gradient_worker(rank) && asn.gradient_workers.len() > 1 {
                    let gg = sched.add_group(&asn.gradient_workers);
                    let bb = push(
                        &mut sched,
                        &mut kinds,
                        TaskKind::EigBcastBegin(i),
                        format!("eig-bcast-begin L{i}"),
                        Some(gg),
                        &[eig_last[i].expect("eig solve planned")],
                    );
                    eig_last[i] = Some(push(
                        &mut sched,
                        &mut kinds,
                        TaskKind::EigBcastComplete(i),
                        format!("eig-bcast-complete L{i}"),
                        None,
                        &[bb],
                    ));
                }
            }
        }

        // Phase 3: precondition, gradient broadcasts, scale.
        let mut grad_last = vec![0usize; n];
        for &i in &order {
            let deps: Vec<usize> = eig_last[i].into_iter().collect();
            let p = push(
                &mut sched,
                &mut kinds,
                TaskKind::Precond(i),
                format!("precondition L{i}"),
                None,
                &deps,
            );
            grad_last[i] = p;
            let asn = self.plan.layers[i].clone();
            if let Some(group) = asn.bcast_group_of(rank) {
                let gg = sched.add_group(group);
                let gb = push(
                    &mut sched,
                    &mut kinds,
                    TaskKind::GradBcastBegin(i),
                    format!("grad-bcast-begin L{i}"),
                    Some(gg),
                    &[p],
                );
                grad_last[i] = push(
                    &mut sched,
                    &mut kinds,
                    TaskKind::GradBcastComplete(i),
                    format!("grad-bcast-complete L{i}"),
                    None,
                    &[gb],
                );
            }
        }
        push(&mut sched, &mut kinds, TaskKind::Scale, "scale".to_string(), None, &grad_last);

        for (id, kind) in kinds.iter().enumerate() {
            if !matches!(kind, TaskKind::FactorBegin(_)) {
                sched.hold(id);
            }
        }
        RuntimeStep { sched, kinds, ctx: StepCtx::new(n) }
    }

    /// Start a runtime step: plan the task DAG and run the factor-phase
    /// *begin* tasks only, leaving their collectives in flight. Call after
    /// the backward pass, *before* the data-parallel gradient allreduce —
    /// that lets the factor reductions overlap the DDP allreduce and the
    /// remainder of the step (the paper's cross-iteration lookahead).
    /// Every rank must call this at the same point so the world-group
    /// collective order stays consistent. Requires `async_runtime`.
    pub fn step_begin<M: Model>(&mut self, model: &mut M, comm: &dyn Communicator) {
        assert!(self.cfg.async_runtime, "step_begin requires async_runtime(true)");
        assert!(
            self.runtime_step.is_none(),
            "step_begin called twice without an intervening step_finish"
        );
        let mut layers = model.kfac_layers();
        assert_eq!(layers.len(), self.states.len(), "layer set changed after registration");
        let RuntimeStep { mut sched, kinds, mut ctx } = self.build_runtime_step();
        sched.run(|id| self.run_task(&kinds[id], &mut layers, comm, &mut ctx, 0.0));
        self.runtime_step = Some(RuntimeStep { sched, kinds, ctx });
    }

    /// Finish a runtime step begun by [`Kfac::step_begin`]: release the
    /// held tasks and run the scheduler to quiescence. Call after the
    /// data-parallel gradient allreduce; `lr` enters the KL-clip scale as
    /// in [`Kfac::step`].
    pub fn step_finish<M: Model>(&mut self, model: &mut M, comm: &dyn Communicator, lr: f32) {
        let RuntimeStep { mut sched, kinds, mut ctx } =
            self.runtime_step.take().expect("step_finish requires a prior step_begin");
        let mut layers = model.kfac_layers();
        assert_eq!(layers.len(), self.states.len(), "layer set changed after registration");
        // Gradients are final only now (post-DDP), so the plan defers their
        // capture — and every task that reads them — to this half.
        ctx.grads = layers.iter().map(|l| l.combined_grad()).collect();
        sched.release_all();
        sched.run(|id| self.run_task(&kinds[id], &mut layers, comm, &mut ctx, lr));
        self.note_step_residency();
        self.steps += 1;
        self.times.steps += 1;
    }

    /// Execute one task unit. Complete-side tasks return
    /// [`TaskPoll::Pending`] while their collective is in flight.
    fn run_task(
        &mut self,
        kind: &TaskKind,
        layers: &mut [&mut dyn kaisa_nn::KfacAble],
        comm: &dyn Communicator,
        ctx: &mut StepCtx,
        lr: f32,
    ) -> TaskPoll {
        let rank = self.rank;
        let precision = self.cfg.precision;
        let triangular = self.cfg.triangular_comm;
        match *kind {
            TaskKind::FactorBegin(i) => {
                let layer = &mut layers[i];
                let stats = layer.capture_mut().take_stats().unwrap_or_else(|| {
                    panic!(
                        "layer {}: no captured statistics — call Kfac::prepare() before the forward pass",
                        layer.layer_name()
                    )
                });
                let world_group: Vec<usize> = (0..self.world).collect();
                if self.cfg.sharded_factors {
                    // Scale-and-pack straight into the reusable staging
                    // buffer; no scaled square statistics materialize.
                    let asn = self.plan.layers[i].clone();
                    let mut staging = std::mem::take(&mut self.staging[i]);
                    let split = self.times.time_layer(i, Stage::FactorCompute, || {
                        let inv = 1.0 / stats.batches.max(1) as f32;
                        pack_factor_payload_scaled_into(
                            &mut staging,
                            &stats.a_stat,
                            &stats.g_stat,
                            inv,
                            triangular,
                            precision,
                        )
                    });
                    let total = staging.len();
                    let entry = self.times.time_layer(i, Stage::FactorComm, || {
                        let shards = factor_shards(&asn, split, total);
                        let pending = comm.begin_reduce_scatter(
                            &staging,
                            ReduceOp::Avg,
                            &world_group,
                            &shards,
                            CommTag::FactorReduce,
                        );
                        FactorInFlight { pending, buf: Vec::new(), split, total }
                    });
                    // The begin copies the payload, so staging is reusable.
                    self.staging[i] = staging;
                    ctx.factor[i] = Some(entry);
                } else {
                    let (a_new, g_new) = self.times.time_layer(i, Stage::FactorCompute, || {
                        let inv = 1.0 / stats.batches.max(1) as f32;
                        let mut a = stats.a_stat;
                        a.scale(inv);
                        let mut g = stats.g_stat;
                        g.scale(inv);
                        (a, g)
                    });
                    let entry = self.times.time_layer(i, Stage::FactorComm, || {
                        let (buf, split) =
                            pack_factor_payload(&a_new, &g_new, triangular, precision);
                        let total = buf.len();
                        let pending = comm.begin_allreduce(
                            &buf,
                            ReduceOp::Avg,
                            &world_group,
                            CommTag::FactorComm,
                        );
                        FactorInFlight { pending, buf, split, total }
                    });
                    ctx.factor[i] = Some(entry);
                }
                TaskPoll::Done
            }
            TaskKind::FactorDenseComplete(i) => {
                let ready = ctx.factor[i].as_ref().is_some_and(|fl| comm.poll_ready(&fl.pending));
                if !ready {
                    return TaskPoll::Pending;
                }
                let mut fl = ctx.factor[i].take().expect("factor begin ran");
                let decay = self.cfg.factor_decay;
                let (a_dim, g_dim) = (self.states[i].a_dim, self.states[i].g_dim);
                let (a_new, g_new) = self.times.time_layer(i, Stage::FactorComm, || {
                    comm.complete(fl.pending, &mut fl.buf);
                    unpack_factor_payload(
                        &mut fl.buf,
                        fl.split,
                        a_dim,
                        g_dim,
                        triangular,
                        precision,
                    )
                });
                self.comm_bytes += (factor_payload_len(a_dim, g_dim, triangular)
                    * precision.bytes_per_element()) as u64;
                self.times.time_layer(i, Stage::FactorCompute, || {
                    self.states[i].update_factors(a_new, g_new, decay);
                });
                self.note_factor_residency();
                TaskPoll::Done
            }
            TaskKind::FactorShardComplete(i) => {
                let ready = ctx.factor[i].as_ref().is_some_and(|fl| comm.poll_ready(&fl.pending));
                if !ready {
                    return TaskPoll::Pending;
                }
                let fl = ctx.factor[i].take().expect("factor begin ran");
                let asn = self.plan.layers[i].clone();
                let owned_len: usize = factor_shards(&asn, fl.split, fl.total)
                    .iter()
                    .filter(|s| s.owner == rank)
                    .map(|s| s.len)
                    .sum();
                let mut owned = vec![0.0f32; owned_len];
                self.times
                    .time_layer(i, Stage::FactorComm, || comm.complete(fl.pending, &mut owned));
                self.comm_bytes += (owned_len * precision.bytes_per_element()) as u64;
                ctx.splits[i] = (fl.split, fl.total);
                if self.needs_factor_gather(&asn) {
                    if asn.eig_worker_group().contains(&rank) {
                        ctx.owned[i] = Some(owned);
                    }
                } else {
                    self.fold_owned_sections(i, owned, fl.split, fl.total);
                }
                TaskPoll::Done
            }
            TaskKind::FactorGatherBegin(i) => {
                let owned = ctx.owned[i].take().expect("shard complete stashed the shard");
                let asn = self.plan.layers[i].clone();
                let group = asn.eig_worker_group();
                let pending = self.times.time_layer(i, Stage::FactorComm, || {
                    comm.begin_allgather(&owned, &group, CommTag::FactorGather)
                });
                ctx.gather[i] = Some((pending, owned.len()));
                TaskPoll::Done
            }
            TaskKind::FactorGatherComplete(i) => {
                let ready = ctx.gather[i].as_ref().is_some_and(|(p, _)| comm.poll_ready(p));
                if !ready {
                    return TaskPoll::Pending;
                }
                let (pending, owned_len) = ctx.gather[i].take().expect("gather begin ran");
                let (split, total) = ctx.splits[i];
                let asn = self.plan.layers[i].clone();
                let mut gathered = vec![0.0f32; total];
                self.times
                    .time_layer(i, Stage::FactorComm, || comm.complete(pending, &mut gathered));
                self.comm_bytes += ((total - owned_len) * precision.bytes_per_element()) as u64;
                let payload = reassemble_gathered_payload(&asn, &gathered, split);
                self.fold_gathered_payload(i, payload, split);
                TaskPoll::Done
            }
            TaskKind::EigSolve(i) => {
                let asn = self.plan.layers[i].clone();
                let damping = self.cfg.damping;
                if self.cfg.ekfac {
                    self.states[i].ekfac_scale = None;
                }
                self.note_decomposition_transients(i);
                if !self.cfg.use_eigen {
                    if rank == asn.a_worker {
                        self.times.time_layer(i, Stage::EigCompute, || {
                            self.states[i].compute_inverses(damping);
                        });
                    }
                    return TaskPoll::Done;
                }
                if rank == asn.a_worker {
                    let (qa, values) =
                        self.times.time_layer(i, Stage::EigCompute, || self.states[i].eig_a());
                    self.states[i].qa = Some(qa);
                    ctx.va[i] = Some(values);
                }
                if rank == asn.g_worker {
                    let (qg, values) =
                        self.times.time_layer(i, Stage::EigCompute, || self.states[i].eig_g());
                    self.states[i].qg = Some(qg);
                    ctx.vg[i] = Some(values);
                }
                if asn.is_gradient_worker(rank)
                    && asn.gradient_workers.len() == 1
                    && !self.cfg.precompute_outer
                {
                    // Single gradient worker: keep local values (no bcast).
                    if let Some(values) = ctx.va[i].take() {
                        self.states[i].va = Some(values);
                    }
                    if let Some(values) = ctx.vg[i].take() {
                        self.states[i].vg = Some(values);
                    }
                }
                TaskPoll::Done
            }
            TaskKind::EigPairBegin(i) => {
                let asn = self.plan.layers[i].clone();
                let a_dim = self.states[i].a_dim;
                let pair = [asn.a_worker, asn.g_worker];
                let buf = ctx.va[i].clone().unwrap_or_else(|| vec![0.0; a_dim]);
                let pending = self.times.time_layer(i, Stage::EigComm, || {
                    comm.begin_broadcast(&buf, asn.a_worker, &pair, CommTag::EigComm)
                });
                if rank == asn.a_worker {
                    self.comm_bytes += (a_dim * precision.bytes_per_element()) as u64;
                }
                ctx.pair[i] = Some((pending, buf));
                TaskPoll::Done
            }
            TaskKind::EigPairComplete(i) => {
                let ready = ctx.pair[i].as_ref().is_some_and(|(p, _)| comm.poll_ready(p));
                if !ready {
                    return TaskPoll::Pending;
                }
                let (pending, mut buf) = ctx.pair[i].take().expect("pair begin ran");
                self.times.time_layer(i, Stage::EigComm, || comm.complete(pending, &mut buf));
                if rank == self.plan.layers[i].g_worker {
                    ctx.va[i] = Some(buf);
                }
                TaskPoll::Done
            }
            TaskKind::EigOuter(i) => {
                let damping = self.cfg.damping;
                let outer = self.times.time_layer(i, Stage::EigCompute, || {
                    KfacLayerState::compute_outer(
                        ctx.vg[i].as_ref().expect("G worker has v_G"),
                        ctx.va[i].as_ref().expect("G worker received v_A"),
                        damping,
                    )
                });
                self.states[i].outer = Some(outer);
                TaskPoll::Done
            }
            TaskKind::EigBcastBegin(i) => {
                let asn = self.plan.layers[i].clone();
                let (a_dim, g_dim) = (self.states[i].a_dim, self.states[i].g_dim);
                let mut b = LayerBcasts::default();
                if !self.cfg.use_eigen {
                    let local = self.states[i].inv_a.take();
                    b.inv_a = Some(self.begin_matrix_bcast(
                        i,
                        comm,
                        local,
                        a_dim,
                        a_dim,
                        asn.a_worker,
                        &asn.gradient_workers,
                    ));
                    let local = self.states[i].inv_g.take();
                    b.inv_g = Some(self.begin_matrix_bcast(
                        i,
                        comm,
                        local,
                        g_dim,
                        g_dim,
                        asn.a_worker,
                        &asn.gradient_workers,
                    ));
                } else {
                    let local = self.states[i].qa.take();
                    b.qa = Some(self.begin_matrix_bcast(
                        i,
                        comm,
                        local,
                        a_dim,
                        a_dim,
                        asn.a_worker,
                        &asn.gradient_workers,
                    ));
                    let local = self.states[i].qg.take();
                    b.qg = Some(self.begin_matrix_bcast(
                        i,
                        comm,
                        local,
                        g_dim,
                        g_dim,
                        asn.g_worker,
                        &asn.gradient_workers,
                    ));
                    if self.cfg.precompute_outer {
                        let local = self.states[i].outer.take();
                        b.outer = Some(self.begin_matrix_bcast(
                            i,
                            comm,
                            local,
                            g_dim,
                            a_dim,
                            asn.g_worker,
                            &asn.gradient_workers,
                        ));
                    } else {
                        // Ablation: ship raw eigenvalues; every worker
                        // recomputes the outer product per step.
                        let va_b = ctx.va[i].take().unwrap_or_else(|| vec![0.0; a_dim]);
                        let vg_b = ctx.vg[i].take().unwrap_or_else(|| vec![0.0; g_dim]);
                        let pending_a = self.times.time_layer(i, Stage::EigComm, || {
                            comm.begin_broadcast(
                                &va_b,
                                asn.a_worker,
                                &asn.gradient_workers,
                                CommTag::EigComm,
                            )
                        });
                        let pending_g = self.times.time_layer(i, Stage::EigComm, || {
                            comm.begin_broadcast(
                                &vg_b,
                                asn.g_worker,
                                &asn.gradient_workers,
                                CommTag::EigComm,
                            )
                        });
                        let receivers = (asn.gradient_workers.len() - 1) as u64;
                        if rank == asn.a_worker {
                            self.comm_bytes +=
                                (a_dim * precision.bytes_per_element()) as u64 * receivers;
                        }
                        if rank == asn.g_worker {
                            self.comm_bytes +=
                                (g_dim * precision.bytes_per_element()) as u64 * receivers;
                        }
                        b.va_buf = Some((pending_a, va_b));
                        b.vg_buf = Some((pending_g, vg_b));
                    }
                }
                ctx.bcasts[i] = b;
                TaskPoll::Done
            }
            TaskKind::EigBcastComplete(i) => {
                if !eig_bcasts_ready(comm, &ctx.bcasts[i]) {
                    return TaskPoll::Pending;
                }
                let b = std::mem::take(&mut ctx.bcasts[i]);
                if let Some(mb) = b.inv_a {
                    let m = self.complete_matrix_bcast(i, comm, mb);
                    self.states[i].inv_a = Some(m);
                }
                if let Some(mb) = b.inv_g {
                    let m = self.complete_matrix_bcast(i, comm, mb);
                    self.states[i].inv_g = Some(m);
                }
                if let Some(mb) = b.qa {
                    let m = self.complete_matrix_bcast(i, comm, mb);
                    self.states[i].qa = Some(m);
                }
                if let Some(mb) = b.qg {
                    let m = self.complete_matrix_bcast(i, comm, mb);
                    self.states[i].qg = Some(m);
                }
                if let Some(mb) = b.outer {
                    let m = self.complete_matrix_bcast(i, comm, mb);
                    self.states[i].outer = Some(m);
                }
                if let Some((pending, mut buf)) = b.va_buf {
                    self.times.time_layer(i, Stage::EigComm, || comm.complete(pending, &mut buf));
                    self.states[i].va = Some(buf);
                }
                if let Some((pending, mut buf)) = b.vg_buf {
                    self.times.time_layer(i, Stage::EigComm, || comm.complete(pending, &mut buf));
                    self.states[i].vg = Some(buf);
                }
                TaskPoll::Done
            }
            TaskKind::Precond(i) => {
                let asn = self.plan.layers[i].clone();
                let is_gw = asn.is_gradient_worker(rank);
                let precond = self.precondition_local(i, &ctx.grads[i], is_gw);
                ctx.precond[i] = Some(precond);
                TaskPoll::Done
            }
            TaskKind::GradBcastBegin(i) => {
                let asn = self.plan.layers[i].clone();
                let group =
                    asn.bcast_group_of(rank).expect("task planned only for members").clone();
                let root = group[0];
                let precond = ctx.precond[i].as_mut().expect("precondition ran");
                if rank == root {
                    precond.quantize(precision);
                    self.comm_bytes += (precond.numel()
                        * precision.bytes_per_element()
                        * (group.len() - 1)) as u64;
                }
                let pending = self.times.time_layer(i, Stage::GradComm, || {
                    comm.begin_broadcast(precond.as_slice(), root, &group, CommTag::GradComm)
                });
                ctx.grad_pending[i] = Some(pending);
                TaskPoll::Done
            }
            TaskKind::GradBcastComplete(i) => {
                let ready = ctx.grad_pending[i].as_ref().is_some_and(|p| comm.poll_ready(p));
                if !ready {
                    return TaskPoll::Pending;
                }
                let pending = ctx.grad_pending[i].take().expect("grad bcast begin ran");
                let buf = ctx.precond[i].as_mut().expect("precondition ran").as_mut_slice();
                self.times.time_layer(i, Stage::GradComm, || comm.complete(pending, buf));
                TaskPoll::Done
            }
            TaskKind::Scale => {
                let preconditioned: Vec<Matrix> = ctx
                    .precond
                    .iter_mut()
                    .map(|p| p.take().expect("every layer preconditioned"))
                    .collect();
                let grads = std::mem::take(&mut ctx.grads);
                self.scale_and_write_back(layers, &grads, preconditioned, lr);
                TaskPoll::Done
            }
        }
    }
}

/// True once every result broadcast a layer has in flight is ready to
/// complete without blocking.
fn eig_bcasts_ready(comm: &dyn Communicator, b: &LayerBcasts) -> bool {
    let mats = [&b.inv_a, &b.inv_g, &b.qa, &b.qg, &b.outer];
    mats.iter().all(|mb| mb.as_ref().map_or(true, |mb| comm.poll_ready(mb.pending())))
        && b.va_buf.as_ref().map_or(true, |(p, _)| comm.poll_ready(p))
        && b.vg_buf.as_ref().map_or(true, |(p, _)| comm.poll_ready(p))
}

#[cfg(test)]
mod tests {
    use crate::config::KfacConfig;
    use crate::preconditioner::Kfac;
    use kaisa_comm::{Communicator, LocalComm, ThreadComm};
    use kaisa_nn::models::Mlp;
    use kaisa_nn::Model;
    use kaisa_tensor::{Matrix, Rng};

    fn toy() -> (Mlp, Matrix, Vec<usize>) {
        let mut rng = Rng::seed_from_u64(404);
        let mlp = Mlp::new(&[6, 10, 3], &mut rng);
        let x = Matrix::randn(16, 6, 1.0, &mut rng);
        let y: Vec<usize> = (0..16).map(|i| i % 3).collect();
        (mlp, x, y)
    }

    #[test]
    fn runtime_matches_serial_single_rank() {
        let (model, x, y) = toy();
        let comm = LocalComm::new();
        let mut grads = Vec::new();
        for async_runtime in [false, true] {
            let mut m = model.clone();
            let cfg = KfacConfig::builder()
                .factor_update_freq(2)
                .inv_update_freq(4)
                .pipelined(false)
                .async_runtime(async_runtime)
                .build();
            let mut kfac = Kfac::new(cfg, &mut m, &comm);
            for _ in 0..5 {
                kfac.prepare(&mut m);
                m.zero_grad();
                let _ = m.forward_backward(&x, &y);
                kfac.step(&mut m, &comm, 0.1);
            }
            grads.push(m.grads_flat());
        }
        assert_eq!(grads[0], grads[1], "runtime executor must be bitwise identical to serial");
    }

    #[test]
    fn step_begin_finish_split_matches_monolithic_step() {
        let (model, x, y) = toy();
        let comm = LocalComm::new();
        let cfg = || {
            KfacConfig::builder()
                .factor_update_freq(1)
                .inv_update_freq(1)
                .async_runtime(true)
                .build()
        };
        let mut m1 = model.clone();
        let mut k1 = Kfac::new(cfg(), &mut m1, &comm);
        let mut m2 = model.clone();
        let mut k2 = Kfac::new(cfg(), &mut m2, &comm);
        for _ in 0..3 {
            k1.prepare(&mut m1);
            m1.zero_grad();
            let _ = m1.forward_backward(&x, &y);
            k1.step(&mut m1, &comm, 0.1);

            k2.prepare(&mut m2);
            m2.zero_grad();
            let _ = m2.forward_backward(&x, &y);
            k2.step_begin(&mut m2, &comm);
            k2.step_finish(&mut m2, &comm, 0.1);
        }
        assert_eq!(m1.grads_flat(), m2.grads_flat());
        assert_eq!(k1.steps(), k2.steps());
        assert_eq!(k1.comm_bytes(), k2.comm_bytes());
    }

    #[test]
    fn mismatched_collective_trips_watchdog_instead_of_deadlocking() {
        // Rank 1 never enters the step, so rank 0's factor allreduce can
        // never become ready: the runtime must park, detect the stall, and
        // dump a diagnostic panic instead of hanging inside `complete`.
        // `ThreadComm::run` re-raises rank panics with a generic wrapper
        // message, so catch the panic inside the rank thread and assert on
        // the diagnostic text directly.
        let (model, x, y) = toy();
        let messages = ThreadComm::run(2, |comm| {
            let mut m = model.clone();
            let cfg = KfacConfig::builder()
                .factor_update_freq(1)
                .inv_update_freq(1)
                .async_runtime(true)
                .runtime_stall_timeout_ms(200)
                .build();
            let mut kfac = Kfac::new(cfg, &mut m, comm);
            kfac.prepare(&mut m);
            m.zero_grad();
            let _ = m.forward_backward(&x, &y);
            if comm.rank() != 0 {
                return String::new();
            }
            let payload = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                kfac.step(&mut m, comm, 0.1);
            }))
            .expect_err("rank 0's step must panic, not hang or succeed");
            if let Some(s) = payload.downcast_ref::<String>() {
                s.clone()
            } else if let Some(s) = payload.downcast_ref::<&str>() {
                (*s).to_string()
            } else {
                String::from("<non-string panic payload>")
            }
        });
        let diag = &messages[0];
        assert!(
            diag.contains("stall watchdog"),
            "expected the stall watchdog diagnostic, got: {diag}"
        );
        assert!(diag.contains("parked"), "diagnostic must dump the parked task state, got: {diag}");
    }
}
