//! The per-rank cooperative task scheduler.
//!
//! A [`Scheduler`] owns a small DAG of tasks and repeatedly scans it for
//! *runnable* work: tasks whose dependencies are all done and whose *gate*
//! (if any) is open. Two task flavours exist, with different blocking
//! disciplines:
//!
//! - **Gated tasks** issue collectives (`begin_*` calls). Their gate
//!   `(group, seq)` is assigned at plan time in canonical sweep order, and
//!   the scheduler refuses to run a gated task until every earlier gated
//!   task on the same communication group has finished. Because every rank
//!   plans the same per-group task sequence, this pins the per-group begin
//!   order that the rendezvous matching rule requires — which is exactly
//!   what makes the runtime bitwise identical to the sweep executor. Begins
//!   never block, so a gated task must finish on its first poll.
//! - **Parkable tasks** consume collectives (`complete` calls). They poll
//!   readiness and return [`TaskPoll::Pending`] while the collective is in
//!   flight; the scheduler *parks* them and hands the rank to any other
//!   runnable task — including tasks of a later phase whose data
//!   dependencies are already satisfied.
//!
//! When a full scan makes no progress the scheduler briefly sleeps (ranks
//! are threads; sleeping yields the core to peer ranks) and checks the
//! stall watchdog: if no task has finished for the configured timeout, the
//! scheduler panics with a per-task state dump instead of hanging the
//! process — turning a mismatched collective into a failing diagnostic.

use std::time::{Duration, Instant};

/// Result of polling one task.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TaskPoll {
    /// The task ran to completion; its dependents may become runnable.
    Done,
    /// The task is waiting on an in-flight collective: park it and poll it
    /// again on a later pass. Only parkable (ungated) tasks may return this.
    Pending,
}

/// One task in the scheduler's DAG.
struct Node {
    /// Human-readable name, used only by the watchdog diagnostic.
    label: String,
    /// `(group, seq)` issue gate for begin-bearing tasks; `None` for
    /// compute-only and complete-side tasks.
    gate: Option<(usize, u64)>,
    /// Unfinished dependency count; runnable at zero.
    deps_remaining: usize,
    /// Tasks whose `deps_remaining` drops when this one finishes.
    dependents: Vec<usize>,
    /// The task returned `Pending` on its most recent poll.
    parked: bool,
    /// The task finished.
    done: bool,
    /// Withheld from scheduling (the `step_begin`/`step_finish` split).
    held: bool,
    /// The task may outlive its step's drain: [`Scheduler::run_released`]
    /// exits without waiting for it, leaving it to a later window poll.
    deferrable: bool,
}

/// Per-rank cooperative scheduler with gated begins and parked completes.
pub struct Scheduler {
    nodes: Vec<Node>,
    /// Normalized (sorted, deduplicated) membership of each gate group.
    groups: Vec<Vec<usize>>,
    /// Next gate sequence number to *run* per group.
    group_next: Vec<u64>,
    /// Next gate sequence number to *assign* per group (plan-time counter).
    group_seq: Vec<u64>,
    rank: usize,
    stall_timeout: Duration,
    /// `(window index, iteration number)` of the step this DAG belongs to,
    /// included in the watchdog panic and the state dump so a stall in a
    /// depth-D window names *which* in-flight step wedged.
    window: Option<(u64, u64)>,
}

impl Scheduler {
    /// Create an empty scheduler for `rank` with the given stall-watchdog
    /// timeout in milliseconds.
    pub fn new(rank: usize, stall_timeout_ms: u64) -> Self {
        Scheduler {
            nodes: Vec::new(),
            groups: Vec::new(),
            group_next: Vec::new(),
            group_seq: Vec::new(),
            rank,
            stall_timeout: Duration::from_millis(stall_timeout_ms),
            window: None,
        }
    }

    /// Like [`Scheduler::new`], tagged with the cross-iteration window index
    /// and iteration number the DAG was planned for (watchdog context).
    pub fn with_window(
        rank: usize,
        stall_timeout_ms: u64,
        window_index: u64,
        iteration: u64,
    ) -> Self {
        let mut sched = Scheduler::new(rank, stall_timeout_ms);
        sched.window = Some((window_index, iteration));
        sched
    }

    /// Register a communication group and return its gate-group id.
    /// Membership is normalized (sorted, deduplicated) so that the same
    /// rank set always maps to the same group — and therefore to one shared
    /// begin-order counter, mirroring the rendezvous layer's group keying.
    pub fn add_group(&mut self, members: &[usize]) -> usize {
        let mut normalized = members.to_vec();
        normalized.sort_unstable();
        normalized.dedup();
        if let Some(id) = self.groups.iter().position(|g| *g == normalized) {
            return id;
        }
        self.groups.push(normalized);
        self.group_next.push(0);
        self.group_seq.push(0);
        self.groups.len() - 1
    }

    /// Add a task. `gate_group` marks a begin-bearing task: its gate
    /// sequence is the group's next plan-time counter value, so tasks must
    /// be added in the canonical (sweep-order) begin order. `deps` are ids
    /// of previously added tasks.
    pub fn add_task(&mut self, label: String, gate_group: Option<usize>, deps: &[usize]) -> usize {
        let id = self.nodes.len();
        let gate = gate_group.map(|g| {
            let seq = self.group_seq[g];
            self.group_seq[g] += 1;
            (g, seq)
        });
        for &d in deps {
            assert!(d < id, "dependencies must be previously added tasks");
            self.nodes[d].dependents.push(id);
        }
        let deps_remaining = deps.iter().filter(|&&d| !self.nodes[d].done).count();
        self.nodes.push(Node {
            label,
            gate,
            deps_remaining,
            dependents: Vec::new(),
            parked: false,
            done: false,
            held: false,
            deferrable: false,
        });
        id
    }

    /// Withhold a task from scheduling until [`Scheduler::release_all`].
    pub fn hold(&mut self, id: usize) {
        self.nodes[id].held = true;
    }

    /// Mark a task deferrable: [`Scheduler::run_released`] may exit before
    /// it finishes, leaving it for the cross-iteration window to drain.
    /// Only complete-side (ungated) tasks whose dependencies are all
    /// non-deferrable may be deferred — a deferred *begin* would desync the
    /// per-group collective issue order across ranks.
    pub fn mark_deferrable(&mut self, id: usize) {
        debug_assert!(
            self.nodes[id].gate.is_none(),
            "gated task '{}' cannot be deferrable: begins must issue in-step",
            self.nodes[id].label
        );
        self.nodes[id].deferrable = true;
    }

    /// Release every held task.
    pub fn release_all(&mut self) {
        for node in &mut self.nodes {
            node.held = false;
        }
    }

    /// Number of tasks added so far.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True when no tasks have been added.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Run every non-held task to completion. `poll` is called with a task
    /// id and must return [`TaskPoll::Done`] when the task finished or
    /// [`TaskPoll::Pending`] to park it. Panics with a per-task diagnostic
    /// if no task finishes for the stall-watchdog timeout while unfinished
    /// tasks remain.
    pub fn run(&mut self, mut poll: impl FnMut(usize) -> TaskPoll) {
        self.run_until(&mut poll, false);
    }

    /// Like [`Scheduler::run`], but exit as soon as every *non-deferrable*
    /// task is done — deferrable tasks still run opportunistically on each
    /// pass, but an in-flight collective backing one never blocks the exit
    /// (the cross-iteration window drains it later). The stall watchdog
    /// likewise counts only non-deferrable work: once all of it is done, a
    /// not-yet-ready deferrable collective is residue, not a stall.
    pub fn run_released(&mut self, mut poll: impl FnMut(usize) -> TaskPoll) {
        self.run_until(&mut poll, true);
    }

    fn run_until(&mut self, poll: &mut impl FnMut(usize) -> TaskPoll, exit_on_deferrable: bool) {
        let mut last_progress = Instant::now();
        // Spin-then-sleep: a burst of empty scans spins (a parked collective
        // usually flips ready within microseconds on the lock-free comm
        // path), then fall back to sleeping so peer rank threads get the
        // core on oversubscribed machines.
        let spin_scans: u32 =
            if std::thread::available_parallelism().map(|c| c.get()).unwrap_or(1) > 1 {
                64
            } else {
                1
            };
        let mut idle_scans: u32 = 0;
        loop {
            let mut progress = false;
            let mut blocking = false;
            for id in 0..self.nodes.len() {
                {
                    let node = &self.nodes[id];
                    if node.done || node.held {
                        continue;
                    }
                    if !(exit_on_deferrable && node.deferrable) {
                        blocking = true;
                    }
                    if node.deps_remaining > 0 {
                        continue;
                    }
                    if let Some((g, seq)) = node.gate {
                        if self.group_next[g] != seq {
                            continue;
                        }
                    }
                }
                match poll(id) {
                    TaskPoll::Done => {
                        self.finish(id);
                        progress = true;
                    }
                    TaskPoll::Pending => {
                        assert!(
                            self.nodes[id].gate.is_none(),
                            "gated task '{}' returned Pending: begins never block",
                            self.nodes[id].label
                        );
                        self.nodes[id].parked = true;
                    }
                }
            }
            if !blocking {
                return;
            }
            if progress {
                last_progress = Instant::now();
                idle_scans = 0;
            } else {
                if last_progress.elapsed() >= self.stall_timeout {
                    let window = match self.window {
                        Some((w, it)) => format!(" (window {w}, iteration {it})"),
                        None => String::new(),
                    };
                    panic!(
                        "rank {}{window}: runtime stall watchdog fired after {:?} with no \
                         progress (likely a mismatched collective)\n{}",
                        self.rank,
                        self.stall_timeout,
                        self.dump()
                    );
                }
                // Nothing runnable: the rank is waiting on peers. Spin a
                // bounded burst first, then sleep a beat so peer rank
                // threads get the core.
                idle_scans += 1;
                if idle_scans <= spin_scans {
                    std::hint::spin_loop();
                } else {
                    std::thread::sleep(Duration::from_micros(100));
                }
            }
        }
    }

    /// One non-blocking pass over the DAG: run every currently runnable
    /// task once (parking completes whose collective is still in flight)
    /// and return [`Scheduler::all_done`]. Never sleeps and never trips the
    /// watchdog — the cross-iteration window uses it to drain retired steps
    /// opportunistically.
    pub fn poll_pass(&mut self, mut poll: impl FnMut(usize) -> TaskPoll) -> bool {
        for id in 0..self.nodes.len() {
            {
                let node = &self.nodes[id];
                if node.done || node.held || node.deps_remaining > 0 {
                    continue;
                }
                if let Some((g, seq)) = node.gate {
                    if self.group_next[g] != seq {
                        continue;
                    }
                }
            }
            match poll(id) {
                TaskPoll::Done => self.finish(id),
                TaskPoll::Pending => {
                    assert!(
                        self.nodes[id].gate.is_none(),
                        "gated task '{}' returned Pending: begins never block",
                        self.nodes[id].label
                    );
                    self.nodes[id].parked = true;
                }
            }
        }
        self.all_done()
    }

    /// True when every task in the DAG has finished.
    pub fn all_done(&self) -> bool {
        self.nodes.iter().all(|n| n.done)
    }

    fn finish(&mut self, id: usize) {
        self.nodes[id].done = true;
        self.nodes[id].parked = false;
        if let Some((g, seq)) = self.nodes[id].gate {
            debug_assert_eq!(self.group_next[g], seq);
            self.group_next[g] = seq + 1;
        }
        let dependents = std::mem::take(&mut self.nodes[id].dependents);
        for d in &dependents {
            self.nodes[*d].deps_remaining -= 1;
        }
        self.nodes[id].dependents = dependents;
    }

    /// Render the per-task state diagnostic the watchdog dumps on a stall.
    pub fn dump(&self) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        let window = match self.window {
            Some((w, it)) => format!(" (window {w}, iteration {it})"),
            None => String::new(),
        };
        let _ = writeln!(out, "task states on rank {}{window}:", self.rank);
        for (id, node) in self.nodes.iter().enumerate() {
            let state = if node.done {
                "done".to_string()
            } else if node.held {
                "held".to_string()
            } else if node.parked {
                "parked (collective in flight)".to_string()
            } else if node.deps_remaining > 0 {
                format!("blocked ({} deps unfinished)", node.deps_remaining)
            } else if let Some((g, seq)) = node.gate {
                format!("gate-waiting (group {g} at {}, task at {seq})", self.group_next[g])
            } else {
                "ready".to_string()
            };
            let gate = match node.gate {
                Some((g, seq)) => format!(" gate=({g},{seq})"),
                None => String::new(),
            };
            let defer = if node.deferrable { " [deferrable]" } else { "" };
            let _ = writeln!(out, "  [{id}] {}{gate}: {state}{defer}", node.label);
        }
        for (g, members) in self.groups.iter().enumerate() {
            let _ = writeln!(
                out,
                "  group {g} {:?}: next seq {} of {}",
                members, self.group_next[g], self.group_seq[g]
            );
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dependency_chain_runs_in_order() {
        let mut sched = Scheduler::new(0, 1000);
        let a = sched.add_task("a".into(), None, &[]);
        let b = sched.add_task("b".into(), None, &[a]);
        let c = sched.add_task("c".into(), None, &[b]);
        let mut order = Vec::new();
        sched.run(|id| {
            order.push(id);
            TaskPoll::Done
        });
        assert_eq!(order, vec![a, b, c]);
    }

    #[test]
    fn gate_pins_per_group_issue_order() {
        let mut sched = Scheduler::new(0, 1000);
        let g = sched.add_group(&[1, 0]);
        // `x` (seq 0) is data-blocked behind `c`; `y` (seq 1) is runnable
        // immediately but the gate must still hold it behind `x`.
        let c = sched.add_task("c".into(), None, &[]);
        let x = sched.add_task("x".into(), Some(g), &[c]);
        let y = sched.add_task("y".into(), Some(g), &[]);
        let mut order = Vec::new();
        sched.run(|id| {
            order.push(id);
            TaskPoll::Done
        });
        assert_eq!(order, vec![c, x, y]);
    }

    #[test]
    fn groups_deduplicate_by_normalized_membership() {
        let mut sched = Scheduler::new(0, 1000);
        let a = sched.add_group(&[2, 0, 1]);
        let b = sched.add_group(&[0, 1, 2]);
        let c = sched.add_group(&[0, 1]);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn parked_task_is_repolled_until_ready() {
        let mut sched = Scheduler::new(0, 1000);
        let t = sched.add_task("parker".into(), None, &[]);
        let mut polls = 0;
        sched.run(|id| {
            assert_eq!(id, t);
            polls += 1;
            if polls < 3 {
                TaskPoll::Pending
            } else {
                TaskPoll::Done
            }
        });
        assert_eq!(polls, 3);
    }

    #[test]
    fn parked_task_yields_the_rank_to_later_runnable_work() {
        let mut sched = Scheduler::new(0, 1000);
        let parker = sched.add_task("parker".into(), None, &[]);
        let other = sched.add_task("other".into(), None, &[]);
        let mut other_done = false;
        let mut order = Vec::new();
        sched.run(|id| {
            if id == parker {
                if !other_done {
                    return TaskPoll::Pending;
                }
                order.push(id);
                TaskPoll::Done
            } else {
                other_done = true;
                order.push(id);
                TaskPoll::Done
            }
        });
        // `other` finished while `parker` sat parked.
        assert_eq!(order, vec![other, parker]);
    }

    #[test]
    fn held_tasks_wait_for_release() {
        let mut sched = Scheduler::new(0, 1000);
        let a = sched.add_task("a".into(), None, &[]);
        let b = sched.add_task("b".into(), None, &[a]);
        sched.hold(b);
        let mut order = Vec::new();
        sched.run(|id| {
            order.push(id);
            TaskPoll::Done
        });
        assert_eq!(order, vec![a]);
        sched.release_all();
        sched.run(|id| {
            order.push(id);
            TaskPoll::Done
        });
        assert_eq!(order, vec![a, b]);
    }

    #[test]
    #[should_panic(expected = "stall watchdog")]
    fn watchdog_converts_a_permanent_park_into_a_diagnostic_panic() {
        let mut sched = Scheduler::new(0, 50);
        sched.add_task("never-ready-complete".into(), None, &[]);
        sched.run(|_| TaskPoll::Pending);
    }

    #[test]
    #[should_panic(expected = "begins never block")]
    fn gated_tasks_must_not_park() {
        let mut sched = Scheduler::new(0, 1000);
        let g = sched.add_group(&[0, 1]);
        sched.add_task("bad-begin".into(), Some(g), &[]);
        sched.run(|_| TaskPoll::Pending);
    }

    #[test]
    fn run_released_exits_past_pending_deferrable_work() {
        let mut sched = Scheduler::new(0, 50);
        let a = sched.add_task("begin".into(), None, &[]);
        let d = sched.add_task("deferred-complete".into(), None, &[a]);
        sched.mark_deferrable(d);
        // The deferrable complete never becomes ready; run_released must
        // exit once the begin is done instead of tripping the watchdog.
        sched.run_released(|id| if id == a { TaskPoll::Done } else { TaskPoll::Pending });
        assert!(!sched.all_done());
        // A later window poll drains it once the collective lands.
        assert!(sched.poll_pass(|_| TaskPoll::Done));
        assert!(sched.all_done());
    }

    #[test]
    fn run_released_still_drains_ready_deferrable_work() {
        let mut sched = Scheduler::new(0, 1000);
        let a = sched.add_task("begin".into(), None, &[]);
        let d = sched.add_task("deferred-complete".into(), None, &[a]);
        sched.mark_deferrable(d);
        sched.run_released(|_| TaskPoll::Done);
        assert!(sched.all_done(), "a ready deferrable task should finish in-step");
    }

    #[test]
    #[should_panic(expected = "stall watchdog")]
    fn run_released_watchdog_counts_non_deferrable_work() {
        let mut sched = Scheduler::new(0, 50);
        sched.add_task("stuck-complete".into(), None, &[]);
        sched.run_released(|_| TaskPoll::Pending);
    }

    #[test]
    fn poll_pass_never_blocks() {
        let mut sched = Scheduler::new(0, 1000);
        let a = sched.add_task("a".into(), None, &[]);
        let _b = sched.add_task("b".into(), None, &[a]);
        assert!(!sched.poll_pass(|id| if id == a { TaskPoll::Pending } else { TaskPoll::Done }));
        assert!(sched.poll_pass(|_| TaskPoll::Done));
    }

    #[test]
    #[should_panic(expected = "window 7, iteration 42")]
    fn watchdog_panic_names_the_window_and_iteration() {
        let mut sched = Scheduler::with_window(0, 50, 7, 42);
        sched.add_task("stuck".into(), None, &[]);
        sched.run(|_| TaskPoll::Pending);
    }

    #[test]
    fn dump_includes_window_context_and_deferrable_marker() {
        let mut sched = Scheduler::with_window(1, 1000, 3, 11);
        let t = sched.add_task("factor-complete L0".into(), None, &[]);
        sched.mark_deferrable(t);
        let dump = sched.dump();
        assert!(dump.contains("(window 3, iteration 11)"));
        assert!(dump.contains("[deferrable]"));
    }

    #[test]
    fn dump_names_every_task_and_group() {
        let mut sched = Scheduler::new(3, 1000);
        let g = sched.add_group(&[0, 3]);
        let a = sched.add_task("factor-begin L0".into(), Some(g), &[]);
        let _b = sched.add_task("factor-fold L0".into(), None, &[a]);
        let dump = sched.dump();
        assert!(dump.contains("rank 3"));
        assert!(dump.contains("factor-begin L0"));
        assert!(dump.contains("blocked (1 deps unfinished)"));
        assert!(dump.contains("group 0 [0, 3]"));
    }
}
