//! Cross-iteration overlap cost model.
//!
//! The within-step [`crate::pipeline::StepModel`] ends at the KL-clip
//! scale, so it cannot express the runtime's headline trick: on steps where
//! the factor folds feed nothing until the *next* eigendecomposition
//! update, the task runtime lets a still-in-flight factor reduction (and
//! its fold) drift past the scale barrier and overlap the next iteration's
//! forward/backward pass. [`CrossIterModel`] models a two-iteration window
//! of the full training loop — forward/backward, DDP gradient allreduce,
//! and the K-FAC factor/precondition/scale phases — under both executors'
//! dependency structures:
//!
//! - [`OverlapMode::Pipelined`]: `step()` is a barrier. Factor finalize
//!   waits for the DDP allreduce (the trainer calls `step` after it),
//!   preconditioning waits for every factor fold, and the next iteration's
//!   forward pass waits for the scale — nothing crosses the step edge.
//! - [`OverlapMode::Runtime`]: `step_begin` issues factor reductions right
//!   after the backward pass, and preconditioning needs only the (cached)
//!   decompositions plus the DDP-averaged gradients — so factor
//!   communication and folds are free to run concurrently with the next
//!   iteration's forward/backward compute.
//!
//! Tasks, durations, and resources are identical in both modes; only the
//! dependency edges differ. Makespans come from the same greedy
//! earliest-start list schedule used by the within-step model.

use kaisa_comm::{ClusterNetwork, CollectiveCostModel};

use crate::pipeline::ComputeRates;
use crate::state::factor_payload_len;

/// Which executor's dependency structure the model applies.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OverlapMode {
    /// Sweep-pipelined `step()`: a barrier at each iteration boundary.
    Pipelined,
    /// Task runtime with the `step_begin`/`step_finish` lookahead split.
    Runtime,
}

/// Stage label of one modeled task.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CrossStage {
    /// Forward and backward passes of one rank's micro-batch.
    FwdBwd,
    /// Data-parallel gradient allreduce.
    DdpAllreduce,
    /// Per-rank finalization/packing of captured factor statistics.
    FactorFinalize,
    /// One layer's factor allreduce on the network.
    FactorComm,
    /// One layer's fold of the averaged factors into the running state.
    FactorFold,
    /// Per-rank gradient preconditioning.
    Precondition,
    /// Preconditioned-gradient broadcast on the network.
    GradBcast,
    /// KL-clip scale and write-back.
    ScaleUpdate,
}

/// One modeled task: a stage instance within an iteration, pinned to a
/// rank's compute stream or the shared network.
#[derive(Debug, Clone)]
pub struct CrossTask {
    /// Stage label.
    pub stage: CrossStage,
    /// Iteration index within the window (0 or 1).
    pub iter: usize,
    /// Executing rank for compute tasks; `None` for network tasks.
    pub rank: Option<usize>,
    /// Layer index for per-layer tasks.
    pub layer: Option<usize>,
    /// Modeled duration in seconds.
    pub duration: f64,
    deps: Vec<usize>,
}

/// A scheduled task's `[start, finish)` interval.
#[derive(Debug, Clone, Copy)]
pub struct Interval {
    /// Start time in seconds.
    pub start: f64,
    /// Finish time in seconds.
    pub finish: f64,
}

/// Two-iteration cost model of the training loop under one executor's
/// dependency structure.
pub struct CrossIterModel {
    tasks: Vec<CrossTask>,
    world: usize,
}

impl CrossIterModel {
    /// Build the two-iteration window for `dims` (per-layer `(a, g)` factor
    /// dimensions) on `world` ranks over `network`, with per-rank batch
    /// size `batch`.
    pub fn new(
        dims: &[(usize, usize)],
        world: usize,
        network: ClusterNetwork,
        batch: usize,
        mode: OverlapMode,
    ) -> Self {
        assert!(world > 0, "world must be non-empty");
        assert!(!dims.is_empty(), "model needs at least one layer");
        let cost = CollectiveCostModel::new(network);
        let rates = ComputeRates::default();
        let b = batch.max(1) as f64;

        let fwd_bwd: f64 = dims.iter().map(|&(a, g)| 6.0 * a as f64 * g as f64 * b).sum::<f64>()
            / rates.gemm_flops;
        let finalize: f64 =
            dims.iter().map(|&(a, g)| (a as f64 * a as f64 + g as f64 * g as f64) * b).sum::<f64>()
                / rates.gemm_flops;
        let grad_bytes: usize = dims.iter().map(|&(a, g)| a * g * 4).sum();
        let ddp = cost.allreduce(grad_bytes, world);
        let precond: f64 =
            dims.iter().map(|&(a, g)| 2.0 * a as f64 * g as f64 * (a + g) as f64).sum::<f64>()
                / rates.gemm_flops;
        let grad_bcast = cost.broadcast(grad_bytes, world);
        let scale: f64 = dims.iter().map(|&(a, g)| (a * g) as f64).sum::<f64>() / rates.gemm_flops;

        let mut tasks: Vec<CrossTask> = Vec::new();
        let mut push = |stage, iter, rank, layer, duration, deps: Vec<usize>| -> usize {
            tasks.push(CrossTask { stage, iter, rank, layer, duration, deps });
            tasks.len() - 1
        };

        let mut prev_scale: Vec<Option<usize>> = vec![None; world];
        for iter in 0..2 {
            let fb: Vec<usize> = (0..world)
                .map(|r| {
                    let deps: Vec<usize> = prev_scale[r].into_iter().collect();
                    push(CrossStage::FwdBwd, iter, Some(r), None, fwd_bwd, deps)
                })
                .collect();
            let ddp_id = push(CrossStage::DdpAllreduce, iter, None, None, ddp, fb.clone());
            let fin: Vec<usize> = (0..world)
                .map(|r| {
                    let deps = match mode {
                        // The trainer calls `step()` after the DDP
                        // allreduce; factor work starts behind it.
                        OverlapMode::Pipelined => vec![ddp_id],
                        // `step_begin` runs right after the backward pass.
                        OverlapMode::Runtime => vec![fb[r]],
                    };
                    push(CrossStage::FactorFinalize, iter, Some(r), None, finalize, deps)
                })
                .collect();
            let mut folds: Vec<usize> = Vec::with_capacity(dims.len());
            for (i, &(a, g)) in dims.iter().enumerate() {
                let payload = factor_payload_len(a, g, false) * 4;
                let comm_id = push(
                    CrossStage::FactorComm,
                    iter,
                    None,
                    Some(i),
                    cost.allreduce(payload, world),
                    fin.clone(),
                );
                let fold = (a as f64 * a as f64 + g as f64 * g as f64) / rates.gemm_flops;
                folds.push(push(
                    CrossStage::FactorFold,
                    iter,
                    Some(i % world),
                    Some(i),
                    fold,
                    vec![comm_id],
                ));
            }
            let pre: Vec<usize> = (0..world)
                .map(|r| {
                    let deps = match mode {
                        // `step()` preconditions only after the whole
                        // factor phase drained.
                        OverlapMode::Pipelined => {
                            let mut d = vec![ddp_id];
                            d.extend(&folds);
                            d
                        }
                        // Preconditioning reads cached decompositions and
                        // the DDP-averaged gradients; folds feed only the
                        // *next* eig update and may drift.
                        OverlapMode::Runtime => vec![ddp_id],
                    };
                    push(CrossStage::Precondition, iter, Some(r), None, precond, deps)
                })
                .collect();
            let gb = push(CrossStage::GradBcast, iter, None, None, grad_bcast, pre);
            for (r, slot) in prev_scale.iter_mut().enumerate() {
                *slot = Some(push(CrossStage::ScaleUpdate, iter, Some(r), None, scale, vec![gb]));
            }
        }
        CrossIterModel { tasks, world }
    }

    /// The modeled tasks (indices match [`CrossIterModel::schedule`]).
    pub fn tasks(&self) -> &[CrossTask] {
        &self.tasks
    }

    /// Greedy earliest-start schedule over `world` compute streams plus one
    /// shared network resource. Ties break toward *non-deferrable* work
    /// (everything but factor comm/folds) and then toward lower task ids —
    /// the live scheduler's policy of letting the critical DDP/grad-bcast
    /// chain through while deferrable factor traffic fills the gaps.
    pub fn schedule(&self) -> Vec<Interval> {
        fn deferrable(stage: CrossStage) -> usize {
            usize::from(matches!(stage, CrossStage::FactorComm | CrossStage::FactorFold))
        }
        let n = self.tasks.len();
        let mut compute_free = vec![0.0f64; self.world];
        let mut network_free = 0.0f64;
        let mut itv = vec![Interval { start: 0.0, finish: 0.0 }; n];
        let mut done = vec![false; n];
        for _ in 0..n {
            let mut pick: Option<(usize, f64, usize)> = None;
            for (id, task) in self.tasks.iter().enumerate() {
                if done[id] || !task.deps.iter().all(|&d| done[d]) {
                    continue;
                }
                let deps_done = task.deps.iter().map(|&d| itv[d].finish).fold(0.0f64, f64::max);
                let free = match task.rank {
                    Some(r) => compute_free[r],
                    None => network_free,
                };
                let start = deps_done.max(free);
                let class = deferrable(task.stage);
                if pick.map_or(true, |(_, s, c)| start < s || (start == s && class < c)) {
                    pick = Some((id, start, class));
                }
            }
            let (id, start, _) = pick.expect("window DAG is acyclic: some task is always ready");
            let finish = start + self.tasks[id].duration;
            match self.tasks[id].rank {
                Some(r) => compute_free[r] = finish,
                None => network_free = finish,
            }
            itv[id] = Interval { start, finish };
            done[id] = true;
        }
        itv
    }

    /// Makespan of the greedy schedule.
    pub fn makespan(&self) -> f64 {
        self.schedule().iter().map(|t| t.finish).fold(0.0, f64::max)
    }

    /// Number of `(iteration-0 factor comm/fold, iteration-1 fwd/bwd)` task
    /// pairs whose scheduled intervals strictly overlap — the modeled
    /// cross-iteration overlap the runtime executor unlocks.
    pub fn cross_iteration_overlap_pairs(&self) -> usize {
        let itv = self.schedule();
        let mut pairs = 0;
        for (i, a) in self.tasks.iter().enumerate() {
            if a.iter != 0 || !matches!(a.stage, CrossStage::FactorComm | CrossStage::FactorFold) {
                continue;
            }
            for (j, b) in self.tasks.iter().enumerate() {
                if b.iter == 1
                    && matches!(b.stage, CrossStage::FwdBwd)
                    && itv[i].start < itv[j].finish
                    && itv[j].start < itv[i].finish
                {
                    pairs += 1;
                }
            }
        }
        pairs
    }
}

/// Modeled two-iteration makespans `(pipelined, runtime)` for a layer set.
/// The runtime figure is clamped to the pipelined one: the live runtime can
/// always fall back to the sweep executor's issue order, so a greedy
/// scheduling anomaly never makes it *slower* in practice.
pub fn modeled_cross_iter_makespans(
    dims: &[(usize, usize)],
    world: usize,
    network: ClusterNetwork,
    batch: usize,
) -> (f64, f64) {
    let pipelined = CrossIterModel::new(dims, world, network, batch, OverlapMode::Pipelined);
    let runtime = CrossIterModel::new(dims, world, network, batch, OverlapMode::Runtime);
    let p = pipelined.makespan();
    (p, runtime.makespan().min(p))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn resnet_ish() -> Vec<(usize, usize)> {
        vec![(576, 64), (1152, 128), (2304, 256), (4608, 512), (512, 10)]
    }

    #[test]
    fn runtime_mode_overlaps_factor_work_with_next_forward() {
        let model = CrossIterModel::new(
            &resnet_ish(),
            4,
            ClusterNetwork::ethernet_10g(),
            32,
            OverlapMode::Runtime,
        );
        assert!(
            model.cross_iteration_overlap_pairs() > 0,
            "runtime mode must overlap at least one iteration-0 factor comm/fold \
             with an iteration-1 forward/backward"
        );
    }

    #[test]
    fn pipelined_mode_never_crosses_the_step_barrier() {
        let model = CrossIterModel::new(
            &resnet_ish(),
            4,
            ClusterNetwork::ethernet_10g(),
            32,
            OverlapMode::Pipelined,
        );
        assert_eq!(
            model.cross_iteration_overlap_pairs(),
            0,
            "pipelined mode's scale barrier must forbid cross-iteration overlap"
        );
    }

    #[test]
    fn runtime_makespan_never_exceeds_pipelined() {
        for world in [1, 2, 4, 8] {
            for network in [ClusterNetwork::ethernet_10g(), ClusterNetwork::infiniband_edr()] {
                let (pipelined, runtime) =
                    modeled_cross_iter_makespans(&resnet_ish(), world, network, 32);
                assert!(
                    runtime <= pipelined + 1e-12,
                    "world {world}: runtime {runtime} > pipelined {pipelined}"
                );
                assert!(runtime > 0.0 && pipelined.is_finite());
            }
        }
    }

    #[test]
    fn comm_bound_network_shows_a_real_win() {
        // On 10 GbE the factor allreduces dominate; hoisting them across
        // the iteration boundary must shorten the two-iteration window.
        let (pipelined, runtime) =
            modeled_cross_iter_makespans(&resnet_ish(), 8, ClusterNetwork::ethernet_10g(), 32);
        assert!(
            runtime < pipelined * 0.999,
            "expected a strict cross-iteration win, pipelined={pipelined} runtime={runtime}"
        );
    }

    #[test]
    fn both_modes_schedule_every_task_exactly_once() {
        let model = CrossIterModel::new(
            &resnet_ish(),
            2,
            ClusterNetwork::dgx_a100(),
            32,
            OverlapMode::Runtime,
        );
        let itv = model.schedule();
        assert_eq!(itv.len(), model.tasks().len());
        for t in &itv {
            assert!(t.finish >= t.start);
        }
    }
}
