//! Cross-iteration overlap cost model.
//!
//! The within-step [`crate::pipeline::StepModel`] ends at the KL-clip
//! scale, so it cannot express the runtime's headline trick: on steps where
//! the factor folds feed nothing until the *next* eigendecomposition
//! update, the task runtime lets a still-in-flight factor reduction (and
//! its fold) drift past the scale barrier and overlap the next iteration's
//! forward/backward pass. [`CrossIterModel`] models a two-iteration window
//! of the full training loop — forward/backward, DDP gradient allreduce,
//! and the K-FAC factor/precondition/scale phases — under both executors'
//! dependency structures:
//!
//! - [`OverlapMode::Pipelined`]: `step()` is a barrier. Factor finalize
//!   waits for the DDP allreduce (the trainer calls `step` after it),
//!   preconditioning waits for every factor fold, and the next iteration's
//!   forward pass waits for the scale — nothing crosses the step edge.
//! - [`OverlapMode::Runtime`]: `step_begin` issues factor reductions right
//!   after the backward pass, and preconditioning needs only the (cached)
//!   decompositions plus the DDP-averaged gradients — so factor
//!   communication and folds are free to run concurrently with the next
//!   iteration's forward/backward compute.
//!
//! Tasks, durations, and resources are identical in both modes; only the
//! dependency edges differ. Makespans come from the same greedy
//! earliest-start list schedule used by the within-step model.

use kaisa_comm::{ClusterNetwork, CollectiveCostModel};

use crate::pipeline::ComputeRates;
use crate::state::factor_payload_len;

/// Which executor's dependency structure the model applies.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OverlapMode {
    /// Sweep-pipelined `step()`: a barrier at each iteration boundary.
    Pipelined,
    /// Task runtime with the `step_begin`/`step_finish` lookahead split.
    Runtime,
}

/// Shape of a depth-D cross-iteration window for
/// [`CrossIterModel::windowed`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WindowSpec {
    /// Maximum in-flight step DAGs: a factor-update iteration's comm/fold
    /// residue may drain under up to `depth - 1` later iterations (its
    /// folds must land by the scale of iteration `k + depth - 1`). Depth 1
    /// is the barrier semantics of the sweep executor.
    pub depth: usize,
    /// Iterations between factor updates (`KfacConfig::factor_update_freq`)
    /// — iterations out of phase carry no factor tasks at all, which is
    /// what lets a deep window drain between updates.
    pub factor_update_freq: usize,
    /// Number of iterations in the modeled window.
    pub iterations: usize,
}

/// Stage label of one modeled task.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CrossStage {
    /// Forward and backward passes of one rank's micro-batch.
    FwdBwd,
    /// Data-parallel gradient allreduce.
    DdpAllreduce,
    /// Per-rank finalization/packing of captured factor statistics.
    FactorFinalize,
    /// One layer's factor allreduce on the network.
    FactorComm,
    /// One layer's fold of the averaged factors into the running state.
    FactorFold,
    /// Per-rank gradient preconditioning.
    Precondition,
    /// Preconditioned-gradient broadcast on the network.
    GradBcast,
    /// KL-clip scale and write-back.
    ScaleUpdate,
}

/// One modeled task: a stage instance within an iteration, pinned to a
/// rank's compute stream or the shared network.
#[derive(Debug, Clone)]
pub struct CrossTask {
    /// Stage label.
    pub stage: CrossStage,
    /// Iteration index within the window (0 or 1).
    pub iter: usize,
    /// Executing rank for compute tasks; `None` for network tasks.
    pub rank: Option<usize>,
    /// Layer index for per-layer tasks.
    pub layer: Option<usize>,
    /// Modeled duration in seconds.
    pub duration: f64,
    deps: Vec<usize>,
}

/// A scheduled task's `[start, finish)` interval.
#[derive(Debug, Clone, Copy)]
pub struct Interval {
    /// Start time in seconds.
    pub start: f64,
    /// Finish time in seconds.
    pub finish: f64,
}

/// Cost model of an `iterations`-long training-loop window under one
/// executor's dependency structure.
pub struct CrossIterModel {
    tasks: Vec<CrossTask>,
    world: usize,
    iterations: usize,
}

impl CrossIterModel {
    /// Build the classic two-iteration window for `dims` (per-layer
    /// `(a, g)` factor dimensions) on `world` ranks over `network`, with
    /// per-rank batch size `batch`. Equivalent to
    /// [`CrossIterModel::windowed`] at `factor_update_freq = 1` over two
    /// iterations, with depth 1 (`Pipelined`) or depth 2 (`Runtime`).
    pub fn new(
        dims: &[(usize, usize)],
        world: usize,
        network: ClusterNetwork,
        batch: usize,
        mode: OverlapMode,
    ) -> Self {
        let depth = match mode {
            OverlapMode::Pipelined => 1,
            OverlapMode::Runtime => 2,
        };
        Self::windowed(
            dims,
            world,
            network,
            batch,
            WindowSpec { depth, factor_update_freq: 1, iterations: 2 },
        )
    }

    /// Build a depth-D cross-iteration window: `spec.iterations` iterations
    /// at `spec.factor_update_freq`, holding up to `spec.depth` in-flight
    /// step DAGs. Depth 1 reproduces the sweep executor's barriers (factor
    /// finalize behind the DDP allreduce, preconditioning behind every
    /// fold, nothing crossing the scale). Depth D ≥ 2 issues factor work
    /// right after the backward pass and lets a factor iteration's
    /// comm/fold residue drain under later iterations, constrained by the
    /// live window's two drain rules: folds of iteration `k` must land
    /// before the scale of iteration `k + D - 1` (age-based force drain)
    /// and before the next factor iteration's finalize (EMA fold ordering).
    pub fn windowed(
        dims: &[(usize, usize)],
        world: usize,
        network: ClusterNetwork,
        batch: usize,
        spec: WindowSpec,
    ) -> Self {
        assert!(world > 0, "world must be non-empty");
        assert!(!dims.is_empty(), "model needs at least one layer");
        assert!(spec.depth >= 1, "window depth must be at least 1");
        assert!(spec.factor_update_freq >= 1, "factor_update_freq must be positive");
        assert!(spec.iterations >= 1, "window needs at least one iteration");
        let cost = CollectiveCostModel::new(network);
        let rates = ComputeRates::default();
        let b = batch.max(1) as f64;
        let depth = spec.depth;

        let fwd_bwd: f64 = dims.iter().map(|&(a, g)| 6.0 * a as f64 * g as f64 * b).sum::<f64>()
            / rates.gemm_flops;
        let finalize: f64 =
            dims.iter().map(|&(a, g)| (a as f64 * a as f64 + g as f64 * g as f64) * b).sum::<f64>()
                / rates.gemm_flops;
        let grad_bytes: usize = dims.iter().map(|&(a, g)| a * g * 4).sum();
        let ddp = cost.allreduce(grad_bytes, world);
        let precond: f64 =
            dims.iter().map(|&(a, g)| 2.0 * a as f64 * g as f64 * (a + g) as f64).sum::<f64>()
                / rates.gemm_flops;
        let grad_bcast = cost.broadcast(grad_bytes, world);
        let scale: f64 = dims.iter().map(|&(a, g)| (a * g) as f64).sum::<f64>() / rates.gemm_flops;

        let mut tasks: Vec<CrossTask> = Vec::new();
        let mut push = |stage, iter, rank, layer, duration, deps: Vec<usize>| -> usize {
            tasks.push(CrossTask { stage, iter, rank, layer, duration, deps });
            tasks.len() - 1
        };

        let mut prev_scale: Vec<Option<usize>> = vec![None; world];
        // Folds of the most recent factor iteration (EMA-order the next
        // factor iteration's finalize behind them at depth ≥ 2).
        let mut last_folds: Vec<usize> = Vec::new();
        // Per-iteration fold deadlines: folds of factor iteration `k` gate
        // the scale of iteration `k + depth - 1` when it lies in-window.
        let mut fold_deadline: Vec<Vec<usize>> = vec![Vec::new(); spec.iterations];
        for iter in 0..spec.iterations {
            let factor_iter = iter % spec.factor_update_freq == 0;
            let fb: Vec<usize> = (0..world)
                .map(|r| {
                    let deps: Vec<usize> = prev_scale[r].into_iter().collect();
                    push(CrossStage::FwdBwd, iter, Some(r), None, fwd_bwd, deps)
                })
                .collect();
            let ddp_id = push(CrossStage::DdpAllreduce, iter, None, None, ddp, fb.clone());
            let mut folds: Vec<usize> = Vec::new();
            if factor_iter {
                let fin: Vec<usize> = (0..world)
                    .map(|r| {
                        let deps = if depth == 1 {
                            // The trainer calls `step()` after the DDP
                            // allreduce; factor work starts behind it.
                            vec![ddp_id]
                        } else {
                            // `step_begin` runs right after the backward
                            // pass — but only once the previous factor
                            // iteration's folds landed (EMA ordering).
                            let mut d = vec![fb[r]];
                            d.extend(&last_folds);
                            d
                        };
                        push(CrossStage::FactorFinalize, iter, Some(r), None, finalize, deps)
                    })
                    .collect();
                for (i, &(a, g)) in dims.iter().enumerate() {
                    let payload = factor_payload_len(a, g, false) * 4;
                    let comm_id = push(
                        CrossStage::FactorComm,
                        iter,
                        None,
                        Some(i),
                        cost.allreduce(payload, world),
                        fin.clone(),
                    );
                    let fold = (a as f64 * a as f64 + g as f64 * g as f64) / rates.gemm_flops;
                    folds.push(push(
                        CrossStage::FactorFold,
                        iter,
                        Some(i % world),
                        Some(i),
                        fold,
                        vec![comm_id],
                    ));
                }
                if depth >= 2 {
                    let deadline = iter + depth - 1;
                    if deadline < spec.iterations {
                        fold_deadline[deadline].extend(&folds);
                    }
                    last_folds = folds.clone();
                }
            }
            let pre: Vec<usize> = (0..world)
                .map(|r| {
                    let deps = if depth == 1 {
                        // `step()` preconditions only after the whole
                        // factor phase drained.
                        let mut d = vec![ddp_id];
                        d.extend(&folds);
                        d
                    } else {
                        // Preconditioning reads cached decompositions and
                        // the DDP-averaged gradients; folds feed only the
                        // *next* eig update and may drift.
                        vec![ddp_id]
                    };
                    push(CrossStage::Precondition, iter, Some(r), None, precond, deps)
                })
                .collect();
            let gb = push(CrossStage::GradBcast, iter, None, None, grad_bcast, pre);
            for (r, slot) in prev_scale.iter_mut().enumerate() {
                let mut deps = vec![gb];
                deps.extend(&fold_deadline[iter]);
                *slot = Some(push(CrossStage::ScaleUpdate, iter, Some(r), None, scale, deps));
            }
        }
        CrossIterModel { tasks, world, iterations: spec.iterations }
    }

    /// The modeled tasks (indices match [`CrossIterModel::schedule`]).
    pub fn tasks(&self) -> &[CrossTask] {
        &self.tasks
    }

    /// Greedy earliest-start schedule over `world` compute streams plus one
    /// shared network resource. Ties break toward *non-deferrable* work
    /// (everything but factor comm/folds) and then toward lower task ids —
    /// the live scheduler's policy of letting the critical DDP/grad-bcast
    /// chain through while deferrable factor traffic fills the gaps.
    pub fn schedule(&self) -> Vec<Interval> {
        fn deferrable(stage: CrossStage) -> usize {
            usize::from(matches!(stage, CrossStage::FactorComm | CrossStage::FactorFold))
        }
        let n = self.tasks.len();
        let mut compute_free = vec![0.0f64; self.world];
        let mut network_free = 0.0f64;
        let mut itv = vec![Interval { start: 0.0, finish: 0.0 }; n];
        let mut done = vec![false; n];
        for _ in 0..n {
            let mut pick: Option<(usize, f64, usize)> = None;
            for (id, task) in self.tasks.iter().enumerate() {
                if done[id] || !task.deps.iter().all(|&d| done[d]) {
                    continue;
                }
                let deps_done = task.deps.iter().map(|&d| itv[d].finish).fold(0.0f64, f64::max);
                let free = match task.rank {
                    Some(r) => compute_free[r],
                    None => network_free,
                };
                let start = deps_done.max(free);
                let class = deferrable(task.stage);
                if pick.map_or(true, |(_, s, c)| start < s || (start == s && class < c)) {
                    pick = Some((id, start, class));
                }
            }
            let (id, start, _) = pick.expect("window DAG is acyclic: some task is always ready");
            let finish = start + self.tasks[id].duration;
            match self.tasks[id].rank {
                Some(r) => compute_free[r] = finish,
                None => network_free = finish,
            }
            itv[id] = Interval { start, finish };
            done[id] = true;
        }
        itv
    }

    /// Makespan of the greedy schedule.
    pub fn makespan(&self) -> f64 {
        self.schedule().iter().map(|t| t.finish).fold(0.0, f64::max)
    }

    /// Makespan divided by the window's iteration count — the modeled
    /// amortized per-iteration time, comparable across window depths.
    pub fn amortized_iteration_seconds(&self) -> f64 {
        self.makespan() / self.iterations as f64
    }

    /// Number of `(iteration-0 factor comm/fold, iteration-1 fwd/bwd)` task
    /// pairs whose scheduled intervals strictly overlap — the modeled
    /// cross-iteration overlap the runtime executor unlocks.
    pub fn cross_iteration_overlap_pairs(&self) -> usize {
        let itv = self.schedule();
        let mut pairs = 0;
        for (i, a) in self.tasks.iter().enumerate() {
            if a.iter != 0 || !matches!(a.stage, CrossStage::FactorComm | CrossStage::FactorFold) {
                continue;
            }
            for (j, b) in self.tasks.iter().enumerate() {
                if b.iter == 1
                    && matches!(b.stage, CrossStage::FwdBwd)
                    && itv[i].start < itv[j].finish
                    && itv[j].start < itv[i].finish
                {
                    pairs += 1;
                }
            }
        }
        pairs
    }
}

/// Modeled two-iteration makespans `(pipelined, runtime)` for a layer set.
/// The runtime figure is clamped to the pipelined one: the live runtime can
/// always fall back to the sweep executor's issue order, so a greedy
/// scheduling anomaly never makes it *slower* in practice.
pub fn modeled_cross_iter_makespans(
    dims: &[(usize, usize)],
    world: usize,
    network: ClusterNetwork,
    batch: usize,
) -> (f64, f64) {
    let pipelined = CrossIterModel::new(dims, world, network, batch, OverlapMode::Pipelined);
    let runtime = CrossIterModel::new(dims, world, network, batch, OverlapMode::Runtime);
    let p = pipelined.makespan();
    (p, runtime.makespan().min(p))
}

/// Modeled amortized per-iteration seconds for window depths `1..=max_depth`
/// at `factor_update_freq`, as `(depth, seconds)` pairs. Each window spans
/// `max(2 * factor_update_freq, depth + 1)` iterations (two factor updates,
/// or enough room for the deepest residue). Values are clamped monotone
/// non-increasing in depth: the live window can always drain eagerly and
/// behave as a shallower one, so a greedy scheduling anomaly never makes a
/// deeper window model *slower* — the same clamp
/// [`modeled_cross_iter_makespans`] applies to runtime vs. pipelined.
pub fn modeled_depth_makespans(
    dims: &[(usize, usize)],
    world: usize,
    network: ClusterNetwork,
    batch: usize,
    factor_update_freq: usize,
    max_depth: usize,
) -> Vec<(usize, f64)> {
    assert!(max_depth >= 1, "need at least depth 1");
    let mut out: Vec<(usize, f64)> = Vec::with_capacity(max_depth);
    for depth in 1..=max_depth {
        let iterations = (2 * factor_update_freq).max(depth + 1);
        let model = CrossIterModel::windowed(
            dims,
            world,
            network,
            batch,
            WindowSpec { depth, factor_update_freq, iterations },
        );
        let mut amortized = model.amortized_iteration_seconds();
        if let Some(&(_, prev)) = out.last() {
            amortized = amortized.min(prev);
        }
        out.push((depth, amortized));
    }
    out
}

/// Pick the cross-iteration window depth (in `1..=min(factor_update_freq,
/// 4)`) with the best modeled amortized per-iteration time — the smallest
/// depth within 0.1% of the best, so extra held-DAG memory is never spent
/// on a modeled tie. Evaluated at the reference per-rank batch of 32. A
/// pure function of `(dims, world, network, factor_update_freq)`, so every
/// rank computing it agrees — the requirement for `depth(auto)` to keep
/// collective matching intact. `factor_update_freq == 1` always yields 1:
/// the live window force-drains before every factor-update step.
pub fn auto_cross_iter_depth(
    dims: &[(usize, usize)],
    world: usize,
    network: ClusterNetwork,
    factor_update_freq: usize,
) -> usize {
    let max_depth = factor_update_freq.clamp(1, 4);
    let table = modeled_depth_makespans(dims, world, network, 32, factor_update_freq, max_depth);
    let best = table.iter().map(|&(_, s)| s).fold(f64::INFINITY, f64::min);
    table
        .iter()
        .find(|&&(_, s)| s <= best * 1.001)
        .map(|&(d, _)| d)
        .expect("depth table is non-empty")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn resnet_ish() -> Vec<(usize, usize)> {
        vec![(576, 64), (1152, 128), (2304, 256), (4608, 512), (512, 10)]
    }

    #[test]
    fn runtime_mode_overlaps_factor_work_with_next_forward() {
        let model = CrossIterModel::new(
            &resnet_ish(),
            4,
            ClusterNetwork::ethernet_10g(),
            32,
            OverlapMode::Runtime,
        );
        assert!(
            model.cross_iteration_overlap_pairs() > 0,
            "runtime mode must overlap at least one iteration-0 factor comm/fold \
             with an iteration-1 forward/backward"
        );
    }

    #[test]
    fn pipelined_mode_never_crosses_the_step_barrier() {
        let model = CrossIterModel::new(
            &resnet_ish(),
            4,
            ClusterNetwork::ethernet_10g(),
            32,
            OverlapMode::Pipelined,
        );
        assert_eq!(
            model.cross_iteration_overlap_pairs(),
            0,
            "pipelined mode's scale barrier must forbid cross-iteration overlap"
        );
    }

    #[test]
    fn runtime_makespan_never_exceeds_pipelined() {
        for world in [1, 2, 4, 8] {
            for network in [ClusterNetwork::ethernet_10g(), ClusterNetwork::infiniband_edr()] {
                let (pipelined, runtime) =
                    modeled_cross_iter_makespans(&resnet_ish(), world, network, 32);
                assert!(
                    runtime <= pipelined + 1e-12,
                    "world {world}: runtime {runtime} > pipelined {pipelined}"
                );
                assert!(runtime > 0.0 && pipelined.is_finite());
            }
        }
    }

    #[test]
    fn comm_bound_network_shows_a_real_win() {
        // On 10 GbE the factor allreduces dominate; hoisting them across
        // the iteration boundary must shorten the two-iteration window.
        let (pipelined, runtime) =
            modeled_cross_iter_makespans(&resnet_ish(), 8, ClusterNetwork::ethernet_10g(), 32);
        assert!(
            runtime < pipelined * 0.999,
            "expected a strict cross-iteration win, pipelined={pipelined} runtime={runtime}"
        );
    }

    /// The fig7 reference network: the mixed conv/linear ResNetMini layer
    /// dims the fig7 binary's cost-model and depth-sweep tables print.
    fn resnet_mini_dims() -> Vec<(usize, usize)> {
        vec![
            (27, 32),
            (288, 32),
            (288, 32),
            (288, 32),
            (288, 32),
            (288, 64),
            (576, 64),
            (32, 64),
            (576, 64),
            (576, 64),
            (65, 10),
        ]
    }

    #[test]
    fn depth_two_amortized_strictly_beats_depth_one_on_fig7_reference() {
        // The acceptance bar: on the fig7 reference config (ResNetMini at
        // world 8 over 10 GbE, factor_update_freq 5) the window model must
        // predict a strictly lower amortized per-iteration time for every
        // depth ≥ 2 than for depth 1.
        let table = modeled_depth_makespans(
            &resnet_mini_dims(),
            8,
            ClusterNetwork::ethernet_10g(),
            32,
            5,
            4,
        );
        assert_eq!(table[0].0, 1);
        let depth1 = table[0].1;
        for &(depth, amortized) in &table[1..] {
            assert!(
                amortized < depth1,
                "depth {depth} amortized {amortized} must be strictly below \
                 depth 1's {depth1}"
            );
        }
    }

    #[test]
    fn depth_table_is_monotone_non_increasing() {
        for world in [2, 4, 8] {
            let table = modeled_depth_makespans(
                &resnet_ish(),
                world,
                ClusterNetwork::ethernet_10g(),
                32,
                10,
                4,
            );
            for pair in table.windows(2) {
                assert!(
                    pair[1].1 <= pair[0].1 + 1e-15,
                    "world {world}: depth {} ({}) models worse than depth {} ({})",
                    pair[1].0,
                    pair[1].1,
                    pair[0].0,
                    pair[0].1
                );
            }
        }
    }

    #[test]
    fn legacy_two_iteration_window_maps_onto_windowed() {
        let dims = resnet_ish();
        let net = ClusterNetwork::ethernet_10g();
        for (mode, depth) in [(OverlapMode::Pipelined, 1), (OverlapMode::Runtime, 2)] {
            let legacy = CrossIterModel::new(&dims, 4, net, 32, mode);
            let windowed = CrossIterModel::windowed(
                &dims,
                4,
                net,
                32,
                WindowSpec { depth, factor_update_freq: 1, iterations: 2 },
            );
            assert_eq!(legacy.tasks().len(), windowed.tasks().len());
            assert!((legacy.makespan() - windowed.makespan()).abs() < 1e-15);
        }
    }

    #[test]
    fn out_of_phase_iterations_carry_no_factor_tasks() {
        let model = CrossIterModel::windowed(
            &resnet_ish(),
            4,
            ClusterNetwork::ethernet_10g(),
            32,
            WindowSpec { depth: 3, factor_update_freq: 5, iterations: 10 },
        );
        for t in model.tasks() {
            if matches!(
                t.stage,
                CrossStage::FactorFinalize | CrossStage::FactorComm | CrossStage::FactorFold
            ) {
                assert_eq!(t.iter % 5, 0, "factor task planned on out-of-phase iteration");
            }
        }
    }

    #[test]
    fn auto_depth_is_deterministic_and_bounded() {
        let dims = resnet_mini_dims();
        let net = ClusterNetwork::ethernet_10g();
        let d = auto_cross_iter_depth(&dims, 8, net, 5);
        assert!((1..=4).contains(&d));
        // Pure function: repeated evaluation agrees bit for bit.
        assert_eq!(d, auto_cross_iter_depth(&dims, 8, net, 5));
        // F = 1 always degenerates to depth 1 (the live window force-drains
        // before every factor step).
        assert_eq!(auto_cross_iter_depth(&dims, 8, net, 1), 1);
    }

    #[test]
    fn auto_depth_exceeds_one_on_the_comm_bound_reference() {
        // Where the depth win is real (fig7 reference config), auto must
        // actually take it.
        let d = auto_cross_iter_depth(&resnet_mini_dims(), 8, ClusterNetwork::ethernet_10g(), 5);
        assert!(d >= 2, "auto depth picked {d} on a comm-bound config with F=5");
    }

    #[test]
    fn both_modes_schedule_every_task_exactly_once() {
        let model = CrossIterModel::new(
            &resnet_ish(),
            2,
            ClusterNetwork::dgx_a100(),
            32,
            OverlapMode::Runtime,
        );
        let itv = model.schedule();
        assert_eq!(itv.len(), model.tasks().len());
        for t in &itv {
            assert!(t.finish >= t.start);
        }
    }
}
